module entitlement

go 1.22
