// Binary payload codecs for the hot-path schemas. The encodings are
// positional — fields in struct order, no names on the wire — which is why
// the compatibility policy freezes these shapes: an append that would be
// harmless in JSON silently shifts every later field here.
//
// Encoding primitives (all little-endian-free, varint-based):
//
//	string  = uvarint length, then raw bytes
//	float64 = 8 bytes, big-endian IEEE-754 bits
//	int64   = zig-zag varint
//	bool    = one byte, 0 or 1
//
// Every codec is allocation-free in both directions: encoders append into a
// caller-owned buffer, decoders read scalar fields in place and may alias
// string fields to the input buffer via zero-copy views — see DecodeBinary's
// aliasing contract.
package schemav1

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// AppendMarshaler is implemented by schemas with a binary codec: the
// encoder appends the positional encoding to dst and returns the extended
// slice. It never fails and never allocates beyond dst's growth.
type AppendMarshaler interface {
	AppendBinary(dst []byte) []byte
}

// WireUnmarshaler is the decoding half: DecodeBinary parses the positional
// encoding from src.
//
// Aliasing contract: decoded string fields may alias src (zero-copy) —
// valid only until the caller's buffer is reused. Wire handlers decode and
// act within one request, which is exactly that window; anything that
// retains a decoded message beyond the handler must copy its strings.
type WireUnmarshaler interface {
	DecodeBinary(src []byte) error
}

// ErrShortBuffer reports a truncated binary payload.
var ErrShortBuffer = errors.New("schemav1: truncated binary payload")

// ErrTrailingBytes reports extra bytes after a complete binary payload —
// almost always a shape mismatch between the two sides.
var ErrTrailingBytes = errors.New("schemav1: trailing bytes after binary payload")

// --- primitives -----------------------------------------------------------

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendFloat64 appends the 8-byte big-endian IEEE-754 bits.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendInt64 appends a zig-zag varint.
func AppendInt64(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendBool appends one byte.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// ReadString consumes a length-prefixed string, returning a zero-copy view
// into src (see WireUnmarshaler's aliasing contract).
func ReadString(src []byte) (string, []byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 || n > uint64(len(src)-w) {
		return "", nil, ErrShortBuffer
	}
	b := src[w : w+int(n)]
	if len(b) == 0 {
		return "", src[w:], nil
	}
	return unsafe.String(&b[0], len(b)), src[w+int(n):], nil
}

// ReadFloat64 consumes 8 big-endian bytes.
func ReadFloat64(src []byte) (float64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrShortBuffer
	}
	return math.Float64frombits(binary.BigEndian.Uint64(src)), src[8:], nil
}

// ReadInt64 consumes a zig-zag varint.
func ReadInt64(src []byte) (int64, []byte, error) {
	v, w := binary.Varint(src)
	if w <= 0 {
		return 0, nil, ErrShortBuffer
	}
	return v, src[w:], nil
}

// ReadBool consumes one byte; anything but 0 or 1 is a shape error.
func ReadBool(src []byte) (bool, []byte, error) {
	if len(src) < 1 {
		return false, nil, ErrShortBuffer
	}
	switch src[0] {
	case 0:
		return false, src[1:], nil
	case 1:
		return true, src[1:], nil
	default:
		return false, nil, fmt.Errorf("schemav1: invalid bool byte 0x%02x", src[0])
	}
}

func done(rest []byte) error {
	if len(rest) != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// --- kvstore --------------------------------------------------------------

// AppendBinary implements AppendMarshaler.
func (m *KVPut) AppendBinary(dst []byte) []byte {
	dst = AppendString(dst, m.Key)
	dst = AppendFloat64(dst, m.Value)
	return AppendInt64(dst, m.TTLMs)
}

// DecodeBinary implements WireUnmarshaler.
func (m *KVPut) DecodeBinary(src []byte) (err error) {
	if m.Key, src, err = ReadString(src); err != nil {
		return err
	}
	if m.Value, src, err = ReadFloat64(src); err != nil {
		return err
	}
	if m.TTLMs, src, err = ReadInt64(src); err != nil {
		return err
	}
	return done(src)
}

// AppendBinary implements AppendMarshaler.
func (m *KVKey) AppendBinary(dst []byte) []byte {
	return AppendString(dst, m.Key)
}

// DecodeBinary implements WireUnmarshaler.
func (m *KVKey) DecodeBinary(src []byte) (err error) {
	if m.Key, src, err = ReadString(src); err != nil {
		return err
	}
	return done(src)
}

// AppendBinary implements AppendMarshaler.
func (m *KVGetReply) AppendBinary(dst []byte) []byte {
	dst = AppendFloat64(dst, m.Value)
	return AppendBool(dst, m.Found)
}

// DecodeBinary implements WireUnmarshaler.
func (m *KVGetReply) DecodeBinary(src []byte) (err error) {
	if m.Value, src, err = ReadFloat64(src); err != nil {
		return err
	}
	if m.Found, src, err = ReadBool(src); err != nil {
		return err
	}
	return done(src)
}

// AppendBinary implements AppendMarshaler.
func (m *KVSumReply) AppendBinary(dst []byte) []byte {
	return AppendFloat64(dst, m.Sum)
}

// DecodeBinary implements WireUnmarshaler.
func (m *KVSumReply) DecodeBinary(src []byte) (err error) {
	if m.Sum, src, err = ReadFloat64(src); err != nil {
		return err
	}
	return done(src)
}

// --- contractdb -----------------------------------------------------------

// AppendBinary implements AppendMarshaler.
func (m *DBRateQuery) AppendBinary(dst []byte) []byte {
	dst = AppendString(dst, m.NPG)
	dst = AppendString(dst, m.Class)
	dst = AppendString(dst, m.Region)
	dst = AppendString(dst, m.Dir)
	return AppendInt64(dst, m.AtUnix)
}

// DecodeBinary implements WireUnmarshaler.
func (m *DBRateQuery) DecodeBinary(src []byte) (err error) {
	if m.NPG, src, err = ReadString(src); err != nil {
		return err
	}
	if m.Class, src, err = ReadString(src); err != nil {
		return err
	}
	if m.Region, src, err = ReadString(src); err != nil {
		return err
	}
	if m.Dir, src, err = ReadString(src); err != nil {
		return err
	}
	if m.AtUnix, src, err = ReadInt64(src); err != nil {
		return err
	}
	return done(src)
}

// AppendBinary implements AppendMarshaler.
func (m *DBRateReply) AppendBinary(dst []byte) []byte {
	dst = AppendFloat64(dst, m.Rate)
	return AppendBool(dst, m.Found)
}

// DecodeBinary implements WireUnmarshaler.
func (m *DBRateReply) DecodeBinary(src []byte) (err error) {
	if m.Rate, src, err = ReadFloat64(src); err != nil {
		return err
	}
	if m.Found, src, err = ReadBool(src); err != nil {
		return err
	}
	return done(src)
}
