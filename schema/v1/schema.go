// Package schemav1 holds version 1 of the wire schema contracts: the
// explicit, versioned shapes of every message that crosses a process
// boundary in this system — the RPC envelope itself, the rate-store
// publish/aggregate messages, and the contract-database queries. The
// granting service's shapes (which embed domain types) register themselves
// alongside these via their own packages; cmd/schemavet aggregates the full
// set.
//
// # Why schemas are contracts
//
// The paper's entitlement contracts are long-lived interfaces between
// parties; the wire messages that carry them get the same treatment. A
// schema here is not "whatever the struct happens to marshal as" — it is a
// fingerprinted, machine-checked shape. `make vet-schema` (cmd/schemavet)
// re-derives every fingerprint from the live Go types and compares them to
// the committed schema.lock; any drift fails CI until the change is made in
// a new schema version (a v2 package) or the lock is deliberately
// regenerated for a compatible change.
//
// # Compatibility policy
//
// Within one schema version (this package):
//
//   - BREAKING, never allowed in place: removing or renaming a field,
//     changing a field's type or JSON tag, reordering fields (the binary
//     codec is positional), changing a binary encoding. These require a new
//     version package (schema/v2) negotiated separately on the wire.
//   - COMPATIBLE, allowed with a deliberate lock regen (`make vet-schema-update`,
//     reviewed in the diff): appending a new optional `omitempty` field at
//     the END of a struct that has no binary codec, or adding an entirely
//     new message type. Types with binary codecs are frozen — their layout
//     is positional, so even appends need a version bump.
//   - Wire negotiation: codecs and schema versions are negotiated
//     per-connection at dial time (wire's "_negotiate" method). JSON + v1 is
//     the floor every peer speaks; anything newer is opt-in and falls back.
//
// The full policy, with the negotiation sequence, lives in DESIGN.md §14.
package schemav1

import (
	"encoding/json"
	"reflect"
)

// Version is the schema contract version this package defines.
const Version = 1

// CodecJSON and CodecBinary name the two negotiable payload codecs.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// --- RPC envelope ---------------------------------------------------------

// Request is the RPC envelope sent by clients (wire.Request is an alias).
// On the JSON codec it is the frame body; on the binary codec the same
// fields are encoded positionally (see wire's binary framing).
type Request struct {
	Method string `json:"method"`
	// ID is the client-generated request ID; the server echoes it in the
	// Response. Optional for wire compatibility with bare senders.
	ID      string          `json:"id,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Trace carries the caller's span context in W3C traceparent form
	// ("00-<traceid>-<spanid>-<flags>") when the client has a span attached.
	// Omitted when untraced; unknown or malformed values are ignored.
	Trace string `json:"trace,omitempty"`
}

// Response is the RPC envelope returned by servers (wire.Response is an
// alias).
type Response struct {
	// ID echoes the request's ID, correlating the two sides' logs (and
	// letting the client detect a desynced stream).
	ID      string          `json:"id,omitempty"`
	Error   string          `json:"error,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Retryable marks Error as overload shedding rather than rejection: the
	// same request is worth retrying once load drains. Old servers never set
	// it and old clients ignore it, so the field is compatible both ways.
	Retryable bool `json:"retryable,omitempty"`
	// RetryAfterMS carries the server's retry-after hint (milliseconds)
	// when Retryable is set; zero means no hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Hello is the payload of the reserved "_negotiate" method: the client's
// codec/version offer, sent as the first call on a connection when the
// client prefers a non-JSON codec.
type Hello struct {
	Codec   string `json:"codec"`
	Version int    `json:"version"`
}

// HelloReply confirms the negotiated codec and schema version. A server
// that cannot speak the offer answers with an error response instead, and
// the connection stays on JSON — that is the whole fallback story.
type HelloReply struct {
	Codec   string `json:"codec"`
	Version int    `json:"version"`
}

// --- Rate store (kvstore) -------------------------------------------------

// KVPut is the rate-publish message: the hot path of the whole system.
// Agents publish one per (flow set, host) per enforcement cycle. Frozen: it
// has a binary codec.
type KVPut struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
	TTLMs int64   `json:"ttl_ms"`
}

// KVKey addresses one key (get, delete) or one prefix (sum). Frozen: it has
// a binary codec.
type KVKey struct {
	Key string `json:"key"`
}

// KVGetReply answers a get. Frozen: it has a binary codec.
type KVGetReply struct {
	Value float64 `json:"value"`
	Found bool    `json:"found"`
}

// KVSumReply answers a prefix aggregation. Frozen: it has a binary codec.
type KVSumReply struct {
	Sum float64 `json:"sum"`
}

// --- Contract database ----------------------------------------------------

// DBRateQuery asks for the entitled rate of one flow set at one instant.
// Frozen: it has a binary codec.
type DBRateQuery struct {
	NPG    string `json:"npg"`
	Class  string `json:"class"`
	Region string `json:"region"`
	Dir    string `json:"dir"`
	AtUnix int64  `json:"at_unix"`
}

// DBRateReply answers a DBRateQuery. Frozen: it has a binary codec.
type DBRateReply struct {
	Rate  float64 `json:"rate"`
	Found bool    `json:"found"`
}

// DBSLOQuery asks for the availability objective in one contract's approval
// record.
type DBSLOQuery struct {
	NPG string `json:"npg"`
}

// DBSLOReply answers a DBSLOQuery.
type DBSLOReply struct {
	SLO   float64 `json:"slo"`
	Found bool    `json:"found"`
}

// --- Registry -------------------------------------------------------------

// Def names one schema: a versioned message shape whose fingerprint is
// pinned in schema.lock. Binary marks shapes that additionally have a
// positional binary encoding (frozen even against appends).
type Def struct {
	// Name is the stable schema identifier, "<plane>.<shape>".
	Name string
	// Version is the schema contract version the shape belongs to.
	Version int
	// Type is the Go type whose exported/JSON surface is fingerprinted.
	Type reflect.Type
	// Binary records that the shape has a positional binary codec.
	Binary bool
}

// Defs returns the schemas this package owns, sorted by name. Shapes that
// embed domain types (granting submit/decide, contractdb put_contract)
// register through their own packages and are aggregated by cmd/schemavet.
func Defs() []Def {
	return []Def{
		{Name: "wire.request", Version: 1, Type: reflect.TypeOf(Request{}), Binary: true},
		{Name: "wire.response", Version: 1, Type: reflect.TypeOf(Response{}), Binary: true},
		{Name: "wire.negotiate_hello", Version: 1, Type: reflect.TypeOf(Hello{})},
		{Name: "wire.negotiate_reply", Version: 1, Type: reflect.TypeOf(HelloReply{})},
		{Name: "kvstore.put", Version: 1, Type: reflect.TypeOf(KVPut{}), Binary: true},
		{Name: "kvstore.key", Version: 1, Type: reflect.TypeOf(KVKey{}), Binary: true},
		{Name: "kvstore.get_reply", Version: 1, Type: reflect.TypeOf(KVGetReply{}), Binary: true},
		{Name: "kvstore.sum_reply", Version: 1, Type: reflect.TypeOf(KVSumReply{}), Binary: true},
		{Name: "contractdb.rate_query", Version: 1, Type: reflect.TypeOf(DBRateQuery{}), Binary: true},
		{Name: "contractdb.rate_reply", Version: 1, Type: reflect.TypeOf(DBRateReply{}), Binary: true},
		{Name: "contractdb.slo_query", Version: 1, Type: reflect.TypeOf(DBSLOQuery{})},
		{Name: "contractdb.slo_reply", Version: 1, Type: reflect.TypeOf(DBSLOReply{})},
	}
}
