package schemav1

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Round trip every binary codec through encode → decode and compare.
func TestBinaryRoundTrip(t *testing.T) {
	put := KVPut{Key: "rates/web/gold/us-east/h1", Value: 1.5e9, TTLMs: 30000}
	var put2 KVPut
	if err := put2.DecodeBinary(put.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if put2 != put {
		t.Errorf("KVPut = %+v, want %+v", put2, put)
	}

	key := KVKey{Key: "rates/web/gold/us-east/"}
	var key2 KVKey
	if err := key2.DecodeBinary(key.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if key2 != key {
		t.Errorf("KVKey = %+v, want %+v", key2, key)
	}

	get := KVGetReply{Value: -0.25, Found: true}
	var get2 KVGetReply
	if err := get2.DecodeBinary(get.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if get2 != get {
		t.Errorf("KVGetReply = %+v, want %+v", get2, get)
	}

	sum := KVSumReply{Sum: 42}
	var sum2 KVSumReply
	if err := sum2.DecodeBinary(sum.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if sum2 != sum {
		t.Errorf("KVSumReply = %+v, want %+v", sum2, sum)
	}

	rq := DBRateQuery{NPG: "web", Class: "gold", Region: "us-east", Dir: "egress", AtUnix: -1234567}
	var rq2 DBRateQuery
	if err := rq2.DecodeBinary(rq.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if rq2 != rq {
		t.Errorf("DBRateQuery = %+v, want %+v", rq2, rq)
	}

	rr := DBRateReply{Rate: 9.75e8, Found: false}
	var rr2 DBRateReply
	if err := rr2.DecodeBinary(rr.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if rr2 != rr {
		t.Errorf("DBRateReply = %+v, want %+v", rr2, rr)
	}
}

// The binary layouts are frozen (the codec is positional): pin exact bytes
// so an accidental field reorder or encoding change fails loudly, not just
// against the schema lock.
func TestBinaryGoldenBytes(t *testing.T) {
	cases := []struct {
		name string
		got  []byte
		want string // hex
	}{
		{
			name: "KVPut",
			got:  (&KVPut{Key: "k", Value: 1.0, TTLMs: 1}).AppendBinary(nil),
			// uvarint len 1, 'k', float64(1.0) BE bits, zigzag(1)=2
			want: "016b" + "3ff0000000000000" + "02",
		},
		{
			name: "KVKey",
			got:  (&KVKey{Key: "ab"}).AppendBinary(nil),
			want: "026162",
		},
		{
			name: "KVGetReply",
			got:  (&KVGetReply{Value: 2.0, Found: true}).AppendBinary(nil),
			want: "4000000000000000" + "01",
		},
		{
			name: "KVSumReply",
			got:  (&KVSumReply{Sum: 0}).AppendBinary(nil),
			want: "0000000000000000",
		},
		{
			name: "DBRateQuery",
			got:  (&DBRateQuery{NPG: "n", Class: "c", Region: "r", Dir: "d", AtUnix: -1}).AppendBinary(nil),
			// four len-1 strings, zigzag(-1)=1
			want: "016e" + "0163" + "0172" + "0164" + "01",
		},
		{
			name: "DBRateReply",
			got:  (&DBRateReply{Rate: 2.0, Found: false}).AppendBinary(nil),
			want: "4000000000000000" + "00",
		},
	}
	for _, c := range cases {
		if got := hex.EncodeToString(c.got); got != c.want {
			t.Errorf("%s encoding = %s, want %s", c.name, got, c.want)
		}
	}
}

// Decoders never panic and reject malformed input: truncation, trailing
// bytes, bad bool bytes.
func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	full := (&KVPut{Key: "key", Value: 1, TTLMs: 5}).AppendBinary(nil)
	for i := 0; i < len(full); i++ {
		var p KVPut
		if err := p.DecodeBinary(full[:i]); err == nil {
			t.Errorf("truncated KVPut at %d accepted", i)
		}
	}
	var p KVPut
	if err := p.DecodeBinary(append(full, 0xFF)); err != ErrTrailingBytes {
		t.Errorf("trailing bytes: err = %v, want ErrTrailingBytes", err)
	}
	bad := (&KVGetReply{Value: 1, Found: true}).AppendBinary(nil)
	bad[len(bad)-1] = 7 // invalid bool byte
	var g KVGetReply
	if err := g.DecodeBinary(bad); err == nil {
		t.Error("invalid bool byte accepted")
	}
}

func TestBinaryDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		var p KVPut
		p.DecodeBinary(raw)
		var k KVKey
		k.DecodeBinary(raw)
		var g KVGetReply
		g.DecodeBinary(raw)
		var s KVSumReply
		s.DecodeBinary(raw)
		var q DBRateQuery
		q.DecodeBinary(raw)
		var r DBRateReply
		r.DecodeBinary(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: KVPut and DBRateQuery round-trip arbitrary values.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(key string, value float64, ttl int64) bool {
		in := KVPut{Key: key, Value: value, TTLMs: ttl}
		var out KVPut
		if err := out.DecodeBinary(in.AppendBinary(nil)); err != nil {
			return false
		}
		// NaN != NaN; compare bit patterns via encode-again.
		return bytes.Equal(in.AppendBinary(nil), out.AppendBinary(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Encoders are allocation-free when the destination has capacity.
func TestAppendBinaryNoAlloc(t *testing.T) {
	put := &KVPut{Key: "rates/web/gold/us-east/h1", Value: 1.5e9, TTLMs: 30000}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = put.AppendBinary(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendBinary allocs/op = %g, want 0", allocs)
	}
	var out KVPut
	allocs = testing.AllocsPerRun(100, func() {
		if err := out.DecodeBinary(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeBinary allocs/op = %g, want 0", allocs)
	}
}

// --- fingerprints and the lock ---------------------------------------------

// Fingerprints are stable for identical shapes and differ when a field is
// renamed, retyped, retagged, added, or reordered. The mutated shapes are
// built with reflect.StructOf — exactly the drift schemavet must catch.
func TestFingerprintDetectsMutations(t *testing.T) {
	base := reflect.TypeOf(KVPut{})
	fields := []reflect.StructField{
		{Name: "Key", Type: reflect.TypeOf(""), Tag: `json:"key"`},
		{Name: "Value", Type: reflect.TypeOf(float64(0)), Tag: `json:"value"`},
		{Name: "TTLMs", Type: reflect.TypeOf(int64(0)), Tag: `json:"ttl_ms"`},
	}
	same := reflect.StructOf(fields)
	if Fingerprint(base) != Fingerprint(same) {
		t.Errorf("identical shape fingerprints differ:\n%s\nvs\n%s", Render(base), Render(same))
	}

	mutate := func(name string, mut func([]reflect.StructField) []reflect.StructField) {
		fs := append([]reflect.StructField(nil), fields...)
		mutated := reflect.StructOf(mut(fs))
		if Fingerprint(base) == Fingerprint(mutated) {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	mutate("rename field", func(fs []reflect.StructField) []reflect.StructField {
		fs[0].Name = "Keyname"
		return fs
	})
	mutate("change tag", func(fs []reflect.StructField) []reflect.StructField {
		fs[0].Tag = `json:"key2"`
		return fs
	})
	mutate("change type", func(fs []reflect.StructField) []reflect.StructField {
		fs[1].Type = reflect.TypeOf(float32(0))
		return fs
	})
	mutate("reorder fields", func(fs []reflect.StructField) []reflect.StructField {
		fs[0], fs[1] = fs[1], fs[0]
		return fs
	})
	mutate("append field", func(fs []reflect.StructField) []reflect.StructField {
		return append(fs, reflect.StructField{Name: "Extra", Type: reflect.TypeOf(""), Tag: `json:"extra,omitempty"`})
	})
}

// Unexported and json:"-" fields are invisible to the fingerprint — they
// are invisible to every codec too.
func TestFingerprintIgnoresNonWireFields(t *testing.T) {
	type visible struct {
		A string `json:"a"`
	}
	type withHidden struct {
		A      string `json:"a"`
		Secret string `json:"-"`
	}
	if Fingerprint(reflect.TypeOf(visible{})) != Fingerprint(reflect.TypeOf(withHidden{})) {
		t.Error("json:\"-\" field changed the fingerprint")
	}
}

// FormatLock → ParseLock → Check is clean for the live defs, and Check
// reports drift, missing pins, and stale pins.
func TestLockRoundTripAndCheck(t *testing.T) {
	live := Entries(Defs())
	lock := FormatLock(live)
	parsed := ParseLock(lock)
	if len(parsed) != len(live) {
		t.Fatalf("ParseLock returned %d entries, want %d", len(parsed), len(live))
	}
	if problems := Check(live, parsed); len(problems) != 0 {
		t.Errorf("clean lock reported problems: %v", problems)
	}

	// Drift: change one fingerprint.
	drifted := append([]LockEntry(nil), parsed...)
	drifted[0].Fingerprint = "sha256:deadbeef"
	problems := Check(live, drifted)
	if len(problems) != 1 || !strings.Contains(problems[0], "changed without a version bump") {
		t.Errorf("drift problems = %v", problems)
	}

	// Missing pin: drop one.
	problems = Check(live, parsed[1:])
	if len(problems) != 1 || !strings.Contains(problems[0], "not pinned") {
		t.Errorf("missing-pin problems = %v", problems)
	}

	// Stale pin: lock knows a schema the code no longer has.
	stale := append([]LockEntry(nil), parsed...)
	stale = append(stale, LockEntry{Name: "wire.retired", Version: 1, Fingerprint: "sha256:00"})
	problems = Check(live, stale)
	if len(problems) != 1 || !strings.Contains(problems[0], "no longer exists") {
		t.Errorf("stale-pin problems = %v", problems)
	}

	// Version mismatch.
	bumped := append([]LockEntry(nil), parsed...)
	bumped[0].Version = 2
	problems = Check(live, bumped)
	if len(problems) != 1 || !strings.Contains(problems[0], "v2 in the lock") {
		t.Errorf("version problems = %v", problems)
	}
}

// The defs registry stays internally consistent: unique names, version 1,
// binary flags only on shapes that actually implement the codecs.
func TestDefsConsistent(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Defs() {
		if seen[d.Name] {
			t.Errorf("duplicate def %q", d.Name)
		}
		seen[d.Name] = true
		if d.Version != Version {
			t.Errorf("def %q version = %d, want %d", d.Name, d.Version, Version)
		}
		ptr := reflect.New(d.Type).Interface()
		_, isAppend := ptr.(AppendMarshaler)
		_, isDecode := ptr.(WireUnmarshaler)
		hasCodec := isAppend && isDecode
		// The envelope shapes are encoded by the wire package itself, not
		// through the payload-codec interfaces.
		envelope := d.Name == "wire.request" || d.Name == "wire.response"
		if d.Binary && !hasCodec && !envelope {
			t.Errorf("def %q marked Binary but implements no codec", d.Name)
		}
		if !d.Binary && hasCodec {
			t.Errorf("def %q has binary codecs but is not marked Binary", d.Name)
		}
	}
}
