// Schema fingerprinting: a canonical, human-diffable rendering of each
// message shape (field names, JSON tags, types, order) hashed to a stable
// fingerprint. cmd/schemavet re-derives these from the live Go types and
// compares them to the committed schema.lock, so a shape cannot drift
// without the diff showing up in review.
package schemav1

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Render returns the canonical rendering of one schema type: one line per
// field ("  name json:<tag> <type>"), recursing into named struct types.
// The rendering — not the Go source — is what the fingerprint covers, so
// formatting or comment changes never trip the lock while any change to the
// marshaled surface does.
func Render(t reflect.Type) string {
	var b strings.Builder
	seen := map[reflect.Type]bool{}
	renderType(&b, t, "", seen)
	return b.String()
}

// Fingerprint hashes the canonical rendering.
func Fingerprint(t reflect.Type) string {
	sum := sha256.Sum256([]byte(Render(t)))
	return "sha256:" + hex.EncodeToString(sum[:16])
}

var jsonMarshalerType = reflect.TypeOf((*json.Marshaler)(nil)).Elem()

func renderType(b *strings.Builder, t reflect.Type, indent string, seen map[reflect.Type]bool) {
	for t.Kind() == reflect.Pointer {
		b.WriteString("*")
		t = t.Elem()
	}
	// Types with custom JSON marshaling (time.Time and friends) are leaves:
	// their wire form is their own contract, named rather than expanded.
	if t.Kind() != reflect.Struct || t.Implements(jsonMarshalerType) || reflect.PointerTo(t).Implements(jsonMarshalerType) {
		switch t.Kind() {
		case reflect.Slice:
			b.WriteString("[]")
			renderType(b, t.Elem(), indent, seen)
		case reflect.Array:
			fmt.Fprintf(b, "[%d]", t.Len())
			renderType(b, t.Elem(), indent, seen)
		case reflect.Map:
			b.WriteString("map[")
			renderType(b, t.Key(), indent, seen)
			b.WriteString("]")
			renderType(b, t.Elem(), indent, seen)
		default:
			if name := typeName(t); name != "" {
				b.WriteString(name)
			} else {
				b.WriteString(t.Kind().String())
			}
		}
		return
	}
	if seen[t] {
		// Recursive shape: name it and stop — the expansion already appears
		// at its first occurrence.
		fmt.Fprintf(b, "recursive(%s)", typeName(t))
		return
	}
	seen[t] = true
	defer delete(seen, t)
	fmt.Fprintf(b, "struct{\n")
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue // invisible to every codec
		}
		tag := f.Tag.Get("json")
		if tag == "-" {
			continue // explicitly off the wire
		}
		fmt.Fprintf(b, "%s  %s json:%q ", indent, f.Name, tag)
		renderType(b, f.Type, indent+"  ", seen)
		b.WriteString("\n")
	}
	fmt.Fprintf(b, "%s}", indent)
}

// typeName renders a named type as pkg.Name with the module prefix
// stripped, keeping the lock file stable if the module is ever renamed.
func typeName(t reflect.Type) string {
	if t.Name() == "" {
		return ""
	}
	pkg := t.PkgPath()
	if pkg == "" {
		return t.Name() // predeclared: string, int64, float64, bool...
	}
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + t.Name()
}

// --- lock file ------------------------------------------------------------

// LockEntry is one pinned schema in a lock file.
type LockEntry struct {
	Name        string
	Version     int
	Fingerprint string
	Binary      bool
	Rendering   string
}

// FormatLock renders defs (plus any extra entries from other planes) into
// the lock-file format: a fingerprint header per schema followed by the
// indented canonical rendering, so lock diffs read as schema diffs.
func FormatLock(entries []LockEntry) string {
	sorted := append([]LockEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteString("# Wire schema lock. Regenerate with `make vet-schema-update` (cmd/schemavet -update).\n")
	b.WriteString("# A mismatch here means a message shape changed without a version bump; see\n")
	b.WriteString("# the compatibility policy in schema/v1 and DESIGN.md §14 before touching it.\n")
	for _, e := range sorted {
		codec := "json"
		if e.Binary {
			codec = "json+binary"
		}
		fmt.Fprintf(&b, "\nschema %s v%d codec=%s %s\n", e.Name, e.Version, codec, e.Fingerprint)
		for _, line := range strings.Split(strings.TrimRight(e.Rendering, "\n"), "\n") {
			fmt.Fprintf(&b, "\t%s\n", line)
		}
	}
	return b.String()
}

// Entries derives the lock entries for a set of schema defs.
func Entries(defs []Def) []LockEntry {
	out := make([]LockEntry, 0, len(defs))
	for _, d := range defs {
		out = append(out, LockEntry{
			Name:        d.Name,
			Version:     d.Version,
			Fingerprint: Fingerprint(d.Type),
			Binary:      d.Binary,
			Rendering:   Render(d.Type),
		})
	}
	return out
}

// ParseLock extracts the pinned (name, version, fingerprint) triples from a
// lock file's contents; renderings are carried along for diffing.
func ParseLock(data string) []LockEntry {
	var out []LockEntry
	var cur *LockEntry
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(line, "schema ") {
			fields := strings.Fields(line)
			if len(fields) != 5 {
				continue
			}
			var v int
			fmt.Sscanf(fields[2], "v%d", &v)
			out = append(out, LockEntry{
				Name:        fields[1],
				Version:     v,
				Binary:      fields[3] == "codec=json+binary",
				Fingerprint: fields[4],
			})
			cur = &out[len(out)-1]
			continue
		}
		if cur != nil && strings.HasPrefix(line, "\t") {
			cur.Rendering += strings.TrimPrefix(line, "\t") + "\n"
		}
	}
	return out
}

// Check compares live entries against a parsed lock, returning one problem
// string per drifted, missing, or stale schema (empty means clean).
func Check(live, locked []LockEntry) []string {
	lockedBy := map[string]LockEntry{}
	for _, e := range locked {
		lockedBy[e.Name] = e
	}
	var problems []string
	seen := map[string]bool{}
	for _, l := range live {
		seen[l.Name] = true
		pin, ok := lockedBy[l.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("schema %q is not pinned in the lock file (new shape? run -update and review the diff)", l.Name))
			continue
		}
		if pin.Version != l.Version {
			problems = append(problems, fmt.Sprintf("schema %q is v%d in code but v%d in the lock file", l.Name, l.Version, pin.Version))
		}
		if pin.Fingerprint != l.Fingerprint {
			problems = append(problems, fmt.Sprintf(
				"schema %q changed without a version bump\n  locked:  %s\n  current: %s\n  locked rendering:\n%s  current rendering:\n%s",
				l.Name, pin.Fingerprint, l.Fingerprint,
				indent(pin.Rendering), indent(l.Rendering)))
		}
	}
	for _, e := range locked {
		if !seen[e.Name] {
			problems = append(problems, fmt.Sprintf("lock file pins schema %q which no longer exists in code (removal is a breaking change; run -update only with a version bump)", e.Name))
		}
	}
	return problems
}

func indent(s string) string {
	if s == "" {
		return "    (rendering unavailable)\n"
	}
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("    " + line + "\n")
	}
	return b.String()
}
