// Package entitlement's root benchmarks regenerate every figure of the
// paper's evaluation (one benchmark per figure, §6–§7) plus the ablations
// DESIGN.md calls out. Each benchmark reports the figure's headline metrics
// via b.ReportMetric; `go run ./cmd/benchgen` prints the full series.
package entitlement_test

import (
	"testing"
	"time"

	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/experiments"
	"entitlement/internal/flow"
	"entitlement/internal/kvstore"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

// benchScale keeps drill-backed figures quick enough to iterate on.
var benchScale = experiments.DrillScale{Hosts: 24, StageTicks: 40}

// report copies an experiment's headline metrics onto the benchmark.
func report(b *testing.B, r func() *experiments.Result) {
	b.Helper()
	var last map[string]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = r().Headline
	}
	b.StopTimer()
	for k, v := range last {
		b.ReportMetric(v, k)
	}
}

func BenchmarkFig01ServiceDistributionHighQoS(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.ServiceDistribution(contract.ClassA, 60)
	})
}

func BenchmarkFig02ServiceDistributionLowQoS(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.ServiceDistribution(contract.ClassB, 60)
	})
}

func BenchmarkFig03StoragePatterns(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.StoragePatterns(7) })
}

func BenchmarkFig04MisbehavingSpike(b *testing.B) {
	report(b, experiments.MisbehavingSpike)
}

func BenchmarkFig05InducedLoss(b *testing.B) {
	report(b, experiments.InducedLoss)
}

func BenchmarkFig07SourceConcentration(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.SourceConcentration(8) })
}

func BenchmarkFig11DrillLoss(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.DrillLoss(benchScale) })
}

func BenchmarkFig12DrillRate(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.DrillRate(benchScale) })
}

func BenchmarkFig13DrillRTT(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.DrillRTT(benchScale) })
}

func BenchmarkFig14DrillSYN(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.DrillSYN(benchScale) })
}

func BenchmarkFig15ReadLatency(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.DrillReadLatency(benchScale) })
}

func BenchmarkFig16WriteLatency(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.DrillWriteLatency(benchScale) })
}

func BenchmarkFig17BlockErrors(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.DrillBlockErrors(benchScale) })
}

func BenchmarkFig18ForecastAccuracyA(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.ForecastAccuracy(contract.ClassA, 16, 3)
	})
}

func BenchmarkFig19ForecastAccuracyB(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.ForecastAccuracy(contract.ClassB, 16, 4)
	})
}

func BenchmarkFig20SegmentedHoseEfficiency(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.SegmentedHoseEfficiency(8, 6, 150, 3000, 11)
	})
}

func BenchmarkFig21CoverageVsTMs(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.CoverageVsTMs(6, 200, 3000, 13)
	})
}

func BenchmarkFig22ApprovalVsSLO(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.ApprovalVsSLO(60, 17) })
}

func BenchmarkFig23StatelessInstant(b *testing.B) {
	report(b, experiments.StatelessInstant)
}

func BenchmarkFig24StatelessAverage(b *testing.B) {
	report(b, experiments.StatelessAverage)
}

func BenchmarkFig25StatefulConvergence(b *testing.B) {
	report(b, experiments.StatefulConvergence)
}

func BenchmarkAblationRemarkPolicy(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.AblationRemarkPolicy(benchScale) })
}

func BenchmarkAblationMeter(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.AblationMeter(benchScale) })
}

func BenchmarkAblationSegments(b *testing.B) {
	report(b, func() *experiments.Result { return experiments.AblationSegments(19) })
}

func BenchmarkAblationReservation(b *testing.B) {
	report(b, experiments.AblationReservation)
}

func BenchmarkAblationArchitecture(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.AblationArchitecture(500, 2000, 23)
	})
}

func BenchmarkAblationGenerations(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.AblationGenerations(10, 29)
	})
}

// --- Hot-path micro-benchmarks ------------------------------------------------
//
// Observability guard: several of the paths below (BPF egress, meter,
// agent cycle, flow allocate) are instrumented with internal/obs counters
// and histograms. Those instruments are budgeted at <50ns/op uncontended —
// BenchmarkObsCounter and BenchmarkObsHistogram in internal/obs/bench_test.go
// pin that budget. If the figures here regress after touching internal/obs,
// run `go test -bench 'BenchmarkObs' ./internal/obs/` first: a fattened
// counter or histogram taxes every metric site in the repo at once.

// BenchmarkBPFEgress measures the per-packet classification cost — the path
// every egress packet of O(100k) hosts traverses.
func BenchmarkBPFEgress(b *testing.B) {
	m := bpf.NewMap()
	m.Update(bpf.MapKey{NPG: "Cold", Class: contract.C4Low, Region: "A"},
		bpf.Action{Mode: bpf.MarkHosts, NonConformGroups: 37})
	prog := bpf.NewProgram(m)
	pkt := bpf.Packet{
		NPG: "Cold", Class: contract.C4Low, Region: "A",
		Host: "host-123", FlowHash: 0xDEADBEEF,
		DSCP: bpf.DSCPForClass(contract.C4Low), Bytes: 1500,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Egress(pkt)
	}
}

// BenchmarkStatefulMeter measures one metering decision.
func BenchmarkStatefulMeter(b *testing.B) {
	m := enforce.NewStateful()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ConformRatio(5e12, 10e12, 6e12)
	}
}

// BenchmarkKVStoreAggregation measures the SumPrefix an agent issues per
// cycle, over 10k published host rates.
func BenchmarkKVStoreAggregation(b *testing.B) {
	s := kvstore.New()
	for i := 0; i < 10000; i++ {
		s.Put(kvstore.RateKey("Cold", "c4_low", "A", hostName(i)), 1e9, 0)
	}
	prefix := kvstore.RatePrefix("Cold", "c4_low", "A")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SumPrefix(prefix); err != nil {
			b.Fatal(err)
		}
	}
}

func hostName(i int) string {
	const digits = "0123456789"
	return string([]byte{
		'h', digits[i/1000%10], digits[i/100%10], digits[i/10%10], digits[i%10],
	})
}

// BenchmarkAllocate measures one multi-commodity allocation over a mid-size
// backbone — the inner loop of every risk-simulation scenario.
func BenchmarkAllocate(b *testing.B) {
	opts := topology.DefaultBackboneOptions()
	topo, err := topology.Backbone(opts)
	if err != nil {
		b.Fatal(err)
	}
	regions := topo.RegionsSorted()
	var demands []flow.Demand
	for i := 0; i < 24; i++ {
		src := regions[i%len(regions)]
		dst := regions[(i+3)%len(regions)]
		demands = append(demands, flow.Demand{
			Key: string(src) + ">" + string(dst) + hostName(i),
			Src: src, Dst: dst, Rate: 200e9, Class: i % 4,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.Allocate(topo, topo.AllUp(), demands, flow.AllocateOptions{Rounds: 8})
	}
}

// BenchmarkAllocateRunner is BenchmarkAllocate with the scratch buffers
// amortized across calls via a flow.Runner — the steady state each risk
// worker runs in across its scenarios.
func BenchmarkAllocateRunner(b *testing.B) {
	opts := topology.DefaultBackboneOptions()
	topo, err := topology.Backbone(opts)
	if err != nil {
		b.Fatal(err)
	}
	regions := topo.RegionsSorted()
	var demands []flow.Demand
	for i := 0; i < 24; i++ {
		src := regions[i%len(regions)]
		dst := regions[(i+3)%len(regions)]
		demands = append(demands, flow.Demand{
			Key: string(src) + ">" + string(dst) + hostName(i),
			Src: src, Dst: dst, Rate: 200e9, Class: i % 4,
		})
	}
	runner := flow.NewRunner(topo)
	state := topo.AllUp()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Allocate(state, demands, flow.AllocateOptions{Rounds: 8})
	}
}

// riskBenchSetup builds the mid-size backbone and demand set shared by the
// risk-assessment benchmarks.
func riskBenchSetup(b *testing.B) (*topology.Topology, []flow.Demand) {
	b.Helper()
	opts := topology.DefaultBackboneOptions()
	topo, err := topology.Backbone(opts)
	if err != nil {
		b.Fatal(err)
	}
	regions := topo.RegionsSorted()
	var demands []flow.Demand
	for i := 0; i < 24; i++ {
		src := regions[i%len(regions)]
		dst := regions[(i+3)%len(regions)]
		demands = append(demands, flow.Demand{
			Key: string(src) + ">" + string(dst) + hostName(i),
			Src: src, Dst: dst, Rate: 200e9, Class: i % 4,
		})
	}
	return topo, demands
}

// BenchmarkRiskAssess measures one full Monte-Carlo risk assessment (200
// failure scenarios on a mid-size backbone) on the serial path (Workers: 1).
func BenchmarkRiskAssess(b *testing.B) {
	topo, demands := riskBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := risk.Assess(topo, demands, risk.Options{Scenarios: 200, Seed: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRiskAssessParallel is the same assessment fanned out over all
// cores (Workers: 0 = GOMAXPROCS); the output is byte-identical to the
// serial run, so ns/op differences are pure scenario-parallel speedup.
func BenchmarkRiskAssessParallel(b *testing.B) {
	topo, demands := riskBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := risk.Assess(topo, demands, risk.Options{Scenarios: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// newBenchDB builds a contract store with one active Coldstorage egress
// entitlement.
func newBenchDB(b *testing.B, now time.Time) *contractdb.Store {
	b.Helper()
	db := contractdb.NewStore()
	err := db.Put(contract.Contract{
		NPG: "Cold", SLO: 0.999, Approved: true,
		Entitlements: []contract.Entitlement{{
			NPG: "Cold", Class: contract.C4Low, Region: "A",
			Direction: contract.Egress, Rate: 5e9,
			Start: now.Add(-time.Hour), End: now.Add(90 * 24 * time.Hour),
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkAgentCycle measures one full enforcement-agent cycle against
// in-process contract DB and rate store.
func BenchmarkAgentCycle(b *testing.B) {
	now := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	db := newBenchDB(b, now)
	rates := kvstore.New()
	prog := bpf.NewProgram(bpf.NewMap())
	agent, err := enforce.NewAgent(enforce.AgentConfig{
		Host: "h1", NPG: "Cold", Class: contract.C4Low, Region: "A",
		DB: db, Rates: rates, Meter: enforce.NewStateful(), Prog: prog,
		Policy: enforce.HostBased,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Cycle(now, 10e9, 9e9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJointRealizations(b *testing.B) {
	report(b, func() *experiments.Result {
		return experiments.AblationJointRealizations(31)
	})
}
