# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet vet-metrics vet-imports vet-schema vet-schema-update test race chaos crash slo replay trace wirecompat fuzz-smoke bench bench-smoke bench-delta bench-json bench-regress bench-rebaseline cover figures examples grantd-demo

all: build vet vet-metrics vet-imports vet-schema test

race:
	go test -race ./...

# Fault-injection harness: agents against real TCP servers through a chaos
# proxy (outage -> fail-static -> fail-open -> reconvergence), plus the
# dead-server wedge regression, all under the race detector.
chaos:
	go test -race -count=1 -timeout 180s -v \
		-run 'TestChaosEnforcementSurvivesOutage|TestAgentRunNotWedgedByDeadServer' \
		./internal/integration/
	go test -race -count=1 -timeout 120s ./internal/faults/ ./internal/wire/

# Durability plane: the randomized crash-recovery property (Kill + torn
# journal tail, 50 seeded runs), the WAL decoder corruption suite, the
# overload/queue-timeout admission tests, and the end-to-end SIGKILL drill —
# a real grantd subprocess killed mid-storm must restart on its journal,
# serve pre-kill decisions byte-identically, re-decide in-flight work, and
# leave agents converged. All under the race detector.
crash:
	go test -race -count=1 -timeout 300s \
		-run 'TestCrashRecoveryProperty|TestOverloadShed|TestQueueTimeout|TestWAL|TestReplayWAL|TestJournalCheckpointRotation|TestServiceCleanRestart' \
		./internal/granting/
	go test -race -count=1 -timeout 300s -v \
		-run 'TestGrantdCrashRecoverySockets' ./internal/integration/

build:
	go build ./...

vet:
	go vet ./...

# Metric-name lint: scans every obs.Register* call site in the tree and
# fails unless each metric name matches ^entitlement_[a-z0-9_]+$ and is
# registered exactly once process-wide (duplicate names would also panic at
# init, but the scan catches them without having to link the package).
vet-metrics:
	go vet ./...
	go test -run TestVetMetricNames -count=1 ./internal/obs/

# Stdlib-only lint: scans the import block of every .go file in the module
# and fails if anything imports outside the standard library and this module.
# Guards the repo invariant that builds need no network and no vendoring.
vet-imports:
	go test -run TestVetStdlibImports -count=1 ./internal/obs/

# Schema compatibility gate: re-derives a fingerprint for every wire schema
# from the live Go types and fails if any shape drifted from the committed
# schema/v1/schema.lock without a version bump. Compatible changes
# regenerate the lock with vet-schema-update (the lock diff documents
# exactly what changed on the wire); breaking changes need a new schema
# version. Policy: schema/v1 package doc and DESIGN.md §14.
vet-schema:
	go run ./cmd/schemavet

vet-schema-update:
	go run ./cmd/schemavet -update

test:
	go test ./...

# SLO conformance plane: engine/recorder unit+property tests, then the
# acceptance drill — an injected network incident must breach exactly one
# contract, fire the fast-burn alert exactly once, and burn the error
# budget monotonically, asserted from the report JSON and live /metrics.
slo:
	go test -race -count=1 -timeout 120s ./internal/slo/
	go test -race -count=1 -timeout 120s -run TestSLOConformanceIncident -v ./internal/integration/

# Incident black box: lifecycle/budget/crash-tail unit tests, the capture
# decoder's fuzz seed corpus, the drain-race accounting invariant, and the
# golden end-to-end drill — a recorded incident must replay byte-identically
# through the real engine and the envelope must name the injected root cause.
# All under the race detector.
replay:
	go test -race -count=1 -timeout 180s \
		-run 'TestBlackbox|TestEnvelopeRoundtrip|TestDrainDropAccountingRace|FuzzBlackboxDecode' \
		./internal/slo/
	go test -race -count=1 -timeout 180s -v \
		-run 'TestBlackboxIncidentReplay' ./internal/integration/

bench:
	go test -count=1 -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic without paying for a full measurement run.
bench-smoke:
	go test -count=1 -run=NONE -bench=. -benchtime=1x ./...

# Incremental re-assessment gate: one pass of the cold/warm/delta Assess
# benchmarks, then TestDeltaSpeedup — which FAILS if a delta re-assessment
# after a <=10%-of-links mutation is not >= 10x faster than cold (both in
# scenarios re-simulated and p50 wall clock). The bar is asserted by the
# test, never eyeballed from bench output.
bench-delta:
	go test -count=1 -run=NONE -bench='BenchmarkAssess(Cold|Warm|Delta)' -benchtime=1x ./internal/risk/
	go test -count=1 -run 'TestDeltaSpeedup' -v ./internal/risk/

# Distributed tracing spine: the trace package's unit/property/fuzz-seed
# suite, the wire propagation and SetTrace race tests, and the golden
# cross-process drill — one grant submitted over real TCP must come back as
# ONE trace spanning submitter, grantd, and contractdb with correct
# parent/child edges and monotone timings, and tail sampling must keep 100%
# of incident traces while probabilistically dropping healthy ones. All
# under the race detector.
trace:
	go test -race -count=1 -timeout 120s ./internal/obs/trace/
	go test -race -count=1 -timeout 120s -run 'TestCallPropagatesSpanTree|TestSetTraceRaceWithConcurrentCalls' ./internal/wire/
	go test -race -count=1 -timeout 180s -v -run 'TestDistributedTraceSpine|TestTailSamplingRetention' ./internal/integration/

# Wire compatibility matrix: every codec pairing (binary client vs JSON
# server and the reverse), old frames without Trace/ID, torn and oversized
# binary frames answered with error responses, and the mid-connection
# JSON-after-binary regression — all under the race detector, across the
# wire and kvstore layers.
wirecompat:
	go test -race -count=1 -timeout 120s \
		-run 'TestWireCompatMatrix|TestBinaryEnvelopeOverLegacyHandler|TestOldFrameWithoutTraceOrID|TestBinaryServerRejectsJSONFrameMidConnection|TestBinaryServerRejectsTornAndOversizedFrames|TestBinaryServerRejectsUnparseableJSONFrame|TestNegotiationFallbackToJSON|TestRenegotiateAfterReconnect|TestCrossCodecGolden|TestCallBinaryServerMisbehaves|TestClientNegotiateServerMisbehaves' \
		./internal/wire/
	go test -race -count=1 -timeout 120s \
		-run 'TestClientCodecMatrix|TestBinaryPutKeysDoNotAliasFrameBuffer' \
		./internal/kvstore/

# Short fuzz pass over every parser that faces untrusted bytes: the wire
# JSON framing and binary envelope, the journal replay path, the black-box
# capture decoder, the traceparent codec, and the metrics text scraper.
# ~30s per target keeps the whole pass under CI's patience while still
# churning well past the seed corpus.
FUZZTIME ?= 30s
fuzz-smoke:
	go test -count=1 -run=NONE -fuzz 'FuzzReadMessage' -fuzztime $(FUZZTIME) ./internal/wire/
	go test -count=1 -run=NONE -fuzz 'FuzzBinaryFrameDecode' -fuzztime $(FUZZTIME) ./internal/wire/
	go test -count=1 -run=NONE -fuzz 'FuzzJournalReplay' -fuzztime $(FUZZTIME) ./internal/granting/
	go test -count=1 -run=NONE -fuzz 'FuzzBlackboxDecode' -fuzztime $(FUZZTIME) ./internal/slo/
	go test -count=1 -run=NONE -fuzz 'FuzzParseTraceContext' -fuzztime $(FUZZTIME) ./internal/obs/trace/
	go test -count=1 -run=NONE -fuzz 'FuzzParseText' -fuzztime $(FUZZTIME) ./internal/obs/

# Regenerate the perf-trajectory files: BENCH_risk.json (cold vs warm vs
# delta Assess p50, allocator ns/op + allocs/op), BENCH_slo.json
# (flight-recorder append, engine evaluate p50, black-box span append,
# incident replay wall-clock), BENCH_trace.json (span start/finish ns/op
# against the 200ns budget, traceparent codec, tree assembly), and
# BENCH_wire.json (binary vs JSON codec, payload and socket level).
bench-json:
	go run ./cmd/benchjson -out BENCH_risk.json -slo-out BENCH_slo.json -trace-out BENCH_trace.json -wire-out BENCH_wire.json

# Perf-regression gate: re-measure every BENCH_*.json into a scratch dir
# and fail if any timing field regressed past 2x the committed baseline
# (sub-1µs baselines are skipped as noise). Deliberate slowdowns
# re-baseline with bench-rebaseline, so the new perf envelope is part of
# the same diff.
bench-regress:
	mkdir -p .bench-fresh
	go run ./cmd/benchjson -out .bench-fresh/BENCH_risk.json -slo-out .bench-fresh/BENCH_slo.json -trace-out .bench-fresh/BENCH_trace.json -wire-out .bench-fresh/BENCH_wire.json
	go run ./cmd/benchgate -ratio 2 -min-baseline-ns 1000 \
		BENCH_risk.json:.bench-fresh/BENCH_risk.json \
		BENCH_slo.json:.bench-fresh/BENCH_slo.json \
		BENCH_trace.json:.bench-fresh/BENCH_trace.json \
		BENCH_wire.json:.bench-fresh/BENCH_wire.json

# Escape hatch for deliberate perf changes: rewrite the committed baselines
# from a fresh run and commit the diff.
bench-rebaseline: bench-json

cover:
	go test -cover ./internal/... ./schema/...

# Regenerate every evaluation figure (text). Use FIGURE=fig-25 to filter.
figures:
	go run ./cmd/benchgen $(if $(FIGURE),-figure $(FIGURE),)

# Self-contained grantd walkthrough: in-process contract database, one
# online grant through the service, two enforcement agents picking it up.
grantd-demo:
	go run ./cmd/grantd -demo

examples:
	go run ./examples/quickstart
	go run ./examples/segmentedhose
	go run ./examples/drill
	go run ./examples/misbehaving
	go run ./examples/agents
	go run ./examples/capacityplanning
