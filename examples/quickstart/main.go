// Quickstart: the whole entitlement lifecycle in one file.
//
// It builds a five-region WAN, synthesizes 90 days of traffic for two
// services, establishes entitlement contracts (forecast → segmented hose →
// SLO-aware approval), and then runs a distributed enforcement cycle showing
// the agents marking the over-entitlement service's traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/core"
	"entitlement/internal/enforce"
	"entitlement/internal/kvstore"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
	"entitlement/internal/trace"
)

func main() {
	// 1. A small heterogeneous backbone.
	topoOpts := topology.DefaultBackboneOptions()
	topoOpts.Regions = 5
	topoOpts.MinCapGbps = 3000
	topoOpts.MaxCapGbps = 8000
	topo, err := topology.Backbone(topoOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backbone: %d regions, %.0f Tbps total capacity\n",
		topo.NumRegions(), topo.TotalCapacity()/1e12)

	// 2. Ninety days of synthetic history for the dominant services.
	specs := trace.DefaultOntology(0)
	history, err := trace.GenerateDemands(specs, trace.MatrixOptions{
		Regions: topo.RegionsSorted(), TotalRate: 8e12,
		Days: 90, Step: time.Hour, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Establish contracts for the next quarter.
	db := contractdb.NewStore()
	fw := core.New(topo, db)
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	opts := core.DefaultOptions(start)
	opts.MinPipeRate = 5e9
	opts.Approval = approval.Options{
		RepresentativeTMs: 3,
		Risk:              risk.Options{Scenarios: 40, Seed: 2},
		Seed:              3,
	}
	rep, err := fw.EstablishContracts(history, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("granted %d contracts (%.0f%% of requested bandwidth approved)\n",
		len(rep.Contracts), 100*rep.Approval.ApprovalFraction())
	for _, c := range rep.Contracts[:min(3, len(rep.Contracts))] {
		fmt.Printf("  e.g. %s: SLO %.3f, %d entitlements\n", c.NPG, float64(c.SLO), len(c.Entitlements))
	}

	// 4. Run-time enforcement: three Coldstorage hosts sharing a rate store,
	// each with its own agent and BPF map, collectively exceeding the
	// entitlement by 2x.
	var coldRegion topology.Region
	var entitled float64
	cold, ok := db.Get("Coldstorage")
	if !ok {
		log.Fatal("no Coldstorage contract")
	}
	for _, e := range cold.Entitlements {
		if e.Direction == contract.Egress && e.Rate > entitled {
			entitled, coldRegion = e.Rate, e.Region
		}
	}
	fmt.Printf("\nenforcing Coldstorage egress in %s: entitled %.0f Gbps\n", coldRegion, entitled/1e9)

	rates := kvstore.New()
	type hostState struct {
		agent *enforce.Agent
		prog  *bpf.Program
		id    string
	}
	var hostsState []hostState
	perHost := 2 * entitled / 3 // 3 hosts × 2E/3 = 2× the entitlement
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("cold-%d", i)
		prog := bpf.NewProgram(bpf.NewMap())
		agent, err := enforce.NewAgent(enforce.AgentConfig{
			Host: id, NPG: "Coldstorage", Class: cold.Entitlements[0].Class, Region: coldRegion,
			DB: db, Rates: rates, Meter: enforce.NewStateful(), Prog: prog,
			Policy: enforce.HostBased,
		})
		if err != nil {
			log.Fatal(err)
		}
		hostsState = append(hostsState, hostState{agent: agent, prog: prog, id: id})
	}
	now := start.Add(24 * time.Hour)
	for cycle := 0; cycle < 4; cycle++ {
		for _, h := range hostsState {
			rep, err := h.agent.Cycle(now, perHost, perHost)
			if err != nil {
				log.Fatal(err)
			}
			if cycle == 3 {
				// Show the programmed kernel action and a sample packet.
				pkt := h.prog.Egress(bpf.Packet{
					NPG: "Coldstorage", Class: cold.Entitlements[0].Class,
					Region: coldRegion, Host: h.id, FlowHash: 7, Bytes: 1500,
					DSCP: bpf.DSCPForClass(cold.Entitlements[0].Class),
				})
				fmt.Printf("  %s: ratio %.2f → %d/100 groups non-conforming; sample packet DSCP %d (%s)\n",
					h.id, rep.ConformRatio, rep.NonConformGroups, pkt.DSCP,
					map[bool]string{true: "remarked", false: "conforming"}[bpf.IsNonConforming(pkt)])
			}
		}
	}
	fmt.Println("\nquickstart complete: contracts granted, over-entitlement traffic marked.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
