// Segmented hose walkthrough: reproduces the paper's Figure 6 example and
// then runs Algorithm 1 on time-varying traffic to find a segmentation
// automatically.
//
//	go run ./examples/segmentedhose
package main

import (
	"fmt"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/hose"
	"entitlement/internal/timeseries"
	"entitlement/internal/topology"
)

func main() {
	// --- Part 1: the Figure 6 worked example. ----------------------------
	// Ads in region A forecasts 300G to B, 100G to C, 250G to D and E.
	pipes := []hose.PipeRequest{
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "B", Rate: 300e9},
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "C", Rate: 100e9},
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "D", Rate: 250e9},
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "E", Rate: 250e9},
	}
	fmt.Println("Figure 6 example — Ads egress from region A:")
	fmt.Printf("  pipe model reserves      %6.0fG (no flexibility)\n", hose.PipeReserved(pipes)/1e9)

	hoses := hose.AggregatePipes(pipes)
	var egress hose.Request
	for _, h := range hoses {
		if h.Region == "A" && h.Direction == contract.Egress {
			egress = h
		}
	}
	fmt.Printf("  general hose reserves    %6.0fG (full flexibility, 4x cost)\n",
		hose.GeneralHoseReserved(&egress, 4)/1e9)

	segmented := egress
	segmented.Segments = []hose.Segment{
		{Targets: []topology.Region{"B", "C"}, Alpha: 400.0 / 900},
		{Targets: []topology.Region{"D", "E"}, Alpha: 500.0 / 900},
	}
	fmt.Printf("  segmented hose reserves  %6.0fG (traffic moves freely within {B,C} and {D,E})\n",
		hose.SegmentedReserved(&segmented)/1e9)

	// --- Part 2: Algorithm 1 on observed traffic. -------------------------
	// The service's compute lives near B and C, its storage near D and E:
	// traffic shifts within each group over time but the group totals are
	// stable, which is exactly what segmentation exploits.
	fmt.Println("\nAlgorithm 1 on time-varying per-destination traffic:")
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(vals ...float64) *timeseries.Series {
		return timeseries.New(start, time.Hour, vals)
	}
	perDst := map[topology.Region]*timeseries.Series{
		"B": mk(300e9, 150e9, 320e9, 180e9),
		"C": mk(100e9, 250e9, 80e9, 220e9), // anti-correlated with B
		"D": mk(250e9, 120e9, 260e9, 140e9),
		"E": mk(250e9, 380e9, 240e9, 360e9), // anti-correlated with D
	}
	seg1, seg2, err := hose.TwoSegments(perDst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  segment 1: %v with alpha %.3f\n", seg1.Targets, seg1.Alpha)
	fmt.Printf("  segment 2: %v with alpha %.3f\n", seg2.Targets, seg2.Alpha)

	auto := egress
	auto.Segments = []hose.Segment{seg1, seg2}
	fmt.Printf("  reserved: %6.0fG vs %6.0fG general (%.0f%% saved)\n",
		hose.SegmentedReserved(&auto)/1e9, hose.GeneralHoseReserved(&egress, 4)/1e9,
		100*(1-hose.SegmentedReserved(&auto)/hose.GeneralHoseReserved(&egress, 4)))

	// --- Part 3: coverage — why approval gets cheaper. --------------------
	regions := []topology.Region{"B", "C", "D", "E"}
	samplesOf := func(h hose.Request) []hose.TM {
		s := hose.NewSampler(h, regions, 42)
		out := make([]hose.TM, 300)
		for i := range out {
			out[i] = s.Interior()
		}
		return out
	}
	genTMs := hose.TMsForCoverage(hose.NewSampler(egress, regions, 7), samplesOf(egress), 0.75, 4000)
	segTMs := hose.TMsForCoverage(hose.NewSampler(auto, regions, 7), samplesOf(auto), 0.75, 4000)
	fmt.Printf("\nrepresentative TMs for 75%% hose coverage: general %d, segmented %d (%.0f%% fewer)\n",
		genTMs, segTMs, 100*(1-float64(segTMs)/float64(genTMs)))
}
