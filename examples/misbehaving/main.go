// Misbehaving-service example: reproduces the §2.2 incident that motivated
// the entitlement program (a buggy video-client release spiking traffic 50%
// above prediction within minutes), then shows how entitlement enforcement
// would have contained it.
//
//	go run ./examples/misbehaving
package main

import (
	"fmt"
	"log"

	"entitlement/internal/contract"
	"entitlement/internal/enforce"
	"entitlement/internal/netsim"
	"entitlement/internal/stats"
)

func main() {
	// --- The world before entitlement. ------------------------------------
	opts := netsim.DefaultIncidentOptions()
	rep, err := netsim.RunIncident(opts)
	if err != nil {
		log.Fatal(err)
	}
	peak := stats.Max(rep.CulpritRate)
	fmt.Println("incident: buggy release multiplies the video service's traffic")
	fmt.Printf("  predicted volume: %.2f Tbps, observed peak: %.2f Tbps (+%.0f%%)\n",
		opts.CulpritRate/1e12, peak/1e12, 100*(peak/opts.CulpritRate-1))
	fmt.Printf("  loss induced on well-behaved services: class A up to %.1f%%, class B up to %.1f%%\n",
		100*rep.PeakLoss(contract.ClassA), 100*rep.PeakLoss(contract.ClassB))
	fmt.Println("  QoS isolation alone cannot protect same-class victims (§2.2)")

	// --- The same overload under entitlement enforcement. ------------------
	// The culprit's contract entitles its pre-incident volume; the stateful
	// meter marks the excess, and the network drops only that.
	fmt.Println("\nwith entitlement enforcement:")
	points, err := enforce.SimulateMarking(enforce.MarkSimOptions{
		Demand:     opts.CulpritRate * (1 + opts.SpikeMagnitude),
		Entitled:   opts.CulpritRate,
		Loss:       1.0, // congested: non-conforming excess is dropped
		Iterations: 20,
		Meter:      enforce.NewStateful(),
	})
	if err != nil {
		log.Fatal(err)
	}
	final := points[len(points)-1]
	fmt.Printf("  the culprit's conforming traffic converges to its entitlement: %.2f Tbps (ratio %.2f)\n",
		final.ConformRate/1e12, final.ConformRatio)
	fmt.Printf("  excess %.2f Tbps is remarked and absorbed by the scavenger queue,\n",
		(opts.CulpritRate*(1+opts.SpikeMagnitude)-final.ConformRate)/1e12)
	fmt.Println("  so victims in the same QoS class keep their guaranteed bandwidth.")
	fmt.Println("\naccountability under the contract (§3.2):")
	fmt.Printf("  culprit above entitled rate → %v is responsible\n",
		contract.Accountability(opts.CulpritRate, peak, false))
	fmt.Printf("  victim within entitled rate, traffic dropped → %v is responsible\n",
		contract.Accountability(3e12, 2.5e12, false))
}
