// Distributed agents example: runs the run-time enforcement system over
// real TCP sockets — a contract database server, a rate-aggregation kvstore
// server, and a fleet of enforcement agents, one per host, all in separate
// goroutines of this process. The hosts collectively exceed their service's
// entitlement; the agents converge on a common marking decision with no
// central controller (§5.1's distributed architecture).
//
//	go run ./examples/agents
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/kvstore"
)

const (
	npg     = contract.NPG("Coldstorage")
	class   = contract.C4Low
	region  = "TEST"
	hosts   = 8
	perHost = 250e9 // 8 × 250G = 2 Tbps total demand
	entRate = 1e12  // entitled to half of it
)

func main() {
	// --- Servers. ----------------------------------------------------------
	dbStore := contractdb.NewStore()
	now := time.Now().UTC()
	err := dbStore.Put(contract.Contract{
		NPG: npg, SLO: 0.999, Approved: true,
		Entitlements: []contract.Entitlement{{
			NPG: npg, Class: class, Region: region, Direction: contract.Egress,
			Rate: entRate, Start: now.Add(-time.Hour), End: now.Add(24 * time.Hour),
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	dbL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dbSrv := contractdb.NewServer(dbL, dbStore)
	defer dbSrv.Close()

	kvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	kvSrv := kvstore.NewServer(kvL, kvstore.New())
	defer kvSrv.Close()

	fmt.Printf("contractdb on %s, kvstore on %s\n", dbSrv.Addr(), kvSrv.Addr())
	fmt.Printf("%d hosts × %.0fG = %.1fT demand vs %.1fT entitled\n\n",
		hosts, perHost/1e9, hosts*perHost/1e12, entRate/1e12)

	// --- Agents, each with its own TCP clients. -----------------------------
	type agentRun struct {
		agent *enforce.Agent
		id    string
	}
	var fleet []agentRun
	for i := 0; i < hosts; i++ {
		id := fmt.Sprintf("cold-%02d", i)
		db, err := contractdb.Dial(dbSrv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		kv, err := kvstore.Dial(kvSrv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer kv.Close()
		a, err := enforce.NewAgent(enforce.AgentConfig{
			Host: id, NPG: npg, Class: class, Region: region,
			DB: db, Rates: kv, Meter: enforce.NewStateful(),
			Prog: bpf.NewProgram(bpf.NewMap()), Policy: enforce.HostBased,
			RateTTL: 30 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fleet = append(fleet, agentRun{agent: a, id: id})
	}

	// --- Enforcement cycles: closed loop over real sockets. -----------------
	// A remarked host's conforming egress is zero; the agents discover the
	// aggregate via the shared kvstore and converge without coordination.
	conforming := make(map[string]bool, hosts)
	for _, f := range fleet {
		conforming[f.id] = true
	}
	for cycle := 1; cycle <= 8; cycle++ {
		var lastRep enforce.CycleReport
		marked := 0
		for _, f := range fleet {
			localConform := perHost
			if !conforming[f.id] {
				localConform = 0
			}
			rep, err := f.agent.Cycle(time.Now().UTC(), perHost, localConform)
			if err != nil {
				log.Fatal(err)
			}
			conforming[f.id] = bpf.HostGroup(f.id) >= rep.NonConformGroups
			if !conforming[f.id] {
				marked++
			}
			lastRep = rep
		}
		fmt.Printf("cycle %d: total %.2fT conform %.2fT ratio %.3f → %d/%d hosts remarked\n",
			cycle, lastRep.TotalRate/1e12, lastRep.ConformRate/1e12,
			lastRep.ConformRatio, marked, hosts)
	}
	fmt.Println("\nagents converged over live TCP with no controller in the loop.")
}
