// Capacity planning example: what happens when approval cannot grant
// everything (§4.3). The network team has two levers — negotiate demand
// down (the §8 counter-proposals) or build capacity (the planner's upgrade
// recommendations). This example runs both against the same scarce backbone.
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/contractdb"
	"entitlement/internal/core"
	"entitlement/internal/flow"
	"entitlement/internal/planner"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
	"entitlement/internal/trace"
)

func main() {
	// A backbone deliberately too small for the demand.
	topoOpts := topology.DefaultBackboneOptions()
	topoOpts.Regions = 5
	topoOpts.Chords = 2
	topoOpts.MinCapGbps = 400
	topoOpts.MaxCapGbps = 800
	topo, err := topology.Backbone(topoOpts)
	if err != nil {
		log.Fatal(err)
	}
	history, err := trace.GenerateDemands(trace.DefaultOntology(0), trace.MatrixOptions{
		Regions: topo.RegionsSorted(), TotalRate: 12e12,
		Days: 100, Step: time.Hour, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	opts.MinPipeRate = 5e9
	opts.Approval = approval.Options{
		RepresentativeTMs: 3,
		Risk:              risk.Options{Scenarios: 40, Seed: 3},
		Seed:              4,
	}

	// --- First pass: the asks exceed what the network can guarantee. ------
	fw := core.New(topo, contractdb.NewStore())
	base, err := fw.EstablishContracts(history, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first pass: %.1f%% of requested bandwidth approved, %d counter-proposals\n",
		100*base.Approval.ApprovalFraction(), len(base.Proposals))
	for i, p := range base.Proposals {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(base.Proposals)-3)
			break
		}
		fmt.Printf("  %-40s asked %7.1fG, admittable %7.1fG\n",
			p.Hose.Key(), p.Hose.Rate/1e9, p.AdmittableRate/1e9)
	}

	// --- Lever 1: automated negotiation (§8). -----------------------------
	final, rounds, err := fw.EstablishContractsNegotiated(history, opts, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlever 1 — negotiate: %d rounds, final approval %.1f%% of the (reduced) asks\n",
		len(rounds), 100*final.Approval.ApprovalFraction())

	// --- Lever 2: build capacity (planner). --------------------------------
	// The unmet original demand drives the upgrade plan.
	var demands []flow.Demand
	for i, pf := range base.Pipes {
		p := pf.Pipe
		demands = append(demands, flow.Demand{
			Key: fmt.Sprintf("%d/%s", i, p.Key()), Src: p.Src, Dst: p.Dst,
			Rate: p.Rate, Class: int(p.Class),
		})
	}
	planOpts := planner.Options{Scenarios: 60, Seed: 5}
	before, err := planner.Analyze(topo, demands, planOpts)
	if err != nil {
		log.Fatal(err)
	}
	plan, after, _, err := planner.RecommendUpgrades(topo, demands, planOpts, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlever 2 — build: %.1f%% of pipe demand admitted before upgrades\n",
		100*before.AdmittedFraction())
	for i, u := range plan {
		fmt.Printf("  %d. upgrade %s->%s from %.0fG to %.0fG\n",
			i+1, u.Src, u.Dst, u.OldCapacity/1e9, u.NewCapacity/1e9)
	}
	fmt.Printf("  after the plan: %.1f%% admitted\n", 100*after.AdmittedFraction())
	fmt.Println("\nthe contract framework makes both levers explicit: reduced asks become")
	fmt.Println("enforceable guarantees now, and binding links become the build plan.")
}
