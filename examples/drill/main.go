// Enforcement drill example: reproduces the paper's §6 real-world test on
// the simulated WAN and narrates what each stage demonstrates.
//
//	go run ./examples/drill
package main

import (
	"fmt"
	"log"

	"entitlement/internal/netsim"
	"entitlement/internal/stats"
)

func main() {
	opts := netsim.DefaultDrillOptions()
	opts.Hosts = 30
	opts.StageTicks = 50
	rep, err := netsim.RunDrill(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("September-2021 drill reproduction (compressed):")
	fmt.Printf("  service: Coldstorage, %d hosts, %.1f Tbps demand, entitled %.1f Tbps\n\n",
		opts.Hosts, opts.Demand/1e12, opts.Entitled/1e12)

	confLoss, nonLoss := rep.LossSeries()
	total, conform, _ := rep.ServiceRates()

	for _, stage := range rep.Stages {
		lo := stage.Start + (stage.End-stage.Start)/2
		hi := stage.End
		avgConfLoss := stats.Mean(confLoss[lo:hi])
		avgNonLoss := stats.Mean(nonLoss[lo:hi])
		avgTotal := stats.Mean(total[lo:hi])
		avgConform := stats.Mean(conform[lo:hi])
		fmt.Printf("stage %-22s conforming loss %5.2f%%, non-conforming loss %6.2f%%, total %.2fT, conforming %.2fT\n",
			stage.Name, 100*avgConfLoss, 100*avgNonLoss, avgTotal/1e12, avgConform/1e12)
	}

	fmt.Println("\nwhat the drill demonstrates (§6):")
	fmt.Println("  - conforming traffic sees ~0% loss at every ACL stage (Figure 11)")
	fmt.Println("  - total rate descends to the entitled rate as drops intensify (Figure 12)")
	fmt.Println("  - host-based remarking lets the app fail over, so reads barely notice")
	fmt.Printf("    (read latency at 12.5%% drop: %.0f ms vs %.0f ms baseline)\n",
		1000*appAvg(rep, "acl-12.5"), 1000*appAvg(rep, "baseline"))

	blockErrs := 0
	for _, a := range rep.App.Series {
		blockErrs += a.BlockErrors
	}
	fmt.Printf("  - stateful writes suffer: %d block errors, peaking at the 100%% stage (Figure 17)\n", blockErrs)
}

func appAvg(rep *netsim.DrillReport, stage string) float64 {
	for _, s := range rep.Stages {
		if s.Name != stage {
			continue
		}
		lo := s.Start + (s.End-s.Start)/2
		hi := s.End
		if hi > len(rep.App.Series) {
			hi = len(rep.App.Series)
		}
		sum := 0.0
		for _, a := range rep.App.Series[lo:hi] {
			sum += a.AvgReadLatency.Seconds()
		}
		return sum / float64(hi-lo)
	}
	return 0
}
