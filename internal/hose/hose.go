// Package hose implements the contract-representation layer of §4.2: the
// pipe-based and hose-based demand models, the segmented-hose enhancement
// with the paper's two-segment greedy algorithm (Algorithm 1), reserved
// capacity accounting (the Figure 6 example: 900G pipe / 3600G hose / 1800G
// segmented), representative traffic-matrix sampling from the hose polytope,
// and the hose-coverage metric used in §7.2 and §7.3.
//
// It also implements the §8 "unbalanced ingress and egress hoses"
// preprocessing (BalanceHoses).
package hose

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"entitlement/internal/contract"
	"entitlement/internal/stats"
	"entitlement/internal/timeseries"
	"entitlement/internal/topology"
)

// PipeRequest is a source/destination-pair demand — the SLI metric format
// (NPG, QoS, src_region, dst_region, bandwidth) of §4.1.
type PipeRequest struct {
	NPG   contract.NPG
	Class contract.Class
	Src   topology.Region
	Dst   topology.Region
	Rate  float64 // bits per second
}

// Key returns a stable identity for the pipe.
func (p PipeRequest) Key() string {
	return fmt.Sprintf("%s/%s/%s>%s", p.NPG, p.Class, p.Src, p.Dst)
}

// Segment is one piece of a segmented hose: a subset of target regions and
// the fraction Alpha of the hose constraint reserved for it (Equation 2).
type Segment struct {
	Targets []topology.Region
	Alpha   float64
}

// Request is a hose-based entitlement request: the aggregate ingress or
// egress rate of one (NPG, class, region). A nil Segments slice means the
// general hose model; otherwise the segments partition the target regions
// and their alphas sum to 1 (the paper: "the fractions sum up to 1 ...
// avoids over-provisioning").
type Request struct {
	NPG       contract.NPG
	Class     contract.Class
	Region    topology.Region
	Direction contract.Direction
	Rate      float64
	Segments  []Segment
}

// Key returns a stable identity for the hose.
func (h *Request) Key() string {
	return fmt.Sprintf("%s/%s/%s/%s", h.NPG, h.Class, h.Region, h.Direction)
}

// Validate checks segmentation invariants against the full target set.
func (h *Request) Validate(targets []topology.Region) error {
	if h.Rate < 0 {
		return fmt.Errorf("hose: negative rate %v", h.Rate)
	}
	if len(h.Segments) == 0 {
		return nil
	}
	seen := make(map[topology.Region]bool)
	alphaSum := 0.0
	for _, s := range h.Segments {
		if s.Alpha <= 0 || s.Alpha >= 1 {
			return fmt.Errorf("hose: segment alpha %v out of (0,1)", s.Alpha)
		}
		alphaSum += s.Alpha
		for _, r := range s.Targets {
			if seen[r] {
				return fmt.Errorf("hose: region %s in multiple segments", r)
			}
			seen[r] = true
		}
	}
	if math.Abs(alphaSum-1) > 1e-6 {
		return fmt.Errorf("hose: segment alphas sum to %v, want 1", alphaSum)
	}
	for _, r := range targets {
		if r != h.Region && !seen[r] {
			return fmt.Errorf("hose: region %s not covered by any segment", r)
		}
	}
	return nil
}

// AggregatePipes converts pipe requests into general hose requests by
// aggregating egress per (NPG, class, src) and ingress per (NPG, class, dst)
// — the Pipe→Hose conversion of §4.2 (Figure 6(c): 300+100+250+250 = 900G
// egress for A).
func AggregatePipes(pipes []PipeRequest) []Request {
	type key struct {
		npg    contract.NPG
		class  contract.Class
		region topology.Region
		dir    contract.Direction
	}
	acc := make(map[key]float64)
	var order []key
	add := func(k key, rate float64) {
		if _, ok := acc[k]; !ok {
			order = append(order, k)
		}
		acc[k] += rate
	}
	for _, p := range pipes {
		add(key{p.NPG, p.Class, p.Src, contract.Egress}, p.Rate)
		add(key{p.NPG, p.Class, p.Dst, contract.Ingress}, p.Rate)
	}
	out := make([]Request, 0, len(order))
	for _, k := range order {
		out = append(out, Request{
			NPG: k.npg, Class: k.class, Region: k.region,
			Direction: k.dir, Rate: acc[k],
		})
	}
	return out
}

// --- Reserved-capacity accounting (the Figure 6 comparison) --------------

// PipeReserved returns the capacity the network must reserve under the
// pipe-based model: the sum of every pipe's rate (Figure 6(b): 900G).
func PipeReserved(pipes []PipeRequest) float64 {
	s := 0.0
	for _, p := range pipes {
		s += p.Rate
	}
	return s
}

// GeneralHoseReserved returns the worst-case reservation for a general hose
// toward numTargets possible destinations: Rate × numTargets (Figure 6(c):
// 900G × 4 = 3600G).
func GeneralHoseReserved(h *Request, numTargets int) float64 {
	return h.Rate * float64(numTargets)
}

// SegmentedReserved returns the reservation for a segmented hose: for each
// segment, Alpha×Rate to each of its targets (Figure 6(d): 0.444×900×2 +
// 0.555×900×2 ≈ 400×2 + 500×2 = 1800G).
func SegmentedReserved(h *Request) float64 {
	s := 0.0
	for _, seg := range h.Segments {
		s += h.Rate * seg.Alpha * float64(len(seg.Targets))
	}
	return s
}

// --- Segmentation: ratios and Algorithm 1 --------------------------------

// RatioSeries computes R(S, t) = Σ_{dst∈S} F(dst,t) / Σ_{dst∈N} F(dst,t)
// (Equation 3) over the per-destination series. Instants where the total is
// zero are skipped.
func RatioSeries(perDst map[topology.Region]*timeseries.Series, s []topology.Region) []float64 {
	if len(perDst) == 0 {
		return nil
	}
	inS := make(map[topology.Region]bool, len(s))
	for _, r := range s {
		inS[r] = true
	}
	// Iterate destinations in sorted order: the sums below are float
	// accumulations, and map-iteration order would make the low bits of the
	// ratios (and everything downstream: segment alphas, sampled TMs,
	// borderline approval flags) vary run to run.
	dsts := make([]topology.Region, 0, len(perDst))
	for r := range perDst {
		dsts = append(dsts, r)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	n := perDst[dsts[0]].Len()
	out := make([]float64, 0, n)
	for t := 0; t < n; t++ {
		total, sel := 0.0, 0.0
		for _, r := range dsts {
			v := perDst[r].Values[t]
			total += v
			if inS[r] {
				sel += v
			}
		}
		if total == 0 {
			continue
		}
		out = append(out, sel/total)
	}
	return out
}

// AlphaMinus returns α−(S) = min_t R(S, t) (Equation 3). It returns 0 when
// there is no data.
func AlphaMinus(perDst map[topology.Region]*timeseries.Series, s []topology.Region) float64 {
	rs := RatioSeries(perDst, s)
	if len(rs) == 0 {
		return 0
	}
	return stats.Min(rs)
}

// AlphaPlus returns α+(S) = max_t R(S, t).
func AlphaPlus(perDst map[topology.Region]*timeseries.Series, s []topology.Region) float64 {
	rs := RatioSeries(perDst, s)
	if len(rs) == 0 {
		return 0
	}
	return stats.Max(rs)
}

// TwoSegments runs Algorithm 1: it ranks destination regions by decreasing
// single-node α− and greedily grows the first segment while α−(SEG) ≤ 0.5,
// meeting the "smallest set S such that α−(S) > 0.5" optimality condition
// (the split ratio scales volume reduction as α·(1−α), maximized near 0.5).
//
// The returned segments carry alphas (α−(SEG) bounded away from the
// endpoints, and its complement) that sum to 1. An error is returned when
// there are fewer than two destinations.
func TwoSegments(perDst map[topology.Region]*timeseries.Series) (seg1, seg2 Segment, err error) {
	if len(perDst) < 2 {
		return Segment{}, Segment{}, errors.New("hose: need at least two destinations to segment")
	}
	// Line 2-3: per-node α−.
	type ranked struct {
		region topology.Region
		r      float64
	}
	nodes := make([]ranked, 0, len(perDst))
	for r := range perDst {
		nodes = append(nodes, ranked{region: r, r: AlphaMinus(perDst, []topology.Region{r})})
	}
	// Line 4: sort non-increasing by α− (ties by name for determinism).
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].r != nodes[j].r {
			return nodes[i].r > nodes[j].r
		}
		return nodes[i].region < nodes[j].region
	})
	// Lines 5-9: greedy growth while α−(SEG) ≤ 0.5.
	var seg []topology.Region
	for _, n := range nodes {
		if AlphaMinus(perDst, seg) <= 0.5 {
			seg = append(seg, n.region)
		} else {
			break
		}
	}
	// Keep at least one region on each side.
	if len(seg) == len(perDst) {
		seg = seg[:len(seg)-1]
	}
	if len(seg) == 0 {
		seg = []topology.Region{nodes[0].region}
	}
	// Line 10: complement.
	inSeg := make(map[topology.Region]bool, len(seg))
	for _, r := range seg {
		inSeg[r] = true
	}
	var rest []topology.Region
	for r := range perDst {
		if !inSeg[r] {
			rest = append(rest, r)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })

	// The α+ of a segment is the share of the hose it may need at peak; using
	// it keeps every observed TM feasible under the segmented constraints.
	a := stats.Clamp(AlphaPlus(perDst, seg), 0.05, 0.95)
	return Segment{Targets: seg, Alpha: a}, Segment{Targets: rest, Alpha: 1 - a}, nil
}

// NSegments generalizes Algorithm 1 to n segments by recursively splitting
// the segment with the largest Alpha×|Targets| reservation. n must be >= 2;
// fewer segments than requested may be returned when targets run out.
func NSegments(perDst map[topology.Region]*timeseries.Series, n int) ([]Segment, error) {
	if n < 2 {
		return nil, errors.New("hose: NSegments needs n >= 2")
	}
	s1, s2, err := TwoSegments(perDst)
	if err != nil {
		return nil, err
	}
	segs := []Segment{s1, s2}
	for len(segs) < n {
		// Pick the most expensive splittable segment.
		best, bestIdx := -1.0, -1
		for i, s := range segs {
			if len(s.Targets) < 2 {
				continue
			}
			cost := s.Alpha * float64(len(s.Targets))
			if cost > best {
				best, bestIdx = cost, i
			}
		}
		if bestIdx < 0 {
			break
		}
		target := segs[bestIdx]
		sub := make(map[topology.Region]*timeseries.Series, len(target.Targets))
		for _, r := range target.Targets {
			if ser, ok := perDst[r]; ok {
				sub[r] = ser
			}
		}
		a, b, err := TwoSegments(sub)
		if err != nil {
			break
		}
		// Children split the parent's alpha.
		a.Alpha *= target.Alpha
		b.Alpha = target.Alpha - a.Alpha
		segs = append(segs[:bestIdx], segs[bestIdx+1:]...)
		segs = append(segs, a, b)
	}
	return segs, nil
}

// SegmentHose returns a copy of the general hose h with the two-segment
// split applied, or h unchanged (general hose) when segmentation is not
// possible.
func SegmentHose(h Request, perDst map[topology.Region]*timeseries.Series) Request {
	s1, s2, err := TwoSegments(perDst)
	if err != nil {
		return h
	}
	h.Segments = []Segment{s1, s2}
	return h
}

// --- Traffic-matrix sampling and coverage (§7.2, §7.3) -------------------

// TM is one realization of a hose: the per-destination rates of a single
// source hose (the paper evaluates egress hoses; §4.2 "for simplicity, we
// only consider egress traffic here").
type TM struct {
	Rates map[topology.Region]float64
}

// Total returns the TM's aggregate rate.
func (tm TM) Total() float64 {
	s := 0.0
	for _, v := range tm.Rates {
		s += v
	}
	return s
}

// Dominates reports whether tm admits every flow of other: component-wise
// tm ≥ other. A representative TM set "covers" the polytope points it
// dominates (the [24] coverage notion).
func (tm TM) Dominates(other TM) bool {
	for r, v := range other.Rates {
		if tm.Rates[r] < v-1e-9 {
			return false
		}
	}
	return true
}

// Sampler draws TMs from a hose's polytope.
type Sampler struct {
	Hose    Request
	Targets []topology.Region
	rng     *rand.Rand
}

// NewSampler builds a sampler for the hose over the given target regions
// (the hose's own region is excluded automatically).
func NewSampler(h Request, targets []topology.Region, seed int64) *Sampler {
	clean := make([]topology.Region, 0, len(targets))
	for _, r := range targets {
		if r != h.Region {
			clean = append(clean, r)
		}
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i] < clean[j] })
	return &Sampler{Hose: h, Targets: clean, rng: rand.New(rand.NewSource(seed))}
}

// Representative draws a maximal TM: every hose (and segment) constraint is
// tight, so the TM sits on the polytope's dominant surface — the property
// representative TMs need to cover interior points.
func (s *Sampler) Representative() TM {
	return s.draw(1)
}

// Interior draws a TM strictly inside the polytope, with utilization factor
// drawn so points concentrate toward realistic (partially loaded) traffic.
func (s *Sampler) Interior() TM {
	u := math.Pow(s.rng.Float64(), 1.5)
	return s.draw(u)
}

func (s *Sampler) draw(scale float64) TM {
	tm := TM{Rates: make(map[topology.Region]float64, len(s.Targets))}
	if len(s.Targets) == 0 {
		return tm
	}
	if len(s.Hose.Segments) == 0 {
		split := stats.Dirichlet(s.rng, len(s.Targets), 1)
		for i, r := range s.Targets {
			tm.Rates[r] = s.Hose.Rate * scale * split[i]
		}
		return tm
	}
	for _, seg := range s.Hose.Segments {
		targets := make([]topology.Region, 0, len(seg.Targets))
		for _, r := range seg.Targets {
			if r != s.Hose.Region {
				targets = append(targets, r)
			}
		}
		if len(targets) == 0 {
			continue
		}
		split := stats.Dirichlet(s.rng, len(targets), 1)
		for i, r := range targets {
			tm.Rates[r] = s.Hose.Rate * seg.Alpha * scale * split[i]
		}
	}
	return tm
}

// Coverage returns the fraction of the sample TMs dominated by at least one
// representative — the §7.2 "hose coverage" metric.
func Coverage(representatives, samples []TM) float64 {
	if len(samples) == 0 {
		return 0
	}
	covered := 0
	for _, s := range samples {
		for _, r := range representatives {
			if r.Dominates(s) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(samples))
}

// TMsForCoverage draws representatives one at a time until the running set
// covers at least target of the sample set, returning the count used (or
// maxTMs if the target was never reached). This implements the Figure 20
// experiment: TMs needed to achieve 75% coverage.
func TMsForCoverage(s *Sampler, samples []TM, target float64, maxTMs int) int {
	if target <= 0 {
		return 0
	}
	covered := make([]bool, len(samples))
	nCovered := 0
	for k := 1; k <= maxTMs; k++ {
		rep := s.Representative()
		for i, sm := range samples {
			if !covered[i] && rep.Dominates(sm) {
				covered[i] = true
				nCovered++
			}
		}
		if float64(nCovered) >= target*float64(len(samples)) {
			return k
		}
	}
	return maxTMs
}

// --- Ingress/egress balancing (§8) ---------------------------------------

// DummyNPG tags the balancing filler demand.
const DummyNPG contract.NPG = "dummy-balance"

// BalanceHoses equalizes total ingress and egress demand: the shortage
// direction is inflated with a dummy service spread evenly across that
// direction's regions ("this delta of the demand is modeled as a dummy
// service and is evenly attributed to all regions", §8). The input is not
// modified; the balanced slice is returned.
func BalanceHoses(hoses []Request, regions []topology.Region, class contract.Class) []Request {
	var egress, ingress float64
	for _, h := range hoses {
		if h.Direction == contract.Egress {
			egress += h.Rate
		} else {
			ingress += h.Rate
		}
	}
	out := make([]Request, len(hoses))
	copy(out, hoses)
	delta := egress - ingress
	if math.Abs(delta) < 1e-9 || len(regions) == 0 {
		return out
	}
	dir := contract.Egress
	if delta > 0 {
		dir = contract.Ingress
	}
	per := math.Abs(delta) / float64(len(regions))
	for _, r := range regions {
		out = append(out, Request{
			NPG: DummyNPG, Class: class, Region: r, Direction: dir, Rate: per,
		})
	}
	return out
}

// TotalByDirection sums hose rates per direction.
func TotalByDirection(hoses []Request) (egress, ingress float64) {
	for _, h := range hoses {
		if h.Direction == contract.Egress {
			egress += h.Rate
		} else {
			ingress += h.Rate
		}
	}
	return egress, ingress
}

// SelectRepresentatives greedily picks at most k TMs from the candidate pool
// to maximize coverage of the sample set — the job of the demand-generation
// service the approval pipeline calls ("narrow down infinite possible Pipe
// realizations into a small set of representative ones, which still covers a
// significant portion of the Hose polytope", §4.3 / [1]). Each round adds
// the candidate dominating the most still-uncovered samples; selection stops
// early once everything coverable is covered.
func SelectRepresentatives(candidates, samples []TM, k int) []TM {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	covered := make([]bool, len(samples))
	used := make([]bool, len(candidates))
	// Precompute domination bitsets lazily per candidate row.
	dominates := make([][]bool, len(candidates))
	domRow := func(ci int) []bool {
		if dominates[ci] == nil {
			row := make([]bool, len(samples))
			for si := range samples {
				row[si] = candidates[ci].Dominates(samples[si])
			}
			dominates[ci] = row
		}
		return dominates[ci]
	}
	var out []TM
	for len(out) < k {
		bestGain, bestIdx := 0, -1
		for ci := range candidates {
			if used[ci] {
				continue
			}
			row := domRow(ci)
			gain := 0
			for si := range samples {
				if !covered[si] && row[si] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, ci
			}
		}
		if bestIdx < 0 {
			break // nothing adds coverage
		}
		used[bestIdx] = true
		out = append(out, candidates[bestIdx])
		for si, d := range dominates[bestIdx] {
			if d {
				covered[si] = true
			}
		}
	}
	return out
}
