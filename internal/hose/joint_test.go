package hose

import (
	"math"
	"testing"
	"testing/quick"

	"entitlement/internal/contract"
	"entitlement/internal/topology"
)

func jointHoses(rates map[topology.Region][2]float64) []Request {
	var out []Request
	var regions []topology.Region
	for r := range rates {
		regions = append(regions, r)
	}
	// Deterministic order.
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			if regions[j] < regions[i] {
				regions[i], regions[j] = regions[j], regions[i]
			}
		}
	}
	for _, r := range regions {
		eg, in := rates[r][0], rates[r][1]
		if eg > 0 {
			out = append(out, Request{NPG: "S", Class: contract.ClassB, Region: r,
				Direction: contract.Egress, Rate: eg})
		}
		if in > 0 {
			out = append(out, Request{NPG: "S", Class: contract.ClassB, Region: r,
				Direction: contract.Ingress, Rate: in})
		}
	}
	return out
}

func TestJointSamplerFeasibility(t *testing.T) {
	hoses := jointHoses(map[topology.Region][2]float64{
		"A": {900, 100}, "B": {200, 400}, "C": {100, 300}, "D": {50, 450},
	})
	js, err := NewJointSampler(hoses, 5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		tm := js.Sample(1)
		for _, r := range js.Regions() {
			if eg := tm.EgressSum(r); eg > 900+1e-6 && r == "A" {
				t.Fatalf("egress[%s] = %v exceeds hose", r, eg)
			}
		}
		// Every region's sums within its constraints.
		checks := map[topology.Region][2]float64{
			"A": {900, 100}, "B": {200, 400}, "C": {100, 300}, "D": {50, 450},
		}
		for r, lim := range checks {
			if got := tm.EgressSum(r); got > lim[0]*1.001+1e-6 {
				t.Fatalf("trial %d: egress[%s] = %v > %v", trial, r, got, lim[0])
			}
			if got := tm.IngressSum(r); got > lim[1]*1.001+1e-6 {
				t.Fatalf("trial %d: ingress[%s] = %v > %v", trial, r, got, lim[1])
			}
		}
		// No self traffic.
		for src, row := range tm.Rates {
			if _, ok := row[src]; ok {
				t.Fatal("self traffic present")
			}
		}
	}
}

func TestJointSamplerBindingDirectionTight(t *testing.T) {
	// Total egress 1250 vs total ingress 1250 (balanced): at scale 1 the
	// grand total should approach the common total.
	hoses := jointHoses(map[topology.Region][2]float64{
		"A": {900, 100}, "B": {200, 400}, "C": {100, 300}, "D": {50, 450},
	})
	js, err := NewJointSampler(hoses, 9)
	if err != nil {
		t.Fatal(err)
	}
	tm := js.Sample(1)
	total := 0.0
	for _, r := range js.Regions() {
		total += tm.EgressSum(r)
	}
	if total < 1250*0.95 {
		t.Errorf("grand total = %v, want ~1250 (tight)", total)
	}
}

func TestJointSamplerUnbalancedHoses(t *testing.T) {
	// Egress total 1000, ingress total 400: the feasible common total is
	// 400; samples must respect ingress exactly and leave egress slack.
	hoses := jointHoses(map[topology.Region][2]float64{
		"A": {800, 100}, "B": {200, 300},
	})
	js, err := NewJointSampler(hoses, 3)
	if err != nil {
		t.Fatal(err)
	}
	tm := js.Sample(1)
	if got := tm.IngressSum("A"); got > 100+1e-6 {
		t.Errorf("ingress[A] = %v > 100", got)
	}
	if got := tm.IngressSum("B"); got > 300+1e-6 {
		t.Errorf("ingress[B] = %v > 300", got)
	}
	total := tm.EgressSum("A") + tm.EgressSum("B")
	if total > 400+1e-6 {
		t.Errorf("grand total %v exceeds feasible 400", total)
	}
	if total < 350 {
		t.Errorf("grand total %v far below feasible 400", total)
	}
}

func TestJointSamplerInterior(t *testing.T) {
	hoses := jointHoses(map[topology.Region][2]float64{
		"A": {100, 100}, "B": {100, 100}, "C": {100, 100},
	})
	js, err := NewJointSampler(hoses, 7)
	if err != nil {
		t.Fatal(err)
	}
	sawPartial := false
	for i := 0; i < 30; i++ {
		tm := js.Interior()
		total := 0.0
		for _, r := range js.Regions() {
			if tm.EgressSum(r) > 100+1e-6 {
				t.Fatal("interior sample violates egress")
			}
			total += tm.EgressSum(r)
		}
		if total < 250 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("interior samples never partial")
	}
}

func TestJointSamplerPipes(t *testing.T) {
	hoses := jointHoses(map[topology.Region][2]float64{
		"A": {100, 50}, "B": {50, 100},
	})
	js, err := NewJointSampler(hoses, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := js.Sample(1)
	pipes := tm.Pipes("S", contract.ClassB)
	if len(pipes) == 0 {
		t.Fatal("no pipes")
	}
	sum := 0.0
	for _, p := range pipes {
		if p.NPG != "S" || p.Class != contract.ClassB {
			t.Errorf("pipe identity = %+v", p)
		}
		if p.Src == p.Dst {
			t.Error("self pipe")
		}
		sum += p.Rate
	}
	want := tm.EgressSum("A") + tm.EgressSum("B")
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("pipes sum %v != matrix total %v", sum, want)
	}
}

func TestNewJointSamplerValidation(t *testing.T) {
	if _, err := NewJointSampler(nil, 1); err == nil {
		t.Error("empty hoses accepted")
	}
	onlyEgress := []Request{{NPG: "S", Region: "A", Direction: contract.Egress, Rate: 10}}
	if _, err := NewJointSampler(onlyEgress, 1); err == nil {
		t.Error("egress-only accepted")
	}
	mixed := []Request{
		{NPG: "S", Class: contract.ClassA, Region: "A", Direction: contract.Egress, Rate: 10},
		{NPG: "T", Class: contract.ClassA, Region: "B", Direction: contract.Ingress, Rate: 10},
	}
	if _, err := NewJointSampler(mixed, 1); err == nil {
		t.Error("mixed NPGs accepted")
	}
	negative := []Request{
		{NPG: "S", Region: "A", Direction: contract.Egress, Rate: -1},
		{NPG: "S", Region: "B", Direction: contract.Ingress, Rate: 10},
	}
	if _, err := NewJointSampler(negative, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

// Property: every joint sample is feasible for arbitrary constraint vectors.
func TestJointSamplerFeasibilityProperty(t *testing.T) {
	f := func(seed int64, egRaw, inRaw [4]uint16) bool {
		rates := make(map[topology.Region][2]float64, 4)
		names := []topology.Region{"A", "B", "C", "D"}
		anyEg, anyIn := false, false
		for i, r := range names {
			eg := float64(egRaw[i])
			in := float64(inRaw[i])
			rates[r] = [2]float64{eg, in}
			anyEg = anyEg || eg > 0
			anyIn = anyIn || in > 0
		}
		if !anyEg || !anyIn {
			return true
		}
		js, err := NewJointSampler(jointHoses(rates), seed)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			tm := js.Sample(1)
			for _, r := range names {
				if tm.EgressSum(r) > rates[r][0]*1.001+1e-6 {
					return false
				}
				if tm.IngressSum(r) > rates[r][1]*1.001+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
