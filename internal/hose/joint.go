package hose

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"entitlement/internal/contract"
	"entitlement/internal/stats"
	"entitlement/internal/topology"
)

// This file samples full traffic matrices from the GENERAL hose model of
// Equation 1 — the joint polytope where every region's egress row sum and
// ingress column sum are simultaneously constrained:
//
//	Σ_src f(src,dst) ≤ ingress[dst]   and   Σ_dst f(src,dst) ≤ egress[src]
//
// The per-hose Sampler treats each hose independently, which is fine for
// coverage experiments on one hose; approval over a whole service's hoses
// benefits from realizations that respect both directions at once. Sampling
// uses iterative proportional fitting (Sinkhorn scaling): draw a random
// positive seed matrix, then alternately scale rows and columns toward the
// constraint vector until both are (approximately) tight.

// FullTM is a complete traffic matrix over regions.
type FullTM struct {
	Rates map[topology.Region]map[topology.Region]float64
}

// Rate returns f(src, dst) (0 when absent).
func (tm FullTM) Rate(src, dst topology.Region) float64 { return tm.Rates[src][dst] }

// EgressSum returns the row sum for src.
func (tm FullTM) EgressSum(src topology.Region) float64 {
	s := 0.0
	for _, v := range tm.Rates[src] {
		s += v
	}
	return s
}

// IngressSum returns the column sum for dst.
func (tm FullTM) IngressSum(dst topology.Region) float64 {
	s := 0.0
	for _, row := range tm.Rates {
		s += row[dst]
	}
	return s
}

// Pipes flattens the matrix into pipe requests for the given flow set.
func (tm FullTM) Pipes(npg contract.NPG, class contract.Class) []PipeRequest {
	var srcs []topology.Region
	for src := range tm.Rates {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	var out []PipeRequest
	for _, src := range srcs {
		var dsts []topology.Region
		for dst := range tm.Rates[src] {
			dsts = append(dsts, dst)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		for _, dst := range dsts {
			if r := tm.Rates[src][dst]; r > 0 {
				out = append(out, PipeRequest{NPG: npg, Class: class, Src: src, Dst: dst, Rate: r})
			}
		}
	}
	return out
}

// JointSampler draws full TMs satisfying a set of egress and ingress hose
// constraints for one (NPG, class).
type JointSampler struct {
	regions []topology.Region
	egress  map[topology.Region]float64
	ingress map[topology.Region]float64
	rng     *rand.Rand
}

// NewJointSampler builds a sampler from the hoses of one flow set. Regions
// without an egress (ingress) hose get a zero constraint in that direction.
// At least one egress and one ingress hose are required.
func NewJointSampler(hoses []Request, seed int64) (*JointSampler, error) {
	js := &JointSampler{
		egress:  make(map[topology.Region]float64),
		ingress: make(map[topology.Region]float64),
		rng:     rand.New(rand.NewSource(seed)),
	}
	seen := make(map[topology.Region]bool)
	var npg contract.NPG
	var class contract.Class
	for i, h := range hoses {
		if i == 0 {
			npg, class = h.NPG, h.Class
		} else if h.NPG != npg || h.Class != class {
			return nil, fmt.Errorf("hose: joint sampler got mixed flow sets (%s/%s vs %s/%s)",
				npg, class, h.NPG, h.Class)
		}
		if h.Rate < 0 {
			return nil, fmt.Errorf("hose: negative hose rate %v", h.Rate)
		}
		if h.Direction == contract.Egress {
			js.egress[h.Region] += h.Rate
		} else {
			js.ingress[h.Region] += h.Rate
		}
		if !seen[h.Region] {
			seen[h.Region] = true
			js.regions = append(js.regions, h.Region)
		}
	}
	if len(js.egress) == 0 || len(js.ingress) == 0 {
		return nil, errors.New("hose: joint sampler needs both egress and ingress hoses")
	}
	sort.Slice(js.regions, func(i, j int) bool { return js.regions[i] < js.regions[j] })
	return js, nil
}

// sinkhornIters bounds the alternating scaling; the scaling converges
// geometrically, so a few dozen rounds give constraint error well below the
// tolerance used by callers.
const sinkhornIters = 60

// Sample draws one full TM: a random positive matrix is scaled until every
// row sum ≤ its egress constraint and every column sum ≤ its ingress
// constraint, with the binding direction tight (utilization 1 at the
// polytope surface). scale in (0, 1] shrinks the target sums for interior
// points.
func (js *JointSampler) Sample(scale float64) FullTM {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := len(js.regions)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				continue // no self traffic
			}
			// Exponential draws make the realization diverse; Dirichlet-like
			// after normalization.
			m[i][j] = js.rng.ExpFloat64() + 1e-9
		}
	}
	rowTarget := make([]float64, n)
	colTarget := make([]float64, n)
	var totalEg, totalIn float64
	for i, r := range js.regions {
		rowTarget[i] = js.egress[r] * scale
		colTarget[i] = js.ingress[r] * scale
		totalEg += rowTarget[i]
		totalIn += colTarget[i]
	}
	// A TM's grand total satisfies both Σrows and Σcols; aim for the
	// feasible common total (the smaller side) by shrinking the larger
	// side's targets proportionally — this is the §8 balancing applied at
	// sampling time.
	if totalEg > 0 && totalIn > 0 {
		switch {
		case totalEg > totalIn:
			for i := range rowTarget {
				rowTarget[i] *= totalIn / totalEg
			}
		case totalIn > totalEg:
			for i := range colTarget {
				colTarget[i] *= totalEg / totalIn
			}
		}
	}
	for iter := 0; iter < sinkhornIters; iter++ {
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m[i][j]
			}
			if sum > 0 && rowTarget[i] >= 0 {
				f := rowTarget[i] / sum
				for j := 0; j < n; j++ {
					m[i][j] *= f
				}
			}
		}
		for j := 0; j < n; j++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += m[i][j]
			}
			if sum > 0 && colTarget[j] >= 0 {
				f := colTarget[j] / sum
				for i := 0; i < n; i++ {
					m[i][j] *= f
				}
			}
		}
	}
	// Final row pass may have been disturbed by the column pass; clamp any
	// residual overshoot so the sample is strictly feasible.
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += m[i][j]
		}
		if limit := js.egress[js.regions[i]] * scale; sum > limit && sum > 0 {
			f := limit / sum
			for j := 0; j < n; j++ {
				m[i][j] *= f
			}
		}
	}
	tm := FullTM{Rates: make(map[topology.Region]map[topology.Region]float64, n)}
	for i, src := range js.regions {
		row := make(map[topology.Region]float64, n-1)
		for j, dst := range js.regions {
			if i != j && m[i][j] > 0 {
				row[dst] = m[i][j]
			}
		}
		tm.Rates[src] = row
	}
	return tm
}

// Interior draws a strictly interior TM (random utilization, biased toward
// realistic partial load like Sampler.Interior).
func (js *JointSampler) Interior() FullTM {
	u := js.rng.Float64()
	return js.Sample(0.05 + 0.95*stats.Clamp(u*u, 0, 1))
}

// Regions returns the sampler's region universe.
func (js *JointSampler) Regions() []topology.Region {
	out := make([]topology.Region, len(js.regions))
	copy(out, js.regions)
	return out
}
