package hose

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/timeseries"
	"entitlement/internal/topology"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func constSeries(v float64, n int) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return timeseries.New(t0, time.Hour, vals)
}

// figureSixPipes is the §4.2 worked example: Ads egress from region A.
func figureSixPipes() []PipeRequest {
	return []PipeRequest{
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "B", Rate: 300},
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "C", Rate: 100},
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "D", Rate: 250},
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "E", Rate: 250},
	}
}

func TestAggregatePipesFigureSix(t *testing.T) {
	hoses := AggregatePipes(figureSixPipes())
	var egressA *Request
	for i := range hoses {
		h := &hoses[i]
		if h.Region == "A" && h.Direction == contract.Egress {
			egressA = h
		}
	}
	if egressA == nil {
		t.Fatal("no egress hose for A")
	}
	// Figure 6(c): "the pipe requests can be aggregated into a Hose request,
	// which is 900G egress for A".
	if egressA.Rate != 900 {
		t.Errorf("egress hose rate = %v, want 900", egressA.Rate)
	}
	// Ingress hoses per destination.
	for _, want := range []struct {
		region topology.Region
		rate   float64
	}{{"B", 300}, {"C", 100}, {"D", 250}, {"E", 250}} {
		found := false
		for i := range hoses {
			h := &hoses[i]
			if h.Region == want.region && h.Direction == contract.Ingress {
				found = true
				if h.Rate != want.rate {
					t.Errorf("ingress %s = %v, want %v", want.region, h.Rate, want.rate)
				}
			}
		}
		if !found {
			t.Errorf("no ingress hose for %s", want.region)
		}
	}
}

func TestReservedCapacityFigureSix(t *testing.T) {
	pipes := figureSixPipes()
	// Figure 6(b): pipe model reserves 900G.
	if got := PipeReserved(pipes); got != 900 {
		t.Errorf("PipeReserved = %v, want 900", got)
	}
	h := Request{NPG: "Ads", Class: contract.ClassA, Region: "A", Direction: contract.Egress, Rate: 900}
	// Figure 6(c): general hose reserves 900G to each of 4 destinations.
	if got := GeneralHoseReserved(&h, 4); got != 3600 {
		t.Errorf("GeneralHoseReserved = %v, want 3600", got)
	}
	// Figure 6(d): segments {B,C} at 400/900 and {D,E} at 500/900 → 1800G.
	h.Segments = []Segment{
		{Targets: []topology.Region{"B", "C"}, Alpha: 400.0 / 900},
		{Targets: []topology.Region{"D", "E"}, Alpha: 500.0 / 900},
	}
	if got := SegmentedReserved(&h); math.Abs(got-1800) > 1e-9 {
		t.Errorf("SegmentedReserved = %v, want 1800", got)
	}
	// "only half of the general Hose model".
	if SegmentedReserved(&h) >= GeneralHoseReserved(&h, 4) {
		t.Error("segmented reservation not below general hose")
	}
	if err := h.Validate([]topology.Region{"A", "B", "C", "D", "E"}); err != nil {
		t.Errorf("Figure 6 segmentation invalid: %v", err)
	}
}

func TestRequestValidate(t *testing.T) {
	targets := []topology.Region{"B", "C"}
	cases := []struct {
		name string
		h    Request
		ok   bool
	}{
		{"general", Request{Rate: 10}, true},
		{"negative rate", Request{Rate: -1}, false},
		{"good segments", Request{Rate: 10, Segments: []Segment{
			{Targets: []topology.Region{"B"}, Alpha: 0.4},
			{Targets: []topology.Region{"C"}, Alpha: 0.6}}}, true},
		{"alpha sum != 1", Request{Rate: 10, Segments: []Segment{
			{Targets: []topology.Region{"B"}, Alpha: 0.4},
			{Targets: []topology.Region{"C"}, Alpha: 0.4}}}, false},
		{"duplicate region", Request{Rate: 10, Segments: []Segment{
			{Targets: []topology.Region{"B"}, Alpha: 0.4},
			{Targets: []topology.Region{"B", "C"}, Alpha: 0.6}}}, false},
		{"uncovered region", Request{Rate: 10, Segments: []Segment{
			{Targets: []topology.Region{"B"}, Alpha: 0.4},
			{Targets: nil, Alpha: 0.6}}}, false},
		{"alpha out of range", Request{Rate: 10, Segments: []Segment{
			{Targets: []topology.Region{"B", "C"}, Alpha: 1.0}}}, false},
	}
	for _, c := range cases {
		err := c.h.Validate(targets)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRatioAndAlpha(t *testing.T) {
	perDst := map[topology.Region]*timeseries.Series{
		"B": constSeries(300, 10),
		"C": constSeries(100, 10),
		"D": constSeries(250, 10),
		"E": constSeries(250, 10),
	}
	rs := RatioSeries(perDst, []topology.Region{"B", "C"})
	if len(rs) != 10 {
		t.Fatalf("RatioSeries length = %d", len(rs))
	}
	for _, r := range rs {
		if math.Abs(r-400.0/900) > 1e-12 {
			t.Errorf("ratio = %v, want 4/9", r)
		}
	}
	if got := AlphaMinus(perDst, []topology.Region{"B", "C"}); math.Abs(got-4.0/9) > 1e-12 {
		t.Errorf("AlphaMinus = %v", got)
	}
	if got := AlphaPlus(perDst, []topology.Region{"B", "C"}); math.Abs(got-4.0/9) > 1e-12 {
		t.Errorf("AlphaPlus = %v", got)
	}
	// α−(S) + α+(S') = 1 (Equation 3).
	aMinus := AlphaMinus(perDst, []topology.Region{"B", "C"})
	aPlusComp := AlphaPlus(perDst, []topology.Region{"D", "E"})
	if math.Abs(aMinus+aPlusComp-1) > 1e-12 {
		t.Errorf("α−(S)+α+(S') = %v, want 1", aMinus+aPlusComp)
	}
}

func TestRatioSeriesSkipsZeroTotals(t *testing.T) {
	perDst := map[topology.Region]*timeseries.Series{
		"B": timeseries.New(t0, time.Hour, []float64{0, 10}),
		"C": timeseries.New(t0, time.Hour, []float64{0, 10}),
	}
	rs := RatioSeries(perDst, []topology.Region{"B"})
	if len(rs) != 1 || rs[0] != 0.5 {
		t.Errorf("RatioSeries = %v, want [0.5]", rs)
	}
}

func TestRatioSeriesEmpty(t *testing.T) {
	if got := RatioSeries(nil, nil); got != nil {
		t.Errorf("empty RatioSeries = %v", got)
	}
	if got := AlphaMinus(nil, nil); got != 0 {
		t.Errorf("empty AlphaMinus = %v", got)
	}
}

// RatioSeries sums float series across destinations; the accumulation order
// must not depend on map-iteration order (Go randomizes it per range
// statement), or segment alphas — and every borderline approval decision
// downstream — wobble in their low bits from run to run.
func TestRatioSeriesDeterministicAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	perDst := make(map[topology.Region]*timeseries.Series, 16)
	for i := 0; i < 16; i++ {
		vals := make([]float64, 24)
		for j := range vals {
			// Wide magnitude spread makes the sum order-sensitive.
			vals[j] = rng.Float64() * math.Pow(10, float64(rng.Intn(12)))
		}
		perDst[topology.Region(fmt.Sprintf("R%02d", i))] = timeseries.New(t0, time.Hour, vals)
	}
	sel := []topology.Region{"R03", "R07", "R11"}
	want := RatioSeries(perDst, sel)
	for trial := 0; trial < 50; trial++ {
		got := RatioSeries(perDst, sel)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ratio[%d] = %v, want exactly %v", trial, i, got[i], want[i])
			}
		}
	}
	if a, b := AlphaPlus(perDst, sel), AlphaPlus(perDst, sel); a != b {
		t.Fatalf("AlphaPlus not reproducible: %v vs %v", a, b)
	}
}

func TestTwoSegmentsPartition(t *testing.T) {
	perDst := map[topology.Region]*timeseries.Series{
		"B": constSeries(300, 10),
		"C": constSeries(100, 10),
		"D": constSeries(250, 10),
		"E": constSeries(250, 10),
	}
	s1, s2, err := TwoSegments(perDst)
	if err != nil {
		t.Fatal(err)
	}
	// Partition: disjoint, union = all.
	seen := make(map[topology.Region]int)
	for _, r := range s1.Targets {
		seen[r]++
	}
	for _, r := range s2.Targets {
		seen[r]++
	}
	if len(seen) != 4 {
		t.Errorf("segments cover %d regions, want 4", len(seen))
	}
	for r, n := range seen {
		if n != 1 {
			t.Errorf("region %s appears %d times", r, n)
		}
	}
	// Alphas sum to 1 (the paper's optimal decomposition condition).
	if math.Abs(s1.Alpha+s2.Alpha-1) > 1e-9 {
		t.Errorf("alphas sum to %v", s1.Alpha+s2.Alpha)
	}
	if len(s1.Targets) == 0 || len(s2.Targets) == 0 {
		t.Error("empty segment")
	}
	// Algorithm 1 stop condition: SEG satisfies α−(SEG) > 0.5 (or SEG was
	// capped to leave the complement non-empty).
	if a := AlphaMinus(perDst, s1.Targets); a <= 0.5 && len(s1.Targets) < 3 {
		t.Errorf("segment1 α− = %v with %d targets", a, len(s1.Targets))
	}
}

func TestTwoSegmentsSplitsAffinityGroups(t *testing.T) {
	// Destinations B,C anti-correlated with D,E across time: traffic moves
	// within {B,C} and within {D,E} but the group totals are stable.
	mk := func(a, b float64) *timeseries.Series {
		return timeseries.New(t0, time.Hour, []float64{a, b, a, b})
	}
	perDst := map[topology.Region]*timeseries.Series{
		"B": mk(300, 100), "C": mk(100, 300), // group total always 400
		"D": mk(250, 50), "E": mk(50, 250), // group total always 300
	}
	s1, s2, err := TwoSegments(perDst)
	if err != nil {
		t.Fatal(err)
	}
	group := func(seg Segment) string {
		out := ""
		for _, r := range seg.Targets {
			out += string(r)
		}
		return out
	}
	g1, g2 := group(s1), group(s2)
	if !(g1 == "BC" && g2 == "DE") && !(g1 == "DE" && g2 == "BC") {
		t.Errorf("segments = %q / %q, want BC / DE affinity split", g1, g2)
	}
	// Every observed TM remains feasible: α uses α+ so peak group share fits.
	for _, seg := range []Segment{s1, s2} {
		if AlphaPlus(perDst, seg.Targets) > seg.Alpha+1e-9 {
			t.Errorf("segment %v alpha %v below peak share", seg.Targets, seg.Alpha)
		}
	}
}

func TestTwoSegmentsNeedsTwoDestinations(t *testing.T) {
	perDst := map[topology.Region]*timeseries.Series{"B": constSeries(1, 3)}
	if _, _, err := TwoSegments(perDst); err == nil {
		t.Error("single destination accepted")
	}
}

func TestNSegments(t *testing.T) {
	perDst := map[topology.Region]*timeseries.Series{
		"B": constSeries(300, 8), "C": constSeries(100, 8),
		"D": constSeries(250, 8), "E": constSeries(250, 8),
		"F": constSeries(200, 8), "G": constSeries(150, 8),
	}
	segs, err := NSegments(perDst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	alphaSum := 0.0
	seen := make(map[topology.Region]bool)
	for _, s := range segs {
		alphaSum += s.Alpha
		for _, r := range s.Targets {
			if seen[r] {
				t.Errorf("region %s duplicated", r)
			}
			seen[r] = true
		}
	}
	if math.Abs(alphaSum-1) > 1e-9 {
		t.Errorf("alpha sum = %v", alphaSum)
	}
	if len(seen) != 6 {
		t.Errorf("covered %d regions, want 6", len(seen))
	}
	if _, err := NSegments(perDst, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestSegmentHose(t *testing.T) {
	perDst := map[topology.Region]*timeseries.Series{
		"B": constSeries(300, 4), "C": constSeries(100, 4),
	}
	h := Request{NPG: "Ads", Class: contract.ClassA, Region: "A", Direction: contract.Egress, Rate: 400}
	out := SegmentHose(h, perDst)
	if len(out.Segments) != 2 {
		t.Fatalf("segments = %d", len(out.Segments))
	}
	// Unsegmentable input returns the hose unchanged.
	same := SegmentHose(h, nil)
	if len(same.Segments) != 0 {
		t.Error("unsegmentable hose was segmented")
	}
}

func TestSamplerGeneralHose(t *testing.T) {
	h := Request{NPG: "Ads", Class: contract.ClassA, Region: "A", Direction: contract.Egress, Rate: 900}
	s := NewSampler(h, []topology.Region{"A", "B", "C", "D", "E"}, 42)
	if len(s.Targets) != 4 {
		t.Fatalf("targets = %v (own region must be excluded)", s.Targets)
	}
	rep := s.Representative()
	if math.Abs(rep.Total()-900) > 1e-6 {
		t.Errorf("representative total = %v, want 900 (tight constraint)", rep.Total())
	}
	for i := 0; i < 50; i++ {
		in := s.Interior()
		if in.Total() > 900+1e-6 {
			t.Errorf("interior TM exceeds hose: %v", in.Total())
		}
		for r, v := range in.Rates {
			if v < 0 {
				t.Errorf("negative rate for %s", r)
			}
		}
	}
}

func TestSamplerSegmentedHose(t *testing.T) {
	h := Request{
		NPG: "Ads", Class: contract.ClassA, Region: "A", Direction: contract.Egress, Rate: 900,
		Segments: []Segment{
			{Targets: []topology.Region{"B", "C"}, Alpha: 4.0 / 9},
			{Targets: []topology.Region{"D", "E"}, Alpha: 5.0 / 9},
		},
	}
	s := NewSampler(h, []topology.Region{"B", "C", "D", "E"}, 7)
	for i := 0; i < 50; i++ {
		tm := s.Interior()
		// Segment constraints hold.
		if tm.Rates["B"]+tm.Rates["C"] > 400+1e-6 {
			t.Errorf("segment1 violated: %v", tm.Rates["B"]+tm.Rates["C"])
		}
		if tm.Rates["D"]+tm.Rates["E"] > 500+1e-6 {
			t.Errorf("segment2 violated: %v", tm.Rates["D"]+tm.Rates["E"])
		}
	}
	rep := s.Representative()
	if math.Abs(rep.Total()-900) > 1e-6 {
		t.Errorf("segmented representative total = %v, want 900", rep.Total())
	}
}

func TestDominates(t *testing.T) {
	a := TM{Rates: map[topology.Region]float64{"B": 10, "C": 5}}
	b := TM{Rates: map[topology.Region]float64{"B": 8, "C": 5}}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	if b.Dominates(a) {
		t.Error("b should not dominate a")
	}
	if !a.Dominates(a) {
		t.Error("self-domination must hold")
	}
	// Missing region in dominator = 0.
	c := TM{Rates: map[topology.Region]float64{"D": 1}}
	if a.Dominates(c) {
		t.Error("a lacks D, cannot dominate c")
	}
}

func TestCoverageGrowsWithTMs(t *testing.T) {
	h := Request{NPG: "X", Class: contract.ClassB, Region: "A", Direction: contract.Egress, Rate: 100}
	targets := []topology.Region{"B", "C", "D", "E", "F"}
	s := NewSampler(h, targets, 1)
	samples := make([]TM, 400)
	for i := range samples {
		samples[i] = s.Interior()
	}
	reps := make([]TM, 0, 256)
	var prev float64
	grew := false
	for _, k := range []int{4, 32, 256} {
		for len(reps) < k {
			reps = append(reps, s.Representative())
		}
		c := Coverage(reps, samples)
		if c < prev-1e-9 {
			t.Errorf("coverage decreased: %v -> %v at k=%d", prev, c, k)
		}
		if c > prev {
			grew = true
		}
		prev = c
	}
	if !grew {
		t.Error("coverage never grew with more TMs")
	}
	if prev <= 0 {
		t.Error("coverage stayed zero")
	}
}

func TestSegmentedNeedsFewerTMs(t *testing.T) {
	// §7.2 / Figure 20: segmentation reduces the TMs needed for a fixed
	// coverage because the segmented polytope is smaller.
	targets := []topology.Region{"B", "C", "D", "E", "F", "G"}
	general := Request{NPG: "X", Class: contract.ClassB, Region: "A", Direction: contract.Egress, Rate: 100}
	segmented := general
	segmented.Segments = []Segment{
		{Targets: []topology.Region{"B", "C", "D"}, Alpha: 0.5},
		{Targets: []topology.Region{"E", "F", "G"}, Alpha: 0.5},
	}
	const target = 0.6
	const maxTMs = 5000
	count := func(h Request, seed int64) int {
		sSamples := NewSampler(h, targets, seed)
		samples := make([]TM, 300)
		for i := range samples {
			samples[i] = sSamples.Interior()
		}
		return TMsForCoverage(NewSampler(h, targets, seed+1), samples, target, maxTMs)
	}
	genTMs := count(general, 10)
	segTMs := count(segmented, 10)
	if segTMs >= genTMs {
		t.Errorf("segmented needs %d TMs, general %d — expected fewer", segTMs, genTMs)
	}
}

func TestTMsForCoverageZeroTarget(t *testing.T) {
	h := Request{Region: "A", Rate: 10}
	s := NewSampler(h, []topology.Region{"B"}, 1)
	if got := TMsForCoverage(s, []TM{{}}, 0, 10); got != 0 {
		t.Errorf("zero target = %d", got)
	}
}

func TestBalanceHoses(t *testing.T) {
	hoses := []Request{
		{NPG: "X", Region: "A", Direction: contract.Egress, Rate: 100},
		{NPG: "X", Region: "B", Direction: contract.Ingress, Rate: 40},
	}
	regions := []topology.Region{"A", "B", "C"}
	out := BalanceHoses(hoses, regions, contract.ClassB)
	eg, in := TotalByDirection(out)
	if math.Abs(eg-in) > 1e-9 {
		t.Errorf("not balanced: egress %v ingress %v", eg, in)
	}
	// Dummy entries inflate the shortage (ingress) direction evenly.
	dummies := 0
	for _, h := range out {
		if h.NPG == DummyNPG {
			dummies++
			if h.Direction != contract.Ingress {
				t.Error("dummy on wrong direction")
			}
			if math.Abs(h.Rate-20) > 1e-9 {
				t.Errorf("dummy rate = %v, want 20", h.Rate)
			}
		}
	}
	if dummies != 3 {
		t.Errorf("dummies = %d, want 3", dummies)
	}
	// Original slice untouched.
	if len(hoses) != 2 {
		t.Error("BalanceHoses mutated input")
	}
}

func TestBalanceHosesAlreadyBalanced(t *testing.T) {
	hoses := []Request{
		{NPG: "X", Region: "A", Direction: contract.Egress, Rate: 100},
		{NPG: "X", Region: "B", Direction: contract.Ingress, Rate: 100},
	}
	out := BalanceHoses(hoses, []topology.Region{"A"}, contract.ClassB)
	if len(out) != 2 {
		t.Errorf("balanced input gained %d entries", len(out)-2)
	}
}

// Property: AggregatePipes conserves volume — total egress hose rate equals
// total pipe rate, and so does total ingress.
func TestAggregateConservationProperty(t *testing.T) {
	f := func(rates []uint16) bool {
		if len(rates) == 0 {
			return true
		}
		regions := []topology.Region{"A", "B", "C", "D"}
		pipes := make([]PipeRequest, 0, len(rates))
		for i, r := range rates {
			src := regions[i%4]
			dst := regions[(i+1+i/4)%4]
			if src == dst {
				continue
			}
			pipes = append(pipes, PipeRequest{
				NPG: "P", Class: contract.ClassA, Src: src, Dst: dst, Rate: float64(r),
			})
		}
		hoses := AggregatePipes(pipes)
		eg, in := TotalByDirection(hoses)
		want := PipeReserved(pipes)
		return math.Abs(eg-want) < 1e-6 && math.Abs(in-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every sampled TM (interior or representative) satisfies the hose
// constraint, and segmented samples satisfy every segment constraint.
func TestSamplerFeasibilityProperty(t *testing.T) {
	f := func(seed int64, rateRaw uint16) bool {
		rate := float64(rateRaw) + 1
		targets := []topology.Region{"B", "C", "D", "E"}
		h := Request{NPG: "X", Class: contract.ClassA, Region: "A", Direction: contract.Egress, Rate: rate,
			Segments: []Segment{
				{Targets: []topology.Region{"B", "C"}, Alpha: 0.3},
				{Targets: []topology.Region{"D", "E"}, Alpha: 0.7},
			}}
		s := NewSampler(h, targets, seed)
		for i := 0; i < 20; i++ {
			tm := s.Interior()
			if tm.Rates["B"]+tm.Rates["C"] > 0.3*rate+1e-6 {
				return false
			}
			if tm.Rates["D"]+tm.Rates["E"] > 0.7*rate+1e-6 {
				return false
			}
			if tm.Total() > rate+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSelectRepresentativesGreedy(t *testing.T) {
	h := Request{NPG: "X", Class: contract.ClassB, Region: "A", Direction: contract.Egress, Rate: 100}
	targets := []topology.Region{"B", "C", "D", "E"}
	sampler := NewSampler(h, targets, 3)
	samples := make([]TM, 200)
	for i := range samples {
		samples[i] = sampler.Interior()
	}
	candSampler := NewSampler(h, targets, 4)
	candidates := make([]TM, 400)
	for i := range candidates {
		candidates[i] = candSampler.Representative()
	}
	const k = 25
	greedy := SelectRepresentatives(candidates, samples, k)
	if len(greedy) == 0 || len(greedy) > k {
		t.Fatalf("selected %d TMs", len(greedy))
	}
	greedyCov := Coverage(greedy, samples)
	randomCov := Coverage(candidates[:k], samples)
	// Greedy selection must beat taking the first k candidates.
	if greedyCov < randomCov {
		t.Errorf("greedy coverage %v below random %v", greedyCov, randomCov)
	}
	if greedyCov <= 0.3 {
		t.Errorf("greedy coverage = %v, too low", greedyCov)
	}
}

func TestSelectRepresentativesEdgeCases(t *testing.T) {
	if got := SelectRepresentatives(nil, []TM{{}}, 3); got != nil {
		t.Errorf("no candidates = %v", got)
	}
	if got := SelectRepresentatives([]TM{{}}, nil, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	// Stops early when nothing adds coverage.
	zero := TM{Rates: map[topology.Region]float64{}}
	big := TM{Rates: map[topology.Region]float64{"B": 100}}
	got := SelectRepresentatives([]TM{big, big, big}, []TM{zero}, 3)
	if len(got) != 1 {
		t.Errorf("selected %d, want 1 (early stop)", len(got))
	}
}
