package contractdb

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"entitlement/internal/contract"
)

var (
	t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 = time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
)

func adsContract(approved bool) contract.Contract {
	return contract.Contract{
		NPG: "Ads", SLO: 0.9998, Approved: approved,
		Entitlements: []contract.Entitlement{{
			NPG: "Ads", Class: contract.ClassA, Region: "A",
			Direction: contract.Egress, Rate: 1e12, Start: t0, End: t1,
		}},
	}
}

func TestStorePutGetList(t *testing.T) {
	s := NewStore()
	if err := s.Put(adsContract(true)); err != nil {
		t.Fatal(err)
	}
	c, ok := s.Get("Ads")
	if !ok || c.NPG != "Ads" {
		t.Errorf("Get = %+v, %v", c, ok)
	}
	logging := contract.Contract{NPG: "Logging", SLO: 0.999, Approved: true}
	if err := s.Put(logging); err != nil {
		t.Fatal(err)
	}
	list := s.List()
	if len(list) != 2 || list[0].NPG != "Ads" || list[1].NPG != "Logging" {
		t.Errorf("List = %v", list)
	}
	s.Delete("Ads")
	if _, ok := s.Get("Ads"); ok {
		t.Error("deleted contract found")
	}
}

func TestStorePutInvalid(t *testing.T) {
	s := NewStore()
	bad := adsContract(true)
	bad.SLO = 2
	if err := s.Put(bad); err == nil {
		t.Error("invalid contract accepted")
	}
}

func TestEntitledRate(t *testing.T) {
	s := NewStore()
	s.Put(adsContract(true))
	mid := t0.Add(24 * time.Hour)

	rate, found, err := s.EntitledRate("Ads", contract.ClassA, "A", contract.Egress, mid)
	if err != nil || !found || rate != 1e12 {
		t.Errorf("EntitledRate = %v %v %v", rate, found, err)
	}
	// Wrong class: not found.
	if _, found, _ := s.EntitledRate("Ads", contract.C4High, "A", contract.Egress, mid); found {
		t.Error("wrong class found")
	}
	// Expired period.
	if _, found, _ := s.EntitledRate("Ads", contract.ClassA, "A", contract.Egress, t1.Add(time.Hour)); found {
		t.Error("expired entitlement found")
	}
	// Unknown NPG.
	if _, found, _ := s.EntitledRate("Nope", contract.ClassA, "A", contract.Egress, mid); found {
		t.Error("unknown NPG found")
	}
}

func TestEntitledRateUnapprovedNotEnforced(t *testing.T) {
	s := NewStore()
	s.Put(adsContract(false))
	_, found, err := s.EntitledRate("Ads", contract.ClassA, "A", contract.Egress, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("unapproved contract enforced")
	}
}

func TestEntitledRateZeroEntitlement(t *testing.T) {
	// An explicit zero-rate entitlement is "found" (entitled to nothing),
	// distinct from having no entitlement at all.
	s := NewStore()
	c := contract.Contract{
		NPG: "Quiet", SLO: 0.99, Approved: true,
		Entitlements: []contract.Entitlement{{
			NPG: "Quiet", Class: contract.ClassB, Region: "B",
			Direction: contract.Egress, Rate: 0, Start: t0, End: t1,
		}},
	}
	if err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	rate, found, err := s.EntitledRate("Quiet", contract.ClassB, "B", contract.Egress, t0.Add(time.Hour))
	if err != nil || !found || rate != 0 {
		t.Errorf("zero entitlement = %v %v %v, want 0 true nil", rate, found, err)
	}
}

func TestServerClient(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	srv := NewServer(l, store)
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Upload via client, query via client.
	if err := c.Put(adsContract(true)); err != nil {
		t.Fatal(err)
	}
	rate, found, err := c.EntitledRate("Ads", contract.ClassA, "A", contract.Egress, t0.Add(time.Hour))
	if err != nil || !found || rate != 1e12 {
		t.Errorf("remote EntitledRate = %v %v %v", rate, found, err)
	}
	list, err := c.List()
	if err != nil || len(list) != 1 || list[0].NPG != "Ads" {
		t.Errorf("remote List = %v, %v", list, err)
	}
	// Invalid contract rejected remotely.
	bad := adsContract(true)
	bad.NPG = ""
	bad.Entitlements = nil
	if err := c.Put(bad); err == nil {
		t.Error("remote invalid contract accepted")
	}
	// Ingress direction round-trips.
	if _, found, err := c.EntitledRate("Ads", contract.ClassA, "A", contract.Ingress, t0.Add(time.Hour)); err != nil || found {
		t.Errorf("ingress query = %v %v", found, err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	s.Put(adsContract(true))
	s.Put(contract.Contract{NPG: "Logging", SLO: 0.99, Approved: false})
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(restored.List()) != 2 {
		t.Fatalf("restored %d contracts", len(restored.List()))
	}
	rate, found, err := restored.EntitledRate("Ads", contract.ClassA, "A", contract.Egress, t0.Add(time.Hour))
	if err != nil || !found || rate != 1e12 {
		t.Errorf("restored rate = %v %v %v", rate, found, err)
	}
	// Entitlement period times survive the round trip.
	c, _ := restored.Get("Ads")
	if !c.Entitlements[0].Start.Equal(t0) {
		t.Errorf("start = %v, want %v", c.Entitlements[0].Start, t0)
	}
}

func TestLoadFromRejectsInvalid(t *testing.T) {
	s := NewStore()
	s.Put(adsContract(true))
	// Malformed JSON.
	if err := s.LoadFrom(strings.NewReader("{not json")); err == nil {
		t.Error("malformed snapshot accepted")
	}
	// Invalid contract in snapshot.
	if err := s.LoadFrom(strings.NewReader(`[{"NPG":"","SLO":0.5}]`)); err == nil {
		t.Error("invalid contract accepted")
	}
	// Store unchanged after failed loads.
	if _, ok := s.Get("Ads"); !ok {
		t.Error("failed load wiped the store")
	}
}
