// Package contractdb is the centralized contract database of §3.2/§5: "all
// contracts are stored in a database and the approved contracts of the
// current period need to be enforced on the production traffic". Agents
// query it for the entitled rate matching their host's flow set.
//
// Like kvstore, it offers an in-process Store and a TCP Server/Client pair;
// both satisfy Database.
package contractdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/obs/trace"
	"entitlement/internal/topology"
	"entitlement/internal/wire"
	schemav1 "entitlement/schema/v1"
)

// Database is what enforcement agents depend on.
type Database interface {
	// EntitledRate returns the total approved entitled rate for the flow
	// set at time at, and whether any matching entitlement exists.
	EntitledRate(npg contract.NPG, class contract.Class, region topology.Region, dir contract.Direction, at time.Time) (float64, bool, error)
}

// Store is the in-memory contract database.
type Store struct {
	mu        sync.RWMutex
	contracts map[contract.NPG]contract.Contract
}

// NewStore creates an empty database.
func NewStore() *Store {
	return &Store{contracts: make(map[contract.NPG]contract.Contract)}
}

// Put validates and stores (or replaces) a contract.
func (s *Store) Put(c contract.Contract) error {
	if err := c.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.contracts[c.NPG] = c
	return nil
}

// Get returns the contract for npg.
func (s *Store) Get(npg contract.NPG) (contract.Contract, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.contracts[npg]
	return c, ok
}

// Delete removes a contract.
func (s *Store) Delete(npg contract.NPG) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.contracts, npg)
}

// Len returns the number of stored contracts.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.contracts)
}

// List returns every stored contract sorted by NPG.
func (s *Store) List() []contract.Contract {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]contract.Contract, 0, len(s.contracts))
	for _, c := range s.contracts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NPG < out[j].NPG })
	return out
}

// SLO returns the availability objective attached to npg's approved
// contract, for the conformance plane: the SLO is part of the approval
// record (§4.3 fixes it before admission), so enforcement-side burn
// accounting reads it from here rather than trusting the service.
func (s *Store) SLO(npg contract.NPG) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.contracts[npg]
	if !ok || !c.Approved || c.SLO <= 0 {
		return 0, false
	}
	return float64(c.SLO), true
}

// Objectives returns every approved contract's availability SLO, keyed by
// NPG — the conformance engine's objective set.
func (s *Store) Objectives() map[string]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]float64, len(s.contracts))
	for npg, c := range s.contracts {
		if c.Approved && c.SLO > 0 {
			out[string(npg)] = float64(c.SLO)
		}
	}
	return out
}

// EntitledRate implements Database. Only approved contracts are enforced;
// an unapproved contract's flow sets report no entitlement.
func (s *Store) EntitledRate(npg contract.NPG, class contract.Class, region topology.Region, dir contract.Direction, at time.Time) (float64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.contracts[npg]
	if !ok || !c.Approved {
		return 0, false, nil
	}
	rate := c.EntitledRate(class, region, dir, at)
	if rate == 0 {
		// Distinguish "no entitlement row" from "entitled to zero": scan.
		found := false
		for i := range c.Entitlements {
			e := &c.Entitlements[i]
			if e.Class == class && e.Region == region && e.Direction == dir && e.ActiveAt(at) {
				found = true
				break
			}
		}
		return 0, found, nil
	}
	return rate, true, nil
}

// --- TCP server/client ----------------------------------------------------

// The query/reply shapes are versioned schema contracts (schema/v1, pinned
// by `make vet-schema`): DBRateQuery/DBRateReply carry binary codecs (the
// per-cycle entitlement fetch), DBSLOQuery/DBSLOReply stay JSON-only. The
// put_contract/list payloads embed contract.Contract, registered as a
// schema by SchemaDefs.

// Server exposes a Store over TCP.
type Server struct {
	store *Store
	srv   *wire.Server
}

// NewServer serves store on l with default wire options.
func NewServer(l net.Listener, store *Store) *Server {
	return NewServerOpts(l, store, wire.ServerOptions{})
}

// NewServerOpts serves store on l with explicit wire hardening/logging
// options (the Logger surfaces client request IDs in this server's spans).
func NewServerOpts(l net.Listener, store *Store, opts wire.ServerOptions) *Server {
	s := &Server{store: store}
	s.srv = wire.NewServerPayload(l, s.handle, opts)
	return s
}

// Addr returns the server address.
func (s *Server) Addr() string { return s.srv.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(tc trace.Context, method string, p wire.Payload) (reply interface{}, err error) {
	mRequests.With(method).Inc()
	defer func() {
		if err != nil {
			mRequestErrors.Inc()
		}
		mContracts.Set(float64(s.store.Len()))
	}()
	switch method {
	case "entitled_rate":
		var a schemav1.DBRateQuery
		if err := p.Decode(&a); err != nil {
			return nil, err
		}
		class, err := contract.ParseClass(a.Class)
		if err != nil {
			return nil, err
		}
		dir := contract.Egress
		if a.Dir == contract.Ingress.String() {
			dir = contract.Ingress
		}
		rate, found, err := s.store.EntitledRate(
			contract.NPG(a.NPG), class, topology.Region(a.Region), dir, time.Unix(a.AtUnix, 0).UTC())
		if err != nil {
			return nil, err
		}
		return &schemav1.DBRateReply{Rate: rate, Found: found}, nil
	case "get_slo":
		var a schemav1.DBSLOQuery
		if err := p.Decode(&a); err != nil {
			return nil, err
		}
		slo, found := s.store.SLO(contract.NPG(a.NPG))
		return &schemav1.DBSLOReply{SLO: slo, Found: found}, nil
	case "put_contract":
		var c contract.Contract
		if err := p.Decode(&c); err != nil {
			return nil, err
		}
		return nil, s.store.Put(c)
	case "list":
		return s.store.List(), nil
	default:
		return nil, fmt.Errorf("contractdb: unknown method %q", method)
	}
}

// Client is the remote Database. It inherits the wire client's failure
// behavior: per-call deadlines, broken-connection detection, and automatic
// re-dial with backoff.
type Client struct {
	c *wire.Client
}

// Dial connects to a contractdb server with default wire.ClientOptions.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, wire.ClientOptions{})
}

// DialOpts connects to a contractdb server with explicit failure options.
func DialOpts(addr string, opts wire.ClientOptions) (*Client, error) {
	c, err := wire.DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Connect builds a client without dialing; the connection is established
// lazily (with backoff) on first use.
func Connect(addr string, opts wire.ClientOptions) *Client {
	return &Client{c: wire.Connect(addr, opts)}
}

// EntitledRate implements Database.
func (c *Client) EntitledRate(npg contract.NPG, class contract.Class, region topology.Region, dir contract.Direction, at time.Time) (float64, bool, error) {
	var r schemav1.DBRateReply
	err := c.c.Call("entitled_rate", &schemav1.DBRateQuery{
		NPG: string(npg), Class: class.String(), Region: string(region),
		Dir: dir.String(), AtUnix: at.Unix(),
	}, &r)
	if err != nil {
		return 0, false, err
	}
	return r.Rate, r.Found, nil
}

// SLO fetches npg's contractual availability objective from the approval
// record.
func (c *Client) SLO(npg contract.NPG) (float64, bool, error) {
	var r schemav1.DBSLOReply
	if err := c.c.Call("get_slo", &schemav1.DBSLOQuery{NPG: string(npg)}, &r); err != nil {
		return 0, false, err
	}
	return r.SLO, r.Found, nil
}

// SetTrace forwards a trace ID to the wire client: subsequent request IDs
// carry it, correlating this client's calls with the caller's operation.
func (c *Client) SetTrace(trace string) { c.c.SetTrace(trace) }

// SetSpan forwards a span context to the wire client: subsequent calls
// become wire.call spans in the caller's trace, with the context carried on
// the request frame.
func (c *Client) SetSpan(ctx trace.Context) { c.c.SetSpan(ctx) }

// Put uploads a contract.
func (c *Client) Put(ct contract.Contract) error {
	return c.c.Call("put_contract", ct, nil)
}

// List fetches every contract.
func (c *Client) List() ([]contract.Contract, error) {
	var out []contract.Contract
	if err := c.c.Call("list", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.c.Close() }

var (
	_ Database = (*Store)(nil)
	_ Database = (*Client)(nil)
)

// SaveTo writes a JSON snapshot of every contract, for durability across
// restarts (the production database is replicated; a snapshot suffices for
// the single-node reproduction).
func (s *Store) SaveTo(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.List())
}

// LoadFrom replaces the store's contents with a snapshot written by SaveTo.
// Every contract is validated; on any error the store is left unchanged.
func (s *Store) LoadFrom(r io.Reader) error {
	var contracts []contract.Contract
	if err := json.NewDecoder(r).Decode(&contracts); err != nil {
		return fmt.Errorf("contractdb: decode snapshot: %w", err)
	}
	for i := range contracts {
		if err := contracts[i].Validate(); err != nil {
			return fmt.Errorf("contractdb: snapshot contract %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.contracts = make(map[contract.NPG]contract.Contract, len(contracts))
	for _, c := range contracts {
		s.contracts[c.NPG] = c
	}
	return nil
}
