package contractdb

import "entitlement/internal/obs"

// Contract-database server instruments. The contracts gauge is the size of
// the served store — the number of NPGs whose entitlements this process
// can answer for.
var (
	mRequests      = obs.RegisterCounterVec("entitlement_contractdb_requests_total", "Requests handled by contractdb servers, by method.", "method")
	mRequestErrors = obs.RegisterCounter("entitlement_contractdb_request_errors_total", "contractdb requests that returned an error (bad payload, invalid contract, or store failure).")
	mContracts     = obs.RegisterGauge("entitlement_contractdb_contracts", "Contracts held by the contractdb server's backing store.")
)
