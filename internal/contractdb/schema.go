package contractdb

import (
	"reflect"

	"entitlement/internal/contract"
	schemav1 "entitlement/schema/v1"
)

// SchemaDefs returns the wire schemas this plane owns beyond the envelope
// and query shapes in schema/v1: the contract payload carried by the
// put_contract and list methods. It embeds the domain type, so it cannot
// live in schema/v1 without an import cycle (wire imports schemav1);
// cmd/schemavet aggregates it with schemav1.Defs() for the lock check.
func SchemaDefs() []schemav1.Def {
	return []schemav1.Def{
		{Name: "contractdb.contract", Version: 1, Type: reflect.TypeOf(contract.Contract{})},
	}
}
