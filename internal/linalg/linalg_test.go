package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Errorf("At/Set mismatch: %+v", m)
	}
	r := m.Row(1)
	if len(r) != 3 || r[2] != 5 {
		t.Errorf("Row = %v", r)
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	tr := m.T()
	if tr.Rows != 2 || tr.Cols != 3 {
		t.Fatalf("T shape = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(0, 2) != 5 || tr.At(1, 0) != 2 {
		t.Errorf("transpose values wrong: %+v", tr)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L should be [[2,0],[1,sqrt(2)]].
	if !almostEqual(l.At(0, 0), 2, 1e-12) || !almostEqual(l.At(1, 0), 1, 1e-12) ||
		!almostEqual(l.At(1, 1), math.Sqrt2, 1e-12) || l.At(0, 1) != 0 {
		t.Errorf("Cholesky = %+v", l)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); err != ErrNotPD {
		t.Errorf("err = %v, want ErrNotPD", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square Cholesky did not error")
	}
}

func TestSolveCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := SolveCholesky(l, []float64{10, 8})
	// Verify A·x = b.
	b := a.MulVec(x)
	if !almostEqual(b[0], 10, 1e-9) || !almostEqual(b[1], 8, 1e-9) {
		t.Errorf("A·x = %v, want [10 8]", b)
	}
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	// y = 3 + 2·x, exactly representable: ridge with tiny lambda recovers it.
	rows := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range rows {
		x := float64(i)
		rows[i] = []float64{1, x}
		y[i] = 3 + 2*x
	}
	w, err := Ridge(FromRows(rows), y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w[0], 3, 1e-4) || !almostEqual(w[1], 2, 1e-6) {
		t.Errorf("Ridge w = %v, want [3 2]", w)
	}
}

func TestRidgeCollinearColumns(t *testing.T) {
	// Duplicate columns make XᵀX singular; the jitter retry must cope.
	rows := make([][]float64, 20)
	y := make([]float64, 20)
	for i := range rows {
		x := float64(i)
		rows[i] = []float64{x, x} // perfectly collinear
		y[i] = 4 * x
	}
	w, err := Ridge(FromRows(rows), y, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The two weights should share the signal: w0 + w1 ≈ 4.
	if !almostEqual(w[0]+w[1], 4, 1e-3) {
		t.Errorf("collinear Ridge w = %v, want sum 4", w)
	}
}

func TestRidgeErrors(t *testing.T) {
	if _, err := Ridge(NewMatrix(2, 1), []float64{1, 2, 3}, 0); err == nil {
		t.Error("row mismatch not detected")
	}
	if _, err := Ridge(NewMatrix(2, 1), []float64{1, 2}, -1); err == nil {
		t.Error("negative lambda not detected")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

// Property: for random SPD matrices A = MᵀM + I, SolveCholesky(Cholesky(A), b)
// returns x with A·x ≈ b.
func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		a := m.T().Mul(m)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := SolveCholesky(l, b)
		ax := a.MulVec(x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
