// Package linalg implements the small dense linear-algebra kernel needed by
// the Prophet-lite forecaster: matrix multiplication, Cholesky factorization,
// and a ridge-regression (Tikhonov-regularized least squares) solver.
//
// Matrices are row-major dense float64. The package is intentionally minimal;
// it exists so the forecaster has no external dependencies.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty rows")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × b. It panics when the inner dimensions differ.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m × v as a new vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// ErrNotPD is returned when a Cholesky factorization encounters a matrix
// that is not positive definite.
var ErrNotPD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A. A is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A, via forward
// then back substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// Ridge solves the regularized least-squares problem
//
//	min_w ‖X·w − y‖² + λ‖w‖²
//
// by forming the normal equations (XᵀX + λI)·w = Xᵀy and factoring with
// Cholesky. λ must be >= 0; a tiny jitter is added automatically if the
// factorization fails, which keeps the forecaster robust to collinear
// design columns (e.g. redundant holiday indicators).
func Ridge(x *Matrix, y []float64, lambda float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, errors.New("linalg: Ridge rows/target mismatch")
	}
	if lambda < 0 {
		return nil, errors.New("linalg: negative ridge penalty")
	}
	xt := x.T()
	gram := xt.Mul(x)
	for i := 0; i < gram.Rows; i++ {
		gram.Set(i, i, gram.At(i, i)+lambda)
	}
	rhs := xt.MulVec(y)
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		if jitter > 0 {
			for i := 0; i < gram.Rows; i++ {
				gram.Set(i, i, gram.At(i, i)+jitter)
			}
		}
		l, err := Cholesky(gram)
		if err == nil {
			return SolveCholesky(l, rhs), nil
		}
		if jitter == 0 {
			jitter = 1e-8
		} else {
			jitter *= 100
		}
	}
	return nil, ErrNotPD
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
