package flow

import "entitlement/internal/obs"

// Solver instruments. Allocate runs in the risk simulator's hot loop, so
// the per-call cost here is two clock reads and a lock-free histogram
// observe — negligible against a multi-millisecond solve.
var (
	mAllocSeconds = obs.RegisterHistogram("entitlement_flow_allocate_seconds", "Latency of one max-min allocation solve over the topology.")
	mAllocs       = obs.RegisterCounter("entitlement_flow_allocations_total", "Allocation solves completed.")
)
