package flow

import (
	"math/rand"
	"testing"

	"entitlement/internal/topology"
)

// TestAllocateIntoMatchesAllocate pins the hot-path contract: AllocateInto
// writes exactly the admitted rates Allocate reports, across random failure
// states and demand mixes, including reuse of an undersized scratch slice.
func TestAllocateIntoMatchesAllocate(t *testing.T) {
	opts := topology.DefaultBackboneOptions()
	opts.Regions = 8
	opts.Chords = 5
	opts.LinkFail = 0.1
	topo, err := topology.Backbone(opts)
	if err != nil {
		t.Fatal(err)
	}
	regions := topo.RegionsSorted()
	rng := rand.New(rand.NewSource(42))
	runner := NewRunner(topo)
	var scratch []float64
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		demands := make([]Demand, n)
		for i := range demands {
			src := regions[rng.Intn(len(regions))]
			dst := regions[rng.Intn(len(regions))]
			for dst == src {
				dst = regions[rng.Intn(len(regions))]
			}
			demands[i] = Demand{
				Key: string(src) + ">" + string(dst) + string(rune('a'+i)),
				Src: src, Dst: dst,
				Rate:  float64(50+rng.Intn(500)) * 1e9,
				Class: rng.Intn(4),
			}
		}
		state := topo.SampleFailureAt(int64(trial), trial)
		want := runner.Allocate(state, demands, AllocateOptions{})
		scratch = runner.AllocateInto(state, demands, AllocateOptions{}, scratch)
		if len(scratch) != n {
			t.Fatalf("trial %d: AllocateInto returned %d rates for %d demands", trial, len(scratch), n)
		}
		for i, d := range demands {
			if scratch[i] != want.Admitted[d.Key] {
				t.Fatalf("trial %d: %s admitted %v via AllocateInto, %v via Allocate",
					trial, d.Key, scratch[i], want.Admitted[d.Key])
			}
		}
	}

	// A nil scratch slice is grown; zero demands is a no-op.
	out := runner.AllocateInto(topo.AllUp(), nil, AllocateOptions{}, nil)
	if len(out) != 0 {
		t.Fatalf("empty demand set returned %d rates", len(out))
	}
}
