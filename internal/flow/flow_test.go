package flow

import (
	"math"
	"testing"
	"testing/quick"

	"entitlement/internal/topology"
)

// lineTopo builds A -> B -> C with the given capacities.
func lineTopo(t *testing.T, capAB, capBC float64) *topology.Topology {
	t.Helper()
	topo := topology.New()
	if _, err := topo.AddLink("A", "B", capAB, 0, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddLink("B", "C", capBC, 0, -1); err != nil {
		t.Fatal(err)
	}
	return topo
}

// diamondTopo builds A->B->D and A->C->D.
func diamondTopo(t *testing.T, caps [4]float64) *topology.Topology {
	t.Helper()
	topo := topology.New()
	mustAdd := func(a, b topology.Region, c float64) int {
		id, err := topo.AddLink(a, b, c, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	mustAdd("A", "B", caps[0])
	mustAdd("B", "D", caps[1])
	mustAdd("A", "C", caps[2])
	mustAdd("C", "D", caps[3])
	return topo
}

func TestNetworkResidualAndUse(t *testing.T) {
	topo := lineTopo(t, 100, 50)
	net := NewNetwork(topo, topo.AllUp())
	if net.Residual(0) != 100 || net.Residual(1) != 50 {
		t.Errorf("residuals = %v %v", net.Residual(0), net.Residual(1))
	}
	path := []int{0, 1}
	if got := net.PathBottleneck(path); got != 50 {
		t.Errorf("bottleneck = %v, want 50", got)
	}
	net.Use(path, 30)
	if net.Residual(0) != 70 || net.Residual(1) != 20 {
		t.Errorf("after Use: %v %v", net.Residual(0), net.Residual(1))
	}
	net.Release(path, 10)
	if net.Residual(1) != 30 {
		t.Errorf("after Release: %v", net.Residual(1))
	}
}

func TestNetworkUseOvercommitPanics(t *testing.T) {
	topo := lineTopo(t, 10, 10)
	net := NewNetwork(topo, topo.AllUp())
	defer func() {
		if recover() == nil {
			t.Fatal("overcommit did not panic")
		}
	}()
	net.Use([]int{0}, 20)
}

func TestNetworkFailedLinksHaveZeroResidual(t *testing.T) {
	topo := lineTopo(t, 100, 50)
	st := topo.AllUp()
	st.FailLink(0)
	net := NewNetwork(topo, st)
	if net.Residual(0) != 0 {
		t.Errorf("failed link residual = %v", net.Residual(0))
	}
}

func TestShortestPathBasic(t *testing.T) {
	topo := diamondTopo(t, [4]float64{10, 10, 10, 10})
	net := NewNetwork(topo, topo.AllUp())
	path, metric, ok := net.ShortestPath("A", "D", 0, nil, nil)
	if !ok || len(path) != 2 || metric != 2 {
		t.Errorf("path=%v metric=%v ok=%v", path, metric, ok)
	}
	// Same source/dest.
	path, metric, ok = net.ShortestPath("A", "A", 0, nil, nil)
	if !ok || len(path) != 0 || metric != 0 {
		t.Error("self path wrong")
	}
	// Unreachable.
	if _, _, ok := net.ShortestPath("D", "A", 0, nil, nil); ok {
		t.Error("reverse path should not exist in this DAG")
	}
}

func TestShortestPathAvoidsSaturatedLinks(t *testing.T) {
	topo := diamondTopo(t, [4]float64{10, 10, 10, 10})
	net := NewNetwork(topo, topo.AllUp())
	first, _, _ := net.ShortestPath("A", "D", 0, nil, nil)
	net.Use(first, 10) // saturate
	second, _, ok := net.ShortestPath("A", "D", 0, nil, nil)
	if !ok {
		t.Fatal("alternate path not found")
	}
	if pathEqual(first, second) {
		t.Error("shortest path reused a saturated link")
	}
}

func TestShortestPathPrefersLowMetric(t *testing.T) {
	topo := topology.New()
	ab, _ := topo.AddLink("A", "B", 10, 0, -1)
	bc, _ := topo.AddLink("B", "C", 10, 0, -1)
	ac, _ := topo.AddLink("A", "C", 10, 0, -1)
	// Make the direct link expensive.
	topo.Link(ac).Metric = 5
	net := NewNetwork(topo, topo.AllUp())
	path, metric, ok := net.ShortestPath("A", "C", 0, nil, nil)
	if !ok || metric != 2 || len(path) != 2 || path[0] != ab || path[1] != bc {
		t.Errorf("path=%v metric=%v", path, metric)
	}
}

func TestKShortestPaths(t *testing.T) {
	topo := diamondTopo(t, [4]float64{10, 10, 10, 10})
	net := NewNetwork(topo, topo.AllUp())
	paths := net.KShortestPaths("A", "D", 3)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (diamond has exactly 2)", len(paths))
	}
	if pathEqual(paths[0], paths[1]) {
		t.Error("duplicate paths returned")
	}
	for _, p := range paths {
		if len(p) != 2 {
			t.Errorf("path %v has unexpected length", p)
		}
	}
	if got := net.KShortestPaths("A", "D", 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := net.KShortestPaths("D", "A", 2); got != nil {
		t.Error("unreachable should return nil")
	}
}

func TestKShortestPathsOrdering(t *testing.T) {
	// A->C direct (metric 1), A->B->C (2), A->B->D->C (3).
	topo := topology.New()
	topo.AddLink("A", "C", 10, 0, -1)
	topo.AddLink("A", "B", 10, 0, -1)
	topo.AddLink("B", "C", 10, 0, -1)
	topo.AddLink("B", "D", 10, 0, -1)
	topo.AddLink("D", "C", 10, 0, -1)
	net := NewNetwork(topo, topo.AllUp())
	paths := net.KShortestPaths("A", "C", 5)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if net.pathMetric(paths[i]) < net.pathMetric(paths[i-1]) {
			t.Error("paths not ordered by metric")
		}
	}
}

// referenceKShortest is the pre-heap Yen implementation (full
// sort.SliceStable re-sort of the candidate list per accepted path), kept
// here as the oracle for the min-heap + dedup-set version.
func referenceKShortest(n *Network, src, dst topology.Region, k int) [][]int {
	if k <= 0 {
		return nil
	}
	first, _, ok := n.ShortestPath(src, dst, 0, nil, nil)
	if !ok {
		return nil
	}
	type cand struct {
		path   []int
		metric float64
	}
	contains := func(ps [][]int, p []int) bool {
		for _, q := range ps {
			if pathEqual(q, p) {
				return true
			}
		}
		return false
	}
	containsCand := func(cs []cand, p []int) bool {
		for _, c := range cs {
			if pathEqual(c.path, p) {
				return true
			}
		}
		return false
	}
	paths := [][]int{first}
	var candidates []cand
	for len(paths) < k {
		last := paths[len(paths)-1]
		for i := 0; i <= len(last)-1; i++ {
			rootPath := last[:i]
			spurNode := src
			if i > 0 {
				spurNode = n.Topo.Link(last[i-1]).Dst
			}
			banned := make(map[int]bool)
			for _, p := range paths {
				if len(p) > i && pathEqual(p[:i], rootPath) {
					banned[p[i]] = true
				}
			}
			bannedRegions := make(map[topology.Region]bool)
			at := src
			for _, id := range rootPath {
				bannedRegions[at] = true
				at = n.Topo.Link(id).Dst
			}
			spur, _, ok := n.ShortestPath(spurNode, dst, 0, banned, bannedRegions)
			if !ok {
				continue
			}
			total := append(append([]int{}, rootPath...), spur...)
			if contains(paths, total) || containsCand(candidates, total) {
				continue
			}
			candidates = append(candidates, cand{path: total, metric: n.pathMetric(total)})
		}
		if len(candidates) == 0 {
			break
		}
		sortStableCands := func() {
			for i := 1; i < len(candidates); i++ { // insertion sort = stable
				for j := i; j > 0; j-- {
					a, b := candidates[j], candidates[j-1]
					if a.metric < b.metric || (a.metric == b.metric && len(a.path) < len(b.path)) {
						candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
					} else {
						break
					}
				}
			}
		}
		sortStableCands()
		paths = append(paths, candidates[0].path)
		candidates = candidates[1:]
	}
	return paths
}

// TestKShortestPathsMatchesReferenceOnFigureSix asserts the heap-based Yen
// produces identical output (same paths, same order) as the former
// stable-sort implementation on the Figure 6 full mesh.
func TestKShortestPathsMatchesReferenceOnFigureSix(t *testing.T) {
	topo := topology.FigureSix()
	pairs := [][2]topology.Region{{"A", "E"}, {"B", "D"}, {"E", "A"}, {"C", "B"}}
	for _, pair := range pairs {
		for _, k := range []int{1, 3, 8, 16, 40} {
			got := NewNetwork(topo, topo.AllUp()).KShortestPaths(pair[0], pair[1], k)
			want := referenceKShortest(NewNetwork(topo, topo.AllUp()), pair[0], pair[1], k)
			if len(got) != len(want) {
				t.Fatalf("%s->%s k=%d: %d paths, reference %d", pair[0], pair[1], k, len(got), len(want))
			}
			for i := range got {
				if !pathEqual(got[i], want[i]) {
					t.Errorf("%s->%s k=%d path %d: %v != reference %v", pair[0], pair[1], k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMaxFlowLine(t *testing.T) {
	topo := lineTopo(t, 100, 50)
	net := NewNetwork(topo, topo.AllUp())
	if got := net.MaxFlow("A", "C"); got != 50 {
		t.Errorf("MaxFlow = %v, want 50", got)
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	topo := diamondTopo(t, [4]float64{30, 20, 15, 25})
	net := NewNetwork(topo, topo.AllUp())
	// Top path min(30,20)=20, bottom min(15,25)=15 → 35.
	if got := net.MaxFlow("A", "D"); got != 35 {
		t.Errorf("MaxFlow = %v, want 35", got)
	}
}

func TestMaxFlowUnreachableAndSelf(t *testing.T) {
	topo := lineTopo(t, 10, 10)
	net := NewNetwork(topo, topo.AllUp())
	if got := net.MaxFlow("C", "A"); got != 0 {
		t.Errorf("unreachable MaxFlow = %v", got)
	}
	if got := net.MaxFlow("A", "A"); !math.IsInf(got, 1) {
		t.Errorf("self MaxFlow = %v, want +Inf", got)
	}
}

func TestMaxFlowUnderFailure(t *testing.T) {
	topo := diamondTopo(t, [4]float64{30, 20, 15, 25})
	st := topo.AllUp()
	st.FailLink(0) // kill A->B
	net := NewNetwork(topo, st)
	if got := net.MaxFlow("A", "D"); got != 15 {
		t.Errorf("MaxFlow under failure = %v, want 15", got)
	}
}

func TestAllocateSingleDemand(t *testing.T) {
	topo := lineTopo(t, 100, 50)
	a := Allocate(topo, topo.AllUp(), []Demand{{Key: "d", Src: "A", Dst: "C", Rate: 80, Class: 0}}, AllocateOptions{})
	if got := a.Admitted["d"]; math.Abs(got-50) > 1e-6 {
		t.Errorf("admitted = %v, want 50 (bottleneck)", got)
	}
	if f := a.AdmittedFraction(Demand{Key: "d", Rate: 80}); math.Abs(f-50.0/80) > 1e-6 {
		t.Errorf("fraction = %v", f)
	}
}

func TestAllocateFullySatisfiable(t *testing.T) {
	topo := lineTopo(t, 100, 100)
	a := Allocate(topo, topo.AllUp(), []Demand{{Key: "d", Src: "A", Dst: "C", Rate: 60, Class: 0}}, AllocateOptions{})
	if got := a.Admitted["d"]; math.Abs(got-60) > 1e-6 {
		t.Errorf("admitted = %v, want 60", got)
	}
	// LinkUsed reflects the allocation.
	if math.Abs(a.LinkUsed[0]-60) > 1e-6 {
		t.Errorf("LinkUsed = %v", a.LinkUsed)
	}
}

func TestAllocatePriorityStrictness(t *testing.T) {
	// One 50-capacity path, high-priority demand wants all of it.
	topo := lineTopo(t, 50, 50)
	demands := []Demand{
		{Key: "low", Src: "A", Dst: "C", Rate: 50, Class: 3},
		{Key: "high", Src: "A", Dst: "C", Rate: 50, Class: 0},
	}
	a := Allocate(topo, topo.AllUp(), demands, AllocateOptions{})
	if got := a.Admitted["high"]; math.Abs(got-50) > 1e-6 {
		t.Errorf("high admitted = %v, want 50", got)
	}
	if got := a.Admitted["low"]; got > 1e-6 {
		t.Errorf("low admitted = %v, want 0", got)
	}
}

func TestAllocateFairWithinClass(t *testing.T) {
	topo := lineTopo(t, 100, 100)
	demands := []Demand{
		{Key: "x", Src: "A", Dst: "C", Rate: 100, Class: 0},
		{Key: "y", Src: "A", Dst: "C", Rate: 100, Class: 0},
	}
	a := Allocate(topo, topo.AllUp(), demands, AllocateOptions{Rounds: 32})
	x, y := a.Admitted["x"], a.Admitted["y"]
	if math.Abs(x+y-100) > 1e-6 {
		t.Errorf("total admitted = %v, want 100", x+y)
	}
	// Approximate fairness: neither gets more than ~60%.
	if x > 62 || y > 62 {
		t.Errorf("unfair split: x=%v y=%v", x, y)
	}
}

func TestAllocateMultipath(t *testing.T) {
	topo := diamondTopo(t, [4]float64{30, 30, 30, 30})
	a := Allocate(topo, topo.AllUp(), []Demand{{Key: "d", Src: "A", Dst: "D", Rate: 60, Class: 0}}, AllocateOptions{})
	if got := a.Admitted["d"]; math.Abs(got-60) > 1e-6 {
		t.Errorf("multipath admitted = %v, want 60", got)
	}
}

func TestAllocateZeroDemand(t *testing.T) {
	topo := lineTopo(t, 10, 10)
	a := Allocate(topo, topo.AllUp(), []Demand{{Key: "z", Src: "A", Dst: "C", Rate: 0, Class: 0}}, AllocateOptions{})
	if a.Admitted["z"] != 0 {
		t.Errorf("zero demand admitted %v", a.Admitted["z"])
	}
	if a.AdmittedFraction(Demand{Key: "z", Rate: 0}) != 1 {
		t.Error("zero demand fraction should be 1")
	}
}

// Property: allocation never admits more than requested, never overcommits a
// link, and respects class priority (total admitted for class 0 with the
// network to itself >= what it gets sharing with lower classes).
func TestAllocateInvariantsProperty(t *testing.T) {
	f := func(seed int64, nDemandsRaw uint8) bool {
		opts := topology.DefaultBackboneOptions()
		opts.Seed = seed
		opts.Regions = 6
		opts.Chords = 3
		topo, err := topology.Backbone(opts)
		if err != nil {
			return false
		}
		regions := topo.RegionsSorted()
		nDemands := 1 + int(nDemandsRaw)%8
		demands := make([]Demand, 0, nDemands)
		r := seed
		next := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int((r >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		for i := 0; i < nDemands; i++ {
			s := regions[next(len(regions))]
			d := regions[next(len(regions))]
			if s == d {
				continue
			}
			demands = append(demands, Demand{
				Key: string(s) + ">" + string(d) + string(rune('0'+i)),
				Src: s, Dst: d,
				Rate:  float64(1+next(2000)) * 1e9,
				Class: next(4),
			})
		}
		if len(demands) == 0 {
			return true
		}
		a := Allocate(topo, topo.AllUp(), demands, AllocateOptions{Rounds: 8})
		for _, d := range demands {
			if a.Admitted[d.Key] > d.Rate+1e-3 {
				return false
			}
			if a.Admitted[d.Key] < 0 {
				return false
			}
		}
		for i, used := range a.LinkUsed {
			if used > topo.Links[i].Capacity+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: MaxFlow from A to C on the line topology always equals
// min(capAB, capBC).
func TestMaxFlowLineProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		capAB, capBC := float64(a)+1, float64(b)+1
		topo := topology.New()
		topo.AddLink("A", "B", capAB, 0, -1)
		topo.AddLink("B", "C", capBC, 0, -1)
		net := NewNetwork(topo, topo.AllUp())
		got := net.MaxFlow("A", "C")
		want := math.Min(capAB, capBC)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRunnerPoolRecycling checks the pool's reuse contract: recycled runners
// allocate byte-identically to fresh ones, Put respects the idle cap and the
// topology binding, and Get falls back to construction when empty.
func TestRunnerPoolRecycling(t *testing.T) {
	topo := topology.FigureSix()
	demands := []Demand{
		{Key: "x", Src: "A", Dst: "C", Rate: 800e9, Class: 0},
		{Key: "y", Src: "B", Dst: "E", Rate: 600e9, Class: 1},
	}
	state := topo.AllUp()
	state.FailLink(0)
	fresh := NewRunner(topo).Allocate(state, demands, AllocateOptions{})

	pool := NewRunnerPool(topo, 2)
	r1 := pool.Get()
	// Dirty the runner with a different allocation, recycle, and re-check.
	r1.Allocate(topo.AllUp(), demands[:1], AllocateOptions{})
	pool.Put(r1)
	r2 := pool.Get()
	if r2 != r1 {
		t.Fatal("pool did not recycle the returned runner")
	}
	got := r2.Allocate(state, demands, AllocateOptions{})
	for _, d := range demands {
		if got.Admitted[d.Key] != fresh.Admitted[d.Key] {
			t.Errorf("recycled runner admitted %v for %s, fresh %v",
				got.Admitted[d.Key], d.Key, fresh.Admitted[d.Key])
		}
	}

	// Idle cap: a third Put is dropped.
	pool.Put(NewRunner(topo))
	pool.Put(NewRunner(topo))
	pool.Put(NewRunner(topo))
	if n := pool.Idle(); n != 2 {
		t.Errorf("idle = %d, want capped at 2", n)
	}
	// Foreign runners are refused.
	other := topology.FigureSix()
	empty := NewRunnerPool(topo, 2)
	empty.Put(NewRunner(other))
	if n := empty.Idle(); n != 0 {
		t.Errorf("foreign runner retained (idle=%d)", n)
	}
}
