// Package flow implements the routing and admission engine the approval
// pipeline runs on: Dinic max-flow, Dijkstra shortest paths and Yen
// k-shortest paths over a (possibly failed) topology, and a priority-aware
// multi-commodity progressive-filling allocator that determines how much of
// each pipe demand the network can admit under a given failure state.
//
// The allocator is the substitute for the LP-based engines Meta runs in
// production: it routes each QoS class in strict priority order (c1 before
// c2, §4.3) and water-fills demands within a class, which yields the
// approximately max-min fair admissions the availability curves need.
package flow

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"entitlement/internal/topology"
)

// Network is a mutable view of residual capacity over a topology under a
// failure state. A nil state means all links are up.
type Network struct {
	Topo     *topology.Topology
	State    *topology.FailureState
	residual []float64
}

// NewNetwork creates a residual network with full link capacities for every
// operational link and zero for failed ones.
func NewNetwork(t *topology.Topology, state *topology.FailureState) *Network {
	n := &Network{Topo: t, State: state, residual: make([]float64, t.NumLinks())}
	for i := range n.residual {
		if state.IsUp(i) {
			n.residual[i] = t.Links[i].Capacity
		}
	}
	return n
}

// Residual returns the remaining capacity of link id.
func (n *Network) Residual(id int) float64 { return n.residual[id] }

// Use consumes amount capacity along the path (a sequence of link IDs).
// It panics if any link lacks the capacity; callers must bound the amount by
// PathBottleneck first.
func (n *Network) Use(path []int, amount float64) {
	for _, id := range path {
		if n.residual[id] < amount-1e-9 {
			panic(fmt.Sprintf("flow: overcommit on link %d: %v < %v", id, n.residual[id], amount))
		}
		n.residual[id] -= amount
		if n.residual[id] < 0 {
			n.residual[id] = 0
		}
	}
}

// Release returns amount capacity along the path.
func (n *Network) Release(path []int, amount float64) {
	for _, id := range path {
		n.residual[id] += amount
	}
}

// PathBottleneck returns the minimum residual along the path.
func (n *Network) PathBottleneck(path []int) float64 {
	if len(path) == 0 {
		return 0
	}
	m := n.residual[path[0]]
	for _, id := range path[1:] {
		if n.residual[id] < m {
			m = n.residual[id]
		}
	}
	return m
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	region topology.Region
	dist   float64
	index  int
}

type pq []*pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pq) Push(x interface{}) { it := x.(*pqItem); it.index = len(*q); *q = append(*q, it) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-metric path (as link IDs) from src to dst
// over links with residual capacity strictly greater than minResidual, along
// with its total metric. ok is false when dst is unreachable.
//
// bannedLinks and bannedRegions (either may be nil) are excluded; Yen's
// algorithm uses them for spur-path computation.
func (n *Network) ShortestPath(src, dst topology.Region, minResidual float64, bannedLinks map[int]bool, bannedRegions map[topology.Region]bool) (path []int, metric float64, ok bool) {
	if src == dst {
		return nil, 0, true
	}
	dist := make(map[topology.Region]float64)
	prevLink := make(map[topology.Region]int)
	visited := make(map[topology.Region]bool)
	q := &pq{}
	heap.Push(q, &pqItem{region: src, dist: 0})
	dist[src] = 0
	for q.Len() > 0 {
		cur := heap.Pop(q).(*pqItem)
		if visited[cur.region] {
			continue
		}
		visited[cur.region] = true
		if cur.region == dst {
			break
		}
		for _, id := range n.Topo.Outgoing(cur.region) {
			if bannedLinks[id] || n.residual[id] <= minResidual {
				continue
			}
			l := n.Topo.Link(id)
			if bannedRegions[l.Dst] && l.Dst != dst {
				continue
			}
			nd := cur.dist + l.Metric
			if old, seen := dist[l.Dst]; !seen || nd < old {
				dist[l.Dst] = nd
				prevLink[l.Dst] = id
				heap.Push(q, &pqItem{region: l.Dst, dist: nd})
			}
		}
	}
	if !visited[dst] {
		return nil, 0, false
	}
	// Reconstruct.
	var rev []int
	at := dst
	for at != src {
		id := prevLink[at]
		rev = append(rev, id)
		at = n.Topo.Link(id).Src
	}
	path = make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path, dist[dst], true
}

// KShortestPaths implements Yen's algorithm over the residual network,
// returning up to k loopless paths from src to dst ordered by metric.
func (n *Network) KShortestPaths(src, dst topology.Region, k int) [][]int {
	if k <= 0 {
		return nil
	}
	first, _, ok := n.ShortestPath(src, dst, 0, nil, nil)
	if !ok {
		return nil
	}
	paths := [][]int{first}
	var candidates []yenCandidate
	for len(paths) < k {
		last := paths[len(paths)-1]
		// Spur from each node of the previous path.
		for i := 0; i <= len(last)-1; i++ {
			rootPath := last[:i]
			spurNode := src
			if i > 0 {
				spurNode = n.Topo.Link(last[i-1]).Dst
			}
			banned := make(map[int]bool)
			for _, p := range paths {
				if len(p) > i && pathEqual(p[:i], rootPath) {
					banned[p[i]] = true
				}
			}
			bannedRegions := make(map[topology.Region]bool)
			at := src
			for _, id := range rootPath {
				bannedRegions[at] = true
				at = n.Topo.Link(id).Dst
			}
			spur, _, ok := n.ShortestPath(spurNode, dst, 0, banned, bannedRegions)
			if !ok {
				continue
			}
			total := append(append([]int{}, rootPath...), spur...)
			if containsPath(paths, total) || containsCandidate(candidates, total) {
				continue
			}
			candidates = append(candidates, yenCandidate{path: total, metric: n.pathMetric(total)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(i, j int) bool {
			if candidates[i].metric != candidates[j].metric {
				return candidates[i].metric < candidates[j].metric
			}
			return len(candidates[i].path) < len(candidates[j].path)
		})
		paths = append(paths, candidates[0].path)
		candidates = candidates[1:]
	}
	return paths
}

func (n *Network) pathMetric(path []int) float64 {
	m := 0.0
	for _, id := range path {
		m += n.Topo.Link(id).Metric
	}
	return m
}

func pathEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(paths [][]int, p []int) bool {
	for _, q := range paths {
		if pathEqual(q, p) {
			return true
		}
	}
	return false
}

// yenCandidate is a spur path awaiting promotion in Yen's algorithm.
type yenCandidate struct {
	path   []int
	metric float64
}

func containsCandidate(cs []yenCandidate, p []int) bool {
	for _, c := range cs {
		if pathEqual(c.path, p) {
			return true
		}
	}
	return false
}

// MaxFlow computes the maximum src→dst flow over the residual network using
// Dinic's algorithm. The network's residual capacities are not modified.
func (n *Network) MaxFlow(src, dst topology.Region) float64 {
	if src == dst {
		return math.Inf(1)
	}
	// Build Dinic arc structure: each topology link becomes a forward arc
	// with residual capacity plus a zero-capacity reverse arc.
	type arc struct {
		to  topology.Region
		cap float64
		rev int // index of the reverse arc in adj[to]
	}
	adj := make(map[topology.Region][]arc)
	addArc := func(u, v topology.Region, c float64) {
		adj[u] = append(adj[u], arc{to: v, cap: c, rev: len(adj[v])})
		adj[v] = append(adj[v], arc{to: u, cap: 0, rev: len(adj[u]) - 1})
	}
	for i := range n.Topo.Links {
		if n.residual[i] > 0 {
			l := n.Topo.Link(i)
			addArc(l.Src, l.Dst, n.residual[i])
		}
	}
	level := make(map[topology.Region]int)
	bfs := func() bool {
		for k := range level {
			delete(level, k)
		}
		queue := []topology.Region{src}
		level[src] = 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range adj[u] {
				if a.cap > 1e-9 {
					if _, seen := level[a.to]; !seen {
						level[a.to] = level[u] + 1
						queue = append(queue, a.to)
					}
				}
			}
		}
		_, ok := level[dst]
		return ok
	}
	iter := make(map[topology.Region]int)
	var dfs func(u topology.Region, f float64) float64
	dfs = func(u topology.Region, f float64) float64 {
		if u == dst {
			return f
		}
		for ; iter[u] < len(adj[u]); iter[u]++ {
			a := &adj[u][iter[u]]
			if a.cap > 1e-9 && level[a.to] == level[u]+1 {
				d := dfs(a.to, math.Min(f, a.cap))
				if d > 1e-9 {
					a.cap -= d
					adj[a.to][a.rev].cap += d
					return d
				}
			}
		}
		return 0
	}
	total := 0.0
	for bfs() {
		for k := range iter {
			delete(iter, k)
		}
		for {
			f := dfs(src, math.Inf(1))
			if f <= 1e-9 {
				break
			}
			total += f
		}
	}
	return total
}

// Demand is one pipe's bandwidth request for the allocator.
type Demand struct {
	Key      string // caller-defined identity (e.g. "Ads/c2/A->B")
	Src, Dst topology.Region
	Rate     float64 // requested bits/s
	Class    int     // QoS class; lower allocates first (c1=0 ... c4=3)
}

// Allocation reports the admitted rate per demand key.
type Allocation struct {
	Admitted map[string]float64
	// LinkUsed holds the total allocated bandwidth per link ID.
	LinkUsed []float64
}

// AdmittedFraction returns admitted/requested for the demand, or 1 for a
// zero-rate demand.
func (a *Allocation) AdmittedFraction(d Demand) float64 {
	if d.Rate <= 0 {
		return 1
	}
	return a.Admitted[d.Key] / d.Rate
}

// AllocateOptions tunes the progressive-filling allocator.
type AllocateOptions struct {
	// Rounds is the number of water-filling rounds per class; more rounds
	// produce finer max-min fairness at linear cost. Default 16.
	Rounds int
	// MaxPathLen bounds path metric stretch: a demand only uses paths with
	// metric <= MaxPathLen. Zero means unbounded.
	MaxPathLen float64
}

// Allocate routes demands over the topology under the failure state,
// respecting strict priority between classes and approximate max-min
// fairness within a class. The returned allocation maps demand keys to the
// admitted rate (<= requested).
func Allocate(t *topology.Topology, state *topology.FailureState, demands []Demand, opts AllocateOptions) *Allocation {
	if opts.Rounds <= 0 {
		opts.Rounds = 16
	}
	net := NewNetwork(t, state)
	alloc := &Allocation{Admitted: make(map[string]float64, len(demands)), LinkUsed: make([]float64, t.NumLinks())}

	// Group by class, preserving deterministic order.
	byClass := make(map[int][]Demand)
	classes := make([]int, 0, 4)
	for _, d := range demands {
		if _, ok := byClass[d.Class]; !ok {
			classes = append(classes, d.Class)
		}
		byClass[d.Class] = append(byClass[d.Class], d)
	}
	sort.Ints(classes)

	for _, c := range classes {
		ds := byClass[c]
		remaining := make([]float64, len(ds))
		maxRem := 0.0
		for i, d := range ds {
			remaining[i] = d.Rate
			if d.Rate > maxRem {
				maxRem = d.Rate
			}
		}
		if maxRem <= 0 {
			continue
		}
		quantum := maxRem / float64(opts.Rounds)
		for progress := true; progress; {
			progress = false
			for i := range ds {
				if remaining[i] <= 1e-6 {
					continue
				}
				want := math.Min(remaining[i], quantum)
				pushed := pushDemand(net, ds[i], want, opts.MaxPathLen)
				if pushed > 1e-9 {
					remaining[i] -= pushed
					alloc.Admitted[ds[i].Key] += pushed
					progress = true
				}
			}
		}
	}
	for i := range alloc.LinkUsed {
		if state.IsUp(i) {
			alloc.LinkUsed[i] = t.Links[i].Capacity - net.Residual(i)
		}
	}
	return alloc
}

// pushDemand routes up to want bits/s of the demand along shortest available
// paths, possibly splitting across several, and returns the amount placed.
func pushDemand(net *Network, d Demand, want, maxPathLen float64) float64 {
	placed := 0.0
	for placed < want-1e-9 {
		path, metric, ok := net.ShortestPath(d.Src, d.Dst, 0, nil, nil)
		if !ok || len(path) == 0 {
			break
		}
		if maxPathLen > 0 && metric > maxPathLen {
			break
		}
		amt := math.Min(want-placed, net.PathBottleneck(path))
		if amt <= 1e-9 {
			break
		}
		net.Use(path, amt)
		placed += amt
	}
	return placed
}
