// Package flow implements the routing and admission engine the approval
// pipeline runs on: Dinic max-flow, Dijkstra shortest paths and Yen
// k-shortest paths over a (possibly failed) topology, and a priority-aware
// multi-commodity progressive-filling allocator that determines how much of
// each pipe demand the network can admit under a given failure state.
//
// The allocator is the substitute for the LP-based engines Meta runs in
// production: it routes each QoS class in strict priority order (c1 before
// c2, §4.3) and water-fills demands within a class, which yields the
// approximately max-min fair admissions the availability curves need.
//
// The hot path (Allocate inside the Monte-Carlo risk loop) runs entirely on
// the topology's dense CSR view (topology.Dense) with reusable int-indexed
// scratch buffers instead of map[Region] state: Dijkstra uses epoch-stamped
// visited arrays (no per-call clearing), the heap is a plain slice, and a
// Runner lets one goroutine reuse every buffer across scenarios. A Network
// (and therefore a Runner) is NOT safe for concurrent use; give each worker
// its own.
package flow

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"entitlement/internal/topology"
)

// Network is a mutable view of residual capacity over a topology under a
// failure state. A nil state means all links are up.
//
// Network owns reusable path-computation scratch, so a single Network must
// not be shared between goroutines. Use one Network (or Runner) per worker.
type Network struct {
	Topo     *topology.Topology
	State    *topology.FailureState
	residual []float64

	dense *topology.Dense
	sp    spScratch
	mf    mfScratch
}

// NewNetwork creates a residual network with full link capacities for every
// operational link and zero for failed ones.
func NewNetwork(t *topology.Topology, state *topology.FailureState) *Network {
	n := &Network{Topo: t}
	n.Reset(state)
	return n
}

// Reset re-initializes the network for a new failure state, reusing every
// internal buffer. It also picks up structural topology changes (new links
// or regions) made since the last reset.
func (n *Network) Reset(state *topology.FailureState) {
	n.State = state
	n.dense = n.Topo.Dense()
	nl := n.Topo.NumLinks()
	if cap(n.residual) < nl {
		n.residual = make([]float64, nl)
	}
	n.residual = n.residual[:nl]
	for i := 0; i < nl; i++ {
		if state.IsUp(i) {
			n.residual[i] = n.Topo.Links[i].Capacity
		} else {
			n.residual[i] = 0
		}
	}
	n.sp.ensure(n.Topo.NumRegions())
}

// Residual returns the remaining capacity of link id.
func (n *Network) Residual(id int) float64 { return n.residual[id] }

// Use consumes amount capacity along the path (a sequence of link IDs).
// It panics if any link lacks the capacity; callers must bound the amount by
// PathBottleneck first.
func (n *Network) Use(path []int, amount float64) {
	for _, id := range path {
		if n.residual[id] < amount-1e-9 {
			panic(fmt.Sprintf("flow: overcommit on link %d: %v < %v", id, n.residual[id], amount))
		}
		n.residual[id] -= amount
		if n.residual[id] < 0 {
			n.residual[id] = 0
		}
	}
}

// Release returns amount capacity along the path.
func (n *Network) Release(path []int, amount float64) {
	for _, id := range path {
		n.residual[id] += amount
	}
}

// PathBottleneck returns the minimum residual along the path.
func (n *Network) PathBottleneck(path []int) float64 {
	if len(path) == 0 {
		return 0
	}
	m := n.residual[path[0]]
	for _, id := range path[1:] {
		if n.residual[id] < m {
			m = n.residual[id]
		}
	}
	return m
}

// --- Dijkstra over dense indexes -----------------------------------------

// spScratch holds the reusable Dijkstra state: epoch-stamped seen/done
// arrays avoid clearing between runs, the heap is a plain slice of values
// (no container/heap boxing), and the output path is written into a
// reusable buffer.
type spScratch struct {
	dist     []float64
	prevLink []int32
	seen     []uint64 // epoch when dist/prevLink became valid
	done     []uint64 // epoch when the region was finalized
	epoch    uint64

	heap spHeap
	path []int // last computed path, forward link IDs (reused)

	// bannedRegion is epoch-stamped by banEpoch; used only by Yen spurs.
	bannedRegion []uint64
	banEpoch     uint64
}

func (s *spScratch) ensure(regions int) {
	if len(s.dist) >= regions {
		return
	}
	s.dist = make([]float64, regions)
	s.prevLink = make([]int32, regions)
	s.seen = make([]uint64, regions)
	s.done = make([]uint64, regions)
	s.bannedRegion = make([]uint64, regions)
}

// spNode is one heap entry: a region index at a tentative distance.
type spNode struct {
	dist   float64
	region int32
}

// spHeap is a slice-backed binary min-heap on dist (lazy deletion).
type spHeap []spNode

func (h *spHeap) push(n spNode) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *spHeap) pop() spNode {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old = old[:last]
	*h = old
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && old[l].dist < old[small].dist {
			small = l
		}
		if r < last && old[r].dist < old[small].dist {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// shortestPathDense runs Dijkstra from src to dst over dense region indexes,
// excluding links with residual <= minResidual, links in bannedLinks (may be
// nil), and — when useBanned is true — regions stamped in sp.bannedRegion
// (except dst). On success the path is left in n.sp.path (valid until the
// next shortest-path computation on this Network).
func (n *Network) shortestPathDense(src, dst int32, minResidual float64, bannedLinks map[int]bool, useBanned bool) (metric float64, ok bool) {
	s := &n.sp
	s.path = s.path[:0]
	if src == dst {
		return 0, true
	}
	if src < 0 || dst < 0 {
		return 0, false
	}
	d := n.dense
	links := n.Topo.Links
	s.epoch++
	s.heap = s.heap[:0]
	s.dist[src] = 0
	s.seen[src] = s.epoch
	s.heap.push(spNode{dist: 0, region: src})
	for len(s.heap) > 0 {
		cur := s.heap.pop()
		u := cur.region
		if s.done[u] == s.epoch {
			continue
		}
		s.done[u] = s.epoch
		if u == dst {
			break
		}
		du := s.dist[u]
		for _, id := range d.OutLinks[d.OutStart[u]:d.OutStart[u+1]] {
			if n.residual[id] <= minResidual {
				continue
			}
			if bannedLinks != nil && bannedLinks[int(id)] {
				continue
			}
			to := d.DstIdx[id]
			if useBanned && s.bannedRegion[to] == s.banEpoch && to != dst {
				continue
			}
			nd := du + links[id].Metric
			if s.seen[to] != s.epoch || nd < s.dist[to] {
				s.dist[to] = nd
				s.seen[to] = s.epoch
				s.prevLink[to] = id
				s.heap.push(spNode{dist: nd, region: to})
			}
		}
	}
	if s.done[dst] != s.epoch {
		return 0, false
	}
	// Reconstruct in reverse, then flip in place.
	at := dst
	for at != src {
		id := s.prevLink[at]
		s.path = append(s.path, int(id))
		at = d.SrcIdx[id]
	}
	for i, j := 0, len(s.path)-1; i < j; i, j = i+1, j-1 {
		s.path[i], s.path[j] = s.path[j], s.path[i]
	}
	return s.dist[dst], true
}

// ShortestPath returns the minimum-metric path (as link IDs) from src to dst
// over links with residual capacity strictly greater than minResidual, along
// with its total metric. ok is false when dst is unreachable.
//
// bannedLinks and bannedRegions (either may be nil) are excluded; Yen's
// algorithm uses them for spur-path computation.
func (n *Network) ShortestPath(src, dst topology.Region, minResidual float64, bannedLinks map[int]bool, bannedRegions map[topology.Region]bool) (path []int, metric float64, ok bool) {
	srcIdx := int32(n.Topo.RegionIndex(src))
	dstIdx := int32(n.Topo.RegionIndex(dst))
	if src == dst {
		return nil, 0, true
	}
	useBanned := false
	if len(bannedRegions) > 0 {
		s := &n.sp
		s.banEpoch++
		for r := range bannedRegions {
			if i := n.Topo.RegionIndex(r); i >= 0 {
				s.bannedRegion[i] = s.banEpoch
			}
		}
		useBanned = true
	}
	metric, ok = n.shortestPathDense(srcIdx, dstIdx, minResidual, bannedLinks, useBanned)
	if !ok {
		return nil, 0, false
	}
	return append([]int(nil), n.sp.path...), metric, true
}

// --- Yen k-shortest paths -------------------------------------------------

// yenCandidate is a spur path awaiting promotion in Yen's algorithm.
type yenCandidate struct {
	path   []int
	metric float64
	seq    int // insertion sequence; preserves the old stable-sort order
}

// candHeap orders candidates by (metric, path length, insertion order) —
// exactly the order the previous sort.SliceStable produced, at O(log n) per
// promotion instead of a full re-sort per accepted path.
type candHeap []yenCandidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].metric != h[j].metric {
		return h[i].metric < h[j].metric
	}
	if len(h[i].path) != len(h[j].path) {
		return len(h[i].path) < len(h[j].path)
	}
	return h[i].seq < h[j].seq
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(yenCandidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// pathKey encodes a path as a compact string for the dedup set.
func pathKey(p []int) string {
	buf := make([]byte, 0, 8*len(p))
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range p {
		n := binary.PutUvarint(tmp[:], uint64(id))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// KShortestPaths implements Yen's algorithm over the residual network,
// returning up to k loopless paths from src to dst ordered by metric.
// Candidates live in a min-heap keyed (metric, length, insertion order) with
// a dedup set, replacing the former full re-sort per accepted path.
func (n *Network) KShortestPaths(src, dst topology.Region, k int) [][]int {
	if k <= 0 {
		return nil
	}
	first, _, ok := n.ShortestPath(src, dst, 0, nil, nil)
	if !ok {
		return nil
	}
	paths := [][]int{first}
	seen := map[string]bool{pathKey(first): true}
	candidates := &candHeap{}
	seq := 0
	for len(paths) < k {
		last := paths[len(paths)-1]
		// Spur from each node of the previous path.
		for i := 0; i <= len(last)-1; i++ {
			rootPath := last[:i]
			spurNode := src
			if i > 0 {
				spurNode = n.Topo.Link(last[i-1]).Dst
			}
			banned := make(map[int]bool)
			for _, p := range paths {
				if len(p) > i && pathEqual(p[:i], rootPath) {
					banned[p[i]] = true
				}
			}
			bannedRegions := make(map[topology.Region]bool)
			at := src
			for _, id := range rootPath {
				bannedRegions[at] = true
				at = n.Topo.Link(id).Dst
			}
			spur, _, ok := n.ShortestPath(spurNode, dst, 0, banned, bannedRegions)
			if !ok {
				continue
			}
			total := append(append([]int{}, rootPath...), spur...)
			key := pathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			heap.Push(candidates, yenCandidate{path: total, metric: n.pathMetric(total), seq: seq})
			seq++
		}
		if candidates.Len() == 0 {
			break
		}
		best := heap.Pop(candidates).(yenCandidate)
		paths = append(paths, best.path)
	}
	return paths
}

func (n *Network) pathMetric(path []int) float64 {
	m := 0.0
	for _, id := range path {
		m += n.Topo.Link(id).Metric
	}
	return m
}

func pathEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Dinic max-flow over dense indexes ------------------------------------

// mfScratch is the reusable Dinic state: paired arcs (forward arc 2k,
// reverse 2k+1, so rev(a) == a^1) grouped into a per-region CSR, plus BFS
// level and DFS iterator arrays.
type mfScratch struct {
	arcTo  []int32
	arcCap []float64
	start  []int32 // CSR offsets over arcs by tail region; len regions+1
	arcIdx []int32 // arc indexes grouped by tail region
	level  []int32
	iter   []int32
	queue  []int32
}

// MaxFlow computes the maximum src→dst flow over the residual network using
// Dinic's algorithm. The network's residual capacities are not modified.
func (n *Network) MaxFlow(src, dst topology.Region) float64 {
	if src == dst {
		return math.Inf(1)
	}
	srcIdx := int32(n.Topo.RegionIndex(src))
	dstIdx := int32(n.Topo.RegionIndex(dst))
	if srcIdx < 0 || dstIdx < 0 {
		return 0
	}
	d := n.dense
	regions := n.Topo.NumRegions()
	m := &n.mf

	// Build paired arcs for links with spare residual.
	m.arcTo = m.arcTo[:0]
	m.arcCap = m.arcCap[:0]
	for i := range n.residual {
		if n.residual[i] > 0 {
			m.arcTo = append(m.arcTo, d.DstIdx[i], d.SrcIdx[i])
			m.arcCap = append(m.arcCap, n.residual[i], 0)
		}
	}
	nArcs := len(m.arcTo)
	// CSR over arcs by tail region.
	if cap(m.start) < regions+1 {
		m.start = make([]int32, regions+1)
		m.level = make([]int32, regions)
		m.iter = make([]int32, regions)
		m.queue = make([]int32, 0, regions)
	}
	m.start = m.start[:regions+1]
	m.level = m.level[:regions]
	m.iter = m.iter[:regions]
	for i := range m.start {
		m.start[i] = 0
	}
	tail := func(a int) int32 {
		// Arc a's tail is the head of its pair.
		return m.arcTo[a^1]
	}
	for a := 0; a < nArcs; a++ {
		m.start[tail(a)+1]++
	}
	for r := 0; r < regions; r++ {
		m.start[r+1] += m.start[r]
	}
	if cap(m.arcIdx) < nArcs {
		m.arcIdx = make([]int32, nArcs)
	}
	m.arcIdx = m.arcIdx[:nArcs]
	fill := append([]int32(nil), m.start[:regions]...)
	for a := 0; a < nArcs; a++ {
		t := tail(a)
		m.arcIdx[fill[t]] = int32(a)
		fill[t]++
	}

	bfs := func() bool {
		for i := range m.level {
			m.level[i] = -1
		}
		m.queue = m.queue[:0]
		m.queue = append(m.queue, srcIdx)
		m.level[srcIdx] = 0
		for qi := 0; qi < len(m.queue); qi++ {
			u := m.queue[qi]
			for _, a := range m.arcIdx[m.start[u]:m.start[u+1]] {
				if m.arcCap[a] > 1e-9 {
					to := m.arcTo[a]
					if m.level[to] < 0 {
						m.level[to] = m.level[u] + 1
						m.queue = append(m.queue, to)
					}
				}
			}
		}
		return m.level[dstIdx] >= 0
	}
	var dfs func(u int32, f float64) float64
	dfs = func(u int32, f float64) float64 {
		if u == dstIdx {
			return f
		}
		for ; m.iter[u] < m.start[u+1]-m.start[u]; m.iter[u]++ {
			a := m.arcIdx[m.start[u]+m.iter[u]]
			to := m.arcTo[a]
			if m.arcCap[a] > 1e-9 && m.level[to] == m.level[u]+1 {
				dd := dfs(to, math.Min(f, m.arcCap[a]))
				if dd > 1e-9 {
					m.arcCap[a] -= dd
					m.arcCap[a^1] += dd
					return dd
				}
			}
		}
		return 0
	}
	total := 0.0
	for bfs() {
		for i := range m.iter {
			m.iter[i] = 0
		}
		for {
			f := dfs(srcIdx, math.Inf(1))
			if f <= 1e-9 {
				break
			}
			total += f
		}
	}
	return total
}

// --- Multi-commodity allocator --------------------------------------------

// Demand is one pipe's bandwidth request for the allocator.
type Demand struct {
	Key      string // caller-defined identity (e.g. "Ads/c2/A->B")
	Src, Dst topology.Region
	Rate     float64 // requested bits/s
	Class    int     // QoS class; lower allocates first (c1=0 ... c4=3)
}

// Allocation reports the admitted rate per demand key.
type Allocation struct {
	Admitted map[string]float64
	// LinkUsed holds the total allocated bandwidth per link ID.
	LinkUsed []float64
}

// AdmittedFraction returns admitted/requested for the demand, or 1 for a
// zero-rate demand.
func (a *Allocation) AdmittedFraction(d Demand) float64 {
	if d.Rate <= 0 {
		return 1
	}
	return a.Admitted[d.Key] / d.Rate
}

// AllocateOptions tunes the progressive-filling allocator.
type AllocateOptions struct {
	// Rounds is the number of water-filling rounds per class; more rounds
	// produce finer max-min fairness at linear cost. Default 16.
	Rounds int
	// MaxPathLen bounds path metric stretch: a demand only uses paths with
	// metric <= MaxPathLen. Zero means unbounded.
	MaxPathLen float64
}

// pathCache remembers a demand's last shortest path within one allocation.
// Because link metrics are static and links only leave the residual graph as
// they saturate (Release is never called mid-allocation), a cached path
// whose links all retain residual capacity is still a shortest path — so
// Dijkstra re-runs only when the cached path loses a link.
type pathCache struct {
	path   []int
	metric float64
	valid  bool
	src    int32
	dst    int32
}

// Runner owns a Network plus per-allocation scratch, so repeated Allocate
// calls over one topology (the Monte-Carlo scenario loop) allocate almost
// nothing. A Runner is NOT safe for concurrent use; create one per worker.
type Runner struct {
	topo      *topology.Topology
	net       *Network
	order     []int
	remaining []float64
	caches    []pathCache
}

// NewRunner creates an allocator runner over the topology.
func NewRunner(t *topology.Topology) *Runner {
	return &Runner{topo: t, net: NewNetwork(t, nil)}
}

// Network exposes the runner's residual network for inspection after an
// allocation (e.g. residual-capacity probes).
func (r *Runner) Network() *Network { return r.net }

// Allocate routes demands over the runner's topology under the failure
// state, respecting strict priority between classes and approximate max-min
// fairness within a class. The returned Allocation is freshly allocated and
// remains valid after subsequent calls; all internal scratch is reused.
func (r *Runner) Allocate(state *topology.FailureState, demands []Demand, opts AllocateOptions) *Allocation {
	start := time.Now()
	defer func() {
		mAllocs.Inc()
		mAllocSeconds.ObserveSince(start)
	}()
	admitted := make([]float64, len(demands))
	r.allocateCore(state, demands, opts, admitted)
	t := r.topo
	alloc := &Allocation{Admitted: make(map[string]float64, len(demands)), LinkUsed: make([]float64, t.NumLinks())}
	for i := range demands {
		if admitted[i] > 0 {
			alloc.Admitted[demands[i].Key] += admitted[i]
		}
	}
	for i := range alloc.LinkUsed {
		if state.IsUp(i) {
			alloc.LinkUsed[i] = t.Links[i].Capacity - r.net.Residual(i)
		}
	}
	return alloc
}

// AllocateInto is the map-free form of Allocate for the Monte-Carlo scenario
// loop: the admitted rate of demands[i] is written to admitted[i] (the slice
// is grown as needed and returned), with no Admitted map and no LinkUsed
// build. The admitted rates are identical to Allocate's on the same inputs.
func (r *Runner) AllocateInto(state *topology.FailureState, demands []Demand, opts AllocateOptions, admitted []float64) []float64 {
	start := time.Now()
	defer func() {
		mAllocs.Inc()
		mAllocSeconds.ObserveSince(start)
	}()
	if cap(admitted) < len(demands) {
		admitted = make([]float64, len(demands))
	}
	admitted = admitted[:len(demands)]
	for i := range admitted {
		admitted[i] = 0
	}
	r.allocateCore(state, demands, opts, admitted)
	return admitted
}

// allocateCore runs the class-ordered water-filling allocation, accumulating
// each demand's admitted rate into admitted (indexed by demand position).
func (r *Runner) allocateCore(state *topology.FailureState, demands []Demand, opts AllocateOptions, admitted []float64) {
	if opts.Rounds <= 0 {
		opts.Rounds = 16
	}
	r.net.Reset(state)
	t := r.topo

	// Order demand indexes by class, preserving input order within a class
	// (what the former map-of-slices grouping produced).
	if cap(r.order) < len(demands) {
		r.order = make([]int, len(demands))
		r.remaining = make([]float64, len(demands))
		r.caches = make([]pathCache, len(demands))
	}
	r.order = r.order[:len(demands)]
	r.remaining = r.remaining[:len(demands)]
	r.caches = r.caches[:len(demands)]
	for i := range r.order {
		r.order[i] = i
	}
	sort.SliceStable(r.order, func(a, b int) bool {
		return demands[r.order[a]].Class < demands[r.order[b]].Class
	})

	for lo := 0; lo < len(r.order); {
		hi := lo
		class := demands[r.order[lo]].Class
		for hi < len(r.order) && demands[r.order[hi]].Class == class {
			hi++
		}
		run := r.order[lo:hi]
		lo = hi

		maxRem := 0.0
		for _, di := range run {
			d := &demands[di]
			r.remaining[di] = d.Rate
			if d.Rate > maxRem {
				maxRem = d.Rate
			}
			c := &r.caches[di]
			c.valid = false
			c.src = int32(t.RegionIndex(d.Src))
			c.dst = int32(t.RegionIndex(d.Dst))
		}
		if maxRem <= 0 {
			continue
		}
		quantum := maxRem / float64(opts.Rounds)
		for progress := true; progress; {
			progress = false
			for _, di := range run {
				if r.remaining[di] <= 1e-6 {
					continue
				}
				want := math.Min(r.remaining[di], quantum)
				pushed := r.pushDemand(di, want, opts.MaxPathLen)
				if pushed > 1e-9 {
					r.remaining[di] -= pushed
					admitted[di] += pushed
					progress = true
				}
			}
		}
	}
}

// pushDemand routes up to want bits/s of demand di along shortest available
// paths, possibly splitting across several, and returns the amount placed.
// The demand's cached path is reused while every link on it retains residual
// capacity; Dijkstra re-runs only when the cached path loses a link.
func (r *Runner) pushDemand(di int, want, maxPathLen float64) float64 {
	n := r.net
	c := &r.caches[di]
	placed := 0.0
	for placed < want-1e-9 {
		if c.valid {
			for _, id := range c.path {
				if n.residual[id] <= 0 {
					c.valid = false
					break
				}
			}
		}
		if !c.valid {
			metric, ok := n.shortestPathDense(c.src, c.dst, 0, nil, false)
			if !ok || len(n.sp.path) == 0 {
				break
			}
			c.path = append(c.path[:0], n.sp.path...)
			c.metric = metric
			c.valid = true
		}
		if maxPathLen > 0 && c.metric > maxPathLen {
			break
		}
		amt := math.Min(want-placed, n.PathBottleneck(c.path))
		if amt <= 1e-9 {
			break
		}
		n.Use(c.path, amt)
		placed += amt
	}
	return placed
}

// Allocate routes demands over the topology under the failure state; it is
// the one-shot form of Runner.Allocate. Callers in a scenario loop should
// hold a Runner instead to amortize the scratch buffers.
func Allocate(t *topology.Topology, state *topology.FailureState, demands []Demand, opts AllocateOptions) *Allocation {
	return NewRunner(t).Allocate(state, demands, opts)
}

// RunnerPool recycles Runners over one topology across successive risk
// passes, so a long-running granting service does not rebuild Dijkstra/Dinic
// scratch and residual arrays for every admission decision. Allocate fully
// resets a Runner's state per call, so a recycled Runner produces
// byte-identical allocations to a fresh one.
//
// The pool is safe for concurrent Get/Put; individual Runners remain
// single-goroutine. The free list is capped so a one-off burst of workers
// does not pin scratch memory forever.
type RunnerPool struct {
	topo *topology.Topology
	mu   sync.Mutex
	free []*Runner
	// maxIdle bounds the free list; Put drops runners beyond it.
	maxIdle int
}

// NewRunnerPool creates a pool whose Runners allocate over t. maxIdle bounds
// the retained free list (<=0 means a default of 16).
func NewRunnerPool(t *topology.Topology, maxIdle int) *RunnerPool {
	if maxIdle <= 0 {
		maxIdle = 16
	}
	return &RunnerPool{topo: t, maxIdle: maxIdle}
}

// Topology returns the topology the pool's Runners are bound to. Callers
// sharing a pool across assessments must check it matches the topology they
// are about to assess (a Runner is topology-specific).
func (p *RunnerPool) Topology() *topology.Topology { return p.topo }

// Get returns a free Runner or creates one.
func (p *RunnerPool) Get() *Runner {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return r
	}
	p.mu.Unlock()
	return NewRunner(p.topo)
}

// Put returns a Runner to the pool. Only Runners obtained from Get (or built
// over the pool's topology) may be returned.
func (p *RunnerPool) Put(r *Runner) {
	if r == nil || r.topo != p.topo {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.maxIdle {
		p.free = append(p.free, r)
	}
	p.mu.Unlock()
}

// Idle reports the current free-list size (for tests and stats).
func (p *RunnerPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
