package faults

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"entitlement/internal/kvstore"
	"entitlement/internal/wire"
)

func TestInjectorOutageWindow(t *testing.T) {
	clock := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	inj := NewInjector(1, now)
	inj.AddOutage(clock.Add(10*time.Second), clock.Add(20*time.Second))

	if err := inj.Fail("op"); err != nil {
		t.Fatalf("failure before outage: %v", err)
	}
	clock = clock.Add(15 * time.Second)
	err := inj.Fail("op")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("no failure inside outage: %v", err)
	}
	if !wire.IsTransient(err) {
		t.Error("injected failure not classified transient")
	}
	clock = clock.Add(10 * time.Second)
	if err := inj.Fail("op"); err != nil {
		t.Fatalf("failure after outage: %v", err)
	}
	if inj.Injected() != 1 {
		t.Errorf("injected count = %d, want 1", inj.Injected())
	}
}

func TestInjectorDeterministicProbability(t *testing.T) {
	run := func() []bool {
		inj := NewInjector(42, func() time.Time { return time.Time{} })
		inj.SetFailProb(0.3)
		out := make([]bool, 50)
		for i := range out {
			out[i] = inj.Fail("op") != nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("fail count %d/50 not probabilistic", fails)
	}
}

func TestFlakyRatesPassesThrough(t *testing.T) {
	inj := NewInjector(1, func() time.Time { return time.Time{} })
	f := &FlakyRates{Inner: kvstore.New(), Inj: inj}
	if err := f.Put("k", 3, 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := f.Get("k")
	if err != nil || !ok || v != 3 {
		t.Fatalf("get = %v %v %v", v, ok, err)
	}
	inj.SetFailProb(1)
	if err := f.Put("k", 4, 0); !errors.Is(err, ErrInjected) {
		t.Errorf("put not failed: %v", err)
	}
	if _, err := f.SumPrefix("k"); !errors.Is(err, ErrInjected) {
		t.Errorf("sum not failed: %v", err)
	}
}

// echoBackend serves the wire protocol, echoing the payload.
func echoBackend(t *testing.T) *wire.Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(l, func(method string, payload json.RawMessage) (interface{}, error) {
		var s string
		if payload != nil {
			if err := json.Unmarshal(payload, &s); err != nil {
				return nil, err
			}
		}
		return s, nil
	})
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestProxyPassAndBlackhole(t *testing.T) {
	srv := echoBackend(t)
	p, err := NewProxy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := wire.DialOpts(p.Addr(), wire.ClientOptions{
		CallTimeout: 200 * time.Millisecond,
		MinBackoff:  time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var s string
	if err := c.Call("echo", "hi", &s); err != nil || s != "hi" {
		t.Fatalf("through proxy: %q %v", s, err)
	}

	// Black-hole new connections and cut the live one: the next call must
	// fail within its deadline, not hang.
	p.SetMode(Blackhole)
	p.CutConnections()
	start := time.Now()
	deadlineErr := error(nil)
	for i := 0; i < 20; i++ {
		if err := c.Call("echo", "void", &s); err != nil {
			deadlineErr = err
			if !wire.IsTransient(err) {
				t.Fatalf("blackhole error not transient: %v", err)
			}
		}
		if time.Since(start) > 2*time.Second {
			break
		}
	}
	if deadlineErr == nil {
		t.Fatal("calls into blackhole succeeded")
	}

	// Heal: calls succeed again once the client re-dials.
	p.SetMode(Pass)
	p.CutConnections()
	healed := false
	for i := 0; i < 50 && !healed; i++ {
		if err := c.Call("echo", "back", &s); err == nil && s == "back" {
			healed = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !healed {
		t.Fatal("client never recovered through healed proxy")
	}
}

func TestProxyReset(t *testing.T) {
	srv := echoBackend(t)
	p, err := NewProxy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetMode(Reset)
	c := wire.Connect(p.Addr(), wire.ClientOptions{
		CallTimeout: 200 * time.Millisecond,
		MinBackoff:  time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	defer c.Close()
	var s string
	failed := false
	for i := 0; i < 20 && !failed; i++ {
		if err := c.Call("echo", "x", &s); err != nil {
			failed = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !failed {
		t.Fatal("reset-mode proxy served a call")
	}
}

func TestProxyDelay(t *testing.T) {
	srv := echoBackend(t)
	p, err := NewProxy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(50 * time.Millisecond)
	c, err := wire.DialOpts(p.Addr(), wire.ClientOptions{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var s string
	start := time.Now()
	if err := c.Call("echo", "slow", &s); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Errorf("delayed call took %v, want ≥ ~100ms (50ms each way)", d)
	}
}
