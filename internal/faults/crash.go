// Crash and torn-write injection for durability testing. A process that
// dies mid-write leaves its journal with a torn tail: a partial record,
// a record whose checksum no longer matches, or garbage past the last
// durable byte. These helpers manufacture exactly those states on real
// files so recovery code can be exercised without actually killing the
// process (SIGKILL-based coverage lives in the integration tests).
package faults

import (
	"fmt"
	"io"
	"math/rand"
	"os"
)

// TornWriter wraps a writer and stops persisting after Budget bytes,
// while still reporting full success to the caller — the way a kernel
// page cache acknowledges writes the disk never saw before a crash.
// Writes after the budget is exhausted are silently dropped.
type TornWriter struct {
	W      io.Writer
	Budget int64
}

// Write persists at most the remaining budget and lies about the rest.
func (t *TornWriter) Write(p []byte) (int, error) {
	if t.Budget <= 0 {
		return len(p), nil
	}
	keep := int64(len(p))
	if keep > t.Budget {
		keep = t.Budget
	}
	n, err := t.W.Write(p[:keep])
	t.Budget -= int64(n)
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// TearFile truncates path to keep bytes, emulating a crash where only a
// prefix of the file reached the disk. keep larger than the file is a
// no-op; negative keep is an error.
func TearFile(path string, keep int64) error {
	if keep < 0 {
		return fmt.Errorf("faults: negative tear offset %d", keep)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if keep >= fi.Size() {
		return nil
	}
	return os.Truncate(path, keep)
}

// FlipBit flips one bit at byte offset off in path, emulating media
// corruption that a checksummed reader must detect and stop at.
func FlipBit(path string, off int64, bit uint) error {
	if bit > 7 {
		return fmt.Errorf("faults: bit index %d out of range", bit)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << bit
	_, err = f.WriteAt(b[:], off)
	return err
}

// CrashTail damages the tail of path like a crash mid-write would: it
// either tears off up to maxBytes from the end, flips a bit inside the
// final maxBytes window, or appends up to maxBytes of random garbage
// (a preallocated region the writer never finished). The choice and the
// amounts are drawn from rng so property tests replay deterministically.
// It returns a description of what it did, for test-failure logs.
func CrashTail(path string, rng *rand.Rand, maxBytes int64) (string, error) {
	if maxBytes <= 0 {
		maxBytes = 64
	}
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	size := fi.Size()
	switch mode := rng.Intn(3); {
	case mode == 0 && size > 0:
		cut := 1 + rng.Int63n(maxBytes)
		if cut > size {
			cut = size
		}
		if err := os.Truncate(path, size-cut); err != nil {
			return "", err
		}
		return fmt.Sprintf("tear %d of %d bytes", cut, size), nil
	case mode == 1 && size > 0:
		window := maxBytes
		if window > size {
			window = size
		}
		off := size - 1 - rng.Int63n(window)
		bit := uint(rng.Intn(8))
		if err := FlipBit(path, off, bit); err != nil {
			return "", err
		}
		return fmt.Sprintf("flip bit %d at offset %d of %d", bit, off, size), nil
	default:
		junk := make([]byte, 1+rng.Int63n(maxBytes))
		rng.Read(junk)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return "", err
		}
		if _, err := f.Write(junk); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		return fmt.Sprintf("append %d garbage bytes after %d", len(junk), size), nil
	}
}
