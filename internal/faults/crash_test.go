package faults

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestTornWriterStopsPersisting(t *testing.T) {
	var sink bytes.Buffer
	w := &TornWriter{W: &sink, Budget: 5}
	n, err := w.Write([]byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("Write = %d, %v; want 11, nil", n, err)
	}
	n, err = w.Write([]byte("more"))
	if err != nil || n != 4 {
		t.Fatalf("second Write = %d, %v; want 4, nil", n, err)
	}
	if got := sink.String(); got != "hello" {
		t.Fatalf("persisted %q, want %q", got, "hello")
	}
}

func TestTearFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFile(path, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "0123" {
		t.Fatalf("after tear: %q", got)
	}
	// keep past EOF is a no-op; negative keep is rejected.
	if err := TearFile(path, 100); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "0123" {
		t.Fatalf("tear past EOF changed file: %q", got)
	}
	if err := TearFile(path, -1); err == nil {
		t.Fatal("negative keep accepted")
	}
}

func TestFlipBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{0x00, 0xFF}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 1, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if got[0] != 0x08 || got[1] != 0xFE {
		t.Fatalf("after flips: %#v", got)
	}
	if err := FlipBit(path, 0, 8); err == nil {
		t.Fatal("bit index 8 accepted")
	}
}

func TestCrashTailAlwaysDamagesOrAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := make([]byte, 256)
	rng.Read(orig)
	for i := 0; i < 50; i++ {
		path := filepath.Join(t.TempDir(), "wal")
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		desc, err := CrashTail(path, rng, 64)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("run %d (%s): %v", i, desc, err)
		}
		if bytes.Equal(got, orig) {
			t.Fatalf("run %d (%s): file unchanged", i, desc)
		}
		// The prefix before any damage window must survive intact.
		keep := len(got)
		if keep > len(orig) {
			keep = len(orig)
		}
		if keep > 64 {
			if !bytes.Equal(got[:keep-64], orig[:keep-64]) {
				t.Fatalf("run %d (%s): damage outside tail window", i, desc)
			}
		}
	}
}
