package faults

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects how the proxy treats connections accepted from now on.
// Existing connections keep the behavior they were accepted with; use
// CutConnections to force clients back through the accept path.
type Mode int32

// Proxy modes.
const (
	// Pass forwards bytes both ways (the healthy network).
	Pass Mode = iota
	// Blackhole accepts connections and reads their bytes but never
	// forwards or answers — the classic stalled peer that only per-call
	// deadlines can escape.
	Blackhole
	// Reset closes every accepted connection immediately, the behavior of
	// a crashed server whose port is still bound.
	Reset
)

// Proxy is a chaos TCP proxy in front of one backend. It listens on its
// own port and, per the current Mode, forwards, black-holes, or resets
// connections, optionally delaying forwarded bytes. All knobs are safe to
// flip while connections are live.
type Proxy struct {
	target string
	l      net.Listener
	mode   atomic.Int32
	delay  atomic.Int64 // per-chunk forwarding delay, ns

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on 127.0.0.1 (ephemeral port) forwarding to
// target.
func NewProxy(target string) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, l: l, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// SetMode switches the treatment of newly accepted connections.
func (p *Proxy) SetMode(m Mode) { p.mode.Store(int32(m)) }

// SetDelay adds d of latency to every forwarded chunk in each direction.
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// CutConnections closes every live connection (clients see a reset/EOF
// mid-stream). Combined with SetMode this simulates a sharp outage:
// SetMode(Blackhole) + CutConnections() forces every client to reconnect
// into the black hole.
func (p *Proxy) CutConnections() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the proxy and waits for its goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.l.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// track registers conn; reports false when the proxy is closing.
func (p *Proxy) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		conn.Close()
		return false
	}
	p.conns[conn] = struct{}{}
	return true
}

func (p *Proxy) untrack(conn net.Conn) {
	conn.Close()
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.l.Accept()
		if err != nil {
			return
		}
		if !p.track(conn) {
			return
		}
		p.wg.Add(1)
		go p.handle(conn)
	}
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)
	switch Mode(p.mode.Load()) {
	case Reset:
		return // deferred close resets the connection
	case Blackhole:
		// Swallow whatever the client sends; never answer. The client's
		// writes succeed into buffers and its read blocks until its own
		// deadline fires or the hole is cut.
		io.Copy(io.Discard, client)
		return
	}
	backend, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)
	done := make(chan struct{}, 2)
	pump := func(dst, src net.Conn) {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if d := time.Duration(p.delay.Load()); d > 0 {
					time.Sleep(d)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		pump(backend, client)
	}()
	pump(client, backend)
	// Either direction dying kills both conns so the other pump unblocks.
	client.Close()
	backend.Close()
	<-done
	<-done
}
