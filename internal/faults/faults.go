// Package faults is the fault-injection harness for the run-time
// enforcement stack. It provides deterministic flaky wrappers for the rate
// store and contract database — driven by a seeded RNG and an injected
// clock, so chaos tests replay identically — plus a TCP proxy (proxy.go)
// that black-holes, resets, and delays real connections.
//
// The harness exists to prove the fleet's failure model (DESIGN.md):
// transient store outages must never wedge an agent, agents must stay
// fail-static within their staleness budget and fail open beyond it, and
// the fleet must reconverge once an outage lifts.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/kvstore"
	"entitlement/internal/topology"
	"entitlement/internal/wire"
)

// ErrInjected is the root of every injected failure; detect injection with
// errors.Is. Injected failures are wrapped as wire.TransientError so the
// production error classification treats them like real outages.
var ErrInjected = errors.New("faults: injected failure")

// Injector decides, deterministically, whether each operation fails. A
// failure fires when the injected clock is inside a scheduled outage
// window, or when the seeded RNG draws below the failure probability. One
// Injector can back several wrappers so a "site-wide" outage hits every
// dependency at once; it is safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	now      func() time.Time
	failProb float64
	outages  []window
	injected int
}

type window struct{ from, to time.Time }

// NewInjector builds an injector with the given RNG seed and clock; a nil
// clock uses time.Now.
func NewInjector(seed int64, now func() time.Time) *Injector {
	if now == nil {
		now = time.Now
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), now: now}
}

// SetFailProb makes each operation fail independently with probability p.
func (i *Injector) SetFailProb(p float64) {
	i.mu.Lock()
	i.failProb = p
	i.mu.Unlock()
}

// AddOutage schedules a hard outage: every operation with from ≤ now < to
// fails.
func (i *Injector) AddOutage(from, to time.Time) {
	i.mu.Lock()
	i.outages = append(i.outages, window{from, to})
	i.mu.Unlock()
}

// ClearOutages lifts every scheduled outage.
func (i *Injector) ClearOutages() {
	i.mu.Lock()
	i.outages = nil
	i.mu.Unlock()
}

// Injected returns how many failures have been injected so far.
func (i *Injector) Injected() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}

// Fail returns the injected failure for one operation, or nil to let it
// through.
func (i *Injector) Fail(op string) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	now := i.now()
	inOutage := false
	for _, w := range i.outages {
		if !now.Before(w.from) && now.Before(w.to) {
			inOutage = true
			break
		}
	}
	if !inOutage && (i.failProb <= 0 || i.rng.Float64() >= i.failProb) {
		return nil
	}
	i.injected++
	return &wire.TransientError{Err: fmt.Errorf("%w: %s", ErrInjected, op)}
}

// FlakyRates wraps a kvstore.RateStore with injected failures.
type FlakyRates struct {
	Inner kvstore.RateStore
	Inj   *Injector
}

// Put implements kvstore.RateStore.
func (f *FlakyRates) Put(key string, value float64, ttl time.Duration) error {
	if err := f.Inj.Fail("kvstore put"); err != nil {
		return err
	}
	return f.Inner.Put(key, value, ttl)
}

// Get implements kvstore.RateStore.
func (f *FlakyRates) Get(key string) (float64, bool, error) {
	if err := f.Inj.Fail("kvstore get"); err != nil {
		return 0, false, err
	}
	return f.Inner.Get(key)
}

// SumPrefix implements kvstore.RateStore.
func (f *FlakyRates) SumPrefix(prefix string) (float64, error) {
	if err := f.Inj.Fail("kvstore sum"); err != nil {
		return 0, err
	}
	return f.Inner.SumPrefix(prefix)
}

// Delete implements kvstore.RateStore.
func (f *FlakyRates) Delete(key string) error {
	if err := f.Inj.Fail("kvstore delete"); err != nil {
		return err
	}
	return f.Inner.Delete(key)
}

// FlakyDB wraps a contractdb.Database with injected failures.
type FlakyDB struct {
	Inner contractdb.Database
	Inj   *Injector
}

// EntitledRate implements contractdb.Database.
func (f *FlakyDB) EntitledRate(npg contract.NPG, class contract.Class, region topology.Region, dir contract.Direction, at time.Time) (float64, bool, error) {
	if err := f.Inj.Fail("contractdb query"); err != nil {
		return 0, false, err
	}
	return f.Inner.EntitledRate(npg, class, region, dir, at)
}

var (
	_ kvstore.RateStore   = (*FlakyRates)(nil)
	_ contractdb.Database = (*FlakyDB)(nil)
)
