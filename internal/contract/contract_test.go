package contract

import (
	"testing"
	"testing/quick"
	"time"
)

var (
	t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 = time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
)

func validEntitlement() Entitlement {
	return Entitlement{
		NPG: "Ads", Class: ClassA, Region: "A", Direction: Egress,
		Rate: 1e12, Start: t0, End: t1,
	}
}

func TestClassOrderingAndNames(t *testing.T) {
	classes := Classes()
	if len(classes) != 8 {
		t.Fatalf("Classes() = %d entries, want 8", len(classes))
	}
	wantNames := []string{"c1_low", "c1_high", "c2_low", "c2_high", "c3_low", "c3_high", "c4_low", "c4_high"}
	for i, c := range classes {
		if c.String() != wantNames[i] {
			t.Errorf("class %d = %q, want %q", i, c, wantNames[i])
		}
		if !c.Valid() {
			t.Errorf("class %v invalid", c)
		}
	}
	// Priority ordering: c1_low most premium.
	if classes[0] != C1Low || classes[len(classes)-1] != C4High {
		t.Error("priority order wrong")
	}
}

func TestClassTier(t *testing.T) {
	cases := map[Class]int{C1Low: 1, C1High: 1, C2Low: 2, C4High: 4}
	for c, want := range cases {
		if got := c.Tier(); got != want {
			t.Errorf("%v.Tier() = %d, want %d", c, got, want)
		}
	}
}

func TestClassInvalidString(t *testing.T) {
	if got := Class(99).String(); got != "Class(99)" {
		t.Errorf("invalid class string = %q", got)
	}
	if Class(99).Valid() {
		t.Error("Class(99) reported valid")
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("c9_low"); err == nil {
		t.Error("bogus class parsed")
	}
}

func TestDirectionString(t *testing.T) {
	if Egress.String() != "egress" || Ingress.String() != "ingress" {
		t.Error("Direction strings wrong")
	}
}

func TestSLOValidate(t *testing.T) {
	for _, s := range []SLO{0.9998, 1, 0.5} {
		if err := s.Validate(); err != nil {
			t.Errorf("SLO %v rejected: %v", float64(s), err)
		}
	}
	for _, s := range []SLO{0, -0.1, 1.1} {
		if err := s.Validate(); err == nil {
			t.Errorf("SLO %v accepted", float64(s))
		}
	}
}

func TestEntitlementValidate(t *testing.T) {
	e := validEntitlement()
	if err := e.Validate(); err != nil {
		t.Fatalf("valid entitlement rejected: %v", err)
	}
	broken := []func(*Entitlement){
		func(e *Entitlement) { e.NPG = "" },
		func(e *Entitlement) { e.Class = Class(88) },
		func(e *Entitlement) { e.Region = "" },
		func(e *Entitlement) { e.Rate = -1 },
		func(e *Entitlement) { e.End = e.Start },
	}
	for i, breakIt := range broken {
		e := validEntitlement()
		breakIt(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEntitlementActiveAt(t *testing.T) {
	e := validEntitlement()
	if !e.ActiveAt(t0) {
		t.Error("inclusive start not active")
	}
	if e.ActiveAt(t1) {
		t.Error("exclusive end active")
	}
	if !e.ActiveAt(t0.Add(24 * time.Hour)) {
		t.Error("middle not active")
	}
	if e.ActiveAt(t0.Add(-time.Second)) {
		t.Error("before start active")
	}
}

func TestEntitlementKey(t *testing.T) {
	e := validEntitlement()
	if got := e.Key(); got != "Ads/c2_low/A/egress" {
		t.Errorf("Key = %q", got)
	}
}

func TestContractValidate(t *testing.T) {
	c := Contract{NPG: "Ads", SLO: 0.9998, Entitlements: []Entitlement{validEntitlement()}}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid contract rejected: %v", err)
	}
	// Entitlement for a different NPG.
	other := validEntitlement()
	other.NPG = "Logging"
	bad := Contract{NPG: "Ads", SLO: 0.9998, Entitlements: []Entitlement{other}}
	if err := bad.Validate(); err == nil {
		t.Error("cross-NPG entitlement accepted")
	}
	noNPG := Contract{NPG: "", SLO: 0.5}
	if err := noNPG.Validate(); err == nil {
		t.Error("missing NPG accepted")
	}
	badSLO := Contract{NPG: "X", SLO: 0}
	if err := badSLO.Validate(); err == nil {
		t.Error("invalid SLO accepted")
	}
}

func TestContractEntitledRate(t *testing.T) {
	e1 := validEntitlement()
	e2 := validEntitlement()
	e2.Rate = 5e11
	c := Contract{NPG: "Ads", SLO: 0.9998, Entitlements: []Entitlement{e1, e2}}
	mid := t0.Add(time.Hour)
	if got := c.EntitledRate(ClassA, "A", Egress, mid); got != 1.5e12 {
		t.Errorf("EntitledRate = %v, want 1.5e12 (summed)", got)
	}
	if got := c.EntitledRate(ClassA, "B", Egress, mid); got != 0 {
		t.Errorf("wrong region rate = %v", got)
	}
	if got := c.EntitledRate(ClassA, "A", Ingress, mid); got != 0 {
		t.Errorf("wrong direction rate = %v", got)
	}
	if got := c.EntitledRate(ClassA, "A", Egress, t1.Add(time.Hour)); got != 0 {
		t.Errorf("expired rate = %v", got)
	}
}

func TestAccountability(t *testing.T) {
	// Above entitlement → service team, regardless of admission.
	if got := Accountability(100, 150, false); got != ServiceTeam {
		t.Errorf("over-rate = %v, want ServiceTeam", got)
	}
	if got := Accountability(100, 150, true); got != ServiceTeam {
		t.Errorf("over-rate admitted = %v, want ServiceTeam", got)
	}
	// Within entitlement, not admitted → network team.
	if got := Accountability(100, 80, false); got != NetworkTeam {
		t.Errorf("under-rate dropped = %v, want NetworkTeam", got)
	}
	// Within entitlement, admitted → no breach.
	if got := Accountability(100, 80, true); got != NoBreach {
		t.Errorf("healthy = %v, want NoBreach", got)
	}
}

func TestPartyString(t *testing.T) {
	if NetworkTeam.String() != "network-team" || ServiceTeam.String() != "service-team" || NoBreach.String() != "no-breach" {
		t.Error("Party strings wrong")
	}
}

// Property: accountability is total and consistent — exactly one party per
// (entitled, actual, admitted) combination, and the service team is blamed
// iff actual > entitled.
func TestAccountabilityProperty(t *testing.T) {
	f := func(entitled, actual uint16, admitted bool) bool {
		e, a := float64(entitled), float64(actual)
		p := Accountability(e, a, admitted)
		if a > e {
			return p == ServiceTeam
		}
		if !admitted {
			return p == NetworkTeam
		}
		return p == NoBreach
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUptimeTracker(t *testing.T) {
	var u UptimeTracker
	if u.Availability() != 1 {
		t.Errorf("empty availability = %v, want 1", u.Availability())
	}
	if !u.Met(0.9999) {
		t.Error("empty tracker should meet any SLO")
	}
	for i := 0; i < 9999; i++ {
		u.Record(true)
	}
	u.Record(false)
	if u.Intervals() != 10000 {
		t.Errorf("Intervals = %d", u.Intervals())
	}
	if got := u.Availability(); got != 0.9999 {
		t.Errorf("Availability = %v, want 0.9999", got)
	}
	if !u.Met(0.9999) {
		t.Error("SLO 0.9999 should be met at exactly 0.9999")
	}
	if u.Met(0.99995) {
		t.Error("SLO 0.99995 should not be met")
	}
}
