// Package contract defines the vocabulary of the entitlement framework: the
// Network Product Group (NPG) identity, QoS classes, and the entitlement
// contract itself — the agreement between the network team and each service
// team described in §3.2:
//
//	An entitlement contract specifies (a) a network SLO target, represented
//	by network availability, e.g. 0.9998; and (b) a list of bandwidth
//	entitlements <NPG, QoS class, region, entitled rate, enforcement period>.
//
// It also encodes the accountability demarcation the contract exists to
// provide: within entitlement + network failure → network team; above
// entitlement → service team.
package contract

import (
	"errors"
	"fmt"
	"time"

	"entitlement/internal/topology"
)

// NPG identifies a Network Product Group (a service team); the paper uses
// "NPG" and "service" interchangeably.
type NPG string

// Class is a QoS priority bucket. The paper's backbone carries four tiers
// c1..c4 in decreasing priority, and the approval algorithm walks subclasses
// from the most premium (c1_low) to the least (c4_high) — Algorithm 2.
type Class int

// QoS classes in strict decreasing priority order.
const (
	C1Low Class = iota
	C1High
	C2Low
	C2High
	C3Low
	C3High
	C4Low
	C4High
	numClasses
)

// ClassA and ClassB are the figure-level aliases used in §2's traffic
// distribution plots ("a high QoS class" / "a low QoS class").
const (
	ClassA = C2Low
	ClassB = C3Low
)

// Classes returns every class in priority order (most premium first).
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Tier returns the class tier 1..4 (c1..c4).
func (c Class) Tier() int { return int(c)/2 + 1 }

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return c >= C1Low && c < numClasses }

// String returns the canonical name, e.g. "c1_low".
func (c Class) String() string {
	if !c.Valid() {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	sub := "low"
	if int(c)%2 == 1 {
		sub = "high"
	}
	return fmt.Sprintf("c%d_%s", c.Tier(), sub)
}

// ParseClass parses the canonical class name.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("contract: unknown class %q", s)
}

// Direction distinguishes egress (region → rest of WAN) from ingress hoses.
type Direction int

// Hose directions.
const (
	Egress Direction = iota
	Ingress
)

// String returns "egress" or "ingress".
func (d Direction) String() string {
	if d == Ingress {
		return "ingress"
	}
	return "egress"
}

// SLO is an availability target, e.g. 0.9998 — the fraction of time all of
// an NPG's in-entitlement traffic must be admitted by the network.
type SLO float64

// Validate checks the SLO lies in (0, 1].
func (s SLO) Validate() error {
	if s <= 0 || s > 1 {
		return fmt.Errorf("contract: SLO %v out of (0,1]", float64(s))
	}
	return nil
}

// Entitlement is one row of a contract: the five-field tuple of §3.2. The
// first three fields delineate a set of flows; Rate and the period set the
// maximum supported bits/s for those flows during the period.
type Entitlement struct {
	NPG       NPG
	Class     Class
	Region    topology.Region
	Direction Direction
	Rate      float64 // bits per second
	Start     time.Time
	End       time.Time
}

// Validate checks field-level invariants.
func (e *Entitlement) Validate() error {
	if e.NPG == "" {
		return errors.New("contract: entitlement missing NPG")
	}
	if !e.Class.Valid() {
		return fmt.Errorf("contract: entitlement has invalid class %d", int(e.Class))
	}
	if e.Region == "" {
		return errors.New("contract: entitlement missing region")
	}
	if e.Rate < 0 {
		return fmt.Errorf("contract: negative entitled rate %v", e.Rate)
	}
	if !e.End.After(e.Start) {
		return fmt.Errorf("contract: enforcement period [%v, %v) is empty", e.Start, e.End)
	}
	return nil
}

// ActiveAt reports whether the enforcement period covers t.
func (e *Entitlement) ActiveAt(t time.Time) bool {
	return !t.Before(e.Start) && t.Before(e.End)
}

// Key returns the flow-set identity (NPG, class, region, direction) used to
// index entitlements in the database and at the agents.
func (e *Entitlement) Key() string {
	return fmt.Sprintf("%s/%s/%s/%s", e.NPG, e.Class, e.Region, e.Direction)
}

// Contract is the agreement between the network team and one NPG.
type Contract struct {
	NPG          NPG
	SLO          SLO
	Entitlements []Entitlement
	// Approved marks contracts that passed the §4.3 approval pipeline and
	// are therefore enforced (and SLO-guaranteed).
	Approved bool
}

// Validate checks the contract and all of its entitlements.
func (c *Contract) Validate() error {
	if c.NPG == "" {
		return errors.New("contract: missing NPG")
	}
	if err := c.SLO.Validate(); err != nil {
		return err
	}
	for i := range c.Entitlements {
		e := &c.Entitlements[i]
		if err := e.Validate(); err != nil {
			return fmt.Errorf("entitlement %d: %w", i, err)
		}
		if e.NPG != c.NPG {
			return fmt.Errorf("contract: entitlement %d belongs to %q, contract is for %q", i, e.NPG, c.NPG)
		}
	}
	return nil
}

// EntitledRate returns the contract's rate for the flow set, or 0 when none
// is active at t.
func (c *Contract) EntitledRate(class Class, region topology.Region, dir Direction, t time.Time) float64 {
	total := 0.0
	for i := range c.Entitlements {
		e := &c.Entitlements[i]
		if e.Class == class && e.Region == region && e.Direction == dir && e.ActiveAt(t) {
			total += e.Rate
		}
	}
	return total
}

// Party identifies who is accountable for a disruption under the contract's
// demarcation rule (§3.2).
type Party int

// Accountability outcomes.
const (
	// NoBreach: traffic within entitlement and fully admitted.
	NoBreach Party = iota
	// NetworkTeam: the NPG stayed within its entitled rate but the network
	// failed to support it.
	NetworkTeam
	// ServiceTeam: the NPG generated traffic above its entitled rate.
	ServiceTeam
)

// String names the accountable party.
func (p Party) String() string {
	switch p {
	case NetworkTeam:
		return "network-team"
	case ServiceTeam:
		return "service-team"
	default:
		return "no-breach"
	}
}

// Accountability applies the demarcation rule: if the NPG generated traffic
// within the entitled rate and the network could not support it, the network
// team is accountable; traffic above the entitled rate makes the NPG
// accountable; otherwise there is no breach.
func Accountability(entitledRate, actualRate float64, admitted bool) Party {
	if actualRate > entitledRate {
		return ServiceTeam
	}
	if !admitted {
		return NetworkTeam
	}
	return NoBreach
}

// UptimeTracker measures achieved availability against a contract's SLO:
// "the availability SLO measures the uptime percentage per class of
// service, where uptime requires all traffic in that class of service to be
// admitted in the network" (§1). Record one observation per measurement
// interval.
type UptimeTracker struct {
	total int
	up    int
}

// Record notes whether all in-entitlement traffic was admitted during the
// interval.
func (u *UptimeTracker) Record(admitted bool) {
	u.total++
	if admitted {
		u.up++
	}
}

// Intervals returns the number of recorded intervals.
func (u *UptimeTracker) Intervals() int { return u.total }

// Availability returns the measured uptime fraction (1 before any record).
func (u *UptimeTracker) Availability() float64 {
	if u.total == 0 {
		return 1
	}
	return float64(u.up) / float64(u.total)
}

// Met reports whether the measured availability satisfies the SLO.
func (u *UptimeTracker) Met(slo SLO) bool {
	return u.Availability() >= float64(slo)
}
