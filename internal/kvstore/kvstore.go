// Package kvstore is the reproduction of the distributed key-value store
// the enforcement agents publish their flow rates through: "each agent
// publishes flow rate information (bits/sec) periodically using Meta's
// internal distributed key-value store. These rates are aggregated remotely
// across the entire service and read by the agent periodically" (§5.1).
//
// The store keeps TTL'd float64 entries and supports prefix aggregation
// (summing every host's published rate for one service). It can be used
// in-process (Store) or over TCP (Server/Client via the wire protocol); both
// satisfy RateStore, so agents are oblivious to the deployment shape.
package kvstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"entitlement/internal/obs/trace"
	"entitlement/internal/wire"
	schemav1 "entitlement/schema/v1"

	"net"
)

// RateStore is the interface enforcement agents depend on.
type RateStore interface {
	// Put stores value under key with the given time-to-live.
	Put(key string, value float64, ttl time.Duration) error
	// Get returns the value and whether it is present (and unexpired).
	Get(key string) (float64, bool, error)
	// SumPrefix sums all live values whose keys start with prefix — the
	// remote aggregation of per-host rates into a service TotalRate.
	SumPrefix(prefix string) (float64, error)
	// Delete removes a key.
	Delete(key string) error
}

// entry is one stored value. It carries its own map key so Put can intern:
// a repeat publish looks the old entry up first and reuses its stored key,
// which keeps the server's put path allocation-free even when the incoming
// key aliases a reused frame buffer (map lookups with string(bytes)-style
// keys don't allocate; only genuinely new keys are cloned).
type entry struct {
	key     string
	value   float64
	expires time.Time // zero = never
}

// Store is the in-memory implementation. The zero value is not usable; call
// New. Time is injectable so simulations control expiry deterministically.
type Store struct {
	mu   sync.RWMutex
	data map[string]entry
	now  func() time.Time
}

// New creates an empty store using the real clock.
func New() *Store { return NewWithClock(time.Now) }

// NewWithClock creates a store with an injected clock.
func NewWithClock(now func() time.Time) *Store {
	return &Store{data: make(map[string]entry), now: now}
}

// Put implements RateStore. A non-positive ttl stores the value without
// expiry.
func (s *Store) Put(key string, value float64, ttl time.Duration) error {
	if key == "" {
		return fmt.Errorf("kvstore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := entry{value: value}
	if ttl > 0 {
		e.expires = s.now().Add(ttl)
	}
	// Intern the key (see entry): steady-state republishes hit the lookup
	// and reuse the stored key; only first-time keys are cloned. The clone
	// also protects the map when key aliases a caller-owned buffer.
	if old, ok := s.data[key]; ok {
		e.key = old.key
	} else {
		e.key = strings.Clone(key)
	}
	s.data[e.key] = e
	return nil
}

// Get implements RateStore.
func (s *Store) Get(key string) (float64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[key]
	if !ok || s.expired(e) {
		return 0, false, nil
	}
	return e.value, true, nil
}

// SumPrefix implements RateStore.
func (s *Store) SumPrefix(prefix string) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sum := 0.0
	for k, e := range s.data {
		if strings.HasPrefix(k, prefix) && !s.expired(e) {
			sum += e.value
		}
	}
	return sum, nil
}

// Delete implements RateStore.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	return nil
}

// Keys returns the live keys with the given prefix, sorted. Useful for
// debugging and tests.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k, e := range s.data {
		if strings.HasPrefix(k, prefix) && !s.expired(e) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored entries, including expired ones not yet
// compacted — the footprint a leaky deployment would grow without bound.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Compact removes expired entries; long-running deployments should call it
// periodically.
func (s *Store) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for k, e := range s.data {
		if s.expired(e) {
			delete(s.data, k)
			removed++
		}
	}
	return removed
}

func (s *Store) expired(e entry) bool {
	return !e.expires.IsZero() && s.now().After(e.expires)
}

// --- TCP server/client ----------------------------------------------------

// The message shapes are versioned schema contracts (schema/v1, pinned by
// `make vet-schema`): KVPut, KVKey, KVGetReply, KVSumReply. All four carry
// binary codecs, so on a binary-negotiated connection the publish path
// runs end to end without JSON.

// Arg/reply pools keep the put and aggregate paths allocation-free: passing
// a pooled pointer through wire.Call's interface{} parameters stores the
// pointer without boxing, where a stack-local struct would escape per call.
var (
	putPool = sync.Pool{New: func() interface{} { return new(schemav1.KVPut) }}
	keyPool = sync.Pool{New: func() interface{} { return new(schemav1.KVKey) }}
)

// ServerOptions tune the TCP server.
type ServerOptions struct {
	// CompactEvery sweeps expired entries from the backing store on this
	// period, so rates from dead hosts do not accumulate forever. Zero
	// picks the 1-minute default; negative disables compaction.
	CompactEvery time.Duration
	// Wire passes hardening options (read idle timeout) to the underlying
	// wire server.
	Wire wire.ServerOptions
}

// Server exposes a Store over the wire protocol and keeps it compacted.
type Server struct {
	store    *Store
	srv      *wire.Server
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewServer serves store on l with default options (1-minute compaction).
func NewServer(l net.Listener, store *Store) *Server {
	return NewServerOpts(l, store, ServerOptions{})
}

// NewServerOpts serves store on l with explicit options.
func NewServerOpts(l net.Listener, store *Store, opts ServerOptions) *Server {
	s := &Server{store: store, stop: make(chan struct{})}
	s.srv = wire.NewServerPayload(l, s.handle, opts.Wire)
	every := opts.CompactEvery
	if every == 0 {
		every = time.Minute
	}
	if every > 0 {
		s.wg.Add(1)
		go s.compactLoop(every)
	}
	return s
}

func (s *Server) compactLoop(every time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			removed := s.store.Compact()
			mCompactions.Inc()
			mCompacted.Add(int64(removed))
			mEntries.Set(float64(s.store.Len()))
		case <-s.stop:
			return
		}
	}
}

// Addr returns the server address.
func (s *Server) Addr() string { return s.srv.Addr().String() }

// Close shuts the server down (idempotent).
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handle(tc trace.Context, method string, p wire.Payload) (reply interface{}, err error) {
	mRequests.With(method).Inc()
	defer func() {
		if err != nil {
			mRequestErrors.Inc()
		}
		mEntries.Set(float64(s.store.Len()))
	}()
	switch method {
	case "put":
		// The system's hot path: pooled args (a stack struct would escape
		// through Decode's interface{} parameter) and a nil reply, so a
		// binary-codec publish is handled without a single allocation after
		// warm-up. The decoded Key may alias the connection's frame buffer;
		// Store.Put interns before retaining it.
		a := putPool.Get().(*schemav1.KVPut)
		if err := p.Decode(a); err != nil {
			putPool.Put(a)
			return nil, err
		}
		err := s.store.Put(a.Key, a.Value, time.Duration(a.TTLMs)*time.Millisecond)
		*a = schemav1.KVPut{}
		putPool.Put(a)
		return nil, err
	case "get":
		a := keyPool.Get().(*schemav1.KVKey)
		if err := p.Decode(a); err != nil {
			keyPool.Put(a)
			return nil, err
		}
		v, ok, err := s.store.Get(a.Key)
		*a = schemav1.KVKey{}
		keyPool.Put(a)
		if err != nil {
			return nil, err
		}
		return &schemav1.KVGetReply{Value: v, Found: ok}, nil
	case "sum":
		a := keyPool.Get().(*schemav1.KVKey)
		if err := p.Decode(a); err != nil {
			keyPool.Put(a)
			return nil, err
		}
		sum, err := s.store.SumPrefix(a.Key)
		*a = schemav1.KVKey{}
		keyPool.Put(a)
		if err != nil {
			return nil, err
		}
		return &schemav1.KVSumReply{Sum: sum}, nil
	case "delete":
		a := keyPool.Get().(*schemav1.KVKey)
		if err := p.Decode(a); err != nil {
			keyPool.Put(a)
			return nil, err
		}
		err := s.store.Delete(a.Key)
		*a = schemav1.KVKey{}
		keyPool.Put(a)
		return nil, err
	default:
		return nil, fmt.Errorf("kvstore: unknown method %q", method)
	}
}

// Client is the remote RateStore. It inherits the wire client's failure
// behavior: per-call deadlines, broken-connection detection, and automatic
// re-dial with backoff, so a dead server degrades agents instead of
// wedging them.
type Client struct {
	c *wire.Client
}

// Dial connects to a kvstore server with default wire.ClientOptions.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, wire.ClientOptions{})
}

// DialOpts connects to a kvstore server with explicit failure options.
func DialOpts(addr string, opts wire.ClientOptions) (*Client, error) {
	c, err := wire.DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Connect builds a client without dialing; the connection is established
// lazily (with backoff) on first use, so agents can start before their
// servers do.
func Connect(addr string, opts wire.ClientOptions) *Client {
	return &Client{c: wire.Connect(addr, opts)}
}

// SetTrace forwards a trace ID to the wire client: subsequent request IDs
// carry it, correlating this client's calls with the caller's operation
// (e.g. one enforcement cycle).
func (c *Client) SetTrace(trace string) { c.c.SetTrace(trace) }

// SetSpan forwards a span context to the wire client: subsequent calls
// become wire.call spans in the caller's trace, with the context carried on
// the request frame.
func (c *Client) SetSpan(ctx trace.Context) { c.c.SetSpan(ctx) }

// Put implements RateStore. On a binary-negotiated connection the pooled
// args, the schema-binary codec, and the wire client's frame-buffer reuse
// make the whole publish allocation-free.
func (c *Client) Put(key string, value float64, ttl time.Duration) error {
	a := putPool.Get().(*schemav1.KVPut)
	a.Key, a.Value, a.TTLMs = key, value, ttl.Milliseconds()
	err := c.c.Call("put", a, nil)
	*a = schemav1.KVPut{}
	putPool.Put(a)
	return err
}

// Get implements RateStore.
func (c *Client) Get(key string) (float64, bool, error) {
	a := keyPool.Get().(*schemav1.KVKey)
	a.Key = key
	var r schemav1.KVGetReply
	err := c.c.Call("get", a, &r)
	*a = schemav1.KVKey{}
	keyPool.Put(a)
	if err != nil {
		return 0, false, err
	}
	return r.Value, r.Found, nil
}

// SumPrefix implements RateStore.
func (c *Client) SumPrefix(prefix string) (float64, error) {
	a := keyPool.Get().(*schemav1.KVKey)
	a.Key = prefix
	var r schemav1.KVSumReply
	err := c.c.Call("sum", a, &r)
	*a = schemav1.KVKey{}
	keyPool.Put(a)
	if err != nil {
		return 0, err
	}
	return r.Sum, nil
}

// Delete implements RateStore.
func (c *Client) Delete(key string) error {
	a := keyPool.Get().(*schemav1.KVKey)
	a.Key = key
	err := c.c.Call("delete", a, nil)
	*a = schemav1.KVKey{}
	keyPool.Put(a)
	return err
}

// Close closes the client connection.
func (c *Client) Close() error { return c.c.Close() }

// RateKey builds the canonical key an agent publishes its rate under:
// rates/<npg>/<class>/<region>/<host>. SumPrefix(RatePrefix(...)) then
// aggregates the service.
func RateKey(npg, class, region, host string) string {
	return fmt.Sprintf("rates/%s/%s/%s/%s", npg, class, region, host)
}

// RatePrefix is the aggregation prefix for a (npg, class, region) flow set.
func RatePrefix(npg, class, region string) string {
	return fmt.Sprintf("rates/%s/%s/%s/", npg, class, region)
}

var (
	_ RateStore = (*Store)(nil)
	_ RateStore = (*Client)(nil)
)
