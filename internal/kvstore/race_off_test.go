//go:build !race

package kvstore

// raceEnabled mirrors internal/wire: allocation assertions skip under the
// race detector, whose instrumentation allocates on its own.
const raceEnabled = false
