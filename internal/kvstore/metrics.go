package kvstore

import "entitlement/internal/obs"

// Rate-store server instruments. The entries gauge tracks the backing
// Store's footprint including not-yet-compacted expired entries — the
// number a leaky deployment watches grow; the compaction counters say how
// much the sweeps claw back.
var (
	mRequests      = obs.RegisterCounterVec("entitlement_kvstore_requests_total", "Requests handled by kvstore servers, by method.", "method")
	mRequestErrors = obs.RegisterCounter("entitlement_kvstore_request_errors_total", "kvstore requests that returned an error (bad payload or store failure).")
	mEntries       = obs.RegisterGauge("entitlement_kvstore_entries", "Entries in the kvstore server's backing store, including expired entries not yet compacted.")
	mCompactions   = obs.RegisterCounter("entitlement_kvstore_compactions_total", "Compaction sweeps run by kvstore servers.")
	mCompacted     = obs.RegisterCounter("entitlement_kvstore_compacted_entries_total", "Expired entries removed by compaction sweeps.")
)
