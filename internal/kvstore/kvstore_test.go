package kvstore

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestStorePutGet(t *testing.T) {
	s := New()
	if err := s.Put("a", 1.5, 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || v != 1.5 {
		t.Errorf("Get = %v %v %v", v, ok, err)
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Error("missing key found")
	}
	if err := s.Put("", 1, 0); err == nil {
		t.Error("empty key accepted")
	}
}

func TestStoreTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewWithClock(func() time.Time { return now })
	s.Put("x", 5, 10*time.Second)
	if _, ok, _ := s.Get("x"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(11 * time.Second)
	if _, ok, _ := s.Get("x"); ok {
		t.Error("expired entry still visible")
	}
	// SumPrefix also skips expired entries.
	if sum, _ := s.SumPrefix(""); sum != 0 {
		t.Errorf("expired sum = %v", sum)
	}
}

func TestStoreSumPrefix(t *testing.T) {
	s := New()
	s.Put(RateKey("Ads", "c2_low", "A", "h1"), 10, 0)
	s.Put(RateKey("Ads", "c2_low", "A", "h2"), 20, 0)
	s.Put(RateKey("Ads", "c2_low", "B", "h3"), 40, 0)
	s.Put(RateKey("Logging", "c3_low", "A", "h1"), 80, 0)
	sum, err := s.SumPrefix(RatePrefix("Ads", "c2_low", "A"))
	if err != nil || sum != 30 {
		t.Errorf("sum = %v, %v, want 30", sum, err)
	}
	all, _ := s.SumPrefix("rates/")
	if all != 150 {
		t.Errorf("all = %v, want 150", all)
	}
}

func TestStoreDeleteAndKeys(t *testing.T) {
	s := New()
	s.Put("p/a", 1, 0)
	s.Put("p/b", 2, 0)
	s.Put("q/c", 3, 0)
	keys := s.Keys("p/")
	if len(keys) != 2 || keys[0] != "p/a" || keys[1] != "p/b" {
		t.Errorf("Keys = %v", keys)
	}
	s.Delete("p/a")
	if _, ok, _ := s.Get("p/a"); ok {
		t.Error("deleted key found")
	}
}

func TestStoreCompact(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewWithClock(func() time.Time { return now })
	s.Put("a", 1, time.Second)
	s.Put("b", 2, 0)
	now = now.Add(2 * time.Second)
	if removed := s.Compact(); removed != 1 {
		t.Errorf("Compact removed %d, want 1", removed)
	}
	if _, ok, _ := s.Get("b"); !ok {
		t.Error("persistent entry compacted")
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := RateKey("svc", "c2_low", "A", string(rune('a'+i)))
			for j := 0; j < 100; j++ {
				s.Put(key, float64(j), 0)
				s.Get(key)
				s.SumPrefix("rates/")
			}
		}(i)
	}
	wg.Wait()
	sum, _ := s.SumPrefix(RatePrefix("svc", "c2_low", "A"))
	if sum != 8*99 {
		t.Errorf("final sum = %v, want %v", sum, 8*99)
	}
}

func TestRateKeyFormat(t *testing.T) {
	k := RateKey("Ads", "c2_low", "A", "host-1")
	if k != "rates/Ads/c2_low/A/host-1" {
		t.Errorf("RateKey = %q", k)
	}
	p := RatePrefix("Ads", "c2_low", "A")
	if p != "rates/Ads/c2_low/A/" {
		t.Errorf("RatePrefix = %q", p)
	}
	if len(k) <= len(p) || k[:len(p)] != p {
		t.Error("RateKey not under RatePrefix")
	}
}

func startServer(t *testing.T) (*Server, *Store) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := New()
	srv := NewServer(l, store)
	t.Cleanup(func() { srv.Close() })
	return srv, store
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, _ := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("rates/S/c2_low/A/h1", 100, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("rates/S/c2_low/A/h2", 50, time.Minute); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("rates/S/c2_low/A/h1")
	if err != nil || !ok || v != 100 {
		t.Errorf("Get = %v %v %v", v, ok, err)
	}
	sum, err := c.SumPrefix("rates/S/c2_low/A/")
	if err != nil || sum != 150 {
		t.Errorf("SumPrefix = %v, %v", sum, err)
	}
	if err := c.Delete("rates/S/c2_low/A/h1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("rates/S/c2_low/A/h1"); ok {
		t.Error("deleted key visible")
	}
}

func TestClientServerErrors(t *testing.T) {
	srv, _ := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("", 1, 0); err == nil {
		t.Error("remote empty-key put accepted")
	}
}

func TestMultipleAgentsPublishing(t *testing.T) {
	// Emulates the §5.1 pattern: many hosts publish, each reads the
	// aggregate service rate.
	srv, _ := startServer(t)
	const hosts = 10
	var wg sync.WaitGroup
	for i := 0; i < hosts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			key := RateKey("Cold", "c4_low", "A", string(rune('a'+i)))
			if err := c.Put(key, 10, time.Minute); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sum, err := c.SumPrefix(RatePrefix("Cold", "c4_low", "A"))
	if err != nil || sum != 100 {
		t.Errorf("aggregate = %v, %v, want 100", sum, err)
	}
}

func TestServerPeriodicCompaction(t *testing.T) {
	// The TCP server sweeps expired entries itself, so rates from dead
	// hosts cannot accumulate forever.
	var mu sync.Mutex
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	store := NewWithClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOpts(l, store, ServerOptions{CompactEvery: 10 * time.Millisecond})
	defer srv.Close()

	for i := 0; i < 5; i++ {
		store.Put(RateKey("Cold", "c4_low", "A", string(rune('a'+i))), 1, time.Second)
	}
	if store.Len() != 5 {
		t.Fatalf("Len = %d, want 5", store.Len())
	}
	mu.Lock()
	now = now.Add(2 * time.Second) // everything expires
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for store.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server never compacted: %d entries remain", store.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerCloseStopsCompactionIdempotently(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOpts(l, New(), ServerOptions{CompactEvery: time.Millisecond})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
