package kvstore

import (
	"net"
	"strings"
	"testing"
	"time"

	"entitlement/internal/wire"
)

func startKVServer(t *testing.T, opts ServerOptions) *Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOpts(l, New(), opts)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// Every kvstore verb behaves identically through both codecs.
func TestClientCodecMatrix(t *testing.T) {
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecBinary} {
		t.Run(codec.String(), func(t *testing.T) {
			srv := startKVServer(t, ServerOptions{CompactEvery: -1})
			c, err := DialOpts(srv.Addr(), wire.ClientOptions{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Put(RateKey("Ads", "c2_low", "A", "h1"), 10, time.Minute); err != nil {
				t.Fatal(err)
			}
			if err := c.Put(RateKey("Ads", "c2_low", "A", "h2"), 20, time.Minute); err != nil {
				t.Fatal(err)
			}
			v, ok, err := c.Get(RateKey("Ads", "c2_low", "A", "h1"))
			if err != nil || !ok || v != 10 {
				t.Errorf("Get = %v %v %v", v, ok, err)
			}
			sum, err := c.SumPrefix(RatePrefix("Ads", "c2_low", "A"))
			if err != nil || sum != 30 {
				t.Errorf("SumPrefix = %v, %v", sum, err)
			}
			if err := c.Delete(RateKey("Ads", "c2_low", "A", "h1")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := c.Get(RateKey("Ads", "c2_low", "A", "h1")); ok {
				t.Error("deleted key still present")
			}
		})
	}
}

// Binary-decoded keys alias the connection's frame buffer; Store.Put must
// intern them before retaining, or later frames would rewrite stored keys
// in place. Publishing many distinct keys through one connection and then
// reading the store back catches any aliasing.
func TestBinaryPutKeysDoNotAliasFrameBuffer(t *testing.T) {
	srv := startKVServer(t, ServerOptions{CompactEvery: -1})
	c, err := DialOpts(srv.Addr(), wire.ClientOptions{Codec: wire.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := []string{}
	for _, host := range []string{"host-a", "host-bb", "host-ccc", "host-dddd"} {
		k := RateKey("svc", "c2_low", "A", host)
		keys = append(keys, k)
		if err := c.Put(k, float64(len(host)), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	stored := srv.store.Keys("rates/")
	if len(stored) != len(keys) {
		t.Fatalf("store has %d keys, want %d: %v", len(stored), len(keys), stored)
	}
	for i, k := range keys {
		if stored[i] != k {
			t.Errorf("stored[%d] = %q, want %q (frame-buffer aliasing?)", i, stored[i], k)
		}
		if v, ok, _ := srv.store.Get(k); !ok || v != float64(len(strings.TrimPrefix(k, RatePrefix("svc", "c2_low", "A")))) {
			t.Errorf("Get(%q) = %v %v", k, v, ok)
		}
	}
}

// The publish hot path — Client.Put on a binary-negotiated connection into
// a real server — performs zero heap allocations per call across all
// goroutines (testing.AllocsPerRun counts the server's side too). This is
// the end-to-end half of the ISSUE's bench bar; the 5x throughput half is
// pinned at the codec layer in internal/wire.
func TestClientPutBinaryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	srv := startKVServer(t, ServerOptions{CompactEvery: -1})
	c, err := DialOpts(srv.Addr(), wire.ClientOptions{Codec: wire.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := RateKey("Ads", "c2_low", "A", "host-017")
	// Warm up: scratch buffers, arg pools, the server's method-intern table,
	// and the store's interned key.
	for i := 0; i < 100; i++ {
		if err := c.Put(key, float64(i), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Put(key, 42.5, time.Minute); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("binary Put allocates %.1f/op end to end, want 0", allocs)
	}
	if v, ok, _ := srv.store.Get(key); !ok || v != 42.5 {
		t.Errorf("store state after alloc run: %v %v", v, ok)
	}
}

func benchClientPut(b *testing.B, codec wire.Codec) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServerOpts(l, New(), ServerOptions{CompactEvery: -1})
	defer srv.Close()
	c, err := DialOpts(srv.Addr(), wire.ClientOptions{Codec: codec})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	key := RateKey("Ads", "c2_low", "A", "host-017")
	if err := c.Put(key, 1, time.Minute); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(key, float64(i), time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// Socket-level publish benchmarks through the full kvstore client/server
// stack (exported to BENCH_wire.json by cmd/benchjson -wire-out).
func BenchmarkClientPutBinary(b *testing.B) { benchClientPut(b, wire.CodecBinary) }
func BenchmarkClientPutJSON(b *testing.B)   { benchClientPut(b, wire.CodecJSON) }
