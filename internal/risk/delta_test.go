package risk

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"entitlement/internal/flow"
	"entitlement/internal/topology"
)

// deltaTestTopology builds a small backbone with failure probabilities high
// enough that mutations actually flip sampled bits.
func deltaTestTopology(t *testing.T, seed int64) *topology.Topology {
	t.Helper()
	opts := topology.DefaultBackboneOptions()
	opts.Regions = 6
	opts.Chords = 3
	opts.Seed = seed
	opts.LinkFail = 0.05
	opts.FiberCut = 0.02
	topo, err := topology.Backbone(opts)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func deltaTestDemands(topo *topology.Topology, n int) []flow.Demand {
	regions := topo.RegionsSorted()
	demands := make([]flow.Demand, 0, n)
	for i := 0; i < n; i++ {
		src := regions[i%len(regions)]
		dst := regions[(i+2)%len(regions)]
		demands = append(demands, flow.Demand{
			Key: fmt.Sprintf("%s>%s/%d", src, dst, i),
			Src: src, Dst: dst, Rate: 400e9, Class: i % 4,
		})
	}
	return demands
}

// mutateRandom applies one random journaled mutation drawn from every class
// the delta machinery distinguishes: region add, link add, capacity change,
// failure-probability change, SRLG cut-probability change, and the
// administrative disable toggle ("link remove").
func mutateRandom(t *testing.T, rng *rand.Rand, topo *topology.Topology, counter *int) {
	t.Helper()
	regions := topo.RegionsSorted()
	link := rng.Intn(topo.NumLinks())
	switch rng.Intn(6) {
	case 0:
		topo.AddRegion(topology.Region(fmt.Sprintf("X%02d", *counter)))
		*counter++
	case 1:
		a := regions[rng.Intn(len(regions))]
		b := regions[rng.Intn(len(regions))]
		if a == b {
			return
		}
		srlg := -1
		if rng.Intn(2) == 0 && len(topo.SRLGs) > 0 {
			srlg = topo.SRLGs[rng.Intn(len(topo.SRLGs))].ID
		}
		if _, err := topo.AddLink(a, b, (100+900*rng.Float64())*1e9, 0.3*rng.Float64(), srlg); err != nil {
			t.Fatal(err)
		}
	case 2:
		if err := topo.SetCapacity(link, (50+950*rng.Float64())*1e9); err != nil {
			t.Fatal(err)
		}
	case 3:
		if err := topo.SetLinkFailProb(link, 0.5*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	case 4:
		if len(topo.SRLGs) == 0 {
			return
		}
		topo.EnsureSRLG(topo.SRLGs[rng.Intn(len(topo.SRLGs))].ID, 0.3*rng.Float64())
	case 5:
		if err := topo.SetLinkDisabled(link, !topo.Link(link).Disabled); err != nil {
			t.Fatal(err)
		}
	}
}

func requireSameCurves(t *testing.T, label string, demands []flow.Demand, got, want *Result) {
	t.Helper()
	for _, d := range demands {
		g := got.Curves[d.Key].Samples()
		w := want.Curves[d.Key].Samples()
		if len(g) != len(w) {
			t.Fatalf("%s: %s: %d samples != %d", label, d.Key, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: %s sample %d: spliced %v != full %v (not byte-identical)",
					label, d.Key, i, g[i], w[i])
			}
		}
	}
}

// TestDeltaAssessMatchesFull is the tentpole property test: over random
// mutation sequences (link add, administrative link down/up, capacity change,
// failure-probability change, SRLG cut-prob edits, region adds), a
// cache-routed Assess that splices untouched scenarios is byte-identical to a
// from-scratch full recompute — at workers=1 and workers=4, under -race.
// 60 sequences per worker count = 120 sequences total.
func TestDeltaAssessMatchesFull(t *testing.T) {
	const (
		trials        = 60
		mutationSteps = 5
	)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(1000*workers + trial)))
				topo := deltaTestTopology(t, int64(trial+1))
				demands := deltaTestDemands(topo, 5)
				opts := Options{
					Scenarios: 30,
					Seed:      int64(trial*7 + 1),
					Workers:   workers,
					SkipAllUp: trial%2 == 1,
				}
				cached := opts
				cached.Cache = NewResultCache(4)
				regionCounter := 0
				for step := 0; step <= mutationSteps; step++ {
					if step > 0 {
						mutateRandom(t, rng, topo, &regionCounter)
					}
					got, err := Assess(topo, demands, cached)
					if err != nil {
						t.Fatal(err)
					}
					want, err := Assess(topo, demands, opts)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d step %d", trial, step)
					requireSameCurves(t, label, demands, got, want)
					total := opts.Scenarios
					if !opts.SkipAllUp {
						total++
					}
					if got.Resimulated+got.Spliced != total {
						t.Fatalf("%s: Resimulated %d + Spliced %d != %d slots",
							label, got.Resimulated, got.Spliced, total)
					}
				}
			}
		})
	}
}

// TestDeltaAssessReplay pins the pure-replay path: re-assessing with no
// topology mutation in between routes nothing and splices every slot.
func TestDeltaAssessReplay(t *testing.T) {
	topo := deltaTestTopology(t, 3)
	demands := deltaTestDemands(topo, 4)
	opts := Options{Scenarios: 25, Seed: 9, Cache: NewResultCache(4)}
	cold, err := Assess(topo, demands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Resimulated != 26 || cold.Spliced != 0 {
		t.Fatalf("cold fill: Resimulated=%d Spliced=%d, want 26/0", cold.Resimulated, cold.Spliced)
	}
	warm, err := Assess(topo, demands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Resimulated != 0 || warm.Spliced != 26 {
		t.Fatalf("replay: Resimulated=%d Spliced=%d, want 0/26", warm.Resimulated, warm.Spliced)
	}
	requireSameCurves(t, "replay", demands, warm, cold)

	// A region-only delta also splices everything: no link changed.
	topo.AddRegion("ZZ")
	regionOnly, err := Assess(topo, demands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if regionOnly.Resimulated != 0 || regionOnly.Spliced != 26 {
		t.Fatalf("region-only: Resimulated=%d Spliced=%d, want 0/26",
			regionOnly.Resimulated, regionOnly.Spliced)
	}
	requireSameCurves(t, "region-only", demands, regionOnly, cold)
}

// TestResultCacheLRU pins the eviction bound: distinct assessment identities
// beyond the cap evict least-recently-used entries, and an evicted identity
// refills from scratch rather than serving stale state.
func TestResultCacheLRU(t *testing.T) {
	topo := deltaTestTopology(t, 4)
	cache := NewResultCache(2)
	opts := Options{Scenarios: 10, Cache: cache}
	for seed := int64(1); seed <= 3; seed++ {
		o := opts
		o.Seed = seed // distinct identity per seed
		if _, err := Assess(topo, deltaTestDemands(topo, 2), o); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
	// Seed 1 was evicted: assessing it again must refill (Resimulated == all).
	o := opts
	o.Seed = 1
	res, err := Assess(topo, deltaTestDemands(topo, 2), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spliced != 0 {
		t.Fatalf("evicted identity spliced %d slots, want a full refill", res.Spliced)
	}
	if NewResultCache(0).max != DefaultResultCacheEntries {
		t.Fatalf("default cap not applied")
	}
}

// TestResultCacheJournalTruncation forces the mutation journal past its ring
// bound so DeltaSince cannot cover the cached epoch; the cache must fall back
// to a full recompute that still matches a from-scratch assessment.
func TestResultCacheJournalTruncation(t *testing.T) {
	topo := deltaTestTopology(t, 5)
	demands := deltaTestDemands(topo, 3)
	opts := Options{Scenarios: 15, Seed: 2, Cache: NewResultCache(4)}
	if _, err := Assess(topo, demands, opts); err != nil {
		t.Fatal(err)
	}
	cachedEpoch := topo.Epoch()
	for i := 0; i < 5000; i++ {
		if err := topo.SetCapacity(i%topo.NumLinks(), (100+float64(i%17)*50)*1e9); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := topo.DeltaSince(cachedEpoch); ok {
		t.Fatal("journal still covers a 5000-mutation span; truncation untested")
	}
	got, err := Assess(topo, demands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spliced != 0 {
		t.Fatalf("truncated journal spliced %d slots, want full recompute", got.Spliced)
	}
	plain := opts
	plain.Cache = nil
	want, err := Assess(topo, demands, plain)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCurves(t, "truncation", demands, got, want)
}

// TestStatesLengthErrorDetail pins the diagnostic contract of the
// precomputed-states length check: got, want and the topology epoch are all
// in the message.
func TestStatesLengthErrorDetail(t *testing.T) {
	topo := deltaTestTopology(t, 6)
	demands := deltaTestDemands(topo, 2)
	opts := Options{Scenarios: 50, Seed: 1}
	states := SampleStates(topo, opts)
	opts.States = states[:10]
	_, err := Assess(topo, demands, opts)
	if err == nil {
		t.Fatal("short States slice accepted")
	}
	msg := err.Error()
	for _, part := range []string{"length 10", "Scenarios 50", fmt.Sprintf("epoch %d", topo.Epoch())} {
		if !strings.Contains(msg, part) {
			t.Errorf("error %q missing %q", msg, part)
		}
	}
}

// TestDeltaSpeedup is the acceptance bar: after a failure-probability
// mutation touching <= 10% of links, a cache-routed re-assessment re-simulates
// >= 10x fewer scenarios than a cold pass and its p50 latency is >= 10x lower,
// while staying byte-identical to the full recompute. This is what the CI
// bench-delta leg runs.
func TestDeltaSpeedup(t *testing.T) {
	bopts := topology.DefaultBackboneOptions()
	bopts.Regions = 10
	bopts.Chords = 8
	topo, err := topology.Backbone(bopts)
	if err != nil {
		t.Fatal(err)
	}
	demands := deltaTestDemands(topo, 8)
	opts := Options{Scenarios: 600, Seed: 5, Workers: 1}

	// <= 10% of links get a failure-probability bump.
	nTouch := topo.NumLinks() / 10
	if nTouch < 1 {
		nTouch = 1
	}

	const iterations = 5
	colds := make([]time.Duration, 0, iterations)
	deltas := make([]time.Duration, 0, iterations)
	for it := 0; it < iterations; it++ {
		cached := opts
		cached.Cache = NewResultCache(2)
		start := time.Now()
		if _, err := Assess(topo, demands, cached); err != nil {
			t.Fatal(err)
		}
		colds = append(colds, time.Since(start))

		for i := 0; i < nTouch; i++ {
			id := (it*nTouch + i) % topo.NumLinks()
			if err := topo.SetLinkFailProb(id, bopts.LinkFail+0.005); err != nil {
				t.Fatal(err)
			}
		}
		start = time.Now()
		res, err := Assess(topo, demands, cached)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, time.Since(start))

		// Timing-independent bar: the delta pass re-simulates >= 10x fewer
		// scenarios than the cold pass.
		total := res.Resimulated + res.Spliced
		if res.Resimulated*10 > total {
			t.Fatalf("iteration %d: re-simulated %d of %d scenarios (> 10%%)",
				it, res.Resimulated, total)
		}

		// And it is still byte-identical to a from-scratch recompute.
		want, err := Assess(topo, demands, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameCurves(t, fmt.Sprintf("iteration %d", it), demands, res, want)
	}

	coldP50, deltaP50 := p50(colds), p50(deltas)
	t.Logf("cold p50 = %v, delta p50 = %v (%.1fx)", coldP50, deltaP50,
		float64(coldP50)/float64(deltaP50))
	if deltaP50*10 > coldP50 {
		t.Errorf("delta re-assessment p50 %v is not >= 10x faster than cold p50 %v",
			deltaP50, coldP50)
	}
}

func p50(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
