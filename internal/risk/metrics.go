package risk

import "entitlement/internal/obs"

// Risk-simulation instruments. The throughput and utilization gauges
// describe the most recent Assess call: scenarios_per_second is the
// realized simulation rate, worker_utilization the fraction of the
// worker-pool's wall-clock budget spent solving (1.0 = perfectly parallel,
// low values = stragglers or contention).
var (
	mAssessSeconds   = obs.RegisterHistogram("entitlement_risk_assess_seconds", "Wall-clock duration of one risk assessment (all scenarios).")
	mScenarios       = obs.RegisterCounter("entitlement_risk_scenarios_total", "Failure scenarios evaluated across all assessments.")
	mScenarioSeconds = obs.RegisterHistogram("entitlement_risk_scenario_seconds", "Latency of evaluating one failure scenario (sample + solve).")
	mScenarioRate    = obs.RegisterGauge("entitlement_risk_scenarios_per_second", "Realized scenario throughput of the most recent assessment.")
	mWorkerUtil      = obs.RegisterGauge("entitlement_risk_worker_utilization", "Fraction of the worker pool's wall-clock budget spent evaluating scenarios in the most recent assessment.")
)

// Incremental-assessment instruments: cache traffic on the result cache and
// how much simulation the delta path avoided (spliced scenarios are slots
// served from cache; resimulated ones were actually routed).
var (
	mResultCacheHits      = obs.RegisterCounter("entitlement_risk_result_cache_hits_total", "Assessments served from the result cache (replayed or delta-patched).")
	mResultCacheMisses    = obs.RegisterCounter("entitlement_risk_result_cache_misses_total", "Assessments computed from scratch (absent entry or truncated journal).")
	mResultCacheEvictions = obs.RegisterCounter("entitlement_risk_result_cache_evictions_total", "Cached assessments evicted by the LRU bound.")
	mDeltaResimulated     = obs.RegisterCounter("entitlement_risk_delta_resimulated_scenarios_total", "Scenario slots re-simulated across all cache-routed assessments.")
	mDeltaSpliced         = obs.RegisterCounter("entitlement_risk_delta_spliced_scenarios_total", "Scenario slots spliced from cache instead of re-simulated.")
)
