// Package risk is the reproduction's Risk Simulation System (RSS) — the
// component §4.3 uses to "generate the bandwidth availability curves based
// on the network capacity and reliability". It Monte-Carlo samples failure
// scenarios (independent link failures and SRLG fiber cuts) from the
// topology, routes the pipe demands under each scenario with the flow
// allocator, and summarizes each pipe's admitted bandwidth into an
// availability curve:
//
//	availability(b) = P(admitted bandwidth >= b)
//
// The approval pipeline then reads the curve at the contract's SLO target to
// find the admittable volume ("the Pipe approval is calculated by finding
// the flow volume associated with the desired SLO target").
package risk

import (
	"errors"
	"sort"

	"entitlement/internal/flow"
	"entitlement/internal/topology"

	"math/rand"
)

// Curve is a bandwidth availability curve for one pipe: the empirical
// distribution of admitted bandwidth across sampled failure scenarios.
type Curve struct {
	sorted []float64 // admitted bandwidth per scenario, ascending
}

// NewCurve builds a curve from per-scenario admitted bandwidth samples.
func NewCurve(samples []float64) *Curve {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &Curve{sorted: s}
}

// Scenarios returns the number of scenarios behind the curve.
func (c *Curve) Scenarios() int { return len(c.sorted) }

// AvailabilityAt returns the fraction of scenarios in which at least b
// bandwidth was admitted.
func (c *Curve) AvailabilityAt(b float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Count samples >= b: first index with sorted[i] >= b.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] >= b-1e-9 })
	return float64(len(c.sorted)-i) / float64(len(c.sorted))
}

// RateAtAvailability returns the largest bandwidth admitted in at least slo
// fraction of scenarios — the volume the network can guarantee at that SLO.
// It returns 0 when the SLO is unattainable (e.g. more stringent than 1-1/n).
func (c *Curve) RateAtAvailability(slo float64) float64 {
	n := len(c.sorted)
	if n == 0 || slo <= 0 {
		return 0
	}
	// Need k = ceil(slo*n) scenarios admitting the rate; the best such rate
	// is the (n-k)-th order statistic.
	k := int(slo * float64(n))
	if float64(k) < slo*float64(n) {
		k++
	}
	if k > n {
		return 0
	}
	return c.sorted[n-k]
}

// Options configures a risk assessment.
type Options struct {
	// Scenarios is the number of Monte-Carlo failure scenarios; more
	// scenarios resolve higher SLO targets (resolving availability a needs
	// on the order of 1/(1-a) scenarios). Default 500.
	Scenarios int
	// IncludeAllUp forces the no-failure scenario into the sample set,
	// which stabilizes the top of the curve. Default true via Assess.
	SkipAllUp bool
	Seed      int64
	Alloc     flow.AllocateOptions
}

// Result holds per-pipe availability curves from one assessment.
type Result struct {
	Curves map[string]*Curve // keyed by flow.Demand.Key
}

// Assess runs the Monte-Carlo risk simulation: for every sampled failure
// scenario it routes all demands (honoring QoS priority) and records each
// demand's admitted bandwidth. Demands passed as background (e.g. already
// approved higher-priority classes) compete for capacity and appear in the
// result like any other; callers pick the keys they care about.
func Assess(topo *topology.Topology, demands []flow.Demand, opts Options) (*Result, error) {
	if len(demands) == 0 {
		return &Result{Curves: map[string]*Curve{}}, nil
	}
	if opts.Scenarios <= 0 {
		opts.Scenarios = 500
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	samples := make(map[string][]float64, len(demands))
	for _, d := range demands {
		if _, dup := samples[d.Key]; dup {
			return nil, errors.New("risk: duplicate demand key " + d.Key)
		}
		samples[d.Key] = make([]float64, 0, opts.Scenarios+1)
	}
	record := func(state *topology.FailureState) {
		alloc := flow.Allocate(topo, state, demands, opts.Alloc)
		for _, d := range demands {
			samples[d.Key] = append(samples[d.Key], alloc.Admitted[d.Key])
		}
	}
	if !opts.SkipAllUp {
		record(topo.AllUp())
	}
	for i := 0; i < opts.Scenarios; i++ {
		record(topo.SampleFailures(rng))
	}
	res := &Result{Curves: make(map[string]*Curve, len(demands))}
	for k, s := range samples {
		res.Curves[k] = NewCurve(s)
	}
	return res, nil
}

// MeetsSLO reports whether the demand's full requested rate is available at
// the SLO target under the assessment.
func (r *Result) MeetsSLO(d flow.Demand, slo float64) bool {
	c, ok := r.Curves[d.Key]
	if !ok {
		return false
	}
	return c.RateAtAvailability(slo) >= d.Rate-1e-9
}

// GuaranteedRate returns the bandwidth guaranteed to demand key at the SLO,
// or 0 when the key is unknown.
func (r *Result) GuaranteedRate(key string, slo float64) float64 {
	c, ok := r.Curves[key]
	if !ok {
		return 0
	}
	return c.RateAtAvailability(slo)
}

// Samples returns a copy of the per-scenario admitted-bandwidth samples.
func (c *Curve) Samples() []float64 {
	out := make([]float64, len(c.sorted))
	copy(out, c.sorted)
	return out
}

// Merge combines curves (e.g. assessment phases) into one distribution.
func Merge(curves ...*Curve) *Curve {
	var all []float64
	for _, c := range curves {
		if c != nil {
			all = append(all, c.sorted...)
		}
	}
	return NewCurve(all)
}

// AssessPhased assesses demands across a planned topology change (§4.3:
// approval must "analyze possible network failures (e.g., fiber cuts) and
// changes (e.g., new links) in advance"): the entitlement period spends
// 1−fracAfter of its time on the current topology and fracAfter on the
// post-change topology. Scenario counts are split proportionally and the
// phase curves merged, so the availability guarantee covers the whole
// period including the change window.
func AssessPhased(before, after *topology.Topology, fracAfter float64, demands []flow.Demand, opts Options) (*Result, error) {
	if fracAfter < 0 || fracAfter > 1 {
		return nil, errors.New("risk: fracAfter out of [0,1]")
	}
	if opts.Scenarios <= 0 {
		opts.Scenarios = 500
	}
	afterScenarios := int(float64(opts.Scenarios) * fracAfter)
	beforeScenarios := opts.Scenarios - afterScenarios

	merged := &Result{Curves: make(map[string]*Curve, len(demands))}
	runPhase := func(t *topology.Topology, scenarios int, seedOffset int64) error {
		if scenarios <= 0 || t == nil {
			return nil
		}
		phaseOpts := opts
		phaseOpts.Scenarios = scenarios
		phaseOpts.Seed = opts.Seed + seedOffset
		res, err := Assess(t, demands, phaseOpts)
		if err != nil {
			return err
		}
		for k, c := range res.Curves {
			merged.Curves[k] = Merge(merged.Curves[k], c)
		}
		return nil
	}
	if err := runPhase(before, beforeScenarios, 0); err != nil {
		return nil, err
	}
	if err := runPhase(after, afterScenarios, 1_000_003); err != nil {
		return nil, err
	}
	return merged, nil
}
