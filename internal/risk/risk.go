// Package risk is the reproduction's Risk Simulation System (RSS) — the
// component §4.3 uses to "generate the bandwidth availability curves based
// on the network capacity and reliability". It Monte-Carlo samples failure
// scenarios (independent link failures and SRLG fiber cuts) from the
// topology, routes the pipe demands under each scenario with the flow
// allocator, and summarizes each pipe's admitted bandwidth into an
// availability curve:
//
//	availability(b) = P(admitted bandwidth >= b)
//
// The approval pipeline then reads the curve at the contract's SLO target to
// find the admittable volume ("the Pipe approval is calculated by finding
// the flow volume associated with the desired SLO target").
//
// Scenarios are embarrassingly parallel: each scenario i derives its own RNG
// from seed^mix(i) and writes its admitted-bandwidth samples into slot i of
// per-demand sample columns, so the result is byte-identical for any worker
// count (Options.Workers; 0 = GOMAXPROCS, 1 = serial).
package risk

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"entitlement/internal/flow"
	"entitlement/internal/topology"
)

// Curve is a bandwidth availability curve for one pipe: the empirical
// distribution of admitted bandwidth across sampled failure scenarios.
type Curve struct {
	sorted []float64 // admitted bandwidth per scenario, ascending
}

// NewCurve builds a curve from per-scenario admitted bandwidth samples.
func NewCurve(samples []float64) *Curve {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &Curve{sorted: s}
}

// Scenarios returns the number of scenarios behind the curve.
func (c *Curve) Scenarios() int { return len(c.sorted) }

// bwTol is the comparison tolerance for bandwidth values: a small absolute
// floor plus a relative term, so Tbps-scale rates (1e11–1e13 bits/s, where a
// fixed 1e-9 is meaningless) still absorb float accumulation error.
func bwTol(b float64) float64 {
	return 1e-9 + 1e-12*math.Abs(b)
}

// AvailabilityAt returns the fraction of scenarios in which at least b
// bandwidth was admitted (within relative tolerance).
func (c *Curve) AvailabilityAt(b float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Count samples >= b: first index with sorted[i] >= b.
	tol := bwTol(b)
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] >= b-tol })
	return float64(len(c.sorted)-i) / float64(len(c.sorted))
}

// RateAtAvailability returns the largest bandwidth admitted in at least slo
// fraction of scenarios — the volume the network can guarantee at that SLO.
// It returns 0 when the SLO is unattainable (e.g. more stringent than 1-1/n).
func (c *Curve) RateAtAvailability(slo float64) float64 {
	n := len(c.sorted)
	if n == 0 || slo <= 0 {
		return 0
	}
	// Need k = ceil(slo*n) scenarios admitting the rate; the best such rate
	// is the (n-k)-th order statistic.
	k := int(slo * float64(n))
	if float64(k) < slo*float64(n) {
		k++
	}
	if k > n {
		return 0
	}
	return c.sorted[n-k]
}

// Options configures a risk assessment.
type Options struct {
	// Scenarios is the number of Monte-Carlo failure scenarios; more
	// scenarios resolve higher SLO targets (resolving availability a needs
	// on the order of 1/(1-a) scenarios). Default 500.
	Scenarios int
	// IncludeAllUp forces the no-failure scenario into the sample set,
	// which stabilizes the top of the curve. Default true via Assess.
	SkipAllUp bool
	Seed      int64
	// Workers is the scenario-evaluation parallelism: 0 uses
	// runtime.GOMAXPROCS(0), 1 forces the serial path. Results are
	// byte-identical for every value because each scenario owns a
	// deterministic RNG and a dedicated output slot.
	Workers int
	Alloc   flow.AllocateOptions

	// States, when non-nil, supplies the sampled failure scenarios instead
	// of drawing them: States[j] is used for sampled scenario j and must
	// have length Scenarios. SampleStates produces slot-for-slot exactly
	// what Assess would draw itself, so injecting its output is
	// byte-identical to sampling — this is how the granting service reuses
	// one scenario set across many admission decisions.
	States []*topology.FailureState
	// StatesFor, consulted when States is nil, resolves a scenario set for
	// the (topology, options) pair about to be assessed — the hook a
	// scenario cache plugs in. It composes through AssessPhased and the
	// approval pipeline, which vary Seed (and topology) per pass: the
	// callback sees the effective per-pass options. Returning nil falls
	// back to sampling.
	StatesFor func(topo *topology.Topology, opts Options) []*topology.FailureState
	// Pool, when non-nil and bound to the assessed topology, supplies the
	// per-worker flow.Runners instead of constructing fresh ones, so a
	// long-running service reuses allocator scratch across assessments.
	// Pools bound to a different topology are ignored (AssessPhased
	// assesses two topologies with one Options value).
	Pool *flow.RunnerPool

	// Cache, when non-nil, routes the assessment through the incremental
	// result cache: a repeat of a cached (topology, demands, options)
	// assessment replays without routing anything, and after topology
	// mutations only the scenarios the mutation delta dirties are
	// re-simulated, the rest spliced — byte-identical to a full recompute.
	// When set, States and StatesFor are ignored (the cache owns sampling).
	Cache *ResultCache
}

// SampleStates precomputes the failure scenarios Assess would sample for
// these options: scenario j is topology.SampleFailureAt(Seed, j), exactly
// what the assessment loop draws. The forced all-up scenario is not included
// (it is not sampled). The returned slice can be passed as Options.States to
// any number of assessments over the same topology with the same
// Seed/Scenarios, with byte-identical results.
//
// The draw is decomposable: link i's down-bit in scenario j depends only on
// (Seed, j, i) and the link's own failure inputs, never on the rest of the
// topology. That is what makes post-mutation delta re-assessment possible —
// a mutation perturbs only the touched links' bits (see ResultCache).
func SampleStates(topo *topology.Topology, opts Options) []*topology.FailureState {
	if opts.Scenarios <= 0 {
		opts.Scenarios = 500
	}
	states := make([]*topology.FailureState, opts.Scenarios)
	for j := range states {
		states[j] = topo.SampleFailureAt(opts.Seed, j)
	}
	return states
}

// Result holds per-pipe availability curves from one assessment.
type Result struct {
	Curves map[string]*Curve // keyed by flow.Demand.Key
	// Resimulated and Spliced report how many scenario slots were actually
	// routed vs. spliced unchanged from a ResultCache entry. Outside cache
	// use, Resimulated covers every slot and Spliced is 0.
	Resimulated int
	Spliced     int
}

// Assess runs the Monte-Carlo risk simulation: for every sampled failure
// scenario it routes all demands (honoring QoS priority) and records each
// demand's admitted bandwidth. Demands passed as background (e.g. already
// approved higher-priority classes) compete for capacity and appear in the
// result like any other; callers pick the keys they care about.
//
// Scenarios fan out over Options.Workers goroutines, each holding its own
// flow.Runner; the shared topology is only read.
func Assess(topo *topology.Topology, demands []flow.Demand, opts Options) (*Result, error) {
	if len(demands) == 0 {
		return &Result{Curves: map[string]*Curve{}}, nil
	}
	if opts.Scenarios <= 0 {
		opts.Scenarios = 500
	}
	if err := checkDemandKeys(demands); err != nil {
		return nil, err
	}
	if opts.Cache != nil {
		return opts.Cache.assess(topo, demands, opts)
	}
	states := opts.States
	if states == nil && opts.StatesFor != nil {
		states = opts.StatesFor(topo, opts)
	}
	if states != nil && len(states) != opts.Scenarios {
		return nil, fmt.Errorf("risk: precomputed States length %d does not match Scenarios %d (topology epoch %d)",
			len(states), opts.Scenarios, topo.Epoch())
	}

	offset, total := slotLayout(opts)
	cols := newColumns(len(demands), total)
	evalSlots(topo, demands, opts, states, cols, offset, allSlots(total))
	return buildResult(demands, cols, total, 0), nil
}

// checkDemandKeys rejects duplicate demand keys (each key owns one curve).
func checkDemandKeys(demands []flow.Demand) error {
	seen := make(map[string]bool, len(demands))
	for _, d := range demands {
		if seen[d.Key] {
			return errors.New("risk: duplicate demand key " + d.Key)
		}
		seen[d.Key] = true
	}
	return nil
}

// slotLayout returns the scenario index space: slot 0 is the forced all-up
// scenario (unless skipped); sampled scenario j owns slot j+offset.
func slotLayout(opts Options) (offset, total int) {
	if !opts.SkipAllUp {
		offset = 1
	}
	return offset, opts.Scenarios + offset
}

// newColumns allocates per-demand sample columns backed by one flat slice.
func newColumns(demands, total int) [][]float64 {
	cols := make([][]float64, demands)
	flat := make([]float64, demands*total)
	for i := range cols {
		cols[i] = flat[i*total : (i+1)*total]
	}
	return cols
}

func allSlots(total int) []int {
	slots := make([]int, total)
	for i := range slots {
		slots[i] = i
	}
	return slots
}

// buildResult folds sample columns into availability curves.
func buildResult(demands []flow.Demand, cols [][]float64, resimulated, spliced int) *Result {
	res := &Result{
		Curves:      make(map[string]*Curve, len(demands)),
		Resimulated: resimulated,
		Spliced:     spliced,
	}
	for i, d := range demands {
		res.Curves[d.Key] = NewCurve(cols[i])
	}
	return res
}

// evalSlots routes the demands under the given scenario slots, writing each
// demand's admitted bandwidth into cols[di][slot]. Slots not listed keep
// their prior column values (that is the splice). When states is nil,
// sampled scenarios are drawn on the fly with topology.SampleFailureAt.
// Slots fan out over Options.Workers goroutines, each holding its own
// flow.Runner; the shared topology is only read.
func evalSlots(topo *topology.Topology, demands []flow.Demand, opts Options, states []*topology.FailureState, cols [][]float64, offset int, slots []int) {
	// Build the dense adjacency once before fan-out so workers don't race
	// to construct it (Dense is mutex-guarded, but pre-building keeps the
	// parallel section contention-free).
	topo.Dense()

	evalScenario := func(r *flow.Runner, adm []float64, slot int) []float64 {
		begin := time.Now()
		var state *topology.FailureState
		switch {
		case offset == 1 && slot == 0:
			state = topo.AllUp()
		case states != nil:
			state = states[slot-offset]
		default:
			state = topo.SampleFailureAt(opts.Seed, slot-offset)
		}
		adm = r.AllocateInto(state, demands, opts.Alloc, adm)
		for di := range demands {
			cols[di][slot] = adm[di]
		}
		mScenarios.Inc()
		mScenarioSeconds.ObserveSince(begin)
		return adm
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(slots) {
		workers = len(slots)
	}
	// Per-worker Runners come from the caller's pool when it is bound to
	// this topology; otherwise they are built fresh. Either way Allocate
	// fully resets Runner state per scenario, so pooling cannot change
	// results.
	pool := opts.Pool
	if pool != nil && pool.Topology() != topo {
		pool = nil
	}
	getRunner := func() *flow.Runner {
		if pool != nil {
			return pool.Get()
		}
		return flow.NewRunner(topo)
	}
	putRunner := func(r *flow.Runner) {
		if pool != nil {
			pool.Put(r)
		}
	}
	assessStart := time.Now()
	var busyNanos int64 // summed per-worker solve time, for the utilization gauge
	if workers <= 1 {
		r := getRunner()
		var adm []float64
		for _, slot := range slots {
			adm = evalScenario(r, adm, slot)
		}
		putRunner(r)
		busyNanos = time.Since(assessStart).Nanoseconds()
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				workerStart := time.Now()
				r := getRunner()
				var adm []float64
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(slots) {
						break
					}
					adm = evalScenario(r, adm, slots[i])
				}
				putRunner(r)
				atomic.AddInt64(&busyNanos, time.Since(workerStart).Nanoseconds())
			}()
		}
		wg.Wait()
	}
	wall := time.Since(assessStart)
	mAssessSeconds.Observe(wall.Seconds())
	if wall > 0 && workers > 0 {
		mScenarioRate.Set(float64(len(slots)) / wall.Seconds())
		mWorkerUtil.Set(float64(busyNanos) / (wall.Seconds() * 1e9 * float64(workers)))
	}
}

// MeetsSLO reports whether the demand's full requested rate is available at
// the SLO target under the assessment.
func (r *Result) MeetsSLO(d flow.Demand, slo float64) bool {
	c, ok := r.Curves[d.Key]
	if !ok {
		return false
	}
	return c.RateAtAvailability(slo) >= d.Rate-bwTol(d.Rate)
}

// GuaranteedRate returns the bandwidth guaranteed to demand key at the SLO,
// or 0 when the key is unknown.
func (r *Result) GuaranteedRate(key string, slo float64) float64 {
	c, ok := r.Curves[key]
	if !ok {
		return 0
	}
	return c.RateAtAvailability(slo)
}

// Samples returns a copy of the per-scenario admitted-bandwidth samples.
func (c *Curve) Samples() []float64 {
	out := make([]float64, len(c.sorted))
	copy(out, c.sorted)
	return out
}

// Merge combines curves (e.g. assessment phases) into one distribution.
func Merge(curves ...*Curve) *Curve {
	var all []float64
	for _, c := range curves {
		if c != nil {
			all = append(all, c.sorted...)
		}
	}
	return NewCurve(all)
}

// AssessPhased assesses demands across a planned topology change (§4.3:
// approval must "analyze possible network failures (e.g., fiber cuts) and
// changes (e.g., new links) in advance"): the entitlement period spends
// 1−fracAfter of its time on the current topology and fracAfter on the
// post-change topology. Scenario counts are split proportionally and the
// phase curves merged, so the availability guarantee covers the whole
// period including the change window. Each phase inherits Options.Workers,
// so both topologies' scenario sets fan out in parallel.
func AssessPhased(before, after *topology.Topology, fracAfter float64, demands []flow.Demand, opts Options) (*Result, error) {
	if fracAfter < 0 || fracAfter > 1 {
		return nil, errors.New("risk: fracAfter out of [0,1]")
	}
	if opts.Scenarios <= 0 {
		opts.Scenarios = 500
	}
	afterScenarios := int(float64(opts.Scenarios) * fracAfter)
	beforeScenarios := opts.Scenarios - afterScenarios

	merged := &Result{Curves: make(map[string]*Curve, len(demands))}
	runPhase := func(t *topology.Topology, scenarios int, seedOffset int64) error {
		if scenarios <= 0 || t == nil {
			return nil
		}
		phaseOpts := opts
		phaseOpts.Scenarios = scenarios
		phaseOpts.Seed = opts.Seed + seedOffset
		res, err := Assess(t, demands, phaseOpts)
		if err != nil {
			return err
		}
		for k, c := range res.Curves {
			merged.Curves[k] = Merge(merged.Curves[k], c)
		}
		return nil
	}
	if err := runPhase(before, beforeScenarios, 0); err != nil {
		return nil, err
	}
	if err := runPhase(after, afterScenarios, 1_000_003); err != nil {
		return nil, err
	}
	return merged, nil
}
