// Incremental re-assessment: the ResultCache keeps each assessment's sampled
// failure states and per-scenario admitted-bandwidth columns, and uses the
// topology's mutation journal (topology.DeltaSince) to re-simulate only the
// scenarios a mutation actually dirties, splicing every other scenario's
// result from cache. Because scenario sampling is decomposable (one hash draw
// per (seed, scenario, link)), patching the touched links' bits in the cached
// states reproduces exactly the states a fresh SampleStates would draw — so a
// spliced assessment is byte-identical to a full recompute.
//
// Dirty rules per mutation class (see DESIGN.md §10 for the derivation):
//
//   - region add: nothing dirty — no link changed, routing unaffected.
//   - sampling change (FailProb, SRLG CutProb, Disabled toggle): redraw the
//     touched links' bits; a scenario is dirty only when a bit flips.
//   - capacity change on link L: dirty where L is up (a down link's capacity
//     cannot influence routing).
//   - link add: draw the new link's bits; dirty where the new link is up (a
//     down link carries nothing, so those scenarios splice).
//   - the forced all-up slot is re-simulated on every link-touching delta
//     (one scenario; not worth a finer rule).
package risk

import (
	"container/list"
	"fmt"
	"math"
	"strings"
	"sync"

	"entitlement/internal/flow"
	"entitlement/internal/topology"
)

// ResultCache caches full assessments — sampled states plus per-scenario
// results — keyed by (topology instance, demands, sampling options), and
// re-assesses incrementally after topology mutations. Wire it in through
// Options.Cache.
//
// The cache is safe for concurrent assess calls, but like every epoch-keyed
// cache it assumes the topology is not mutated concurrently with an
// assessment.
type ResultCache struct {
	mu    sync.Mutex
	max   int
	lru   *list.List // front = most recently used; values are *resultEntry
	byKey map[string]*list.Element
}

// resultEntry is one cached assessment: the exact sampled states it was
// computed from (patched in place on delta re-assessment) and the
// per-demand, per-slot admitted-bandwidth columns.
type resultEntry struct {
	key    string
	topo   *topology.Topology
	epoch  uint64
	offset int
	total  int
	states []*topology.FailureState
	cols   [][]float64
}

// DefaultResultCacheEntries bounds the cache when NewResultCache is given a
// non-positive max: one entry per distinct in-flight batch shape is plenty
// for a granting service, and entries hold O(scenarios × links) state.
const DefaultResultCacheEntries = 64

// NewResultCache creates a result cache holding at most max assessments
// (<= 0 means DefaultResultCacheEntries). Least-recently-used entries are
// evicted.
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = DefaultResultCacheEntries
	}
	return &ResultCache{max: max, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// Len reports the number of cached assessments (for tests and stats).
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// assessKey renders the identity of an assessment: topology instance,
// sampling and allocation options, and the full demand list. Workers is
// excluded — worker count never changes results.
func assessKey(topo *topology.Topology, demands []flow.Demand, opts Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%p|%d|%t|%d|%d|%x|", topo, opts.Scenarios, opts.SkipAllUp,
		opts.Seed, opts.Alloc.Rounds, math.Float64bits(opts.Alloc.MaxPathLen))
	for _, d := range demands {
		fmt.Fprintf(&b, "%s\x00%s\x00%s\x00%x\x00%d\x1f", d.Key, d.Src, d.Dst,
			math.Float64bits(d.Rate), d.Class)
	}
	return b.String()
}

// assess is the Options.Cache entry point, reached from Assess with
// Scenarios defaulted and demands validated.
func (c *ResultCache) assess(topo *topology.Topology, demands []flow.Demand, opts Options) (*Result, error) {
	// The cache owns sampling and re-entry: inner assessments must not
	// consult caller-supplied state sources or recurse into the cache.
	opts.Cache = nil
	opts.States = nil
	opts.StatesFor = nil
	key := assessKey(topo, demands, opts)

	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		mResultCacheMisses.Inc()
		return c.fillLocked(key, topo, demands, opts), nil
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*resultEntry)
	now := topo.Epoch()
	if e.epoch == now {
		// Pure replay: nothing changed, nothing is routed.
		mResultCacheHits.Inc()
		mDeltaSpliced.Add(int64(e.total))
		return buildResult(demands, e.cols, 0, e.total), nil
	}
	delta, ok := topo.DeltaSince(e.epoch)
	if !ok {
		// Journal truncated past the entry's epoch: recompute wholesale.
		mResultCacheMisses.Inc()
		c.removeLocked(el)
		return c.fillLocked(key, topo, demands, opts), nil
	}
	mResultCacheHits.Inc()
	if !delta.TouchesLinks() {
		// Region-only (or empty) delta: every scenario splices.
		e.epoch = now
		mDeltaSpliced.Add(int64(e.total))
		return buildResult(demands, e.cols, 0, e.total), nil
	}
	dirty := patchStates(topo, e, delta, opts.Seed)
	slots := make([]int, 0, len(dirty))
	for slot, d := range dirty {
		if d {
			slots = append(slots, slot)
		}
	}
	evalSlots(topo, demands, opts, e.states, e.cols, e.offset, slots)
	e.epoch = now
	mDeltaResimulated.Add(int64(len(slots)))
	mDeltaSpliced.Add(int64(e.total - len(slots)))
	return buildResult(demands, e.cols, len(slots), e.total-len(slots)), nil
}

// fillLocked runs a full assessment, caches it, and returns the result.
func (c *ResultCache) fillLocked(key string, topo *topology.Topology, demands []flow.Demand, opts Options) *Result {
	epoch := topo.Epoch()
	states := SampleStates(topo, opts)
	offset, total := slotLayout(opts)
	cols := newColumns(len(demands), total)
	evalSlots(topo, demands, opts, states, cols, offset, allSlots(total))
	e := &resultEntry{
		key: key, topo: topo, epoch: epoch,
		offset: offset, total: total, states: states, cols: cols,
	}
	c.byKey[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		c.removeLocked(c.lru.Back())
		mResultCacheEvictions.Inc()
	}
	mDeltaResimulated.Add(int64(total))
	return buildResult(demands, cols, total, 0)
}

func (c *ResultCache) removeLocked(el *list.Element) {
	delete(c.byKey, el.Value.(*resultEntry).key)
	c.lru.Remove(el)
}

// patchStates updates the entry's cached failure states for the mutation
// delta and returns the per-slot dirty mask. Untouched links keep their
// original bits, which equal a fresh draw's bits because the per-link hash
// inputs are unchanged; touched links are redrawn with LinkDownAt, the same
// predicate SampleFailureAt evaluates.
func patchStates(topo *topology.Topology, e *resultEntry, delta *topology.Delta, seed int64) []bool {
	dirty := make([]bool, e.total)
	if e.offset == 1 {
		// The forced all-up state is recomputed by evalSlots from the live
		// topology; any link-touching delta may change it (Disabled bits) or
		// its routing (capacities, new links).
		dirty[0] = true
	}
	nl := topo.NumLinks()
	for _, st := range e.states {
		for len(st.Down) < nl {
			st.Down = append(st.Down, false)
		}
	}
	for _, id := range delta.AddedLinks {
		for j, st := range e.states {
			down := topo.LinkDownAt(seed, j, id)
			st.Down[id] = down
			if !down {
				dirty[j+e.offset] = true
			}
		}
	}
	for _, id := range delta.SampleTouched {
		for j, st := range e.states {
			down := topo.LinkDownAt(seed, j, id)
			if down != st.Down[id] {
				st.Down[id] = down
				dirty[j+e.offset] = true
			}
		}
	}
	for _, id := range delta.CapTouched {
		for j, st := range e.states {
			if !st.Down[id] {
				dirty[j+e.offset] = true
			}
		}
	}
	return dirty
}
