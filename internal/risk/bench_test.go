package risk

import (
	"testing"

	"entitlement/internal/flow"
	"entitlement/internal/topology"
)

// benchAssessSetup builds the workload every Assess benchmark shares: the
// default 12-region backbone, 8 hose-scale demands, 400 scenarios.
func benchAssessSetup(b *testing.B) (*topology.Topology, []flow.Demand, Options) {
	b.Helper()
	topo, err := topology.Backbone(topology.DefaultBackboneOptions())
	if err != nil {
		b.Fatal(err)
	}
	regions := topo.RegionsSorted()
	demands := make([]flow.Demand, 0, 8)
	for i := 0; i < 8; i++ {
		src := regions[i%len(regions)]
		dst := regions[(i+3)%len(regions)]
		demands = append(demands, flow.Demand{
			Key: string(src) + ">" + string(dst) + string(rune('a'+i)),
			Src: src, Dst: dst, Rate: 400e9, Class: i % 4,
		})
	}
	return topo, demands, Options{Scenarios: 400, Seed: 3, Workers: 1}
}

// BenchmarkAssessCold is the from-scratch Monte-Carlo pass: sample every
// scenario, route every scenario.
func BenchmarkAssessCold(b *testing.B) {
	topo, demands, opts := benchAssessSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assess(topo, demands, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssessWarm replays an unchanged cached assessment: no sampling,
// no routing, result rebuilt from cached columns.
func BenchmarkAssessWarm(b *testing.B) {
	topo, demands, opts := benchAssessSetup(b)
	opts.Cache = NewResultCache(2)
	if _, err := Assess(topo, demands, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Assess(topo, demands, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Resimulated != 0 {
			b.Fatalf("warm replay re-simulated %d scenarios", res.Resimulated)
		}
	}
}

// BenchmarkAssessDelta re-assesses after a failure-probability change on
// ~10% of links: only the scenarios whose sampled bits flipped are routed,
// the rest splice from cache. This is the CI bench-delta leg's benchmark;
// TestDeltaSpeedup asserts the >= 10x bar.
func BenchmarkAssessDelta(b *testing.B) {
	topo, demands, opts := benchAssessSetup(b)
	opts.Cache = NewResultCache(2)
	if _, err := Assess(topo, demands, opts); err != nil {
		b.Fatal(err)
	}
	nTouch := topo.NumLinks() / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := 0.002 + 0.001*float64(i%8+1)
		for l := 0; l < nTouch; l++ {
			if err := topo.SetLinkFailProb((i*nTouch+l)%topo.NumLinks(), p); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		res, err := Assess(topo, demands, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Spliced == 0 {
			b.Fatal("delta pass spliced nothing")
		}
	}
}
