package risk

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"entitlement/internal/flow"
	"entitlement/internal/topology"
)

func TestCurveBasics(t *testing.T) {
	// 10 scenarios: admitted 0..90.
	samples := make([]float64, 10)
	for i := range samples {
		samples[i] = float64(i * 10)
	}
	c := NewCurve(samples)
	if c.Scenarios() != 10 {
		t.Errorf("Scenarios = %d", c.Scenarios())
	}
	if got := c.AvailabilityAt(0); got != 1 {
		t.Errorf("AvailabilityAt(0) = %v, want 1", got)
	}
	if got := c.AvailabilityAt(50); got != 0.5 {
		t.Errorf("AvailabilityAt(50) = %v, want 0.5", got)
	}
	if got := c.AvailabilityAt(91); got != 0 {
		t.Errorf("AvailabilityAt(91) = %v, want 0", got)
	}
}

func TestCurveRateAtAvailability(t *testing.T) {
	samples := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	c := NewCurve(samples)
	// 90% of scenarios admit >= 20 (9 of 10).
	if got := c.RateAtAvailability(0.9); got != 20 {
		t.Errorf("RateAtAvailability(0.9) = %v, want 20", got)
	}
	if got := c.RateAtAvailability(1.0); got != 10 {
		t.Errorf("RateAtAvailability(1.0) = %v, want 10", got)
	}
	if got := c.RateAtAvailability(0.5); got != 60 {
		t.Errorf("RateAtAvailability(0.5) = %v, want 60", got)
	}
	if got := c.RateAtAvailability(0); got != 0 {
		t.Errorf("RateAtAvailability(0) = %v, want 0", got)
	}
}

func TestCurveEmpty(t *testing.T) {
	c := NewCurve(nil)
	if c.AvailabilityAt(1) != 0 || c.RateAtAvailability(0.5) != 0 {
		t.Error("empty curve should return zeros")
	}
}

// Property: RateAtAvailability is non-increasing in the SLO, and
// AvailabilityAt(RateAtAvailability(slo)) >= slo.
func TestCurveConsistencyProperty(t *testing.T) {
	f := func(raw []uint16, sloRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		c := NewCurve(samples)
		slo := 0.05 + 0.9*float64(sloRaw)/255
		r1 := c.RateAtAvailability(slo)
		r2 := c.RateAtAvailability(math.Min(slo+0.05, 1))
		if r2 > r1+1e-9 {
			return false
		}
		return c.AvailabilityAt(r1) >= slo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// reliableDiamond builds A->B->D / A->C->D with configurable failure
// probability on the top path's first hop.
func reliableDiamond(failAB float64) *topology.Topology {
	topo := topology.New()
	topo.AddLink("A", "B", 100, failAB, -1)
	topo.AddLink("B", "D", 100, 0, -1)
	topo.AddLink("A", "C", 50, 0, -1)
	topo.AddLink("C", "D", 50, 0, -1)
	return topo
}

func TestAssessAllUpOnly(t *testing.T) {
	topo := reliableDiamond(0)
	d := flow.Demand{Key: "p", Src: "A", Dst: "D", Rate: 120, Class: 0}
	res, err := Assess(topo, []flow.Demand{d}, Options{Scenarios: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Curves["p"]
	if c == nil {
		t.Fatal("no curve")
	}
	// No failures possible: every scenario admits 120 (two paths 100+50 > 120).
	if got := c.RateAtAvailability(1); math.Abs(got-120) > 1e-6 {
		t.Errorf("guaranteed rate = %v, want 120", got)
	}
	if !res.MeetsSLO(d, 0.9999) {
		t.Error("perfect network fails SLO")
	}
}

func TestAssessDegradedUnderFailures(t *testing.T) {
	// A->B fails 30% of the time; demand of 100 only fits when it's up
	// (fallback path has 50).
	topo := reliableDiamond(0.3)
	d := flow.Demand{Key: "p", Src: "A", Dst: "D", Rate: 100, Class: 0}
	res, err := Assess(topo, []flow.Demand{d}, Options{Scenarios: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Curves["p"]
	availFull := c.AvailabilityAt(100)
	if availFull < 0.6 || availFull > 0.8 {
		t.Errorf("availability of full rate = %v, want ~0.7", availFull)
	}
	// 50 is always available via the bottom path.
	if got := c.AvailabilityAt(50); got < 0.999 {
		t.Errorf("availability of 50 = %v, want 1", got)
	}
	// At a 99% SLO only the failure-proof 50 can be guaranteed.
	if got := c.RateAtAvailability(0.99); math.Abs(got-50) > 1e-6 {
		t.Errorf("rate at 0.99 = %v, want 50", got)
	}
	if res.MeetsSLO(d, 0.99) {
		t.Error("100 at SLO 0.99 should not be met")
	}
	if !res.MeetsSLO(flow.Demand{Key: "p", Src: "A", Dst: "D", Rate: 50, Class: 0}, 0.99) {
		t.Error("50 at SLO 0.99 should be met")
	}
}

func TestAssessPriorityCompetition(t *testing.T) {
	// Two demands share one 100-capacity path; the premium class keeps its
	// full rate in every scenario, the low class gets the leftovers.
	topo := topology.New()
	topo.AddLink("A", "B", 100, 0, -1)
	demands := []flow.Demand{
		{Key: "premium", Src: "A", Dst: "B", Rate: 70, Class: 0},
		{Key: "basic", Src: "A", Dst: "B", Rate: 70, Class: 3},
	}
	res, err := Assess(topo, demands, Options{Scenarios: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.GuaranteedRate("premium", 1); math.Abs(got-70) > 1e-6 {
		t.Errorf("premium guaranteed = %v, want 70", got)
	}
	if got := res.GuaranteedRate("basic", 1); math.Abs(got-30) > 1e-6 {
		t.Errorf("basic guaranteed = %v, want 30", got)
	}
}

func TestAssessDuplicateKey(t *testing.T) {
	topo := topology.New()
	topo.AddLink("A", "B", 100, 0, -1)
	demands := []flow.Demand{
		{Key: "d", Src: "A", Dst: "B", Rate: 10, Class: 0},
		{Key: "d", Src: "A", Dst: "B", Rate: 20, Class: 1},
	}
	if _, err := Assess(topo, demands, Options{Scenarios: 1}); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestAssessEmptyDemands(t *testing.T) {
	topo := topology.New()
	topo.AddLink("A", "B", 100, 0, -1)
	res, err := Assess(topo, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 0 {
		t.Error("empty assessment has curves")
	}
	if res.GuaranteedRate("nope", 0.5) != 0 {
		t.Error("unknown key should be 0")
	}
	if res.MeetsSLO(flow.Demand{Key: "nope", Rate: 1}, 0.5) {
		t.Error("unknown key should fail SLO")
	}
}

func TestAssessDeterministicWithSeed(t *testing.T) {
	topo := reliableDiamond(0.2)
	d := []flow.Demand{{Key: "p", Src: "A", Dst: "D", Rate: 100, Class: 0}}
	a, _ := Assess(topo, d, Options{Scenarios: 100, Seed: 5})
	b, _ := Assess(topo, d, Options{Scenarios: 100, Seed: 5})
	if a.Curves["p"].RateAtAvailability(0.9) != b.Curves["p"].RateAtAvailability(0.9) {
		t.Error("same seed produced different curves")
	}
}

// Property: a curve's guaranteed rate at any SLO never exceeds the request,
// and adding failures can only lower availability.
func TestAssessMonotoneInFailuresProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw) + 1
		reliable := reliableDiamond(0.05)
		flaky := reliableDiamond(0.5)
		d := []flow.Demand{{Key: "p", Src: "A", Dst: "D", Rate: 100, Class: 0}}
		opts := Options{Scenarios: 300, Seed: seed}
		ra, err1 := Assess(reliable, d, opts)
		rb, err2 := Assess(flaky, d, opts)
		if err1 != nil || err2 != nil {
			return false
		}
		aRel := ra.Curves["p"].AvailabilityAt(100)
		aFlaky := rb.Curves["p"].AvailabilityAt(100)
		return aRel >= aFlaky
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestCurveRelativeToleranceTbps is the regression test for the former
// absolute 1e-9 epsilon, which was meaningless against 1e11-scale
// bandwidths: a Tbps-scale sample carrying ordinary float accumulation
// error (well under one bit/s relative) must still count as meeting the
// nominal rate.
func TestCurveRelativeToleranceTbps(t *testing.T) {
	const rate = 1e12 // 1 Tbps
	// Admitted samples as a water-filling loop produces them: summed in
	// pieces, ~0.5 bits/s under the nominal rate (5e-13 relative error —
	// far above the old 1e-9 absolute window, far below any real shortfall).
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = rate - 0.5
	}
	c := NewCurve(samples)
	if got := c.AvailabilityAt(rate); got != 1 {
		t.Errorf("AvailabilityAt(1 Tbps) = %v, want 1 (0.5 bit/s accumulation error must be tolerated)", got)
	}
	res := &Result{Curves: map[string]*Curve{"p": c}}
	d := flow.Demand{Key: "p", Rate: rate}
	if !res.MeetsSLO(d, 0.99) {
		t.Error("MeetsSLO rejected a Tbps demand over float accumulation noise")
	}
	// A genuine shortfall at the same scale must NOT be absorbed.
	short := make([]float64, 100)
	for i := range short {
		short[i] = 0.999 * rate // 1 Gbps short
	}
	cs := NewCurve(short)
	if got := cs.AvailabilityAt(rate); got != 0 {
		t.Errorf("AvailabilityAt over a 1 Gbps shortfall = %v, want 0", got)
	}
	if (&Result{Curves: map[string]*Curve{"p": cs}}).MeetsSLO(d, 0.99) {
		t.Error("MeetsSLO accepted a 1 Gbps shortfall at Tbps scale")
	}
}

// TestAssessWorkerCountInvariance asserts the tentpole determinism
// guarantee: the same seed produces byte-identical curve samples for every
// worker count, because each scenario owns a deterministic RNG and output
// slot.
func TestAssessWorkerCountInvariance(t *testing.T) {
	opts := topology.DefaultBackboneOptions()
	opts.Regions = 8
	opts.Chords = 6
	topo, err := topology.Backbone(opts)
	if err != nil {
		t.Fatal(err)
	}
	regions := topo.RegionsSorted()
	var demands []flow.Demand
	for i := 0; i < 12; i++ {
		src := regions[i%len(regions)]
		dst := regions[(i+3)%len(regions)]
		demands = append(demands, flow.Demand{
			Key: string(src) + ">" + string(dst) + string(rune('a'+i)),
			Src: src, Dst: dst, Rate: 300e9, Class: i % 4,
		})
	}
	for _, seed := range []int64{1, 42} {
		var ref *Result
		for _, workers := range []int{1, 2, 8} {
			res, err := Assess(topo, demands, Options{Scenarios: 60, Seed: seed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			for _, d := range demands {
				want := ref.Curves[d.Key].Samples()
				got := res.Curves[d.Key].Samples()
				if len(want) != len(got) {
					t.Fatalf("seed %d workers %d: sample count %d != %d", seed, workers, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("seed %d workers %d: %s sample %d: %v != %v (not byte-identical)",
							seed, workers, d.Key, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestAssessConcurrentSharedTopology exercises concurrent Assess calls on
// one shared *topology.Topology (each itself running a multi-worker pool) —
// the pattern approval uses when assessing realizations; run under -race.
func TestAssessConcurrentSharedTopology(t *testing.T) {
	opts := topology.DefaultBackboneOptions()
	opts.Regions = 6
	topo, err := topology.Backbone(opts)
	if err != nil {
		t.Fatal(err)
	}
	regions := topo.RegionsSorted()
	demands := []flow.Demand{
		{Key: "a", Src: regions[0], Dst: regions[3], Rate: 200e9, Class: 0},
		{Key: "b", Src: regions[1], Dst: regions[4], Rate: 200e9, Class: 2},
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = Assess(topo, demands, Options{Scenarios: 40, Seed: int64(g), Workers: 4})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

func TestCurveSamplesAndMerge(t *testing.T) {
	a := NewCurve([]float64{1, 3})
	b := NewCurve([]float64{2, 4})
	s := a.Samples()
	s[0] = 99 // must not alias internal state
	if a.Samples()[0] != 1 {
		t.Error("Samples aliases internal storage")
	}
	m := Merge(a, b, nil)
	if m.Scenarios() != 4 {
		t.Errorf("merged scenarios = %d", m.Scenarios())
	}
	if got := m.RateAtAvailability(1); got != 1 {
		t.Errorf("merged min = %v", got)
	}
	if got := m.AvailabilityAt(3); got != 0.5 {
		t.Errorf("merged availability at 3 = %v", got)
	}
}

func TestAssessPhasedNewLinkImprovesAvailability(t *testing.T) {
	// Before: only the flaky top path can carry the demand. After a planned
	// augmentation the bottom path is upgraded, so the post-change phase
	// admits the full rate reliably.
	before := reliableDiamond(0.3)
	after := topology.New()
	after.AddLink("A", "B", 100, 0.3, -1)
	after.AddLink("B", "D", 100, 0, -1)
	after.AddLink("A", "C", 100, 0, -1) // upgraded from 50
	after.AddLink("C", "D", 100, 0, -1)

	d := []flow.Demand{{Key: "p", Src: "A", Dst: "D", Rate: 100, Class: 0}}
	opts := Options{Scenarios: 1000, Seed: 11}

	beforeOnly, err := AssessPhased(before, after, 0, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	half, err := AssessPhased(before, after, 0.5, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	afterOnly, err := AssessPhased(before, after, 1, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	aBefore := beforeOnly.Curves["p"].AvailabilityAt(100)
	aHalf := half.Curves["p"].AvailabilityAt(100)
	aAfter := afterOnly.Curves["p"].AvailabilityAt(100)
	if !(aBefore < aHalf && aHalf < aAfter) {
		t.Errorf("availabilities not ordered: before=%v half=%v after=%v", aBefore, aHalf, aAfter)
	}
	if aAfter < 0.99 {
		t.Errorf("post-change availability = %v, want ~1", aAfter)
	}
}

func TestAssessPhasedValidation(t *testing.T) {
	topo := reliableDiamond(0)
	d := []flow.Demand{{Key: "p", Src: "A", Dst: "D", Rate: 10, Class: 0}}
	if _, err := AssessPhased(topo, topo, -0.1, d, Options{Scenarios: 5}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := AssessPhased(topo, topo, 1.5, d, Options{Scenarios: 5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestAssessPrecomputedStatesAndPool pins the byte-identity contract of the
// granting service's scenario cache: an assessment fed SampleStates output
// plus a recycled RunnerPool returns exactly the samples a plain assessment
// draws itself, and the StatesFor hook is equivalent to passing States.
func TestAssessPrecomputedStatesAndPool(t *testing.T) {
	topo := topology.FigureSix()
	regions := topo.RegionsSorted()
	var demands []flow.Demand
	for i := 0; i < 8; i++ {
		src := regions[i%len(regions)]
		dst := regions[(i+2)%len(regions)]
		demands = append(demands, flow.Demand{
			Key: string(src) + ">" + string(dst) + string(rune('a'+i)),
			Src: src, Dst: dst, Rate: 400e9, Class: i % 3,
		})
	}
	base := Options{Scenarios: 50, Seed: 11, Workers: 2}
	ref, err := Assess(topo, demands, base)
	if err != nil {
		t.Fatal(err)
	}

	states := SampleStates(topo, base)
	if len(states) != base.Scenarios {
		t.Fatalf("SampleStates returned %d states, want %d", len(states), base.Scenarios)
	}
	pool := flow.NewRunnerPool(topo, 8)
	withStates := base
	withStates.States = states
	withStates.Pool = pool
	var hookCalls int
	withHook := base
	withHook.Pool = pool
	withHook.StatesFor = func(tp *topology.Topology, o Options) []*topology.FailureState {
		hookCalls++
		if tp != topo || o.Seed != base.Seed || o.Scenarios != base.Scenarios {
			t.Errorf("StatesFor saw (%p, seed %d, scenarios %d)", tp, o.Seed, o.Scenarios)
		}
		return states
	}
	for name, opts := range map[string]Options{"states": withStates, "hook": withHook} {
		// Run twice so the second pass reuses pooled runners.
		for pass := 0; pass < 2; pass++ {
			res, err := Assess(topo, demands, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range demands {
				want := ref.Curves[d.Key].Samples()
				got := res.Curves[d.Key].Samples()
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s pass %d: %s sample %d: %v != %v", name, pass, d.Key, i, got[i], want[i])
					}
				}
			}
		}
	}
	if hookCalls != 2 {
		t.Errorf("StatesFor called %d times, want 2", hookCalls)
	}
	if pool.Idle() == 0 {
		t.Error("pool retained no runners after assessments")
	}

	// A pool bound to another topology is ignored, not misused.
	other := topology.FigureSix()
	foreign := base
	foreign.Pool = flow.NewRunnerPool(other, 4)
	res, err := Assess(topo, demands, foreign)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range demands {
		want := ref.Curves[d.Key].Samples()
		got := res.Curves[d.Key].Samples()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("foreign pool: %s sample %d: %v != %v", d.Key, i, got[i], want[i])
			}
		}
	}
	if foreign.Pool.Idle() != 0 {
		t.Errorf("foreign pool gained %d runners", foreign.Pool.Idle())
	}

	// Mismatched States length is rejected loudly.
	bad := base
	bad.States = states[:10]
	if _, err := Assess(topo, demands, bad); err == nil {
		t.Error("short States slice accepted")
	}
}

func TestSampleStatesDefaultScenarios(t *testing.T) {
	// Zero Scenarios falls back to the same 500-draw default Assess uses.
	topo := reliableDiamond(0)
	states := SampleStates(topo, Options{Seed: 3})
	if len(states) != 500 {
		t.Fatalf("default SampleStates drew %d scenarios, want 500", len(states))
	}
	for i, s := range states {
		if s == nil {
			t.Fatalf("scenario %d is nil", i)
		}
	}
}
