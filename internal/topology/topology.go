// Package topology models the WAN backbone the entitlement pipeline plans
// against: regions (PoPs/DCs), directed capacitated links, and shared-risk
// link groups (SRLGs) representing fiber paths whose cut takes down every
// member link at once (§4.3's "possible network failures, e.g. fiber cuts").
//
// The package also provides synthetic backbone builders, since the paper's
// production topology is proprietary: a heterogeneous ring-plus-chords
// backbone generator and the five-region example of Figure 6.
package topology

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Region identifies a network region (a PoP site or data center).
type Region string

// Link is a directed capacitated edge between two regions.
type Link struct {
	ID       int // index into Topology.Links
	Src, Dst Region
	Capacity float64 // bits per second
	Metric   float64 // routing weight (latency-like); must be > 0
	// FailProb is the probability the link is independently down in a
	// sampled failure scenario (hardware failure, maintenance).
	FailProb float64
	// SRLG is the shared-risk link group (fiber) this link rides on, or -1.
	// A fiber cut fails every link in the group simultaneously.
	SRLG int
	// Disabled marks the link administratively down (a known fiber cut
	// awaiting repair): it is down in every failure scenario including the
	// forced all-up one. Toggled via SetLinkDisabled.
	Disabled bool
}

// SRLG is a shared-risk link group with its own cut probability.
type SRLG struct {
	ID      int
	CutProb float64
	Members []int // link IDs
}

// Topology is a directed multigraph over regions.
type Topology struct {
	Regions []Region
	Links   []Link
	SRLGs   []SRLG

	regionIdx map[Region]int
	adjacency map[Region][]int // outgoing link IDs

	// dense caches the CSR adjacency; rebuilt lazily after structural
	// mutations (AddRegion/AddLink). Safe for concurrent readers.
	dense   atomic.Pointer[Dense]
	denseMu sync.Mutex

	// epoch counts mutations through the package API (AddRegion/AddLink,
	// EnsureSRLG, SetCapacity, SetLinkFailProb, SetLinkDisabled). Caches
	// keyed on (instance, epoch) — the granting service's scenario and
	// result caches — stay coherent without hashing the whole graph. Direct
	// writes through Link() pointers bypass it.
	epoch atomic.Uint64

	// journal records which links each epoch bump touched, so caches can
	// invalidate incrementally (DeltaSince) instead of flushing wholesale.
	journalMu   sync.Mutex
	journal     []journalEntry
	journalBase uint64 // DeltaSince can answer for any since >= journalBase

	// srlgIdx maps SRLG ID → index into SRLGs, for O(1) lookups in the
	// per-scenario sampling hot path.
	srlgIdx map[int]int
}

// Epoch returns the topology's mutation counter: any change made through the
// package API bumps it, so a cache entry computed at Epoch e is valid while
// Epoch() still returns e on the same instance.
func (t *Topology) Epoch() uint64 { return t.epoch.Load() }

// --- Mutation journal -----------------------------------------------------

// MutationKind classifies one journaled API mutation; Delta folds kinds into
// the two properties caches care about (sampling inputs vs capacities).
type MutationKind uint8

// Journaled mutation kinds.
const (
	MutationRegionAdd MutationKind = iota // new region, no links touched
	MutationLinkAdd                       // new link (sampling + routing)
	MutationCapacity                      // capacity change on existing link
	MutationFailProb                      // independent failure prob change
	MutationSRLGProb                      // SRLG cut prob change (touches members)
	MutationDisable                       // administrative down/up toggle
)

// journalEntry is one epoch bump: the kind and the links it touched.
type journalEntry struct {
	epoch uint64
	kind  MutationKind
	links []int
}

// maxJournal bounds the journal; older entries are dropped and journalBase
// advances, turning DeltaSince for pre-base epochs into a full-recompute
// signal rather than unbounded memory.
const maxJournal = 4096

// record journals one mutation under the epoch the bump just produced.
func (t *Topology) record(kind MutationKind, links ...int) {
	t.journalMu.Lock()
	if len(t.journal) >= maxJournal {
		drop := len(t.journal) / 2
		t.journalBase = t.journal[drop-1].epoch
		t.journal = append(t.journal[:0:0], t.journal[drop:]...)
	}
	t.journal = append(t.journal, journalEntry{epoch: t.epoch.Load(), kind: kind, links: links})
	t.journalMu.Unlock()
}

// Delta summarizes every journaled mutation in the half-open epoch span
// (From, To]: which links' failure-sampling inputs changed, which existing
// links' capacities changed, which links are new, and whether regions were
// added. It is the unit the risk result cache invalidates by.
type Delta struct {
	From, To uint64
	// AddedRegions reports region additions (no link is touched; routing
	// outcomes for existing demands are unaffected).
	AddedRegions bool
	// AddedLinks are links created in the span. Their sampled state must be
	// drawn fresh; scenarios where a new link is up must be re-simulated.
	AddedLinks []int
	// CapTouched are pre-existing links whose capacity changed. Scenarios
	// where such a link is up must be re-simulated; scenarios where it is
	// down are unaffected (a down link's capacity is irrelevant).
	CapTouched []int
	// SampleTouched are pre-existing links whose failure-sampling inputs
	// changed (FailProb, their SRLG's cut probability, or the Disabled
	// flag). Their down-bits must be redrawn; only scenarios where a bit
	// actually flips need re-simulation.
	SampleTouched []int
}

// Empty reports whether the span contained no effective mutations.
func (d *Delta) Empty() bool {
	return d == nil || (!d.AddedRegions && len(d.AddedLinks) == 0 &&
		len(d.CapTouched) == 0 && len(d.SampleTouched) == 0)
}

// TouchesLinks reports whether any link was added or modified in the span.
// Region-only deltas leave every existing assessment and decision intact.
func (d *Delta) TouchesLinks() bool {
	return d != nil && (len(d.AddedLinks) > 0 || len(d.CapTouched) > 0 || len(d.SampleTouched) > 0)
}

// DeltaSince returns the merged mutation delta for the span (since, Epoch()].
// ok is false when the journal no longer covers the span (the caller must
// fall back to a full recompute) or since is ahead of the current epoch.
// An up-to-date since returns an empty delta with ok true.
func (t *Topology) DeltaSince(since uint64) (*Delta, bool) {
	now := t.epoch.Load()
	if since > now {
		return nil, false
	}
	t.journalMu.Lock()
	defer t.journalMu.Unlock()
	if since < t.journalBase {
		return nil, false
	}
	d := &Delta{From: since, To: now}
	if since == now {
		return d, true
	}
	added := make(map[int]bool)
	cap := make(map[int]bool)
	sample := make(map[int]bool)
	for _, e := range t.journal {
		if e.epoch <= since {
			continue
		}
		switch e.kind {
		case MutationRegionAdd:
			d.AddedRegions = true
		case MutationLinkAdd:
			for _, id := range e.links {
				added[id] = true
			}
		case MutationCapacity:
			for _, id := range e.links {
				if !added[id] {
					cap[id] = true
				}
			}
		case MutationFailProb, MutationSRLGProb, MutationDisable:
			for _, id := range e.links {
				if !added[id] {
					sample[id] = true
				}
			}
		}
	}
	d.AddedLinks = sortedKeys(added)
	d.CapTouched = sortedKeys(cap)
	d.SampleTouched = sortedKeys(sample)
	return d, true
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Dense is a CSR-style view of the topology over dense region indexes: the
// outgoing link IDs of region index r are OutLinks[OutStart[r]:OutStart[r+1]],
// in link-insertion order (matching Outgoing, so path tie-breaking is
// unchanged). SrcIdx/DstIdx give each link's endpoint region indexes without
// map lookups. The flow engine's hot loops run entirely on this view.
//
// A Dense snapshot is immutable; structural mutations of the Topology produce
// a fresh snapshot on the next Dense() call.
type Dense struct {
	OutStart []int32 // len NumRegions+1; offsets into OutLinks
	OutLinks []int32 // link IDs grouped by source region index
	SrcIdx   []int32 // per link ID: source region index
	DstIdx   []int32 // per link ID: destination region index
}

// Dense returns the CSR adjacency snapshot, building it on first use and
// after structural changes. Concurrent callers are safe; the returned value
// must be treated as read-only.
func (t *Topology) Dense() *Dense {
	if d := t.dense.Load(); d != nil {
		return d
	}
	t.denseMu.Lock()
	defer t.denseMu.Unlock()
	if d := t.dense.Load(); d != nil {
		return d
	}
	d := &Dense{
		OutStart: make([]int32, len(t.Regions)+1),
		OutLinks: make([]int32, len(t.Links)),
		SrcIdx:   make([]int32, len(t.Links)),
		DstIdx:   make([]int32, len(t.Links)),
	}
	for i := range t.Links {
		l := &t.Links[i]
		d.SrcIdx[i] = int32(t.regionIdx[l.Src])
		d.DstIdx[i] = int32(t.regionIdx[l.Dst])
		d.OutStart[d.SrcIdx[i]+1]++
	}
	for r := 0; r < len(t.Regions); r++ {
		d.OutStart[r+1] += d.OutStart[r]
	}
	// Fill per-region link lists in insertion order (link IDs are assigned
	// in insertion order, so a forward scan preserves it).
	fill := make([]int32, len(t.Regions))
	copy(fill, d.OutStart[:len(t.Regions)])
	for i := range t.Links {
		s := d.SrcIdx[i]
		d.OutLinks[fill[s]] = int32(i)
		fill[s]++
	}
	t.dense.Store(d)
	return d
}

// invalidateDense drops the cached CSR snapshot after a structural change.
func (t *Topology) invalidateDense() {
	t.dense.Store(nil)
	t.epoch.Add(1)
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		regionIdx: make(map[Region]int),
		adjacency: make(map[Region][]int),
		srlgIdx:   make(map[int]int),
	}
}

// AddRegion registers a region. Adding an existing region is a no-op.
func (t *Topology) AddRegion(r Region) {
	if _, ok := t.regionIdx[r]; ok {
		return
	}
	t.regionIdx[r] = len(t.Regions)
	t.Regions = append(t.Regions, r)
	t.invalidateDense()
	t.record(MutationRegionAdd)
}

// HasRegion reports whether r is part of the topology.
func (t *Topology) HasRegion(r Region) bool {
	_, ok := t.regionIdx[r]
	return ok
}

// RegionIndex returns the dense index of r, or -1.
func (t *Topology) RegionIndex(r Region) int {
	if i, ok := t.regionIdx[r]; ok {
		return i
	}
	return -1
}

// AddLink adds a directed link and returns its ID. Unknown regions are
// registered automatically. Capacity must be positive; a non-positive metric
// defaults to 1.
func (t *Topology) AddLink(src, dst Region, capacity, failProb float64, srlg int) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("topology: self-loop link at %s", src)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("topology: non-positive capacity %v on %s->%s", capacity, src, dst)
	}
	if failProb < 0 || failProb >= 1 {
		return 0, fmt.Errorf("topology: failure probability %v out of [0,1) on %s->%s", failProb, src, dst)
	}
	t.AddRegion(src)
	t.AddRegion(dst)
	id := len(t.Links)
	t.Links = append(t.Links, Link{
		ID: id, Src: src, Dst: dst, Capacity: capacity, Metric: 1,
		FailProb: failProb, SRLG: srlg,
	})
	t.adjacency[src] = append(t.adjacency[src], id)
	t.invalidateDense()
	t.record(MutationLinkAdd, id)
	if srlg >= 0 {
		t.srlgByID(srlg).Members = append(t.srlgByID(srlg).Members, id)
	}
	return id, nil
}

// AddBidirectional adds a pair of opposite-direction links sharing capacity
// characteristics and the same SRLG, returning both IDs.
func (t *Topology) AddBidirectional(a, b Region, capacity, failProb float64, srlg int) (int, int, error) {
	ab, err := t.AddLink(a, b, capacity, failProb, srlg)
	if err != nil {
		return 0, 0, err
	}
	ba, err := t.AddLink(b, a, capacity, failProb, srlg)
	if err != nil {
		return 0, 0, err
	}
	return ab, ba, nil
}

// EnsureSRLG registers an SRLG with the given cut probability and returns its
// ID. Calling it again with the same ID updates the probability. The journal
// records the group's current members: their failure sampling changed.
func (t *Topology) EnsureSRLG(id int, cutProb float64) int {
	g := t.srlgByID(id)
	g.CutProb = cutProb
	t.epoch.Add(1) // changes failure sampling, not the dense adjacency
	t.record(MutationSRLGProb, append([]int(nil), g.Members...)...)
	return g.ID
}

func (t *Topology) srlgByID(id int) *SRLG {
	if t.srlgIdx == nil {
		t.srlgIdx = make(map[int]int)
		for i := range t.SRLGs {
			t.srlgIdx[t.SRLGs[i].ID] = i
		}
	}
	if i, ok := t.srlgIdx[id]; ok {
		return &t.SRLGs[i]
	}
	t.srlgIdx[id] = len(t.SRLGs)
	t.SRLGs = append(t.SRLGs, SRLG{ID: id})
	return &t.SRLGs[len(t.SRLGs)-1]
}

// srlgOf returns the SRLG struct for ID id, or nil.
func (t *Topology) srlgOf(id int) *SRLG {
	if t.srlgIdx != nil {
		if i, ok := t.srlgIdx[id]; ok {
			return &t.SRLGs[i]
		}
		return nil
	}
	for i := range t.SRLGs {
		if t.SRLGs[i].ID == id {
			return &t.SRLGs[i]
		}
	}
	return nil
}

// Outgoing returns the IDs of links leaving r.
func (t *Topology) Outgoing(r Region) []int { return t.adjacency[r] }

// Link returns the link with the given ID.
func (t *Topology) Link(id int) *Link { return &t.Links[id] }

// NumRegions returns the region count.
func (t *Topology) NumRegions() int { return len(t.Regions) }

// NumLinks returns the link count.
func (t *Topology) NumLinks() int { return len(t.Links) }

// TotalCapacity returns the sum of all link capacities.
func (t *Topology) TotalCapacity() float64 {
	s := 0.0
	for _, l := range t.Links {
		s += l.Capacity
	}
	return s
}

// Validate checks structural invariants: every link endpoint registered,
// SRLG membership consistent.
func (t *Topology) Validate() error {
	for _, l := range t.Links {
		if !t.HasRegion(l.Src) || !t.HasRegion(l.Dst) {
			return fmt.Errorf("topology: link %d references unknown region", l.ID)
		}
		if l.Capacity <= 0 {
			return fmt.Errorf("topology: link %d has capacity %v", l.ID, l.Capacity)
		}
	}
	for _, g := range t.SRLGs {
		for _, id := range g.Members {
			if id < 0 || id >= len(t.Links) {
				return fmt.Errorf("topology: SRLG %d references unknown link %d", g.ID, id)
			}
			if t.Links[id].SRLG != g.ID {
				return fmt.Errorf("topology: SRLG %d membership inconsistent for link %d", g.ID, id)
			}
		}
	}
	return nil
}

// FailureState marks which links are down in one failure scenario.
type FailureState struct {
	Down []bool // indexed by link ID
}

// AllUp returns a failure state with every link operational except those
// administratively disabled (a known fiber cut is down even in the forced
// no-random-failure scenario).
func (t *Topology) AllUp() *FailureState {
	s := &FailureState{Down: make([]bool, len(t.Links))}
	for i := range t.Links {
		if t.Links[i].Disabled {
			s.Down[i] = true
		}
	}
	return s
}

// IsUp reports whether link id is operational under s. A nil state means
// everything is up.
func (s *FailureState) IsUp(id int) bool {
	if s == nil {
		return true
	}
	return !s.Down[id]
}

// FailLink marks a single link down.
func (s *FailureState) FailLink(id int) { s.Down[id] = true }

// FailSRLG marks every member of the group down.
func (t *Topology) FailSRLG(s *FailureState, srlgID int) error {
	for _, g := range t.SRLGs {
		if g.ID == srlgID {
			for _, id := range g.Members {
				s.Down[id] = true
			}
			return nil
		}
	}
	return errors.New("topology: unknown SRLG")
}

// SampleFailures draws a random failure scenario: each SRLG is cut with its
// CutProb (taking down all members), and each remaining link fails
// independently with its FailProb.
func (t *Topology) SampleFailures(rng *rand.Rand) *FailureState {
	s := t.AllUp()
	for _, g := range t.SRLGs {
		if g.CutProb > 0 && rng.Float64() < g.CutProb {
			for _, id := range g.Members {
				s.Down[id] = true
			}
		}
	}
	for i := range t.Links {
		if s.Down[i] {
			continue
		}
		if p := t.Links[i].FailProb; p > 0 && rng.Float64() < p {
			s.Down[i] = true
		}
	}
	return s
}

// --- Decomposable scenario sampling ---------------------------------------
//
// SampleFailureAt draws scenario j's failure state with one independent hash
// draw per (seed, scenario, entity), instead of one sequential RNG stream per
// scenario. The draw for link i depends only on (seed, j, i, FailProb_i) and
// its SRLG's (seed, j, groupID, CutProb): mutating one link perturbs only that
// link's bit in each scenario, so a post-mutation re-assessment can redraw the
// touched bits, find the scenarios where a bit actually flipped, and splice
// every other scenario's result from cache — byte-identical to a full pass.

const (
	linkSalt = 0x6c696e6b5f646f77 // "link_dow"
	srlgSalt = 0x73726c675f637574 // "srlg_cut"
)

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// scenarioU01 maps (seed, scenario, salt, entity id) to a uniform in [0,1).
func scenarioU01(seed int64, scenario int, salt, id uint64) float64 {
	x := mix64(uint64(seed) ^ salt)
	x = mix64(x ^ mix64(uint64(scenario)+1))
	x = mix64(x ^ mix64(id+0x9e3779b97f4a7c15))
	return float64(x>>11) / (1 << 53)
}

// srlgCutAt reports whether SRLG g is cut in the given scenario.
func srlgCutAt(seed int64, scenario int, g *SRLG) bool {
	return g != nil && g.CutProb > 0 && scenarioU01(seed, scenario, srlgSalt, uint64(g.ID)) < g.CutProb
}

// LinkDownAt reports whether link id is down in sampled scenario `scenario`
// under the given seed: administratively disabled, cut with its SRLG, or
// independently failed. The result depends only on the link's own sampling
// inputs (Disabled, FailProb, its SRLG's CutProb), never on other links.
func (t *Topology) LinkDownAt(seed int64, scenario int, id int) bool {
	l := &t.Links[id]
	if l.Disabled {
		return true
	}
	if l.SRLG >= 0 && srlgCutAt(seed, scenario, t.srlgOf(l.SRLG)) {
		return true
	}
	return l.FailProb > 0 && scenarioU01(seed, scenario, linkSalt, uint64(id)) < l.FailProb
}

// SampleFailureAt draws the failure state of sampled scenario `scenario`
// under seed. Unlike SampleFailures it is random-access: scenario j's state
// is independent of how many scenarios were drawn before it, and of any links
// that do not belong to it.
func (t *Topology) SampleFailureAt(seed int64, scenario int) *FailureState {
	s := &FailureState{Down: make([]bool, len(t.Links))}
	for g := range t.SRLGs {
		if srlgCutAt(seed, scenario, &t.SRLGs[g]) {
			for _, id := range t.SRLGs[g].Members {
				s.Down[id] = true
			}
		}
	}
	for i := range t.Links {
		l := &t.Links[i]
		if l.Disabled {
			s.Down[i] = true
			continue
		}
		if s.Down[i] {
			continue
		}
		if l.FailProb > 0 && scenarioU01(seed, scenario, linkSalt, uint64(i)) < l.FailProb {
			s.Down[i] = true
		}
	}
	return s
}

// --- Synthetic builders -------------------------------------------------

// BackboneOptions configures the synthetic WAN generator.
type BackboneOptions struct {
	Regions    int     // number of regions (>= 3)
	Chords     int     // extra random bidirectional chords beyond the ring
	MinCapGbps float64 // per-direction capacity range
	MaxCapGbps float64
	LinkFail   float64 // per-link independent failure probability
	FiberCut   float64 // per-SRLG cut probability
	Seed       int64
}

// DefaultBackboneOptions mirrors a mid-size heterogeneous WAN: 12 regions,
// capacity spread of 4x between the smallest and largest links (the paper
// stresses WANs have "heterogeneous region capacities"), link availability
// around 99.8% and rarer fiber cuts.
func DefaultBackboneOptions() BackboneOptions {
	return BackboneOptions{
		Regions:    12,
		Chords:     10,
		MinCapGbps: 500,
		MaxCapGbps: 2000,
		LinkFail:   0.002,
		FiberCut:   0.001,
		Seed:       1,
	}
}

// Backbone generates a synthetic WAN: a resilient ring over all regions plus
// random chords, with heterogeneous capacities. Each bidirectional fiber is
// its own SRLG, so one cut takes both directions.
func Backbone(opts BackboneOptions) (*Topology, error) {
	if opts.Regions < 3 {
		return nil, errors.New("topology: backbone needs at least 3 regions")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	t := New()
	names := make([]Region, opts.Regions)
	for i := range names {
		names[i] = Region(fmt.Sprintf("R%02d", i))
		t.AddRegion(names[i])
	}
	srlg := 0
	addFiber := func(a, b Region) error {
		capGbps := opts.MinCapGbps + rng.Float64()*(opts.MaxCapGbps-opts.MinCapGbps)
		t.EnsureSRLG(srlg, opts.FiberCut)
		_, _, err := t.AddBidirectional(a, b, capGbps*1e9, opts.LinkFail, srlg)
		srlg++
		return err
	}
	for i := range names {
		if err := addFiber(names[i], names[(i+1)%len(names)]); err != nil {
			return nil, err
		}
	}
	// Random chords, avoiding duplicates of the ring.
	type pair struct{ a, b int }
	used := make(map[pair]bool)
	for i := range names {
		used[pair{i, (i + 1) % len(names)}] = true
		used[pair{(i + 1) % len(names), i}] = true
	}
	added := 0
	for attempts := 0; added < opts.Chords && attempts < opts.Chords*50; attempts++ {
		a := rng.Intn(len(names))
		b := rng.Intn(len(names))
		if a == b || used[pair{a, b}] {
			continue
		}
		used[pair{a, b}] = true
		used[pair{b, a}] = true
		if err := addFiber(names[a], names[b]); err != nil {
			return nil, err
		}
		added++
	}
	return t, nil
}

// FigureSix builds the five-region example of Figure 6 (regions A–E with the
// Ads service in A), as a full mesh so every pipe realization is routable.
// Capacities are generous; the figure's point is about reservations, not
// congestion.
func FigureSix() *Topology {
	t := New()
	regions := []Region{"A", "B", "C", "D", "E"}
	srlg := 0
	for i, a := range regions {
		for _, b := range regions[i+1:] {
			t.EnsureSRLG(srlg, 0.001)
			// 1 Tbps per direction.
			if _, _, err := t.AddBidirectional(a, b, 1e12, 0.002, srlg); err != nil {
				panic(err) // unreachable for this fixed mesh
			}
			srlg++
		}
	}
	return t
}

// RegionsSorted returns the region list in lexical order (stable iteration
// for deterministic outputs).
func (t *Topology) RegionsSorted() []Region {
	out := make([]Region, len(t.Regions))
	copy(out, t.Regions)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the topology; planners mutate clones when
// evaluating candidate upgrades. The clone starts with a fresh epoch and an
// empty mutation journal: caches keyed on (instance, epoch) treat it as a new
// instance, never as a delta of the original.
func (t *Topology) Clone() *Topology {
	out := &Topology{
		Regions:   append([]Region(nil), t.Regions...),
		Links:     append([]Link(nil), t.Links...),
		SRLGs:     make([]SRLG, len(t.SRLGs)),
		regionIdx: make(map[Region]int, len(t.regionIdx)),
		adjacency: make(map[Region][]int, len(t.adjacency)),
		srlgIdx:   make(map[int]int, len(t.srlgIdx)),
	}
	for i, g := range t.SRLGs {
		out.SRLGs[i] = SRLG{ID: g.ID, CutProb: g.CutProb, Members: append([]int(nil), g.Members...)}
		out.srlgIdx[g.ID] = i
	}
	for r, i := range t.regionIdx {
		out.regionIdx[r] = i
	}
	for r, ids := range t.adjacency {
		out.adjacency[r] = append([]int(nil), ids...)
	}
	return out
}

// SetCapacity updates a link's capacity (planner upgrades).
func (t *Topology) SetCapacity(linkID int, capacity float64) error {
	if linkID < 0 || linkID >= len(t.Links) {
		return fmt.Errorf("topology: unknown link %d", linkID)
	}
	if capacity <= 0 {
		return fmt.Errorf("topology: non-positive capacity %v", capacity)
	}
	t.Links[linkID].Capacity = capacity
	t.epoch.Add(1) // changes allocation outcomes, not the dense adjacency
	t.record(MutationCapacity, linkID)
	return nil
}

// SetLinkFailProb updates a link's independent failure probability
// (maintenance windows, degrading hardware).
func (t *Topology) SetLinkFailProb(linkID int, p float64) error {
	if linkID < 0 || linkID >= len(t.Links) {
		return fmt.Errorf("topology: unknown link %d", linkID)
	}
	if p < 0 || p >= 1 {
		return fmt.Errorf("topology: failure probability %v out of [0,1)", p)
	}
	t.Links[linkID].FailProb = p
	t.epoch.Add(1) // changes failure sampling, not the dense adjacency
	t.record(MutationFailProb, linkID)
	return nil
}

// SetLinkDisabled marks a link administratively down (a confirmed fiber cut
// awaiting repair) or restores it. Disabled links are down in every failure
// scenario, including the forced all-up one. Setting the current value again
// is a no-op and does not bump the epoch.
func (t *Topology) SetLinkDisabled(linkID int, down bool) error {
	if linkID < 0 || linkID >= len(t.Links) {
		return fmt.Errorf("topology: unknown link %d", linkID)
	}
	if t.Links[linkID].Disabled == down {
		return nil
	}
	t.Links[linkID].Disabled = down
	t.epoch.Add(1) // changes failure sampling, not the dense adjacency
	t.record(MutationDisable, linkID)
	return nil
}
