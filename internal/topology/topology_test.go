package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRegionIdempotent(t *testing.T) {
	topo := New()
	topo.AddRegion("A")
	topo.AddRegion("A")
	if topo.NumRegions() != 1 {
		t.Errorf("NumRegions = %d, want 1", topo.NumRegions())
	}
	if !topo.HasRegion("A") || topo.HasRegion("B") {
		t.Error("HasRegion wrong")
	}
	if topo.RegionIndex("A") != 0 || topo.RegionIndex("B") != -1 {
		t.Error("RegionIndex wrong")
	}
}

func TestAddLink(t *testing.T) {
	topo := New()
	id, err := topo.AddLink("A", "B", 100, 0.01, -1)
	if err != nil {
		t.Fatal(err)
	}
	l := topo.Link(id)
	if l.Src != "A" || l.Dst != "B" || l.Capacity != 100 || l.Metric != 1 {
		t.Errorf("Link = %+v", l)
	}
	out := topo.Outgoing("A")
	if len(out) != 1 || out[0] != id {
		t.Errorf("Outgoing = %v", out)
	}
	if len(topo.Outgoing("B")) != 0 {
		t.Error("B should have no outgoing links")
	}
}

func TestAddLinkValidation(t *testing.T) {
	topo := New()
	if _, err := topo.AddLink("A", "A", 100, 0, -1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := topo.AddLink("A", "B", 0, 0, -1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := topo.AddLink("A", "B", 100, 1.5, -1); err == nil {
		t.Error("failProb > 1 accepted")
	}
	if _, err := topo.AddLink("A", "B", 100, -0.1, -1); err == nil {
		t.Error("negative failProb accepted")
	}
}

func TestAddBidirectionalSharesSRLG(t *testing.T) {
	topo := New()
	topo.EnsureSRLG(7, 0.05)
	ab, ba, err := topo.AddBidirectional("A", "B", 100, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Link(ab).SRLG != 7 || topo.Link(ba).SRLG != 7 {
		t.Error("SRLG not propagated")
	}
	var g *SRLG
	for i := range topo.SRLGs {
		if topo.SRLGs[i].ID == 7 {
			g = &topo.SRLGs[i]
		}
	}
	if g == nil || len(g.Members) != 2 || g.CutProb != 0.05 {
		t.Errorf("SRLG = %+v", g)
	}
}

func TestValidate(t *testing.T) {
	topo := New()
	topo.EnsureSRLG(0, 0.01)
	if _, _, err := topo.AddBidirectional("A", "B", 100, 0.001, 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
	// Corrupt SRLG membership.
	topo.SRLGs[0].Members = append(topo.SRLGs[0].Members, 99)
	if err := topo.Validate(); err == nil {
		t.Error("corrupt SRLG passed validation")
	}
}

func TestFailureState(t *testing.T) {
	topo := New()
	topo.EnsureSRLG(0, 0.5)
	ab, ba, _ := topo.AddBidirectional("A", "B", 100, 0, 0)
	cd, _, _ := topo.AddBidirectional("C", "D", 100, 0, -1)

	s := topo.AllUp()
	if !s.IsUp(ab) || !s.IsUp(cd) {
		t.Error("AllUp has down links")
	}
	var nilState *FailureState
	if !nilState.IsUp(0) {
		t.Error("nil state should be all-up")
	}
	s.FailLink(cd)
	if s.IsUp(cd) {
		t.Error("FailLink ineffective")
	}
	if err := topo.FailSRLG(s, 0); err != nil {
		t.Fatal(err)
	}
	if s.IsUp(ab) || s.IsUp(ba) {
		t.Error("FailSRLG did not fail both directions")
	}
	if err := topo.FailSRLG(s, 42); err == nil {
		t.Error("unknown SRLG accepted")
	}
}

func TestSampleFailuresSRLGAtomicity(t *testing.T) {
	// A fiber cut must take down both directions together: we never observe
	// exactly one member of an SRLG down due to the SRLG mechanism when
	// independent failure probability is zero.
	topo := New()
	topo.EnsureSRLG(0, 0.5)
	ab, ba, _ := topo.AddBidirectional("A", "B", 100, 0, 0)
	rng := rand.New(rand.NewSource(3))
	sawCut, sawUp := false, false
	for i := 0; i < 200; i++ {
		s := topo.SampleFailures(rng)
		if s.Down[ab] != s.Down[ba] {
			t.Fatal("SRLG members failed independently")
		}
		if s.Down[ab] {
			sawCut = true
		} else {
			sawUp = true
		}
	}
	if !sawCut || !sawUp {
		t.Error("sampler never exercised both branches")
	}
}

func TestSampleFailuresIndependentRate(t *testing.T) {
	topo := New()
	id, _ := topo.AddLink("A", "B", 100, 0.25, -1)
	rng := rand.New(rand.NewSource(9))
	down := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if topo.SampleFailures(rng).Down[id] {
			down++
		}
	}
	rate := float64(down) / n
	if rate < 0.2 || rate > 0.3 {
		t.Errorf("empirical failure rate %v, want ~0.25", rate)
	}
}

func TestBackboneGenerator(t *testing.T) {
	opts := DefaultBackboneOptions()
	topo, err := Backbone(opts)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumRegions() != opts.Regions {
		t.Errorf("regions = %d, want %d", topo.NumRegions(), opts.Regions)
	}
	// Ring gives 2*R directed links; chords add 2 each.
	minLinks := 2 * opts.Regions
	if topo.NumLinks() < minLinks {
		t.Errorf("links = %d, want >= %d", topo.NumLinks(), minLinks)
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
	for _, l := range topo.Links {
		gbps := l.Capacity / 1e9
		if gbps < opts.MinCapGbps-1e-6 || gbps > opts.MaxCapGbps+1e-6 {
			t.Errorf("link capacity %v Gbps out of range", gbps)
		}
	}
	if topo.TotalCapacity() <= 0 {
		t.Error("TotalCapacity must be positive")
	}
}

func TestBackboneDeterministic(t *testing.T) {
	a, _ := Backbone(DefaultBackboneOptions())
	b, _ := Backbone(DefaultBackboneOptions())
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed produced different topologies")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, a.Links[i], b.Links[i])
		}
	}
}

func TestBackboneTooSmall(t *testing.T) {
	opts := DefaultBackboneOptions()
	opts.Regions = 2
	if _, err := Backbone(opts); err == nil {
		t.Error("2-region backbone accepted")
	}
}

func TestFigureSix(t *testing.T) {
	topo := FigureSix()
	if topo.NumRegions() != 5 {
		t.Errorf("regions = %d", topo.NumRegions())
	}
	// Full mesh: 5*4 directed links.
	if topo.NumLinks() != 20 {
		t.Errorf("links = %d, want 20", topo.NumLinks())
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestRegionsSorted(t *testing.T) {
	topo := New()
	topo.AddRegion("C")
	topo.AddRegion("A")
	topo.AddRegion("B")
	got := topo.RegionsSorted()
	if got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Errorf("RegionsSorted = %v", got)
	}
	// Original order untouched.
	if topo.Regions[0] != "C" {
		t.Error("RegionsSorted mutated Regions")
	}
}

// Property: generated backbones always validate and have symmetric
// bidirectional fibers (every SRLG has exactly 2 members).
func TestBackboneInvariantProperty(t *testing.T) {
	f := func(seed int64, regionsRaw, chordsRaw uint8) bool {
		opts := DefaultBackboneOptions()
		opts.Seed = seed
		opts.Regions = 3 + int(regionsRaw)%12
		opts.Chords = int(chordsRaw) % 8
		topo, err := Backbone(opts)
		if err != nil {
			return false
		}
		if topo.Validate() != nil {
			return false
		}
		for _, g := range topo.SRLGs {
			if len(g.Members) != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig, err := Backbone(DefaultBackboneOptions())
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	if err := clone.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the clone must not touch the original.
	if err := clone.SetCapacity(0, 42); err != nil {
		t.Fatal(err)
	}
	if orig.Links[0].Capacity == 42 {
		t.Error("clone shares link storage")
	}
	clone.SRLGs[0].Members[0] = 999
	if orig.SRLGs[0].Members[0] == 999 {
		t.Error("clone shares SRLG storage")
	}
	clone.AddRegion("EXTRA")
	if orig.HasRegion("EXTRA") {
		t.Error("clone shares region index")
	}
}

func TestSetCapacity(t *testing.T) {
	topo := New()
	id, _ := topo.AddLink("A", "B", 100, 0, -1)
	if err := topo.SetCapacity(id, 250); err != nil {
		t.Fatal(err)
	}
	if topo.Link(id).Capacity != 250 {
		t.Errorf("capacity = %v", topo.Link(id).Capacity)
	}
	if err := topo.SetCapacity(99, 10); err == nil {
		t.Error("unknown link accepted")
	}
	if err := topo.SetCapacity(id, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

// TestEpochTracksMutations pins the cache-invalidation contract: every
// mutation through the package API bumps Epoch, and reads leave it alone.
func TestEpochTracksMutations(t *testing.T) {
	topo := New()
	e0 := topo.Epoch()
	topo.AddRegion("A")
	if topo.Epoch() == e0 {
		t.Error("AddRegion did not bump epoch")
	}
	e1 := topo.Epoch()
	if _, err := topo.AddLink("A", "B", 1e12, 0.001, -1); err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() <= e1 {
		t.Error("AddLink did not bump epoch")
	}
	e2 := topo.Epoch()
	topo.EnsureSRLG(7, 0.01)
	if topo.Epoch() <= e2 {
		t.Error("EnsureSRLG did not bump epoch")
	}
	e3 := topo.Epoch()
	if err := topo.SetCapacity(0, 2e12); err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() <= e3 {
		t.Error("SetCapacity did not bump epoch")
	}
	e4 := topo.Epoch()
	topo.Dense()
	topo.RegionsSorted()
	topo.AllUp()
	if topo.Epoch() != e4 {
		t.Error("read-only accessors changed the epoch")
	}
}
