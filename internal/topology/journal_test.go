package topology

import (
	"math"
	"testing"
)

func journalTestTopo(t *testing.T) *Topology {
	t.Helper()
	topo := New()
	topo.EnsureSRLG(0, 0.1)
	if _, _, err := topo.AddBidirectional("A", "B", 100, 0.05, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddLink("B", "C", 100, 0.05, -1); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDeltaSinceFoldsMutationClasses(t *testing.T) {
	topo := journalTestTopo(t)
	base := topo.Epoch()

	// Up-to-date span: empty delta, ok.
	d, ok := topo.DeltaSince(base)
	if !ok || !d.Empty() || d.TouchesLinks() {
		t.Fatalf("up-to-date span: delta=%+v ok=%v, want empty/true", d, ok)
	}

	topo.AddRegion("Z")
	if err := topo.SetCapacity(2, 200); err != nil {
		t.Fatal(err)
	}
	if err := topo.SetLinkFailProb(0, 0.2); err != nil {
		t.Fatal(err)
	}
	topo.EnsureSRLG(0, 0.3) // members: links 0, 1
	if err := topo.SetLinkDisabled(2, true); err != nil {
		t.Fatal(err)
	}

	d, ok = topo.DeltaSince(base)
	if !ok {
		t.Fatal("covered span reported as untraceable")
	}
	if d.From != base || d.To != topo.Epoch() {
		t.Errorf("span = (%d, %d], want (%d, %d]", d.From, d.To, base, topo.Epoch())
	}
	if !d.AddedRegions {
		t.Error("region add not folded")
	}
	if len(d.AddedLinks) != 0 {
		t.Errorf("AddedLinks = %v, want none", d.AddedLinks)
	}
	// Link 2: capacity change + disable. Links 0, 1: sampling changes
	// (FailProb on 0, SRLG cut prob on both).
	if got, want := d.CapTouched, []int{2}; !intsEqual(got, want) {
		t.Errorf("CapTouched = %v, want %v", got, want)
	}
	if got, want := d.SampleTouched, []int{0, 1, 2}; !intsEqual(got, want) {
		t.Errorf("SampleTouched = %v, want %v", got, want)
	}
	if !d.TouchesLinks() {
		t.Error("link-touching delta reports TouchesLinks false")
	}
}

func TestDeltaSinceExcludesLinksAddedInSpan(t *testing.T) {
	// A link born inside the span shows up ONLY in AddedLinks, even when the
	// same span later mutates it: the cache has no prior state to patch.
	topo := journalTestTopo(t)
	base := topo.Epoch()
	id, err := topo.AddLink("C", "A", 100, 0.05, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetCapacity(id, 300); err != nil {
		t.Fatal(err)
	}
	if err := topo.SetLinkFailProb(id, 0.4); err != nil {
		t.Fatal(err)
	}
	d, ok := topo.DeltaSince(base)
	if !ok {
		t.Fatal("covered span reported as untraceable")
	}
	if got, want := d.AddedLinks, []int{id}; !intsEqual(got, want) {
		t.Errorf("AddedLinks = %v, want %v", got, want)
	}
	if len(d.CapTouched) != 0 || len(d.SampleTouched) != 0 {
		t.Errorf("in-span link leaked into CapTouched=%v SampleTouched=%v",
			d.CapTouched, d.SampleTouched)
	}
}

func TestDeltaSinceUntraceableSpans(t *testing.T) {
	topo := journalTestTopo(t)
	// since ahead of the current epoch: a cache keyed on another topology
	// instance must recompute, not splice.
	if _, ok := topo.DeltaSince(topo.Epoch() + 1); ok {
		t.Error("future epoch reported traceable")
	}
	// Overflow the journal ring: the oldest epochs become untraceable while
	// recent spans still answer.
	for i := 0; i < maxJournal+10; i++ {
		if err := topo.SetCapacity(0, float64(100+i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := topo.DeltaSince(0); ok {
		t.Error("pre-truncation epoch reported traceable")
	}
	recent := topo.Epoch()
	if err := topo.SetCapacity(1, 500); err != nil {
		t.Fatal(err)
	}
	d, ok := topo.DeltaSince(recent)
	if !ok || !intsEqual(d.CapTouched, []int{1}) {
		t.Errorf("post-truncation recent span: delta=%+v ok=%v", d, ok)
	}
}

func TestSetLinkDisabled(t *testing.T) {
	topo := journalTestTopo(t)
	ep := topo.Epoch()
	// Redundant toggle: no epoch bump, no journal entry.
	if err := topo.SetLinkDisabled(0, false); err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() != ep {
		t.Fatal("no-op disable bumped the epoch")
	}
	if err := topo.SetLinkDisabled(0, true); err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() != ep+1 {
		t.Fatal("disable did not bump the epoch")
	}
	if !topo.Link(0).Disabled {
		t.Fatal("link not disabled")
	}
	// Disabled links are down even in the forced all-up state and in every
	// sampled scenario.
	if topo.AllUp().IsUp(0) {
		t.Error("disabled link up in AllUp")
	}
	for j := 0; j < 20; j++ {
		if !topo.LinkDownAt(1, j, 0) {
			t.Errorf("disabled link up in scenario %d", j)
		}
	}
	if err := topo.SetLinkDisabled(99, true); err == nil {
		t.Error("unknown link accepted")
	}
	d, ok := topo.DeltaSince(ep)
	if !ok || !intsEqual(d.SampleTouched, []int{0}) {
		t.Errorf("disable delta = %+v ok=%v, want SampleTouched [0]", d, ok)
	}
}

func TestSetLinkFailProbValidation(t *testing.T) {
	topo := journalTestTopo(t)
	if err := topo.SetLinkFailProb(0, -0.1); err == nil {
		t.Error("negative probability accepted")
	}
	if err := topo.SetLinkFailProb(0, 1); err == nil {
		t.Error("probability 1 accepted")
	}
	if err := topo.SetLinkFailProb(99, 0.5); err == nil {
		t.Error("unknown link accepted")
	}
	if err := topo.SetLinkFailProb(0, 0.25); err != nil {
		t.Fatal(err)
	}
	if topo.Link(0).FailProb != 0.25 {
		t.Fatal("probability not applied")
	}
}

// TestSampleFailureAtDecomposable pins the property the splice machinery
// rests on: scenario j's state is random-access (independent of other
// scenarios) and link i's bit depends only on its own sampling inputs, so
// mutating one link perturbs no other link's bits in any scenario.
func TestSampleFailureAtDecomposable(t *testing.T) {
	opts := DefaultBackboneOptions()
	opts.Regions = 8
	opts.LinkFail = 0.1
	opts.FiberCut = 0.05
	topo, err := Backbone(opts)
	if err != nil {
		t.Fatal(err)
	}
	const seed, scenarios = 11, 40
	before := make([]*FailureState, scenarios)
	for j := range before {
		before[j] = topo.SampleFailureAt(seed, j)
	}
	// Determinism and consistency with the per-link predicate.
	for j := 0; j < scenarios; j++ {
		again := topo.SampleFailureAt(seed, j)
		for i := range before[j].Down {
			if before[j].Down[i] != again.Down[i] {
				t.Fatalf("scenario %d link %d not deterministic", j, i)
			}
			if before[j].Down[i] != topo.LinkDownAt(seed, j, i) {
				t.Fatalf("scenario %d link %d: LinkDownAt disagrees with SampleFailureAt", j, i)
			}
		}
	}
	// Mutate one link's failure probability; every OTHER link's bit must be
	// unchanged in every scenario.
	const touched = 3
	if err := topo.SetLinkFailProb(touched, 0.9); err != nil {
		t.Fatal(err)
	}
	flips := 0
	for j := 0; j < scenarios; j++ {
		after := topo.SampleFailureAt(seed, j)
		for i := range after.Down {
			if i == touched {
				if after.Down[i] != before[j].Down[i] {
					flips++
				}
				continue
			}
			if after.Down[i] != before[j].Down[i] {
				t.Fatalf("scenario %d: untouched link %d flipped after mutating link %d",
					j, i, touched)
			}
		}
	}
	if flips == 0 {
		t.Error("raising FailProb 0.1 -> 0.9 flipped no bits in 40 scenarios")
	}
}

// TestSampleFailureAtRates checks the hash draws actually hit their target
// probabilities (the same law SampleFailures implements sequentially).
func TestSampleFailureAtRates(t *testing.T) {
	topo := New()
	topo.EnsureSRLG(0, 0.2)
	if _, _, err := topo.AddBidirectional("A", "B", 100, 0, 0); err != nil {
		t.Fatal(err)
	}
	solo, err := topo.AddLink("A", "C", 100, 0.3, -1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	cut, fail := 0, 0
	for j := 0; j < n; j++ {
		s := topo.SampleFailureAt(7, j)
		if s.Down[0] != s.Down[1] {
			t.Fatalf("scenario %d: SRLG members split (%v vs %v)", j, s.Down[0], s.Down[1])
		}
		if s.Down[0] {
			cut++
		}
		if s.Down[solo] {
			fail++
		}
	}
	if got := float64(cut) / n; math.Abs(got-0.2) > 0.01 {
		t.Errorf("SRLG cut rate = %v, want ~0.2", got)
	}
	if got := float64(fail) / n; math.Abs(got-0.3) > 0.01 {
		t.Errorf("independent failure rate = %v, want ~0.3", got)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
