package bpf

import (
	"sync"
	"testing"
	"testing/quick"

	"entitlement/internal/contract"
)

func testKey() MapKey {
	return MapKey{NPG: "Ads", Class: contract.ClassA, Region: "A"}
}

func testPacket(host string, flowHash uint32) Packet {
	return Packet{
		NPG: "Ads", Class: contract.ClassA, Region: "A",
		Host: host, FlowHash: flowHash,
		DSCP: DSCPForClass(contract.ClassA), Bytes: 1500,
	}
}

func TestDSCPForClassDistinctAndOrdered(t *testing.T) {
	seen := make(map[uint8]bool)
	prev := uint8(255)
	for _, c := range contract.Classes() {
		d := DSCPForClass(c)
		if d == NonConformDSCP {
			t.Errorf("class %v DSCP collides with NonConformDSCP", c)
		}
		if seen[d] {
			t.Errorf("duplicate DSCP %d", d)
		}
		seen[d] = true
		if d >= prev {
			t.Errorf("DSCP not descending with priority: %d after %d", d, prev)
		}
		prev = d
	}
	if DSCPForClass(contract.Class(99)) != 0 {
		t.Error("invalid class should map to 0")
	}
}

func TestMapUpdateLookupDelete(t *testing.T) {
	m := NewMap()
	key := testKey()
	if _, ok := m.Lookup(key); ok {
		t.Error("empty map has entry")
	}
	m.Update(key, Action{Mode: MarkHosts, NonConformGroups: 10})
	a, ok := m.Lookup(key)
	if !ok || a.Mode != MarkHosts || a.NonConformGroups != 10 {
		t.Errorf("Lookup = %+v, %v", a, ok)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	m.Delete(key)
	if _, ok := m.Lookup(key); ok {
		t.Error("deleted entry found")
	}
}

func TestEgressNoAction(t *testing.T) {
	p := NewProgram(NewMap())
	pkt := testPacket("h1", 5)
	out := p.Egress(pkt)
	if out.DSCP != pkt.DSCP {
		t.Error("packet remarked without any action")
	}
	st := p.Stats()
	if st.Matched != 0 || st.Remarked != 0 || st.Bytes != 1500 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestEgressFlowBased(t *testing.T) {
	m := NewMap()
	// 2 of 100 flow groups non-conforming (the Figure 10 example).
	m.Update(testKey(), Action{Mode: MarkFlows, NonConformGroups: 2})
	p := NewProgram(m)
	// Flow hash 1 → group 1 < 2: remarked.
	out := p.Egress(testPacket("h1", 1))
	if !IsNonConforming(out) {
		t.Error("group 1 not remarked")
	}
	// Flow hash 150 → group 50: passes.
	out = p.Egress(testPacket("h1", 150))
	if IsNonConforming(out) {
		t.Error("group 50 remarked")
	}
	st := p.Stats()
	if st.Matched != 2 || st.Remarked != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestEgressHostBased(t *testing.T) {
	m := NewMap()
	m.Update(testKey(), Action{Mode: MarkHosts, NonConformGroups: 50})
	p := NewProgram(m)
	// With threshold 50, about half the hosts are remarked; crucially, a
	// given host's packets are remarked all-or-nothing regardless of flow.
	for _, host := range []string{"host-a", "host-b", "host-c", "host-d"} {
		first := IsNonConforming(p.Egress(testPacket(host, 1)))
		for flow := uint32(2); flow < 20; flow++ {
			got := IsNonConforming(p.Egress(testPacket(host, flow)))
			if got != first {
				t.Fatalf("host %s marking differs across flows", host)
			}
		}
	}
}

func TestEgressZeroGroupsIsNoop(t *testing.T) {
	m := NewMap()
	m.Update(testKey(), Action{Mode: MarkHosts, NonConformGroups: 0})
	p := NewProgram(m)
	out := p.Egress(testPacket("h", 3))
	if IsNonConforming(out) {
		t.Error("zero threshold remarked traffic")
	}
}

func TestEgressFullThresholdMarksEverything(t *testing.T) {
	m := NewMap()
	m.Update(testKey(), Action{Mode: MarkFlows, NonConformGroups: NumGroups})
	p := NewProgram(m)
	for flow := uint32(0); flow < 500; flow += 13 {
		if !IsNonConforming(p.Egress(testPacket("h", flow))) {
			t.Fatalf("flow %d not remarked at full threshold", flow)
		}
	}
}

func TestEgressOtherFlowSetsUntouched(t *testing.T) {
	m := NewMap()
	m.Update(testKey(), Action{Mode: MarkHosts, NonConformGroups: NumGroups})
	p := NewProgram(m)
	other := testPacket("h", 1)
	other.NPG = "Logging" // different flow set
	if IsNonConforming(p.Egress(other)) {
		t.Error("unrelated NPG remarked")
	}
	otherClass := testPacket("h", 1)
	otherClass.Class = contract.ClassB
	if IsNonConforming(p.Egress(otherClass)) {
		t.Error("unrelated class remarked")
	}
}

func TestHostGroupStableAndSpread(t *testing.T) {
	if HostGroup("host-1") != HostGroup("host-1") {
		t.Error("HostGroup unstable")
	}
	// Groups spread across the space.
	seen := make(map[uint32]bool)
	for i := 0; i < 500; i++ {
		g := HostGroup(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i%13)))
		if g >= NumGroups {
			t.Fatalf("group %d out of range", g)
		}
		seen[g] = true
	}
	if len(seen) < 50 {
		t.Errorf("host groups poorly spread: %d distinct", len(seen))
	}
}

func TestResetStats(t *testing.T) {
	m := NewMap()
	m.Update(testKey(), Action{Mode: MarkFlows, NonConformGroups: NumGroups})
	p := NewProgram(m)
	p.Egress(testPacket("h", 1))
	p.ResetStats()
	if st := p.Stats(); st.Matched != 0 || st.Remarked != 0 || st.Bytes != 0 {
		t.Errorf("Stats after reset = %+v", st)
	}
}

func TestConcurrentEgressAndUpdates(t *testing.T) {
	m := NewMap()
	p := NewProgram(m)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				m.Update(testKey(), Action{Mode: MarkHosts, NonConformGroups: i % (NumGroups + 1)})
			}
		}
	}()
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 2000; i++ {
				p.Egress(testPacket("host", uint32(i)))
			}
		}()
	}
	workers.Wait()
	close(stop)
	wg.Wait()
	if p.Stats().Bytes == 0 {
		t.Error("no packets processed")
	}
}

// Property: a marking fraction f remarks roughly f of flow groups.
func TestFlowMarkingFractionProperty(t *testing.T) {
	f := func(threshRaw uint8) bool {
		thresh := uint32(threshRaw) % (NumGroups + 1)
		m := NewMap()
		m.Update(testKey(), Action{Mode: MarkFlows, NonConformGroups: thresh})
		p := NewProgram(m)
		marked := 0
		const flows = 1000
		for i := 0; i < flows; i++ {
			if IsNonConforming(p.Egress(testPacket("h", uint32(i)))) {
				marked++
			}
		}
		want := float64(thresh) / NumGroups
		got := float64(marked) / flows
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHostGroupSaltedRotates(t *testing.T) {
	// Salt 0 matches the unsalted group.
	if HostGroupSalted("h1", 0) != HostGroup("h1") {
		t.Error("zero salt differs from unsalted")
	}
	// Across salts, a host's group moves (for most hosts most salts).
	moved := 0
	const hosts = 50
	for i := 0; i < hosts; i++ {
		id := "host-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if HostGroupSalted(id, 1) != HostGroupSalted(id, 2) {
			moved++
		}
	}
	if moved < hosts*8/10 {
		t.Errorf("only %d/%d hosts changed group across salts", moved, hosts)
	}
	// Deterministic per (host, salt).
	if HostGroupSalted("x", 7) != HostGroupSalted("x", 7) {
		t.Error("salted group unstable")
	}
}

func TestEgressSaltRotatesMarkedSet(t *testing.T) {
	hosts := make([]string, 40)
	for i := range hosts {
		hosts[i] = "h" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	markedSet := func(salt uint32) map[string]bool {
		m := NewMap()
		m.Update(testKey(), Action{Mode: MarkHosts, NonConformGroups: 50, Salt: salt})
		p := NewProgram(m)
		out := make(map[string]bool)
		for _, h := range hosts {
			out[h] = IsNonConforming(p.Egress(testPacket(h, 1)))
		}
		return out
	}
	a := markedSet(1)
	b := markedSet(2)
	diff := 0
	for _, h := range hosts {
		if a[h] != b[h] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("marked set identical across salts")
	}
}
