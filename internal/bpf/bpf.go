// Package bpf emulates the kernel half of the enforcement agent (Figure 9):
// a set of maps programmed from user space and an egress program that
// consults them to match packets and apply actions — here, remarking
// non-conforming traffic to a dedicated low-priority DSCP. The split matches
// the paper's design: the endhost "only marks traffic rather than shape it",
// leaving drop decisions to the switches.
//
// The emulation keeps BPF's operational shape: lookups are lock-cheap, the
// program is stateless per packet, and the only channel from the control
// plane is map updates.
package bpf

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"entitlement/internal/contract"
	"entitlement/internal/topology"
)

// NonConformDSCP is the DSCP value carried by remarked (non-conforming)
// packets. Switches map it to the lowest-priority queue regardless of the
// packet's original class (§5.1, footnote 1).
const NonConformDSCP uint8 = 1

// NumGroups is the marking granularity: flows (or hosts) hash into this many
// buckets, and a threshold selects how many buckets are non-conforming
// (Figure 10 uses identifiers 0..99).
const NumGroups = 100

// DSCPForClass returns the on-the-wire DSCP of a QoS class. The concrete
// values mirror conventional AF/EF assignments, descending with priority;
// only distinctness and their queue mapping matter to the system.
func DSCPForClass(c contract.Class) uint8 {
	dscps := [...]uint8{46, 44, 34, 32, 26, 24, 18, 16}
	if int(c) >= 0 && int(c) < len(dscps) {
		return dscps[c]
	}
	return 0
}

// Packet is the egress-packet metadata the classifier matches on. At the
// endhost, service attributes (NPG, class) are readily available — the
// paper's reason to mark on hosts rather than switches (§5.1).
type Packet struct {
	NPG      contract.NPG
	Class    contract.Class
	Region   topology.Region // source region
	Host     string          // source host ID
	FlowHash uint32          // stable per-flow hash (5-tuple surrogate)
	DSCP     uint8
	Bytes    int
}

// MarkMode selects the remarking granularity (§5.3).
type MarkMode uint8

// Marking modes.
const (
	// MarkNone disables remarking for the flow set.
	MarkNone MarkMode = iota
	// MarkFlows remarks a fraction of flow groups on every host.
	MarkFlows
	// MarkHosts remarks all matching traffic from a fraction of hosts —
	// the production default ("we use the host-based approach as our
	// default marking method").
	MarkHosts
)

// Action is the value stored in the action map: which marking mode to apply
// and how many of the NumGroups buckets are non-conforming.
type Action struct {
	Mode MarkMode
	// NonConformGroups in [0, NumGroups]: groups with ID below this
	// threshold are remarked (Figure 10: ratio 0.02 → groups 0 and 1).
	NonConformGroups uint32
	// Salt perturbs the group hash. Rotating the salt across enforcement
	// periods rotates WHICH hosts get marked, spreading the pain of
	// sustained over-entitlement across the fleet instead of pinning it on
	// the same hosts (host-based marking makes affected hosts visible to
	// service teams, §5.3; rotation keeps that visibility fair). All agents
	// derive the salt from the shared clock, so the fleet stays consistent.
	Salt uint32
}

// MapKey identifies a flow set, mirroring the entitlement tuple.
type MapKey struct {
	NPG    contract.NPG
	Class  contract.Class
	Region topology.Region
}

// Map is an emulated BPF hash map from flow set to Action.
type Map struct {
	mu      sync.RWMutex
	entries map[MapKey]Action
}

// NewMap creates an empty action map.
func NewMap() *Map {
	return &Map{entries: make(map[MapKey]Action)}
}

// Update inserts or replaces the action for key (BPF_MAP_UPDATE_ELEM).
func (m *Map) Update(key MapKey, a Action) {
	m.mu.Lock()
	m.entries[key] = a
	m.mu.Unlock()
}

// Lookup returns the action for key.
func (m *Map) Lookup(key MapKey) (Action, bool) {
	m.mu.RLock()
	a, ok := m.entries[key]
	m.mu.RUnlock()
	return a, ok
}

// Delete removes the action for key.
func (m *Map) Delete(key MapKey) {
	m.mu.Lock()
	delete(m.entries, key)
	m.mu.Unlock()
}

// Len returns the number of programmed entries.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Stats are the program's packet counters (per-CPU counters in real BPF).
type Stats struct {
	Matched  uint64 // packets whose flow set had a programmed action
	Remarked uint64 // packets remarked to NonConformDSCP
	Bytes    uint64 // total bytes seen
}

// Program is the egress classifier attached to one host.
type Program struct {
	Actions *Map

	matched  atomic.Uint64
	remarked atomic.Uint64
	bytes    atomic.Uint64
}

// NewProgram creates a program consulting the given action map. Hosts on
// one machine share the map exactly as BPF programs share pinned maps.
func NewProgram(actions *Map) *Program {
	return &Program{Actions: actions}
}

// FlowGroup maps a flow hash to its group ID.
func FlowGroup(flowHash uint32) uint32 { return flowHash % NumGroups }

// HostGroup maps a host ID to its group ID via FNV-1a, so group membership
// is stable across agents without coordination.
func HostGroup(host string) uint32 { return HostGroupSalted(host, 0) }

// HostGroupSalted maps a host ID to its group under a rotation salt.
func HostGroupSalted(host string, salt uint32) uint32 {
	h := fnv.New32a()
	h.Write([]byte(host))
	if salt != 0 {
		var b [4]byte
		b[0] = byte(salt)
		b[1] = byte(salt >> 8)
		b[2] = byte(salt >> 16)
		b[3] = byte(salt >> 24)
		h.Write(b[:])
	}
	return h.Sum32() % NumGroups
}

// Egress classifies one outgoing packet, returning it with the DSCP
// possibly remarked. This is the per-packet hot path: one map lookup, one
// modulo, no allocation.
func (p *Program) Egress(pkt Packet) Packet {
	p.bytes.Add(uint64(pkt.Bytes))
	action, ok := p.Actions.Lookup(MapKey{NPG: pkt.NPG, Class: pkt.Class, Region: pkt.Region})
	if !ok || action.Mode == MarkNone || action.NonConformGroups == 0 {
		return pkt
	}
	p.matched.Add(1)
	var group uint32
	switch action.Mode {
	case MarkFlows:
		group = FlowGroup(pkt.FlowHash ^ action.Salt)
	case MarkHosts:
		group = HostGroupSalted(pkt.Host, action.Salt)
	default:
		return pkt
	}
	if group < action.NonConformGroups {
		pkt.DSCP = NonConformDSCP
		p.remarked.Add(1)
	}
	return pkt
}

// IsNonConforming reports whether a packet has been remarked.
func IsNonConforming(pkt Packet) bool { return pkt.DSCP == NonConformDSCP }

// Stats returns a snapshot of the counters.
func (p *Program) Stats() Stats {
	return Stats{
		Matched:  p.matched.Load(),
		Remarked: p.remarked.Load(),
		Bytes:    p.bytes.Load(),
	}
}

// ResetStats zeroes the counters.
func (p *Program) ResetStats() {
	p.matched.Store(0)
	p.remarked.Store(0)
	p.bytes.Store(0)
}
