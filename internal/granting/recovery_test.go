package granting

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/contract"
	"entitlement/internal/faults"
	"entitlement/internal/hose"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
	"entitlement/internal/wire"
)

// crashOptions keeps the risk pass cheap enough for dozens of randomized
// runs while still exercising the real Monte-Carlo engine.
func crashOptions(dir string) Options {
	return Options{
		Approval: approval.Options{
			RepresentativeTMs: 2,
			DefaultSLO:        0.99,
			Risk:              risk.Options{Scenarios: 20, Seed: 11, Workers: 2},
			Seed:              7,
		},
		PeriodDays: 90,
		WAL:        WALOptions{Dir: dir, Fsync: FsyncNone},
	}
}

// randRequest draws one single-hose request over the FigureSix mesh; about
// one in eight is hopelessly oversubscribed so rejections and negotiations
// appear in the journal alongside approvals.
func randRequest(rng *rand.Rand) Request {
	npgs := []contract.NPG{"Web", "Ads", "Batch", "ML", "Cache"}
	regions := []topology.Region{"A", "B", "C", "D", "E"}
	classes := []contract.Class{contract.C2Low, contract.C3Low}
	dirs := []contract.Direction{contract.Egress, contract.Ingress}
	rate := float64(10+rng.Intn(90)) * 1e9
	if rng.Intn(8) == 0 {
		rate = 9e12
	}
	r := Request{
		NPG:       npgs[rng.Intn(len(npgs))],
		StartUnix: testStart.Unix(),
		Hoses: []hose.Request{{
			Class:     classes[rng.Intn(len(classes))],
			Region:    regions[rng.Intn(len(regions))],
			Direction: dirs[rng.Intn(len(dirs))],
			Rate:      rate,
		}},
	}
	if rng.Intn(4) == 0 {
		r.Negotiate = true
	}
	return r
}

// copyDir clones a journal directory byte-for-byte so two recoveries can
// run against identical damage.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashRecoveryProperty is the randomized durability property pinned by
// ISSUE 7: across ≥50 runs of submit → crash mid-stream (Kill plus a torn,
// flipped, or garbage-extended journal tail) → restart,
//
//   - every request id whose decision survived replay is served with
//     byte-identical JSON to what the pre-crash service returned, and
//   - every surviving in-flight submission re-decides deterministically:
//     two independent recoveries of the same damaged journal agree
//     byte-for-byte on every decision they produce.
func TestCrashRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized crash-recovery property is not a -short test")
	}
	const runs = 50
	for run := 0; run < runs; run++ {
		run := run
		t.Run(fmt.Sprintf("run%02d", run), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE + int64(run)))
			dir := t.TempDir()
			svc, err := OpenService(topology.FigureSix(), nil, crashOptions(dir))
			if err != nil {
				t.Fatal(err)
			}

			var ids []string
			n := 3 + rng.Intn(4)
			for i := 0; i < n; i++ {
				if rng.Intn(5) == 0 {
					gids, err := svc.SubmitGroup([]Request{randRequest(rng), randRequest(rng)})
					if err != nil {
						t.Fatal(err)
					}
					ids = append(ids, gids...)
					continue
				}
				id, err := svc.Submit(randRequest(rng))
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			// Wait for a random prefix so the crash lands with a mix of
			// decided and in-flight work.
			for _, id := range ids[:rng.Intn(len(ids)+1)] {
				if _, err := svc.Wait(id, 2*time.Minute); err != nil {
					t.Fatalf("pre-crash wait %s: %v", id, err)
				}
			}
			preCrash := make(map[string][]byte)
			for _, id := range ids {
				if state, d := svc.Status(id); state == "decided" {
					preCrash[id], _ = json.Marshal(d)
				}
			}
			svc.Kill()

			// Damage the journal tail the way a crash mid-write would.
			gens, err := listWALGens(dir)
			if err != nil || len(gens) == 0 {
				t.Fatalf("no journal generations: %v", err)
			}
			desc, err := faults.CrashTail(walGen(dir, gens[len(gens)-1]), rng, 200)
			if err != nil {
				t.Fatal(err)
			}

			dir2 := copyDir(t, dir)
			stA, err := ReplayWAL(dir)
			if err != nil {
				t.Fatalf("replay after %s: %v", desc, err)
			}
			stB, err := ReplayWAL(dir2)
			if err != nil {
				t.Fatal(err)
			}
			ja, _ := json.Marshal(stA)
			jb, _ := json.Marshal(stB)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("identical bytes replayed to different states after %s:\nA %s\nB %s", desc, ja, jb)
			}

			svcA, err := OpenService(topology.FigureSix(), nil, crashOptions(dir))
			if err != nil {
				t.Fatalf("reopen A after %s: %v", desc, err)
			}
			defer svcA.Close()
			svcB, err := OpenService(topology.FigureSix(), nil, crashOptions(dir2))
			if err != nil {
				t.Fatalf("reopen B after %s: %v", desc, err)
			}
			defer svcB.Close()

			// Survived decisions serve byte-identically.
			for _, d := range stA.Decided {
				want, sawPreCrash := preCrash[d.ID]
				state, got := svcA.Status(d.ID)
				if state != "decided" || got == nil {
					t.Fatalf("recovered-decided id %s is %q after restart (%s)", d.ID, state, desc)
				}
				if sawPreCrash {
					gj, _ := json.Marshal(got)
					if !bytes.Equal(gj, want) {
						t.Errorf("id %s not byte-identical after crash (%s):\nwant %s\ngot  %s", d.ID, desc, want, gj)
					}
				}
			}
			// Surviving in-flight work re-decides, and the two recoveries
			// agree byte-for-byte on everything they know.
			known := make([]string, 0, len(ids))
			for _, d := range stA.Decided {
				known = append(known, d.ID)
			}
			for _, p := range stA.Pending {
				known = append(known, p.IDs...)
			}
			for _, id := range known {
				da, err := svcA.Wait(id, 2*time.Minute)
				if err != nil {
					t.Fatalf("recovery A wait %s (%s): %v", id, desc, err)
				}
				db, err := svcB.Wait(id, 2*time.Minute)
				if err != nil {
					t.Fatalf("recovery B wait %s (%s): %v", id, desc, err)
				}
				jda, _ := json.Marshal(da)
				jdb, _ := json.Marshal(db)
				if !bytes.Equal(jda, jdb) {
					t.Errorf("recoveries disagree on %s (%s):\nA %s\nB %s", id, desc, jda, jdb)
				}
			}
		})
	}
}

// blockingSink parks the decider inside Put until released, holding the
// admission queue artificially full for the overload tests.
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockingSink() *blockingSink {
	return &blockingSink{entered: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingSink) Put(contract.Contract) error {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return nil
}

// approvable returns a request the FigureSix mesh grants easily, with a
// distinct hose key per call so queued singles never collide.
func approvable(i int) Request {
	regions := []topology.Region{"A", "B", "C", "D", "E"}
	return Request{
		NPG:       contract.NPG(fmt.Sprintf("Web%d", i)),
		StartUnix: testStart.Unix(),
		Hoses: []hose.Request{{
			Class: contract.C2Low, Region: regions[i%len(regions)],
			Direction: contract.Egress, Rate: 5e9,
		}},
	}
}

// TestOverloadShed pins the admission bound: with the decider parked and
// the queue at MaxQueue, further submissions shed with ErrOverloaded
// wrapped in wire.Overloaded (retry-after hint attached), the queue depth
// never exceeds the bound, and nothing leaks once the storm passes.
func TestOverloadShed(t *testing.T) {
	base := runtime.NumGoroutine()
	sink := newBlockingSink()
	opts := testOptions(2)
	opts.MaxQueue = 4
	opts.ShedRetryAfter = 250 * time.Millisecond
	svc := NewService(topology.FigureSix(), sink, opts)

	// Park the decider inside the sink so the queue backs up behind it.
	first, err := svc.Submit(approvable(0))
	if err != nil {
		t.Fatal(err)
	}
	<-sink.entered

	var queued []string
	for i := 1; i <= 4; i++ {
		id, err := svc.Submit(approvable(i))
		if err != nil {
			t.Fatalf("submit %d within MaxQueue: %v", i, err)
		}
		queued = append(queued, id)
	}
	// The bound holds: one more single and one group both shed.
	shed := 0
	for _, reqs := range [][]Request{{approvable(5)}, {approvable(6), approvable(7)}} {
		_, err := svc.SubmitGroup(reqs)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("over-bound submit returned %v, want ErrOverloaded", err)
		}
		var ov *wire.Overloaded
		if !errors.As(err, &ov) {
			t.Fatalf("shed error %v is not wire.Overloaded", err)
		}
		if ov.RetryAfter != 250*time.Millisecond {
			t.Errorf("RetryAfter = %v, want 250ms", ov.RetryAfter)
		}
		shed += len(reqs)
	}
	st := svc.Stats()
	if st.QueueDepth != 4 {
		t.Errorf("queue depth %d under storm, want 4", st.QueueDepth)
	}
	if st.Shed != int64(shed) {
		t.Errorf("Stats.Shed = %d, want %d", st.Shed, shed)
	}

	// Release the decider: everything queued (never the shed work) decides.
	close(sink.release)
	for _, id := range append([]string{first}, queued...) {
		if _, err := svc.Wait(id, 2*time.Minute); err != nil {
			t.Fatalf("wait %s after release: %v", id, err)
		}
	}
	st = svc.Stats()
	if st.Decided != 5 || st.QueueDepth != 0 {
		t.Errorf("after drain: decided %d depth %d, want 5 and 0", st.Decided, st.QueueDepth)
	}
	svc.Close()
	waitForServiceGoroutines(t, base)
}

// TestQueueTimeout pins MaxQueueDelay: requests that age out behind a stuck
// decider fail with a queue-timeout decision instead of getting a grant
// nobody is waiting for.
func TestQueueTimeout(t *testing.T) {
	var mu sync.Mutex
	now := testStart
	sink := newBlockingSink()
	opts := testOptions(2)
	opts.MaxQueueDelay = time.Second
	opts.Now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	svc := NewService(topology.FigureSix(), sink, opts)
	defer svc.Close()

	first, err := svc.Submit(approvable(0))
	if err != nil {
		t.Fatal(err)
	}
	<-sink.entered
	stale, err := svc.Submit(approvable(1))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	close(sink.release)

	d, err := svc.Wait(stale, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != StatusQueueTimeout {
		t.Fatalf("aged request decided %q, want %q", d.Status, StatusQueueTimeout)
	}
	if d.Err == "" || d.NPG != "Web1" {
		t.Errorf("timeout decision incomplete: %+v", d)
	}
	if df, err := svc.Wait(first, 2*time.Minute); err != nil || df.Status == StatusQueueTimeout {
		t.Fatalf("in-flight request caught by the sweep: %v %v", df, err)
	}
	if st := svc.Stats(); st.QueueTimeouts != 1 {
		t.Errorf("Stats.QueueTimeouts = %d, want 1", st.QueueTimeouts)
	}
}

// waitForServiceGoroutines polls until the goroutine count returns near
// base — the decider, waiters, and risk workers must all be gone.
func waitForServiceGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
