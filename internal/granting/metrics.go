package granting

import "entitlement/internal/obs"

// Granting-plane instruments. The two cache levels report separately:
// scenario hits mean a warm assessment (routing still runs, sampling and
// allocator scratch are reused); decision hits mean the whole risk pass was
// skipped for a memoized batch. entitlement_grantd_cache_hit_ratio tracks
// the decision memo — the headline "how often is admission free" signal.
var (
	mRequests            = obs.RegisterCounter("entitlement_grantd_requests_total", "Contract requests accepted into the admission queue.")
	mQueueDepth          = obs.RegisterGauge("entitlement_grantd_queue_depth", "Requests currently queued for a risk pass.")
	mBatches             = obs.RegisterCounter("entitlement_grantd_batches_total", "Risk passes run (each decides one coalesced batch).")
	mBatchSize           = obs.RegisterHistogram("entitlement_grantd_batch_size", "Requests decided per risk pass.")
	mDecisionSeconds     = obs.RegisterHistogram("entitlement_grantd_decision_seconds", "Latency from submission to decision, per request.")
	mDecisions           = obs.RegisterCounterVec("entitlement_grantd_decisions_total", "Decisions by outcome.", "status")
	mMemoHits            = obs.RegisterCounter("entitlement_grantd_decision_cache_hits_total", "Requests answered from the decision memo (no risk pass). Counted per request, matching the /grants report.")
	mMemoMisses          = obs.RegisterCounter("entitlement_grantd_decision_cache_misses_total", "Requests that needed a full risk pass. Counted per request, matching the /grants report.")
	mScenarioCacheHits   = obs.RegisterCounter("entitlement_grantd_scenario_cache_hits_total", "Assessments served a precomputed Monte-Carlo scenario set.")
	mScenarioCacheMisses = obs.RegisterCounter("entitlement_grantd_scenario_cache_misses_total", "Assessments that sampled a fresh Monte-Carlo scenario set.")
	mCacheHitRatio       = obs.RegisterGauge("entitlement_grantd_cache_hit_ratio", "Decision-memo hit ratio since start (hits / lookups).")
	mCacheFlushes        = obs.RegisterCounter("entitlement_grantd_cache_flushes_total", "Warm-state flushes triggered by a topology epoch change.")
	mStoreFails          = obs.RegisterCounter("entitlement_grantd_store_failures_total", "Granted contracts that failed to store in the contract database.")
)

func updateHitRatio() {
	hits, misses := mMemoHits.Value(), mMemoMisses.Value()
	if total := hits + misses; total > 0 {
		mCacheHitRatio.Set(float64(hits) / float64(total))
	}
}
