package granting

import "entitlement/internal/obs"

// Granting-plane instruments. The assessment level (scenario states, delta
// splicing) reports from the risk package (entitlement_risk_result_cache_*);
// here the decision memo reports hits — batches whose whole risk pass was
// skipped — plus LRU evictions and delta-triggered drops.
// entitlement_grantd_cache_hit_ratio tracks the decision memo — the headline
// "how often is admission free" signal.
var (
	mRequests        = obs.RegisterCounter("entitlement_grantd_requests_total", "Contract requests accepted into the admission queue.")
	mQueueDepth      = obs.RegisterGauge("entitlement_grantd_queue_depth", "Requests currently queued for a risk pass.")
	mBatches         = obs.RegisterCounter("entitlement_grantd_batches_total", "Risk passes run (each decides one coalesced batch).")
	mBatchSize       = obs.RegisterHistogram("entitlement_grantd_batch_size", "Requests decided per risk pass.")
	mDecisionSeconds = obs.RegisterHistogram("entitlement_grantd_decision_seconds", "Latency from submission to decision, per request.")
	mDecisions       = obs.RegisterCounterVec("entitlement_grantd_decisions_total", "Decisions by outcome.", "status")
	mMemoHits        = obs.RegisterCounter("entitlement_grantd_decision_cache_hits_total", "Requests answered from the decision memo (no risk pass). Counted per request, matching the /grants report.")
	mMemoMisses      = obs.RegisterCounter("entitlement_grantd_decision_cache_misses_total", "Requests that needed a full risk pass. Counted per request, matching the /grants report.")
	mMemoEvictions   = obs.RegisterCounter("entitlement_grantd_memo_evictions_total", "Memoized batch decisions evicted by the LRU bound (Options.MemoMaxEntries).")
	mCacheHitRatio   = obs.RegisterGauge("entitlement_grantd_cache_hit_ratio", "Decision-memo hit ratio since start (hits / lookups).")
	mCacheFlushes    = obs.RegisterCounter("entitlement_grantd_cache_flushes_total", "Decision-memo drops triggered by a link-touching topology delta.")
	mStoreFails      = obs.RegisterCounter("entitlement_grantd_store_failures_total", "Granted contracts that failed to store in the contract database.")

	// Admission control: the queue is bounded (Options.MaxQueue) and aged
	// (Options.MaxQueueDelay); both reliefs are counted, never silent.
	mShed          = obs.RegisterCounter("entitlement_grantd_shed_total", "Requests shed at submission because the admission queue was full (Options.MaxQueue).")
	mQueueTimeouts = obs.RegisterCounter("entitlement_grantd_queue_timeouts_total", "Queued requests failed with a queue-timeout decision because they aged past Options.MaxQueueDelay.")

	// Write-ahead decision journal (Options.WAL): append volume, sync cost,
	// rotation cadence, and what replay found at the last startup.
	mJournalRecords           = obs.RegisterCounterVec("entitlement_grantd_journal_records_total", "Journal records appended, by type (sub, dec, ckpt).", "type")
	mJournalBytes             = obs.RegisterCounter("entitlement_grantd_journal_bytes_total", "Bytes appended to the decision journal, including record framing.")
	mJournalFsyncs            = obs.RegisterCounter("entitlement_grantd_journal_fsyncs_total", "fsync calls issued by the decision journal.")
	mJournalCheckpoints       = obs.RegisterCounter("entitlement_grantd_journal_checkpoints_total", "Journal rotations: a snapshot checkpoint opened a new generation and older generations were pruned.")
	mJournalErrors            = obs.RegisterCounter("entitlement_grantd_journal_errors_total", "Journal append or sync failures (decisions are still served; a restart re-derives them deterministically).")
	mJournalReplayRecords     = obs.RegisterCounter("entitlement_grantd_journal_replay_records_total", "Records replayed from the journal at startup.")
	mJournalReplayTruncations = obs.RegisterCounter("entitlement_grantd_journal_replay_truncations_total", "Journal generations whose torn or corrupt tail was truncated during replay.")
	mRecoveredDecisions       = obs.RegisterCounter("entitlement_grantd_recovered_decisions_total", "Decided requests restored from the journal at startup (served byte-identically).")
	mRecoveredPending         = obs.RegisterCounter("entitlement_grantd_recovered_pending_total", "In-flight requests restored from the journal at startup and re-queued for deterministic re-decision.")
)

func updateHitRatio() {
	hits, misses := mMemoHits.Value(), mMemoMisses.Value()
	if total := hits + misses; total > 0 {
		mCacheHitRatio.Set(float64(hits) / float64(total))
	}
}
