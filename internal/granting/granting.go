// Package granting turns the §4.3 approval pipeline into a long-running
// admission control plane: contract requests arrive continuously (the paper's
// "service teams submit entitlement requests"), are decided against the
// shared risk model with Algorithm 2 plus the §8 negotiation fallback, and
// approved contracts land straight in the contract database that the
// enforcement agents poll — the online grant→store→enforce path.
//
// The package has three layers:
//
//   - DecideBatch: the pure decision function. It canonicalizes the batch
//     (sorted requests, sorted hoses) so the same request SET decides
//     byte-identically regardless of arrival interleaving or worker count.
//   - Service: the admission queue. Concurrent submissions coalesce into one
//     risk pass; a two-level cache (Monte-Carlo scenario sets + pooled flow
//     runners, and a whole-batch decision memo) keyed by the topology epoch
//     makes warm decisions cheap.
//   - Server/Client: the wire-RPC surface (Submit/Decide/Status/Report).
package granting

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/contract"
	"entitlement/internal/forecast"
	"entitlement/internal/hose"
	"entitlement/internal/obs/trace"
	"entitlement/internal/topology"
)

// Request is one contract ask: an NPG's hoses for the coming enforcement
// period. It is the unit of admission — all of a request's hoses are decided
// together and either become one stored contract or one counter-proposal.
type Request struct {
	NPG contract.NPG `json:"npg"`
	// SLO is the availability target; 0 uses the service default.
	SLO contract.SLO `json:"slo,omitempty"`
	// Hoses are the requested flow sets. Each hose's NPG must be empty
	// (filled from the request) or equal to it.
	Hoses []hose.Request `json:"hoses"`
	// StartUnix begins the enforcement period (seconds); 0 means "now",
	// which the service pins at submission time so retries are idempotent.
	StartUnix int64 `json:"start_unix,omitempty"`
	// Negotiate accepts the §8 counter-proposal automatically: an
	// under-approved request is granted at its admittable volume instead of
	// rejected.
	Negotiate bool `json:"negotiate,omitempty"`
}

// Validate checks the request against the topology (nil topo skips the
// region check, for client-side validation before dialing).
func (r *Request) Validate(topo *topology.Topology) error {
	if r.NPG == "" {
		return fmt.Errorf("granting: request missing NPG")
	}
	if len(r.Hoses) == 0 {
		return fmt.Errorf("granting: request for %s has no hoses", r.NPG)
	}
	if r.SLO != 0 {
		if err := r.SLO.Validate(); err != nil {
			return err
		}
	}
	seen := make(map[string]bool, len(r.Hoses))
	for i := range r.Hoses {
		h := &r.Hoses[i]
		if h.NPG == "" {
			h.NPG = r.NPG
		}
		if h.NPG != r.NPG {
			return fmt.Errorf("granting: hose %s inside request for %s", h.Key(), r.NPG)
		}
		if !h.Class.Valid() {
			return fmt.Errorf("granting: hose %d has invalid class %d", i, int(h.Class))
		}
		if h.Rate < 0 {
			return fmt.Errorf("granting: hose %s has negative rate", h.Key())
		}
		if seen[h.Key()] {
			return fmt.Errorf("granting: duplicate hose %s in request", h.Key())
		}
		seen[h.Key()] = true
		if topo != nil && !topo.HasRegion(h.Region) {
			return fmt.Errorf("granting: hose %s references unknown region %s", h.Key(), h.Region)
		}
	}
	return nil
}

// fhex renders a float exactly (hex mantissa), for cache signatures.
func fhex(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// Signature is the request's decision-relevant identity: every field that
// can change the outcome, rendered canonically. Used both to order a batch
// canonically and as the decision-memo key material.
func (r *Request) Signature() string {
	var b strings.Builder
	b.WriteString(string(r.NPG))
	b.WriteByte('|')
	b.WriteString(fhex(float64(r.SLO)))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(r.StartUnix, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(r.Negotiate))
	for i := range r.Hoses {
		h := &r.Hoses[i]
		b.WriteByte('|')
		b.WriteString(h.Key())
		b.WriteByte('=')
		b.WriteString(fhex(h.Rate))
		for _, s := range h.Segments {
			b.WriteByte('~')
			b.WriteString(fhex(s.Alpha))
			b.WriteByte(':')
			for j, t := range s.Targets {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(string(t))
			}
		}
	}
	return b.String()
}

// Status is the admission outcome class.
type Status string

// Admission outcomes.
const (
	// StatusApproved: every hose fully approved; contract stored at the
	// requested rates.
	StatusApproved Status = "approved"
	// StatusNegotiated: under-approved but the requester opted into the §8
	// fallback; contract stored at the admittable rates.
	StatusNegotiated Status = "negotiated"
	// StatusRejected: under-approved; counter-proposal returned, nothing
	// stored.
	StatusRejected Status = "rejected"
	// StatusError: the decision could not be computed or stored.
	StatusError Status = "error"
	// StatusQueueTimeout: the submission aged past Options.MaxQueueDelay
	// before a risk pass reached it. Deciding it late would grant against
	// a world the submitter has given up on, so it fails instead.
	StatusQueueTimeout Status = "queue_timeout"
)

// HoseDecision is the per-hose outcome inside a Decision, in the request's
// hose order.
type HoseDecision struct {
	Key           string  `json:"key"`
	Requested     float64 `json:"requested"`
	Approved      float64 `json:"approved"`
	FullyApproved bool    `json:"fully_approved"`
}

// Decision is the service's answer to one Request.
type Decision struct {
	// ID is the service-assigned request id (empty from DecideBatch).
	ID     string         `json:"id,omitempty"`
	NPG    contract.NPG   `json:"npg"`
	Status Status         `json:"status"`
	Hoses  []HoseDecision `json:"hoses"`
	// Proposals carries the §8 counter-proposals for under-approved hoses.
	Proposals []approval.CounterProposal `json:"proposals,omitempty"`
	// Contract is the stored contract (nil when rejected, errored, or the
	// request was balancing filler). Treat as immutable: memoized decisions
	// share it.
	Contract *contract.Contract `json:"contract,omitempty"`
	// Err reports a storage or decision failure.
	Err string `json:"err,omitempty"`
}

// Granted sums the granted (contracted) rate across the decision's hoses.
func (d *Decision) Granted() float64 {
	if d.Status != StatusApproved && d.Status != StatusNegotiated {
		return 0
	}
	total := 0.0
	for _, h := range d.Hoses {
		if d.Status == StatusApproved {
			total += h.Requested
		} else {
			total += h.Approved
		}
	}
	return total
}

// Options configures the decision path and the service around it.
type Options struct {
	// Approval configures Algorithm 2 (representative TMs, risk simulation,
	// seeds, default SLO). Risk.Workers does not affect decisions.
	Approval approval.Options
	// PeriodDays is the enforcement-period length for granted contracts.
	// Default forecast.QuarterDays.
	PeriodDays int
	// MaxBatch bounds how many queued single submissions coalesce into one
	// risk pass. Default 16.
	MaxBatch int
	// Retain bounds how many decided requests the service keeps queryable.
	// Default 1024.
	Retain int
	// MemoMaxEntries bounds the decision memo (whole-batch LRU entries kept
	// warm between topology deltas). Default 1024; evictions are counted by
	// entitlement_grantd_memo_evictions_total.
	MemoMaxEntries int
	// MaxQueue bounds the admission queue in requests; a submission that
	// would push past it is shed with ErrOverloaded (wrapped retryable for
	// the wire layer, with ShedRetryAfter as the hint) and counted by
	// entitlement_grantd_shed_total. 0 leaves the queue unbounded.
	MaxQueue int
	// MaxQueueDelay bounds how long a submission may wait for its risk
	// pass; older submissions fail with StatusQueueTimeout instead of
	// being decided late. 0 disables the bound.
	MaxQueueDelay time.Duration
	// ShedRetryAfter is the retry-after hint attached to overload sheds.
	// Default 500ms.
	ShedRetryAfter time.Duration
	// WAL configures the write-ahead decision journal; an empty Dir keeps
	// the service purely in-memory (decisions do not survive a restart).
	WAL WALOptions
	// Now supplies the service clock (tests pin it). Default time.Now.
	Now func() time.Time
	// Tracer is the span collector submission lifecycles record into
	// (submit → queue → decide → journal → push). Nil uses the process-wide
	// trace.Default(), where the wire layer also records.
	Tracer *trace.Collector
}

func (o Options) withDefaults() Options {
	if o.PeriodDays <= 0 {
		o.PeriodDays = forecast.QuarterDays
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.Retain <= 0 {
		o.Retain = 1024
	}
	if o.MemoMaxEntries <= 0 {
		o.MemoMaxEntries = 1024
	}
	if o.ShedRetryAfter <= 0 {
		o.ShedRetryAfter = 500 * time.Millisecond
	}
	o.WAL = o.WAL.withDefaults()
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// slo resolves the effective SLO for a request (request override, then the
// approval map, then the default), mirroring approval's resolution.
func (o *Options) slo(r *Request) contract.SLO {
	if r.SLO != 0 {
		return r.SLO
	}
	if s, ok := o.Approval.SLOs[r.NPG]; ok {
		return s
	}
	if o.Approval.DefaultSLO != 0 {
		return o.Approval.DefaultSLO
	}
	return 0.99 // approval's own default
}

// DecideBatch decides a set of requests in ONE approval pass — the hoses of
// every request compete for the same capacity, exactly like the batch CLI's
// single Approve call. The batch is canonicalized first (requests sorted by
// Signature, then the flat hose list by key and rate), so the same request
// set produces byte-identical decisions regardless of submission order or
// Risk.Workers. Decisions return in input order.
//
// Requests whose hoses collide (same flow-set key in two requests) cannot
// share a pass — the risk engine requires unique demand keys — and make the
// whole batch error; the Service's queue assembler never co-batches them.
func DecideBatch(topo *topology.Topology, reqs []Request, opts Options) ([]Decision, error) {
	o := opts.withDefaults()
	if len(reqs) == 0 {
		return nil, nil
	}
	for i := range reqs {
		if err := reqs[i].Validate(topo); err != nil {
			return nil, err
		}
	}

	// Canonical request order (output stays in input order).
	ord := make([]int, len(reqs))
	sigs := make([]string, len(reqs))
	for i := range reqs {
		ord[i] = i
		sigs[i] = reqs[i].Signature()
	}
	sort.SliceStable(ord, func(a, b int) bool { return sigs[ord[a]] < sigs[ord[b]] })

	// Per-NPG SLO map for approval; conflicting overrides cannot share a
	// pass (the SLO is an NPG-level property).
	slos := make(map[contract.NPG]contract.SLO, len(reqs))
	for k, v := range o.Approval.SLOs {
		slos[k] = v
	}
	for _, i := range ord {
		r := &reqs[i]
		if r.SLO == 0 {
			continue
		}
		if prev, ok := slos[r.NPG]; ok && prev != r.SLO {
			return nil, fmt.Errorf("granting: conflicting SLOs for %s in one batch (%v vs %v)", r.NPG, float64(prev), float64(r.SLO))
		}
		slos[r.NPG] = r.SLO
	}

	// Flatten, remembering each hose's owning (request, position), then
	// sort canonically: sampler seeds are positional, so hose order is part
	// of the assessment's identity.
	type ownerRef struct{ req, hose int }
	var flat []hose.Request
	var owners []ownerRef
	dup := make(map[string]bool)
	for _, ri := range ord {
		for hi := range reqs[ri].Hoses {
			h := reqs[ri].Hoses[hi]
			if dup[h.Key()] {
				return nil, fmt.Errorf("granting: hose %s appears in two requests of one batch", h.Key())
			}
			dup[h.Key()] = true
			flat = append(flat, h)
			owners = append(owners, ownerRef{ri, hi})
		}
	}
	perm := make([]int, len(flat))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := flat[perm[a]].Key(), flat[perm[b]].Key()
		if ka != kb {
			return ka < kb
		}
		return flat[perm[a]].Rate < flat[perm[b]].Rate
	})
	sorted := make([]hose.Request, len(flat))
	for p, idx := range perm {
		sorted[p] = flat[idx]
	}

	apprOpts := o.Approval
	apprOpts.SLOs = slos
	res, err := approval.Approve(topo, sorted, apprOpts)
	if err != nil {
		return nil, err
	}
	// Counter-proposals: the RAILS-style search when enabled (each move
	// priced by a warm re-approval), the plain admittable-volume form
	// otherwise.
	proposals, err := approval.NegotiateSearch(topo, sorted, res, apprOpts)
	if err != nil {
		return nil, err
	}

	// Split the flat outcome back per request. Negotiate emits proposals in
	// approval order for each not-fully-approved hose, so a running index
	// attributes them.
	decs := make([]Decision, len(reqs))
	for i := range reqs {
		decs[i] = Decision{
			NPG:   reqs[i].NPG,
			Hoses: make([]HoseDecision, len(reqs[i].Hoses)),
		}
	}
	propIdx := 0
	for p := range res.Approvals {
		a := &res.Approvals[p]
		owner := owners[perm[p]]
		decs[owner.req].Hoses[owner.hose] = HoseDecision{
			Key:           a.Request.Key(),
			Requested:     a.Request.Rate,
			Approved:      a.ApprovedRate,
			FullyApproved: a.FullyApproved,
		}
		if !a.FullyApproved {
			decs[owner.req].Proposals = append(decs[owner.req].Proposals, proposals[propIdx])
			propIdx++
		}
	}

	now := o.Now().UTC()
	for i := range decs {
		buildDecision(&reqs[i], &decs[i], &o, now)
	}
	return decs, nil
}

// buildDecision assigns the status and materializes the contract for one
// decided request.
func buildDecision(req *Request, d *Decision, o *Options, now time.Time) {
	full := true
	for _, h := range d.Hoses {
		if !h.FullyApproved {
			full = false
			break
		}
	}
	switch {
	case full:
		d.Status = StatusApproved
	case req.Negotiate:
		d.Status = StatusNegotiated
	default:
		d.Status = StatusRejected
		return
	}
	if req.NPG == hose.DummyNPG {
		return // balancing filler is not a real customer
	}
	start := now
	if req.StartUnix != 0 {
		start = time.Unix(req.StartUnix, 0).UTC()
	}
	end := start.Add(time.Duration(o.PeriodDays) * 24 * time.Hour)
	c := &contract.Contract{NPG: req.NPG, SLO: o.slo(req), Approved: true}
	for hi := range req.Hoses {
		h := &req.Hoses[hi]
		rate := d.Hoses[hi].Approved
		if d.Status == StatusApproved {
			rate = h.Rate // approved in full: grant the exact ask
		}
		c.Entitlements = append(c.Entitlements, contract.Entitlement{
			NPG: req.NPG, Class: h.Class, Region: h.Region,
			Direction: h.Direction, Rate: rate, Start: start, End: end,
		})
	}
	d.Contract = c
}

// FormatDecision renders one decision in the fixed text form shared by the
// batch CLI and grantd — the byte-identity surface the determinism tests
// pin. IDs and transport errors are excluded on purpose.
func FormatDecision(w *strings.Builder, d *Decision) {
	requested, granted := 0.0, d.Granted()
	for _, h := range d.Hoses {
		requested += h.Requested
	}
	fmt.Fprintf(w, "%s: %s  %d hoses, %.1fG of %.1fG granted\n",
		d.NPG, strings.ToUpper(string(d.Status)), len(d.Hoses), granted/1e9, requested/1e9)
	for _, h := range d.Hoses {
		status := "FULL"
		if !h.FullyApproved {
			status = "PARTIAL"
		}
		fmt.Fprintf(w, "  %-48s %10.1fG of %10.1fG  %s\n", h.Key, h.Approved/1e9, h.Requested/1e9, status)
	}
	for _, p := range d.Proposals {
		fmt.Fprintf(w, "  proposal: %s admittable %.1fG (short %.1fG), alternatives %v\n",
			p.Hose.Key(), p.AdmittableRate/1e9, p.Shortfall/1e9, p.AlternativeRegions)
		if p.CounterOffer != nil {
			fmt.Fprintf(w, "  counter-offer: %s at %.1fG (%d evals)\n",
				p.CounterOffer.Key(), p.CounterOffer.Rate/1e9, p.Evals)
		}
	}
	if d.Contract != nil {
		total := 0.0
		for _, e := range d.Contract.Entitlements {
			total += e.Rate
		}
		fmt.Fprintf(w, "  contract: SLO %.4f, %d entitlements, %.1fG total\n",
			float64(d.Contract.SLO), len(d.Contract.Entitlements), total/1e9)
	}
}

// FormatDecisions renders decisions in order, one block each.
func FormatDecisions(decs []Decision) string {
	var b strings.Builder
	for i := range decs {
		FormatDecision(&b, &decs[i])
	}
	return b.String()
}
