package granting

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"entitlement/internal/topology"
)

// walTestRecords builds a small representative record stream.
func walTestRecords() []walRecord {
	reqs := testRequests()
	return []walRecord{
		{T: "ckpt", Ckpt: &walCkpt{Seq: 3, Stats: Stats{Submitted: 3, Decided: 1}}},
		{T: "sub", Sub: &walSub{IDs: []string{"g-4", "g-5"}, Reqs: reqs[:2]}},
		{T: "dec", Dec: &walDec{Sig: "sig-a", IDs: []string{"g-4", "g-5"}, Decs: []Decision{
			{ID: "g-4", NPG: "Web", Status: StatusApproved},
			{ID: "g-5", NPG: "Web", Status: StatusRejected, Err: "no"},
		}}},
		{T: "sub", Sub: &walSub{IDs: []string{"g-6"}, Reqs: reqs[2:3]}},
	}
}

func encodeAll(t *testing.T, recs []walRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range recs {
		b, err := encodeWALRecord(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

func TestWALRecordRoundtrip(t *testing.T) {
	want := walTestRecords()
	stream := encodeAll(t, want)
	got, valid, truncated := decodeWALStream(bytes.NewReader(stream))
	if truncated {
		t.Fatal("clean stream reported truncated")
	}
	if valid != int64(len(stream)) {
		t.Fatalf("valid = %d, want %d", valid, len(stream))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Fatalf("roundtrip diverged:\nwant %s\ngot  %s", wj, gj)
	}
}

// TestWALDecodeTornAndCorrupt drives every invalid-tail shape through the
// decoder: it must keep the valid prefix, report truncation, and never
// error or panic.
func TestWALDecodeTornAndCorrupt(t *testing.T) {
	recs := walTestRecords()
	stream := encodeAll(t, recs)
	// Offsets of each record boundary.
	var bounds []int64
	off := int64(0)
	for i := range recs {
		b, _ := encodeWALRecord(&recs[i])
		off += int64(len(b))
		bounds = append(bounds, off)
	}

	check := func(name string, data []byte, wantRecs int, wantValid int64) {
		t.Helper()
		got, valid, truncated := decodeWALStream(bytes.NewReader(data))
		if !truncated {
			t.Errorf("%s: truncated=false", name)
		}
		if len(got) != wantRecs || valid != wantValid {
			t.Errorf("%s: got %d records valid=%d, want %d records valid=%d",
				name, len(got), valid, wantRecs, wantValid)
		}
	}

	// Torn header: cut mid-way through the last record's header.
	check("torn header", stream[:bounds[2]+3], 3, bounds[2])
	// Torn body: cut mid-way through the last record's body.
	check("torn body", stream[:bounds[3]-2], 3, bounds[2])
	// CRC flip: corrupt one payload byte of the third record.
	flipped := append([]byte(nil), stream...)
	flipped[bounds[1]+walHeaderSize] ^= 0x01
	check("payload bit flip", flipped, 2, bounds[1])
	// Zero length prefix.
	zeroed := append([]byte(nil), stream[:bounds[1]]...)
	zeroed = append(zeroed, make([]byte, walHeaderSize)...)
	check("zero length", zeroed, 2, bounds[1])
	// Oversized length prefix.
	big := append([]byte(nil), stream[:bounds[0]]...)
	var hdr [walHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], maxWALRecord+1)
	big = append(big, hdr[:]...)
	check("oversized length", big, 1, bounds[0])
	// Unknown record type with a valid checksum: replay must stop there.
	unk, err := encodeWALRecord(&walRecord{T: "mystery"})
	if err != nil {
		t.Fatal(err)
	}
	check("unknown type", append(append([]byte(nil), stream[:bounds[1]]...), unk...), 2, bounds[1])
	// Self-inconsistent sub (ids without reqs) with a valid checksum.
	bad, err := encodeWALRecord(&walRecord{T: "sub", Sub: &walSub{IDs: []string{"g-9"}}})
	if err != nil {
		t.Fatal(err)
	}
	check("inconsistent sub", append(append([]byte(nil), stream[:bounds[0]]...), bad...), 1, bounds[0])
	// Pure garbage from byte zero recovers to empty state.
	check("garbage", []byte("this is not a journal at all"), 0, 0)
}

// TestReplayWALAcrossGenerations pins the replay order and the checkpoint
// reset: a later generation's checkpoint wholly replaces earlier state.
func TestReplayWALAcrossGenerations(t *testing.T) {
	dir := t.TempDir()
	recs := walTestRecords()
	// Gen 1: a checkpoint plus a sub that the gen-2 checkpoint supersedes.
	if err := os.WriteFile(walGen(dir, 1), encodeAll(t, recs[:2]), 0o644); err != nil {
		t.Fatal(err)
	}
	// Gen 2: checkpoint carrying one decided id, then sub + dec + sub.
	gen2 := []walRecord{
		{T: "ckpt", Ckpt: &walCkpt{Seq: 3, Decided: []walDecided{{ID: "g-1", Dec: Decision{ID: "g-1", NPG: "Old", Status: StatusApproved}}}}},
		recs[1], recs[2], recs[3],
	}
	if err := os.WriteFile(walGen(dir, 2), encodeAll(t, gen2), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Error("clean generations reported truncated")
	}
	if st.Seq != 6 {
		t.Errorf("Seq = %d, want 6 (highest journaled id)", st.Seq)
	}
	if len(st.Decided) != 3 { // g-1 from the checkpoint, g-4 and g-5 from the dec
		t.Fatalf("Decided = %d entries, want 3", len(st.Decided))
	}
	if st.Decided[0].ID != "g-1" || st.Decided[1].ID != "g-4" || st.Decided[2].ID != "g-5" {
		t.Errorf("Decided order = %s,%s,%s", st.Decided[0].ID, st.Decided[1].ID, st.Decided[2].ID)
	}
	if len(st.Pending) != 1 || st.Pending[0].IDs[0] != "g-6" {
		t.Fatalf("Pending = %+v, want just g-6", st.Pending)
	}
}

// TestJournalCheckpointRotation forces rotations with a tiny checkpoint
// bound and verifies old generations are pruned once the snapshot is
// durable: the directory never accumulates journal files.
func TestJournalCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	j, st, err := openJournal(WALOptions{Dir: dir, Fsync: FsyncNone, CheckpointBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.Truncated {
		t.Fatalf("fresh dir recovered %d records truncated=%v", st.Records, st.Truncated)
	}
	reqs := testRequests()
	for i := 0; i < 50; i++ {
		ids := []string{"g-1"}
		if err := j.appendSub(ids, reqs[:1]); err != nil {
			t.Fatal(err)
		}
		if j.needCheckpoint() {
			if err := j.checkpoint(&walCkpt{Seq: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	gens, err := listWALGens(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("after rotations %d generations remain (%v), want 1", len(gens), gens)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The surviving generation replays cleanly.
	if _, err := ReplayWAL(dir); err != nil {
		t.Fatal(err)
	}
}

// TestParseFsyncPolicy covers the flag surface.
func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"": FsyncBatch, "none": FsyncNone, "batch": FsyncBatch, "always": FsyncAlways,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("everysecond"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestServiceCleanRestart pins the simplest durability contract: stop a
// journaled service cleanly, reopen the same directory, and every decided
// id answers with byte-identical JSON while stats carry over.
func TestServiceCleanRestart(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(2)
	opts.WAL = WALOptions{Dir: dir, Fsync: FsyncNone}
	topo := topology.FigureSix()

	svc, err := OpenService(topo, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := svc.SubmitGroup(testRequests())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for _, id := range ids {
		d, err := svc.Wait(id, 2*time.Minute)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		want[id], _ = json.Marshal(d)
	}
	st := svc.Stats()
	svc.Close()

	svc2, err := OpenService(topology.FigureSix(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st2 := svc2.Stats()
	if st2.RecoveredDecided != int64(len(ids)) || st2.RecoveredPending != 0 {
		t.Errorf("recovered %d decided / %d pending, want %d / 0",
			st2.RecoveredDecided, st2.RecoveredPending, len(ids))
	}
	if st2.Decided != st.Decided || st2.Submitted != st.Submitted {
		t.Errorf("stats did not carry over: %+v vs %+v", st2, st)
	}
	for id, w := range want {
		state, d := svc2.Status(id)
		if state != "decided" || d == nil {
			t.Fatalf("id %s after restart: state %q", id, state)
		}
		g, _ := json.Marshal(d)
		if !bytes.Equal(g, w) {
			t.Errorf("id %s not byte-identical after restart:\nwant %s\ngot  %s", id, w, g)
		}
	}
	// New ids must not collide with journaled ones.
	nid, err := svc2.Submit(testRequests()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := want[nid]; taken {
		t.Errorf("restart re-issued id %s", nid)
	}
	if _, err := svc2.Wait(nid, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	// A directory that was never a journal recovers to zero state rather
	// than failing startup.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
}
