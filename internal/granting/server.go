// The wire-RPC surface of the granting service: the same length-prefixed
// JSON protocol the contract database and rate store speak, so one client
// stack (deadlines, reconnect, request-id tracing) covers the whole control
// plane.
//
// Methods:
//
//	submit  {requests: [...]}        → {ids: [...]}     (async; group = one pass)
//	decide  {id, wait_ms}            → Decision          (blocks up to wait_ms)
//	status  {id}                     → {state, decision}
//	report  {recent}                 → {stats, decisions}

package granting

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"entitlement/internal/obs/trace"
	"entitlement/internal/wire"
)

type submitArgs struct {
	Requests []Request `json:"requests"`
}

type submitReply struct {
	IDs []string `json:"ids"`
	// Trace is the 32-hex trace ID of the submission's span tree. When the
	// caller propagated its own span context it is the caller's trace ID;
	// otherwise the service self-roots one and reports it here so the
	// submitter can still follow the grant through /debug/traces.
	Trace string `json:"trace,omitempty"`
}

type decideArgs struct {
	ID     string `json:"id"`
	WaitMS int64  `json:"wait_ms"`
}

type statusArgs struct {
	ID string `json:"id"`
}

type statusReply struct {
	State    string    `json:"state"`
	Decision *Decision `json:"decision,omitempty"`
}

type reportArgs struct {
	Recent int `json:"recent"`
}

// Report is the service's introspection snapshot.
type Report struct {
	Stats     Stats      `json:"stats"`
	Decisions []Decision `json:"decisions,omitempty"`
}

// maxDecideWait caps how long one decide RPC may hold its connection; the
// client loops, so long waits are a sequence of bounded calls that keep
// working under the wire layer's per-call deadline.
const maxDecideWait = 5 * time.Second

// Server exposes a Service over TCP.
type Server struct {
	svc *Service
	srv *wire.Server
}

// NewServer serves svc on l with default wire options.
func NewServer(l net.Listener, svc *Service) *Server {
	return NewServerOpts(l, svc, wire.ServerOptions{})
}

// NewServerOpts serves svc on l with explicit wire options.
func NewServerOpts(l net.Listener, svc *Service, opts wire.ServerOptions) *Server {
	s := &Server{svc: svc}
	if opts.Service == "" {
		opts.Service = "grantd"
	}
	s.srv = wire.NewServerCtx(l, s.handle, opts)
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.srv.Addr().String() }

// Close shuts the RPC listener down (the Service keeps running; close it
// separately).
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(tc trace.Context, method string, payload json.RawMessage) (interface{}, error) {
	switch method {
	case "submit":
		var a submitArgs
		if err := json.Unmarshal(payload, &a); err != nil {
			return nil, err
		}
		ids, traceID, err := s.svc.SubmitGroupCtx(tc, a.Requests)
		if err != nil {
			return nil, err
		}
		return submitReply{IDs: ids, Trace: traceID}, nil
	case "decide":
		var a decideArgs
		if err := json.Unmarshal(payload, &a); err != nil {
			return nil, err
		}
		wait := time.Duration(a.WaitMS) * time.Millisecond
		if wait <= 0 || wait > maxDecideWait {
			wait = maxDecideWait
		}
		d, err := s.svc.Wait(a.ID, wait)
		if err != nil {
			return nil, err
		}
		return d, nil
	case "status":
		var a statusArgs
		if err := json.Unmarshal(payload, &a); err != nil {
			return nil, err
		}
		state, d := s.svc.Status(a.ID)
		return statusReply{State: state, Decision: d}, nil
	case "report":
		var a reportArgs
		if len(payload) > 0 {
			if err := json.Unmarshal(payload, &a); err != nil {
				return nil, err
			}
		}
		if a.Recent <= 0 {
			a.Recent = 20
		}
		return Report{Stats: s.svc.Stats(), Decisions: s.svc.Recent(a.Recent)}, nil
	default:
		return nil, fmt.Errorf("granting: unknown method %q", method)
	}
}

// Client is the remote granting service.
type Client struct {
	c *wire.Client
}

// Dial connects with default wire options.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, wire.ClientOptions{})
}

// DialOpts connects with explicit failure options.
func DialOpts(addr string, opts wire.ClientOptions) (*Client, error) {
	c, err := wire.DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// SetTrace forwards a trace id into the wire request ids.
func (c *Client) SetTrace(trace string) { c.c.SetTrace(trace) }

// SetSpan forwards a span context into the wire client: subsequent calls
// join the caller's span tree across the wire.
func (c *Client) SetSpan(ctx trace.Context) { c.c.SetSpan(ctx) }

// Submit enqueues one request and returns its id.
func (c *Client) Submit(req Request) (string, error) {
	ids, err := c.SubmitGroup([]Request{req})
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// SubmitGroup enqueues an atomic group (one risk pass).
func (c *Client) SubmitGroup(reqs []Request) ([]string, error) {
	ids, _, err := c.SubmitGroupTrace(reqs)
	return ids, err
}

// SubmitGroupTrace is SubmitGroup plus the trace ID of the submission's
// span tree on the server (the caller's own trace ID when a span context
// was forwarded via SetSpan, a server-rooted one otherwise).
func (c *Client) SubmitGroupTrace(reqs []Request) ([]string, string, error) {
	var r submitReply
	if err := c.c.Call("submit", submitArgs{Requests: reqs}, &r); err != nil {
		return nil, "", err
	}
	return r.IDs, r.Trace, nil
}

// Decide blocks until the decision for id lands or timeout elapses. It
// issues bounded decide RPCs in a loop so each call stays inside the wire
// layer's per-call deadline.
func (c *Client) Decide(id string, timeout time.Duration) (*Decision, error) {
	deadline := time.Now().Add(timeout)
	for {
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, ErrPending
		}
		if wait > maxDecideWait {
			wait = maxDecideWait
		}
		var d Decision
		err := c.c.Call("decide", decideArgs{ID: id, WaitMS: wait.Milliseconds()}, &d)
		if err == nil {
			return &d, nil
		}
		if !isPending(err) {
			return nil, err
		}
	}
}

// SubmitWait submits one request and blocks for its decision. When the
// server sheds the submission under overload it honors the retry-after
// hint, backing off and resubmitting until the timeout budget runs out;
// the last overload error is returned if the queue never opens up.
func (c *Client) SubmitWait(req Request, timeout time.Duration) (*Decision, error) {
	deadline := time.Now().Add(timeout)
	for {
		id, err := c.Submit(req)
		if err == nil {
			return c.Decide(id, time.Until(deadline))
		}
		var oe *wire.OverloadedError
		if !errors.As(err, &oe) {
			return nil, err
		}
		pause := oe.RetryAfter
		if pause <= 0 {
			pause = 100 * time.Millisecond
		}
		if time.Until(deadline) < pause {
			return nil, err
		}
		time.Sleep(pause)
	}
}

// Status asks for the request's state without blocking.
func (c *Client) Status(id string) (string, *Decision, error) {
	var r statusReply
	if err := c.c.Call("status", statusArgs{ID: id}, &r); err != nil {
		return "", nil, err
	}
	return r.State, r.Decision, nil
}

// Report fetches the stats snapshot plus recent decisions.
func (c *Client) Report(recent int) (*Report, error) {
	var r Report
	if err := c.c.Call("report", reportArgs{Recent: recent}, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// isPending recognizes the server-side ErrPending coming back as a
// RemoteError string.
func isPending(err error) bool {
	return err != nil && strings.Contains(err.Error(), "decision pending")
}

// Handler serves the Report over HTTP (mounted as /grants on the obs
// endpoint): text by default, JSON with ?format=json or an Accept header
// asking for application/json.
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := Report{Stats: s.Stats(), Decisions: s.Recent(20)}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := rep.Stats
		fmt.Fprintf(w, "granting: %d submitted, %d decided (%d approved, %d negotiated, %d rejected, %d errors)\n",
			st.Submitted, st.Decided, st.Approved, st.Negotiated, st.Rejected, st.Errors)
		fmt.Fprintf(w, "queue %d deep, %d batches, memo %d/%d hits, topology epoch %d\n\n",
			st.QueueDepth, st.Batches, st.MemoHits, st.MemoHits+st.MemoMisses, st.Epoch)
		for i := range rep.Decisions {
			var b strings.Builder
			FormatDecision(&b, &rep.Decisions[i])
			fmt.Fprintf(w, "[%s] %s", rep.Decisions[i].ID, b.String())
		}
	})
}
