package granting

import (
	"strings"
	"sync"
	"testing"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/hose"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

var testStart = time.Date(2026, 5, 1, 0, 0, 0, 0, time.UTC)

// testOptions keeps decisions fast but real: Monte-Carlo risk over the
// FigureSix mesh.
func testOptions(workers int) Options {
	return Options{
		Approval: approval.Options{
			RepresentativeTMs: 3,
			DefaultSLO:        0.99,
			Risk:              risk.Options{Scenarios: 60, Seed: 11, Workers: workers},
			Seed:              7,
		},
		PeriodDays: 90,
	}
}

// testRequests builds a mixed batch: multiple NPGs, classes, directions, an
// explicit SLO override, a negotiator, and one hopeless oversubscription.
func testRequests() []Request {
	start := testStart.Unix()
	return []Request{
		{NPG: "Web", StartUnix: start, Hoses: []hose.Request{
			{Class: contract.C2Low, Region: "A", Direction: contract.Egress, Rate: 40e9},
			{Class: contract.C2Low, Region: "B", Direction: contract.Ingress, Rate: 30e9},
		}},
		{NPG: "Ads", SLO: 0.95, StartUnix: start, Hoses: []hose.Request{
			{Class: contract.C2Low, Region: "C", Direction: contract.Egress, Rate: 55e9},
		}},
		{NPG: "Batch", Negotiate: true, StartUnix: start, Hoses: []hose.Request{
			{Class: contract.C3Low, Region: "D", Direction: contract.Egress, Rate: 80e9},
		}},
		{NPG: "Hog", StartUnix: start, Hoses: []hose.Request{
			{Class: contract.C3Low, Region: "E", Direction: contract.Egress, Rate: 9e12},
		}},
	}
}

// TestServiceMatchesBatch pins the determinism guarantee end to end: the
// service deciding a group at Workers=N, a plain DecideBatch at Workers=1,
// and a reversed-order submission must all produce byte-identical formatted
// decisions; a re-submitted group must come from the decision memo without
// changing a byte.
func TestServiceMatchesBatch(t *testing.T) {
	topo := topology.FigureSix()
	reqs := testRequests()

	batchDecs, err := DecideBatch(topo, append([]Request(nil), reqs...), testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	want := FormatDecisions(batchDecs)
	if !strings.Contains(want, "REJECTED") {
		t.Fatalf("expected the oversubscribed request to be rejected:\n%s", want)
	}
	if !strings.Contains(want, "proposal: Hog/c3_low/E/egress") {
		t.Fatalf("expected a counter-proposal for the oversubscribed hose:\n%s", want)
	}

	svc := NewService(topo, nil, testOptions(4))
	defer svc.Close()

	decide := func(rs []Request) []Decision {
		t.Helper()
		ids, err := svc.SubmitGroup(rs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Decision, len(ids))
		for i, id := range ids {
			d, err := svc.Wait(id, 2*time.Minute)
			if err != nil {
				t.Fatalf("wait %s: %v", id, err)
			}
			d2 := *d
			d2.ID = "" // ids differ per submission; decisions must not
			out[i] = d2
		}
		return out
	}

	got := FormatDecisions(decide(append([]Request(nil), reqs...)))
	if got != want {
		t.Errorf("service (workers=4) diverged from batch (workers=1):\n--- batch ---\n%s--- service ---\n%s", want, got)
	}

	// Arrival order must not matter: reverse the group, match per NPG.
	rev := make([]Request, len(reqs))
	for i := range reqs {
		rev[i] = reqs[len(reqs)-1-i]
	}
	revDecs := decide(rev)
	for i := range rev {
		if revDecs[i].NPG != rev[i].NPG {
			t.Fatalf("reversed submission misattributed decision %d: got %s, want %s", i, revDecs[i].NPG, rev[i].NPG)
		}
	}
	byNPG := make(map[contract.NPG]Decision)
	for _, d := range revDecs {
		byNPG[d.NPG] = d
	}
	for _, bd := range batchDecs {
		var b1, b2 strings.Builder
		bd.ID = ""
		FormatDecision(&b1, &bd)
		rd, ok := byNPG[bd.NPG]
		if !ok {
			t.Fatalf("reversed submission lost %s", bd.NPG)
		}
		FormatDecision(&b2, &rd)
		if b1.String() != b2.String() {
			t.Errorf("reversed arrival changed %s:\n%s\nvs\n%s", bd.NPG, b1.String(), b2.String())
		}
	}

	// Same composition again: served from the decision memo.
	before := svc.Stats()
	again := FormatDecisions(decide(append([]Request(nil), reqs...)))
	if again != want {
		t.Errorf("memoized decisions diverged:\n%s", again)
	}
	after := svc.Stats()
	if after.MemoHits <= before.MemoHits {
		t.Errorf("expected a decision-memo hit, stats %+v -> %+v", before, after)
	}
}

// TestMemoHitRespectsSubmissionOrder: resubmitting the same request SET in
// a different order must serve from the decision memo AND pair every id
// with its own request's decision (regression: the memo used to return the
// first batch's decisions in the first batch's order, so the oversubscribed
// request could receive another NPG's approval).
func TestMemoHitRespectsSubmissionOrder(t *testing.T) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, testOptions(0))
	defer svc.Close()

	decide := func(rs []Request) []Decision {
		t.Helper()
		ids, err := svc.SubmitGroup(rs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Decision, len(ids))
		for i, id := range ids {
			d, err := svc.Wait(id, 2*time.Minute)
			if err != nil {
				t.Fatalf("wait %s: %v", id, err)
			}
			out[i] = *d
		}
		return out
	}

	reqs := testRequests()
	first := decide(append([]Request(nil), reqs...))
	rev := make([]Request, len(reqs))
	for i := range reqs {
		rev[i] = reqs[len(reqs)-1-i]
	}
	before := svc.Stats()
	revDecs := decide(rev)
	after := svc.Stats()
	if after.MemoHits <= before.MemoHits {
		t.Fatalf("reordered resubmission missed the memo: %+v -> %+v", before, after)
	}
	for i := range rev {
		if revDecs[i].NPG != rev[i].NPG {
			t.Errorf("decision %d attributed to %s, want %s", i, revDecs[i].NPG, rev[i].NPG)
		}
		want := first[len(reqs)-1-i]
		if revDecs[i].Status != want.Status {
			t.Errorf("%s: status %s on memo hit, want %s", rev[i].NPG, revDecs[i].Status, want.Status)
		}
	}
}

// TestServiceStoresContracts wires a contractdb.Store sink and checks the
// grant is immediately visible to the enforcement query path.
func TestServiceStoresContracts(t *testing.T) {
	topo := topology.FigureSix()
	db := contractdb.NewStore()
	svc := NewService(topo, db, testOptions(0))
	defer svc.Close()

	id, err := svc.Submit(Request{
		NPG: "Web", Negotiate: true, StartUnix: testStart.Unix(),
		Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Direction: contract.Egress, Rate: 40e9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := svc.Wait(id, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d.Contract == nil {
		t.Fatalf("no contract granted: %+v", d)
	}
	at := testStart.Add(24 * time.Hour)
	rate, found, err := db.EntitledRate("Web", contract.C2Low, "A", contract.Egress, at)
	if err != nil || !found {
		t.Fatalf("granted contract not queryable: rate=%v found=%v err=%v", rate, found, err)
	}
	if rate != d.Contract.Entitlements[0].Rate {
		t.Errorf("stored rate %v != granted %v", rate, d.Contract.Entitlements[0].Rate)
	}
	if _, ok := db.SLO("Web"); !ok {
		t.Error("granted contract has no queryable SLO")
	}
}

// TestConcurrentSinglesCoalesce floods the queue from many goroutines and
// checks every submission decides (batching must not lose or wedge work).
func TestConcurrentSinglesCoalesce(t *testing.T) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, testOptions(0))
	defer svc.Close()

	regions := []topology.Region{"A", "B", "C", "D", "E"}
	const n = 10
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := svc.Submit(Request{
				NPG: contract.NPG("svc-" + string(rune('a'+i))), StartUnix: testStart.Unix(),
				Negotiate: true,
				Hoses: []hose.Request{{
					Class: contract.C3Low, Region: regions[i%len(regions)],
					Direction: contract.Egress, Rate: float64(5+i) * 1e9,
				}},
			})
			if err != nil {
				errs <- err
				return
			}
			d, err := svc.Wait(id, 2*time.Minute)
			if err != nil {
				errs <- err
				return
			}
			if d.Status != StatusApproved && d.Status != StatusNegotiated {
				return // outcome depends on co-batched competition; liveness is the assertion
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Decided != n {
		t.Fatalf("decided %d of %d", st.Decided, n)
	}
	if st.Batches > st.Decided {
		t.Errorf("more batches (%d) than requests (%d)?", st.Batches, st.Decided)
	}
}

// TestEpochFlushInvalidatesMemo: a topology mutation must drop the warm
// decisions (the risk they encode is stale).
func TestEpochFlushInvalidatesMemo(t *testing.T) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, testOptions(0))
	defer svc.Close()

	req := Request{
		NPG: "Web", Negotiate: true, StartUnix: testStart.Unix(),
		Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Direction: contract.Egress, Rate: 40e9}},
	}
	submit := func() *Decision {
		t.Helper()
		id, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		d, err := svc.Wait(id, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	submit()
	submit()
	st := svc.Stats()
	if st.MemoHits == 0 {
		t.Fatalf("expected a memo hit before the topology change: %+v", st)
	}
	if err := topo.SetCapacity(0, 2e12); err != nil {
		t.Fatal(err)
	}
	submit()
	st2 := svc.Stats()
	if st2.MemoMisses <= st.MemoMisses {
		t.Errorf("topology change did not flush the memo: %+v -> %+v", st, st2)
	}
}

// TestValidation covers the request-level rejections.
func TestValidation(t *testing.T) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, testOptions(0))
	defer svc.Close()

	cases := []Request{
		{},         // no NPG
		{NPG: "X"}, // no hoses
		{NPG: "X", SLO: 1.5, Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Rate: 1e9}}},                                        // bad SLO
		{NPG: "X", Hoses: []hose.Request{{NPG: "Y", Class: contract.C2Low, Region: "A", Rate: 1e9}}},                                        // foreign hose
		{NPG: "X", Hoses: []hose.Request{{Class: contract.C2Low, Region: "NOPE", Rate: 1e9}}},                                               // unknown region
		{NPG: "X", Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Rate: -1}}},                                                   // negative rate
		{NPG: "X", Hoses: []hose.Request{{Class: contract.Class(99), Region: "A", Rate: 1e9}}},                                              // bad class
		{NPG: "X", Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Rate: 1e9}, {Class: contract.C2Low, Region: "A", Rate: 2e9}}}, // dup key
	}
	for i, req := range cases {
		if _, err := svc.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
	}
	if _, err := DecideBatch(topo, []Request{
		{NPG: "X", StartUnix: 1, Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Rate: 1e9}}},
		{NPG: "X", StartUnix: 2, Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Rate: 1e9}}},
	}, testOptions(0)); err == nil {
		t.Error("cross-request duplicate hose key accepted in one batch")
	}
	if _, err := DecideBatch(topo, []Request{
		{NPG: "X", SLO: 0.9, StartUnix: 1, Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Rate: 1e9}}},
		{NPG: "X", SLO: 0.99, StartUnix: 1, Hoses: []hose.Request{{Class: contract.C2Low, Region: "B", Rate: 1e9}}},
	}, testOptions(0)); err == nil {
		t.Error("conflicting per-NPG SLOs accepted in one batch")
	}
}

// TestDummyNPGSkipsContract: balancing filler decides but never stores.
func TestDummyNPGSkipsContract(t *testing.T) {
	topo := topology.FigureSix()
	db := contractdb.NewStore()
	svc := NewService(topo, db, testOptions(0))
	defer svc.Close()

	id, err := svc.Submit(Request{
		NPG: hose.DummyNPG, Negotiate: true, StartUnix: testStart.Unix(),
		Hoses: []hose.Request{{Class: contract.C3Low, Region: "B", Direction: contract.Ingress, Rate: 5e9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := svc.Wait(id, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d.Contract != nil {
		t.Error("balancing filler produced a stored contract")
	}
	if db.Len() != 0 {
		t.Errorf("dummy contract stored: %d", db.Len())
	}
}
