// The write-ahead decision journal: grantd is the system of record for every
// entitlement, so an accepted submission and a decided batch must both
// survive a crash. The journal is an append-only sequence of length-prefixed,
// CRC-checksummed records in generation-numbered files; a checkpoint record
// opens each generation with a full state snapshot, so replay is "latest
// checkpoint + everything after it" and old generations can be deleted.
//
// Record framing (all integers big-endian):
//
//	4 bytes  payload length n (0 < n <= maxWALRecord)
//	4 bytes  CRC-32C (Castagnoli) of the payload
//	n bytes  payload: one JSON-encoded walRecord
//
// Record types:
//
//	sub   submission accepted: ids + validated requests (StartUnix pinned)
//	dec   batch decided: canonical batch signature + per-request decisions
//	ckpt  checkpoint: id counter, stats, decided table, pending submissions
//
// Recovery invariants (pinned by the crash property test):
//
//   - Replay tolerates a torn tail: decoding stops at the first record whose
//     header, length, checksum, or body is invalid, keeps the valid prefix,
//     and never fails or panics on arbitrary bytes (FuzzJournalReplay).
//   - A request id whose dec record survived is served byte-identically
//     after restart: the decision JSON round-trips exactly (encoding/json
//     renders float64 shortest-roundtrip, so equal structs re-render to
//     equal bytes).
//   - A sub record without a surviving dec record is re-queued and
//     re-decided deterministically: StartUnix was pinned at the original
//     submission, and the decider re-coalesces the recovered queue in the
//     original order.
//   - A decision that was served but whose dec record was lost to the torn
//     tail is re-derived by the same determinism, so durability of the dec
//     record is a latency optimization for restarts, not a correctness
//     requirement — which is why a journal append failure inside decide()
//     degrades to a metric instead of failing the decision.
package granting

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FsyncPolicy says when the journal calls fsync.
type FsyncPolicy string

// Fsync policies, weakest to strongest.
const (
	// FsyncNone never syncs; the OS flushes on its own schedule. A crash
	// can lose recent records (they are re-derived deterministically), a
	// clean restart loses nothing.
	FsyncNone FsyncPolicy = "none"
	// FsyncBatch (the default) syncs once per decided batch and per
	// checkpoint; accepted-but-undecided submissions may be lost to a
	// crash, decisions survive.
	FsyncBatch FsyncPolicy = "batch"
	// FsyncAlways syncs after every record: an accepted submission is
	// durable before Submit returns.
	FsyncAlways FsyncPolicy = "always"
)

// ParseFsyncPolicy parses the flag form of a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncNone, FsyncBatch, FsyncAlways:
		return FsyncPolicy(s), nil
	case "":
		return FsyncBatch, nil
	}
	return "", fmt.Errorf("granting: unknown fsync policy %q (want none, batch, or always)", s)
}

// WALOptions configure the write-ahead decision journal.
type WALOptions struct {
	// Dir holds the journal files; empty disables durability entirely.
	Dir string
	// Fsync is the sync policy. Default FsyncBatch.
	Fsync FsyncPolicy
	// CheckpointBytes rotates the journal (snapshot + truncate) once the
	// current generation exceeds this many bytes. Default 1 MiB.
	CheckpointBytes int64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.Fsync == "" {
		o.Fsync = FsyncBatch
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 1 << 20
	}
	return o
}

// maxWALRecord bounds one record's payload; a length prefix beyond it marks
// a corrupt (or torn) tail. Matches the wire layer's frame bound.
const maxWALRecord = 16 << 20

// walHeaderSize is the fixed per-record framing overhead.
const walHeaderSize = 8

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walSub journals one accepted submission (a group decides atomically).
type walSub struct {
	IDs  []string  `json:"ids"`
	Reqs []Request `json:"reqs"`
}

// walDec journals one decided batch. Sig is the canonical batch signature
// ("" when the batch was not memoizable); Decs[i] answers IDs[i].
type walDec struct {
	Sig  string     `json:"sig,omitempty"`
	IDs  []string   `json:"ids"`
	Decs []Decision `json:"decs"`
}

// walDecided is one decided id inside a checkpoint, in retention order.
type walDecided struct {
	ID  string   `json:"id"`
	Dec Decision `json:"dec"`
}

// walCkpt is the full-state snapshot that opens each journal generation.
type walCkpt struct {
	Seq     uint64       `json:"seq"`
	Stats   Stats        `json:"stats"`
	Decided []walDecided `json:"decided,omitempty"`
	Pending []walSub     `json:"pending,omitempty"`
}

// walRecord is the envelope every journal payload decodes into; exactly one
// of the pointers is set, matching T.
type walRecord struct {
	T    string   `json:"t"`
	Sub  *walSub  `json:"sub,omitempty"`
	Dec  *walDec  `json:"dec,omitempty"`
	Ckpt *walCkpt `json:"ckpt,omitempty"`
}

// encodeWALRecord frames one record; the returned length includes the header.
func encodeWALRecord(rec *walRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("granting: journal encode: %w", err)
	}
	if len(body) > maxWALRecord {
		return nil, fmt.Errorf("granting: journal record %d bytes exceeds %d", len(body), maxWALRecord)
	}
	buf := make([]byte, walHeaderSize+len(body))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(body, walCRC))
	copy(buf[walHeaderSize:], body)
	return buf, nil
}

// decodeWALStream reads records until EOF or the first invalid record. It
// never fails on arbitrary bytes: a torn or corrupt tail ends the decode
// with truncated=true and valid holding the byte offset of the last good
// record boundary — exactly where a re-opened journal must truncate.
func decodeWALStream(r io.Reader) (recs []walRecord, valid int64, truncated bool) {
	var hdr [walHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF at a record boundary is a well-formed end; a
			// partial header is a torn tail.
			return recs, valid, !errors.Is(err, io.EOF)
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n == 0 || n > maxWALRecord {
			return recs, valid, true
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return recs, valid, true
		}
		if crc32.Checksum(body, walCRC) != binary.BigEndian.Uint32(hdr[4:8]) {
			return recs, valid, true
		}
		var rec walRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return recs, valid, true
		}
		switch {
		case rec.T == "sub" && rec.Sub != nil && len(rec.Sub.IDs) == len(rec.Sub.Reqs) && len(rec.Sub.IDs) > 0:
		case rec.T == "dec" && rec.Dec != nil && len(rec.Dec.IDs) == len(rec.Dec.Decs) && len(rec.Dec.IDs) > 0:
		case rec.T == "ckpt" && rec.Ckpt != nil:
		default:
			// Unknown type or self-inconsistent record: replay cannot
			// interpret anything after it soundly, so stop here.
			return recs, valid, true
		}
		recs = append(recs, rec)
		valid += walHeaderSize + int64(n)
	}
}

// Recovered is the state replayed from a journal directory.
type Recovered struct {
	// Seq is the highest id counter observed; the service resumes above it.
	Seq uint64
	// Stats are the persistent counters as of the last journaled event.
	Stats Stats
	// Decided holds every decided request id with its exact decision,
	// oldest first (the retention order).
	Decided []walDecided
	// Pending holds accepted-but-undecided submissions in submit order;
	// the service re-queues and re-decides them deterministically.
	Pending []walSub
	// Records counts replayed records across all generations.
	Records int
	// Truncated reports that a torn or corrupt tail was dropped somewhere.
	Truncated bool
}

// walGen names one generation file.
func walGen(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", gen))
}

// listWALGens returns the generation numbers present in dir, ascending.
func listWALGens(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &g); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens, nil
}

// applyWALRecord folds one record into the recovered state.
func (st *Recovered) applyWALRecord(rec *walRecord) {
	switch rec.T {
	case "ckpt":
		ck := rec.Ckpt
		st.Seq = ck.Seq
		st.Stats = ck.Stats
		st.Decided = append(st.Decided[:0], ck.Decided...)
		st.Pending = append(st.Pending[:0], ck.Pending...)
	case "sub":
		st.Pending = append(st.Pending, *rec.Sub)
		st.Stats.Submitted += int64(len(rec.Sub.IDs))
		st.bumpSeq(rec.Sub.IDs)
	case "dec":
		done := make(map[string]bool, len(rec.Dec.IDs))
		for _, id := range rec.Dec.IDs {
			done[id] = true
		}
		// A dec record always covers whole submissions (the decider pops
		// and decides complete groups), so pending entries fall away as
		// units; partial coverage keeps the submission queued.
		kept := st.Pending[:0]
		for _, p := range st.Pending {
			covered := true
			for _, id := range p.IDs {
				if !done[id] {
					covered = false
					break
				}
			}
			if !covered {
				kept = append(kept, p)
			}
		}
		st.Pending = kept
		// Checkpoints carry exact stats; events after the checkpoint fold
		// in here, mirroring decide()/failTimeout() accounting, so a crash
		// recovers the same counters a clean shutdown would have saved.
		// (Memo hit/miss counters stay checkpoint-only: the memo itself is
		// in-memory and rebuilt cold.)
		riskDecided := false
		for i, id := range rec.Dec.IDs {
			st.Decided = append(st.Decided, walDecided{ID: id, Dec: rec.Dec.Decs[i]})
			st.Stats.Decided++
			switch rec.Dec.Decs[i].Status {
			case StatusApproved:
				st.Stats.Approved++
				riskDecided = true
			case StatusNegotiated:
				st.Stats.Negotiated++
				riskDecided = true
			case StatusRejected:
				st.Stats.Rejected++
				riskDecided = true
			case StatusQueueTimeout:
				st.Stats.QueueTimeouts++
			default:
				st.Stats.Errors++
				riskDecided = true
			}
		}
		if riskDecided {
			st.Stats.Batches++
		}
		st.bumpSeq(rec.Dec.IDs)
	}
}

// bumpSeq advances the recovered id counter past every "g-<n>" id seen, so
// a restarted service never re-issues a journaled id.
func (st *Recovered) bumpSeq(ids []string) {
	for _, id := range ids {
		var n uint64
		if _, err := fmt.Sscanf(id, "g-%d", &n); err == nil && n > st.Seq {
			st.Seq = n
		}
	}
}

// ReplayWAL replays every journal generation in dir into a recovered state.
// A missing or empty directory recovers to zero state. Torn or corrupt
// tails truncate that generation's replay; a mid-sequence generation ending
// torn is tolerated because the next generation opens with a checkpoint
// that resets the state wholesale.
func ReplayWAL(dir string) (*Recovered, error) {
	st := &Recovered{}
	gens, err := listWALGens(dir)
	if err != nil {
		return nil, fmt.Errorf("granting: journal scan: %w", err)
	}
	for _, g := range gens {
		f, err := os.Open(walGen(dir, g))
		if err != nil {
			return nil, fmt.Errorf("granting: journal open: %w", err)
		}
		recs, _, truncated := decodeWALStream(f)
		f.Close()
		for i := range recs {
			st.applyWALRecord(&recs[i])
		}
		st.Records += len(recs)
		if truncated {
			st.Truncated = true
			mJournalReplayTruncations.Inc()
		}
	}
	mJournalReplayRecords.Add(int64(st.Records))
	return st, nil
}

// Journal is the service's append handle. All methods are called with the
// service mutex held (the service serializes submitters and the decider),
// so the Journal itself carries no lock.
type Journal struct {
	dir       string
	policy    FsyncPolicy
	ckptEvery int64
	gen       uint64
	f         *os.File
	size      int64 // bytes written to the current generation
}

// openJournal replays dir, then begins a fresh generation with a checkpoint
// of the recovered state — so the torn tail of a crashed generation is
// never appended to, and restart cost stays bounded by the snapshot size.
func openJournal(o WALOptions) (*Journal, *Recovered, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("granting: journal dir: %w", err)
	}
	st, err := ReplayWAL(o.Dir)
	if err != nil {
		return nil, nil, err
	}
	gens, err := listWALGens(o.Dir)
	if err != nil {
		return nil, nil, err
	}
	var next uint64 = 1
	if len(gens) > 0 {
		next = gens[len(gens)-1] + 1
	}
	j := &Journal{dir: o.Dir, policy: o.Fsync, ckptEvery: o.CheckpointBytes, gen: next - 1}
	if err := j.checkpoint(&walCkpt{
		Seq:     st.Seq,
		Stats:   st.Stats,
		Decided: st.Decided,
		Pending: st.Pending,
	}); err != nil {
		return nil, nil, err
	}
	return j, st, nil
}

// append frames rec, writes it to the current generation, and syncs when
// the policy (or force) says so.
func (j *Journal) append(rec *walRecord, force bool) error {
	buf, err := encodeWALRecord(rec)
	if err != nil {
		mJournalErrors.Inc()
		return err
	}
	if _, err := j.f.Write(buf); err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("granting: journal append: %w", err)
	}
	j.size += int64(len(buf))
	mJournalRecords.With(rec.T).Inc()
	mJournalBytes.Add(int64(len(buf)))
	if j.policy == FsyncAlways || (force && j.policy != FsyncNone) {
		if err := j.f.Sync(); err != nil {
			mJournalErrors.Inc()
			return fmt.Errorf("granting: journal sync: %w", err)
		}
		mJournalFsyncs.Inc()
	}
	return nil
}

// appendSub journals one accepted submission. Under FsyncAlways the record
// is durable before Submit returns; under weaker policies a crash may shed
// it (the caller never saw an id either way the decision goes).
func (j *Journal) appendSub(ids []string, reqs []Request) error {
	return j.append(&walRecord{T: "sub", Sub: &walSub{IDs: ids, Reqs: reqs}}, false)
}

// appendDec journals one decided batch; FsyncBatch and FsyncAlways both
// sync here, so a decision the caller observed survives a crash.
func (j *Journal) appendDec(sig string, ids []string, decs []Decision) error {
	return j.append(&walRecord{T: "dec", Dec: &walDec{Sig: sig, IDs: ids, Decs: decs}}, true)
}

// needCheckpoint reports whether the current generation has outgrown the
// rotation bound.
func (j *Journal) needCheckpoint() bool { return j.f == nil || j.size >= j.ckptEvery }

// checkpoint rotates to a new generation: write the snapshot record, sync
// it (unless FsyncNone), then delete every older generation. Old files are
// removed only after the new checkpoint is durable, so a crash between the
// two steps replays the previous generation instead of losing state.
func (j *Journal) checkpoint(ck *walCkpt) error {
	gen := j.gen + 1
	f, err := os.OpenFile(walGen(j.dir, gen), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		mJournalErrors.Inc()
		return fmt.Errorf("granting: journal rotate: %w", err)
	}
	old := j.f
	j.f, j.size, j.gen = f, 0, gen
	if err := j.append(&walRecord{T: "ckpt", Ckpt: ck}, true); err != nil {
		return err
	}
	if j.policy != FsyncNone {
		if d, derr := os.Open(j.dir); derr == nil {
			d.Sync()
			d.Close()
		}
	}
	if old != nil {
		old.Close()
	}
	gens, err := listWALGens(j.dir)
	if err != nil {
		return nil // pruning is best-effort; replay tolerates extra gens
	}
	for _, g := range gens {
		if g < gen {
			os.Remove(walGen(j.dir, g))
		}
	}
	mJournalCheckpoints.Inc()
	return nil
}

// Close syncs and closes the current generation.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	if j.policy != FsyncNone {
		j.f.Sync()
	}
	err := j.f.Close()
	j.f = nil
	return err
}
