package granting

import (
	"sort"
	"testing"
	"time"

	"entitlement/internal/topology"
)

// benchOptions is heavier than testOptions: a realistic scenario count so
// the cold path pays the real Monte-Carlo price.
func benchOptions() Options {
	o := testOptions(0)
	o.Approval.Risk.Scenarios = 200
	o.Approval.RepresentativeTMs = 4
	return o
}

// decideRound submits the set as one group and waits all decisions out.
func decideRound(b testing.TB, svc *Service, reqs []Request) {
	b.Helper()
	ids, err := svc.SubmitGroup(append([]Request(nil), reqs...))
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range ids {
		if _, err := svc.Wait(id, 2*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrantdWarmCache measures decision latency for a request set the
// service has already decided: the decision memo answers, no risk pass runs.
func BenchmarkGrantdWarmCache(b *testing.B) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, benchOptions())
	defer svc.Close()
	reqs := testRequests()
	decideRound(b, svc, reqs) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decideRound(b, svc, reqs)
	}
}

// BenchmarkGrantdColdAssess measures the same decision with every cache
// empty: fresh service, fresh scenario sets, fresh runners.
func BenchmarkGrantdColdAssess(b *testing.B) {
	topo := topology.FigureSix()
	reqs := testRequests()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := NewService(topo, nil, benchOptions())
		decideRound(b, svc, reqs)
		svc.Close()
	}
}

// TestWarmCacheSpeedup pins the acceptance bar: warm p50 decision latency
// must be at least 5x lower than cold. In practice the memo answers in
// microseconds against milliseconds of Monte-Carlo, so the margin is wide.
func TestWarmCacheSpeedup(t *testing.T) {
	topo := topology.FigureSix()
	reqs := testRequests()
	const rounds = 9
	median := func(xs []time.Duration) time.Duration {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return xs[len(xs)/2]
	}

	var cold []time.Duration
	for i := 0; i < rounds; i++ {
		svc := NewService(topo, nil, benchOptions())
		t0 := time.Now()
		decideRound(t, svc, reqs)
		cold = append(cold, time.Since(t0))
		svc.Close()
	}

	svc := NewService(topo, nil, benchOptions())
	defer svc.Close()
	decideRound(t, svc, reqs) // prime
	var warm []time.Duration
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		decideRound(t, svc, reqs)
		warm = append(warm, time.Since(t0))
	}
	if st := svc.Stats(); st.MemoHits == 0 {
		t.Fatalf("warm rounds never hit the memo: %+v", st)
	}

	cm, wm := median(cold), median(warm)
	t.Logf("cold p50 %v, warm p50 %v (%.1fx)", cm, wm, float64(cm)/float64(wm))
	if wm*5 > cm {
		t.Errorf("warm p50 %v not 5x below cold p50 %v", wm, cm)
	}
}
