package granting

import (
	"net"
	"testing"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/hose"
	"entitlement/internal/topology"
)

func startServer(t *testing.T, sink Sink) (*Service, *Server) {
	t.Helper()
	topo := topology.FigureSix()
	svc := NewService(topo, sink, testOptions(0))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, svc)
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

// TestServerRoundTrip drives the full RPC surface over a real socket.
func TestServerRoundTrip(t *testing.T) {
	db := contractdb.NewStore()
	_, srv := startServer(t, db)
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Submit + Decide: a negotiable ask lands a contract.
	dec, err := client.SubmitWait(Request{
		NPG: "Web", Negotiate: true, StartUnix: testStart.Unix(),
		Hoses: []hose.Request{{Class: contract.C2Low, Region: "A", Direction: contract.Egress, Rate: 40e9}},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != StatusApproved && dec.Status != StatusNegotiated {
		t.Fatalf("expected a grant, got %s (%s)", dec.Status, dec.Err)
	}
	if dec.Contract == nil || db.Len() != 1 {
		t.Fatalf("granted contract not stored (db has %d)", db.Len())
	}

	// Status on a decided id, then on garbage.
	state, sd, err := client.Status(dec.ID)
	if err != nil || state != "decided" || sd == nil {
		t.Fatalf("status(%s) = %s, %v, %v", dec.ID, state, sd, err)
	}
	state, _, err = client.Status("g-999999")
	if err != nil || state != "unknown" {
		t.Fatalf("status(bogus) = %s, %v", state, err)
	}

	// An oversubscribed ask over the wire: rejection with a proposal.
	dec, err = client.SubmitWait(Request{
		NPG: "Greedy", StartUnix: testStart.Unix(),
		Hoses: []hose.Request{{Class: contract.C3Low, Region: "B", Direction: contract.Egress, Rate: 9e12}},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != StatusRejected {
		t.Fatalf("oversubscribed ask not rejected: %s", dec.Status)
	}
	if len(dec.Proposals) == 0 || dec.Proposals[0].Shortfall <= 0 {
		t.Fatalf("rejection carries no counter-proposal: %+v", dec.Proposals)
	}
	if dec.Contract != nil || db.Len() != 1 {
		t.Fatal("rejected ask must not store a contract")
	}

	// Group submission keeps per-request ids aligned.
	ids, err := client.SubmitGroup([]Request{
		{NPG: "G1", Negotiate: true, StartUnix: testStart.Unix(),
			Hoses: []hose.Request{{Class: contract.C3Low, Region: "C", Direction: contract.Egress, Rate: 5e9}}},
		{NPG: "G2", Negotiate: true, StartUnix: testStart.Unix(),
			Hoses: []hose.Request{{Class: contract.C3Low, Region: "D", Direction: contract.Egress, Rate: 5e9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("group returned %d ids", len(ids))
	}
	for i, id := range ids {
		d, err := client.Decide(id, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		want := contract.NPG([]string{"G1", "G2"}[i])
		if d.NPG != want {
			t.Errorf("id %s decided for %s, want %s", id, d.NPG, want)
		}
	}

	// Report reflects the traffic.
	rep, err := client.Report(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Decided != 4 || len(rep.Decisions) != 4 {
		t.Errorf("report: %+v with %d decisions", rep.Stats, len(rep.Decisions))
	}

	// Invalid request is rejected server-side with a RemoteError.
	if _, err := client.Submit(Request{}); err == nil {
		t.Error("empty request accepted over the wire")
	}
}
