// The admission cache: everything the service reuses across decisions, all
// keyed under the topology epoch so a capacity edit or link addition drops
// the whole warm state at once (stale risk conclusions must never outlive
// the network they were computed on).
//
// Two levels:
//
//   - Scenario level: Monte-Carlo failure-scenario sets per (seed, count),
//     plugged into risk.Options.StatesFor, plus a flow.RunnerPool that
//     recycles allocator scratch. Both keep a warm assessment allocation-
//     light but still pay the full routing cost.
//   - Decision level: a memo of whole-batch outcomes keyed by the canonical
//     batch signature. A re-submitted request set (idempotent retries,
//     replayed grants) skips the risk pass entirely — contracts are still
//     re-stored so the grant stays effective.
//
// The decision memo keys on the WHOLE batch, never per request: co-batched
// hoses compete for the same capacity, so a request's outcome is only
// reusable when the entire batch composition matches.

package granting

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"entitlement/internal/contract"
	"entitlement/internal/flow"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

type stateKey struct {
	seed      int64
	scenarios int
}

// memoEntry is one memoized batch decision. The full canonical signature is
// kept (not just its hash) so a 64-bit collision can never serve another
// batch's outcomes, and decisions are indexed by request signature so a
// reordered resubmission maps each request back to its own decision.
type memoEntry struct {
	sig   string
	bySig map[string]Decision
}

type cache struct {
	topo *topology.Topology

	mu        sync.Mutex
	epoch     uint64
	states    map[stateKey][]*topology.FailureState
	pool      *flow.RunnerPool
	decisions map[uint64]memoEntry
	maxMemo   int
}

func newCache(topo *topology.Topology) *cache {
	c := &cache{topo: topo, maxMemo: 1024}
	c.flushLocked()
	c.epoch = topo.Epoch()
	return c
}

// flushLocked drops all warm state (scenarios, runners, memoized decisions).
func (c *cache) flushLocked() {
	c.states = make(map[stateKey][]*topology.FailureState)
	c.decisions = make(map[uint64]memoEntry)
	c.pool = flow.NewRunnerPool(c.topo, 0)
}

// ensureEpochLocked flushes if the topology mutated since the cache was
// warmed.
func (c *cache) ensureEpochLocked() {
	if ep := c.topo.Epoch(); ep != c.epoch {
		c.flushLocked()
		c.epoch = ep
		mCacheFlushes.Inc()
	}
}

// statesFor is the risk.Options.StatesFor hook: it serves (and fills) the
// scenario set for the per-pass seed/count the approval pipeline asks for.
// Passes over other topologies (planned-change phases) are not cached.
func (c *cache) statesFor(topo *topology.Topology, o risk.Options) []*topology.FailureState {
	if topo != c.topo {
		return nil // fall back to sampling
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	k := stateKey{seed: o.Seed, scenarios: o.Scenarios}
	if s, ok := c.states[k]; ok {
		mScenarioCacheHits.Inc()
		return s
	}
	mScenarioCacheMisses.Inc()
	s := risk.SampleStates(topo, risk.Options{Scenarios: o.Scenarios, Seed: o.Seed})
	c.states[k] = s
	return s
}

// runnerPool returns the epoch-current pool.
func (c *cache) runnerPool() *flow.RunnerPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	return c.pool
}

// batchSig renders the canonical identity of a batch decision: the sorted
// request signatures plus every option that changes outcomes. Risk.Workers
// is deliberately excluded (parallelism never changes results). The order-
// insensitive sort is what makes a reordered resubmission hit; the memo
// entry remaps decisions back to the submission order by request signature.
func batchSig(reqSigs []string, o *Options) string {
	sorted := append([]string(nil), reqSigs...)
	sort.Strings(sorted)
	var b strings.Builder
	for _, s := range sorted {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	b.WriteString("opts|")
	b.WriteString(strconv.Itoa(o.Approval.RepresentativeTMs))
	b.WriteByte('|')
	b.WriteString(fhex(float64(o.Approval.DefaultSLO)))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(o.Approval.JointRealizations))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(o.Approval.Seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(o.Approval.Risk.Seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(o.Approval.Risk.Scenarios))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(o.Approval.Risk.SkipAllUp))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(o.PeriodDays))
	keys := make([]string, 0, len(o.Approval.SLOs))
	for npg := range o.Approval.SLOs {
		keys = append(keys, string(npg))
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(fhex(float64(o.Approval.SLOs[contract.NPG(k)])))
	}
	return b.String()
}

// batchKey is the memo's map key; the full sig is re-verified on lookup.
func batchKey(sig string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sig))
	return h.Sum64()
}

// lookup returns the memoized decisions for this exact batch, remapped to
// the caller's request order (reqSigs[i] is reqs[i].Signature()). The stored
// canonical signature must match byte-for-byte — a hash collision is a miss,
// never a wrong answer. The returned slice is fresh; callers may stamp ids.
func (c *cache) lookup(key uint64, sig string, reqSigs []string) ([]Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	e, ok := c.decisions[key]
	if !ok || e.sig != sig {
		return nil, false
	}
	decs := make([]Decision, len(reqSigs))
	for i, s := range reqSigs {
		d, ok := e.bySig[s]
		if !ok {
			return nil, false
		}
		decs[i] = d
	}
	return decs, true
}

// store memoizes a decided batch, indexed by request signature (unique
// within a batch: duplicate hose keys are rejected before deciding). The
// memo is bounded: at capacity it resets (epoch-style) rather than tracking
// recency — correctness never depends on a hit.
func (c *cache) store(key uint64, sig string, reqSigs []string, decs []Decision) {
	bySig := make(map[string]Decision, len(decs))
	for i := range decs {
		bySig[reqSigs[i]] = decs[i]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	if len(c.decisions) >= c.maxMemo {
		c.decisions = make(map[uint64]memoEntry)
	}
	c.decisions[key] = memoEntry{sig: sig, bySig: bySig}
}
