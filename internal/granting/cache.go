// The admission cache: everything the service reuses across decisions, all
// keyed under the topology epoch so a capacity edit or link addition drops
// the whole warm state at once (stale risk conclusions must never outlive
// the network they were computed on).
//
// Two levels:
//
//   - Scenario level: Monte-Carlo failure-scenario sets per (seed, count),
//     plugged into risk.Options.StatesFor, plus a flow.RunnerPool that
//     recycles allocator scratch. Both keep a warm assessment allocation-
//     light but still pay the full routing cost.
//   - Decision level: a memo of whole-batch outcomes keyed by the canonical
//     batch signature. A re-submitted request set (idempotent retries,
//     replayed grants) skips the risk pass entirely — contracts are still
//     re-stored so the grant stays effective.
//
// The decision memo keys on the WHOLE batch, never per request: co-batched
// hoses compete for the same capacity, so a request's outcome is only
// reusable when the entire batch composition matches.

package granting

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"entitlement/internal/contract"
	"entitlement/internal/flow"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

type stateKey struct {
	seed      int64
	scenarios int
}

type cache struct {
	topo *topology.Topology

	mu        sync.Mutex
	epoch     uint64
	states    map[stateKey][]*topology.FailureState
	pool      *flow.RunnerPool
	decisions map[uint64][]Decision
	maxMemo   int
}

func newCache(topo *topology.Topology) *cache {
	c := &cache{topo: topo, maxMemo: 1024}
	c.flushLocked()
	c.epoch = topo.Epoch()
	return c
}

// flushLocked drops all warm state (scenarios, runners, memoized decisions).
func (c *cache) flushLocked() {
	c.states = make(map[stateKey][]*topology.FailureState)
	c.decisions = make(map[uint64][]Decision)
	c.pool = flow.NewRunnerPool(c.topo, 0)
}

// ensureEpochLocked flushes if the topology mutated since the cache was
// warmed.
func (c *cache) ensureEpochLocked() {
	if ep := c.topo.Epoch(); ep != c.epoch {
		c.flushLocked()
		c.epoch = ep
		mCacheFlushes.Inc()
	}
}

// statesFor is the risk.Options.StatesFor hook: it serves (and fills) the
// scenario set for the per-pass seed/count the approval pipeline asks for.
// Passes over other topologies (planned-change phases) are not cached.
func (c *cache) statesFor(topo *topology.Topology, o risk.Options) []*topology.FailureState {
	if topo != c.topo {
		return nil // fall back to sampling
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	k := stateKey{seed: o.Seed, scenarios: o.Scenarios}
	if s, ok := c.states[k]; ok {
		mScenarioCacheHits.Inc()
		return s
	}
	mScenarioCacheMisses.Inc()
	s := risk.SampleStates(topo, risk.Options{Scenarios: o.Scenarios, Seed: o.Seed})
	c.states[k] = s
	return s
}

// runnerPool returns the epoch-current pool.
func (c *cache) runnerPool() *flow.RunnerPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	return c.pool
}

// batchKey hashes the canonical identity of a batch decision: the sorted
// request signatures plus every option that changes outcomes. Risk.Workers
// is deliberately excluded (parallelism never changes results).
func batchKey(reqs []Request, o *Options) uint64 {
	sigs := make([]string, len(reqs))
	for i := range reqs {
		sigs[i] = reqs[i].Signature()
	}
	sort.Strings(sigs)
	h := fnv.New64a()
	for _, s := range sigs {
		h.Write([]byte(s))
		h.Write([]byte{'\n'})
	}
	h.Write([]byte("opts|"))
	h.Write([]byte(strconv.Itoa(o.Approval.RepresentativeTMs)))
	h.Write([]byte{'|'})
	h.Write([]byte(fhex(float64(o.Approval.DefaultSLO))))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.FormatBool(o.Approval.JointRealizations)))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.FormatInt(o.Approval.Seed, 10)))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.FormatInt(o.Approval.Risk.Seed, 10)))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.Itoa(o.Approval.Risk.Scenarios)))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.FormatBool(o.Approval.Risk.SkipAllUp)))
	h.Write([]byte{'|'})
	h.Write([]byte(strconv.Itoa(o.PeriodDays)))
	keys := make([]string, 0, len(o.Approval.SLOs))
	for npg := range o.Approval.SLOs {
		keys = append(keys, string(npg))
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Write([]byte{'|'})
		h.Write([]byte(k))
		h.Write([]byte{'='})
		h.Write([]byte(fhex(float64(o.Approval.SLOs[contract.NPG(k)]))))
	}
	return h.Sum64()
}

// lookup returns a memoized decision set for the batch key, if the epoch is
// still current.
func (c *cache) lookup(key uint64) ([]Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	d, ok := c.decisions[key]
	return d, ok
}

// store memoizes a decided batch. The memo is bounded: at capacity it resets
// (epoch-style) rather than tracking recency — correctness never depends on
// a hit.
func (c *cache) store(key uint64, decs []Decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	if len(c.decisions) >= c.maxMemo {
		c.decisions = make(map[uint64][]Decision)
	}
	c.decisions[key] = decs
}
