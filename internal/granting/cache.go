// The admission cache: everything the service reuses across decisions. Since
// the incremental-risk work this is delta-aware, not flush-on-any-epoch-bump:
// the topology's mutation journal (topology.DeltaSince) says what an epoch
// bump actually touched, and each level keeps as much warm state as stays
// sound.
//
// Two levels:
//
//   - Assessment level: a risk.ResultCache (scenario states plus per-scenario
//     results, patched in place after mutations) wired into
//     risk.Options.Cache, plus a flow.RunnerPool recycling allocator scratch.
//     Neither is ever flushed here — the result cache invalidates itself per
//     scenario using the mutation delta, and a pooled Runner is fully reset
//     per allocation.
//   - Decision level: an LRU memo of whole-batch outcomes keyed by the
//     canonical batch signature. A re-submitted request set (idempotent
//     retries, replayed grants) skips the risk pass entirely. The memo
//     survives epoch bumps whose delta touches no link (region additions):
//     routing outcomes cannot change, so the decisions stand. Any
//     link-touching delta drops the memo — max-min routing is global, so a
//     remote capacity or probability change can shift every hose's
//     admittable rate; per-request "does my segment touch the mutated link"
//     filtering would be unsound (DESIGN.md §10). Dropped memos fall through
//     to the delta-warm assessment level, which is where post-mutation
//     re-decisions get their speedup.
//
// The decision memo keys on the WHOLE batch, never per request: co-batched
// hoses compete for the same capacity, so a request's outcome is only
// reusable when the entire batch composition matches.

package granting

import (
	"container/list"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"entitlement/internal/contract"
	"entitlement/internal/flow"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

// memoEntry is one memoized batch decision. The full canonical signature is
// kept (not just its hash) so a 64-bit collision can never serve another
// batch's outcomes, and decisions are indexed by request signature so a
// reordered resubmission maps each request back to its own decision.
type memoEntry struct {
	key   uint64
	sig   string
	bySig map[string]Decision
}

type cache struct {
	topo *topology.Topology

	mu      sync.Mutex
	epoch   uint64
	results *risk.ResultCache
	pool    *flow.RunnerPool
	memo    map[uint64]*list.Element // batchKey → element in lru
	lru     *list.List               // front = most recently used; *memoEntry
	maxMemo int
}

func newCache(topo *topology.Topology, maxMemo int) *cache {
	if maxMemo <= 0 {
		maxMemo = 1024
	}
	return &cache{
		topo:    topo,
		epoch:   topo.Epoch(),
		results: risk.NewResultCache(0),
		pool:    flow.NewRunnerPool(topo, 0),
		memo:    make(map[uint64]*list.Element),
		lru:     list.New(),
		maxMemo: maxMemo,
	}
}

// ensureEpochLocked reconciles the memo with topology mutations since the
// last decision: a delta that touches no link keeps every memoized decision;
// anything else (or an untraceable span) drops the memo. The assessment
// level is untouched either way — the result cache patches itself.
func (c *cache) ensureEpochLocked() {
	ep := c.topo.Epoch()
	if ep == c.epoch {
		return
	}
	delta, ok := c.topo.DeltaSince(c.epoch)
	c.epoch = ep
	if ok && !delta.TouchesLinks() {
		return
	}
	c.memo = make(map[uint64]*list.Element)
	c.lru.Init()
	mCacheFlushes.Inc()
}

// resultCache returns the shared risk result cache (risk.Options.Cache).
func (c *cache) resultCache() *risk.ResultCache { return c.results }

// runnerPool returns the shared allocator-scratch pool.
func (c *cache) runnerPool() *flow.RunnerPool { return c.pool }

// batchSig renders the canonical identity of a batch decision: the sorted
// request signatures plus every option that changes outcomes. Risk.Workers
// is deliberately excluded (parallelism never changes results). The order-
// insensitive sort is what makes a reordered resubmission hit; the memo
// entry remaps decisions back to the submission order by request signature.
func batchSig(reqSigs []string, o *Options) string {
	sorted := append([]string(nil), reqSigs...)
	sort.Strings(sorted)
	var b strings.Builder
	for _, s := range sorted {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	b.WriteString("opts|")
	b.WriteString(strconv.Itoa(o.Approval.RepresentativeTMs))
	b.WriteByte('|')
	b.WriteString(fhex(float64(o.Approval.DefaultSLO)))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(o.Approval.JointRealizations))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(o.Approval.Seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(o.Approval.Risk.Seed, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(o.Approval.Risk.Scenarios))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(o.Approval.Risk.SkipAllUp))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(o.PeriodDays))
	b.WriteString("|neg:")
	b.WriteString(strconv.FormatBool(o.Approval.Negotiation.Enabled))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(o.Approval.Negotiation.MaxEvals))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(o.Approval.Negotiation.RateSteps))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(o.Approval.Negotiation.MaxClassShift))
	keys := make([]string, 0, len(o.Approval.SLOs))
	for npg := range o.Approval.SLOs {
		keys = append(keys, string(npg))
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(fhex(float64(o.Approval.SLOs[contract.NPG(k)])))
	}
	return b.String()
}

// batchKey is the memo's map key; the full sig is re-verified on lookup.
func batchKey(sig string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sig))
	return h.Sum64()
}

// lookup returns the memoized decisions for this exact batch, remapped to
// the caller's request order (reqSigs[i] is reqs[i].Signature()). The stored
// canonical signature must match byte-for-byte — a hash collision is a miss,
// never a wrong answer. The returned slice is fresh; callers may stamp ids.
func (c *cache) lookup(key uint64, sig string, reqSigs []string) ([]Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	el, ok := c.memo[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*memoEntry)
	if e.sig != sig {
		return nil, false
	}
	decs := make([]Decision, len(reqSigs))
	for i, s := range reqSigs {
		d, ok := e.bySig[s]
		if !ok {
			return nil, false
		}
		decs[i] = d
	}
	c.lru.MoveToFront(el)
	return decs, true
}

// store memoizes a decided batch, indexed by request signature (unique
// within a batch: duplicate hose keys are rejected before deciding). The
// memo is a bounded LRU: at capacity the least recently used batch is
// evicted and counted — correctness never depends on a hit.
func (c *cache) store(key uint64, sig string, reqSigs []string, decs []Decision) {
	bySig := make(map[string]Decision, len(decs))
	for i := range decs {
		bySig[reqSigs[i]] = decs[i]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureEpochLocked()
	if el, ok := c.memo[key]; ok {
		el.Value = &memoEntry{key: key, sig: sig, bySig: bySig}
		c.lru.MoveToFront(el)
		return
	}
	c.memo[key] = c.lru.PushFront(&memoEntry{key: key, sig: sig, bySig: bySig})
	for c.lru.Len() > c.maxMemo {
		back := c.lru.Back()
		delete(c.memo, back.Value.(*memoEntry).key)
		c.lru.Remove(back)
		mMemoEvictions.Inc()
	}
}

// memoLen reports the memo size (for tests and stats).
func (c *cache) memoLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
