package granting

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/hose"
	"entitlement/internal/obs"
	"entitlement/internal/topology"
)

// gridTopo builds a reliable full mesh for negotiation scenarios where the
// capacity arithmetic must be exact.
func gridTopo(n int, capacity float64) *topology.Topology {
	t := topology.New()
	names := make([]topology.Region, n)
	for i := range names {
		names[i] = topology.Region(string(rune('A' + i)))
	}
	srlg := 0
	for i := range names {
		for j := i + 1; j < n; j++ {
			t.EnsureSRLG(srlg, 0)
			t.AddBidirectional(names[i], names[j], capacity, 0, srlg)
			srlg++
		}
	}
	return t
}

func decideAll(t *testing.T, svc *Service, reqs []Request) []Decision {
	t.Helper()
	ids, err := svc.SubmitGroup(reqs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Decision, len(ids))
	for i, id := range ids {
		d, err := svc.Wait(id, 2*time.Minute)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		d2 := *d
		d2.ID = ""
		out[i] = d2
	}
	return out
}

// TestMemoSurvivesRegionOnlyDelta: an epoch bump whose delta touches no link
// (a region addition) keeps the decision memo warm — routing outcomes for
// existing demands cannot have changed.
func TestMemoSurvivesRegionOnlyDelta(t *testing.T) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, testOptions(0))
	defer svc.Close()

	reqs := testRequests()
	first := FormatDecisions(decideAll(t, svc, reqs))
	topo.AddRegion("NEWPOP")
	before := svc.Stats()
	flushesBefore := mCacheFlushes.Value()
	again := FormatDecisions(decideAll(t, svc, reqs))
	after := svc.Stats()
	if after.MemoHits <= before.MemoHits {
		t.Errorf("region-only delta dropped the memo: %+v -> %+v", before, after)
	}
	if mCacheFlushes.Value() != flushesBefore {
		t.Error("region-only delta counted as a memo flush")
	}
	if again != first {
		t.Errorf("memoized decisions changed across a region-only delta:\n%s\nvs\n%s", first, again)
	}
}

// TestPostMutationDecisionsMatchFreshService is the end-to-end byte-identity
// bar for the incremental path: after a link mutation, a warm service
// (spliced re-assessment, dropped memo) must produce exactly the decisions a
// cold DecideBatch computes from scratch on the mutated topology.
func TestPostMutationDecisionsMatchFreshService(t *testing.T) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, testOptions(2))
	defer svc.Close()

	reqs := testRequests()
	decideAll(t, svc, reqs) // warm the caches at the pre-mutation epoch

	mutations := []func() error{
		func() error { return topo.SetLinkFailProb(1, 0.01) },
		func() error { return topo.SetCapacity(2, 3e12) },
		func() error { return topo.SetLinkDisabled(3, true) },
	}
	for step, mutate := range mutations {
		if err := mutate(); err != nil {
			t.Fatal(err)
		}
		warm := FormatDecisions(decideAll(t, svc, reqs))
		coldDecs, err := DecideBatch(topo, append([]Request(nil), reqs...), testOptions(1))
		if err != nil {
			t.Fatal(err)
		}
		cold := FormatDecisions(coldDecs)
		if warm != cold {
			t.Errorf("step %d: warm service diverged from cold batch after mutation:\n--- warm ---\n%s--- cold ---\n%s",
				step, warm, cold)
		}
	}
}

// TestMemoLRUEviction pins the MemoMaxEntries bound: distinct batch
// compositions beyond the cap evict the least recently used entry and count
// it, and the evicted batch re-decides as a miss.
func TestMemoLRUEviction(t *testing.T) {
	topo := topology.FigureSix()
	opts := testOptions(0)
	opts.MemoMaxEntries = 2
	svc := NewService(topo, nil, opts)
	defer svc.Close()

	mkReq := func(i int) []Request {
		return []Request{{
			NPG: contract.NPG(fmt.Sprintf("npg-%d", i)), StartUnix: testStart.Unix(),
			Negotiate: true,
			Hoses: []hose.Request{{
				Class: contract.C3Low, Region: "A", Direction: contract.Egress,
				Rate: float64(i+1) * 1e9,
			}},
		}}
	}
	evictionsBefore := mMemoEvictions.Value()
	for i := 0; i < 3; i++ {
		decideAll(t, svc, mkReq(i))
	}
	if n := svc.c.memoLen(); n != 2 {
		t.Fatalf("memo holds %d batches, want 2", n)
	}
	if mMemoEvictions.Value() != evictionsBefore+1 {
		t.Errorf("evictions counter %d -> %d, want +1", evictionsBefore, mMemoEvictions.Value())
	}
	// Batch 0 was evicted: deciding it again is a miss; batch 2 still hits.
	st := svc.Stats()
	decideAll(t, svc, mkReq(0))
	st2 := svc.Stats()
	if st2.MemoMisses <= st.MemoMisses {
		t.Error("evicted batch served from the memo")
	}
	decideAll(t, svc, mkReq(2))
	st3 := svc.Stats()
	if st3.MemoHits <= st2.MemoHits {
		t.Error("recently used batch was evicted instead of the LRU one")
	}
}

// TestDecideBatchCounterOffer: with the negotiation search enabled, two
// same-class hoses splitting one region's egress get genuine counter-offers
// (a one-step class shift at the full rate), rendered in the decision text;
// with the search disabled the same batch renders no counter-offer line.
func TestDecideBatchCounterOffer(t *testing.T) {
	topo := gridTopo(4, 100e9)
	reqs := []Request{
		{NPG: "X", StartUnix: testStart.Unix(), Hoses: []hose.Request{
			{Class: contract.C2Low, Region: "A", Direction: contract.Egress, Rate: 200e9},
		}},
		{NPG: "Y", StartUnix: testStart.Unix(), Hoses: []hose.Request{
			{Class: contract.C2Low, Region: "A", Direction: contract.Egress, Rate: 200e9},
		}},
	}
	opts := testOptions(1)
	plainDecs, err := DecideBatch(topo, append([]Request(nil), reqs...), opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatDecisions(plainDecs); strings.Contains(s, "counter-offer") {
		t.Fatalf("search disabled but counter-offer rendered:\n%s", s)
	}

	opts.Approval.Negotiation.Enabled = true
	decs, err := DecideBatch(topo, append([]Request(nil), reqs...), opts)
	if err != nil {
		t.Fatal(err)
	}
	offers := 0
	for _, d := range decs {
		for _, p := range d.Proposals {
			if p.CounterOffer == nil {
				continue
			}
			offers++
			if p.CounterOffer.Class != contract.C1High {
				t.Errorf("%s: offered class %v, want %v", d.NPG, p.CounterOffer.Class, contract.C1High)
			}
			if p.CounterOffer.Rate != 200e9 {
				t.Errorf("%s: offered rate %v, want the full 200G", d.NPG, p.CounterOffer.Rate)
			}
		}
	}
	if offers != 2 {
		t.Fatalf("counter-offers = %d, want 2:\n%s", offers, FormatDecisions(decs))
	}
	if s := FormatDecisions(decs); !strings.Contains(s, "counter-offer: ") {
		t.Errorf("counter-offer not rendered:\n%s", s)
	}
}

// TestTruncatedTopologyJournalFallback pins the full-refill path: under
// sustained mutation churn the topology's bounded mutation journal drops
// the warm service's epoch, DeltaSince answers ok=false, and the granting
// cache must fall back to a wholesale flush — decisions stay byte-identical
// to a cold DecideBatch on the mutated topology, and the risk level
// recomputes from scratch (result-cache misses, not stale patches).
func TestTruncatedTopologyJournalFallback(t *testing.T) {
	topo := topology.FigureSix()
	svc := NewService(topo, nil, testOptions(2))
	defer svc.Close()

	reqs := testRequests()
	decideAll(t, svc, reqs) // warm the memo and result cache
	warmEpoch := topo.Epoch()

	// Churn link 1's failure probability until the journal's ring drops the
	// warm epoch; the bound is 4096 entries, the cap is a safety net.
	churned := false
	for i := 0; i < 3*4096 && !churned; i++ {
		if err := topo.SetLinkFailProb(1, 0.001+0.0001*float64(i%50)); err != nil {
			t.Fatal(err)
		}
		_, ok := topo.DeltaSince(warmEpoch)
		churned = !ok
	}
	if !churned {
		t.Fatal("mutation churn never outran the topology journal")
	}

	flushesBefore := mCacheFlushes.Value()
	missesBefore := obs.Default().Snapshot()["entitlement_risk_result_cache_misses_total"].(int64)
	warm := FormatDecisions(decideAll(t, svc, reqs))
	if mCacheFlushes.Value() != flushesBefore+1 {
		t.Errorf("untraceable span flushed the memo %d times, want once",
			mCacheFlushes.Value()-flushesBefore)
	}
	if missesAfter := obs.Default().Snapshot()["entitlement_risk_result_cache_misses_total"].(int64); missesAfter <= missesBefore {
		t.Error("truncated journal did not force full risk recomputation")
	}

	coldDecs, err := DecideBatch(topo, append([]Request(nil), reqs...), testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if cold := FormatDecisions(coldDecs); warm != cold {
		t.Errorf("full-refill decisions diverged from cold batch:\n--- warm ---\n%s--- cold ---\n%s", warm, cold)
	}
}
