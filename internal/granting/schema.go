package granting

import (
	"reflect"

	schemav1 "entitlement/schema/v1"
)

// SchemaDefs returns the granting plane's wire schemas: the submit/decide/
// status/report argument and reply shapes, plus the Request and Decision
// domain shapes they embed. They cannot live in schema/v1 without an import
// cycle (wire imports schemav1, this package imports wire); cmd/schemavet
// aggregates them with schemav1.Defs() for the lock check, so a field
// change here trips `make vet-schema` exactly like an envelope change.
func SchemaDefs() []schemav1.Def {
	return []schemav1.Def{
		{Name: "granting.submit", Version: 1, Type: reflect.TypeOf(submitArgs{})},
		{Name: "granting.submit_reply", Version: 1, Type: reflect.TypeOf(submitReply{})},
		{Name: "granting.decide", Version: 1, Type: reflect.TypeOf(decideArgs{})},
		{Name: "granting.status", Version: 1, Type: reflect.TypeOf(statusArgs{})},
		{Name: "granting.status_reply", Version: 1, Type: reflect.TypeOf(statusReply{})},
		{Name: "granting.report", Version: 1, Type: reflect.TypeOf(reportArgs{})},
		{Name: "granting.report_reply", Version: 1, Type: reflect.TypeOf(Report{})},
		{Name: "granting.request", Version: 1, Type: reflect.TypeOf(Request{})},
		{Name: "granting.decision", Version: 1, Type: reflect.TypeOf(Decision{})},
	}
}
