package granting

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the WAL decoder. The decoder
// must never panic, must never claim more valid bytes than the input holds,
// and — the load-bearing property — the prefix it reports valid must decode
// to the same records, cleanly, when replayed on its own: truncation always
// lands exactly on a record boundary of a self-consistent prefix.
func FuzzJournalReplay(f *testing.F) {
	recs := walTestRecords()
	var clean bytes.Buffer
	for i := range recs {
		b, err := encodeWALRecord(&recs[i])
		if err != nil {
			f.Fatal(err)
		}
		clean.Write(b)
	}
	f.Add(clean.Bytes())                 // well-formed stream
	f.Add(clean.Bytes()[:clean.Len()-3]) // torn tail
	f.Add([]byte{})                      // empty journal
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})
	corrupt := append([]byte(nil), clean.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0x40 // bit flip mid-stream
	f.Add(corrupt)
	garbage := append([]byte(nil), clean.Bytes()...)
	f.Add(append(garbage, []byte("trailing garbage past the last record")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, valid, truncated := decodeWALStream(bytes.NewReader(data))
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid = %d outside [0, %d]", valid, len(data))
		}
		if !truncated && valid != int64(len(data)) {
			t.Fatalf("clean decode but valid = %d of %d bytes", valid, len(data))
		}
		// Replaying exactly the valid prefix must yield the same records
		// with no truncation — that prefix is what recovery keeps.
		again, validAgain, truncAgain := decodeWALStream(bytes.NewReader(data[:valid]))
		if truncAgain {
			t.Fatalf("valid prefix (%d bytes) reported truncated on replay", valid)
		}
		if validAgain != valid || len(again) != len(got) {
			t.Fatalf("prefix replay: %d records valid=%d, want %d records valid=%d",
				len(again), validAgain, len(got), valid)
		}
		gj, _ := json.Marshal(got)
		aj, _ := json.Marshal(again)
		if !bytes.Equal(gj, aj) {
			t.Fatalf("prefix replay diverged:\nfirst  %s\nsecond %s", gj, aj)
		}
		// Folding the records into a recovered state must not panic either
		// (decoded records are shape-checked but field values are arbitrary).
		st := &Recovered{}
		for i := range got {
			st.applyWALRecord(&got[i])
		}
	})
}
