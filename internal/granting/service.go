package granting

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/hose"
	"entitlement/internal/obs/trace"
	"entitlement/internal/topology"
	"entitlement/internal/wire"
)

// Sink receives granted contracts; both contractdb.Store (in-process) and
// contractdb.Client (remote database) satisfy it. A nil sink keeps grantd
// decision-only.
type Sink interface {
	Put(c contract.Contract) error
}

// ErrPending is returned by Wait when the decision has not landed within the
// caller's patience.
var ErrPending = errors.New("granting: decision pending")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("granting: service closed")

// ErrOverloaded is returned by Submit when the admission queue is at
// Options.MaxQueue: the service sheds instead of queueing without bound.
// The error reaches callers wrapped in wire.Overloaded carrying the
// retry-after hint, so detect it with errors.Is and read the hint with
// errors.As on *wire.Overloaded (server side) or *wire.OverloadedError
// (across the wire).
var ErrOverloaded = errors.New("granting: admission queue full")

// Stats is a point-in-time snapshot of the service counters, for the report
// endpoint and tests.
type Stats struct {
	Submitted  int64  `json:"submitted"`
	Decided    int64  `json:"decided"`
	Approved   int64  `json:"approved"`
	Negotiated int64  `json:"negotiated"`
	Rejected   int64  `json:"rejected"`
	Errors     int64  `json:"errors"`
	Batches    int64  `json:"batches"`
	QueueDepth int    `json:"queue_depth"`
	MemoHits   int64  `json:"decision_cache_hits"`
	MemoMisses int64  `json:"decision_cache_misses"`
	Epoch      uint64 `json:"topology_epoch"`
	// Shed counts submissions refused because the queue was at MaxQueue.
	Shed int64 `json:"shed,omitempty"`
	// QueueTimeouts counts requests failed for aging past MaxQueueDelay.
	QueueTimeouts int64 `json:"queue_timeouts,omitempty"`
	// RecoveredDecided and RecoveredPending report what the last journal
	// replay restored (decisions served byte-identically vs. submissions
	// re-queued for a deterministic re-decision).
	RecoveredDecided int64 `json:"recovered_decided,omitempty"`
	RecoveredPending int64 `json:"recovered_pending,omitempty"`
}

// submission is one queue entry: a group of requests decided atomically in
// one risk pass (SubmitGroup), or a single request eligible for coalescing.
type submission struct {
	reqs     []Request
	ids      []string
	enqueued time.Time
	done     chan struct{}
	err      error

	// tc parents this submission's lifecycle spans: the submitter's context
	// when one came across the wire, otherwise the context of rootSp — a
	// root grantd.submission span the service opens itself so even untraced
	// submitters get a queryable tree (its trace ID returns in submitReply).
	// Recovered submissions are untraced (zero tc; every span call no-ops).
	tc     trace.Context
	rootSp trace.Span // self-rooted span; zero when the submitter traced us
	qsp    trace.Span // grantd.queue span: enqueue → pop
}

// finishRoot closes the self-rooted span, if this submission owns one.
func (sub *submission) finishRoot() { sub.rootSp.Finish() }

// Service is the admission queue around DecideBatch: a single decider
// goroutine drains submissions — coalescing compatible singles into one
// batch — decides them through the epoch-keyed cache, and pushes granted
// contracts into the sink. Submissions are asynchronous; callers follow up
// with Wait or Status.
type Service struct {
	topo   *topology.Topology
	sink   Sink
	opts   Options
	c      *cache
	j      *Journal // nil without Options.WAL.Dir
	tracer *trace.Collector

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*submission
	subs    map[string]*submission // pending id → submission
	decided map[string]*Decision
	order   []string // decided ids, oldest first (retention ring)
	stats   Stats
	seq     uint64
	closed  bool
	killed  bool // Kill(): stop without draining or closing the journal
	done    chan struct{}
}

// NewService starts the decider. Close releases it. With Options.WAL.Dir
// set it recovers from the journal first and panics if that fails; use
// OpenService to handle recovery errors.
func NewService(topo *topology.Topology, sink Sink, opts Options) *Service {
	s, err := OpenService(topo, sink, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// OpenService starts the decider, replaying the write-ahead journal first
// when Options.WAL.Dir is set: already-decided request ids answer with
// byte-identical decisions, and accepted-but-undecided submissions re-queue
// (in their original order) for a deterministic re-decision. Recovered
// contracts are re-pushed into the sink — idempotent for both contract
// stores — so enforcement agents reconverge even if the sink also lost
// state. The recovered state is immediately checkpointed into a fresh
// journal generation, so a torn tail is never appended to.
func OpenService(topo *topology.Topology, sink Sink, opts Options) (*Service, error) {
	o := opts.withDefaults()
	s := &Service{
		topo: topo,
		sink: sink,
		opts: o,
		c:    newCache(topo, o.MemoMaxEntries),
		subs: make(map[string]*submission),

		decided: make(map[string]*Decision),
		done:    make(chan struct{}),
	}
	s.tracer = o.Tracer
	if s.tracer == nil {
		s.tracer = trace.Default()
	}
	s.cond = sync.NewCond(&s.mu)
	if o.WAL.Dir != "" {
		j, st, err := openJournal(o.WAL)
		if err != nil {
			return nil, err
		}
		s.j = j
		s.recover(st)
	}
	go s.run()
	return s, nil
}

// recover installs a replayed journal state before the decider starts.
func (s *Service) recover(st *Recovered) {
	s.seq = st.Seq
	s.stats = st.Stats
	s.stats.RecoveredDecided = int64(len(st.Decided))
	s.stats.RecoveredPending = 0
	for i := range st.Decided {
		d := st.Decided[i] // copy; the loop variable's Dec address is reused
		s.decided[d.ID] = &d.Dec
		s.order = append(s.order, d.ID)
		// Re-push surviving contracts: Put is keyed by NPG in both sinks,
		// so replaying oldest→newest converges on the pre-crash state and
		// repairs a sink that lost data alongside grantd.
		if s.sink != nil && d.Dec.Contract != nil {
			if err := s.sink.Put(*d.Dec.Contract); err != nil {
				mStoreFails.Inc()
			}
		}
	}
	for len(s.order) > s.opts.Retain {
		delete(s.decided, s.order[0])
		s.order = s.order[1:]
	}
	now := s.opts.Now()
	for _, p := range st.Pending {
		sub := &submission{
			reqs: p.Reqs,
			ids:  p.IDs,
			// The submitter's clock restarts with the daemon: aging the
			// recovered queue against MaxQueueDelay across the downtime
			// would time out every in-flight request on every restart.
			enqueued: now,
			done:     make(chan struct{}),
		}
		for _, id := range sub.ids {
			s.subs[id] = sub
		}
		s.queue = append(s.queue, sub)
		s.stats.RecoveredPending += int64(len(sub.ids))
	}
	mRecoveredDecisions.Add(int64(len(st.Decided)))
	mRecoveredPending.Add(s.stats.RecoveredPending)
	mQueueDepth.Set(float64(s.queueLenLocked()))
}

// Submit enqueues one request and returns its id immediately. The request is
// validated up front so queue-time failures cannot happen; a zero StartUnix
// is pinned to the submission clock (retries of the pinned request are then
// idempotent and memoizable).
func (s *Service) Submit(req Request) (string, error) {
	id, _, err := s.SubmitCtx(trace.Context{}, req)
	return id, err
}

// SubmitCtx is Submit under the caller's span context (the wire server's
// serve span): the submission's whole lifecycle — admission, queue wait,
// risk pass, journal write, contract push — becomes children of it. A zero
// tc makes grantd root the trace itself. The second return is the 32-hex
// trace ID of whichever tree the submission landed in ("" only when tracing
// recorded nothing, e.g. a shed with no trace).
func (s *Service) SubmitCtx(tc trace.Context, req Request) (string, string, error) {
	ids, traceID, err := s.submit(tc, []Request{req})
	if err != nil {
		return "", traceID, err
	}
	return ids[0], traceID, nil
}

// SubmitGroup enqueues requests that must be decided together in one risk
// pass — the batch-CLI equivalence path. The group is atomic: it never
// coalesces with other submissions.
func (s *Service) SubmitGroup(reqs []Request) ([]string, error) {
	ids, _, err := s.SubmitGroupCtx(trace.Context{}, reqs)
	return ids, err
}

// SubmitGroupCtx is SubmitGroup under the caller's span context; see
// SubmitCtx.
func (s *Service) SubmitGroupCtx(tc trace.Context, reqs []Request) ([]string, string, error) {
	if len(reqs) == 0 {
		return nil, "", errors.New("granting: empty group")
	}
	return s.submit(tc, reqs)
}

func (s *Service) submit(tc trace.Context, reqs []Request) ([]string, string, error) {
	// Deep-copy first: Validate fills empty hose NPGs, a zero StartUnix is
	// pinned below, and the decider goroutine reads the slice after submit
	// returns — the caller keeps undisturbed ownership of its arguments.
	cp := make([]Request, len(reqs))
	copy(cp, reqs)
	for i := range cp {
		cp[i].Hoses = append([]hose.Request(nil), cp[i].Hoses...)
		for j := range cp[i].Hoses {
			cp[i].Hoses[j].Segments = append([]hose.Segment(nil), cp[i].Hoses[j].Segments...)
		}
	}
	reqs = cp
	now := s.opts.Now()
	// Lifecycle tracing: parent everything under the submitter's context, or
	// self-root a grantd.submission span so untraced submitters still get a
	// queryable tree. The trace ID returns to the submitter either way.
	var rootSp trace.Span
	if !tc.Valid() {
		rootSp = s.tracer.StartRoot("grantd.submission")
		rootSp.SetService("grantd")
		if len(reqs) > 0 {
			rootSp.SetContract(string(reqs[0].NPG))
		}
		tc = rootSp.Context()
		// grantd minted this trace and echoes its ID to the submitter, who
		// will plausibly query it — set the sampled bit so tail sampling
		// keeps the tree even when the submission stays healthy.
		tc.Sampled = true
	}
	traceID := tc.TraceID()
	ssp := s.tracer.StartChild(tc, "grantd.submit")
	ssp.SetService("grantd")
	if len(reqs) > 0 {
		ssp.SetContract(string(reqs[0].NPG))
	}
	reject := func(err error) ([]string, string, error) {
		ssp.SetError(err)
		ssp.Finish()
		rootSp.Finish()
		return nil, traceID, err
	}
	for i := range reqs {
		if err := reqs[i].Validate(s.topo); err != nil {
			return reject(err)
		}
		if reqs[i].StartUnix == 0 {
			reqs[i].StartUnix = now.Unix()
		}
	}
	if len(reqs) > 1 {
		// Group members share one risk pass; colliding flow sets cannot.
		seen := make(map[string]bool)
		for i := range reqs {
			for j := range reqs[i].Hoses {
				k := reqs[i].Hoses[j].Key()
				if seen[k] {
					return reject(fmt.Errorf("granting: hose %s appears twice in group", k))
				}
				seen[k] = true
			}
		}
	}
	sub := &submission{reqs: reqs, enqueued: now, done: make(chan struct{}), tc: tc, rootSp: rootSp}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return reject(ErrClosed)
	}
	if depth := s.queueLenLocked(); s.opts.MaxQueue > 0 && depth+len(reqs) > s.opts.MaxQueue {
		// Shed instead of queueing without bound. The wire layer turns the
		// wrapper into a retryable response with the hint attached. The shed
		// flag forces tail sampling to keep the trace.
		s.stats.Shed += int64(len(reqs))
		mShed.Add(int64(len(reqs)))
		mQueueDepth.Set(float64(depth))
		s.mu.Unlock()
		ssp.Flag(trace.FlagShed)
		return reject(&wire.Overloaded{
			Err:        fmt.Errorf("%w: %d of %d slots used", ErrOverloaded, depth, s.opts.MaxQueue),
			RetryAfter: s.opts.ShedRetryAfter,
		})
	}
	sub.ids = make([]string, len(reqs))
	for i := range reqs {
		s.seq++
		sub.ids[i] = fmt.Sprintf("g-%d", s.seq)
	}
	if s.j != nil {
		// Write-ahead: the submission must be journaled before anyone can
		// observe its ids. A journal that cannot accept the record refuses
		// the submission — handing out an id that recovery would not know
		// about breaks the durability contract.
		if err := s.j.appendSub(sub.ids, reqs); err != nil {
			s.mu.Unlock()
			return reject(err)
		}
	}
	for _, id := range sub.ids {
		s.subs[id] = sub
	}
	// The queue span runs from enqueue until the decider pops the
	// submission — the admission-control wait made visible per trace.
	sub.qsp = s.tracer.StartChild(tc, "grantd.queue")
	sub.qsp.SetService("grantd")
	s.queue = append(s.queue, sub)
	s.stats.Submitted += int64(len(reqs))
	mRequests.Add(int64(len(reqs)))
	mQueueDepth.Set(float64(s.queueLenLocked()))
	s.cond.Signal()
	s.mu.Unlock()
	ssp.Finish()
	return append([]string(nil), sub.ids...), traceID, nil
}

func (s *Service) queueLenLocked() int {
	n := 0
	for _, sub := range s.queue {
		n += len(sub.reqs)
	}
	return n
}

// Wait blocks until the decision for id lands (or timeout; ErrPending).
func (s *Service) Wait(id string, timeout time.Duration) (*Decision, error) {
	s.mu.Lock()
	if d, ok := s.decided[id]; ok {
		s.mu.Unlock()
		return d, nil
	}
	sub, ok := s.subs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("granting: unknown request id %q", id)
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-sub.done:
	case <-t.C:
		return nil, ErrPending
	}
	if sub.err != nil {
		return nil, sub.err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.decided[id]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("granting: decision for %q evicted", id)
}

// Status reports "pending", "decided", or "unknown" for id, with the
// decision when available.
func (s *Service) Status(id string) (string, *Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.decided[id]; ok {
		return "decided", d
	}
	if _, ok := s.subs[id]; ok {
		return "pending", nil
	}
	return "unknown", nil
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueDepth = s.queueLenLocked()
	st.Epoch = s.topo.Epoch()
	return st
}

// Recent returns up to n most recent decisions, newest first.
func (s *Service) Recent(n int) []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.order) {
		n = len(s.order)
	}
	out := make([]Decision, 0, n)
	for i := len(s.order) - 1; i >= 0 && len(out) < n; i-- {
		if d, ok := s.decided[s.order[i]]; ok {
			out = append(out, *d)
		}
	}
	return out
}

// Close stops accepting submissions, decides what is already queued, and
// waits for the decider to drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// run is the decider loop: it pops either one atomic group or a collision-
// free run of singles (up to MaxBatch) and decides them in one pass.
// Submissions that aged past MaxQueueDelay are failed with a queue-timeout
// decision before any batch is assembled — a late grant answers a question
// nobody is still asking.
func (s *Service) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed && !s.killed {
			s.cond.Wait()
		}
		if s.killed {
			// Crash simulation: abandon the queue and leave the journal
			// exactly as it is — recovery is the cleanup.
			s.mu.Unlock()
			return
		}
		if len(s.queue) == 0 {
			// Closed and drained: snapshot once more so the next start
			// replays a single checkpoint record, then release the file.
			if s.j != nil {
				s.j.checkpoint(s.snapshotLocked())
				s.j.Close()
			}
			s.mu.Unlock()
			return
		}
		if s.opts.MaxQueueDelay > 0 {
			// The queue is FIFO, so expired submissions form a prefix.
			now := s.opts.Now()
			var expired []*submission
			for len(s.queue) > 0 && now.Sub(s.queue[0].enqueued) > s.opts.MaxQueueDelay {
				expired = append(expired, s.queue[0])
				s.queue = s.queue[1:]
			}
			if len(expired) > 0 {
				mQueueDepth.Set(float64(s.queueLenLocked()))
				s.mu.Unlock()
				s.failTimeout(expired)
				continue
			}
		}
		var batch []*submission
		if len(s.queue[0].reqs) > 1 {
			batch = []*submission{s.queue[0]}
			s.queue = s.queue[1:]
		} else {
			// Coalesce queued singles into one risk pass; stop at a group,
			// at MaxBatch, or at a hose-key collision (colliding flow sets
			// must be assessed in separate passes).
			seen := make(map[string]bool)
			n := 0
			for n < len(s.queue) && n < s.opts.MaxBatch && len(s.queue[n].reqs) == 1 {
				collides := false
				for j := range s.queue[n].reqs[0].Hoses {
					if seen[s.queue[n].reqs[0].Hoses[j].Key()] {
						collides = true
						break
					}
				}
				if collides {
					break
				}
				for j := range s.queue[n].reqs[0].Hoses {
					seen[s.queue[n].reqs[0].Hoses[j].Key()] = true
				}
				n++
			}
			batch = append([]*submission(nil), s.queue[:n]...)
			s.queue = s.queue[n:]
		}
		mQueueDepth.Set(float64(s.queueLenLocked()))
		s.mu.Unlock()
		s.decide(batch)
	}
}

// failTimeout publishes queue-timeout decisions for submissions that aged
// out: journaled like any decided batch (so a restart does not resurrect
// and late-decide them), never run through a risk pass.
func (s *Service) failTimeout(subs []*submission) {
	for _, sub := range subs {
		sub.qsp.SetError(fmt.Errorf("granting: queued longer than %s", s.opts.MaxQueueDelay))
		sub.qsp.Finish()
		decs := make([]Decision, len(sub.reqs))
		for i := range sub.reqs {
			decs[i] = Decision{
				ID:     sub.ids[i],
				NPG:    sub.reqs[i].NPG,
				Status: StatusQueueTimeout,
				Err:    fmt.Sprintf("granting: queued longer than %s", s.opts.MaxQueueDelay),
			}
			mDecisions.With(string(StatusQueueTimeout)).Inc()
		}
		mQueueTimeouts.Add(int64(len(sub.reqs)))
		s.mu.Lock()
		if s.j != nil {
			s.j.appendDec("", sub.ids, decs) // append counts its own failures
		}
		for i, id := range sub.ids {
			delete(s.subs, id)
			s.decided[id] = &decs[i]
			s.order = append(s.order, id)
			s.stats.Decided++
			s.stats.QueueTimeouts++
		}
		for len(s.order) > s.opts.Retain {
			delete(s.decided, s.order[0])
			s.order = s.order[1:]
		}
		s.mu.Unlock()
		mDecisionSeconds.ObserveSince(sub.enqueued)
		sub.finishRoot()
		close(sub.done)
	}
}

// snapshotLocked assembles the checkpoint record: the decided retention
// ring plus everything still queued. s.mu must be held.
func (s *Service) snapshotLocked() *walCkpt {
	ck := &walCkpt{Seq: s.seq, Stats: s.stats}
	for _, id := range s.order {
		if d, ok := s.decided[id]; ok {
			ck.Decided = append(ck.Decided, walDecided{ID: id, Dec: *d})
		}
	}
	for _, sub := range s.queue {
		ck.Pending = append(ck.Pending, walSub{IDs: sub.ids, Reqs: sub.reqs})
	}
	return ck
}

// Kill hard-stops the service WITHOUT draining the queue, closing waiters,
// or checkpointing the journal — the in-process stand-in for a crash, used
// by the recovery tests (pair it with faults.CrashTail for a torn write).
// Pending Wait calls run into their timeout; the journal file is left
// exactly as the last append left it.
func (s *Service) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.killed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// decide runs one coalesced batch through the cache + DecideBatch, stores
// granted contracts, and publishes the outcomes.
func (s *Service) decide(batch []*submission) {
	var reqs []Request
	var ids []string
	// Each submission's queue span ends here (the pop) and its risk pass is
	// one grantd.decide span in its own trace; a coalesced batch shows the
	// shared pass as overlapping spans across the member traces.
	dspans := make([]trace.Span, len(batch))
	for bi, sub := range batch {
		reqs = append(reqs, sub.reqs...)
		ids = append(ids, sub.ids...)
		sub.qsp.Finish()
		dspans[bi] = s.tracer.StartChild(sub.tc, "grantd.decide")
		dspans[bi].SetService("grantd")
	}
	mBatches.Inc()
	mBatchSize.Observe(float64(len(reqs)))

	var decs []Decision
	var err error
	memoizable := s.opts.Approval.PlannedTopology == nil
	var key uint64
	var sig string
	var reqSigs []string
	hit := false
	if memoizable {
		reqSigs = make([]string, len(reqs))
		for i := range reqs {
			reqSigs[i] = reqs[i].Signature()
		}
		sig = batchSig(reqSigs, &s.opts)
		key = batchKey(sig)
		if cached, ok := s.c.lookup(key, sig, reqSigs); ok {
			// lookup returns a fresh slice in this batch's request order;
			// stamping ids below never touches the memoized entry.
			decs = cached
			hit = true
			mMemoHits.Add(int64(len(reqs)))
		}
	}
	if !hit {
		if memoizable {
			mMemoMisses.Add(int64(len(reqs)))
		}
		opts := s.opts
		opts.Approval.Risk.Cache = s.c.resultCache()
		opts.Approval.Risk.Pool = s.c.runnerPool()
		decs, err = DecideBatch(s.topo, reqs, opts)
		if err == nil && memoizable {
			s.c.store(key, sig, reqSigs, append([]Decision(nil), decs...))
		}
	}
	updateHitRatio()

	if err != nil {
		// Whole-pass failure (unknown region slipped past validation,
		// conflicting SLOs, risk engine error): every request in the batch
		// gets an error decision.
		decs = make([]Decision, len(reqs))
		for i := range reqs {
			decs[i] = Decision{NPG: reqs[i].NPG, Status: StatusError, Err: err.Error()}
		}
	}
	for bi := range dspans {
		if err != nil {
			dspans[bi].SetError(err)
		} else if hit {
			dspans[bi].Annotate("memo hit")
		}
		dspans[bi].Finish()
	}

	// Contract push, one grantd.push span per member submission covering its
	// own decisions' sink writes.
	off := 0
	for _, sub := range batch {
		psp := s.tracer.StartChild(sub.tc, "grantd.push")
		psp.SetService("grantd")
		// A remote sink (contractdb.Client) joins the tree: its wire calls
		// become children of this push span. An invalid context (untraced
		// recovered submissions) clears any stale one.
		if ss, ok := s.sink.(interface{ SetSpan(trace.Context) }); ok {
			ss.SetSpan(psp.Context())
		}
		for k := range sub.ids {
			i := off + k
			decs[i].ID = ids[i]
			if s.sink != nil && decs[i].Contract != nil {
				if serr := s.sink.Put(*decs[i].Contract); serr != nil {
					decs[i].Status = StatusError
					decs[i].Err = fmt.Sprintf("store contract: %v", serr)
					mStoreFails.Inc()
					psp.SetError(serr)
				}
			}
			mDecisions.With(string(decs[i].Status)).Inc()
		}
		psp.Finish()
		off += len(sub.ids)
	}

	s.mu.Lock()
	if s.j != nil {
		// Journal the decided batch before anyone can observe it. A failed
		// append only loses restart latency, not correctness: recovery
		// re-decides the still-journaled submission deterministically, so
		// the decision degrades to a metric instead of an error.
		jspans := make([]trace.Span, len(batch))
		for bi, sub := range batch {
			jspans[bi] = s.tracer.StartChild(sub.tc, "grantd.journal")
			jspans[bi].SetService("grantd")
		}
		s.j.appendDec(sig, ids, decs)
		for bi := range jspans {
			jspans[bi].Finish()
		}
	}
	for i := range decs {
		id := ids[i]
		delete(s.subs, id)
		s.decided[id] = &decs[i]
		s.order = append(s.order, id)
		s.stats.Decided++
		switch decs[i].Status {
		case StatusApproved:
			s.stats.Approved++
		case StatusNegotiated:
			s.stats.Negotiated++
		case StatusRejected:
			s.stats.Rejected++
		default:
			s.stats.Errors++
		}
	}
	s.stats.Batches++
	if hit {
		s.stats.MemoHits += int64(len(reqs))
	} else {
		s.stats.MemoMisses += int64(len(reqs))
	}
	for len(s.order) > s.opts.Retain {
		delete(s.decided, s.order[0])
		s.order = s.order[1:]
	}
	if s.j != nil && s.j.needCheckpoint() {
		s.j.checkpoint(s.snapshotLocked())
	}
	s.mu.Unlock()

	for _, sub := range batch {
		mDecisionSeconds.ObserveSince(sub.enqueued)
		sub.finishRoot()
		close(sub.done)
	}
}
