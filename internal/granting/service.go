package granting

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/hose"
	"entitlement/internal/topology"
)

// Sink receives granted contracts; both contractdb.Store (in-process) and
// contractdb.Client (remote database) satisfy it. A nil sink keeps grantd
// decision-only.
type Sink interface {
	Put(c contract.Contract) error
}

// ErrPending is returned by Wait when the decision has not landed within the
// caller's patience.
var ErrPending = errors.New("granting: decision pending")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("granting: service closed")

// Stats is a point-in-time snapshot of the service counters, for the report
// endpoint and tests.
type Stats struct {
	Submitted  int64  `json:"submitted"`
	Decided    int64  `json:"decided"`
	Approved   int64  `json:"approved"`
	Negotiated int64  `json:"negotiated"`
	Rejected   int64  `json:"rejected"`
	Errors     int64  `json:"errors"`
	Batches    int64  `json:"batches"`
	QueueDepth int    `json:"queue_depth"`
	MemoHits   int64  `json:"decision_cache_hits"`
	MemoMisses int64  `json:"decision_cache_misses"`
	Epoch      uint64 `json:"topology_epoch"`
}

// submission is one queue entry: a group of requests decided atomically in
// one risk pass (SubmitGroup), or a single request eligible for coalescing.
type submission struct {
	reqs     []Request
	ids      []string
	enqueued time.Time
	done     chan struct{}
	err      error
}

// Service is the admission queue around DecideBatch: a single decider
// goroutine drains submissions — coalescing compatible singles into one
// batch — decides them through the epoch-keyed cache, and pushes granted
// contracts into the sink. Submissions are asynchronous; callers follow up
// with Wait or Status.
type Service struct {
	topo *topology.Topology
	sink Sink
	opts Options
	c    *cache

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*submission
	subs    map[string]*submission // pending id → submission
	decided map[string]*Decision
	order   []string // decided ids, oldest first (retention ring)
	stats   Stats
	seq     uint64
	closed  bool
	done    chan struct{}
}

// NewService starts the decider. Close releases it.
func NewService(topo *topology.Topology, sink Sink, opts Options) *Service {
	o := opts.withDefaults()
	s := &Service{
		topo: topo,
		sink: sink,
		opts: o,
		c:    newCache(topo, o.MemoMaxEntries),
		subs: make(map[string]*submission),

		decided: make(map[string]*Decision),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// Submit enqueues one request and returns its id immediately. The request is
// validated up front so queue-time failures cannot happen; a zero StartUnix
// is pinned to the submission clock (retries of the pinned request are then
// idempotent and memoizable).
func (s *Service) Submit(req Request) (string, error) {
	ids, err := s.submit([]Request{req})
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// SubmitGroup enqueues requests that must be decided together in one risk
// pass — the batch-CLI equivalence path. The group is atomic: it never
// coalesces with other submissions.
func (s *Service) SubmitGroup(reqs []Request) ([]string, error) {
	if len(reqs) == 0 {
		return nil, errors.New("granting: empty group")
	}
	return s.submit(reqs)
}

func (s *Service) submit(reqs []Request) ([]string, error) {
	// Deep-copy first: Validate fills empty hose NPGs, a zero StartUnix is
	// pinned below, and the decider goroutine reads the slice after submit
	// returns — the caller keeps undisturbed ownership of its arguments.
	cp := make([]Request, len(reqs))
	copy(cp, reqs)
	for i := range cp {
		cp[i].Hoses = append([]hose.Request(nil), cp[i].Hoses...)
		for j := range cp[i].Hoses {
			cp[i].Hoses[j].Segments = append([]hose.Segment(nil), cp[i].Hoses[j].Segments...)
		}
	}
	reqs = cp
	now := s.opts.Now()
	for i := range reqs {
		if err := reqs[i].Validate(s.topo); err != nil {
			return nil, err
		}
		if reqs[i].StartUnix == 0 {
			reqs[i].StartUnix = now.Unix()
		}
	}
	if len(reqs) > 1 {
		// Group members share one risk pass; colliding flow sets cannot.
		seen := make(map[string]bool)
		for i := range reqs {
			for j := range reqs[i].Hoses {
				k := reqs[i].Hoses[j].Key()
				if seen[k] {
					return nil, fmt.Errorf("granting: hose %s appears twice in group", k)
				}
				seen[k] = true
			}
		}
	}
	sub := &submission{reqs: reqs, enqueued: now, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	sub.ids = make([]string, len(reqs))
	for i := range reqs {
		s.seq++
		sub.ids[i] = fmt.Sprintf("g-%d", s.seq)
		s.subs[sub.ids[i]] = sub
	}
	s.queue = append(s.queue, sub)
	s.stats.Submitted += int64(len(reqs))
	mRequests.Add(int64(len(reqs)))
	mQueueDepth.Set(float64(s.queueLenLocked()))
	s.cond.Signal()
	s.mu.Unlock()
	return append([]string(nil), sub.ids...), nil
}

func (s *Service) queueLenLocked() int {
	n := 0
	for _, sub := range s.queue {
		n += len(sub.reqs)
	}
	return n
}

// Wait blocks until the decision for id lands (or timeout; ErrPending).
func (s *Service) Wait(id string, timeout time.Duration) (*Decision, error) {
	s.mu.Lock()
	if d, ok := s.decided[id]; ok {
		s.mu.Unlock()
		return d, nil
	}
	sub, ok := s.subs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("granting: unknown request id %q", id)
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-sub.done:
	case <-t.C:
		return nil, ErrPending
	}
	if sub.err != nil {
		return nil, sub.err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.decided[id]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("granting: decision for %q evicted", id)
}

// Status reports "pending", "decided", or "unknown" for id, with the
// decision when available.
func (s *Service) Status(id string) (string, *Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.decided[id]; ok {
		return "decided", d
	}
	if _, ok := s.subs[id]; ok {
		return "pending", nil
	}
	return "unknown", nil
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueDepth = s.queueLenLocked()
	st.Epoch = s.topo.Epoch()
	return st
}

// Recent returns up to n most recent decisions, newest first.
func (s *Service) Recent(n int) []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.order) {
		n = len(s.order)
	}
	out := make([]Decision, 0, n)
	for i := len(s.order) - 1; i >= 0 && len(out) < n; i-- {
		if d, ok := s.decided[s.order[i]]; ok {
			out = append(out, *d)
		}
	}
	return out
}

// Close stops accepting submissions, decides what is already queued, and
// waits for the decider to drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// run is the decider loop: it pops either one atomic group or a collision-
// free run of singles (up to MaxBatch) and decides them in one pass.
func (s *Service) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		var batch []*submission
		if len(s.queue[0].reqs) > 1 {
			batch = []*submission{s.queue[0]}
			s.queue = s.queue[1:]
		} else {
			// Coalesce queued singles into one risk pass; stop at a group,
			// at MaxBatch, or at a hose-key collision (colliding flow sets
			// must be assessed in separate passes).
			seen := make(map[string]bool)
			n := 0
			for n < len(s.queue) && n < s.opts.MaxBatch && len(s.queue[n].reqs) == 1 {
				collides := false
				for j := range s.queue[n].reqs[0].Hoses {
					if seen[s.queue[n].reqs[0].Hoses[j].Key()] {
						collides = true
						break
					}
				}
				if collides {
					break
				}
				for j := range s.queue[n].reqs[0].Hoses {
					seen[s.queue[n].reqs[0].Hoses[j].Key()] = true
				}
				n++
			}
			batch = append([]*submission(nil), s.queue[:n]...)
			s.queue = s.queue[n:]
		}
		mQueueDepth.Set(float64(s.queueLenLocked()))
		s.mu.Unlock()
		s.decide(batch)
	}
}

// decide runs one coalesced batch through the cache + DecideBatch, stores
// granted contracts, and publishes the outcomes.
func (s *Service) decide(batch []*submission) {
	var reqs []Request
	var ids []string
	for _, sub := range batch {
		reqs = append(reqs, sub.reqs...)
		ids = append(ids, sub.ids...)
	}
	mBatches.Inc()
	mBatchSize.Observe(float64(len(reqs)))

	var decs []Decision
	var err error
	memoizable := s.opts.Approval.PlannedTopology == nil
	var key uint64
	var sig string
	var reqSigs []string
	hit := false
	if memoizable {
		reqSigs = make([]string, len(reqs))
		for i := range reqs {
			reqSigs[i] = reqs[i].Signature()
		}
		sig = batchSig(reqSigs, &s.opts)
		key = batchKey(sig)
		if cached, ok := s.c.lookup(key, sig, reqSigs); ok {
			// lookup returns a fresh slice in this batch's request order;
			// stamping ids below never touches the memoized entry.
			decs = cached
			hit = true
			mMemoHits.Add(int64(len(reqs)))
		}
	}
	if !hit {
		if memoizable {
			mMemoMisses.Add(int64(len(reqs)))
		}
		opts := s.opts
		opts.Approval.Risk.Cache = s.c.resultCache()
		opts.Approval.Risk.Pool = s.c.runnerPool()
		decs, err = DecideBatch(s.topo, reqs, opts)
		if err == nil && memoizable {
			s.c.store(key, sig, reqSigs, append([]Decision(nil), decs...))
		}
	}
	updateHitRatio()

	if err != nil {
		// Whole-pass failure (unknown region slipped past validation,
		// conflicting SLOs, risk engine error): every request in the batch
		// gets an error decision.
		decs = make([]Decision, len(reqs))
		for i := range reqs {
			decs[i] = Decision{NPG: reqs[i].NPG, Status: StatusError, Err: err.Error()}
		}
	}

	for i := range decs {
		decs[i].ID = ids[i]
		if s.sink != nil && decs[i].Contract != nil {
			if serr := s.sink.Put(*decs[i].Contract); serr != nil {
				decs[i].Status = StatusError
				decs[i].Err = fmt.Sprintf("store contract: %v", serr)
				mStoreFails.Inc()
			}
		}
		mDecisions.With(string(decs[i].Status)).Inc()
	}

	s.mu.Lock()
	for i := range decs {
		id := ids[i]
		delete(s.subs, id)
		s.decided[id] = &decs[i]
		s.order = append(s.order, id)
		s.stats.Decided++
		switch decs[i].Status {
		case StatusApproved:
			s.stats.Approved++
		case StatusNegotiated:
			s.stats.Negotiated++
		case StatusRejected:
			s.stats.Rejected++
		default:
			s.stats.Errors++
		}
	}
	s.stats.Batches++
	if hit {
		s.stats.MemoHits += int64(len(reqs))
	} else {
		s.stats.MemoMisses += int64(len(reqs))
	}
	for len(s.order) > s.opts.Retain {
		delete(s.decided, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()

	for _, sub := range batch {
		mDecisionSeconds.ObserveSince(sub.enqueued)
		close(sub.done)
	}
}
