// Package approval implements the contract-approval stage of §4.3 and
// Algorithm 2: Hose_Approval converts hose requests into representative pipe
// realizations (via the hose-polytope sampler, standing in for Meta's demand
// generation service [1]), Pipe_Approval assesses each realization with the
// risk simulator while enforcing strict QoS priority, and the hose approvals
// aggregate as "sum up ... and use the minimum of each as the final Hose
// approvals".
//
// The package also implements the §8 bandwidth-negotiation extension: when a
// request cannot be fully approved, Negotiate produces a counter-proposal
// with the admittable volume.
package approval

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"entitlement/internal/contract"
	"entitlement/internal/flow"
	"entitlement/internal/hose"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

// Options configures the approval pipeline.
type Options struct {
	// RepresentativeTMs is the number of polytope realizations sampled per
	// hose ("narrow down infinite possible Pipe realizations into a small
	// set of representative ones"). Default 6.
	RepresentativeTMs int
	// SLOs maps each NPG to its contract SLO target; NPGs without an entry
	// use DefaultSLO.
	SLOs map[contract.NPG]contract.SLO
	// DefaultSLO applies when an NPG has no explicit target. Default 0.99.
	DefaultSLO contract.SLO
	// Risk configures the Monte-Carlo assessment per realization, including
	// Risk.Workers, the scenario-evaluation parallelism (0 = all cores):
	// every Pipe_Approval pass fans its failure scenarios out over that many
	// goroutines with byte-identical results.
	Risk risk.Options
	// JointRealizations samples each (NPG, class)'s hoses jointly — full
	// traffic matrices satisfying the egress AND ingress constraints at
	// once (Equation 1) via the Sinkhorn sampler — instead of independent
	// per-hose draws. Joint draws avoid counting the same traffic once for
	// its egress hose and again for its ingress hose.
	JointRealizations bool
	// PlannedTopology, when set, is the backbone after planned changes
	// (new links, decommissions) landing during the entitlement period;
	// ChangeFraction is the fraction of the period spent on it. Approval
	// then guarantees the SLO across both phases (§4.3: the process
	// "analyzes possible network failures ... and changes (e.g., new
	// links) in advance").
	PlannedTopology *topology.Topology
	ChangeFraction  float64
	// Seed drives TM sampling.
	Seed int64
	// Negotiation configures the RAILS-style counter-proposal search that
	// NegotiateSearch runs for under-approved hoses (see rails.go). The zero
	// value keeps the plain admittable-volume proposals.
	Negotiation NegotiateOptions
}

func (o Options) withDefaults() Options {
	if o.RepresentativeTMs <= 0 {
		o.RepresentativeTMs = 6
	}
	if o.DefaultSLO == 0 {
		o.DefaultSLO = 0.99
	}
	return o
}

func (o Options) slo(npg contract.NPG) float64 {
	if s, ok := o.SLOs[npg]; ok {
		return float64(s)
	}
	return float64(o.DefaultSLO)
}

// HoseApproval is the outcome for one hose request.
type HoseApproval struct {
	Request hose.Request
	// ApprovedRate is the bandwidth the network guarantees at the NPG's SLO:
	// min over realizations of the sum of approved pipe volumes.
	ApprovedRate float64
	// FullyApproved reports whether every pipe of every realization met the
	// SLO at its full requested volume (the Algorithm 2 batch rule: "only
	// when 100% of the flow meets SLO, the batch of flows is approved").
	FullyApproved bool
}

// Fraction returns approved/requested (1 for a zero-rate hose).
func (a *HoseApproval) Fraction() float64 {
	if a.Request.Rate <= 0 {
		return 1
	}
	return a.ApprovedRate / a.Request.Rate
}

// Result is the full approval outcome.
type Result struct {
	Approvals []HoseApproval
	// ByKey indexes approvals by hose key.
	ByKey map[string]*HoseApproval
}

// Approve runs the Hose_Approval pipeline over all hose requests. Egress
// hoses realize as pipes from the hose region to sampled destinations,
// ingress hoses as pipes from sampled sources. Realization k of every hose
// is assessed together (one network snapshot per k), so concurrent demand is
// modeled; classes compete with strict priority inside the allocator, which
// is Algorithm 2's per-class loop in allocator form.
func Approve(topo *topology.Topology, hoses []hose.Request, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if len(hoses) == 0 {
		return &Result{ByKey: map[string]*HoseApproval{}}, nil
	}
	regions := topo.RegionsSorted()
	for i := range hoses {
		if !topo.HasRegion(hoses[i].Region) {
			return nil, fmt.Errorf("approval: hose %s references unknown region %s", hoses[i].Key(), hoses[i].Region)
		}
	}

	// Realization generators: independent per-hose samplers by default, or
	// joint per-(NPG, class) Sinkhorn samplers when requested and the group
	// has both directions.
	samplers := make([]*hose.Sampler, len(hoses))
	jointOf := make([]int, len(hoses)) // hose index → joint group, or -1
	var jointSamplers []*hose.JointSampler
	var jointMembers [][]int // group → hose indexes
	for i := range jointOf {
		jointOf[i] = -1
	}
	if o.JointRealizations {
		type groupKey struct {
			npg   contract.NPG
			class contract.Class
		}
		groups := make(map[groupKey][]int)
		var order []groupKey
		for i := range hoses {
			k := groupKey{hoses[i].NPG, hoses[i].Class}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], i)
		}
		for _, k := range order {
			members := groups[k]
			groupHoses := make([]hose.Request, len(members))
			hasEg, hasIn := false, false
			for j, idx := range members {
				groupHoses[j] = hoses[idx]
				if hoses[idx].Direction == contract.Egress {
					hasEg = true
				} else {
					hasIn = true
				}
			}
			if !hasEg || !hasIn {
				continue // joint sampling needs both directions; fall back
			}
			js, err := hose.NewJointSampler(groupHoses, o.Seed+int64(len(jointSamplers))*104729)
			if err != nil {
				return nil, fmt.Errorf("approval: joint sampler for %s/%s: %w", k.npg, k.class, err)
			}
			g := len(jointSamplers)
			jointSamplers = append(jointSamplers, js)
			jointMembers = append(jointMembers, members)
			for _, idx := range members {
				jointOf[idx] = g
			}
		}
	}
	for i := range hoses {
		if jointOf[i] < 0 {
			samplers[i] = hose.NewSampler(hoses[i], regions, o.Seed+int64(i)*7919)
		}
	}

	// Per hose, per realization: approved volume sum and full-approval flag.
	perTM := make([][]float64, len(hoses))
	fullOK := make([]bool, len(hoses))
	for i := range fullOK {
		fullOK[i] = true
		perTM[i] = make([]float64, 0, o.RepresentativeTMs)
	}

	for k := 0; k < o.RepresentativeTMs; k++ {
		demands := make([]flow.Demand, 0, len(hoses)*4)
		// pipeOwner maps demand key → owning hose indexes (a joint pipe
		// counts toward its source's egress hose and destination's ingress
		// hose).
		pipeOwner := make(map[string][]int)
		pipeRate := make(map[string]float64)
		addDemand := func(key string, src, dst topology.Region, rate float64, class contract.Class, owners ...int) {
			demands = append(demands, flow.Demand{
				Key: key, Src: src, Dst: dst, Rate: rate, Class: int(class),
			})
			pipeOwner[key] = owners
			pipeRate[key] = rate
		}
		for i := range hoses {
			if jointOf[i] >= 0 {
				continue // produced by the joint sampler below
			}
			h := &hoses[i]
			tm := samplers[i].Representative()
			for _, dst := range sortedRegions(tm.Rates) {
				rate := tm.Rates[dst]
				if rate <= 0 {
					continue
				}
				src, dstR := h.Region, dst
				if h.Direction == contract.Ingress {
					src, dstR = dst, h.Region
				}
				key := fmt.Sprintf("%s#%d/%s>%s", h.Key(), k, src, dstR)
				addDemand(key, src, dstR, rate, h.Class, i)
			}
		}
		for g, js := range jointSamplers {
			members := jointMembers[g]
			// Index this group's hoses by (region, direction).
			byRegionDir := make(map[topology.Region][2]int) // [egress idx+1, ingress idx+1]
			for _, idx := range members {
				h := &hoses[idx]
				v := byRegionDir[h.Region]
				if h.Direction == contract.Egress {
					v[0] = idx + 1
				} else {
					v[1] = idx + 1
				}
				byRegionDir[h.Region] = v
			}
			tm := js.Sample(1)
			class := hoses[members[0]].Class
			npg := hoses[members[0]].NPG
			for _, p := range tm.Pipes(npg, class) {
				var owners []int
				if v := byRegionDir[p.Src]; v[0] > 0 {
					owners = append(owners, v[0]-1)
				}
				if v := byRegionDir[p.Dst]; v[1] > 0 {
					owners = append(owners, v[1]-1)
				}
				key := fmt.Sprintf("joint/%s/%s#%d/%s>%s", npg, class, k, p.Src, p.Dst)
				addDemand(key, p.Src, p.Dst, p.Rate, class, owners...)
			}
		}
		riskOpts := o.Risk
		riskOpts.Seed = o.Risk.Seed + int64(k)
		var res *risk.Result
		var err error
		if o.PlannedTopology != nil {
			res, err = risk.AssessPhased(topo, o.PlannedTopology, o.ChangeFraction, demands, riskOpts)
		} else {
			res, err = risk.Assess(topo, demands, riskOpts)
		}
		if err != nil {
			return nil, err
		}
		volume := make([]float64, len(hoses))
		for _, d := range demands {
			for _, i := range pipeOwner[d.Key] {
				slo := o.slo(hoses[i].NPG)
				guaranteed := res.GuaranteedRate(d.Key, slo)
				if guaranteed > pipeRate[d.Key] {
					guaranteed = pipeRate[d.Key]
				}
				volume[i] += guaranteed
				// Relative tolerance: an absolute epsilon is meaningless
				// against 1e11-scale rates (ordinary float accumulation in
				// the water-filling loop exceeds it).
				if guaranteed < pipeRate[d.Key]-bwTolApproval(pipeRate[d.Key]) {
					fullOK[i] = false
				}
			}
		}
		for i := range hoses {
			perTM[i] = append(perTM[i], volume[i])
		}
	}

	result := &Result{
		Approvals: make([]HoseApproval, len(hoses)),
		ByKey:     make(map[string]*HoseApproval, len(hoses)),
	}
	for i := range hoses {
		approved := math.Inf(1)
		for _, v := range perTM[i] {
			if v < approved {
				approved = v
			}
		}
		if math.IsInf(approved, 1) {
			approved = 0
		}
		if approved > hoses[i].Rate {
			approved = hoses[i].Rate
		}
		result.Approvals[i] = HoseApproval{
			Request:       hoses[i],
			ApprovedRate:  approved,
			FullyApproved: fullOK[i] && approved >= hoses[i].Rate-bwTolApproval(hoses[i].Rate),
		}
		result.ByKey[hoses[i].Key()] = &result.Approvals[i]
	}
	return result, nil
}

// SortRequests orders hose requests canonically — by key, then rate — in
// place. Approve seeds its per-hose samplers by input index, so hose ORDER
// (not just set membership) is part of an assessment's identity; callers
// that assemble a batch from concurrently arriving submissions (the granting
// service's admission queue) sort first so the same request set is decided
// byte-identically no matter the arrival interleaving.
func SortRequests(hoses []hose.Request) {
	sort.SliceStable(hoses, func(i, j int) bool {
		ki, kj := hoses[i].Key(), hoses[j].Key()
		if ki != kj {
			return ki < kj
		}
		return hoses[i].Rate < hoses[j].Rate
	})
}

func sortedRegions(m map[topology.Region]float64) []topology.Region {
	out := make([]topology.Region, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApprovalFraction summarizes a result: total approved rate over total
// requested rate — the Figure 22 y-axis.
func (r *Result) ApprovalFraction() float64 {
	var req, app float64
	for i := range r.Approvals {
		req += r.Approvals[i].Request.Rate
		app += r.Approvals[i].ApprovedRate
	}
	if req == 0 {
		return 1
	}
	return app / req
}

// FractionByDirection splits ApprovalFraction into egress and ingress.
func (r *Result) FractionByDirection() (egress, ingress float64) {
	var reqE, appE, reqI, appI float64
	for i := range r.Approvals {
		a := &r.Approvals[i]
		if a.Request.Direction == contract.Egress {
			reqE += a.Request.Rate
			appE += a.ApprovedRate
		} else {
			reqI += a.Request.Rate
			appI += a.ApprovedRate
		}
	}
	egress, ingress = 1, 1
	if reqE > 0 {
		egress = appE / reqE
	}
	if reqI > 0 {
		ingress = appI / reqI
	}
	return egress, ingress
}

// --- Bandwidth negotiation (§8) ------------------------------------------

// CounterProposal is the automated answer to a rejected or under-approved
// request: the admittable volume plus alternative regions with headroom.
type CounterProposal struct {
	Hose hose.Request
	// AdmittableRate is the volume the network can guarantee today.
	AdmittableRate float64
	// Shortfall = requested − admittable.
	Shortfall float64
	// AlternativeRegions lists other regions (best first) whose hoses of
	// the same class were fully approved — candidates for "alternative
	// demand patterns (e.g. using different regions)".
	AlternativeRegions []topology.Region
	// CounterOffer, when non-nil, is the best alternative ask the RAILS
	// search (NegotiateSearch) verified the network can fully approve: the
	// original hose at a shifted QoS class, a shrunk rate, or both.
	CounterOffer *hose.Request
	// Evals is the number of re-approval evaluations the search spent on
	// this hose (0 when the search was disabled or found nothing).
	Evals int
}

// Negotiate builds counter-proposals for every hose that was not fully
// approved. Alternative regions are ranked by their approval fraction among
// same-class hoses in the result.
func Negotiate(res *Result) []CounterProposal {
	var out []CounterProposal
	for i := range res.Approvals {
		a := &res.Approvals[i]
		if a.FullyApproved {
			continue
		}
		cp := CounterProposal{
			Hose:           a.Request,
			AdmittableRate: a.ApprovedRate,
			Shortfall:      a.Request.Rate - a.ApprovedRate,
		}
		type cand struct {
			region topology.Region
			frac   float64
		}
		var cands []cand
		for j := range res.Approvals {
			b := &res.Approvals[j]
			if b.Request.Region == a.Request.Region || b.Request.Class != a.Request.Class ||
				b.Request.Direction != a.Request.Direction {
				continue
			}
			cands = append(cands, cand{b.Request.Region, b.Fraction()})
		}
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].frac != cands[y].frac {
				return cands[x].frac > cands[y].frac
			}
			return cands[x].region < cands[y].region
		})
		seen := map[topology.Region]bool{}
		for _, c := range cands {
			if c.frac < 1-1e-9 || seen[c.region] {
				continue
			}
			seen[c.region] = true
			cp.AlternativeRegions = append(cp.AlternativeRegions, c.region)
		}
		out = append(out, cp)
	}
	return out
}

// ErrNoCapacity is a sentinel for callers that require full approval.
var ErrNoCapacity = errors.New("approval: request cannot be fully approved")

// RequireFull returns ErrNoCapacity unless every hose was fully approved.
func (r *Result) RequireFull() error {
	for i := range r.Approvals {
		if !r.Approvals[i].FullyApproved {
			return fmt.Errorf("%w: %s approved %.0f of %.0f", ErrNoCapacity,
				r.Approvals[i].Request.Key(), r.Approvals[i].ApprovedRate, r.Approvals[i].Request.Rate)
		}
	}
	return nil
}
