// RAILS-style counter-proposal search (§8 + PAPERS.md: risk-aware iterated
// local search). Plain Negotiate answers an under-approved hose with the
// admittable volume — "scale the ask down". NegotiateSearch instead explores
// a small neighborhood of alternative asks — QoS class shifts at the full
// rate, then rate shrinks bisected between the admittable volume and the
// request — and prices every candidate with a real re-approval through the
// warm risk path (shared scenario states, pooled runners), never a cold
// pass. The best fully-approvable alternative becomes the counter-offer.
//
// A candidate is acceptable only if the modified batch fully approves the
// candidate hose AND no other hose that was fully approved before loses that
// status: the search never funds one customer's counter-offer by degrading
// another's grant. Candidates are scored by offered rate (a full-rate class
// shift beats any shrink), tie-broken toward the original class.
//
// The search is deterministic: moves are enumerated in a fixed order and
// every evaluation is a seeded Approve, so the same inputs always produce
// the same counter-offers (the granting service memoizes decisions on that
// property).
package approval

import (
	"entitlement/internal/contract"
	"entitlement/internal/hose"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

// NegotiateOptions configures the counter-proposal search; zero values mean
// the plain admittable-volume proposal (no search).
type NegotiateOptions struct {
	// Enabled turns on the local search; when false NegotiateSearch is
	// exactly Negotiate.
	Enabled bool
	// MaxEvals bounds re-approval evaluations per under-approved hose.
	// Default 8.
	MaxEvals int
	// RateSteps bounds the bisection probes between the admittable rate and
	// the request. Default 4 (resolves the admittable boundary to ~6% of the
	// shortfall). Capped by the remaining MaxEvals budget.
	RateSteps int
	// MaxClassShift bounds how far from the requested QoS class the search
	// wanders (in class steps). Default 2 — one tier in either direction.
	MaxClassShift int
}

func (n NegotiateOptions) withDefaults() NegotiateOptions {
	if n.MaxEvals <= 0 {
		n.MaxEvals = 8
	}
	if n.RateSteps <= 0 {
		n.RateSteps = 4
	}
	if n.MaxClassShift <= 0 {
		n.MaxClassShift = 2
	}
	return n
}

// NegotiateSearch builds counter-proposals for every hose that was not fully
// approved in res (which must be Approve's result for exactly these hoses
// and options). With the search disabled it degrades to Negotiate. Each
// proposal may carry a CounterOffer: an alternative ask the network verified
// it can fully approve without degrading any other hose's full approval.
func NegotiateSearch(topo *topology.Topology, hoses []hose.Request, res *Result, opts Options) ([]CounterProposal, error) {
	proposals := Negotiate(res)
	neg := opts.Negotiation
	if !neg.Enabled || len(proposals) == 0 {
		return proposals, nil
	}
	neg = neg.withDefaults()

	// Candidate evaluations share one scenario-state set per risk seed and
	// the caller's runner pool, but never the caller's result cache: a
	// candidate's demand set is unique to the search, and filling a shared
	// LRU with throwaway entries would evict the batch's real assessments.
	searchOpts := opts
	searchOpts.Negotiation = NegotiateOptions{}
	searchOpts.Risk.Cache = nil
	searchOpts.Risk.States = nil
	stateCache := make(map[int64][]*topology.FailureState)
	searchOpts.Risk.StatesFor = func(t *topology.Topology, ro risk.Options) []*topology.FailureState {
		if t != topo {
			return nil
		}
		if s, ok := stateCache[ro.Seed]; ok && len(s) == ro.Scenarios {
			return s
		}
		s := risk.SampleStates(t, ro)
		stateCache[ro.Seed] = s
		return s
	}

	// Hose keys already in the batch: a class shift that collides with
	// another hose's flow set cannot be assessed (duplicate demand keys).
	taken := make(map[string]int, len(hoses))
	for i := range hoses {
		taken[hoses[i].Key()] = i
	}

	// evalCandidate re-approves the batch with hoses[idx] replaced by cand.
	evalCandidate := func(idx int, cand hose.Request) (bool, error) {
		mod := make([]hose.Request, len(hoses))
		copy(mod, hoses)
		mod[idx] = cand
		r2, err := Approve(topo, mod, searchOpts)
		if err != nil {
			return false, err
		}
		if !r2.Approvals[idx].FullyApproved {
			return false, nil
		}
		for j := range r2.Approvals {
			if j != idx && res.Approvals[j].FullyApproved && !r2.Approvals[j].FullyApproved {
				return false, nil
			}
		}
		return true, nil
	}

	propAt := 0
	for i := range res.Approvals {
		a := &res.Approvals[i]
		if a.FullyApproved {
			continue
		}
		cp := &proposals[propAt]
		propAt++
		orig := a.Request
		if orig.Rate <= 0 {
			continue
		}
		budget := neg.MaxEvals
		var best *hose.Request

		// Move class 1: QoS class shifts at the full requested rate, nearest
		// shift first (higher-priority direction preferred on ties — the
		// offer "buy one class up and your full ask fits"). The first success
		// is rate-maximal, so the class phase stops there.
		for shift := 1; shift <= neg.MaxClassShift && best == nil && budget > 0; shift++ {
			for _, c := range []contract.Class{orig.Class - contract.Class(shift), orig.Class + contract.Class(shift)} {
				if !c.Valid() || budget == 0 || best != nil {
					continue
				}
				cand := orig
				cand.Class = c
				if _, clash := taken[cand.Key()]; clash {
					continue
				}
				budget--
				ok, err := evalCandidate(i, cand)
				if err != nil {
					return nil, err
				}
				if ok {
					offer := cand
					best = &offer
				}
			}
		}

		// Move class 2: rate shrink at the original class, bisected over
		// (admittable, requested). Skipped when a full-rate class shift
		// already won — no shrink can offer more.
		if best == nil {
			lo, hi := a.ApprovedRate, orig.Rate
			steps := neg.RateSteps
			if steps > budget {
				steps = budget
			}
			for s := 0; s < steps && hi-lo > bwTolApproval(hi); s++ {
				mid := lo + (hi-lo)/2
				cand := orig
				cand.Rate = mid
				budget--
				ok, err := evalCandidate(i, cand)
				if err != nil {
					return nil, err
				}
				if ok {
					lo = mid
					offer := cand
					best = &offer
				} else {
					hi = mid
				}
			}
		}

		if best != nil && (best.Class != orig.Class || best.Rate > a.ApprovedRate+bwTolApproval(a.ApprovedRate)) {
			cp.CounterOffer = best
			cp.Evals = neg.MaxEvals - budget
		}
	}
	return proposals, nil
}

// bwTolApproval mirrors risk's bandwidth tolerance for rate comparisons.
func bwTolApproval(b float64) float64 {
	if b < 0 {
		b = -b
	}
	return 1e-9 + 1e-12*b
}
