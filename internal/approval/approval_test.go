package approval

import (
	"errors"
	"math"
	"testing"

	"entitlement/internal/contract"
	"entitlement/internal/hose"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

// meshTopo builds a reliable full mesh over n regions with the given
// per-direction capacity.
func meshTopo(n int, capacity, failProb float64) *topology.Topology {
	t := topology.New()
	names := make([]topology.Region, n)
	for i := range names {
		names[i] = topology.Region(string(rune('A' + i)))
	}
	srlg := 0
	for i := range names {
		for j := i + 1; j < n; j++ {
			t.EnsureSRLG(srlg, 0)
			t.AddBidirectional(names[i], names[j], capacity, failProb, srlg)
			srlg++
		}
	}
	return t
}

func egressHose(npg contract.NPG, region topology.Region, rate float64, class contract.Class) hose.Request {
	return hose.Request{NPG: npg, Class: class, Region: region, Direction: contract.Egress, Rate: rate}
}

func testOpts() Options {
	return Options{
		RepresentativeTMs: 4,
		Risk:              risk.Options{Scenarios: 40, Seed: 9},
		Seed:              11,
		DefaultSLO:        0.95,
	}
}

func TestApproveSmallDemandFully(t *testing.T) {
	topo := meshTopo(4, 1000, 0) // plenty of reliable capacity
	hoses := []hose.Request{egressHose("Ads", "A", 300, contract.ClassA)}
	res, err := Approve(topo, hoses, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := res.ByKey[hoses[0].Key()]
	if a == nil {
		t.Fatal("no approval entry")
	}
	if !a.FullyApproved {
		t.Errorf("small demand not fully approved: %v of %v", a.ApprovedRate, a.Request.Rate)
	}
	if math.Abs(a.Fraction()-1) > 1e-6 {
		t.Errorf("fraction = %v", a.Fraction())
	}
	if err := res.RequireFull(); err != nil {
		t.Errorf("RequireFull = %v", err)
	}
}

func TestApproveOversizedDemandPartially(t *testing.T) {
	// Egress capacity from A: 3 links × 100 = 300; ask for 600.
	topo := meshTopo(4, 100, 0)
	hoses := []hose.Request{egressHose("Big", "A", 600, contract.ClassA)}
	res, err := Approve(topo, hoses, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := &res.Approvals[0]
	if a.FullyApproved {
		t.Error("oversized demand fully approved")
	}
	if a.ApprovedRate <= 0 {
		t.Error("approved rate should be positive")
	}
	if a.ApprovedRate > 300+1e-6 {
		t.Errorf("approved %v exceeds egress capacity 300", a.ApprovedRate)
	}
	if err := res.RequireFull(); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("RequireFull = %v, want ErrNoCapacity", err)
	}
}

func TestApprovePriorityOrdering(t *testing.T) {
	// Capacity for one, demanded by two classes: premium wins.
	topo := meshTopo(3, 100, 0) // A egress capacity 200
	hoses := []hose.Request{
		egressHose("Low", "A", 200, contract.C4High),
		egressHose("High", "A", 200, contract.C1Low),
	}
	res, err := Approve(topo, hoses, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	high := res.ByKey[hoses[1].Key()]
	low := res.ByKey[hoses[0].Key()]
	if high.ApprovedRate < low.ApprovedRate {
		t.Errorf("premium approved %v < low-priority %v", high.ApprovedRate, low.ApprovedRate)
	}
	if high.ApprovedRate < 150 {
		t.Errorf("premium approved only %v of 200", high.ApprovedRate)
	}
}

func TestApproveSLOSensitivity(t *testing.T) {
	// Flaky links: a higher SLO target must approve the same or less
	// (Figure 22's monotone trade-off).
	topo := meshTopo(4, 200, 0.08)
	h := []hose.Request{egressHose("Svc", "A", 500, contract.ClassB)}
	frac := func(slo contract.SLO) float64 {
		o := testOpts()
		o.Risk.Scenarios = 150
		o.DefaultSLO = slo
		res, err := Approve(topo, h, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.ApprovalFraction()
	}
	relaxed := frac(0.5)
	strict := frac(0.999)
	if strict > relaxed+1e-9 {
		t.Errorf("stricter SLO approved more: %v > %v", strict, relaxed)
	}
	if relaxed <= 0 {
		t.Error("relaxed SLO approved nothing")
	}
}

func TestApprovePerNPGSLOs(t *testing.T) {
	topo := meshTopo(4, 200, 0.08)
	hoses := []hose.Request{
		egressHose("Strict", "A", 500, contract.ClassB),
		egressHose("Relaxed", "B", 500, contract.ClassB),
	}
	o := testOpts()
	o.Risk.Scenarios = 150
	o.SLOs = map[contract.NPG]contract.SLO{"Strict": 0.9999, "Relaxed": 0.5}
	res, err := Approve(topo, hoses, o)
	if err != nil {
		t.Fatal(err)
	}
	s := res.ByKey[hoses[0].Key()]
	r := res.ByKey[hoses[1].Key()]
	if s.ApprovedRate > r.ApprovedRate {
		t.Errorf("strict SLO (%v) approved more than relaxed (%v)", s.ApprovedRate, r.ApprovedRate)
	}
}

func TestApproveSegmentedBeatsGeneralUnderScarcity(t *testing.T) {
	// With a segmented hose, realizations concentrate within segments whose
	// alphas bound each group, so worst-case realizations are less extreme
	// and the minimum over TMs is at least as high.
	topo := meshTopo(5, 120, 0)
	general := egressHose("S", "A", 400, contract.ClassB)
	segmented := general
	segmented.Segments = []hose.Segment{
		{Targets: []topology.Region{"B", "C"}, Alpha: 0.5},
		{Targets: []topology.Region{"D", "E"}, Alpha: 0.5},
	}
	o := testOpts()
	o.RepresentativeTMs = 12
	resG, err := Approve(topo, []hose.Request{general}, o)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Approve(topo, []hose.Request{segmented}, o)
	if err != nil {
		t.Fatal(err)
	}
	g := resG.Approvals[0].ApprovedRate
	s := resS.Approvals[0].ApprovedRate
	if s+1e-6 < g {
		t.Errorf("segmented approval %v below general %v", s, g)
	}
}

func TestApproveIngressHose(t *testing.T) {
	topo := meshTopo(4, 1000, 0)
	h := hose.Request{NPG: "Sink", Class: contract.ClassB, Region: "D", Direction: contract.Ingress, Rate: 300}
	res, err := Approve(topo, []hose.Request{h}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approvals[0].FullyApproved {
		t.Errorf("ingress hose not approved: %v", res.Approvals[0].ApprovedRate)
	}
	eg, in := res.FractionByDirection()
	if eg != 1 {
		t.Errorf("egress fraction with no egress hoses = %v, want 1", eg)
	}
	if math.Abs(in-1) > 1e-6 {
		t.Errorf("ingress fraction = %v", in)
	}
}

func TestApproveUnknownRegion(t *testing.T) {
	topo := meshTopo(3, 100, 0)
	h := []hose.Request{egressHose("X", "Z", 10, contract.ClassA)}
	if _, err := Approve(topo, h, testOpts()); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestApproveEmpty(t *testing.T) {
	topo := meshTopo(3, 100, 0)
	res, err := Approve(topo, nil, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Approvals) != 0 {
		t.Error("empty input produced approvals")
	}
	if res.ApprovalFraction() != 1 {
		t.Error("empty approval fraction should be 1")
	}
}

func TestApproveZeroRateHose(t *testing.T) {
	topo := meshTopo(3, 100, 0)
	res, err := Approve(topo, []hose.Request{egressHose("Z", "A", 0, contract.ClassA)}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := &res.Approvals[0]
	if !a.FullyApproved || a.Fraction() != 1 {
		t.Errorf("zero-rate hose: approved=%v fully=%v", a.ApprovedRate, a.FullyApproved)
	}
}

func TestNegotiate(t *testing.T) {
	topo := meshTopo(4, 100, 0)
	hoses := []hose.Request{
		egressHose("Big", "A", 900, contract.ClassB),   // cannot fit (A egress 300)
		egressHose("Small", "B", 50, contract.ClassB),  // fits
		egressHose("Small2", "C", 50, contract.ClassB), // fits
	}
	res, err := Approve(topo, hoses, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	cps := Negotiate(res)
	if len(cps) != 1 {
		t.Fatalf("counter-proposals = %d, want 1", len(cps))
	}
	cp := cps[0]
	if cp.Hose.NPG != "Big" {
		t.Errorf("counter-proposal for %s", cp.Hose.NPG)
	}
	if cp.AdmittableRate <= 0 || cp.AdmittableRate >= 900 {
		t.Errorf("admittable = %v", cp.AdmittableRate)
	}
	if math.Abs(cp.Shortfall-(900-cp.AdmittableRate)) > 1e-9 {
		t.Errorf("shortfall = %v", cp.Shortfall)
	}
	// Fully-approved same-class regions B and C are alternatives.
	if len(cp.AlternativeRegions) != 2 {
		t.Errorf("alternatives = %v", cp.AlternativeRegions)
	}
}

func TestNegotiateNothingToDo(t *testing.T) {
	topo := meshTopo(3, 1000, 0)
	res, err := Approve(topo, []hose.Request{egressHose("S", "A", 10, contract.ClassA)}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cps := Negotiate(res); len(cps) != 0 {
		t.Errorf("unexpected counter-proposals: %v", cps)
	}
}

func TestApprovalFraction(t *testing.T) {
	res := &Result{Approvals: []HoseApproval{
		{Request: hose.Request{Rate: 100}, ApprovedRate: 50},
		{Request: hose.Request{Rate: 100}, ApprovedRate: 100},
	}}
	if got := res.ApprovalFraction(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("ApprovalFraction = %v, want 0.75", got)
	}
}

func TestApproveWithPlannedTopology(t *testing.T) {
	// The backbone gets a capacity upgrade halfway through the period:
	// approving against both phases admits at least as much as approving
	// against the weaker phase alone, and no more than the stronger alone.
	small := meshTopo(4, 100, 0.05)
	big := meshTopo(4, 300, 0.05)
	h := []hose.Request{egressHose("Svc", "A", 600, contract.ClassB)}
	o := testOpts()
	o.Risk.Scenarios = 120

	approve := func(base Options) float64 {
		res, err := Approve(small, h, base)
		if err != nil {
			t.Fatal(err)
		}
		return res.Approvals[0].ApprovedRate
	}
	before := approve(o)
	phased := o
	phased.PlannedTopology = big
	phased.ChangeFraction = 0.5
	mid := approve(phased)
	if mid+1e-6 < before {
		t.Errorf("planned upgrade lowered approval: %v < %v", mid, before)
	}
	// Approving directly on the upgraded topology is the upper bound.
	resBig, err := Approve(big, h, o)
	if err != nil {
		t.Fatal(err)
	}
	if mid > resBig.Approvals[0].ApprovedRate+1e-6 {
		t.Errorf("phased approval %v above upgraded-only %v", mid, resBig.Approvals[0].ApprovedRate)
	}
}

func TestApproveJointRealizations(t *testing.T) {
	topo := meshTopo(4, 1000, 0)
	// Balanced egress/ingress hoses for one flow set.
	hoses := []hose.Request{
		egressHose("Svc", "A", 300, contract.ClassB),
		egressHose("Svc", "B", 100, contract.ClassB),
		{NPG: "Svc", Class: contract.ClassB, Region: "C", Direction: contract.Ingress, Rate: 200},
		{NPG: "Svc", Class: contract.ClassB, Region: "D", Direction: contract.Ingress, Rate: 200},
	}
	o := testOpts()
	o.JointRealizations = true
	res, err := Approve(topo, hoses, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Approvals {
		a := &res.Approvals[i]
		if a.ApprovedRate <= 0 {
			t.Errorf("%s approved %v", a.Request.Key(), a.ApprovedRate)
		}
		if a.ApprovedRate > a.Request.Rate+1e-6 {
			t.Errorf("%s approved %v above request %v", a.Request.Key(), a.ApprovedRate, a.Request.Rate)
		}
	}
	// With ample capacity and balanced hoses, approvals approach requests.
	if f := res.ApprovalFraction(); f < 0.75 {
		t.Errorf("joint approval fraction = %v, want >= 0.75", f)
	}
}

func TestApproveJointFallsBackWithoutBothDirections(t *testing.T) {
	// Egress-only flow set: joint mode must fall back to independent
	// sampling rather than fail.
	topo := meshTopo(3, 1000, 0)
	hoses := []hose.Request{egressHose("Only", "A", 100, contract.ClassA)}
	o := testOpts()
	o.JointRealizations = true
	res, err := Approve(topo, hoses, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approvals[0].FullyApproved {
		t.Errorf("fallback approval = %v", res.Approvals[0].ApprovedRate)
	}
}

func TestSortRequestsCanonicalOrder(t *testing.T) {
	// Approve seeds samplers by input index, so arrival order changes the
	// assessment identity; SortRequests is the canonicalization the online
	// admission queue relies on for byte-identical decisions.
	hoses := []hose.Request{
		{NPG: "Web", Class: contract.C2Low, Region: "B", Direction: contract.Egress, Rate: 30},
		{NPG: "Ads", Class: contract.C3Low, Region: "A", Direction: contract.Ingress, Rate: 10},
		{NPG: "Web", Class: contract.C2Low, Region: "B", Direction: contract.Egress, Rate: 20},
		{NPG: "Ads", Class: contract.C2Low, Region: "A", Direction: contract.Egress, Rate: 50},
	}
	SortRequests(hoses)
	for i := 1; i < len(hoses); i++ {
		ki, kj := hoses[i-1].Key(), hoses[i].Key()
		if ki > kj || (ki == kj && hoses[i-1].Rate > hoses[i].Rate) {
			t.Fatalf("not canonical at %d: %s %v then %s %v", i, ki, hoses[i-1].Rate, kj, hoses[i].Rate)
		}
	}
	// Idempotent: sorting a sorted slice changes nothing.
	again := append([]hose.Request(nil), hoses...)
	SortRequests(again)
	for i := range hoses {
		if again[i].Key() != hoses[i].Key() || again[i].Rate != hoses[i].Rate {
			t.Fatalf("sort not idempotent at %d", i)
		}
	}
}
