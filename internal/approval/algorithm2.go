package approval

import (
	"fmt"
	"sort"

	"entitlement/internal/contract"
	"entitlement/internal/flow"
	"entitlement/internal/hose"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

// This file implements Algorithm 2's PIPE_APPROVAL routine with the paper's
// explicit per-class loop: "it starts from Pipe requests of the most premium
// class (c1_low) and works on one class at a time until reaching the least
// premium one (c4_high)", carrying previously approved classes as background
// demand (the MERGE_REQS accumulation) and reading each pipe's availability
// curve at the SLO target.
//
// Approve (approval.go) reaches the same outcome by letting the allocator
// enforce class priority inside a single assessment, which is cheaper; this
// routine exists for fidelity to the published pseudocode, for the strict
// batch rule ("only when 100% of the flow meets SLO, the batch of flows is
// approved"), and as a cross-check in tests.

// PipeDecision is one pipe's Algorithm 2 outcome.
type PipeDecision struct {
	Pipe hose.PipeRequest
	// ApprovedRate is the volume guaranteed at the NPG's SLO (0 when the
	// strict batch rule rejected the class batch).
	ApprovedRate float64
	// MetSLO reports whether the full requested rate met the SLO.
	MetSLO bool
}

// PipeApprovalOptions configures the explicit routine.
type PipeApprovalOptions struct {
	// SLOs maps NPG → availability target; DefaultSLO covers the rest.
	SLOs       map[contract.NPG]contract.SLO
	DefaultSLO contract.SLO
	Risk       risk.Options
	// StrictBatch applies the literal batch rule: if any pipe of a class
	// batch fails its SLO at the full requested rate, the whole batch is
	// rejected. When false (default), each pipe is approved at its
	// guaranteed volume — the behavior the rest of the pipeline uses.
	StrictBatch bool
}

func (o PipeApprovalOptions) slo(npg contract.NPG) float64 {
	if s, ok := o.SLOs[npg]; ok {
		return float64(s)
	}
	if o.DefaultSLO > 0 {
		return float64(o.DefaultSLO)
	}
	return 0.99
}

// PipeApproval runs Algorithm 2 lines 12–24 over one set of pipe requests.
// The result preserves the input order.
func PipeApproval(topo *topology.Topology, pipes []hose.PipeRequest, opts PipeApprovalOptions) ([]PipeDecision, error) {
	decisions := make([]PipeDecision, len(pipes))
	for i, p := range pipes {
		decisions[i] = PipeDecision{Pipe: p}
	}
	// Group pipe indexes per class (line 16's per-class iteration, most
	// premium first).
	byClass := make(map[contract.Class][]int)
	for i, p := range pipes {
		byClass[p.Class] = append(byClass[p.Class], i)
	}
	classes := make([]contract.Class, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	// tmp_requests: approved higher-priority demand carried as background.
	var background []flow.Demand
	for _, cos := range classes {
		idxs := byClass[cos]
		// COS_PIPES: this class's pipes plus the background context.
		demands := make([]flow.Demand, 0, len(background)+len(idxs))
		demands = append(demands, background...)
		keyOf := func(i int) string { return fmt.Sprintf("alg2/%d/%s", i, pipes[i].Key()) }
		for _, i := range idxs {
			p := pipes[i]
			demands = append(demands, flow.Demand{
				Key: keyOf(i), Src: p.Src, Dst: p.Dst, Rate: p.Rate, Class: int(p.Class),
			})
		}
		// ASSESS_RISK: availability curves under failures.
		res, err := risk.Assess(topo, demands, opts.Risk)
		if err != nil {
			return nil, fmt.Errorf("approval: class %v risk assessment: %w", cos, err)
		}
		// tmp_approvals: read each curve at the SLO target.
		batchOK := true
		for _, i := range idxs {
			slo := opts.slo(pipes[i].NPG)
			guaranteed := res.GuaranteedRate(keyOf(i), slo)
			if guaranteed > pipes[i].Rate {
				guaranteed = pipes[i].Rate
			}
			decisions[i].ApprovedRate = guaranteed
			decisions[i].MetSLO = guaranteed >= pipes[i].Rate-1e-9
			if !decisions[i].MetSLO {
				batchOK = false
			}
		}
		if opts.StrictBatch && !batchOK {
			// "If any flow fails, the batch is rejected."
			for _, i := range idxs {
				decisions[i].ApprovedRate = 0
			}
			continue // rejected batches contribute no background demand
		}
		// MERGE_REQS: the approved volumes become background for the next
		// (less premium) class.
		for _, i := range idxs {
			if decisions[i].ApprovedRate <= 0 {
				continue
			}
			p := pipes[i]
			background = append(background, flow.Demand{
				Key: "bg/" + keyOf(i), Src: p.Src, Dst: p.Dst,
				Rate: decisions[i].ApprovedRate, Class: int(p.Class),
			})
		}
	}
	return decisions, nil
}

// HoseApprovalFromPipes aggregates pipe decisions back into per-hose
// approvals (Algorithm 2 lines 7–9: sum pipe approvals per hose; callers
// with several realizations take the min across them).
func HoseApprovalFromPipes(decisions []PipeDecision) map[string]float64 {
	out := make(map[string]float64)
	for _, d := range decisions {
		egress := hose.Request{
			NPG: d.Pipe.NPG, Class: d.Pipe.Class,
			Region: d.Pipe.Src, Direction: contract.Egress,
		}
		ingress := hose.Request{
			NPG: d.Pipe.NPG, Class: d.Pipe.Class,
			Region: d.Pipe.Dst, Direction: contract.Ingress,
		}
		out[egress.Key()] += d.ApprovedRate
		out[ingress.Key()] += d.ApprovedRate
	}
	return out
}
