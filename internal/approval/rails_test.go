package approval

import (
	"math"
	"testing"

	"entitlement/internal/contract"
	"entitlement/internal/hose"
)

func searchOptsForTest() Options {
	o := testOpts()
	o.Negotiation = NegotiateOptions{Enabled: true}
	return o
}

// TestNegotiateSearchDisabledIsPlain: with the search off, NegotiateSearch is
// exactly Negotiate — same proposals, no counter-offers, no evals.
func TestNegotiateSearchDisabledIsPlain(t *testing.T) {
	topo := meshTopo(4, 100, 0)
	hoses := []hose.Request{
		egressHose("Big", "A", 900, contract.ClassB),
		egressHose("Small", "B", 50, contract.ClassB),
	}
	res, err := Approve(topo, hoses, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := NegotiateSearch(topo, hoses, res, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := Negotiate(res)
	if len(got) != len(want) {
		t.Fatalf("proposals = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].CounterOffer != nil || got[i].Evals != 0 {
			t.Errorf("disabled search produced counter-offer %+v (evals %d)",
				got[i].CounterOffer, got[i].Evals)
		}
		if got[i].AdmittableRate != want[i].AdmittableRate {
			t.Errorf("admittable %v != plain %v", got[i].AdmittableRate, want[i].AdmittableRate)
		}
	}
}

// TestNegotiateSearchClassShift: two same-class hoses splitting a 300-unit
// egress region get ~150 each; the search discovers that shifting one hose a
// class up frees its full 200 — and verifies the shift against the whole
// batch before offering it.
func TestNegotiateSearchClassShift(t *testing.T) {
	topo := meshTopo(4, 100, 0)
	hoses := []hose.Request{
		egressHose("X", "A", 200, contract.C2Low),
		egressHose("Y", "A", 200, contract.C2Low),
	}
	opts := searchOptsForTest()
	res, err := Approve(topo, hoses, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Approvals {
		if res.Approvals[i].FullyApproved {
			t.Fatalf("hose %d unexpectedly fully approved (no competition?)", i)
		}
	}
	cps, err := NegotiateSearch(topo, hoses, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 {
		t.Fatalf("counter-proposals = %d, want 2", len(cps))
	}
	for i, cp := range cps {
		if cp.CounterOffer == nil {
			t.Fatalf("proposal %d: no counter-offer found", i)
		}
		// The nearest higher-priority shift at the full rate wins first.
		if cp.CounterOffer.Class != contract.C1High {
			t.Errorf("proposal %d: offered class %v, want %v (one step up)",
				i, cp.CounterOffer.Class, contract.C1High)
		}
		if math.Abs(cp.CounterOffer.Rate-200) > 1e-9 {
			t.Errorf("proposal %d: offered rate %v, want the full 200", i, cp.CounterOffer.Rate)
		}
		if cp.Evals < 1 || cp.Evals > 8 {
			t.Errorf("proposal %d: evals = %d, want within (0, MaxEvals]", i, cp.Evals)
		}
	}
}

// TestNegotiateSearchNoDegradation: a shift that would fully approve the
// under-approved hose by stealing capacity from a previously fully-approved
// premium hose is rejected; capacity-bound shrinks cannot beat the admittable
// volume either, so no counter-offer survives.
func TestNegotiateSearchNoDegradation(t *testing.T) {
	topo := meshTopo(4, 100, 0)
	hoses := []hose.Request{
		egressHose("Premium", "A", 200, contract.C1High),
		egressHose("X", "A", 200, contract.C2Low),
	}
	opts := searchOptsForTest()
	res, err := Approve(topo, hoses, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approvals[0].FullyApproved {
		t.Fatal("premium hose not fully approved")
	}
	if res.Approvals[1].FullyApproved {
		t.Fatal("competing hose unexpectedly fully approved")
	}
	cps, err := NegotiateSearch(topo, hoses, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 {
		t.Fatalf("counter-proposals = %d, want 1", len(cps))
	}
	if cps[0].CounterOffer != nil {
		t.Errorf("search funded a counter-offer %+v by degrading the premium grant",
			cps[0].CounterOffer)
	}
	// Confirm the degradation is real: the shift the search rejected would
	// indeed have knocked out the premium hose.
	shifted := append([]hose.Request(nil), hoses...)
	shifted[1].Class = contract.C1Low
	r2, err := Approve(topo, shifted, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Approvals[1].FullyApproved || r2.Approvals[0].FullyApproved {
		t.Skip("scenario no longer exhibits the degradation trade-off")
	}
}

// TestNegotiateSearchCapacityBound: a lone oversized ask has no competition
// to shift around, and the allocator is monotone (asking less never unlocks
// more than the admittable volume), so the search must conclude plain
// Negotiate was right — no offer, nothing fabricated.
func TestNegotiateSearchCapacityBound(t *testing.T) {
	topo := meshTopo(4, 100, 0)
	hoses := []hose.Request{egressHose("Big", "A", 900, contract.ClassB)}
	opts := searchOptsForTest()
	res, err := Approve(topo, hoses, opts)
	if err != nil {
		t.Fatal(err)
	}
	cps, err := NegotiateSearch(topo, hoses, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 {
		t.Fatalf("counter-proposals = %d, want 1", len(cps))
	}
	if cps[0].CounterOffer != nil {
		t.Errorf("capacity-bound ask got counter-offer %+v (rate %v vs admittable %v)",
			cps[0].CounterOffer, cps[0].CounterOffer.Rate, cps[0].AdmittableRate)
	}
}

// TestNegotiateSearchDeterministic: the search is a fixed-order enumeration
// of seeded re-approvals, so identical inputs yield identical offers.
func TestNegotiateSearchDeterministic(t *testing.T) {
	topo := meshTopo(4, 100, 0)
	hoses := []hose.Request{
		egressHose("X", "A", 200, contract.C2Low),
		egressHose("Y", "A", 200, contract.C2Low),
		egressHose("Big", "B", 700, contract.ClassB),
	}
	opts := searchOptsForTest()
	res, err := Approve(topo, hoses, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NegotiateSearch(topo, hoses, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NegotiateSearch(topo, hoses, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("proposal counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Evals != b[i].Evals {
			t.Errorf("proposal %d: evals %d vs %d", i, a[i].Evals, b[i].Evals)
		}
		ca, cb := a[i].CounterOffer, b[i].CounterOffer
		if (ca == nil) != (cb == nil) {
			t.Fatalf("proposal %d: offer presence differs", i)
		}
		if ca != nil && (ca.Class != cb.Class || ca.Rate != cb.Rate) {
			t.Errorf("proposal %d: offer %+v vs %+v", i, *ca, *cb)
		}
	}
}

// TestNegotiateSearchFullBatch: nothing to negotiate means no proposals even
// with the search enabled.
func TestNegotiateSearchFullBatch(t *testing.T) {
	topo := meshTopo(3, 1000, 0)
	hoses := []hose.Request{egressHose("S", "A", 10, contract.ClassA)}
	opts := searchOptsForTest()
	res, err := Approve(topo, hoses, opts)
	if err != nil {
		t.Fatal(err)
	}
	cps, err := NegotiateSearch(topo, hoses, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 0 {
		t.Errorf("unexpected proposals: %v", cps)
	}
}
