package approval

import (
	"math"
	"testing"

	"entitlement/internal/contract"
	"entitlement/internal/hose"
	"entitlement/internal/risk"
)

func alg2Opts() PipeApprovalOptions {
	return PipeApprovalOptions{
		DefaultSLO: 0.95,
		Risk:       risk.Options{Scenarios: 40, Seed: 3},
	}
}

func TestPipeApprovalSimple(t *testing.T) {
	topo := meshTopo(3, 1000, 0)
	pipes := []hose.PipeRequest{
		{NPG: "Ads", Class: contract.ClassA, Src: "A", Dst: "B", Rate: 300},
	}
	dec, err := PipeApproval(topo, pipes, alg2Opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || !dec[0].MetSLO || math.Abs(dec[0].ApprovedRate-300) > 1e-6 {
		t.Errorf("decision = %+v", dec)
	}
}

func TestPipeApprovalClassPriority(t *testing.T) {
	// One 100-capacity direct link A->B (mesh of 3 with cap 100 gives two
	// paths: direct 100 + via C 100 = 200 total). Premium demand 200 takes
	// everything; the low class gets nothing.
	topo := meshTopo(3, 100, 0)
	pipes := []hose.PipeRequest{
		{NPG: "Low", Class: contract.C4High, Src: "A", Dst: "B", Rate: 200},
		{NPG: "High", Class: contract.C1Low, Src: "A", Dst: "B", Rate: 200},
	}
	dec, err := PipeApproval(topo, pipes, alg2Opts())
	if err != nil {
		t.Fatal(err)
	}
	var high, low *PipeDecision
	for i := range dec {
		if dec[i].Pipe.NPG == "High" {
			high = &dec[i]
		} else {
			low = &dec[i]
		}
	}
	if math.Abs(high.ApprovedRate-200) > 1e-6 {
		t.Errorf("premium approved %v, want 200", high.ApprovedRate)
	}
	if low.ApprovedRate > 1e-6 {
		t.Errorf("low class approved %v despite exhausted capacity", low.ApprovedRate)
	}
}

func TestPipeApprovalHigherClassUnaffectedByLower(t *testing.T) {
	topo := meshTopo(4, 200, 0.05)
	premium := hose.PipeRequest{NPG: "P", Class: contract.C1Low, Src: "A", Dst: "B", Rate: 150}
	noise := []hose.PipeRequest{
		{NPG: "N1", Class: contract.C3Low, Src: "A", Dst: "C", Rate: 300},
		{NPG: "N2", Class: contract.C4Low, Src: "B", Dst: "D", Rate: 300},
	}
	alone, err := PipeApproval(topo, []hose.PipeRequest{premium}, alg2Opts())
	if err != nil {
		t.Fatal(err)
	}
	together, err := PipeApproval(topo, append([]hose.PipeRequest{premium}, noise...), alg2Opts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alone[0].ApprovedRate-together[0].ApprovedRate) > 1e-6 {
		t.Errorf("premium approval changed by lower classes: %v vs %v",
			alone[0].ApprovedRate, together[0].ApprovedRate)
	}
}

func TestPipeApprovalStrictBatch(t *testing.T) {
	// Two same-class pipes; one cannot be satisfied. Strict batching
	// rejects both ("if any flow fails, the batch is rejected").
	topo := meshTopo(3, 100, 0)
	pipes := []hose.PipeRequest{
		{NPG: "S", Class: contract.ClassB, Src: "A", Dst: "B", Rate: 50},
		{NPG: "S", Class: contract.ClassB, Src: "A", Dst: "C", Rate: 500}, // infeasible
	}
	strict := alg2Opts()
	strict.StrictBatch = true
	dec, err := PipeApproval(topo, pipes, strict)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i].ApprovedRate != 0 {
			t.Errorf("strict batch pipe %d approved %v, want 0", i, dec[i].ApprovedRate)
		}
	}
	// Without strict batching the feasible pipe is approved.
	loose, err := PipeApproval(topo, pipes, alg2Opts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loose[0].ApprovedRate-50) > 1e-6 {
		t.Errorf("loose pipe 0 approved %v, want 50", loose[0].ApprovedRate)
	}
	if loose[1].MetSLO {
		t.Error("infeasible pipe met SLO")
	}
}

func TestPipeApprovalAgainstApprove(t *testing.T) {
	// The explicit Algorithm 2 loop and the allocator-fused Approve must
	// agree on a simple scenario: one hose, full capacity.
	topo := meshTopo(4, 1000, 0)
	h := egressHose("Svc", "A", 600, contract.ClassB)
	res, err := Approve(topo, []hose.Request{h}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Same demand expressed as explicit pipes (uniform realization).
	pipes := []hose.PipeRequest{
		{NPG: "Svc", Class: contract.ClassB, Src: "A", Dst: "B", Rate: 200},
		{NPG: "Svc", Class: contract.ClassB, Src: "A", Dst: "C", Rate: 200},
		{NPG: "Svc", Class: contract.ClassB, Src: "A", Dst: "D", Rate: 200},
	}
	dec, err := PipeApproval(topo, pipes, alg2Opts())
	if err != nil {
		t.Fatal(err)
	}
	agg := HoseApprovalFromPipes(dec)
	got := agg[h.Key()]
	want := res.Approvals[0].ApprovedRate
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Algorithm 2 hose approval %v != Approve %v", got, want)
	}
}

func TestHoseApprovalFromPipes(t *testing.T) {
	dec := []PipeDecision{
		{Pipe: hose.PipeRequest{NPG: "S", Class: contract.ClassA, Src: "A", Dst: "B"}, ApprovedRate: 100},
		{Pipe: hose.PipeRequest{NPG: "S", Class: contract.ClassA, Src: "A", Dst: "C"}, ApprovedRate: 50},
	}
	agg := HoseApprovalFromPipes(dec)
	eg := hose.Request{NPG: "S", Class: contract.ClassA, Region: "A", Direction: contract.Egress}
	if agg[eg.Key()] != 150 {
		t.Errorf("egress aggregate = %v, want 150", agg[eg.Key()])
	}
	inB := hose.Request{NPG: "S", Class: contract.ClassA, Region: "B", Direction: contract.Ingress}
	if agg[inB.Key()] != 100 {
		t.Errorf("ingress B = %v", agg[inB.Key()])
	}
}
