package forecast

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"entitlement/internal/stats"
	"entitlement/internal/timeseries"
	"entitlement/internal/trace"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func dailySeries(vals []float64) *timeseries.Series {
	return timeseries.New(t0, 24*time.Hour, vals)
}

func TestFitProphetRecoverLinearTrend(t *testing.T) {
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 100 + 2*float64(i)
	}
	m, err := FitProphet(dailySeries(vals), ProphetOptions{WeeklyOrder: 1, Changepoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	// In-sample fit is tight.
	fitted := m.Fitted()
	smape, _ := stats.SMAPE(vals, fitted.Values)
	if smape > 0.02 {
		t.Errorf("in-sample sMAPE = %v", smape)
	}
	// Extrapolation continues the trend.
	fc := m.Forecast(30)
	want := 100 + 2*float64(149)
	if math.Abs(fc.Values[29]-want)/want > 0.1 {
		t.Errorf("forecast day 150 = %v, want ~%v", fc.Values[29], want)
	}
	if !fc.Start.Equal(t0.Add(120 * 24 * time.Hour)) {
		t.Errorf("forecast start = %v", fc.Start)
	}
}

func TestFitProphetWeeklySeasonality(t *testing.T) {
	vals := make([]float64, 140)
	for i := range vals {
		vals[i] = 1000 + 200*math.Sin(2*math.Pi*float64(i)/7)
	}
	m, err := FitProphet(dailySeries(vals), ProphetOptions{WeeklyOrder: 2, Changepoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(14)
	for i := 0; i < 14; i++ {
		want := 1000 + 200*math.Sin(2*math.Pi*float64(140+i)/7)
		if math.Abs(fc.Values[i]-want) > 60 {
			t.Errorf("day %d forecast = %v, want ~%v", i, fc.Values[i], want)
		}
	}
}

func TestFitProphetChangepoint(t *testing.T) {
	// Slope changes at day 60: flat then growing.
	vals := make([]float64, 150)
	for i := range vals {
		if i < 60 {
			vals[i] = 500
		} else {
			vals[i] = 500 + 5*float64(i-60)
		}
	}
	m, err := FitProphet(dailySeries(vals), ProphetOptions{Changepoints: 10, WeeklyOrder: 1})
	if err != nil {
		t.Fatal(err)
	}
	fitted := m.Fitted()
	smape, _ := stats.SMAPE(vals[1:], fitted.Values[1:])
	if smape > 0.05 {
		t.Errorf("changepoint fit sMAPE = %v", smape)
	}
	// Forecast keeps growing.
	fc := m.Forecast(10)
	if fc.Values[9] <= vals[len(vals)-1] {
		t.Errorf("forecast %v did not continue growth past %v", fc.Values[9], vals[len(vals)-1])
	}
}

func TestFitProphetHoliday(t *testing.T) {
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 100
		if i%30 == 10 { // recurring spike days 10, 40, 70, 100
			vals[i] = 180
		}
	}
	m, err := FitProphet(dailySeries(vals), ProphetOptions{
		Changepoints: 2, WeeklyOrder: 1,
		Holidays: []int{10, 40, 70, 100, 130},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Day 130 (future holiday) should forecast high.
	fc := m.Forecast(20)
	hol := fc.Values[10] // index 130-120
	normal := fc.Values[5]
	if hol-normal < 40 {
		t.Errorf("holiday effect = %v, want ~80", hol-normal)
	}
}

func TestFitProphetErrors(t *testing.T) {
	short := dailySeries([]float64{1, 2, 3})
	if _, err := FitProphet(short, ProphetOptions{}); err == nil {
		t.Error("too-short series accepted")
	}
	subDaily := timeseries.New(t0, time.Minute, make([]float64, 100))
	if _, err := FitProphet(subDaily, ProphetOptions{}); err == nil {
		t.Error("sub-hourly series accepted")
	}
}

func TestProphetTrendComponent(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 50 + float64(i) + 20*math.Sin(2*math.Pi*float64(i)/7)
	}
	m, err := FitProphet(dailySeries(vals), ProphetOptions{WeeklyOrder: 3, Changepoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Trend excludes the seasonal swing: successive trend values move by
	// ~1/day without the ±20 oscillation.
	for i := 10; i < 90; i++ {
		d := m.Trend(i+1) - m.Trend(i)
		if d < 0 || d > 3 {
			t.Fatalf("trend increment at %d = %v", i, d)
		}
	}
}

func TestPinballLoss(t *testing.T) {
	if got := PinballLoss(10, 8, 0.9); math.Abs(got-1.8) > 1e-12 {
		t.Errorf("under-prediction loss = %v, want 1.8", got)
	}
	if got := PinballLoss(8, 10, 0.9); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("over-prediction loss = %v, want 0.2", got)
	}
	if got := PinballLoss(5, 5, 0.5); got != 0 {
		t.Errorf("exact loss = %v", got)
	}
}

func TestGBDTFitsStepFunction(t *testing.T) {
	// y = 10 when x < 0.5 else 50.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := rng.Float64()
		x = append(x, []float64{v})
		if v < 0.5 {
			y = append(y, 10)
		} else {
			y = append(y, 50)
		}
	}
	g, err := FitGBDT(x, y, GBDTOptions{Trees: 50})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() == 0 {
		t.Fatal("no trees fitted")
	}
	if p := g.Predict([]float64{0.2}); math.Abs(p-10) > 5 {
		t.Errorf("Predict(0.2) = %v, want ~10", p)
	}
	if p := g.Predict([]float64{0.8}); math.Abs(p-50) > 5 {
		t.Errorf("Predict(0.8) = %v, want ~50", p)
	}
}

func TestGBDTQuantileBehavior(t *testing.T) {
	// Noise-free feature with asymmetric-noise target: the 0.9-quantile
	// model must predict above the 0.5-quantile model.
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		x = append(x, []float64{1})
		y = append(y, 100+rng.Float64()*50) // uniform noise [0,50]
	}
	p50, err := FitGBDT(x, y, GBDTOptions{Trees: 30, Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p90, err := FitGBDT(x, y, GBDTOptions{Trees: 30, Quantile: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	lo := p50.Predict([]float64{1})
	hi := p90.Predict([]float64{1})
	if hi <= lo {
		t.Errorf("p90 prediction %v not above p50 %v", hi, lo)
	}
	if math.Abs(lo-125) > 10 {
		t.Errorf("p50 prediction = %v, want ~125", lo)
	}
	if math.Abs(hi-145) > 10 {
		t.Errorf("p90 prediction = %v, want ~145", hi)
	}
}

func TestGBDTValidation(t *testing.T) {
	if _, err := FitGBDT(nil, nil, GBDTOptions{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitGBDT([][]float64{{1}}, []float64{1, 2}, GBDTOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitGBDT([][]float64{{1}, {1, 2}}, []float64{1, 2}, GBDTOptions{}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FitGBDT([][]float64{{1}, {2}}, []float64{1, 2}, GBDTOptions{Quantile: 1.5}); err == nil {
		t.Error("quantile out of range accepted")
	}
}

func TestGBDTPredictWidthPanics(t *testing.T) {
	g, err := FitGBDT([][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}, []float64{1, 2, 3, 4, 5, 6, 7, 8}, GBDTOptions{Trees: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong width did not panic")
		}
	}()
	g.Predict([]float64{1, 2})
}

func TestInorganicDataset(t *testing.T) {
	traffic := []float64{10, 20, 30, 40, 50, 60}
	regs := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	x, y, err := InorganicDataset(traffic, regs)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 3 || len(y) != 3 {
		t.Fatalf("samples = %d, want 3", len(x))
	}
	// First sample predicts month 3 (40) from months 2,1,0.
	if y[0] != 40 {
		t.Errorf("y[0] = %v, want 40", y[0])
	}
	want := []float64{30, 20, 10, 3, 2, 1}
	for i, v := range want {
		if x[0][i] != v {
			t.Errorf("x[0][%d] = %v, want %v", i, x[0][i], v)
		}
	}
	if _, _, err := InorganicDataset([]float64{1, 2}, [][]float64{{1}, {2}}); err == nil {
		t.Error("short history accepted")
	}
	if _, _, err := InorganicDataset([]float64{1, 2, 3, 4}, [][]float64{{1}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestGBDTForecastMonthsRollsForward(t *testing.T) {
	// Traffic follows its regressor (server count): next month ≈ 10×servers.
	months := 24
	traffic := make([]float64, months)
	regs := make([][]float64, months)
	for i := range traffic {
		servers := float64(5 + i)
		regs[i] = []float64{servers}
		traffic[i] = 10 * servers
	}
	x, y, err := InorganicDataset(traffic, regs)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FitGBDT(x, y, GBDTOptions{Trees: 80, Tree: TreeOptions{MaxDepth: 3, MinLeaf: 2}})
	if err != nil {
		t.Fatal(err)
	}
	future := [][]float64{{29}, {30}, {31}}
	out, err := g.ForecastMonths(traffic, regs, future)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("forecast months = %d", len(out))
	}
	for i, v := range out {
		if v <= 0 {
			t.Errorf("month %d forecast %v", i, v)
		}
	}
	// Forecasts stay in a sane neighbourhood of the trend (tree models
	// cannot extrapolate beyond the max leaf, so allow the top of range).
	if out[0] < traffic[months-4] {
		t.Errorf("first forecast %v below recent history %v", out[0], traffic[months-4])
	}
}

func TestDailySLIKinds(t *testing.T) {
	raw := trace.Diurnal(trace.DiurnalOptions{
		Base: 100, Amplitude: 50, Noise: 0, PeakHour: 12,
		Days: 4, Step: time.Hour, Seed: 1,
	})
	for _, kind := range []SLIKind{SLIMaxAvg6h, SLIDailyP99, SLIDailyMean} {
		s, err := DailySLI(raw, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s.Len() != 4 {
			t.Errorf("%v: days = %d", kind, s.Len())
		}
	}
	// p99 >= max-avg-6h >= mean for a diurnal pattern.
	p99, _ := DailySLI(raw, SLIDailyP99)
	avg6, _ := DailySLI(raw, SLIMaxAvg6h)
	mean, _ := DailySLI(raw, SLIDailyMean)
	for i := 0; i < 4; i++ {
		if !(p99.Values[i] >= avg6.Values[i]-1e-9 && avg6.Values[i] >= mean.Values[i]-1e-9) {
			t.Errorf("day %d ordering violated: p99=%v avg6=%v mean=%v",
				i, p99.Values[i], avg6.Values[i], mean.Values[i])
		}
	}
	if _, err := DailySLI(raw, SLIKind(99)); err == nil {
		t.Error("unknown kind accepted")
	}
	if SLIMaxAvg6h.String() != "max-avg-6h" || SLIDailyP99.String() != "daily-p99" || SLIDailyMean.String() != "daily-mean" {
		t.Error("SLIKind strings wrong")
	}
}

func TestForecastQuarter(t *testing.T) {
	// 180 days of growing daily SLI.
	vals := make([]float64, 180)
	for i := range vals {
		vals[i] = 1000 + 3*float64(i)
	}
	res, err := ForecastQuarter(dailySeries(vals), ProphetOptions{Changepoints: 4, WeeklyOrder: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Daily.Len() != QuarterDays {
		t.Errorf("daily forecast = %d days", res.Daily.Len())
	}
	// Monthly demands grow month over month.
	if !(res.Monthly[0] < res.Monthly[1] && res.Monthly[1] < res.Monthly[2]) {
		t.Errorf("monthly not increasing: %v", res.Monthly)
	}
	if res.Quarter != res.Monthly[2] {
		t.Errorf("quarter = %v, want max month %v", res.Quarter, res.Monthly[2])
	}
	// Quarter demand above last observed value for a growing service.
	if res.Quarter <= vals[len(vals)-1] {
		t.Errorf("quarter %v not above last actual %v", res.Quarter, vals[len(vals)-1])
	}
	// Non-daily input rejected.
	hourly := timeseries.New(t0, time.Hour, make([]float64, 100))
	if _, err := ForecastQuarter(hourly, ProphetOptions{}); err == nil {
		t.Error("hourly series accepted")
	}
}

func TestAdjustInorganic(t *testing.T) {
	r := &Result{Monthly: [3]float64{100, 110, 120}, Quarter: 120}
	// Planned region turn-up makes month 2 jump.
	r.AdjustInorganic([]float64{90, 200, 100})
	if r.Monthly[0] != 100 {
		t.Errorf("month 0 lowered to %v", r.Monthly[0])
	}
	if r.Monthly[1] != 200 {
		t.Errorf("month 1 = %v, want 200", r.Monthly[1])
	}
	if r.Quarter != 200 {
		t.Errorf("quarter = %v, want 200", r.Quarter)
	}
}

func TestEvaluateAccuracy(t *testing.T) {
	raw := trace.TrendSeasonal(trace.GrowthOptions{
		Base: 10e9, DailyGrowth: 20e6, WeeklyAmp: 0.5e9, DiurnalAmp: 2e9,
		Noise: 0.03, Days: 150, Step: time.Hour, Seed: 4,
	})
	acc, err := EvaluateAccuracy(raw, 30, ProphetOptions{Changepoints: 4, WeeklyOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Majority of sMAPE below 0.4 per §7.1 — this clean synthetic series
	// should score well under that.
	for name, v := range map[string]float64{"p50": acc.P50, "p75": acc.P75, "p90": acc.P90} {
		if v < 0 || v > 0.4 {
			t.Errorf("%s sMAPE = %v, want [0, 0.4]", name, v)
		}
	}
}

func TestEvaluateAccuracyErrors(t *testing.T) {
	raw := trace.Diurnal(trace.DiurnalOptions{Base: 1, Amplitude: 0, Days: 40, Step: time.Hour, Seed: 1})
	if _, err := EvaluateAccuracy(raw, 0, ProphetOptions{}); err == nil {
		t.Error("zero testDays accepted")
	}
	if _, err := EvaluateAccuracy(raw, 400, ProphetOptions{}); err == nil {
		t.Error("testDays beyond history accepted")
	}
}

func TestBacktest(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 1000 + 3*float64(i) + 50*math.Sin(2*math.Pi*float64(i)/7)
	}
	scores, err := Backtest(dailySeries(vals), 4, 14, ProphetOptions{Changepoints: 3, WeeklyOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("folds = %d", len(scores))
	}
	for i, s := range scores {
		if s < 0 || s > 0.2 {
			t.Errorf("fold %d sMAPE = %v on a clean series", i, s)
		}
	}
}

func TestBacktestValidation(t *testing.T) {
	s := dailySeries(make([]float64, 50))
	if _, err := Backtest(s, 0, 10, ProphetOptions{}); err == nil {
		t.Error("zero folds accepted")
	}
	if _, err := Backtest(s, 10, 30, ProphetOptions{}); err == nil {
		t.Error("oversized folds accepted")
	}
}

func TestClampGrowth(t *testing.T) {
	r := &Result{Monthly: [3]float64{50, 400, 90}, Quarter: 400}
	// Last actual 100; owner expects between 0% and 10% monthly growth.
	r.ClampGrowth(100, 0, 0.10)
	// Month 1: [100, 110] — 50 clamped up to 100.
	if r.Monthly[0] != 100 {
		t.Errorf("month 1 = %v, want 100", r.Monthly[0])
	}
	// Month 2: [100, 121] — 400 clamped down to 121.
	if math.Abs(r.Monthly[1]-121) > 1e-9 {
		t.Errorf("month 2 = %v, want 121", r.Monthly[1])
	}
	// Month 3: [100, 133.1] — 90 clamped up to 100.
	if r.Monthly[2] != 100 {
		t.Errorf("month 3 = %v, want 100", r.Monthly[2])
	}
	if math.Abs(r.Quarter-121) > 1e-9 {
		t.Errorf("quarter = %v, want 121", r.Quarter)
	}
}

func TestClampGrowthNoOpOnBadInputs(t *testing.T) {
	r := &Result{Monthly: [3]float64{1, 2, 3}, Quarter: 3}
	r.ClampGrowth(0, 0, 1) // zero lastActual: untouched
	if r.Monthly != [3]float64{1, 2, 3} {
		t.Errorf("clamp with zero actual changed result: %v", r.Monthly)
	}
	r.ClampGrowth(10, 0.5, 0.1) // min > max: untouched
	if r.Monthly != [3]float64{1, 2, 3} {
		t.Errorf("inverted bounds changed result: %v", r.Monthly)
	}
}
