package forecast

import (
	"errors"
	"fmt"
	"time"

	"entitlement/internal/stats"
	"entitlement/internal/timeseries"
)

// SLIKind selects how raw traffic reduces to the daily SLI input — "different
// services need different types of daily data to feed into the model, e.g.
// daily max average of 6 hours for storage services, and daily p99 for ads"
// (§4.1).
type SLIKind int

// SLI reductions.
const (
	// SLIMaxAvg6h: per day, the maximum 6-hour rolling average (storage).
	SLIMaxAvg6h SLIKind = iota
	// SLIDailyP99: per day, the 99th percentile sample (ads).
	SLIDailyP99
	// SLIDailyMean: per day, the mean (generic services).
	SLIDailyMean
)

// String names the reduction.
func (k SLIKind) String() string {
	switch k {
	case SLIMaxAvg6h:
		return "max-avg-6h"
	case SLIDailyP99:
		return "daily-p99"
	default:
		return "daily-mean"
	}
}

// DailySLI reduces a raw (sub-daily) traffic series to one SLI sample per day.
func DailySLI(s *timeseries.Series, kind SLIKind) (*timeseries.Series, error) {
	switch kind {
	case SLIMaxAvg6h:
		return s.DailyMaxOfRollingMean(6 * time.Hour)
	case SLIDailyP99:
		return s.DailyQuantile(0.99)
	case SLIDailyMean:
		return s.Resample(24*time.Hour, stats.Mean)
	default:
		return nil, fmt.Errorf("forecast: unknown SLI kind %d", int(kind))
	}
}

// QuarterDays is the entitlement period length: "the SLI metric is defined
// as the bandwidth usage of three consecutive months" (§4.1).
const QuarterDays = 90

// Result is a quarterly demand forecast.
type Result struct {
	// Daily is the 90-day daily SLI forecast.
	Daily *timeseries.Series
	// Monthly holds the per-month demand: the p95 of each month's daily
	// forecasts (a peak-oriented summary that tolerates outliers).
	Monthly [3]float64
	// Quarter is the demand to request for the whole period: the maximum
	// monthly value (the entitlement must cover the peak month).
	Quarter float64
}

// ForecastQuarter fits the organic model to the daily SLI history and
// forecasts the next quarter (§4.1: "running this model for the next three
// months generates the final forecast demand for the next quarter").
func ForecastQuarter(dailySLI *timeseries.Series, opts ProphetOptions) (*Result, error) {
	if dailySLI.Step != 24*time.Hour {
		return nil, errors.New("forecast: ForecastQuarter expects a daily series")
	}
	m, err := FitProphet(dailySLI, opts)
	if err != nil {
		return nil, err
	}
	daily := m.Forecast(QuarterDays)
	res := &Result{Daily: daily}
	for month := 0; month < 3; month++ {
		lo, hi := month*30, (month+1)*30
		res.Monthly[month] = stats.Quantile(daily.Values[lo:hi], 0.95)
		if res.Monthly[month] > res.Quarter {
			res.Quarter = res.Monthly[month]
		}
	}
	return res, nil
}

// AdjustInorganic applies an inorganic-change model's monthly forecasts on
// top of the organic result: where the tree model (fed with planned changes)
// predicts a higher month than the organic model, the higher value wins.
// This mirrors §4.1's two-regressor design, where organic output feeds the
// tree model alongside inorganic factors.
func (r *Result) AdjustInorganic(monthly []float64) {
	for i := 0; i < 3 && i < len(monthly); i++ {
		if monthly[i] > r.Monthly[i] {
			r.Monthly[i] = monthly[i]
		}
		if r.Monthly[i] > r.Quarter {
			r.Quarter = r.Monthly[i]
		}
	}
}

// Accuracy holds per-percentile sMAPE scores for one service — the paper
// evaluates "the forecast result for the 50th, 75th, and 90th percentile for
// each service" (§7.1).
type Accuracy struct {
	P50, P75, P90 float64
}

// EvaluateAccuracy backtests the organic model on a raw traffic series: the
// last testDays days are held out; for each traffic percentile (daily p50,
// p75, p90 series) the model trains on the prefix, forecasts the holdout,
// and scores sMAPE against the actuals.
func EvaluateAccuracy(raw *timeseries.Series, testDays int, opts ProphetOptions) (Accuracy, error) {
	var acc Accuracy
	if testDays <= 0 {
		return acc, errors.New("forecast: testDays must be positive")
	}
	scores := make([]float64, 0, 3)
	for _, q := range []float64{0.50, 0.75, 0.90} {
		daily, err := raw.DailyQuantile(q)
		if err != nil {
			return acc, err
		}
		if daily.Len() <= testDays {
			return acc, fmt.Errorf("forecast: series too short (%d days) for %d test days", daily.Len(), testDays)
		}
		train := daily.Slice(0, daily.Len()-testDays)
		test := daily.Slice(daily.Len()-testDays, daily.Len())
		m, err := FitProphet(train, opts)
		if err != nil {
			return acc, err
		}
		pred := m.Forecast(testDays)
		s, err := stats.SMAPE(test.Values, pred.Values)
		if err != nil {
			return acc, err
		}
		scores = append(scores, s)
	}
	acc.P50, acc.P75, acc.P90 = scores[0], scores[1], scores[2]
	return acc, nil
}

// ClampGrowth applies service-owner growth expectations to the forecast —
// the §4.1 Scribe refinement where reads are adjusted with "minimum and
// maximum growth expectations provided by the services". Each month m
// (1-based) is bounded to
//
//	lastActual × (1+minMonthlyGrowth)^m  ...  lastActual × (1+maxMonthlyGrowth)^m
//
// and the quarter demand is recomputed.
func (r *Result) ClampGrowth(lastActual, minMonthlyGrowth, maxMonthlyGrowth float64) {
	if lastActual <= 0 || minMonthlyGrowth > maxMonthlyGrowth {
		return
	}
	r.Quarter = 0
	lo, hi := lastActual, lastActual
	for m := 0; m < 3; m++ {
		lo *= 1 + minMonthlyGrowth
		hi *= 1 + maxMonthlyGrowth
		if r.Monthly[m] < lo {
			r.Monthly[m] = lo
		}
		if r.Monthly[m] > hi {
			r.Monthly[m] = hi
		}
		if r.Monthly[m] > r.Quarter {
			r.Quarter = r.Monthly[m]
		}
	}
}
