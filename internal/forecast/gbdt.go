package forecast

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"entitlement/internal/stats"
)

// TreeOptions bounds a single regression tree.
type TreeOptions struct {
	MaxDepth int // default 3
	MinLeaf  int // minimum samples per leaf, default 4
}

// GBDTOptions configures the gradient-boosted tree model the paper uses for
// inorganic changes: "these regressors are fit into a tree-based model with
// quantile loss (e.g., alpha = 0.5)" (§4.1).
type GBDTOptions struct {
	Trees        int     // boosting rounds, default 100
	LearningRate float64 // shrinkage, default 0.1
	Quantile     float64 // pinball-loss alpha, default 0.5
	Tree         TreeOptions
}

func (o GBDTOptions) withDefaults() GBDTOptions {
	if o.Trees == 0 {
		o.Trees = 100
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
	if o.Quantile == 0 {
		o.Quantile = 0.5
	}
	if o.Tree.MaxDepth == 0 {
		o.Tree.MaxDepth = 3
	}
	if o.Tree.MinLeaf == 0 {
		o.Tree.MinLeaf = 4
	}
	return o
}

// treeNode is one node of a regression tree (leaf when feature < 0).
type treeNode struct {
	feature   int
	threshold float64
	left      int // child indexes into GBDT.nodes-local slice
	right     int
	value     float64
}

type regTree struct {
	nodes []treeNode
}

func (t *regTree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// GBDT is a fitted gradient-boosted quantile regressor.
type GBDT struct {
	opts  GBDTOptions
	base  float64
	trees []*regTree
	dim   int
}

// PinballLoss returns the quantile (pinball) loss of prediction p against
// truth y at quantile alpha.
func PinballLoss(y, p, alpha float64) float64 {
	d := y - p
	if d >= 0 {
		return alpha * d
	}
	return (alpha - 1) * d
}

// FitGBDT fits the boosted quantile model. X rows are feature vectors with a
// shared width; y is the target. The gradient of the pinball loss is a step
// function, so each boosting round fits a tree to the sign residuals and
// sets leaf values to the alpha-quantile of the raw residuals in the leaf —
// the standard LAD/quantile-boosting refinement.
func FitGBDT(x [][]float64, y []float64, opts GBDTOptions) (*GBDT, error) {
	o := opts.withDefaults()
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("forecast: GBDT needs matching non-empty X and y")
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("forecast: GBDT row %d has width %d, want %d", i, len(row), dim)
		}
	}
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return nil, fmt.Errorf("forecast: quantile %v out of (0,1)", o.Quantile)
	}
	g := &GBDT{opts: o, dim: dim}
	g.base = stats.Quantile(y, o.Quantile)
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = g.base
	}
	grad := make([]float64, len(y))
	resid := make([]float64, len(y))
	idx := make([]int, len(y))
	for round := 0; round < o.Trees; round++ {
		for i := range y {
			resid[i] = y[i] - pred[i]
			if resid[i] > 0 {
				grad[i] = o.Quantile
			} else {
				grad[i] = o.Quantile - 1
			}
			idx[i] = i
		}
		tree := buildTree(x, grad, resid, idx, o)
		if tree == nil {
			break
		}
		g.trees = append(g.trees, tree)
		for i := range pred {
			pred[i] += o.LearningRate * tree.predict(x[i])
		}
	}
	return g, nil
}

// buildTree grows a CART regression tree on the gradient targets, with leaf
// values set to the alpha-quantile of raw residuals.
func buildTree(x [][]float64, grad, resid []float64, idx []int, o GBDTOptions) *regTree {
	t := &regTree{}
	var grow func(samples []int, depth int) int
	grow = func(samples []int, depth int) int {
		node := len(t.nodes)
		t.nodes = append(t.nodes, treeNode{feature: -1})
		rs := make([]float64, len(samples))
		for i, s := range samples {
			rs[i] = resid[s]
		}
		t.nodes[node].value = stats.Quantile(rs, o.Quantile)
		if depth >= o.Tree.MaxDepth || len(samples) < 2*o.Tree.MinLeaf {
			return node
		}
		feat, thresh, ok := bestSplit(x, grad, samples, o.Tree.MinLeaf)
		if !ok {
			return node
		}
		var left, right []int
		for _, s := range samples {
			if x[s][feat] <= thresh {
				left = append(left, s)
			} else {
				right = append(right, s)
			}
		}
		l := grow(left, depth+1)
		r := grow(right, depth+1)
		t.nodes[node].feature = feat
		t.nodes[node].threshold = thresh
		t.nodes[node].left = l
		t.nodes[node].right = r
		return node
	}
	grow(idx, 0)
	return t
}

// bestSplit finds the (feature, threshold) minimizing the gradient's
// within-node variance (equivalently maximizing variance reduction).
func bestSplit(x [][]float64, grad []float64, samples []int, minLeaf int) (int, float64, bool) {
	if len(samples) < 2*minLeaf {
		return 0, 0, false
	}
	dim := len(x[samples[0]])
	bestGain := 1e-12
	bestFeat, bestThresh, found := 0, 0.0, false

	totalSum, totalSq := 0.0, 0.0
	for _, s := range samples {
		totalSum += grad[s]
		totalSq += grad[s] * grad[s]
	}
	n := float64(len(samples))
	parentSSE := totalSq - totalSum*totalSum/n

	order := make([]int, len(samples))
	for f := 0; f < dim; f++ {
		copy(order, samples)
		sort.Slice(order, func(i, j int) bool { return x[order[i]][f] < x[order[j]][f] })
		leftSum, leftSq := 0.0, 0.0
		for i := 0; i < len(order)-1; i++ {
			s := order[i]
			leftSum += grad[s]
			leftSq += grad[s] * grad[s]
			if i+1 < minLeaf || len(order)-i-1 < minLeaf {
				continue
			}
			// No split between equal feature values.
			if x[order[i]][f] == x[order[i+1]][f] {
				continue
			}
			ln := float64(i + 1)
			rn := n - ln
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/ln) + (rightSq - rightSum*rightSum/rn)
			gain := parentSSE - sse
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (x[order[i]][f] + x[order[i+1]][f]) / 2
				found = true
			}
		}
	}
	return bestFeat, bestThresh, found
}

// Predict evaluates the boosted model on one feature vector.
func (g *GBDT) Predict(x []float64) float64 {
	if len(x) != g.dim {
		panic(fmt.Sprintf("forecast: GBDT.Predict width %d, want %d", len(x), g.dim))
	}
	p := g.base
	for _, t := range g.trees {
		p += g.opts.LearningRate * t.predict(x)
	}
	return p
}

// NumTrees returns the number of boosting rounds that produced trees.
func (g *GBDT) NumTrees() int { return len(g.trees) }

// InorganicFeatures builds the §4.1 regressor row for month t:
// (X_{t−1}, X_{t−2}, X_{t−3}, Y_{t−1}, Y_{t−2}, Y_{t−3}) where X is monthly
// traffic volume and Y the inorganic regressors (power, server counts, ...).
// Each Y lag may hold several regressors; they are flattened in order.
func InorganicFeatures(trafficLags [3]float64, regressorLags [3][]float64) []float64 {
	row := make([]float64, 0, 3+3*len(regressorLags[0]))
	row = append(row, trafficLags[0], trafficLags[1], trafficLags[2])
	for _, lag := range regressorLags {
		row = append(row, lag...)
	}
	return row
}

// InorganicDataset assembles a training set from aligned monthly traffic and
// regressor histories: sample t predicts traffic[t] from months t−1..t−3.
func InorganicDataset(traffic []float64, regressors [][]float64) (x [][]float64, y []float64, err error) {
	if len(regressors) != len(traffic) {
		return nil, nil, errors.New("forecast: traffic/regressor length mismatch")
	}
	if len(traffic) < 4 {
		return nil, nil, errors.New("forecast: need >= 4 months of history")
	}
	for t := 3; t < len(traffic); t++ {
		row := InorganicFeatures(
			[3]float64{traffic[t-1], traffic[t-2], traffic[t-3]},
			[3][]float64{regressors[t-1], regressors[t-2], regressors[t-3]},
		)
		x = append(x, row)
		y = append(y, traffic[t])
	}
	return x, y, nil
}

// ForecastMonths rolls the fitted model forward horizon months past the
// history, feeding predictions back as lags. futureRegressors must provide
// one regressor row per forecast month (planned inorganic changes are known
// in advance, §4.1: "we know of these planned changes in advance").
func (g *GBDT) ForecastMonths(traffic []float64, regressors [][]float64, futureRegressors [][]float64) ([]float64, error) {
	if len(traffic) < 3 {
		return nil, errors.New("forecast: need >= 3 months of history to roll forward")
	}
	if len(traffic) != len(regressors) {
		return nil, errors.New("forecast: traffic/regressor length mismatch")
	}
	hist := append([]float64{}, traffic...)
	regs := append([][]float64{}, regressors...)
	out := make([]float64, 0, len(futureRegressors))
	for _, fr := range futureRegressors {
		t := len(hist)
		row := InorganicFeatures(
			[3]float64{hist[t-1], hist[t-2], hist[t-3]},
			[3][]float64{regs[t-1], regs[t-2], regs[t-3]},
		)
		p := g.Predict(row)
		if p < 0 || math.IsNaN(p) {
			p = 0
		}
		out = append(out, p)
		hist = append(hist, p)
		regs = append(regs, fr)
	}
	return out, nil
}
