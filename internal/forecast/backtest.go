package forecast

import (
	"errors"

	"entitlement/internal/stats"
	"entitlement/internal/timeseries"
)

// Backtest runs rolling-origin cross-validation of the organic model: for
// each fold the model trains on a growing prefix of the daily series and
// forecasts the next horizon days; the per-fold sMAPE scores are returned
// (oldest fold first). This is how a deployment validates its forecast
// configuration before trusting it for entitlement requests.
func Backtest(daily *timeseries.Series, folds, horizon int, opts ProphetOptions) ([]float64, error) {
	if folds <= 0 || horizon <= 0 {
		return nil, errors.New("forecast: folds and horizon must be positive")
	}
	// The earliest fold still needs enough history to fit.
	minTrain := daily.Len() - folds*horizon
	if minTrain < 2*horizon {
		return nil, errors.New("forecast: series too short for the requested folds")
	}
	scores := make([]float64, 0, folds)
	for f := 0; f < folds; f++ {
		trainEnd := minTrain + f*horizon
		train := daily.Slice(0, trainEnd)
		test := daily.Slice(trainEnd, trainEnd+horizon)
		m, err := FitProphet(train, opts)
		if err != nil {
			return nil, err
		}
		pred := m.Forecast(horizon)
		s, err := stats.SMAPE(test.Values, pred.Values)
		if err != nil {
			return nil, err
		}
		scores = append(scores, s)
	}
	return scores, nil
}
