// Package forecast implements the demand-forecast stage of §4.1: the SLI
// metric, a Prophet-lite additive time-series model for organic changes
// (y(t) = trend(t) + seasonality(t) + holidays(t) + ε), a gradient-boosted
// tree model with quantile loss for inorganic changes, and the sMAPE
// accuracy evaluation of §7.1.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"time"

	"entitlement/internal/linalg"
	"entitlement/internal/timeseries"
)

// ProphetOptions configures the Prophet-lite organic model.
type ProphetOptions struct {
	// Changepoints is the number of potential piecewise-linear trend
	// changepoints, spread uniformly over the first 80% of the history
	// (matching Prophet's default placement). Default 8.
	Changepoints int
	// WeeklyOrder is the Fourier order of the weekly seasonality. Default 3.
	// Zero disables weekly seasonality.
	WeeklyOrder int
	// YearlyOrder is the Fourier order of yearly seasonality. Zero (default)
	// disables it; quarterly entitlement windows rarely need it.
	YearlyOrder int
	// Holidays are day offsets (from series start) carrying a shared
	// holiday effect: one indicator column is active on every listed day
	// (mod 365), so future holidays inherit the effect learned from past
	// ones — the holidays(t) component of §4.1's decomposition.
	Holidays []int
	// Ridge is the L2 penalty applied when fitting (the target is
	// normalized first, so the penalty is scale-free). Default 0.1.
	Ridge float64
}

func (o *ProphetOptions) withDefaults() ProphetOptions {
	out := *o
	if out.Changepoints == 0 {
		out.Changepoints = 8
	}
	if out.WeeklyOrder == 0 {
		out.WeeklyOrder = 3
	}
	if out.Ridge == 0 {
		out.Ridge = 0.1
	}
	return out
}

// Prophet is a fitted Prophet-lite model over a daily series.
type Prophet struct {
	opts         ProphetOptions
	start        time.Time
	step         time.Duration
	n            int          // training length in samples
	changepoints []float64    // normalized [0,1] positions
	holidays     map[int]bool // holiday day offsets (mod 365)
	weights      []float64
	yMean, yStd  float64 // target normalization applied before the ridge fit
}

// FitProphet fits the additive model to a daily (or coarser) series.
// The series must have at least 2×(model dimension) samples.
func FitProphet(s *timeseries.Series, opts ProphetOptions) (*Prophet, error) {
	o := opts.withDefaults()
	if s.Step < time.Hour {
		return nil, errors.New("forecast: Prophet expects daily-granularity series")
	}
	m := &Prophet{opts: o, start: s.Start, step: s.Step, n: s.Len()}
	m.changepoints = make([]float64, o.Changepoints)
	for i := range m.changepoints {
		m.changepoints[i] = 0.8 * float64(i+1) / float64(o.Changepoints+1)
	}
	m.holidays = make(map[int]bool)
	for _, h := range o.Holidays {
		m.holidays[((h%365)+365)%365] = true
	}
	dim := m.dim()
	if s.Len() < 2*dim {
		return nil, fmt.Errorf("forecast: need >= %d samples to fit, got %d", 2*dim, s.Len())
	}
	rows := make([][]float64, s.Len())
	for i := range rows {
		rows[i] = m.features(i)
	}
	x := linalg.FromRows(rows)
	// Normalize the target so the ridge penalty is scale-free: traffic
	// volumes span Gbps to Tbps and a fixed lambda would otherwise flatten
	// large services' fits.
	mean, std := 0.0, 0.0
	for _, v := range s.Values {
		mean += v
	}
	mean /= float64(s.Len())
	for _, v := range s.Values {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(s.Len()))
	if std == 0 {
		std = 1
	}
	norm := make([]float64, s.Len())
	for i, v := range s.Values {
		norm[i] = (v - mean) / std
	}
	w, err := linalg.Ridge(x, norm, o.Ridge)
	if err != nil {
		return nil, err
	}
	m.weights = w
	m.yMean, m.yStd = mean, std
	return m, nil
}

// dim returns the design-matrix width.
func (m *Prophet) dim() int {
	d := 2 + len(m.changepoints) + 2*m.opts.WeeklyOrder + 2*m.opts.YearlyOrder
	if len(m.holidays) > 0 {
		d++
	}
	return d
}

// features builds the design row for sample index i (which may be beyond the
// training range for forecasting).
func (m *Prophet) features(i int) []float64 {
	row := make([]float64, 0, m.dim())
	// Normalized time over the training window; extrapolates past 1.
	t := float64(i) / float64(maxInt(m.n-1, 1))
	row = append(row, 1, t)
	for _, cp := range m.changepoints {
		if t > cp {
			row = append(row, t-cp)
		} else {
			row = append(row, 0)
		}
	}
	day := float64(i) * m.step.Hours() / 24
	for k := 1; k <= m.opts.WeeklyOrder; k++ {
		row = append(row,
			math.Sin(2*math.Pi*float64(k)*day/7),
			math.Cos(2*math.Pi*float64(k)*day/7))
	}
	for k := 1; k <= m.opts.YearlyOrder; k++ {
		row = append(row,
			math.Sin(2*math.Pi*float64(k)*day/365.25),
			math.Cos(2*math.Pi*float64(k)*day/365.25))
	}
	if len(m.holidays) > 0 {
		ind := 0.0
		if m.holidays[int(day)%365] {
			ind = 1
		}
		row = append(row, ind)
	}
	return row
}

// PredictAt returns the model value at sample index i (0 = first training
// sample; indexes >= the training length forecast the future).
func (m *Prophet) PredictAt(i int) float64 {
	return linalg.Dot(m.features(i), m.weights)*m.yStd + m.yMean
}

// Forecast returns the next horizon samples after the training window.
func (m *Prophet) Forecast(horizon int) *timeseries.Series {
	vals := make([]float64, horizon)
	for i := range vals {
		v := m.PredictAt(m.n + i)
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	return timeseries.New(m.start.Add(time.Duration(m.n)*m.step), m.step, vals)
}

// Fitted returns the in-sample fit.
func (m *Prophet) Fitted() *timeseries.Series {
	vals := make([]float64, m.n)
	for i := range vals {
		vals[i] = m.PredictAt(i)
	}
	return timeseries.New(m.start, m.step, vals)
}

// Trend returns the trend component (intercept + slope + changepoints) at
// sample index i, excluding seasonality and holidays.
func (m *Prophet) Trend(i int) float64 {
	row := m.features(i)
	nTrend := 2 + len(m.changepoints)
	s := 0.0
	for j := 0; j < nTrend; j++ {
		s += row[j] * m.weights[j]
	}
	return s*m.yStd + m.yMean
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
