package netsim

import (
	"math"
	"testing"
	"time"

	"entitlement/internal/bpf"
	"entitlement/internal/contract"
)

func TestQueueIndexMapping(t *testing.T) {
	// Every class maps to its own queue, ordered by priority.
	for _, c := range contract.Classes() {
		if got := queueIndex(bpf.DSCPForClass(c)); got != int(c) {
			t.Errorf("class %v queue = %d, want %d", c, got, int(c))
		}
	}
	if got := queueIndex(bpf.NonConformDSCP); got != nonConformQueue {
		t.Errorf("non-conform queue = %d, want %d", got, nonConformQueue)
	}
	if got := queueIndex(255); got != nonConformQueue {
		t.Errorf("unknown DSCP queue = %d, want scavenger", got)
	}
}

func TestACLMatching(t *testing.T) {
	l := &Link{}
	l.AddACL(ACL{NPG: "Cold", NonConformOnly: true, DropFraction: 0.5})
	if got := l.aclDropFraction("Cold", true); got != 0.5 {
		t.Errorf("matching drop = %v", got)
	}
	if got := l.aclDropFraction("Cold", false); got != 0 {
		t.Errorf("conforming traffic dropped: %v", got)
	}
	if got := l.aclDropFraction("Other", true); got != 0 {
		t.Errorf("other NPG dropped: %v", got)
	}
	// Rules compose multiplicatively.
	l.AddACL(ACL{NPG: "Cold", NonConformOnly: true, DropFraction: 0.5})
	if got := l.aclDropFraction("Cold", true); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("stacked drop = %v, want 0.75", got)
	}
	l.ClearACLs()
	if got := l.aclDropFraction("Cold", true); got != 0 {
		t.Errorf("drop after clear = %v", got)
	}
}

// simpleSim builds one link with one service host and flow.
func simpleSim(t *testing.T, capacity, demand float64) (*Sim, *Host, *Flow, *Link) {
	t.Helper()
	sim := New(Options{Tick: time.Second, Seed: 1})
	link := sim.AddLink("L", capacity, 20*time.Millisecond)
	h := sim.AddHost("h1", "A", "Svc", contract.ClassB)
	f := sim.AddFlow(h, "B", []*Link{link}, demand)
	return sim, h, f, link
}

func TestFlowEstablishesAndRampsUp(t *testing.T) {
	sim, _, f, _ := simpleSim(t, 100e9, 10e9)
	if f.Established() {
		t.Fatal("flow established before any tick")
	}
	sim.Run(30)
	if !f.Established() {
		t.Fatal("flow failed to establish on a clean network")
	}
	if f.SynSentCount < 1 || f.SynFailed != 0 {
		t.Errorf("SYN stats = %d sent, %d failed", f.SynSentCount, f.SynFailed)
	}
	// Rate converges to demand.
	if math.Abs(f.rate-10e9)/10e9 > 0.01 {
		t.Errorf("rate = %v, want ~10e9", f.rate)
	}
	if f.DeliveredFraction() < 0.99 {
		t.Errorf("delivery fraction = %v on clean network", f.DeliveredFraction())
	}
}

func TestCongestionCausesLossAndBackoff(t *testing.T) {
	// Demand 2x capacity: sustained loss, rate backs off below demand.
	sim, _, f, _ := simpleSim(t, 10e9, 20e9)
	sim.Run(60)
	if f.LastLoss() <= 0 {
		t.Error("no loss under 2x overload")
	}
	if f.rate >= 20e9*0.95 {
		t.Errorf("rate %v did not back off from demand", f.rate)
	}
	if f.Retransmits == 0 {
		t.Error("no retransmits recorded")
	}
}

func TestStrictPriorityProtectsPremium(t *testing.T) {
	sim := New(Options{Tick: time.Second, Seed: 2})
	link := sim.AddLink("L", 10e9, 10*time.Millisecond)
	hi := sim.AddHost("hi", "A", "Premium", contract.C1Low)
	lo := sim.AddHost("lo", "A", "Basic", contract.C4High)
	fHi := sim.AddFlow(hi, "B", []*Link{link}, 8e9)
	fLo := sim.AddFlow(lo, "B", []*Link{link}, 8e9)
	sim.Run(80)
	// Premium traffic fits (8 < 10); the basic class eats all the loss.
	if fHi.LastLoss() > 0.01 {
		t.Errorf("premium loss = %v", fHi.LastLoss())
	}
	if fLo.LastLoss() <= 0.1 {
		t.Errorf("basic loss = %v, want substantial", fLo.LastLoss())
	}
	if fLo.rate >= fHi.rate {
		t.Errorf("basic rate %v not below premium %v", fLo.rate, fHi.rate)
	}
}

func TestNonConformingSharesScavengerQueue(t *testing.T) {
	// A remarked premium flow must compete in the scavenger queue, not its
	// class queue.
	sim := New(Options{Tick: time.Second, Seed: 3})
	link := sim.AddLink("L", 10e9, 10*time.Millisecond)
	h := sim.AddHost("h", "A", "Svc", contract.C1Low)
	f := sim.AddFlow(h, "B", []*Link{link}, 8e9)
	filler := sim.AddHost("f", "A", "Filler", contract.C4High)
	fFill := sim.AddFlow(filler, "B", []*Link{link}, 8e9)
	// Mark all of Svc's traffic non-conforming.
	h.Prog.Actions.Update(bpf.MapKey{NPG: "Svc", Class: contract.C1Low, Region: "A"},
		bpf.Action{Mode: bpf.MarkHosts, NonConformGroups: bpf.NumGroups})
	sim.Run(80)
	if f.LastConforming() {
		t.Fatal("flow still conforming despite full marking")
	}
	// The class-c4 filler now outranks the remarked c1 flow.
	if fFill.LastLoss() > 0.01 {
		t.Errorf("filler loss = %v, want ~0", fFill.LastLoss())
	}
	if f.LastLoss() <= 0.1 {
		t.Errorf("remarked flow loss = %v, want substantial", f.LastLoss())
	}
}

func TestACLDropsBreakConnections(t *testing.T) {
	sim, h, f, link := simpleSim(t, 100e9, 10e9)
	sim.Run(20) // establish
	if !f.Established() {
		t.Fatal("not established")
	}
	// Mark everything non-conforming and drop 100% of it.
	h.Prog.Actions.Update(bpf.MapKey{NPG: "Svc", Class: contract.ClassB, Region: "A"},
		bpf.Action{Mode: bpf.MarkHosts, NonConformGroups: bpf.NumGroups})
	link.AddACL(ACL{NPG: "Svc", NonConformOnly: true, DropFraction: 1})
	sim.Run(40)
	// The connection collapses back into SYN retries that keep failing.
	if f.Established() {
		t.Error("connection survived 100% drop")
	}
	if f.SynFailed == 0 {
		t.Error("no SYN failures recorded")
	}
}

func TestHostEgressRates(t *testing.T) {
	sim, h, _, _ := simpleSim(t, 100e9, 10e9)
	sim.Run(30)
	total, conform := h.EgressRates(sim.Tick())
	if math.Abs(total-10e9)/10e9 > 0.05 {
		t.Errorf("total = %v, want ~10e9", total)
	}
	if total != conform {
		t.Errorf("unmarked host: conform %v != total %v", conform, total)
	}
}

func TestMetricsSeriesAlignment(t *testing.T) {
	sim := New(Options{Tick: time.Second, Seed: 4})
	link := sim.AddLink("L", 100e9, time.Millisecond)
	hA := sim.AddHost("a", "A", "SvcA", contract.ClassA)
	sim.AddFlow(hA, "B", []*Link{link}, 1e9)
	sim.Run(5)
	// Second service appears later; its series must be backfilled.
	hB := sim.AddHost("b", "A", "SvcB", contract.ClassB)
	sim.AddFlow(hB, "B", []*Link{link}, 1e9)
	sim.Run(5)
	for key, series := range sim.Metrics.Groups {
		if len(series) != sim.Metrics.Ticks() {
			t.Errorf("group %v series %d entries, want %d", key, len(series), sim.Metrics.Ticks())
		}
	}
	for npg, series := range sim.Metrics.PerNPG {
		if len(series) != sim.Metrics.Ticks() {
			t.Errorf("NPG %v series %d entries, want %d", npg, len(series), sim.Metrics.Ticks())
		}
	}
	// Backfilled prefix is zero.
	svcB := sim.Metrics.NPGSeries("SvcB")
	if svcB[0].TotalRate != 0 {
		t.Error("backfill not zero")
	}
}

func TestWindowAverage(t *testing.T) {
	sim, _, _, _ := simpleSim(t, 100e9, 10e9)
	sim.Run(20)
	key := GroupKey{Class: contract.ClassB, Conforming: true}
	avg := sim.Metrics.WindowAverage(key, 10, 20, func(ts TickStats) float64 { return ts.SentRate })
	if avg <= 0 {
		t.Errorf("window average = %v", avg)
	}
	// Degenerate windows.
	if got := sim.Metrics.WindowAverage(key, 30, 40, func(ts TickStats) float64 { return 1 }); got != 0 {
		t.Errorf("out-of-range window = %v", got)
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() float64 {
		sim, _, f, _ := simpleSim(t, 10e9, 20e9)
		sim.Run(50)
		return f.DeliveredBits
	}
	if run() != run() {
		t.Error("same seed produced different results")
	}
}

func TestSimString(t *testing.T) {
	sim, _, _, _ := simpleSim(t, 1e9, 1e9)
	if sim.String() == "" {
		t.Error("empty String()")
	}
	if sim.Now().IsZero() {
		t.Error("zero Now()")
	}
}

func TestServeWeightedAllFit(t *testing.T) {
	offered := []float64{10, 20, 30}
	served := serveWeighted(offered, []float64{3, 2, 1}, 100)
	for q := range offered {
		if served[q] != offered[q] {
			t.Errorf("queue %d served %v, want %v", q, served[q], offered[q])
		}
	}
}

func TestServeWeightedProportionalUnderContention(t *testing.T) {
	// Two queues both want 100 with weights 3:1 over capacity 80.
	served := serveWeighted([]float64{100, 100}, []float64{3, 1}, 80)
	if math.Abs(served[0]-60) > 1e-9 || math.Abs(served[1]-20) > 1e-9 {
		t.Errorf("served = %v, want [60 20]", served)
	}
}

func TestServeWeightedRedistributesIdleShare(t *testing.T) {
	// Queue 0 needs little; its unused weighted share flows to queue 1.
	served := serveWeighted([]float64{10, 200}, []float64{3, 1}, 100)
	if served[0] != 10 {
		t.Errorf("small queue served %v", served[0])
	}
	if math.Abs(served[1]-90) > 1e-9 {
		t.Errorf("big queue served %v, want 90", served[1])
	}
}

func TestServeWeightedConservation(t *testing.T) {
	offered := []float64{50, 0, 70, 30, 0, 10, 90, 5}
	served := serveWeighted(offered, classWeights[:], 120)
	total := 0.0
	for q := range served {
		if served[q] < -1e-9 || served[q] > offered[q]+1e-9 {
			t.Fatalf("queue %d served %v of %v", q, served[q], offered[q])
		}
		total += served[q]
	}
	if total > 120+1e-6 {
		t.Errorf("served %v exceeds capacity", total)
	}
	// Work conserving: demand exceeds capacity, so capacity is exhausted.
	if total < 120-1e-6 {
		t.Errorf("served %v below capacity despite excess demand", total)
	}
}

func TestMultiHopPathBottleneck(t *testing.T) {
	// A flow across two links is limited by the slower one.
	sim := New(Options{Tick: time.Second, Seed: 6})
	wide := sim.AddLink("wide", 100e9, 5*time.Millisecond)
	narrow := sim.AddLink("narrow", 5e9, 5*time.Millisecond)
	h := sim.AddHost("h", "A", "Svc", contract.ClassB)
	f := sim.AddFlow(h, "C", []*Link{wide, narrow}, 20e9)
	sim.Run(60)
	// Delivered rate bounded by the narrow link.
	rate := f.lastDelivered / sim.Tick().Seconds()
	if rate > 5e9*1.05 {
		t.Errorf("delivered %v exceeds narrow link capacity", rate)
	}
	if f.LastLoss() <= 0 {
		t.Error("no loss on bottlenecked multi-hop flow")
	}
	// RTT accumulates both links' base RTTs.
	if f.LastRTT() < 10*time.Millisecond {
		t.Errorf("RTT %v below sum of base RTTs", f.LastRTT())
	}
}
