package netsim

import (
	"fmt"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/flow"
	"entitlement/internal/topology"
)

// Backbone wires a Sim to a real multi-region topology: every topology link
// becomes a simulated link, and flows are routed over shortest paths, so
// enforcement experiments can run on the same backbones the granting
// pipeline plans against.
type Backbone struct {
	Sim  *Sim
	Topo *topology.Topology

	links []*Link // indexed by topology link ID
	net   *flow.Network
}

// NewBackbone builds a simulator mirroring the topology. Base RTT per link
// is metric × perMetricRTT (default 10ms per metric unit).
func NewBackbone(topo *topology.Topology, opts Options, perMetricRTT time.Duration) (*Backbone, error) {
	if topo == nil || topo.NumLinks() == 0 {
		return nil, fmt.Errorf("netsim: backbone needs a non-empty topology")
	}
	if perMetricRTT <= 0 {
		perMetricRTT = 10 * time.Millisecond
	}
	b := &Backbone{
		Sim:   New(opts),
		Topo:  topo,
		links: make([]*Link, topo.NumLinks()),
		net:   flow.NewNetwork(topo, topo.AllUp()),
	}
	for i := range topo.Links {
		l := topo.Link(i)
		rtt := time.Duration(float64(perMetricRTT) * l.Metric)
		b.links[i] = b.Sim.AddLink(fmt.Sprintf("%s->%s#%d", l.Src, l.Dst, i), l.Capacity, rtt)
	}
	return b, nil
}

// Link returns the simulated link for a topology link ID.
func (b *Backbone) Link(id int) *Link { return b.links[id] }

// AddHost registers a host in a region that must exist in the topology.
func (b *Backbone) AddHost(id string, region topology.Region, npg contract.NPG, class contract.Class) (*Host, error) {
	if !b.Topo.HasRegion(region) {
		return nil, fmt.Errorf("netsim: unknown region %s", region)
	}
	return b.Sim.AddHost(id, region, npg, class), nil
}

// AddRoutedFlow creates a flow from the host toward dst, routed over the
// topology's current shortest path.
func (b *Backbone) AddRoutedFlow(h *Host, dst topology.Region, demand float64) (*Flow, error) {
	if !b.Topo.HasRegion(dst) {
		return nil, fmt.Errorf("netsim: unknown destination %s", dst)
	}
	ids, _, ok := b.net.ShortestPath(h.Region, dst, -1, nil, nil)
	if !ok {
		return nil, fmt.Errorf("netsim: no path %s -> %s", h.Region, dst)
	}
	path := make([]*Link, len(ids))
	for i, id := range ids {
		path[i] = b.links[id]
	}
	return b.Sim.AddFlow(h, dst, path, demand), nil
}
