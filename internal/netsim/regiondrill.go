package netsim

import (
	"fmt"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/kvstore"
	"entitlement/internal/topology"
)

// RegionDrillOptions configures a multi-region variant of the drill: the
// service runs hosts in several source regions, each region carrying its
// OWN egress entitlement and enforced independently ("entitlements have
// five fields: <NPG, QoS class, region, entitled rate, enforcement
// period>"). One region's entitlement is cut; the others must be untouched.
type RegionDrillOptions struct {
	Regions      []topology.Region // source regions (>= 2)
	HostsPerReg  int
	Demand       float64 // per-region demand, bits/s
	Entitled     float64 // reduced entitlement for the target region
	LinkCapacity float64 // per-region uplink capacity
	Ticks        int
	Seed         int64
}

// DefaultRegionDrillOptions returns a three-region setup.
func DefaultRegionDrillOptions() RegionDrillOptions {
	return RegionDrillOptions{
		Regions:      []topology.Region{"R0", "R1", "R2"},
		HostsPerReg:  10,
		Demand:       1e12,
		Entitled:     0.5e12,
		LinkCapacity: 2e12,
		Ticks:        80,
		Seed:         17,
	}
}

// RegionDrillReport summarizes per-region outcomes.
type RegionDrillReport struct {
	Sim *Sim
	// ConformRate / TotalRate per region at the final tick, bits/s.
	Conform map[topology.Region]float64
	Total   map[topology.Region]float64
	// Marked counts remarked hosts per region at the end.
	Marked map[topology.Region]int
	Target topology.Region
}

// RunRegionDrill cuts the first region's entitlement to opts.Entitled while
// the other regions keep generous entitlements, runs independent agents
// everywhere, and reports per-region rates. Enforcement must stay scoped to
// the target region's flow set.
func RunRegionDrill(opts RegionDrillOptions) (*RegionDrillReport, error) {
	if len(opts.Regions) < 2 || opts.HostsPerReg <= 0 {
		return nil, fmt.Errorf("netsim: region drill needs >= 2 regions and hosts")
	}
	if opts.Demand <= 0 || opts.Entitled <= 0 {
		return nil, fmt.Errorf("netsim: region drill rates must be positive")
	}
	if opts.Ticks <= 0 {
		opts.Ticks = 80
	}
	sim := New(Options{Tick: time.Second, Seed: opts.Seed})
	db := contractdb.NewStore()
	rates := kvstore.NewWithClock(sim.Now)
	target := opts.Regions[0]

	// One contract with per-region entitlement rows: the target region is
	// cut, the rest are generous.
	combined := contract.Contract{NPG: drillNPG, SLO: 0.999, Approved: true}
	for _, region := range opts.Regions {
		rate := opts.Demand * 2
		if region == target {
			rate = opts.Entitled
		}
		combined.Entitlements = append(combined.Entitlements, contract.Entitlement{
			NPG: drillNPG, Class: drillClass, Region: region,
			Direction: contract.Egress, Rate: rate,
			Start: sim.Now().Add(-time.Hour), End: sim.Now().Add(24 * time.Hour),
		})
	}
	if err := db.Put(combined); err != nil {
		return nil, err
	}

	type regionState struct {
		hosts  []*Host
		agents []*enforce.Agent
	}
	states := make(map[topology.Region]*regionState, len(opts.Regions))
	perHost := opts.Demand / float64(opts.HostsPerReg)
	for _, region := range opts.Regions {
		link := sim.AddLink(string(region)+"->WAN", opts.LinkCapacity, 20*time.Millisecond)
		st := &regionState{}
		for i := 0; i < opts.HostsPerReg; i++ {
			h := sim.AddHost(fmt.Sprintf("%s-h%02d", region, i), region, drillNPG, drillClass)
			sim.AddFlow(h, "WAN", []*Link{link}, perHost)
			a, err := enforce.NewAgent(enforce.AgentConfig{
				Host: h.ID, NPG: drillNPG, Class: drillClass, Region: region,
				DB: db, Rates: rates, Meter: enforce.NewStateful(), Prog: h.Prog,
				Policy: enforce.HostBased, RateTTL: time.Minute,
			})
			if err != nil {
				return nil, err
			}
			st.hosts = append(st.hosts, h)
			st.agents = append(st.agents, a)
		}
		states[region] = st
	}

	for tick := 0; tick < opts.Ticks; tick++ {
		for _, region := range opts.Regions {
			st := states[region]
			for i, a := range st.agents {
				total, conform := st.hosts[i].EgressRates(sim.Tick())
				if _, err := a.Cycle(sim.Now(), total, conform); err != nil {
					return nil, err
				}
			}
		}
		sim.Step()
	}

	rep := &RegionDrillReport{
		Sim:     sim,
		Conform: make(map[topology.Region]float64, len(opts.Regions)),
		Total:   make(map[topology.Region]float64, len(opts.Regions)),
		Marked:  make(map[topology.Region]int, len(opts.Regions)),
		Target:  target,
	}
	for _, region := range opts.Regions {
		st := states[region]
		for _, h := range st.hosts {
			total, conform := h.EgressRates(sim.Tick())
			rep.Total[region] += total
			rep.Conform[region] += conform
			if conform < total {
				rep.Marked[region]++
			}
		}
	}
	return rep, nil
}
