package netsim

import (
	"time"

	"entitlement/internal/contract"
)

// GroupKey buckets traffic the way the §6.1 plots do: by QoS class and by
// whether the traffic was conforming when it left the host.
type GroupKey struct {
	Class      contract.Class
	Conforming bool
}

// TickStats is one tick's aggregate for a traffic group.
type TickStats struct {
	SentRate      float64 // bits/s offered by hosts
	DeliveredRate float64 // bits/s surviving the network
	LossRatio     float64 // lost/sent (0 when nothing sent)
	AvgRTT        time.Duration
	SynSent       int // handshake attempts this tick
	SynFailed     int
	Retransmits   int
	Flows         int // flows active in the group
}

// NPGTick is one tick's per-service rates. TotalRate and ConformRate are
// what the endhosts report (the Figure 12 series); ConformDeliveredRate is
// the network's ground truth — the conforming bits that actually survived
// the fabric. ConformRate − ConformDeliveredRate is therefore in-contract
// traffic the network failed to carry: the quantity the availability SLO
// is judged on.
type NPGTick struct {
	TotalRate            float64
	ConformRate          float64
	ConformDeliveredRate float64
}

// Metrics accumulates per-tick series for every traffic group and NPG.
type Metrics struct {
	tick   time.Duration
	Groups map[GroupKey][]TickStats
	PerNPG map[contract.NPG][]NPGTick

	ticks int
	// Previous cumulative counters per flow ID, to derive per-tick deltas.
	prevSyn  map[uint64]int
	prevFail map[uint64]int
	prevRetx map[uint64]int
}

func newMetrics(tick time.Duration) *Metrics {
	return &Metrics{
		tick:     tick,
		Groups:   make(map[GroupKey][]TickStats),
		PerNPG:   make(map[contract.NPG][]NPGTick),
		prevSyn:  make(map[uint64]int),
		prevFail: make(map[uint64]int),
		prevRetx: make(map[uint64]int),
	}
}

// Ticks returns the number of recorded ticks.
func (m *Metrics) Ticks() int { return m.ticks }

func (m *Metrics) record(flows []*Flow, tick time.Duration) {
	dt := tick.Seconds()
	type agg struct {
		sent, delivered, lost float64
		rttSum                float64
		rttN                  int
		syn, fail, retx       int
		flows                 int
	}
	groups := make(map[GroupKey]*agg)
	npgs := make(map[contract.NPG]*NPGTick)
	seen := make(map[GroupKey]bool)

	for _, f := range flows {
		key := GroupKey{Class: f.Host.Class, Conforming: f.lastConforming}
		a := groups[key]
		if a == nil {
			a = &agg{}
			groups[key] = a
		}
		seen[key] = true
		a.sent += f.lastSent
		a.delivered += f.lastDelivered
		a.lost += f.lastSent - f.lastDelivered
		if f.lastSent > 0 {
			a.flows++
		}
		// RTT is only measurable on traffic that was acknowledged.
		if f.lastDelivered > 0 {
			a.rttSum += f.lastRTT
			a.rttN++
		}
		a.syn += f.SynSentCount - m.prevSyn[f.ID]
		a.fail += f.SynFailed - m.prevFail[f.ID]
		a.retx += f.Retransmits - m.prevRetx[f.ID]
		m.prevSyn[f.ID] = f.SynSentCount
		m.prevFail[f.ID] = f.SynFailed
		m.prevRetx[f.ID] = f.Retransmits

		n := npgs[f.Host.NPG]
		if n == nil {
			n = &NPGTick{}
			npgs[f.Host.NPG] = n
		}
		n.TotalRate += f.lastSent / dt
		if f.lastConforming {
			n.ConformRate += f.lastSent / dt
			n.ConformDeliveredRate += f.lastDelivered / dt
		}
	}

	// Append one entry per known group; groups not seen this tick get
	// zeros so series stay aligned.
	for key := range groups {
		if _, ok := m.Groups[key]; !ok {
			// Backfill zeros for ticks before the group first appeared.
			m.Groups[key] = make([]TickStats, m.ticks)
		}
	}
	for key, series := range m.Groups {
		a := groups[key]
		var ts TickStats
		if a != nil {
			ts = TickStats{
				SentRate:      a.sent / dt,
				DeliveredRate: a.delivered / dt,
				SynSent:       a.syn,
				SynFailed:     a.fail,
				Retransmits:   a.retx,
				Flows:         a.flows,
			}
			if a.sent > 0 {
				ts.LossRatio = a.lost / a.sent
			}
			if a.rttN > 0 {
				ts.AvgRTT = time.Duration(a.rttSum / float64(a.rttN) * float64(time.Second))
			}
		}
		m.Groups[key] = append(series, ts)
	}

	for npg := range npgs {
		if _, ok := m.PerNPG[npg]; !ok {
			m.PerNPG[npg] = make([]NPGTick, m.ticks)
		}
	}
	for npg, series := range m.PerNPG {
		var nt NPGTick
		if v := npgs[npg]; v != nil {
			nt = *v
		}
		m.PerNPG[npg] = append(series, nt)
	}
	m.ticks++
}

// Series returns the recorded series for a group (nil when never seen).
func (m *Metrics) Series(key GroupKey) []TickStats { return m.Groups[key] }

// NPGSeries returns the per-service rate series.
func (m *Metrics) NPGSeries(npg contract.NPG) []NPGTick { return m.PerNPG[npg] }

// WindowAverage averages fn over ticks [lo, hi) of the group's series.
func (m *Metrics) WindowAverage(key GroupKey, lo, hi int, fn func(TickStats) float64) float64 {
	series := m.Groups[key]
	if lo < 0 {
		lo = 0
	}
	if hi > len(series) {
		hi = len(series)
	}
	if lo >= hi {
		return 0
	}
	sum := 0.0
	for _, ts := range series[lo:hi] {
		sum += fn(ts)
	}
	return sum / float64(hi-lo)
}
