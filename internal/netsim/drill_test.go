package netsim

import (
	"math"
	"testing"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/enforce"
	"entitlement/internal/stats"
)

// smallDrill runs a reduced drill for tests.
func smallDrill(t *testing.T, mutate func(*DrillOptions)) *DrillReport {
	t.Helper()
	opts := DefaultDrillOptions()
	opts.Hosts = 20
	opts.FlowsPerHost = 2
	opts.StageTicks = 40
	if mutate != nil {
		mutate(&opts)
	}
	rep, err := RunDrill(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// stageWindow returns the last half of a stage (steady state).
func stageWindow(r *DrillReport, name string) (int, int) {
	for _, s := range r.Stages {
		if s.Name == name {
			mid := s.Start + (s.End-s.Start)/2
			return mid, s.End
		}
	}
	return 0, 0
}

func TestDrillValidation(t *testing.T) {
	bad := DefaultDrillOptions()
	bad.Hosts = 0
	if _, err := RunDrill(bad); err == nil {
		t.Error("zero hosts accepted")
	}
	bad = DefaultDrillOptions()
	bad.Entitled = 0
	if _, err := RunDrill(bad); err == nil {
		t.Error("zero entitlement accepted")
	}
}

func TestDrillConformingLossStaysZero(t *testing.T) {
	// Figure 11: "the loss ratio of conforming traffic remains close to 0%
	// throughout the test".
	rep := smallDrill(t, nil)
	conforming, _ := rep.LossSeries()
	for i, v := range conforming {
		if v > 0.02 {
			t.Errorf("tick %d (%s): conforming loss = %v", i, rep.StageOf(i).Name, v)
		}
	}
}

func TestDrillNonConformingLossTracksACLStages(t *testing.T) {
	// Figure 11: non-conforming loss shows four distinct stages at 0%,
	// 12.5%, 50%, 100%.
	rep := smallDrill(t, nil)
	_, non := rep.LossSeries()
	for _, stage := range []struct {
		name string
		want float64
	}{
		{"acl-12.5", 0.125},
		{"acl-50", 0.5},
		{"acl-100", 1.0},
	} {
		lo, hi := stageWindow(rep, stage.name)
		var vals []float64
		for i := lo; i < hi; i++ {
			// Skip ticks where no non-conforming traffic was sent.
			if ts := rep.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: false})[i]; ts.SentRate > 0 {
				vals = append(vals, non[i])
			}
		}
		if len(vals) == 0 {
			t.Errorf("stage %s: no non-conforming traffic observed", stage.name)
			continue
		}
		avg := stats.Mean(vals)
		if math.Abs(avg-stage.want) > 0.15 {
			t.Errorf("stage %s: non-conforming loss = %v, want ~%v", stage.name, avg, stage.want)
		}
	}
}

func TestDrillRateDescendsToEntitlement(t *testing.T) {
	// Figure 12: as drops intensify, the total rate decreases until it
	// matches the entitled rate; after rollback it returns to demand.
	rep := smallDrill(t, nil)
	total, conform, entitled := rep.ServiceRates()
	if len(total) != len(conform) || len(total) != len(entitled) {
		t.Fatal("misaligned series")
	}
	// Baseline: total ≈ demand, all conforming.
	lo, hi := stageWindow(rep, "baseline")
	baseTotal := stats.Mean(total[lo:hi])
	if math.Abs(baseTotal-rep.Options.Demand)/rep.Options.Demand > 0.15 {
		t.Errorf("baseline total = %v, want ~%v", baseTotal, rep.Options.Demand)
	}
	// During acl-100: total ≈ entitled (non-conforming fully suppressed).
	lo, hi = stageWindow(rep, "acl-100")
	endTotal := stats.Mean(total[lo:hi])
	if math.Abs(endTotal-rep.Options.Entitled)/rep.Options.Entitled > 0.25 {
		t.Errorf("acl-100 total = %v, want ~entitled %v", endTotal, rep.Options.Entitled)
	}
	// Conforming rate stays near the entitled rate under enforcement.
	confAvg := stats.Mean(conform[lo:hi])
	if math.Abs(confAvg-rep.Options.Entitled)/rep.Options.Entitled > 0.25 {
		t.Errorf("acl-100 conforming = %v, want ~%v", confAvg, rep.Options.Entitled)
	}
	// Rollback: rate recovers toward demand.
	lo, hi = stageWindow(rep, "rollback")
	backTotal := stats.Mean(total[lo:hi])
	if backTotal < rep.Options.Demand*0.7 {
		t.Errorf("rollback total = %v, want near demand %v", backTotal, rep.Options.Demand)
	}
}

func TestDrillRTTConformingUnaffected(t *testing.T) {
	// Figure 13: conforming RTT flat; non-conforming slightly elevated
	// under partial loss.
	rep := smallDrill(t, nil)
	conf, non := rep.RTTSeries()
	lo, hi := stageWindow(rep, "baseline")
	base := stats.Mean(conf[lo:hi])
	lo, hi = stageWindow(rep, "acl-50")
	during := stats.Mean(conf[lo:hi])
	if during > base*1.2 {
		t.Errorf("conforming RTT rose from %v to %v", base, during)
	}
	var nonVals []float64
	for i := lo; i < hi; i++ {
		if non[i] > 0 {
			nonVals = append(nonVals, non[i])
		}
	}
	if len(nonVals) > 0 && stats.Mean(nonVals) < base {
		t.Errorf("non-conforming RTT %v below conforming baseline %v", stats.Mean(nonVals), base)
	}
}

func TestDrillSYNStormAtFullDrop(t *testing.T) {
	// Figure 14: SYN attempts on non-conforming traffic rise as the drop
	// percentage increases, and recover after rollback.
	rep := smallDrill(t, nil)
	_, non := rep.SYNSeries()
	sumWindow := func(name string) int {
		lo, hi := stageWindow(rep, name)
		s := 0
		for i := lo; i < hi; i++ {
			s += non[i]
		}
		return s
	}
	quiet := sumWindow("entitlement-reduced")
	storm := sumWindow("acl-100")
	if storm <= quiet {
		t.Errorf("SYN attempts at 100%% drop (%d) not above no-drop stage (%d)", storm, quiet)
	}
}

func TestDrillAppReadLatencyResilientBelow50(t *testing.T) {
	// Figure 15: "when the drop percentage is less than 50%, there is
	// little impact on the application read latency" thanks to host-level
	// remarking + failover.
	rep := smallDrill(t, nil)
	base := appWindowAvg(rep, "baseline", func(a AppTick) float64 { return a.AvgReadLatency.Seconds() })
	at125 := appWindowAvg(rep, "acl-12.5", func(a AppTick) float64 { return a.AvgReadLatency.Seconds() })
	if at125 > base*2 {
		t.Errorf("read latency at 12.5%% drop = %v, base %v — failover failed", at125, base)
	}
	// At 100%: remarked hosts can't connect at all, healthy hosts serve —
	// latency falls back toward base after failover completes.
	at100 := appWindowAvg(rep, "acl-100", func(a AppTick) float64 { return a.AvgReadLatency.Seconds() })
	if at100 > base*3 {
		t.Errorf("read latency at 100%% = %v, want near base %v after failover", at100, base)
	}
}

func TestDrillAppWriteImpactSevere(t *testing.T) {
	// Figure 16/17: writes are stateful; latency grows with drops and
	// block errors peak when connections cannot establish.
	rep := smallDrill(t, nil)
	baseW := appWindowAvg(rep, "baseline", func(a AppTick) float64 { return a.AvgWriteLatency.Seconds() })
	at50 := appWindowAvg(rep, "acl-50", func(a AppTick) float64 { return a.AvgWriteLatency.Seconds() })
	if at50 <= baseW {
		t.Errorf("write latency at 50%% (%v) not above baseline (%v)", at50, baseW)
	}
	blockErrors := 0
	lo, hi := stageWindow(rep, "acl-100")
	for i := lo; i < hi && i < len(rep.App.Series); i++ {
		blockErrors += rep.App.Series[i].BlockErrors
	}
	if blockErrors == 0 {
		t.Error("no block errors during 100% drop stage")
	}
	// Errors subside after rollback.
	lo, hi = stageWindow(rep, "rollback")
	late := 0
	for i := lo; i < hi && i < len(rep.App.Series); i++ {
		late += rep.App.Series[i].BlockErrors
	}
	if late >= blockErrors && blockErrors > 0 {
		t.Errorf("block errors did not subside after rollback: %d vs %d", late, blockErrors)
	}
}

func appWindowAvg(r *DrillReport, stage string, fn func(AppTick) float64) float64 {
	lo, hi := stageWindow(r, stage)
	if hi > len(r.App.Series) {
		hi = len(r.App.Series)
	}
	if lo >= hi {
		return 0
	}
	sum := 0.0
	for _, a := range r.App.Series[lo:hi] {
		sum += fn(a)
	}
	return sum / float64(hi-lo)
}

func TestDrillHostBasedBeatsFlowBasedForApp(t *testing.T) {
	// §5.3 / §7: host-based remarking lets the application fail over;
	// flow-based marking degrades every host a little, so reads cannot
	// route around the damage.
	latency := func(policy enforce.Policy) float64 {
		rep := smallDrill(t, func(o *DrillOptions) { o.Policy = policy; o.Seed = 5 })
		return appWindowAvg(rep, "acl-50", func(a AppTick) float64 { return a.AvgReadLatency.Seconds() })
	}
	host := latency(enforce.HostBased)
	flow := latency(enforce.FlowBased)
	if host >= flow {
		t.Errorf("host-based read latency %v not below flow-based %v", host, flow)
	}
}

func TestDrillStatefulKeepsConformNearEntitlement(t *testing.T) {
	// The agent's conform ratio must settle near entitled/demand = 0.5.
	rep := smallDrill(t, nil)
	lo, hi := stageWindow(rep, "acl-100")
	ratio := stats.Mean(rep.ConformRatio[lo:hi])
	want := rep.Options.Entitled / rep.Options.Demand
	if math.Abs(ratio-want) > 0.2 {
		t.Errorf("conform ratio = %v, want ~%v", ratio, want)
	}
}

func TestDrillStageBookkeeping(t *testing.T) {
	rep := smallDrill(t, nil)
	if rep.StageOf(0).Name != "baseline" {
		t.Error("tick 0 not in baseline")
	}
	last := rep.Stages[len(rep.Stages)-1]
	if rep.StageOf(last.End-1).Name != "rollback" {
		t.Error("last tick not in rollback")
	}
	if rep.StageOf(last.End) != nil {
		t.Error("tick beyond end has a stage")
	}
	if rep.Sim.Metrics.Ticks() != last.End {
		t.Errorf("ticks recorded = %d, want %d", rep.Sim.Metrics.Ticks(), last.End)
	}
	if len(rep.Entitled) != last.End || len(rep.ConformRatio) != last.End {
		t.Error("per-tick report series misaligned")
	}
}

func TestIncidentReproducesFigures4And5(t *testing.T) {
	opts := DefaultIncidentOptions()
	rep, err := RunIncident(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4: the culprit's rate peaks ~50% above the predicted volume.
	peak := 0.0
	for _, v := range rep.CulpritRate {
		if v > peak {
			peak = v
		}
	}
	if peak < opts.CulpritRate*1.3 {
		t.Errorf("culprit peak = %v, want >= 1.3× predicted %v", peak, opts.CulpritRate)
	}
	// Pre-incident: no loss anywhere.
	for i := 0; i < rep.SpikeStart-5; i++ {
		if rep.LossA[i] > 0.01 || rep.LossB[i] > 0.01 {
			t.Errorf("pre-incident loss at tick %d: A=%v B=%v", i, rep.LossA[i], rep.LossB[i])
		}
	}
	// Figure 5: both classes see loss during the spike (QoS isolation does
	// not protect within-class victims).
	if rep.PeakLoss(contract.ClassA) <= 0.005 {
		t.Errorf("class A peak loss = %v, want > 0", rep.PeakLoss(contract.ClassA))
	}
	if rep.PeakLoss(contract.ClassB) <= 0.005 {
		t.Errorf("class B peak loss = %v, want > 0", rep.PeakLoss(contract.ClassB))
	}
	// Loss subsides after the incident.
	tail := rep.LossB[len(rep.LossB)-5:]
	if stats.Mean(tail) > 0.05 {
		t.Errorf("loss persists after rollback: %v", stats.Mean(tail))
	}
}

func TestIncidentValidation(t *testing.T) {
	bad := DefaultIncidentOptions()
	bad.LinkCapacity = 0
	if _, err := RunIncident(bad); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestStorageAppHealthyBaseline(t *testing.T) {
	sim := New(Options{Tick: time.Second, Seed: 9})
	link := sim.AddLink("L", 100e9, 10*time.Millisecond)
	hosts := make([]*Host, 4)
	for i := range hosts {
		hosts[i] = sim.AddHost(string(rune('a'+i)), "A", "Cold", contract.C4Low)
		sim.AddFlow(hosts[i], "B", []*Link{link}, 1e9)
	}
	app := NewStorageApp(hosts, DefaultStorageOptions())
	sim.Run(10)
	for i := 0; i < 10; i++ {
		sim.Step()
		tick := app.Step()
		if i > 5 {
			if tick.HealthyHosts != 4 {
				t.Errorf("healthy hosts = %d, want 4", tick.HealthyHosts)
			}
			if tick.ReadFailures != 0 || tick.BlockErrors != 0 {
				t.Errorf("failures on a healthy network: %+v", tick)
			}
			if tick.AvgReadLatency > 2*DefaultStorageOptions().BaseReadLatency {
				t.Errorf("read latency inflated: %v", tick.AvgReadLatency)
			}
		}
	}
}

func TestLatencyUnderLoss(t *testing.T) {
	base := 100 * time.Millisecond
	if got := latencyUnderLoss(base, 0, 3); got != base {
		t.Errorf("zero loss latency = %v", got)
	}
	mid := latencyUnderLoss(base, 0.5, 3)
	if mid <= base {
		t.Errorf("latency under 50%% loss = %v, want > base", mid)
	}
	// Capped at the timeout factor.
	high := latencyUnderLoss(base, 0.999, 3)
	if high > 50*base {
		t.Errorf("latency uncapped: %v", high)
	}
	if got := latencyUnderLoss(base, -1, 3); got != base {
		t.Errorf("negative loss latency = %v", got)
	}
}

func TestDrillMeetsContractSLO(t *testing.T) {
	// The drill's contract carries SLO 0.999; conforming traffic must have
	// been admitted essentially always.
	rep := smallDrill(t, nil)
	avail := rep.MeasuredAvailability(0.01)
	if avail < 0.999 {
		t.Errorf("measured availability = %v, below the 0.999 SLO", avail)
	}
}
