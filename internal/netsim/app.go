package netsim

import (
	"math/rand"
	"time"
)

// StorageOptions configures the application layer modeled after
// Coldstorage (§6.2): remote clients issue reads against the service's
// hosts; writers hold sticky sessions.
type StorageOptions struct {
	ReadsPerTick  int
	WritesPerTick int
	// BaseReadLatency is the no-congestion read latency.
	BaseReadLatency time.Duration
	// BaseWriteLatency is the no-congestion write latency.
	BaseWriteLatency time.Duration
	// FailoverThreshold: clients mark a host unhealthy when its smoothed
	// delivery ratio falls below this ("applications have builtin
	// mechanisms to react to host failures", §5.3).
	FailoverThreshold float64
	// SessionMoveProb is the per-tick probability a write session pinned
	// to an unhealthy host rebinds ("writes are a stateful operation and
	// sessions take some time to move away from affected hosts", §6.2).
	SessionMoveProb float64
	Seed            int64
}

// DefaultStorageOptions returns drill-scale defaults.
func DefaultStorageOptions() StorageOptions {
	return StorageOptions{
		ReadsPerTick:      50,
		WritesPerTick:     20,
		BaseReadLatency:   120 * time.Millisecond,
		BaseWriteLatency:  200 * time.Millisecond,
		FailoverThreshold: 0.6,
		SessionMoveProb:   0.1,
		Seed:              1,
	}
}

// AppTick is one tick of application-level observations — the Figures 15–17
// series.
type AppTick struct {
	AvgReadLatency  time.Duration
	AvgWriteLatency time.Duration
	ReadFailures    int
	BlockErrors     int // failed writes
	HealthyHosts    int
}

// StorageApp models the service layer on top of the simulated hosts.
type StorageApp struct {
	opts  StorageOptions
	hosts []*Host
	rng   *rand.Rand

	health   map[string]float64 // smoothed delivery ratio per host
	sessions []int              // write session → host index
	rrNext   int                // read load-balancer cursor

	Series []AppTick
}

// NewStorageApp attaches an application to the service's hosts.
func NewStorageApp(hosts []*Host, opts StorageOptions) *StorageApp {
	app := &StorageApp{
		opts:   opts,
		hosts:  hosts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		health: make(map[string]float64, len(hosts)),
	}
	for _, h := range hosts {
		app.health[h.ID] = 1
	}
	app.sessions = make([]int, opts.WritesPerTick)
	for i := range app.sessions {
		app.sessions[i] = i % len(hosts)
	}
	return app
}

// hostLoss returns the host's current effective loss: the traffic-weighted
// loss across its flows, or 1.0 when no flow can even establish.
func hostLoss(h *Host) float64 {
	var sent, delivered float64
	established := false
	for _, f := range h.Flows {
		sent += f.lastSent
		delivered += f.lastDelivered
		if f.Established() {
			established = true
		}
	}
	if sent <= 0 {
		if established {
			return 0
		}
		return 1 // connections cannot even form
	}
	return 1 - delivered/sent
}

// latencyUnderLoss models retry-driven latency amplification: expected
// retransmissions under loss d stretch completion by ~d/(1-d), with a
// timeout cap.
func latencyUnderLoss(base time.Duration, d, severity float64) time.Duration {
	if d >= 0.99 {
		d = 0.99
	}
	if d < 0 {
		d = 0
	}
	factor := 1 + severity*d/(1-d)
	const maxFactor = 50
	if factor > maxFactor {
		factor = maxFactor
	}
	return time.Duration(float64(base) * factor)
}

// Step processes one tick of application traffic; call after Sim.Step.
func (a *StorageApp) Step() AppTick {
	// Refresh health views.
	healthy := make([]int, 0, len(a.hosts))
	for i, h := range a.hosts {
		d := hostLoss(h)
		// EWMA with alpha 0.4: failover detection takes a few ticks.
		a.health[h.ID] = 0.4*(1-d) + 0.6*a.health[h.ID]
		if a.health[h.ID] >= a.opts.FailoverThreshold {
			healthy = append(healthy, i)
		}
	}

	var tick AppTick
	tick.HealthyHosts = len(healthy)

	// Reads: load-balanced across hosts believed healthy; the client-side
	// balancer is what converts host-based remarking into clean failover.
	var readLatSum time.Duration
	reads := a.opts.ReadsPerTick
	for r := 0; r < reads; r++ {
		var idx int
		if len(healthy) > 0 {
			idx = healthy[a.rrNext%len(healthy)]
			a.rrNext++
		} else {
			idx = a.rng.Intn(len(a.hosts))
		}
		d := hostLoss(a.hosts[idx])
		if d >= 0.99 {
			tick.ReadFailures++
			readLatSum += latencyUnderLoss(a.opts.BaseReadLatency, d, 3)
			continue
		}
		readLatSum += latencyUnderLoss(a.opts.BaseReadLatency, d, 3)
	}
	if reads > 0 {
		tick.AvgReadLatency = readLatSum / time.Duration(reads)
	}

	// Writes: sticky sessions. A session stays pinned through degraded
	// service (severe write latency even at small loss, Figure 16) and
	// moves only after its connection actually breaks — which is why the
	// block-error peak correlates with SYN failures (Figure 17).
	var writeLatSum time.Duration
	writes := len(a.sessions)
	for si := range a.sessions {
		idx := a.sessions[si]
		d := hostLoss(a.hosts[idx])
		if d >= 0.9 {
			// Connection establishment fails: block error.
			tick.BlockErrors++
			writeLatSum += latencyUnderLoss(a.opts.BaseWriteLatency, d, 5)
			if len(healthy) > 0 && a.rng.Float64() < a.opts.SessionMoveProb {
				a.sessions[si] = healthy[a.rng.Intn(len(healthy))]
			}
			continue
		}
		writeLatSum += latencyUnderLoss(a.opts.BaseWriteLatency, d, 5)
	}
	if writes > 0 {
		tick.AvgWriteLatency = writeLatSum / time.Duration(writes)
	}

	a.Series = append(a.Series, tick)
	return tick
}
