package netsim

import (
	"fmt"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/faults"
	"entitlement/internal/kvstore"
	"entitlement/internal/obs/trace"
	"entitlement/internal/slo"
	"entitlement/internal/topology"
)

// DrillOptions configures the §6 end-to-end enforcement drill: Coldstorage's
// egress entitled rate is reduced, then switch ACLs drop a growing
// percentage (0%, 12.5%, 50%, 100%) of its non-conforming traffic to mimic
// congestion, then everything is rolled back.
type DrillOptions struct {
	Hosts        int     // Coldstorage hosts in the region under test
	FlowsPerHost int     // TCP flows per host
	Demand       float64 // aggregate service demand, bits/s
	Entitled     float64 // reduced egress entitled rate, bits/s
	LinkCapacity float64 // backbone capacity (≥ demand: the ACLs, not the
	// link, produce the drops — as in the paper's methodology)
	StageTicks  int // ticks per drill stage
	AgentPeriod int // agents run every this many ticks
	Policy      enforce.Policy
	// NewMeter builds each agent's meter; default stateful (the drill
	// "uses the stateful host based remarking algorithm").
	NewMeter func() enforce.Meter
	App      StorageOptions
	Tick     time.Duration
	Seed     int64

	// Conformance, when set, turns the drill into an SLO test bench: agents
	// record their per-cycle grant/usage samples into the engine's flight
	// recorder, the simulator records per-tick ground-truth goodput samples
	// (segment "<region>/net"), contract objectives are loaded from the
	// drill database, and the engine is evaluated once per tick on the
	// simulated clock.
	Conformance *slo.Engine
	// Incident, when set, injects a network fault that blackholes a
	// fraction of ALL the drill service's traffic (conforming included) for
	// a tick range — unlike the drill's own NonConformOnly ACL stages, this
	// is a pure network-attributed SLO breach.
	Incident *DrillIncident
	// Spans, when set, receives every agent's per-cycle trace-stamped span —
	// the incident black box's attribution feed.
	Spans slo.SpanSink
	// Tracer, when set, collects every agent's cycle span tree instead of
	// the process-wide default collector — a drill runs hundreds of cycles
	// and callers usually want its traces isolated and queryable.
	Tracer *trace.Collector
	// OnTick, when set, runs after every simulated tick (after conformance
	// evaluation), letting callers sample engine state mid-run.
	OnTick func(tick int)
}

// DrillIncident is an injected network fault: drop DropFraction of every
// drill-service packet, conforming or not, during ticks [StartTick, EndTick).
type DrillIncident struct {
	StartTick    int
	EndTick      int
	DropFraction float64

	// FailAgents, when positive, makes the first N drill agents lose their
	// rate-store and contract-database dependencies for the incident window
	// (drill-clock outage via a faults.Injector), with a staleness budget
	// short enough that they fail open mid-incident — the agent-attribution
	// evidence the black box's envelope must name.
	FailAgents int
	// Topology and LinkID, when Topology is non-nil, mirror the incident
	// into a control-plane topology: LinkID is administratively disabled at
	// StartTick and restored at EndTick, so the mutation journal
	// (DeltaSince) can implicate the blackholed link in the attribution
	// envelope.
	Topology *topology.Topology
	LinkID   int
}

// Active reports whether the incident covers tick.
func (d *DrillIncident) Active(tick int) bool {
	return d != nil && tick >= d.StartTick && tick < d.EndTick
}

// DefaultDrillOptions returns a compressed version of the September-2021
// drill: the paper's O(10k) hosts and ~35-minute stages become 40 hosts and
// configurable stage lengths, preserving every mechanism.
func DefaultDrillOptions() DrillOptions {
	return DrillOptions{
		Hosts:        40,
		FlowsPerHost: 3,
		Demand:       2e12, // 2 Tbps service demand
		Entitled:     1e12, // reduced to 1 Tbps (Figure 12's "entitled rate")
		LinkCapacity: 4e12, // uncongested without ACLs
		StageTicks:   60,
		AgentPeriod:  2,
		Policy:       enforce.HostBased,
		App:          DefaultStorageOptions(),
		Tick:         time.Second,
		Seed:         42,
	}
}

// DrillStage names one phase of the drill and its tick range [Start, End).
type DrillStage struct {
	Name    string
	Start   int
	End     int
	ACLDrop float64 // fraction of non-conforming traffic dropped
}

// DrillReport holds everything the §6 figures are drawn from.
type DrillReport struct {
	Sim      *Sim
	App      *StorageApp
	Stages   []DrillStage
	Entitled []float64 // per-tick entitled rate as enforced
	// ConformRatio is agent 0's decided ratio per tick (0 before the first
	// agent cycle).
	ConformRatio []float64
	Options      DrillOptions

	lastRatio float64 // ratio carried between agent cycles
}

// StageOf returns the stage covering tick i.
func (r *DrillReport) StageOf(i int) *DrillStage {
	for s := range r.Stages {
		if i >= r.Stages[s].Start && i < r.Stages[s].End {
			return &r.Stages[s]
		}
	}
	return nil
}

const (
	drillNPG     = contract.NPG("Coldstorage")
	drillClass   = contract.C4Low
	bgNPG        = contract.NPG("Warmstorage")
	bgClass      = contract.ClassB
	testRegion   = topology.Region("TEST")
	clientRegion = topology.Region("REMOTE")
)

// RunDrill executes the full drill and returns the report.
func RunDrill(opts DrillOptions) (*DrillReport, error) {
	if opts.Hosts <= 0 || opts.FlowsPerHost <= 0 {
		return nil, fmt.Errorf("netsim: drill needs hosts and flows, got %d×%d", opts.Hosts, opts.FlowsPerHost)
	}
	if opts.Demand <= 0 || opts.Entitled <= 0 || opts.LinkCapacity <= 0 {
		return nil, fmt.Errorf("netsim: drill rates must be positive")
	}
	if opts.StageTicks <= 0 {
		opts.StageTicks = 60
	}
	if opts.AgentPeriod <= 0 {
		opts.AgentPeriod = 2
	}
	if opts.NewMeter == nil {
		opts.NewMeter = func() enforce.Meter { return enforce.NewStateful() }
	}
	if opts.Tick <= 0 {
		opts.Tick = time.Second
	}

	sim := New(Options{Tick: opts.Tick, Seed: opts.Seed})
	link := sim.AddLink("TEST->REMOTE", opts.LinkCapacity, 30*time.Millisecond)

	// Contract database: Coldstorage entitled generously at first (no
	// marking), reduced at the drill's start.
	db := contractdb.NewStore()
	putEntitlement := func(rate float64) {
		db.Put(contract.Contract{
			NPG: drillNPG, SLO: 0.999, Approved: true,
			Entitlements: []contract.Entitlement{{
				NPG: drillNPG, Class: drillClass, Region: testRegion,
				Direction: contract.Egress, Rate: rate,
				Start: sim.Now().Add(-time.Hour), End: sim.Now().Add(24 * time.Hour),
			}},
		})
	}
	putEntitlement(opts.Demand * 2)
	// The bystander service holds its own approved contract (and SLO) so
	// the conformance plane can witness it staying conformant while the
	// drill service breaches.
	db.Put(contract.Contract{
		NPG: bgNPG, SLO: 0.999, Approved: true,
		Entitlements: []contract.Entitlement{{
			NPG: bgNPG, Class: bgClass, Region: testRegion,
			Direction: contract.Egress, Rate: opts.LinkCapacity * 0.2,
			Start: sim.Now().Add(-time.Hour), End: sim.Now().Add(24 * time.Hour),
		}},
	})

	rates := kvstore.NewWithClock(sim.Now)

	var rec *slo.Recorder
	if opts.Conformance != nil {
		rec = opts.Conformance.Recorder()
		for npg, obj := range db.Objectives() {
			opts.Conformance.SetObjective(npg, obj)
		}
	}

	// An injected dependency outage for the incident's failing agents,
	// timed on the drill clock to cover the incident window exactly.
	var outage *faults.Injector
	if opts.Incident != nil && opts.Incident.FailAgents > 0 {
		outage = faults.NewInjector(opts.Seed, sim.Now)
		t0 := sim.Now()
		outage.AddOutage(
			t0.Add(time.Duration(opts.Incident.StartTick)*opts.Tick),
			t0.Add(time.Duration(opts.Incident.EndTick)*opts.Tick),
		)
	}

	// Hosts, flows, agents.
	perFlowDemand := opts.Demand / float64(opts.Hosts*opts.FlowsPerHost)
	agents := make([]*enforce.Agent, 0, opts.Hosts)
	for i := 0; i < opts.Hosts; i++ {
		h := sim.AddHost(fmt.Sprintf("cold-%03d", i), testRegion, drillNPG, drillClass)
		for j := 0; j < opts.FlowsPerHost; j++ {
			sim.AddFlow(h, clientRegion, []*Link{link}, perFlowDemand)
		}
		cfg := enforce.AgentConfig{
			Host: h.ID, NPG: drillNPG, Class: drillClass, Region: testRegion,
			DB: db, Rates: rates, Meter: opts.NewMeter(), Prog: h.Prog,
			Policy: opts.Policy, RateTTL: 10 * opts.Tick * time.Duration(opts.AgentPeriod),
			Conformance: rec, Spans: opts.Spans, Tracer: opts.Tracer,
		}
		if outage != nil && i < opts.Incident.FailAgents {
			// This agent loses both dependencies for the incident window and
			// carries a staleness budget of two agent periods, so it walks
			// the full fail-static → fail-open lifecycle mid-incident.
			cfg.DB = &faults.FlakyDB{Inner: db, Inj: outage}
			cfg.Rates = &faults.FlakyRates{Inner: rates, Inj: outage}
			cfg.StalenessBudget = 2 * opts.Tick * time.Duration(opts.AgentPeriod)
		}
		a, err := enforce.NewAgent(cfg)
		if err != nil {
			return nil, err
		}
		agents = append(agents, a)
	}
	// A well-behaved background service shares the link within its
	// entitlement, to witness that conforming traffic is protected.
	bg := sim.AddHost("warm-000", testRegion, bgNPG, bgClass)
	sim.AddFlow(bg, clientRegion, []*Link{link}, opts.LinkCapacity*0.1)

	app := NewStorageApp(sim.Hosts()[:opts.Hosts], opts.App)

	st := opts.StageTicks
	stages := []DrillStage{
		{Name: "baseline", Start: 0, End: st, ACLDrop: 0},
		{Name: "entitlement-reduced", Start: st, End: 2 * st, ACLDrop: 0},
		{Name: "acl-12.5", Start: 2 * st, End: 3 * st, ACLDrop: 0.125},
		{Name: "acl-50", Start: 3 * st, End: 4 * st, ACLDrop: 0.5},
		{Name: "acl-100", Start: 4 * st, End: 5 * st, ACLDrop: 1.0},
		{Name: "rollback", Start: 5 * st, End: 6 * st, ACLDrop: 0},
	}
	report := &DrillReport{Sim: sim, App: app, Stages: stages, Options: opts}

	totalTicks := stages[len(stages)-1].End
	for tick := 0; tick < totalTicks; tick++ {
		// Stage transitions.
		switch tick {
		case stages[1].Start:
			putEntitlement(opts.Entitled) // the drill's entitlement cut
		case stages[5].Start:
			putEntitlement(opts.Demand * 2) // rollback
		}
		// Mirror the incident into the control-plane topology so the
		// mutation journal records the blackholed link at the tick it
		// actually went down (and its restoration).
		if inc := opts.Incident; inc != nil && inc.Topology != nil {
			switch tick {
			case inc.StartTick:
				inc.Topology.SetLinkDisabled(inc.LinkID, true)
			case inc.EndTick:
				inc.Topology.SetLinkDisabled(inc.LinkID, false)
			}
		}
		// ACLs are rebuilt every tick so the stage rule and an injected
		// incident compose (drop fractions stack multiplicatively on the
		// link).
		link.ClearACLs()
		if s := report.StageOf(tick); s != nil && s.ACLDrop > 0 {
			link.AddACL(ACL{NPG: drillNPG, NonConformOnly: true, DropFraction: s.ACLDrop})
		}
		if opts.Incident.Active(tick) {
			link.AddACL(ACL{NPG: drillNPG, DropFraction: opts.Incident.DropFraction})
		}
		// Agents run on their period, using last tick's host measurements.
		if tick%opts.AgentPeriod == 0 {
			for i, a := range agents {
				total, conform := sim.Hosts()[i].EgressRates(opts.Tick)
				rep, err := a.Cycle(sim.Now(), total, conform)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					report.lastRatio = rep.ConformRatio
				}
			}
		}
		sim.Step()
		app.Step()
		entitled, _, _ := db.EntitledRate(drillNPG, drillClass, testRegion, contract.Egress, sim.Now())
		report.Entitled = append(report.Entitled, entitled)
		report.ConformRatio = append(report.ConformRatio, report.lastRatio)
		if opts.Conformance != nil {
			bgEntitled, _, _ := db.EntitledRate(bgNPG, bgClass, testRegion, contract.Egress, sim.Now())
			recordGroundTruth(opts.Conformance, sim, drillNPG, drillClass, entitled)
			recordGroundTruth(opts.Conformance, sim, bgNPG, bgClass, bgEntitled)
			opts.Conformance.Evaluate(sim.Now())
		}
		if opts.OnTick != nil {
			opts.OnTick(tick)
		}
	}
	return report, nil
}

// recordGroundTruth emits one network-ground-truth SLO sample for npg: the
// conforming goodput the fabric actually delivered versus what conforming
// senders offered. The shortfall goes in Sample.Throttled — in-contract
// traffic the network failed to carry, the §3.3 network-attributed
// quantity — while demand beyond the entitlement goes in Overage
// (service-attributed).
func recordGroundTruth(eng *slo.Engine, sim *Sim, npg contract.NPG, class contract.Class, entitled float64) {
	series := sim.Metrics.NPGSeries(npg)
	if len(series) == 0 {
		return
	}
	nt := series[len(series)-1]
	throttled := nt.ConformRate - nt.ConformDeliveredRate
	if throttled < 0 {
		throttled = 0
	}
	over := nt.TotalRate - entitled
	if over < 0 {
		over = 0
	}
	eng.Record(slo.Key{
		Contract: string(npg),
		Segment:  string(testRegion) + "/net",
		Class:    class.String(),
	}, slo.Sample{
		At:        sim.Now(),
		Granted:   entitled,
		Used:      nt.ConformDeliveredRate,
		Throttled: throttled,
		Overage:   over,
	})
}

// ServiceRates returns the drill service's per-tick total and conforming
// rates plus the entitled rate — the Figure 12 triple.
func (r *DrillReport) ServiceRates() (total, conform, entitled []float64) {
	series := r.Sim.Metrics.NPGSeries(drillNPG)
	total = make([]float64, len(series))
	conform = make([]float64, len(series))
	for i, s := range series {
		total[i] = s.TotalRate
		conform[i] = s.ConformRate
	}
	return total, conform, r.Entitled
}

// LossSeries returns per-tick loss ratios for conforming and non-conforming
// drill traffic — the Figure 11 pair.
func (r *DrillReport) LossSeries() (conforming, nonConforming []float64) {
	conf := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	non := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: false})
	conforming = make([]float64, len(conf))
	for i, ts := range conf {
		conforming[i] = ts.LossRatio
	}
	nonConforming = make([]float64, len(non))
	for i, ts := range non {
		nonConforming[i] = ts.LossRatio
	}
	return conforming, nonConforming
}

// RTTSeries returns per-tick average RTTs (seconds) for conforming and
// non-conforming drill traffic — Figure 13.
func (r *DrillReport) RTTSeries() (conforming, nonConforming []float64) {
	conf := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	non := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: false})
	conforming = make([]float64, len(conf))
	for i, ts := range conf {
		conforming[i] = ts.AvgRTT.Seconds()
	}
	nonConforming = make([]float64, len(non))
	for i, ts := range non {
		nonConforming[i] = ts.AvgRTT.Seconds()
	}
	return conforming, nonConforming
}

// SYNSeries returns per-tick SYN attempts for conforming and non-conforming
// drill traffic — Figure 14.
func (r *DrillReport) SYNSeries() (conforming, nonConforming []int) {
	conf := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	non := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: false})
	conforming = make([]int, len(conf))
	for i, ts := range conf {
		conforming[i] = ts.SynSent
	}
	nonConforming = make([]int, len(non))
	for i, ts := range non {
		nonConforming[i] = ts.SynSent
	}
	return conforming, nonConforming
}

// MeasuredAvailability returns the drill service's achieved availability for
// conforming traffic: the fraction of ticks (with conforming traffic
// present) whose conforming loss stayed below lossThreshold. The entitlement
// contract's SLO is judged against this (§1: uptime requires all traffic to
// be admitted).
func (r *DrillReport) MeasuredAvailability(lossThreshold float64) float64 {
	series := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	var tracker contract.UptimeTracker
	for _, ts := range series {
		if ts.SentRate <= 0 {
			continue
		}
		tracker.Record(ts.LossRatio < lossThreshold)
	}
	return tracker.Availability()
}
