package netsim

import (
	"fmt"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/kvstore"
	"entitlement/internal/topology"
)

// DrillOptions configures the §6 end-to-end enforcement drill: Coldstorage's
// egress entitled rate is reduced, then switch ACLs drop a growing
// percentage (0%, 12.5%, 50%, 100%) of its non-conforming traffic to mimic
// congestion, then everything is rolled back.
type DrillOptions struct {
	Hosts        int     // Coldstorage hosts in the region under test
	FlowsPerHost int     // TCP flows per host
	Demand       float64 // aggregate service demand, bits/s
	Entitled     float64 // reduced egress entitled rate, bits/s
	LinkCapacity float64 // backbone capacity (≥ demand: the ACLs, not the
	// link, produce the drops — as in the paper's methodology)
	StageTicks  int // ticks per drill stage
	AgentPeriod int // agents run every this many ticks
	Policy      enforce.Policy
	// NewMeter builds each agent's meter; default stateful (the drill
	// "uses the stateful host based remarking algorithm").
	NewMeter func() enforce.Meter
	App      StorageOptions
	Tick     time.Duration
	Seed     int64
}

// DefaultDrillOptions returns a compressed version of the September-2021
// drill: the paper's O(10k) hosts and ~35-minute stages become 40 hosts and
// configurable stage lengths, preserving every mechanism.
func DefaultDrillOptions() DrillOptions {
	return DrillOptions{
		Hosts:        40,
		FlowsPerHost: 3,
		Demand:       2e12, // 2 Tbps service demand
		Entitled:     1e12, // reduced to 1 Tbps (Figure 12's "entitled rate")
		LinkCapacity: 4e12, // uncongested without ACLs
		StageTicks:   60,
		AgentPeriod:  2,
		Policy:       enforce.HostBased,
		App:          DefaultStorageOptions(),
		Tick:         time.Second,
		Seed:         42,
	}
}

// DrillStage names one phase of the drill and its tick range [Start, End).
type DrillStage struct {
	Name    string
	Start   int
	End     int
	ACLDrop float64 // fraction of non-conforming traffic dropped
}

// DrillReport holds everything the §6 figures are drawn from.
type DrillReport struct {
	Sim      *Sim
	App      *StorageApp
	Stages   []DrillStage
	Entitled []float64 // per-tick entitled rate as enforced
	// ConformRatio is agent 0's decided ratio per tick (0 before the first
	// agent cycle).
	ConformRatio []float64
	Options      DrillOptions

	lastRatio float64 // ratio carried between agent cycles
}

// StageOf returns the stage covering tick i.
func (r *DrillReport) StageOf(i int) *DrillStage {
	for s := range r.Stages {
		if i >= r.Stages[s].Start && i < r.Stages[s].End {
			return &r.Stages[s]
		}
	}
	return nil
}

const (
	drillNPG     = contract.NPG("Coldstorage")
	drillClass   = contract.C4Low
	testRegion   = topology.Region("TEST")
	clientRegion = topology.Region("REMOTE")
)

// RunDrill executes the full drill and returns the report.
func RunDrill(opts DrillOptions) (*DrillReport, error) {
	if opts.Hosts <= 0 || opts.FlowsPerHost <= 0 {
		return nil, fmt.Errorf("netsim: drill needs hosts and flows, got %d×%d", opts.Hosts, opts.FlowsPerHost)
	}
	if opts.Demand <= 0 || opts.Entitled <= 0 || opts.LinkCapacity <= 0 {
		return nil, fmt.Errorf("netsim: drill rates must be positive")
	}
	if opts.StageTicks <= 0 {
		opts.StageTicks = 60
	}
	if opts.AgentPeriod <= 0 {
		opts.AgentPeriod = 2
	}
	if opts.NewMeter == nil {
		opts.NewMeter = func() enforce.Meter { return enforce.NewStateful() }
	}
	if opts.Tick <= 0 {
		opts.Tick = time.Second
	}

	sim := New(Options{Tick: opts.Tick, Seed: opts.Seed})
	link := sim.AddLink("TEST->REMOTE", opts.LinkCapacity, 30*time.Millisecond)

	// Contract database: Coldstorage entitled generously at first (no
	// marking), reduced at the drill's start.
	db := contractdb.NewStore()
	putEntitlement := func(rate float64) {
		db.Put(contract.Contract{
			NPG: drillNPG, SLO: 0.999, Approved: true,
			Entitlements: []contract.Entitlement{{
				NPG: drillNPG, Class: drillClass, Region: testRegion,
				Direction: contract.Egress, Rate: rate,
				Start: sim.Now().Add(-time.Hour), End: sim.Now().Add(24 * time.Hour),
			}},
		})
	}
	putEntitlement(opts.Demand * 2)

	rates := kvstore.NewWithClock(sim.Now)

	// Hosts, flows, agents.
	perFlowDemand := opts.Demand / float64(opts.Hosts*opts.FlowsPerHost)
	agents := make([]*enforce.Agent, 0, opts.Hosts)
	for i := 0; i < opts.Hosts; i++ {
		h := sim.AddHost(fmt.Sprintf("cold-%03d", i), testRegion, drillNPG, drillClass)
		for j := 0; j < opts.FlowsPerHost; j++ {
			sim.AddFlow(h, clientRegion, []*Link{link}, perFlowDemand)
		}
		a, err := enforce.NewAgent(enforce.AgentConfig{
			Host: h.ID, NPG: drillNPG, Class: drillClass, Region: testRegion,
			DB: db, Rates: rates, Meter: opts.NewMeter(), Prog: h.Prog,
			Policy: opts.Policy, RateTTL: 10 * opts.Tick * time.Duration(opts.AgentPeriod),
		})
		if err != nil {
			return nil, err
		}
		agents = append(agents, a)
	}
	// A well-behaved background service shares the link within its
	// entitlement, to witness that conforming traffic is protected.
	bg := sim.AddHost("warm-000", testRegion, "Warmstorage", contract.ClassB)
	sim.AddFlow(bg, clientRegion, []*Link{link}, opts.LinkCapacity*0.1)

	app := NewStorageApp(sim.Hosts()[:opts.Hosts], opts.App)

	st := opts.StageTicks
	stages := []DrillStage{
		{Name: "baseline", Start: 0, End: st, ACLDrop: 0},
		{Name: "entitlement-reduced", Start: st, End: 2 * st, ACLDrop: 0},
		{Name: "acl-12.5", Start: 2 * st, End: 3 * st, ACLDrop: 0.125},
		{Name: "acl-50", Start: 3 * st, End: 4 * st, ACLDrop: 0.5},
		{Name: "acl-100", Start: 4 * st, End: 5 * st, ACLDrop: 1.0},
		{Name: "rollback", Start: 5 * st, End: 6 * st, ACLDrop: 0},
	}
	report := &DrillReport{Sim: sim, App: app, Stages: stages, Options: opts}

	totalTicks := stages[len(stages)-1].End
	for tick := 0; tick < totalTicks; tick++ {
		// Stage transitions.
		switch tick {
		case stages[1].Start:
			putEntitlement(opts.Entitled) // the drill's entitlement cut
		case stages[2].Start, stages[3].Start, stages[4].Start:
			link.ClearACLs()
			link.AddACL(ACL{NPG: drillNPG, NonConformOnly: true, DropFraction: report.StageOf(tick).ACLDrop})
		case stages[5].Start:
			link.ClearACLs()
			putEntitlement(opts.Demand * 2) // rollback
		}
		// Agents run on their period, using last tick's host measurements.
		if tick%opts.AgentPeriod == 0 {
			for i, a := range agents {
				total, conform := sim.Hosts()[i].EgressRates(opts.Tick)
				rep, err := a.Cycle(sim.Now(), total, conform)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					report.lastRatio = rep.ConformRatio
				}
			}
		}
		sim.Step()
		app.Step()
		entitled, _, _ := db.EntitledRate(drillNPG, drillClass, testRegion, contract.Egress, sim.Now())
		report.Entitled = append(report.Entitled, entitled)
		report.ConformRatio = append(report.ConformRatio, report.lastRatio)
	}
	return report, nil
}

// ServiceRates returns the drill service's per-tick total and conforming
// rates plus the entitled rate — the Figure 12 triple.
func (r *DrillReport) ServiceRates() (total, conform, entitled []float64) {
	series := r.Sim.Metrics.NPGSeries(drillNPG)
	total = make([]float64, len(series))
	conform = make([]float64, len(series))
	for i, s := range series {
		total[i] = s.TotalRate
		conform[i] = s.ConformRate
	}
	return total, conform, r.Entitled
}

// LossSeries returns per-tick loss ratios for conforming and non-conforming
// drill traffic — the Figure 11 pair.
func (r *DrillReport) LossSeries() (conforming, nonConforming []float64) {
	conf := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	non := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: false})
	conforming = make([]float64, len(conf))
	for i, ts := range conf {
		conforming[i] = ts.LossRatio
	}
	nonConforming = make([]float64, len(non))
	for i, ts := range non {
		nonConforming[i] = ts.LossRatio
	}
	return conforming, nonConforming
}

// RTTSeries returns per-tick average RTTs (seconds) for conforming and
// non-conforming drill traffic — Figure 13.
func (r *DrillReport) RTTSeries() (conforming, nonConforming []float64) {
	conf := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	non := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: false})
	conforming = make([]float64, len(conf))
	for i, ts := range conf {
		conforming[i] = ts.AvgRTT.Seconds()
	}
	nonConforming = make([]float64, len(non))
	for i, ts := range non {
		nonConforming[i] = ts.AvgRTT.Seconds()
	}
	return conforming, nonConforming
}

// SYNSeries returns per-tick SYN attempts for conforming and non-conforming
// drill traffic — Figure 14.
func (r *DrillReport) SYNSeries() (conforming, nonConforming []int) {
	conf := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	non := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: false})
	conforming = make([]int, len(conf))
	for i, ts := range conf {
		conforming[i] = ts.SynSent
	}
	nonConforming = make([]int, len(non))
	for i, ts := range non {
		nonConforming[i] = ts.SynSent
	}
	return conforming, nonConforming
}

// MeasuredAvailability returns the drill service's achieved availability for
// conforming traffic: the fraction of ticks (with conforming traffic
// present) whose conforming loss stayed below lossThreshold. The entitlement
// contract's SLO is judged against this (§1: uptime requires all traffic to
// be admitted).
func (r *DrillReport) MeasuredAvailability(lossThreshold float64) float64 {
	series := r.Sim.Metrics.Series(GroupKey{Class: drillClass, Conforming: true})
	var tracker contract.UptimeTracker
	for _, ts := range series {
		if ts.SentRate <= 0 {
			continue
		}
		tracker.Record(ts.LossRatio < lossThreshold)
	}
	return tracker.Availability()
}
