package netsim

import (
	"fmt"
	"time"

	"entitlement/internal/contract"
	"entitlement/internal/topology"
)

// IncidentOptions configures the §2.2 misbehaving-service reproduction:
// a buggy client release multiplies a service's traffic, the spike forming
// within minutes and peaking well above the predicted volume (Figure 4),
// inducing loss on well-behaved services in the same QoS classes despite
// inter-class isolation (Figure 5).
type IncidentOptions struct {
	LinkCapacity float64 // bits/s; sized so the spike congests the link
	// VictimRateA / VictimRateB: well-behaved demand in classes A and B.
	VictimRateA float64
	VictimRateB float64
	// CulpritRate is the misbehaving service's pre-incident demand (split
	// across classes A and B like a real service with mixed traffic).
	CulpritRate float64
	// SpikeMagnitude is the fractional increase at peak (0.5 = +50%, §2.2).
	SpikeMagnitude float64
	RampTicks      int // ticks for the spike to form (≈3 minutes)
	WarmupTicks    int
	SpikeTicks     int
	CooldownTicks  int
	Tick           time.Duration
	Seed           int64
}

// DefaultIncidentOptions sizes the scenario so the pre-incident load fits
// the link with slim headroom, as §2.2's incidents found production.
func DefaultIncidentOptions() IncidentOptions {
	return IncidentOptions{
		LinkCapacity:   10e12,
		VictimRateA:    2.5e12,
		VictimRateB:    3.6e12,
		CulpritRate:    3.5e12,
		SpikeMagnitude: 0.5,
		RampTicks:      18, // 3 minutes at 10s ticks
		WarmupTicks:    30,
		SpikeTicks:     60,
		CooldownTicks:  30,
		Tick:           10 * time.Second,
		Seed:           7,
	}
}

// IncidentReport carries the Figure 4/5 series.
type IncidentReport struct {
	Sim *Sim
	// CulpritRate is the misbehaving service's offered rate per tick; the
	// Predicted series is its pre-incident level (Figure 4's dashed line).
	CulpritRate []float64
	Predicted   []float64
	// LossA / LossB: network-wide loss ratio of each QoS class per tick
	// (victims and culprit combined, as Figure 5 plots class totals).
	LossA []float64
	LossB []float64
	// SpikeStart/SpikeEnd are tick indexes of the incident window.
	SpikeStart, SpikeEnd int
}

// RunIncident reproduces the incident. There is no entitlement enforcement:
// the scenario demonstrates the world before the system was deployed, where
// QoS isolation alone "cannot safeguard well-behaved services from
// misbehaving ones within the same class".
func RunIncident(opts IncidentOptions) (*IncidentReport, error) {
	if opts.LinkCapacity <= 0 || opts.CulpritRate <= 0 {
		return nil, fmt.Errorf("netsim: incident rates must be positive")
	}
	if opts.Tick <= 0 {
		opts.Tick = 10 * time.Second
	}
	sim := New(Options{Tick: opts.Tick, Seed: opts.Seed})
	link := sim.AddLink("REGION->WAN", opts.LinkCapacity, 25*time.Millisecond)
	wan := topology.Region("WAN")
	region := topology.Region("SRC")

	mkService := func(name contract.NPG, class contract.Class, rate float64, hosts int) []*Flow {
		flows := make([]*Flow, 0, hosts)
		for i := 0; i < hosts; i++ {
			h := sim.AddHost(fmt.Sprintf("%s-%02d", name, i), region, name, class)
			flows = append(flows, sim.AddFlow(h, wan, []*Link{link}, rate/float64(hosts)))
		}
		return flows
	}
	mkService("victimA", contract.ClassA, opts.VictimRateA, 8)
	mkService("victimB", contract.ClassB, opts.VictimRateB, 8)
	// The culprit is user-facing video: most traffic in class A plus bulk
	// prefetch in B (§2.1: services span classes, and §2.2's incident hit
	// both of its classes). The A-heavy mix is what makes class A lose
	// MORE than class B during the spike — Figure 5's 8% vs 2% ordering —
	// once both classes exceed their scheduler shares.
	culpritA := mkService("video", contract.ClassA, opts.CulpritRate*0.85, 6)
	culpritB := mkService("video", contract.ClassB, opts.CulpritRate*0.15, 6)
	culpritFlows := append(append([]*Flow{}, culpritA...), culpritB...)
	baseDemand := make([]float64, len(culpritFlows))
	for i, f := range culpritFlows {
		baseDemand[i] = f.Demand
	}

	report := &IncidentReport{Sim: sim}
	report.SpikeStart = opts.WarmupTicks
	report.SpikeEnd = opts.WarmupTicks + opts.SpikeTicks

	total := opts.WarmupTicks + opts.SpikeTicks + opts.CooldownTicks
	for tick := 0; tick < total; tick++ {
		// Drive the culprit's demand through the incident profile.
		mult := 1.0
		switch {
		case tick >= report.SpikeStart && tick < report.SpikeStart+opts.RampTicks:
			mult = 1 + opts.SpikeMagnitude*float64(tick-report.SpikeStart)/float64(opts.RampTicks)
		case tick >= report.SpikeStart+opts.RampTicks && tick < report.SpikeEnd:
			mult = 1 + opts.SpikeMagnitude
		}
		for i, f := range culpritFlows {
			f.Demand = baseDemand[i] * mult
		}
		sim.Step()

		series := sim.Metrics.NPGSeries("video")
		report.CulpritRate = append(report.CulpritRate, series[len(series)-1].TotalRate)
		report.Predicted = append(report.Predicted, opts.CulpritRate)
		report.LossA = append(report.LossA, classLoss(sim.Metrics, contract.ClassA))
		report.LossB = append(report.LossB, classLoss(sim.Metrics, contract.ClassB))
	}
	return report, nil
}

// classLoss returns the latest tick's loss ratio across a class's traffic
// (conforming and non-conforming combined; the incident predates marking so
// everything is conforming).
func classLoss(m *Metrics, class contract.Class) float64 {
	var sent, lost float64
	for _, conforming := range []bool{true, false} {
		series := m.Series(GroupKey{Class: class, Conforming: conforming})
		if len(series) == 0 {
			continue
		}
		ts := series[len(series)-1]
		sent += ts.SentRate
		lost += ts.SentRate * ts.LossRatio
	}
	if sent == 0 {
		return 0
	}
	return lost / sent
}

// PeakLoss returns the maximum loss ratio a class saw during the incident.
func (r *IncidentReport) PeakLoss(class contract.Class) float64 {
	series := r.LossA
	if class == contract.ClassB {
		series = r.LossB
	}
	peak := 0.0
	for _, v := range series {
		if v > peak {
			peak = v
		}
	}
	return peak
}
