// Package netsim is the synthetic WAN testbed the enforcement system is
// evaluated on, substituting for Meta's production backbone in §6's drill
// tests. It is a time-stepped fluid simulator with:
//
//   - capacity-limited links carrying eight strict-priority queues mapped
//     from packet DSCP, non-conforming traffic landing in the lowest
//     priority queue (§5.1);
//   - ACL rules that drop a configurable fraction of matching traffic,
//     mimicking congestion exactly the way the September-2021 drill did;
//   - hosts running the emulated BPF egress classifier, TCP-like flows with
//     SYN establishment, additive-increase/multiplicative-decrease rate
//     adaptation and retransmit accounting;
//   - per-tick network metrics (loss, rate, RTT, TCP stats) split by
//     conforming/non-conforming traffic — the §6.1 observables.
//
// The application layer (storage reads/writes with failover) lives in
// app.go; scenario runners for the drill and the §2.2 incidents live in
// drill.go and incident.go.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/topology"
)

// numQueues is eight class queues plus the non-conforming scavenger queue.
const numQueues = 9

// nonConformQueue is the lowest-priority queue index.
const nonConformQueue = numQueues - 1

// queueIndex maps a DSCP to its switch queue. Class DSCPs map to their
// class's queue; the non-conforming DSCP (and anything unknown) goes to the
// scavenger queue.
func queueIndex(dscp uint8) int {
	if dscp == bpf.NonConformDSCP {
		return nonConformQueue
	}
	for _, c := range contract.Classes() {
		if bpf.DSCPForClass(c) == dscp {
			return int(c)
		}
	}
	return nonConformQueue
}

// ACL is a switch rule dropping a fraction of matching traffic — the §6
// drill installs these "to mimic congestion".
type ACL struct {
	// NPG limits the rule to one service ("" matches all).
	NPG contract.NPG
	// NonConformOnly limits the rule to remarked traffic.
	NonConformOnly bool
	// DropFraction in [0, 1].
	DropFraction float64
}

// Link is one capacity-limited hop with strict-priority queues.
type Link struct {
	Name     string
	Capacity float64 // bits per second
	BaseRTT  time.Duration

	acls []ACL

	// Per-tick scratch state.
	offered  [numQueues]float64 // bits offered this tick
	fraction [numQueues]float64 // delivered fraction after serving
	delay    [numQueues]float64 // queuing delay (seconds) per queue
}

// AddACL installs a drop rule.
func (l *Link) AddACL(a ACL) { l.acls = append(l.acls, a) }

// ClearACLs removes all rules (the drill's rollback step).
func (l *Link) ClearACLs() { l.acls = nil }

func (l *Link) aclDropFraction(npg contract.NPG, nonConforming bool) float64 {
	pass := 1.0
	for _, a := range l.acls {
		if a.NPG != "" && a.NPG != npg {
			continue
		}
		if a.NonConformOnly && !nonConforming {
			continue
		}
		pass *= 1 - a.DropFraction
	}
	return 1 - pass
}

// flowState tracks TCP-like connection establishment.
type flowState int

const (
	stateSynSent flowState = iota
	stateEstablished
)

// Flow is one TCP-like aggregate from a host toward a destination region.
type Flow struct {
	ID     uint64
	Host   *Host
	Dst    topology.Region
	Path   []*Link
	Demand float64 // target rate, bits/s

	state      flowState
	rate       float64
	synBackoff int
	synStreak  int // consecutive failures, reset on establishment
	hash       uint32

	// Per-tick observations (refreshed every tick).
	lastConforming bool
	lastSent       float64 // bits
	lastDelivered  float64
	lastLossFrac   float64
	lastRTT        float64 // seconds

	// Cumulative counters.
	SentBits      float64
	DeliveredBits float64
	LostBits      float64
	SynSentCount  int
	SynFailed     int
	Retransmits   int
}

// Established reports whether the connection handshake completed.
func (f *Flow) Established() bool { return f.state == stateEstablished }

// DeliveredFraction returns the flow's delivery ratio over its lifetime.
func (f *Flow) DeliveredFraction() float64 {
	if f.SentBits == 0 {
		return 1
	}
	return f.DeliveredBits / f.SentBits
}

// LastLoss returns the previous tick's loss fraction.
func (f *Flow) LastLoss() float64 { return f.lastLossFrac }

// LastRTT returns the previous tick's RTT estimate.
func (f *Flow) LastRTT() time.Duration { return time.Duration(f.lastRTT * float64(time.Second)) }

// LastConforming reports whether the flow's traffic was conforming last tick.
func (f *Flow) LastConforming() bool { return f.lastConforming }

// Host is a server running the BPF egress classifier.
type Host struct {
	ID     string
	Region topology.Region
	NPG    contract.NPG
	Class  contract.Class
	Prog   *bpf.Program
	Flows  []*Flow
}

// EgressRates returns the host's (total, conforming) egress bits/s from the
// last tick — the local measurements an enforcement agent feeds its Cycle.
func (h *Host) EgressRates(tick time.Duration) (total, conform float64) {
	dt := tick.Seconds()
	for _, f := range h.Flows {
		total += f.lastSent / dt
		if f.lastConforming {
			conform += f.lastSent / dt
		}
	}
	return total, conform
}

// Options configures a simulation.
type Options struct {
	Tick  time.Duration // default 1s
	Start time.Time     // default 2026-01-01
	Seed  int64
}

// Sim is the simulator instance.
type Sim struct {
	opts  Options
	links []*Link
	hosts []*Host
	flows []*Flow
	rng   *rand.Rand

	tickIndex int
	nextFlow  uint64

	Metrics *Metrics
}

// New creates an empty simulation.
func New(opts Options) *Sim {
	if opts.Tick <= 0 {
		opts.Tick = time.Second
	}
	if opts.Start.IsZero() {
		opts.Start = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Sim{
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		Metrics: newMetrics(opts.Tick),
	}
}

// Tick returns the simulation step.
func (s *Sim) Tick() time.Duration { return s.opts.Tick }

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	return s.opts.Start.Add(time.Duration(s.tickIndex) * s.opts.Tick)
}

// TickIndex returns the number of completed ticks.
func (s *Sim) TickIndex() int { return s.tickIndex }

// AddLink registers a link.
func (s *Sim) AddLink(name string, capacity float64, baseRTT time.Duration) *Link {
	l := &Link{Name: name, Capacity: capacity, BaseRTT: baseRTT}
	s.links = append(s.links, l)
	return l
}

// AddHost registers a host with its own BPF program and action map.
func (s *Sim) AddHost(id string, region topology.Region, npg contract.NPG, class contract.Class) *Host {
	h := &Host{
		ID: id, Region: region, NPG: npg, Class: class,
		Prog: bpf.NewProgram(bpf.NewMap()),
	}
	s.hosts = append(s.hosts, h)
	return h
}

// AddFlow creates a flow from host toward dst over the given links.
func (s *Sim) AddFlow(h *Host, dst topology.Region, path []*Link, demand float64) *Flow {
	s.nextFlow++
	f := &Flow{
		ID: s.nextFlow, Host: h, Dst: dst, Path: path, Demand: demand,
		state: stateSynSent,
		rate:  demand * 0.1, // slow start stand-in
		hash:  s.rng.Uint32(),
	}
	if f.rate <= 0 {
		f.rate = 1
	}
	h.Flows = append(h.Flows, f)
	s.flows = append(s.flows, f)
	return f
}

// Hosts returns the registered hosts.
func (s *Sim) Hosts() []*Host { return s.hosts }

// Flows returns the registered flows.
func (s *Sim) Flows() []*Flow { return s.flows }

// synBits approximates a handshake packet.
const synBits = 64 * 8

// Step advances the simulation one tick: classify, offer, serve, adapt.
func (s *Sim) Step() {
	dt := s.opts.Tick.Seconds()
	// Reset link scratch.
	for _, l := range s.links {
		for q := range l.offered {
			l.offered[q] = 0
		}
	}
	type attempt struct {
		flow       *Flow
		queue      int
		bits       float64 // post-ACL offered bits
		aclDropped float64
		conforming bool
		isSyn      bool
	}
	attempts := make([]attempt, 0, len(s.flows))

	for _, f := range s.flows {
		if f.Demand <= 0 {
			f.lastSent, f.lastDelivered, f.lastLossFrac = 0, 0, 0
			continue
		}
		// Classify via the host's egress program, exactly once per tick:
		// the fluid model treats the tick's bits as one packet burst.
		pkt := bpf.Packet{
			NPG: f.Host.NPG, Class: f.Host.Class, Region: f.Host.Region,
			Host: f.Host.ID, FlowHash: f.hash,
			DSCP: bpf.DSCPForClass(f.Host.Class), Bytes: int(f.rate * dt / 8),
		}
		out := f.Host.Prog.Egress(pkt)
		conforming := !bpf.IsNonConforming(out)
		queue := queueIndex(out.DSCP)

		var bits float64
		isSyn := false
		if f.state == stateSynSent {
			if f.synBackoff > 0 {
				f.synBackoff--
				f.lastSent, f.lastDelivered, f.lastLossFrac = 0, 0, 0
				f.lastConforming = conforming
				continue
			}
			bits = synBits
			isSyn = true
			f.SynSentCount++
		} else {
			bits = f.rate * dt
		}

		// ACL drops are applied per link multiplicatively up front (the
		// fluid equivalent of dropping on ingress match).
		pass := 1.0
		for _, l := range f.Path {
			pass *= 1 - l.aclDropFraction(f.Host.NPG, !conforming)
		}
		offered := bits * pass
		for _, l := range f.Path {
			l.offered[queue] += offered
		}
		attempts = append(attempts, attempt{
			flow: f, queue: queue, bits: offered,
			aclDropped: bits - offered, conforming: conforming, isSyn: isSyn,
		})
		f.lastConforming = conforming
		f.lastSent = bits
	}

	// Serve every link: class queues share capacity by weighted max-min
	// (production switches give each QoS class a guaranteed scheduler
	// weight), and the non-conforming scavenger queue is strictly last —
	// the §5.1 property that remarked traffic "will be impacted before the
	// conforming traffic".
	for _, l := range s.links {
		capacity := l.Capacity * dt
		served := serveWeighted(l.offered[:nonConformQueue], classWeights[:], capacity)
		usedByClasses := 0.0
		for q := 0; q < nonConformQueue; q++ {
			if l.offered[q] > 0 {
				l.fraction[q] = served[q] / l.offered[q]
			} else {
				l.fraction[q] = 1
			}
			usedByClasses += served[q]
		}
		leftover := capacity - usedByClasses
		scav := l.offered[nonConformQueue]
		scavServed := scav
		if scavServed > leftover {
			scavServed = leftover
		}
		if scav > 0 {
			l.fraction[nonConformQueue] = scavServed / scav
		} else {
			l.fraction[nonConformQueue] = 1
		}
		// Queuing delay: time to drain the backlog at or above each
		// priority level, bounded by one tick of buffering.
		backlog := 0.0
		for q := 0; q < nonConformQueue; q++ {
			backlog += l.offered[q] - served[q]
			l.delay[q] = backlog / l.Capacity
			if l.delay[q] > dt {
				l.delay[q] = dt
			}
		}
		backlog += scav - scavServed
		l.delay[nonConformQueue] = backlog / l.Capacity
		if l.delay[nonConformQueue] > dt {
			l.delay[nonConformQueue] = dt
		}
	}

	// Resolve per-flow outcomes and adapt rates.
	for _, a := range attempts {
		f := a.flow
		frac := 1.0
		rtt := 0.0
		for _, l := range f.Path {
			frac *= l.fraction[a.queue]
			rtt += l.BaseRTT.Seconds() + l.delay[a.queue]
		}
		delivered := a.bits * frac
		lost := f.lastSent - delivered // includes ACL drops
		f.lastDelivered = delivered
		if f.lastSent > 0 {
			f.lastLossFrac = lost / f.lastSent
		} else {
			f.lastLossFrac = 0
		}
		// Retransmission delay inflates the measured RTT under partial loss;
		// at (near-)total loss no ACKs return, so no RTT sample exists.
		if !a.isSyn && f.lastLossFrac > 0.005 && f.lastLossFrac < 0.95 {
			rtt += f.lastLossFrac * 0.05
		}
		f.lastRTT = rtt
		f.SentBits += f.lastSent
		f.DeliveredBits += delivered
		f.LostBits += lost

		if a.isSyn {
			// Handshake succeeds with the queue's delivery probability.
			if s.rng.Float64() < frac && a.aclDropped == 0 {
				f.state = stateEstablished
				f.rate = f.Demand * 0.25
				f.synStreak = 0
			} else {
				f.SynFailed++
				f.synStreak++
				f.synBackoff = minInt(1<<uint(minInt(f.synStreak, 3)), 8)
			}
			continue
		}
		// AIMD adaptation.
		if f.lastLossFrac > 0.005 {
			f.Retransmits++
			f.rate *= 1 - 0.5*f.lastLossFrac
			if f.rate < f.Demand*0.01 {
				f.rate = f.Demand * 0.01
			}
			// Heavy persistent loss tears the connection down and forces a
			// new handshake — the drill's 100%-drop stage produces SYN
			// storms this way (Figure 14).
			if f.lastLossFrac > 0.95 {
				f.state = stateSynSent
				f.synBackoff = 1
			}
		} else {
			f.rate += 0.25 * (f.Demand - f.rate)
			if f.rate > f.Demand {
				f.rate = f.Demand
			}
		}
	}

	s.Metrics.record(s.flows, s.opts.Tick)
	s.tickIndex++
}

// classWeights are the WRR scheduler weights of the eight class queues,
// descending with priority. They only matter under contention; idle shares
// redistribute to busy queues.
var classWeights = [nonConformQueue]float64{32, 28, 24, 20, 16, 12, 8, 4}

// serveWeighted allocates capacity to queues by weighted max-min fairness:
// repeatedly grant each unsatisfied queue its weight-proportional share of
// the remaining capacity, freeing unused shares for the others.
func serveWeighted(offered []float64, weights []float64, capacity float64) []float64 {
	served := make([]float64, len(offered))
	remaining := capacity
	unsatisfied := make([]bool, len(offered))
	for q := range offered {
		unsatisfied[q] = offered[q] > 0
	}
	for iter := 0; iter < len(offered)+1 && remaining > 1e-9; iter++ {
		wSum := 0.0
		for q, u := range unsatisfied {
			if u {
				wSum += weights[q]
			}
		}
		if wSum == 0 {
			break
		}
		progress := false
		granted := 0.0
		for q, u := range unsatisfied {
			if !u {
				continue
			}
			share := remaining * weights[q] / wSum
			need := offered[q] - served[q]
			if need <= share {
				served[q] += need
				granted += need
				unsatisfied[q] = false
				progress = true
			} else {
				served[q] += share
				granted += share
			}
		}
		remaining -= granted
		if !progress {
			break
		}
	}
	return served
}

// Run advances n ticks.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String summarizes the simulation state.
func (s *Sim) String() string {
	return fmt.Sprintf("netsim{ticks=%d links=%d hosts=%d flows=%d}",
		s.tickIndex, len(s.links), len(s.hosts), len(s.flows))
}
