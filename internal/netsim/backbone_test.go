package netsim

import (
	"testing"
	"time"

	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/topology"
)

// ringTopo builds a 4-region ring R0..R3.
func ringTopo(t *testing.T, capacity float64) *topology.Topology {
	t.Helper()
	topo := topology.New()
	regions := []topology.Region{"R0", "R1", "R2", "R3"}
	for i := range regions {
		srlg := topo.EnsureSRLG(i, 0)
		if _, _, err := topo.AddBidirectional(regions[i], regions[(i+1)%4], capacity, 0, srlg); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestBackboneConstruction(t *testing.T) {
	topo := ringTopo(t, 10e9)
	b, err := NewBackbone(topo, Options{Tick: time.Second, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Sim.links); got != topo.NumLinks() {
		t.Errorf("sim links = %d, want %d", got, topo.NumLinks())
	}
	if b.Link(0) == nil {
		t.Error("Link(0) nil")
	}
	// Empty topology rejected.
	if _, err := NewBackbone(topology.New(), Options{}, 0); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestBackboneRoutedFlowDelivers(t *testing.T) {
	topo := ringTopo(t, 10e9)
	b, err := NewBackbone(topo, Options{Tick: time.Second, Seed: 2}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.AddHost("h0", "R0", "Svc", contract.ClassB)
	if err != nil {
		t.Fatal(err)
	}
	// R0 -> R2 is two hops either way around the ring.
	f, err := b.AddRoutedFlow(h, "R2", 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Path) != 2 {
		t.Errorf("path length = %d, want 2 hops", len(f.Path))
	}
	b.Sim.Run(40)
	if !f.Established() || f.DeliveredFraction() < 0.99 {
		t.Errorf("flow state: established=%v delivered=%v", f.Established(), f.DeliveredFraction())
	}
	// RTT reflects two hops of base RTT.
	if f.LastRTT() < 10*time.Millisecond {
		t.Errorf("RTT = %v, want >= 10ms", f.LastRTT())
	}
}

func TestBackboneValidation(t *testing.T) {
	topo := ringTopo(t, 10e9)
	b, _ := NewBackbone(topo, Options{Seed: 1}, 0)
	if _, err := b.AddHost("h", "NOPE", "S", contract.ClassB); err == nil {
		t.Error("unknown region accepted")
	}
	h, _ := b.AddHost("h", "R0", "S", contract.ClassB)
	if _, err := b.AddRoutedFlow(h, "NOPE", 1); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestBackboneEnforcementIsolatesVictim(t *testing.T) {
	// A multi-region scenario: a culprit in R0 floods toward R2; a victim
	// in R1 shares the R1->R2 link. With the culprit's excess remarked, the
	// victim keeps its throughput even under link pressure.
	topo := ringTopo(t, 10e9)
	b, err := NewBackbone(topo, Options{Tick: time.Second, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	culprit, _ := b.AddHost("culprit", "R1", "Bulk", contract.ClassB)
	victim, _ := b.AddHost("victim", "R1", "Online", contract.ClassB)
	cf, err := b.AddRoutedFlow(culprit, "R2", 12e9) // exceeds the 10G link alone
	if err != nil {
		t.Fatal(err)
	}
	vf, err := b.AddRoutedFlow(victim, "R2", 3e9)
	if err != nil {
		t.Fatal(err)
	}
	// Remark all of Bulk's traffic (its entitlement is zero here).
	culprit.Prog.Actions.Update(
		bpf.MapKey{NPG: "Bulk", Class: contract.ClassB, Region: "R1"},
		bpf.Action{Mode: bpf.MarkHosts, NonConformGroups: bpf.NumGroups})
	b.Sim.Run(60)
	if vf.LastLoss() > 0.01 {
		t.Errorf("victim loss = %v despite culprit remarked", vf.LastLoss())
	}
	if cf.LastLoss() <= 0.05 {
		t.Errorf("culprit loss = %v, want substantial (scavenger queue)", cf.LastLoss())
	}
}

func TestRegionDrillScopesEnforcementToTargetRegion(t *testing.T) {
	opts := DefaultRegionDrillOptions()
	rep, err := RunRegionDrill(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The target region's conforming rate settles near its cut entitlement.
	targetConform := rep.Conform[rep.Target]
	if targetConform > opts.Entitled*1.35 {
		t.Errorf("target conform = %v, want ~%v", targetConform, opts.Entitled)
	}
	if rep.Marked[rep.Target] == 0 {
		t.Error("no hosts marked in the target region")
	}
	// Other regions: untouched — full demand conforming, nothing marked.
	for _, region := range opts.Regions[1:] {
		if rep.Marked[region] != 0 {
			t.Errorf("region %s has %d marked hosts despite generous entitlement",
				region, rep.Marked[region])
		}
		if rep.Conform[region] < opts.Demand*0.9 {
			t.Errorf("region %s conform = %v, want ~%v", region, rep.Conform[region], opts.Demand)
		}
	}
}

func TestRegionDrillValidation(t *testing.T) {
	bad := DefaultRegionDrillOptions()
	bad.Regions = bad.Regions[:1]
	if _, err := RunRegionDrill(bad); err == nil {
		t.Error("single region accepted")
	}
	bad = DefaultRegionDrillOptions()
	bad.Entitled = 0
	if _, err := RunRegionDrill(bad); err == nil {
		t.Error("zero entitlement accepted")
	}
}
