// The binary wire codec: the same 4-byte length-prefixed framing as the
// JSON codec, with the frame body in a compact positional encoding instead
// of a JSON object. It exists for one reason — the kvstore publish path has
// to survive millions of publishes per second, and JSON encode/decode of
// the envelope plus payload is the dominant CPU cost there.
//
// # Negotiation
//
// The codec is negotiated once per connection, at dial time, with JSON as
// the universal fallback:
//
//	client                                server
//	  | JSON frame {method:"_negotiate",     |
//	  |   payload:{codec:"binary",version:1}}|
//	  |-------------------------------------->
//	  |   (new server) JSON {payload:{codec: |
//	  |     "binary",version:1}} — switch    |
//	  |<--------------------------------------  both sides now binary
//	  |   (old server) JSON {error:"unknown  |
//	  |     method ..."} — client stays JSON |
//	  |<--------------------------------------  connection stays JSON
//
// The offer is a regular JSON request, so a server that predates the binary
// codec answers it like any unknown method — with an error response — and
// the connection simply continues on JSON. New servers intercept the
// reserved "_negotiate" method before dispatch. Every re-dial re-negotiates,
// so a server downgrade mid-deployment degrades the codec, never the
// connection.
//
// # Binary frame layout (schema v1)
//
//	byte 0    kind: 0x01 request, 0x02 response
//	byte 1    flags
//	request:  method(str) id(str) trace(str) payload(rest of frame)
//	response: id(str) error(str) retry_after_ms(uvarint) payload(rest)
//	str:      uvarint length + bytes
//
// Request flags: bit0 = payload is schema-binary (else JSON bytes), bit1 =
// client accepts a schema-binary response payload. Response flags: bit0 =
// payload is schema-binary, bit1 = retryable (overload shed). Payloads ride
// as raw bytes either way, so methods without a binary payload codec (the
// granting plane's contract-bearing messages) still benefit from the
// envelope being binary while their payloads stay JSON.
//
// Because both codecs share the outer length-prefixed framing, a frame in
// the wrong codec never desyncs the stream: the whole body is consumed by
// length, the server answers with an error response, and the connection
// keeps serving (see serveBinaryFrame).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	schemav1 "entitlement/schema/v1"
)

// Codec selects the wire encoding a client offers at dial time.
type Codec int

const (
	// CodecJSON is the universal default: length-prefixed JSON frames,
	// spoken by every peer since the first release.
	CodecJSON Codec = iota
	// CodecBinary offers the binary codec at dial time and falls back to
	// JSON when the server declines (or predates negotiation).
	CodecBinary
)

// String renders the codec flag value.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// ParseCodec parses a -codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	default:
		return CodecJSON, fmt.Errorf("wire: unknown codec %q (want json or binary)", s)
	}
}

// NegotiateMethod is the reserved method name for codec negotiation; wire
// servers intercept it before dispatch, so handlers never see it.
const NegotiateMethod = "_negotiate"

// Frame kinds and flags of the binary envelope (schema v1).
const (
	binKindRequest  = 0x01
	binKindResponse = 0x02

	reqFlagBinaryPayload = 1 << 0 // payload is schema-binary, not JSON bytes
	reqFlagAcceptBinary  = 1 << 1 // client can decode a schema-binary reply

	respFlagBinaryPayload = 1 << 0
	respFlagRetryable     = 1 << 1
)

// ErrBadBinaryFrame reports a frame body that is not a well-formed binary
// envelope. Framing stays intact (the body was length-delimited), so
// servers answer it with an error response instead of hanging up.
var ErrBadBinaryFrame = errors.New("wire: malformed binary frame")

// binRequest is a decoded binary request envelope. All byte-slice fields
// alias the frame buffer: valid until the next frame is read into it.
type binRequest struct {
	method  []byte
	id      []byte
	trace   []byte
	payload []byte
	flags   byte
}

// binResponse is a decoded binary response envelope, aliasing like
// binRequest.
type binResponse struct {
	id           []byte
	errMsg       []byte
	retryAfterMS uint64
	payload      []byte
	flags        byte
}

// readBytesField consumes one uvarint-length-prefixed field.
func readBytesField(src []byte) ([]byte, []byte, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 || n > uint64(len(src)-w) {
		return nil, nil, ErrBadBinaryFrame
	}
	return src[w : w+int(n)], src[w+int(n):], nil
}

// appendBytesField appends a uvarint-length-prefixed field.
func appendBytesField(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendStringField is appendBytesField for strings, avoiding a conversion.
func appendStringField(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeBinRequest parses a binary request envelope. It never panics on
// arbitrary input (FuzzBinaryFrameDecode pins this).
func decodeBinRequest(body []byte) (r binRequest, err error) {
	if len(body) < 2 || body[0] != binKindRequest {
		return r, ErrBadBinaryFrame
	}
	r.flags = body[1]
	rest := body[2:]
	if r.method, rest, err = readBytesField(rest); err != nil {
		return r, err
	}
	if r.id, rest, err = readBytesField(rest); err != nil {
		return r, err
	}
	if r.trace, rest, err = readBytesField(rest); err != nil {
		return r, err
	}
	r.payload = rest
	return r, nil
}

// decodeBinResponse parses a binary response envelope; same guarantees as
// decodeBinRequest.
func decodeBinResponse(body []byte) (r binResponse, err error) {
	if len(body) < 2 || body[0] != binKindResponse {
		return r, ErrBadBinaryFrame
	}
	r.flags = body[1]
	rest := body[2:]
	if r.id, rest, err = readBytesField(rest); err != nil {
		return r, err
	}
	if r.errMsg, rest, err = readBytesField(rest); err != nil {
		return r, err
	}
	v, w := binary.Uvarint(rest)
	if w <= 0 {
		return r, ErrBadBinaryFrame
	}
	r.retryAfterMS = v
	r.payload = rest[w:]
	return r, nil
}

// appendBinRequestHeader appends the frame body up to (excluding) the
// payload; the caller appends payload bytes and then fixes up the length
// prefix. id arrives as bytes so the hot path never materializes it as a
// string.
func appendBinRequestHeader(dst []byte, flags byte, method string, id []byte, trace string) []byte {
	dst = append(dst, binKindRequest, flags)
	dst = appendStringField(dst, method)
	dst = appendBytesField(dst, id)
	return appendStringField(dst, trace)
}

// appendBinResponseHeader is the response-side mirror.
func appendBinResponseHeader(dst []byte, flags byte, id []byte, errMsg string, retryAfterMS int64) []byte {
	dst = append(dst, binKindResponse, flags)
	dst = appendBytesField(dst, id)
	dst = appendStringField(dst, errMsg)
	if retryAfterMS < 0 {
		retryAfterMS = 0
	}
	return binary.AppendUvarint(dst, uint64(retryAfterMS))
}

// readFrameInto reads one length-prefixed frame body into buf, growing it
// as needed, and returns the body view plus the (possibly regrown) buffer.
// The reuse is what makes the binary receive path allocation-free after the
// first frame.
func readFrameInto(r *bufio.Reader, buf []byte) (body, kept []byte, err error) {
	// The length header is read into buf rather than a local array: a stack
	// array sliced into io.ReadFull escapes through the io.Reader interface
	// and would cost one heap allocation per frame.
	if cap(buf) < 4 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxMessageSize {
		return nil, buf, ErrMessageTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, buf, err
	}
	return body, buf, nil
}

// appendRequestID renders "<prefix>.<base>-<seq>" (or "<base>-<seq>"
// untraced) into dst without allocating — the binary hot path's replacement
// for fmt.Sprintf in requestID.
func appendRequestID(dst []byte, prefix, base string, seq uint64) []byte {
	if prefix != "" {
		dst = append(dst, prefix...)
		dst = append(dst, '.')
	}
	dst = append(dst, base...)
	dst = append(dst, '-')
	return strconv.AppendUint(dst, seq, 10)
}

// Payload is one request's payload plus its encoding, handed to
// PayloadHandler. Binary payloads (and JSON ones on binary connections)
// alias the connection's frame buffer: they are valid only for the duration
// of the handler call, which is exactly the decode-and-act window every
// handler in this repo uses. A handler that must retain bytes copies them.
type Payload struct {
	data   []byte
	binary bool
}

// JSONPayload wraps raw JSON bytes as a Payload (for tests and adapters).
func JSONPayload(b []byte) Payload { return Payload{data: b} }

// BinaryPayload wraps schema-binary bytes as a Payload.
func BinaryPayload(b []byte) Payload { return Payload{data: b, binary: true} }

// IsBinary reports whether the payload is schema-binary rather than JSON.
func (p Payload) IsBinary() bool { return p.binary }

// Empty reports whether the request carried no payload.
func (p Payload) Empty() bool { return len(p.data) == 0 }

// Bytes exposes the raw payload (aliasing rules above apply).
func (p Payload) Bytes() []byte { return p.data }

// Decode unmarshals the payload into v using whichever codec it arrived
// in: schema-binary via schemav1.WireUnmarshaler, JSON via encoding/json.
// A binary payload for a type with no binary codec is a protocol error —
// the two sides disagree about the schema, and guessing would be worse.
func (p Payload) Decode(v interface{}) error {
	if p.binary {
		u, ok := v.(schemav1.WireUnmarshaler)
		if !ok {
			return fmt.Errorf("wire: binary payload for %T, which has no binary codec", v)
		}
		return u.DecodeBinary(p.data)
	}
	return jsonUnmarshalPayload(p.data, v)
}
