package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := map[string]interface{}{"hello": "world", "n": 42.0}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := ReadMessage(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out["hello"] != "world" || out["n"] != 42.0 {
		t.Errorf("round trip = %v", out)
	}
}

func TestMessageMultipleFrames(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteMessage(&buf, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		var v int
		if err := ReadMessage(&buf, &v); err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Errorf("frame %d = %d", i, v)
		}
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, "payload")
	raw := buf.Bytes()[:buf.Len()-3]
	var v string
	if err := ReadMessage(bytes.NewReader(raw), &v); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestReadMessageOversized(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	var v interface{}
	if err := ReadMessage(bytes.NewReader(hdr), &v); !errors.Is(err, ErrMessageTooLarge) {
		t.Errorf("err = %v, want ErrMessageTooLarge", err)
	}
}

func TestWriteMessageUnmarshalable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, func() {}); err == nil {
		t.Error("function value marshaled")
	}
}

func startEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, func(method string, payload json.RawMessage) (interface{}, error) {
		switch method {
		case "echo":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return nil, err
			}
			return s, nil
		case "add":
			var args [2]int
			if err := json.Unmarshal(payload, &args); err != nil {
				return nil, err
			}
			return args[0] + args[1], nil
		case "fail":
			return nil, fmt.Errorf("deliberate failure")
		case "null":
			return nil, nil
		default:
			return nil, fmt.Errorf("unknown method %q", method)
		}
	})
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

func TestClientServerRPC(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var s string
	if err := c.Call("echo", "ping", &s); err != nil || s != "ping" {
		t.Errorf("echo = %q, %v", s, err)
	}
	var sum int
	if err := c.Call("add", [2]int{20, 22}, &sum); err != nil || sum != 42 {
		t.Errorf("add = %d, %v", sum, err)
	}
	// nil reply discards the payload.
	if err := c.Call("echo", "discard", nil); err != nil {
		t.Errorf("discarded call: %v", err)
	}
	// nil result from server.
	if err := c.Call("null", nil, nil); err != nil {
		t.Errorf("null call: %v", err)
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Method != "fail" || re.Message != "deliberate failure" {
		t.Errorf("RemoteError = %+v", re)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
	// Connection still usable after a remote error.
	var s string
	if err := c.Call("echo", "still-alive", &s); err != nil || s != "still-alive" {
		t.Errorf("post-error call = %q, %v", s, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startEchoServer(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				var sum int
				if err := c.Call("add", [2]int{i, j}, &sum); err != nil {
					errs <- err
					return
				}
				if sum != i+j {
					errs <- fmt.Errorf("sum = %d, want %d", sum, i+j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentCallsOneClient(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sum int
			if err := c.Call("add", [2]int{i, 1}, &sum); err != nil || sum != i+1 {
				t.Errorf("call %d: sum=%d err=%v", i, sum, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, addr := startEchoServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	// New connections fail after close.
	if _, err := Dial(addr); err == nil {
		t.Error("dial succeeded after close")
	}
}

func TestServerAddr(t *testing.T) {
	srv, addr := startEchoServer(t)
	if srv.Addr().String() != addr {
		t.Errorf("Addr = %v, want %v", srv.Addr(), addr)
	}
}

// Property: ReadMessage never panics on arbitrary input bytes — it either
// decodes or returns an error.
func TestReadMessageRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("ReadMessage panicked")
			}
		}()
		var v interface{}
		ReadMessage(bytes.NewReader(raw), &v)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: WriteMessage → ReadMessage round-trips arbitrary string maps.
func TestMessageRoundTripProperty(t *testing.T) {
	f := func(m map[string]string) bool {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		var out map[string]string
		if err := ReadMessage(&buf, &out); err != nil {
			return false
		}
		if len(out) != len(m) {
			return false
		}
		for k, v := range m {
			if out[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
