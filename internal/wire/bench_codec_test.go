package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"testing"

	"entitlement/internal/obs/trace"
	schemav1 "entitlement/schema/v1"
)

// The codec-level publish benchmarks measure the pure encode/decode cost of
// one kvstore publish round trip — client request encode, server request
// decode, server response encode, client response decode — with no socket
// in the loop. Loopback TCP adds tens of microseconds of syscall time to
// both codecs equally and would mask the codec ratio the ISSUE pins; the
// socket-level numbers live in BenchmarkPublishSocket* below and in
// BENCH_wire.json.

var benchPut = schemav1.KVPut{Key: "rates/cluster-a/web/host-017", Value: 1234.5625, TTLMs: 60000}

func BenchmarkPublishCodecBinary(b *testing.B) {
	var wbuf, idbuf, respbuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Client: frame the request.
		idbuf = appendRequestID(idbuf[:0], "", "bench", uint64(i))
		wbuf = append(wbuf[:0], 0, 0, 0, 0)
		wbuf = appendBinRequestHeader(wbuf, reqFlagBinaryPayload|reqFlagAcceptBinary, "put", idbuf, "")
		wbuf = benchPut.AppendBinary(wbuf)
		binary.BigEndian.PutUint32(wbuf[:4], uint32(len(wbuf)-4))

		// Server: decode envelope + payload, encode the (empty) reply.
		req, err := decodeBinRequest(wbuf[4:])
		if err != nil {
			b.Fatal(err)
		}
		var p schemav1.KVPut
		if err := p.DecodeBinary(req.payload); err != nil {
			b.Fatal(err)
		}
		if p.Value != benchPut.Value {
			b.Fatal("payload corrupted")
		}
		respbuf = append(respbuf[:0], 0, 0, 0, 0)
		respbuf = appendBinResponseHeader(respbuf, 0, req.id, "", 0)
		binary.BigEndian.PutUint32(respbuf[:4], uint32(len(respbuf)-4))

		// Client: decode the response.
		resp, err := decodeBinResponse(respbuf[4:])
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.errMsg) != 0 {
			b.Fatal("unexpected error")
		}
	}
}

func BenchmarkPublishCodecJSON(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Client: marshal payload + envelope.
		payload, err := json.Marshal(&benchPut)
		if err != nil {
			b.Fatal(err)
		}
		reqBytes, err := json.Marshal(&Request{Method: "put", ID: fmt.Sprintf("bench-%d", i), Payload: payload})
		if err != nil {
			b.Fatal(err)
		}

		// Server: decode envelope + payload, encode the reply.
		var req Request
		if err := json.Unmarshal(reqBytes, &req); err != nil {
			b.Fatal(err)
		}
		var p schemav1.KVPut
		if err := json.Unmarshal(req.Payload, &p); err != nil {
			b.Fatal(err)
		}
		if p.Value != benchPut.Value {
			b.Fatal("payload corrupted")
		}
		respBytes, err := json.Marshal(&Response{ID: req.ID})
		if err != nil {
			b.Fatal(err)
		}

		// Client: decode the response.
		var resp Response
		if err := json.Unmarshal(respBytes, &resp); err != nil {
			b.Fatal(err)
		}
		if resp.Error != "" {
			b.Fatal("unexpected error")
		}
	}
}

// TestPublishCodecSpeedupAndAllocs pins the ISSUE's bench bar: the binary
// publish codec must be at least 5x faster than JSON and allocation-free.
// It runs the benchmarks through testing.Benchmark so a plain `go test`
// enforces the bar without -bench flags.
func TestPublishCodecSpeedupAndAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews both time and allocation counts")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test skipped in -short mode")
	}
	rb := testing.Benchmark(BenchmarkPublishCodecBinary)
	rj := testing.Benchmark(BenchmarkPublishCodecJSON)
	t.Logf("binary: %v/op %d allocs/op; json: %v/op %d allocs/op; speedup %.1fx",
		rb.NsPerOp(), rb.AllocsPerOp(), rj.NsPerOp(), rj.AllocsPerOp(),
		float64(rj.NsPerOp())/float64(rb.NsPerOp()))
	if allocs := rb.AllocsPerOp(); allocs != 0 {
		t.Errorf("binary publish codec allocates %d/op, want 0", allocs)
	}
	if rb.NsPerOp() <= 0 || rj.NsPerOp() < 5*rb.NsPerOp() {
		t.Errorf("binary publish codec speedup %.2fx, want >= 5x (binary %dns, json %dns)",
			float64(rj.NsPerOp())/float64(rb.NsPerOp()), rb.NsPerOp(), rj.NsPerOp())
	}
}

// Socket-level publish round trips: the honest end-to-end numbers
// (syscall-dominated, so the codec gap narrows). Exported to
// BENCH_wire.json by cmd/benchjson -wire-out.

func benchSocketPublish(b *testing.B, codec Codec, disableBinary bool) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	arg := &schemav1.KVPut{} // pre-boxed: &local per call would allocate
	srv := NewServerPayload(l, func(tc trace.Context, method string, p Payload) (interface{}, error) {
		*arg = schemav1.KVPut{}
		if err := p.Decode(arg); err != nil {
			return nil, err
		}
		return nil, nil
	}, ServerOptions{DisableBinary: disableBinary})
	defer srv.Close()
	c, err := DialOpts(l.Addr().String(), ClientOptions{Codec: codec})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("put", &benchPut, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Call("put", &benchPut, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublishSocketBinary(b *testing.B) { benchSocketPublish(b, CodecBinary, false) }
func BenchmarkPublishSocketJSON(b *testing.B)   { benchSocketPublish(b, CodecJSON, true) }

// TestPublishSocketZeroAlloc pins the end-to-end guarantee: a binary
// publish through a real client and server performs zero heap allocations
// per call across all goroutines (testing.AllocsPerRun counts the server's
// too).
func TestPublishSocketZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The decode target lives outside the closure: passing a fresh &local
	// through the interface{} parameter would box it per call. Handlers on
	// the real hot path (kvstore) pool their argument structs for the same
	// reason.
	arg := &schemav1.KVPut{}
	srv := NewServerPayload(l, func(tc trace.Context, method string, p Payload) (interface{}, error) {
		*arg = schemav1.KVPut{}
		if err := p.Decode(arg); err != nil {
			return nil, err
		}
		return nil, nil
	}, ServerOptions{})
	defer srv.Close()
	c, err := DialOpts(l.Addr().String(), ClientOptions{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Warm up scratch buffers and the server's method-intern table.
	for i := 0; i < 100; i++ {
		if err := c.Call("put", &benchPut, nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Call("put", &benchPut, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("binary publish allocates %.1f/op end to end, want 0", allocs)
	}
}
