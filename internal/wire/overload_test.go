package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestOverloadRoundTrip pins the shed-classification path over a real
// socket: a handler returning *Overloaded surfaces client-side as
// *OverloadedError with the retry-after hint intact, transient by
// classification, distinct from RemoteError, and stamped with the request
// id — while a plain handler error still comes back as RemoteError.
func TestOverloadRoundTrip(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("queue full")
	srv := NewServer(l, func(method string, payload json.RawMessage) (interface{}, error) {
		switch method {
		case "shed":
			return nil, &Overloaded{
				Err:        fmt.Errorf("grantd: %w", sentinel),
				RetryAfter: 750 * time.Millisecond,
			}
		case "shed-nohint":
			return nil, &Overloaded{Err: sentinel}
		case "fail":
			return nil, errors.New("deliberate failure")
		}
		return nil, fmt.Errorf("unknown method %q", method)
	})
	defer srv.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTrace("ov")

	err = c.Call("shed", nil, nil)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("shed call returned %T (%v), want *OverloadedError", err, err)
	}
	if oe.RetryAfter != 750*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 750ms", oe.RetryAfter)
	}
	if oe.Method != "shed" || !strings.Contains(oe.Message, "queue full") {
		t.Errorf("overload error lost context: %+v", oe)
	}
	if oe.RequestID == "" || !strings.HasPrefix(oe.RequestID, "ov.") {
		t.Errorf("RequestID = %q, want the traced id", oe.RequestID)
	}
	if !IsTransient(err) {
		t.Error("overload not transient: retrying after backoff must be allowed")
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Error("overload also matched RemoteError; callers cannot tell sheds apart")
	}
	if classify(err) != "overloaded" {
		t.Errorf("classify = %q, want overloaded", classify(err))
	}

	if err := c.Call("shed-nohint", nil, nil); !errors.As(err, &oe) {
		t.Fatalf("hintless shed returned %v", err)
	} else if oe.RetryAfter != 0 {
		t.Errorf("hintless RetryAfter = %v, want 0", oe.RetryAfter)
	}

	// A plain handler error still classifies as remote.
	err = c.Call("fail", nil, nil)
	if !errors.As(err, &re) {
		t.Fatalf("plain failure returned %T, want *RemoteError", err)
	}
	var shed *OverloadedError
	if errors.As(err, &shed) {
		t.Error("plain failure matched OverloadedError")
	}
	if classify(err) != "remote" {
		t.Errorf("classify(fail) = %q, want remote", classify(err))
	}
}
