package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"regexp"
	"strings"
	"sync"
	"testing"

	"entitlement/internal/obs/trace"
)

// syncBuffer is a goroutine-safe log sink (the server logs from its
// connection goroutine).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func debugLogger(w *syncBuffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

var requestIDRE = regexp.MustCompile(`request_id=(\S+)`)

// TestRequestIDPropagatedToLogs is the trace-propagation contract: for one
// call, the SAME client-generated request ID appears in the client's span
// and in the server's span.
func TestRequestIDPropagatedToLogs(t *testing.T) {
	var clientLog, serverLog syncBuffer
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOpts(l, func(method string, _ json.RawMessage) (interface{}, error) {
		return map[string]string{"pong": method}, nil
	}, ServerOptions{Logger: debugLogger(&serverLog)})
	defer srv.Close()

	c, err := DialOpts(l.Addr().String(), ClientOptions{Logger: debugLogger(&clientLog)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply map[string]string
	if err := c.Call("ping", nil, &reply); err != nil {
		t.Fatal(err)
	}
	srv.Close() // flush: the server span is written before the response, but close anyway

	m := requestIDRE.FindStringSubmatch(clientLog.String())
	if m == nil {
		t.Fatalf("no request_id in client log:\n%s", clientLog.String())
	}
	id := m[1]
	if id == "" {
		t.Fatal("empty request ID in client span")
	}
	if !strings.Contains(serverLog.String(), "request_id="+id) {
		t.Fatalf("request ID %s from the client span is missing from the server log:\n%s", id, serverLog.String())
	}
}

// TestSetTracePrefixesRequestIDs: after SetTrace, every request ID carries
// the trace prefix, so a cycle's whole fan-out greps under one token.
func TestSetTracePrefixesRequestIDs(t *testing.T) {
	var clientLog syncBuffer
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, func(string, json.RawMessage) (interface{}, error) { return nil, nil })
	defer srv.Close()
	c, err := DialOpts(l.Addr().String(), ClientOptions{Logger: debugLogger(&clientLog)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.SetTrace("host-7-c42")
	if err := c.Call("a", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("b", nil, nil); err != nil {
		t.Fatal(err)
	}
	c.SetTrace("")
	if err := c.Call("c", nil, nil); err != nil {
		t.Fatal(err)
	}
	ids := requestIDRE.FindAllStringSubmatch(clientLog.String(), -1)
	if len(ids) != 3 {
		t.Fatalf("want 3 spans, got %d:\n%s", len(ids), clientLog.String())
	}
	for _, m := range ids[:2] {
		if !strings.HasPrefix(m[1], "host-7-c42.") {
			t.Fatalf("traced request ID %q lacks the trace prefix", m[1])
		}
	}
	if strings.HasPrefix(ids[2][1], "host-7-c42.") {
		t.Fatalf("request ID %q still carries a cleared trace", ids[2][1])
	}
}

// TestCallPropagatesSpanTree is the cross-process tracing contract at the
// wire layer: with a span attached via SetSpan, one Call yields a wire.call
// span on the client parented under the caller's span, a wire.serve span on
// the server parented under the wire.call span, and the handler receives
// the serve span's context — one tree across both sides.
func TestCallPropagatesSpanTree(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var handlerCtx trace.Context
	srv := NewServerCtx(l, func(tc trace.Context, method string, _ json.RawMessage) (interface{}, error) {
		handlerCtx = tc
		return nil, nil
	}, ServerOptions{Service: "srv"})
	defer srv.Close()
	c, err := DialOpts(l.Addr().String(), ClientOptions{Service: "cli"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	col := trace.Default()
	root := col.StartRoot("op")
	c.SetSpan(root.Context())
	if err := c.Call("ping", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !handlerCtx.Valid() {
		t.Fatal("CtxHandler received a zero trace context for a traced call")
	}
	if handlerCtx.TraceID() != root.TraceID() {
		t.Fatalf("handler context is on trace %s, caller is on %s", handlerCtx.TraceID(), root.TraceID())
	}
	root.SetError(errors.New("retain me")) // force tail sampling to keep the trace
	root.Finish()

	tree, ok := col.Tree(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not retained", root.TraceID())
	}
	byName := map[string]trace.SpanRecord{}
	for _, s := range tree.Spans {
		byName[s.Name] = s
	}
	call, ok := byName["wire.call.ping"]
	if !ok {
		t.Fatalf("no wire.call.ping span in tree: %+v", tree.Spans)
	}
	serve, ok := byName["wire.serve.ping"]
	if !ok {
		t.Fatalf("no wire.serve.ping span in tree: %+v", tree.Spans)
	}
	rootRec := byName["op"]
	if call.Parent != rootRec.SpanID {
		t.Errorf("wire.call.ping parent = %s, want root span %s", call.Parent, rootRec.SpanID)
	}
	if serve.Parent != call.SpanID {
		t.Errorf("wire.serve.ping parent = %s, want wire.call span %s", serve.Parent, call.SpanID)
	}
	if call.Service != "cli" || serve.Service != "srv" {
		t.Errorf("span services = %q/%q, want cli/srv", call.Service, serve.Service)
	}
	if serve.SpanID != handlerCtx.SpanID() {
		t.Errorf("handler context span %s is not the wire.serve span %s", handlerCtx.SpanID(), serve.SpanID)
	}
}

// TestSetTraceRaceWithConcurrentCalls pins the lock-free trace state:
// SetTrace/SetSpan swaps racing concurrent Calls must neither trip the race
// detector nor produce a torn request ID (a traced ID always carries the
// prefix of one complete snapshot).
func TestSetTraceRaceWithConcurrentCalls(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, func(string, json.RawMessage) (interface{}, error) { return nil, nil })
	defer srv.Close()
	c, err := DialOpts(l.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sp := trace.Default().StartRoot("race-root")
	defer sp.Finish()
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				c.SetTrace(fmt.Sprintf("t%d", i))
			case 1:
				c.SetSpan(sp.Context())
			default:
				c.SetTrace("")
			}
		}
	}()
	var callers sync.WaitGroup
	for g := 0; g < 4; g++ {
		callers.Add(1)
		go func() {
			defer callers.Done()
			for i := 0; i < 50; i++ {
				if err := c.Call("m", nil, nil); err != nil {
					t.Errorf("Call under SetTrace race: %v", err)
					return
				}
			}
		}()
	}
	callers.Wait()
	close(stop)
	swapper.Wait()
	// Correctness here is "no race detector report and no failed call"; the
	// atomic snapshot makes a torn prefix/context pair unrepresentable.
}

// TestRequestIDOnErrors: both RemoteError and TransientError surface the
// request ID of the failed call.
func TestRequestIDOnErrors(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, func(method string, _ json.RawMessage) (interface{}, error) {
		return nil, fmt.Errorf("handler says no")
	})
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Call("denied", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.RequestID == "" {
		t.Fatal("RemoteError without a request ID")
	}
	if !strings.Contains(re.Error(), re.RequestID) {
		t.Fatalf("RemoteError message %q does not include its request ID", re.Error())
	}

	srv.Close() // next call fails in transport
	err = c.Call("gone", nil, nil)
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("want TransientError, got %v", err)
	}
	if te.RequestID == "" {
		t.Fatal("TransientError without a request ID")
	}
	if !strings.Contains(te.Error(), te.RequestID) {
		t.Fatalf("TransientError message %q does not include its request ID", te.Error())
	}
}

// TestResponseIDMismatchBreaksConnection: a response carrying a different
// request's ID means the stream is desynced; the client must fail the call
// transiently and drop the connection.
func TestResponseIDMismatchBreaksConnection(t *testing.T) {
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var req Request
		if err := ReadMessage(server, &req); err != nil {
			return
		}
		WriteMessage(server, &Response{ID: "not-your-request"})
	}()
	c := NewClient(client)
	defer c.Close()
	err := c.Call("m", nil, nil)
	<-done
	if !IsTransient(err) {
		t.Fatalf("want transient desync error, got %v", err)
	}
	if !strings.Contains(err.Error(), "not-your-request") {
		t.Fatalf("error %q does not explain the ID mismatch", err)
	}
	// The connection must be marked broken: a pipe-backed client cannot
	// re-dial, so the next call fails fast.
	if err := c.Call("m2", nil, nil); !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("connection not marked broken after desync: %v", err)
	}
}
