package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fastOptions keep failure tests quick.
func fastOptions() ClientOptions {
	return ClientOptions{
		DialTimeout: 500 * time.Millisecond,
		CallTimeout: 200 * time.Millisecond,
		MinBackoff:  time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&TransientError{Err: errors.New("x")}, true},
		{fmt.Errorf("wrapped: %w", &TransientError{Err: errors.New("x")}), true},
		{&RemoteError{Method: "m", Message: "boom"}, false},
		{ErrMessageTooLarge, false},
		{ErrClientClosed, false},
		{ErrBrokenConn, true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{errors.New("application logic"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestCallDeadlineOnStalledServer(t *testing.T) {
	// A listener that accepts but never answers: the call must return a
	// transient error within ~CallTimeout instead of blocking forever.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c, err := DialOpts(l.Addr().String(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Call("echo", "x", nil)
	if err == nil {
		t.Fatal("call against stalled server succeeded")
	}
	if !IsTransient(err) {
		t.Errorf("stall error not transient: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("call blocked %v past its 200ms deadline", d)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv, addr := startEchoServer(t)
	c, err := DialOpts(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var s string
	if err := c.Call("echo", "one", &s); err != nil {
		t.Fatal(err)
	}

	// Kill the server mid-life; in-flight state must break, not desync.
	srv.Close()
	if err := c.Call("echo", "two", &s); err == nil {
		t.Fatal("call against closed server succeeded")
	} else if !IsTransient(err) {
		t.Fatalf("server-down error not transient: %v", err)
	}

	// Restart on the same address and let the backoff gate pass.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := NewServer(l, func(method string, payload json.RawMessage) (interface{}, error) {
		var s string
		json.Unmarshal(payload, &s)
		return s, nil
	})
	defer srv2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.Call("echo", "three", &s); err == nil {
			if s != "three" {
				t.Fatalf("reconnected echo = %q", s)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected after server restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// rawDial opens a plain TCP connection to the server for protocol abuse.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerRejectsOversizedFrameWithError(t *testing.T) {
	_, addr := startEchoServer(t)
	conn := rawDial(t, addr)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadMessage(conn, &resp); err != nil {
		t.Fatalf("no error response for oversized frame: %v", err)
	}
	if resp.Error == "" {
		t.Fatal("oversized frame got a success response")
	}
	// The connection must then close: the stream cannot resync.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("connection stayed open after oversized frame: %v", err)
	}
}

func TestServerAnswersMalformedJSONAndKeepsServing(t *testing.T) {
	_, addr := startEchoServer(t)
	conn := rawDial(t, addr)
	// Frame a payload that is not JSON at all.
	bad := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(bad)))
	if _, err := conn.Write(append(hdr[:], bad...)); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadMessage(conn, &resp); err != nil {
		t.Fatalf("no response to malformed request: %v", err)
	}
	if resp.Error == "" {
		t.Fatal("malformed request got a success response")
	}
	// Framing was intact, so the same connection keeps working.
	if err := WriteMessage(conn, &Request{Method: "echo", Payload: json.RawMessage(`"ok"`)}); err != nil {
		t.Fatal(err)
	}
	var resp2 Response
	if err := ReadMessage(conn, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Error != "" {
		t.Fatalf("follow-up request failed: %s", resp2.Error)
	}
}

func TestServerReadIdleTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOpts(l, func(string, json.RawMessage) (interface{}, error) {
		return nil, nil
	}, ServerOptions{ReadIdleTimeout: 100 * time.Millisecond})
	defer srv.Close()

	// An idle connection is dropped.
	idle := rawDial(t, srv.Addr().String())
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection not closed")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("idle connection closed after %v, want ~100ms", d)
	}

	// A byte-dribbling client is dropped too: the deadline is absolute,
	// not reset per byte.
	dribble := rawDial(t, srv.Addr().String())
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 8)
	dribble.Write(hdr[:])
	closed := false
	for i := 0; i < 8; i++ {
		time.Sleep(30 * time.Millisecond)
		if _, err := dribble.Write([]byte{'"'}); err != nil {
			closed = true
			break
		}
	}
	if !closed {
		// The write side may not see the reset immediately; confirm via
		// read.
		dribble.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := dribble.Read(make([]byte, 1)); err == nil {
			t.Error("dribbling connection survived the idle timeout")
		}
	}
}

func TestCloseRacingInFlightCall(t *testing.T) {
	// A handler slow enough that Close always lands mid-call.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, func(string, json.RawMessage) (interface{}, error) {
		time.Sleep(300 * time.Millisecond)
		return "late", nil
	})
	defer srv.Close()

	for i := 0; i < 4; i++ {
		c, err := DialOpts(srv.Addr().String(), ClientOptions{CallTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s string
			// Either outcome is fine; it must not deadlock or panic.
			c.Call("slow", nil, &s)
		}()
		time.Sleep(20 * time.Millisecond)
		if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Errorf("close: %v", err)
		}
		wg.Wait()
		if err := c.Call("slow", nil, nil); !errors.Is(err, ErrClientClosed) {
			t.Errorf("call after close = %v, want ErrClientClosed", err)
		}
	}
}

func TestConcurrentClientsWithFailures(t *testing.T) {
	// Many clients hammer one server while it restarts underneath them;
	// nothing may deadlock and post-restart calls must succeed.
	srv, addr := startEchoServer(t)
	const n = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialOpts(addr, fastOptions())
			if err != nil {
				c = Connect(addr, fastOptions())
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum int
				c.Call("add", [2]int{i, 1}, &sum) // errors expected mid-restart
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	time.Sleep(50 * time.Millisecond)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	srv2 := NewServer(l, func(method string, payload json.RawMessage) (interface{}, error) {
		var args [2]int
		if err := json.Unmarshal(payload, &args); err != nil {
			return nil, err
		}
		return args[0] + args[1], nil
	})
	defer srv2.Close()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Fresh client sanity check after the churn.
	c, err := DialOpts(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum int
	if err := c.Call("add", [2]int{20, 22}, &sum); err != nil || sum != 42 {
		t.Fatalf("post-restart add = %d, %v", sum, err)
	}
}

func TestConnectLazyDialsWhenServerAppears(t *testing.T) {
	// Reserve an address, then Connect before anything listens.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	c := Connect(addr, fastOptions())
	defer c.Close()
	if err := c.Call("echo", "x", nil); err == nil {
		t.Fatal("call succeeded with no server")
	} else if !IsTransient(err) {
		t.Fatalf("no-server error not transient: %v", err)
	}

	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	srv := NewServer(l2, func(method string, payload json.RawMessage) (interface{}, error) {
		var s string
		json.Unmarshal(payload, &s)
		return s, nil
	})
	defer srv.Close()
	var s string
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.Call("echo", "up", &s); err == nil && s == "up" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("lazy client never connected once the server appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
