package wire

import (
	"errors"

	"entitlement/internal/obs"
)

// Wire-layer instruments, shared by every Client and Server in the
// process: the enforcement plane aggregates per-process, not per-socket.
// Counter semantics the tests rely on (see metrics_test.go):
//
//   - dials_total counts every dial attempt (first connect and re-dials);
//     dial_failures_total the attempts that failed.
//   - reconnects_total counts only successful re-dials after the client
//     had already been connected once — an exact mirror of how many times
//     the connection actually broke and was repaired.
//   - broken_total counts connections marked broken after an in-flight
//     transport failure (the fail() path), not backoff rejections.
//   - errors_total{kind} classifies Call failures: "transient" (transport,
//     deadline, backoff gate), "overloaded" (the server shed the request
//     with a retry-after hint), "remote" (server answered with an error),
//     "other" (marshal bugs, closed client).
var (
	mClientCalls   = obs.RegisterCounterVec("entitlement_wire_client_calls_total", "RPCs issued by wire clients, by method.", "method")
	mClientCallSec = obs.RegisterHistogramVec("entitlement_wire_client_call_seconds", "Round-trip latency of wire client calls that reached the transport, by method.", "method")
	mClientErrors  = obs.RegisterCounterVec("entitlement_wire_client_errors_total", "Failed wire client calls by error classification (transient, overloaded, remote, other).", "kind")

	mClientDials      = obs.RegisterCounter("entitlement_wire_client_dials_total", "Dial attempts by wire clients (first connects and re-dials).")
	mClientDialFails  = obs.RegisterCounter("entitlement_wire_client_dial_failures_total", "Dial attempts that failed.")
	mClientReconnects = obs.RegisterCounter("entitlement_wire_client_reconnects_total", "Successful re-dials after a previously established connection broke.")
	mClientBroken     = obs.RegisterCounter("entitlement_wire_client_broken_total", "Connections marked broken after an in-flight transport failure.")
	mClientBackoff    = obs.RegisterCounter("entitlement_wire_client_backoff_rejects_total", "Calls rejected fast because the re-dial backoff gate was closed.")

	mClientNegotiated = obs.RegisterCounterVec("entitlement_wire_client_negotiations_total", "Codec negotiation outcomes on client dials that offered binary, by resulting codec (binary, json).", "codec")
	mServerNegotiated = obs.RegisterCounterVec("entitlement_wire_server_negotiations_total", "Codec negotiation requests answered by wire servers, by resulting codec (binary, json).", "codec")

	mClientInflight = obs.RegisterGauge("entitlement_wire_client_inflight_calls", "Wire client calls currently in flight.")
	mClientBytesOut = obs.RegisterCounter("entitlement_wire_client_bytes_sent_total", "Request bytes written by wire clients, including frame headers.")
	mClientBytesIn  = obs.RegisterCounter("entitlement_wire_client_bytes_received_total", "Response bytes read by wire clients, including frame headers.")

	mServerConns    = obs.RegisterGauge("entitlement_wire_server_connections", "Wire server connections currently open.")
	mServerRequests = obs.RegisterCounterVec("entitlement_wire_server_requests_total", "Requests dispatched by wire servers, by method.", "method")
	mServerErrors   = obs.RegisterCounter("entitlement_wire_server_request_errors_total", "Requests whose handler (or request decode) returned an error.")
	mServerInflight = obs.RegisterGauge("entitlement_wire_server_inflight_requests", "Wire server requests currently being handled.")
	mServerBytesIn  = obs.RegisterCounter("entitlement_wire_server_bytes_received_total", "Request bytes read by wire servers, including frame headers.")
	mServerBytesOut = obs.RegisterCounter("entitlement_wire_server_bytes_sent_total", "Response bytes written by wire servers, including frame headers.")
)

// classify maps a Call error to its errors_total{kind} label. Overload
// sheds are transient by IsTransient but get their own kind: a saturated
// server and a broken transport need different operator responses.
func classify(err error) string {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return "overloaded"
	}
	if IsTransient(err) {
		return "transient"
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return "remote"
	}
	return "other"
}
