package wire_test

// Metrics-exactness tests for the wire client under fault injection: a
// scripted connection-cut sequence through faults.Proxy must move the
// reconnect/broken/error counters by EXACT amounts — a reconnect counter
// that merely "goes up" cannot be trusted to equal the number of repaired
// outages on a dashboard. Assertions read the Prometheus exposition (what
// a real scraper sees), not package internals. Runs under -race in CI.

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"entitlement/internal/faults"
	"entitlement/internal/obs"
	"entitlement/internal/wire"
)

// scrapeDefault renders and parses the default registry.
func scrapeDefault(t *testing.T) obs.Scrape {
	t.Helper()
	var b strings.Builder
	obs.Default().WritePrometheus(&b)
	s, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return s
}

func echoServer(t *testing.T) *wire.Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return wire.NewServer(l, func(method string, payload json.RawMessage) (interface{}, error) {
		return map[string]string{"echo": method}, nil
	})
}

func TestClientMetricsExactUnderScriptedCuts(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	proxy, err := faults.NewProxy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := wire.DialOpts(proxy.Addr(), wire.ClientOptions{
		DialTimeout: time.Second,
		CallTimeout: 2 * time.Second,
		MinBackoff:  time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Warm call so the connection is established and tracked by the proxy.
	if err := c.Call("warm", nil, nil); err != nil {
		t.Fatalf("warm call: %v", err)
	}

	base := scrapeDefault(t)
	const cuts = 3
	calls, failures := 0, 0
	for i := 0; i < cuts; i++ {
		proxy.CutConnections()
		// The first call on a cut connection MUST fail transient (write
		// error or EOF on the read), marking the connection broken.
		calls++
		err := c.Call("echo", nil, nil)
		if err == nil {
			t.Fatalf("cut %d: call on a cut connection succeeded", i)
		}
		if !wire.IsTransient(err) {
			t.Fatalf("cut %d: error not transient: %v", i, err)
		}
		failures++
		// The retry re-dials (the proxy is alive, so the dial succeeds
		// immediately — no backoff gate) and must succeed.
		calls++
		if err := c.Call("echo", nil, nil); err != nil {
			t.Fatalf("cut %d: call after re-dial failed: %v", i, err)
		}
	}

	after := scrapeDefault(t)
	delta := func(key string) float64 { return after.Value(key) - base.Value(key) }

	if got := delta("entitlement_wire_client_reconnects_total"); got != cuts {
		t.Errorf("reconnects delta = %v, want exactly %d", got, cuts)
	}
	if got := delta("entitlement_wire_client_broken_total"); got != cuts {
		t.Errorf("broken delta = %v, want exactly %d", got, cuts)
	}
	if got := delta(`entitlement_wire_client_errors_total{kind="transient"}`); got != float64(failures) {
		t.Errorf("transient errors delta = %v, want exactly %d", got, failures)
	}
	if got := delta("entitlement_wire_client_dials_total"); got != cuts {
		t.Errorf("dials delta = %v, want exactly %d re-dials", got, cuts)
	}
	if got := delta("entitlement_wire_client_dial_failures_total"); got != 0 {
		t.Errorf("dial failures delta = %v, want 0", got)
	}
	if got := delta(`entitlement_wire_client_calls_total{method="echo"}`); got != float64(calls) {
		t.Errorf("calls{echo} delta = %v, want exactly %d", got, calls)
	}
	// Every call reached the transport (no backoff fast-fails), so the
	// latency histogram saw every one of them.
	if got := delta(`entitlement_wire_client_call_seconds_count{method="echo"}`); got != float64(calls) {
		t.Errorf("call_seconds_count{echo} delta = %v, want exactly %d", got, calls)
	}
	if got := after.Value("entitlement_wire_client_inflight_calls"); got != 0 {
		t.Errorf("inflight gauge = %v after all calls returned, want 0", got)
	}
	if delta("entitlement_wire_client_bytes_sent_total") <= 0 || delta("entitlement_wire_client_bytes_received_total") <= 0 {
		t.Error("byte counters did not move")
	}
}

func TestClientMetricsBackoffAndDialFailures(t *testing.T) {
	srv := echoServer(t)
	proxy, err := faults.NewProxy(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	clock := func() time.Time { return now }
	c, err := wire.DialOpts(proxy.Addr(), wire.ClientOptions{
		DialTimeout: time.Second,
		CallTimeout: time.Second,
		MinBackoff:  time.Hour, // gate stays closed for the whole test
		MaxBackoff:  time.Hour,
		Now:         clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("ok", nil, nil); err != nil {
		t.Fatal(err)
	}

	// Kill proxy AND server: the cut breaks the conn, and every re-dial
	// now fails, closing the backoff gate.
	proxy.Close()
	srv.Close()

	base := scrapeDefault(t)
	if err := c.Call("x", nil, nil); err == nil { // breaks the conn
		t.Fatal("call on dead proxy succeeded")
	}
	if err := c.Call("x", nil, nil); err == nil { // dial fails, gate closes
		t.Fatal("re-dial against dead proxy succeeded")
	}
	const gated = 4
	for i := 0; i < gated; i++ { // fail fast at the gate
		if err := c.Call("x", nil, nil); err == nil {
			t.Fatal("gated call succeeded")
		}
	}
	after := scrapeDefault(t)
	delta := func(key string) float64 { return after.Value(key) - base.Value(key) }
	if got := delta("entitlement_wire_client_dial_failures_total"); got != 1 {
		t.Errorf("dial failures delta = %v, want exactly 1", got)
	}
	if got := delta("entitlement_wire_client_backoff_rejects_total"); got != gated {
		t.Errorf("backoff rejects delta = %v, want exactly %d", got, gated)
	}
	if got := delta("entitlement_wire_client_reconnects_total"); got != 0 {
		t.Errorf("reconnects delta = %v, want 0", got)
	}
}
