//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in; allocation
// assertions skip under it (instrumentation allocates on its own).
const raceEnabled = true
