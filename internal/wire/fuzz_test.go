package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage drives the frame decoder with arbitrary bytes; it must
// never panic and never allocate beyond the declared frame size.
// Run with: go test -fuzz=FuzzReadMessage ./internal/wire
func FuzzReadMessage(f *testing.F) {
	var good bytes.Buffer
	WriteMessage(&good, map[string]int{"a": 1})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v interface{}
		// Either decodes or errors; must not panic.
		ReadMessage(bytes.NewReader(data), &v)
	})
}
