package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"entitlement/internal/obs/trace"
	schemav1 "entitlement/schema/v1"
)

// startPayloadServer runs a small kv-flavored payload server: "put"/"get"
// speak the schema-binary kvstore shapes, "echo" stays JSON, "fail" and
// "shed" exercise the two error channels, "traceid" reports the span
// context the server saw.
func startPayloadServer(t *testing.T, opts ServerOptions) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	data := map[string]float64{}
	srv := NewServerPayload(l, func(tc trace.Context, method string, p Payload) (interface{}, error) {
		switch method {
		case "put":
			var a schemav1.KVPut
			if err := p.Decode(&a); err != nil {
				return nil, err
			}
			mu.Lock()
			data[strings.Clone(a.Key)] = a.Value // Key may alias the frame buffer
			mu.Unlock()
			return nil, nil
		case "get":
			var k schemav1.KVKey
			if err := p.Decode(&k); err != nil {
				return nil, err
			}
			mu.Lock()
			v, ok := data[k.Key]
			mu.Unlock()
			return &schemav1.KVGetReply{Value: v, Found: ok}, nil
		case "echo":
			var s string
			if err := p.Decode(&s); err != nil {
				return nil, err
			}
			return s, nil
		case "fail":
			return nil, fmt.Errorf("deliberate failure")
		case "shed":
			return nil, &Overloaded{Err: fmt.Errorf("queue full"), RetryAfter: 250 * time.Millisecond}
		case "traceid":
			return tc.TraceID(), nil
		default:
			return nil, fmt.Errorf("unknown method %q", method)
		}
	}, opts)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// exerciseClient runs the cross-codec contract against one client: typed
// payloads round-trip, remote errors and overload sheds carry identical
// semantics, and a span context round-trips through the frame's Trace
// field. Every codec pairing must pass it unchanged.
func exerciseClient(t *testing.T, c *Client) {
	t.Helper()
	if err := c.Call("put", &schemav1.KVPut{Key: "rates/web/h1", Value: 3.5, TTLMs: 60000}, nil); err != nil {
		t.Fatalf("put: %v", err)
	}
	var get schemav1.KVGetReply
	if err := c.Call("get", &schemav1.KVKey{Key: "rates/web/h1"}, &get); err != nil {
		t.Fatalf("get: %v", err)
	}
	if !get.Found || get.Value != 3.5 {
		t.Errorf("get = %+v, want {3.5 true}", get)
	}
	var miss schemav1.KVGetReply
	if err := c.Call("get", &schemav1.KVKey{Key: "absent"}, &miss); err != nil {
		t.Fatalf("get absent: %v", err)
	}
	if miss.Found {
		t.Errorf("absent key found: %+v", miss)
	}
	var s string
	if err := c.Call("echo", "ping", &s); err != nil || s != "ping" {
		t.Errorf("echo = %q, %v", s, err)
	}

	err := c.Call("fail", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Message != "deliberate failure" {
		t.Errorf("fail err = %v, want RemoteError(deliberate failure)", err)
	}
	err = c.Call("shed", nil, nil)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("shed err = %v, want OverloadedError", err)
	}
	if oe.RetryAfter != 250*time.Millisecond || !strings.Contains(oe.Message, "queue full") {
		t.Errorf("shed = %+v", oe)
	}
	if !IsTransient(err) {
		t.Error("overload shed classified permanent")
	}

	// Trace context crosses the wire in both codecs.
	root := trace.Default().StartRoot("compat-op")
	c.SetSpan(root.Context())
	var tid string
	if err := c.Call("traceid", nil, &tid); err != nil {
		t.Fatalf("traceid: %v", err)
	}
	if tid != root.Context().TraceID() {
		t.Errorf("server saw trace %q, want %q", tid, root.Context().TraceID())
	}
	c.SetSpan(trace.Context{})
	root.Finish()

	// Connection still healthy after the error round trips.
	if err := c.Call("put", &schemav1.KVPut{Key: "rates/web/h2", Value: 1, TTLMs: 1000}, nil); err != nil {
		t.Errorf("post-error put: %v", err)
	}
}

// The compatibility matrix (`make wirecompat`): every pairing of codec
// offer and server capability serves identical request/response semantics.
func TestWireCompatMatrix(t *testing.T) {
	cases := []struct {
		name       string
		server     ServerOptions
		codec      Codec
		negotiated Codec
	}{
		{"binary-client/binary-server", ServerOptions{}, CodecBinary, CodecBinary},
		{"binary-client/json-server", ServerOptions{DisableBinary: true}, CodecBinary, CodecJSON},
		{"json-client/binary-server", ServerOptions{}, CodecJSON, CodecJSON},
		{"json-client/json-server", ServerOptions{DisableBinary: true}, CodecJSON, CodecJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startPayloadServer(t, tc.server)
			c, err := DialOpts(addr, ClientOptions{Codec: tc.codec})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.NegotiatedCodec(); got != tc.negotiated {
				t.Fatalf("negotiated codec = %v, want %v", got, tc.negotiated)
			}
			exerciseClient(t, c)
		})
	}
}

// Legacy JSON-era handlers keep working behind the binary transport: the
// envelope is binary, the payload stays JSON, and a schema-binary payload
// aimed at a legacy server is rejected cleanly instead of being parsed as
// garbage.
func TestBinaryEnvelopeOverLegacyHandler(t *testing.T) {
	_, addr := startEchoServer(t) // plain Handler, no payload awareness
	c, err := DialOpts(addr, ClientOptions{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.NegotiatedCodec(); got != CodecBinary {
		t.Fatalf("negotiated codec = %v, want binary", got)
	}
	var s string
	if err := c.Call("echo", "ping", &s); err != nil || s != "ping" {
		t.Errorf("echo = %q, %v", s, err)
	}
	// A schema-binary payload has no JSON meaning; the legacy server must
	// answer with an error, not attempt to decode it.
	err = c.Call("echo", &schemav1.KVKey{Key: "x"}, nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Message, "no binary payload codec") {
		t.Errorf("binary payload to legacy handler: err = %v", err)
	}
}

// A frame without Trace — and without ID — is what pre-tracing peers send;
// both must keep working against a payload server.
func TestOldFrameWithoutTraceOrID(t *testing.T) {
	_, addr := startPayloadServer(t, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload, _ := json.Marshal("bare")
	// Hand-built request with only method+payload: exactly the frame shape
	// of the first release.
	if err := WriteMessage(conn, map[string]interface{}{"method": "echo", "payload": json.RawMessage(payload)}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadMessage(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || string(resp.Payload) != `"bare"` {
		t.Errorf("bare frame response = %+v", resp)
	}
}

// negotiateRaw performs the client side of codec negotiation on a raw
// connection, failing the test if the server declines.
func negotiateRaw(t *testing.T, conn net.Conn) {
	t.Helper()
	hello, _ := json.Marshal(schemav1.Hello{Codec: schemav1.CodecBinary, Version: schemav1.Version})
	if err := WriteMessage(conn, &Request{Method: NegotiateMethod, ID: "t-hello", Payload: hello}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadMessage(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("negotiation declined: %s", resp.Error)
	}
}

// readBinaryResponse reads one frame and decodes it as a binary response.
func readBinaryResponse(t *testing.T, br *bufio.Reader) binResponse {
	t.Helper()
	body, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeBinResponse(body)
	if err != nil {
		t.Fatalf("decode response: %v (frame %x)", err, body)
	}
	return resp
}

// Regression (stacked-codec hazard): a client that negotiates binary and
// then sends a JSON frame mid-connection. Both codecs share the outer
// framing, so the server must answer with an error response and keep the
// connection serving — not desync or hang up.
func TestBinaryServerRejectsJSONFrameMidConnection(t *testing.T) {
	_, addr := startPayloadServer(t, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	negotiateRaw(t, conn)

	// JSON frame on the now-binary connection, with an ID to echo.
	payload, _ := json.Marshal("sneaky")
	if err := WriteMessage(conn, &Request{Method: "echo", ID: "json-после", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	resp := readBinaryResponse(t, br)
	if !strings.Contains(string(resp.errMsg), "JSON frame on binary-negotiated connection") {
		t.Fatalf("error = %q, want JSON-frame rejection", resp.errMsg)
	}
	if string(resp.id) != "json-после" {
		t.Errorf("echoed id = %q, want the JSON request's id", resp.id)
	}

	// The connection must still serve a well-formed binary request: framing
	// never desynced.
	w := []byte{0, 0, 0, 0}
	w = appendBinRequestHeader(w, reqFlagBinaryPayload|reqFlagAcceptBinary, "put", []byte("bin-1"), "")
	w = (&schemav1.KVPut{Key: "k", Value: 7, TTLMs: 1000}).AppendBinary(w)
	binary.BigEndian.PutUint32(w[:4], uint32(len(w)-4))
	if _, err := conn.Write(w); err != nil {
		t.Fatal(err)
	}
	resp = readBinaryResponse(t, br)
	if len(resp.errMsg) != 0 || string(resp.id) != "bin-1" {
		t.Errorf("post-rejection binary call: id=%q err=%q", resp.id, resp.errMsg)
	}
}

// A garbage binary envelope (complete frame, malformed body) gets an error
// response and the connection keeps serving; an oversized frame gets an
// error response and then the connection closes (its framing cannot be
// trusted).
func TestBinaryServerRejectsTornAndOversizedFrames(t *testing.T) {
	_, addr := startPayloadServer(t, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	negotiateRaw(t, conn)

	// Well-framed garbage: right kind byte, torn-off fields.
	garbage := []byte{binKindRequest, 0x00, 0xFF} // method length promises 255 bytes that are not there
	frame := make([]byte, 4+len(garbage))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(garbage)))
	copy(frame[4:], garbage)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	resp := readBinaryResponse(t, br)
	if !strings.Contains(string(resp.errMsg), "bad request") {
		t.Fatalf("garbage envelope error = %q", resp.errMsg)
	}

	// Still serving.
	w := []byte{0, 0, 0, 0}
	w = appendBinRequestHeader(w, 0, "traceid", []byte("ok-1"), "")
	binary.BigEndian.PutUint32(w[:4], uint32(len(w)-4))
	if _, err := conn.Write(w); err != nil {
		t.Fatal(err)
	}
	if resp := readBinaryResponse(t, br); len(resp.errMsg) != 0 {
		t.Fatalf("post-garbage call failed: %q", resp.errMsg)
	}

	// Oversized: error response, then close.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp = readBinaryResponse(t, br)
	if !strings.Contains(string(resp.errMsg), "size limit") {
		t.Fatalf("oversized error = %q", resp.errMsg)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Error("connection still open after oversized binary frame")
	}
}

// Offering binary to a server that answers every negotiation with an error
// (a stand-in for pre-negotiation servers, which answer "unknown method")
// falls back to JSON without surfacing any error to the caller.
func TestNegotiationFallbackToJSON(t *testing.T) {
	// DisableBinary makes the server decline _negotiate with an error
	// response — the same shape an old server produces for an unknown
	// method — so the client must fall back to JSON silently.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	legacy := NewServerOpts(l, func(method string, payload json.RawMessage) (interface{}, error) {
		return nil, fmt.Errorf("unknown method %q", method)
	}, ServerOptions{DisableBinary: true})
	defer legacy.Close()

	c, err := DialOpts(l.Addr().String(), ClientOptions{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.NegotiatedCodec(); got != CodecJSON {
		t.Errorf("negotiated = %v, want json fallback", got)
	}
	var s string
	if err := c.Call("any", "x", &s); err == nil {
		t.Error("legacy handler should error on unknown methods")
	}
}

// Re-dials re-negotiate: after the connection breaks, the next call on a
// binary client comes back up in binary.
func TestRenegotiateAfterReconnect(t *testing.T) {
	srv, addr := startPayloadServer(t, ServerOptions{})
	c, err := DialOpts(addr, ClientOptions{Codec: CodecBinary, MinBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("put", &schemav1.KVPut{Key: "a", Value: 1}, nil); err != nil {
		t.Fatal(err)
	}
	// Break every live server-side connection; the client's next call fails
	// transiently, the one after re-dials and re-negotiates.
	srv.mu.Lock()
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Call("put", &schemav1.KVPut{Key: "b", Value: 2}, nil)
		if err == nil {
			break
		}
		if !IsTransient(err) {
			t.Fatalf("permanent error during reconnect: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.NegotiatedCodec(); got != CodecBinary {
		t.Errorf("post-reconnect codec = %v, want binary", got)
	}
}

// Cross-codec golden: the same semantic call must produce identical decoded
// results through both codecs, and the binary envelope encoding itself is
// pinned byte for byte.
func TestCrossCodecGolden(t *testing.T) {
	type result struct {
		get     schemav1.KVGetReply
		echo    string
		failMsg string
		shedRA  time.Duration
	}
	run := func(codec Codec) result {
		_, addr := startPayloadServer(t, ServerOptions{})
		c, err := DialOpts(addr, ClientOptions{Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var r result
		if err := c.Call("put", &schemav1.KVPut{Key: "golden", Value: 12.25, TTLMs: 9000}, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.Call("get", &schemav1.KVKey{Key: "golden"}, &r.get); err != nil {
			t.Fatal(err)
		}
		if err := c.Call("echo", "同じ", &r.echo); err != nil {
			t.Fatal(err)
		}
		var re *RemoteError
		if err := c.Call("fail", nil, nil); errors.As(err, &re) {
			r.failMsg = re.Message
		}
		var oe *OverloadedError
		if err := c.Call("shed", nil, nil); errors.As(err, &oe) {
			r.shedRA = oe.RetryAfter
		}
		return r
	}
	jr := run(CodecJSON)
	br := run(CodecBinary)
	if jr != br {
		t.Errorf("codec semantics diverge:\njson   = %+v\nbinary = %+v", jr, br)
	}

	// Pinned envelope bytes: a change here is a wire format break.
	w := appendBinRequestHeader(nil, reqFlagBinaryPayload|reqFlagAcceptBinary, "put", []byte("id-1"), "")
	want := []byte{binKindRequest, 0x03, 3, 'p', 'u', 't', 4, 'i', 'd', '-', '1', 0}
	if !bytes.Equal(w, want) {
		t.Errorf("request header = %x, want %x", w, want)
	}
	r := appendBinResponseHeader(nil, respFlagRetryable, []byte("id-1"), "busy", 250)
	wantR := []byte{binKindResponse, 0x02, 4, 'i', 'd', '-', '1', 4, 'b', 'u', 's', 'y', 250, 1}
	if !bytes.Equal(r, wantR) {
		t.Errorf("response header = %x, want %x", r, wantR)
	}
}

// The binary envelope round-trips through its own encode/decode pair.
func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	w := appendBinRequestHeader(nil, reqFlagBinaryPayload, "method", []byte("id"), "00-abc-def-01")
	w = append(w, 1, 2, 3)
	req, err := decodeBinRequest(w)
	if err != nil {
		t.Fatal(err)
	}
	if string(req.method) != "method" || string(req.id) != "id" || string(req.trace) != "00-abc-def-01" ||
		req.flags != reqFlagBinaryPayload || !bytes.Equal(req.payload, []byte{1, 2, 3}) {
		t.Errorf("request round trip = %+v", req)
	}
	r := appendBinResponseHeader(nil, respFlagRetryable, []byte("id"), "err", 1500)
	r = append(r, 9)
	resp, err := decodeBinResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.id) != "id" || string(resp.errMsg) != "err" || resp.retryAfterMS != 1500 ||
		resp.flags != respFlagRetryable || !bytes.Equal(resp.payload, []byte{9}) {
		t.Errorf("response round trip = %+v", resp)
	}
	// Negative retry-after hints clamp to zero rather than wrapping.
	neg := appendBinResponseHeader(nil, 0, nil, "e", -5)
	if resp, err := decodeBinResponse(neg); err != nil || resp.retryAfterMS != 0 {
		t.Errorf("negative retry-after: %+v, %v", resp, err)
	}
}

func TestDecodeBinRejectsWrongKind(t *testing.T) {
	if _, err := decodeBinRequest([]byte{binKindResponse, 0}); !errors.Is(err, ErrBadBinaryFrame) {
		t.Errorf("request with response kind: %v", err)
	}
	if _, err := decodeBinResponse([]byte{binKindRequest, 0}); !errors.Is(err, ErrBadBinaryFrame) {
		t.Errorf("response with request kind: %v", err)
	}
	if _, err := decodeBinRequest(nil); !errors.Is(err, ErrBadBinaryFrame) {
		t.Errorf("empty request: %v", err)
	}
}

// FuzzBinaryFrameDecode pins the no-panic guarantee of both envelope
// decoders plus the readFrameInto framing path (`make fuzz-smoke`).
func FuzzBinaryFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{binKindRequest, 0x00})
	f.Add(appendBinRequestHeader(nil, 0x03, "put", []byte("id-1"), "00-trace"))
	f.Add(appendBinResponseHeader(nil, 0x02, []byte("id-1"), "busy", 250))
	f.Add([]byte{binKindRequest, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		decodeBinRequest(raw)
		decodeBinResponse(raw)
		// Frame the raw bytes and run them through the buffered read path.
		frame := make([]byte, 4+len(raw))
		binary.BigEndian.PutUint32(frame[:4], uint32(len(raw)))
		copy(frame[4:], raw)
		body, _, err := readFrameInto(bufio.NewReader(bytes.NewReader(frame)), nil)
		if err == nil && !bytes.Equal(body, raw) {
			t.Fatalf("readFrameInto = %x, want %x", body, raw)
		}
	})
}

// --- small coverage pins for the error and helper surfaces -----------------

func TestCodecParseAndString(t *testing.T) {
	if CodecJSON.String() != "json" || CodecBinary.String() != "binary" {
		t.Error("codec strings")
	}
	if c, err := ParseCodec("binary"); err != nil || c != CodecBinary {
		t.Errorf("ParseCodec(binary) = %v, %v", c, err)
	}
	if c, err := ParseCodec("json"); err != nil || c != CodecJSON {
		t.Errorf("ParseCodec(json) = %v, %v", c, err)
	}
	if _, err := ParseCodec("protobuf"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestOverloadedUnwrapAndErrors(t *testing.T) {
	base := errors.New("base")
	ov := &Overloaded{Err: base, RetryAfter: time.Second}
	if !errors.Is(ov, base) || ov.Error() != "base" {
		t.Errorf("Overloaded wrap: Is=%v Error=%q", errors.Is(ov, base), ov.Error())
	}
	oe := &OverloadedError{Method: "m", Message: "busy", RetryAfter: time.Second}
	if !strings.Contains(oe.Error(), "overloaded from m") {
		t.Errorf("OverloadedError = %q", oe.Error())
	}
	oe.RequestID = "rid-1"
	if !strings.Contains(oe.Error(), "[rid-1]") {
		t.Errorf("OverloadedError with id = %q", oe.Error())
	}
	re := &RemoteError{Method: "m", Message: "nope"}
	if !strings.Contains(re.Error(), "remote error from m") {
		t.Errorf("RemoteError = %q", re.Error())
	}
	re.RequestID = "rid-2"
	if !strings.Contains(re.Error(), "[rid-2]") {
		t.Errorf("RemoteError with id = %q", re.Error())
	}
	te := &TransientError{Err: base, RequestID: "rid-3"}
	if !strings.Contains(te.Error(), "[rid-3]") {
		t.Errorf("TransientError with id = %q", te.Error())
	}
}

func TestPayloadDecodeErrors(t *testing.T) {
	p := BinaryPayload((&schemav1.KVKey{Key: "x"}).AppendBinary(nil))
	if !p.IsBinary() || p.Empty() {
		t.Error("BinaryPayload flags")
	}
	var s string
	if err := p.Decode(&s); err == nil || !strings.Contains(err.Error(), "no binary codec") {
		t.Errorf("binary payload into plain type: %v", err)
	}
	var k schemav1.KVKey
	if err := p.Decode(&k); err != nil || k.Key != "x" {
		t.Errorf("binary decode = %+v, %v", k, err)
	}
	jp := JSONPayload([]byte(`{"key":"y"}`))
	var k2 schemav1.KVKey
	if err := jp.Decode(&k2); err != nil || k2.Key != "y" {
		t.Errorf("json decode = %+v, %v", k2, err)
	}
	if err := JSONPayload([]byte("{")).Decode(&k2); err == nil {
		t.Error("malformed JSON payload accepted")
	}
	if !bytes.Equal(jp.Bytes(), []byte(`{"key":"y"}`)) {
		t.Error("Payload.Bytes")
	}
}

func TestAppendRequestID(t *testing.T) {
	if got := string(appendRequestID(nil, "", "base", 7)); got != "base-7" {
		t.Errorf("untraced id = %q", got)
	}
	if got := string(appendRequestID(nil, "tr", "base", 7)); got != "tr.base-7" {
		t.Errorf("traced id = %q", got)
	}
}
