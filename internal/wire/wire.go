// Package wire provides the framing and tiny RPC layer the run-time
// enforcement components speak over TCP: length-prefixed JSON messages, a
// request/response envelope, a connection-per-client server loop, and a
// serialized client. The contract database and the distributed rate store
// both build on it.
//
// The protocol is deliberately minimal: 4-byte big-endian length followed by
// a JSON body, capped at MaxMessageSize. Control-plane traffic here is tiny
// (agents exchange a handful of rates per cycle), so clarity wins over
// compactness.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxMessageSize bounds a single frame; anything larger is a protocol error.
const MaxMessageSize = 16 << 20

// ErrMessageTooLarge is returned for frames exceeding MaxMessageSize.
var ErrMessageTooLarge = errors.New("wire: message exceeds size limit")

// WriteMessage marshals v as JSON and writes one length-prefixed frame.
func WriteMessage(w io.Writer, v interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMessage reads one frame and unmarshals it into v.
func ReadMessage(r io.Reader, v interface{}) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return ErrMessageTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Request is the RPC envelope sent by clients.
type Request struct {
	Method  string          `json:"method"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Response is the RPC envelope returned by servers.
type Response struct {
	Error   string          `json:"error,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Handler processes one request; the returned value is marshaled into the
// response payload.
type Handler func(method string, payload json.RawMessage) (interface{}, error)

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	listener net.Listener
	handler  Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving on l with h. It returns immediately; use Close to
// stop.
func NewServer(l net.Listener, h Handler) *Server {
	s := &Server{listener: l, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var req Request
		if err := ReadMessage(br, &req); err != nil {
			return
		}
		var resp Response
		result, err := s.handler(req.Method, req.Payload)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			body, merr := json.Marshal(result)
			if merr != nil {
				resp.Error = merr.Error()
			} else {
				resp.Payload = body
			}
		}
		if err := WriteMessage(bw, &resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a serialized RPC client over one connection. It is safe for
// concurrent use; calls are issued one at a time.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects a client to addr (TCP).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Call issues one request and decodes the response payload into reply
// (which may be nil to discard it).
func (c *Client) Call(method string, args interface{}, reply interface{}) error {
	var payload json.RawMessage
	if args != nil {
		body, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("wire: marshal args: %w", err)
		}
		payload = body
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteMessage(c.bw, &Request{Method: method, Payload: payload}); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	var resp Response
	if err := ReadMessage(c.br, &resp); err != nil {
		return err
	}
	if resp.Error != "" {
		return &RemoteError{Method: method, Message: resp.Error}
	}
	if reply != nil && resp.Payload != nil {
		return json.Unmarshal(resp.Payload, reply)
	}
	return nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteError is a server-side failure surfaced to the caller.
type RemoteError struct {
	Method  string
	Message string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error from %s: %s", e.Method, e.Message)
}
