// Package wire provides the framing and tiny RPC layer the run-time
// enforcement components speak over TCP: length-prefixed JSON messages, a
// request/response envelope, a connection-per-client server loop, and a
// serialized client. The contract database and the distributed rate store
// both build on it.
//
// The protocol is deliberately minimal: 4-byte big-endian length followed by
// a JSON body, capped at MaxMessageSize. Control-plane traffic here is tiny
// (agents exchange a handful of rates per cycle), so clarity wins over
// compactness.
//
// The client is built for an unreliable fleet: every call carries a
// deadline, a connection that fails mid-call is marked broken (so framing
// can never desync on the shared connection) and re-dialed lazily with
// capped exponential backoff plus jitter, and errors are classified
// transient vs. permanent so callers can decide whether retrying is worth
// anything. The server side guards against idle or byte-dribbling peers
// with an optional per-connection read idle timeout and answers protocol
// violations with an error response instead of a silent disconnect.
//
// Every request carries a client-generated request ID which the server
// echoes back; both sides attach it to their slog spans (when a Logger is
// configured) and the client stamps it onto returned errors, so one
// enforcement cycle's RPC fan-out is correlatable end to end across
// processes. Client.SetTrace prefixes subsequent IDs with a caller-chosen
// trace ID (e.g. the enforcement cycle's), tying the fan-out together.
//
// On top of the request-ID correlation sits real distributed tracing:
// Client.SetSpan attaches a trace context (internal/obs/trace) to the
// client, every Call then starts a wire.call child span and propagates its
// context in the frame's optional Trace field, and the server parents a
// wire.serve span under it — so one operation's RPC fan-out is a single
// span tree across processes, not just a grep-able token. Requests without
// a Trace field behave exactly as before; the field is JSON-omitted when
// empty, keeping the frame byte-compatible with old peers.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"entitlement/internal/obs/trace"
	schemav1 "entitlement/schema/v1"
)

// MaxMessageSize bounds a single frame; anything larger is a protocol error.
const MaxMessageSize = 16 << 20

// ErrMessageTooLarge is returned for frames exceeding MaxMessageSize.
var ErrMessageTooLarge = errors.New("wire: message exceeds size limit")

// ErrClientClosed is returned by Call after Close.
var ErrClientClosed = errors.New("wire: client closed")

// ErrBrokenConn is returned when the connection is broken and the client
// has no address to re-dial (it wrapped an existing net.Conn).
var ErrBrokenConn = errors.New("wire: connection broken")

// TransientError wraps a failure worth retrying: connection loss, dial
// failures, deadline expiry, or the backoff gate rejecting a call while a
// re-dial is pending. Permanent failures — a RemoteError (the server is up
// and answered), marshaling problems, oversized frames — are returned bare.
type TransientError struct {
	Err error
	// RequestID is the failed call's request ID, when the failure happened
	// inside Call (empty for raw transport helpers).
	RequestID string
}

// Error implements the error interface.
func (e *TransientError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("wire: transient [%s]: %v", e.RequestID, e.Err)
	}
	return fmt.Sprintf("wire: transient: %v", e.Err)
}

// Unwrap exposes the underlying error.
func (e *TransientError) Unwrap() error { return e.Err }

// Overloaded marks a handler error as load shedding: the server is healthy
// but refusing work, so the request is worth retrying after RetryAfter.
// Handlers wrap their typed overload errors in it; the server answers with
// a retryable response carrying the hint, which the client surfaces as an
// OverloadedError. errors.Is/As reach through to the wrapped error.
type Overloaded struct {
	Err error
	// RetryAfter is the server's hint for when capacity should be back;
	// zero means "soon, use your own backoff".
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *Overloaded) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *Overloaded) Unwrap() error { return e.Err }

// OverloadedError is the client-side view of a shed request: transient by
// classification (retrying helps once load drains), with the server's
// retry-after hint attached for the caller's backoff to honor.
type OverloadedError struct {
	Method  string
	Message string
	// RetryAfter is the server's hint; zero means the server sent none.
	RetryAfter time.Duration
	// RequestID is the shed call's request ID, matching the server's span.
	RequestID string
}

// Error implements the error interface.
func (e *OverloadedError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("wire: overloaded from %s [%s]: %s (retry after %s)", e.Method, e.RequestID, e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("wire: overloaded from %s: %s (retry after %s)", e.Method, e.Message, e.RetryAfter)
}

// IsTransient reports whether err is worth retrying: the failure came from
// the transport (lost connection, timeout, dial refusal) or the server shed
// the request under overload, rather than the remote handler rejecting it
// or the caller's own payload being broken.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, ErrMessageTooLarge) || errors.Is(err, ErrClientClosed) {
		return false
	}
	// Raw transport errors from direct ReadMessage/WriteMessage use.
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, ErrBrokenConn)
}

// WriteMessage marshals v as JSON and writes one length-prefixed frame.
func WriteMessage(w io.Writer, v interface{}) error {
	_, err := writeMessageN(w, v)
	return err
}

// writeMessageN is WriteMessage returning the frame size (header + body)
// so callers can maintain byte counters without re-marshaling.
func writeMessageN(w io.Writer, v interface{}) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxMessageSize {
		return 0, ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return 4 + len(body), nil
}

// readFrame reads one length-prefixed frame body. The frame header has been
// consumed even when the frame is oversized, so the stream is desynced after
// ErrMessageTooLarge; callers must drop the connection.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// ReadMessage reads one frame and unmarshals it into v.
func ReadMessage(r io.Reader, v interface{}) error {
	body, err := readFrame(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Request is the RPC envelope sent by clients. The shape is a versioned
// schema contract — it lives in schema/v1 and is fingerprint-pinned by
// `make vet-schema`; this alias keeps the wire package's historical API.
type Request = schemav1.Request

// Response is the RPC envelope returned by servers (schema/v1 contract,
// aliased like Request).
type Response = schemav1.Response

// jsonUnmarshalPayload decodes JSON payload bytes with the wire error
// prefix handlers and clients have always reported.
func jsonUnmarshalPayload(data []byte, v interface{}) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: unmarshal payload: %w", err)
	}
	return nil
}

// Handler processes one request; the returned value is marshaled into the
// response payload.
type Handler func(method string, payload json.RawMessage) (interface{}, error)

// CtxHandler is a Handler that also receives the server-side span context
// for the request (zero when the request carried no trace), so handlers can
// parent their own spans — queue wait, decision, journal write — under the
// wire.serve span instead of starting a fresh trace.
type CtxHandler func(tc trace.Context, method string, payload json.RawMessage) (interface{}, error)

// PayloadHandler is the codec-aware handler flavor: the payload arrives with
// its encoding intact (Payload.Decode picks JSON or schema-binary), and the
// result is re-encoded in the connection's codec — schema-binary when it
// implements schemav1.AppendMarshaler and the client offered to accept it,
// JSON otherwise. Binary payloads alias the connection's frame buffer and
// are valid only for the duration of the call (see Payload).
type PayloadHandler func(tc trace.Context, method string, p Payload) (interface{}, error)

// ServerOptions harden a server against misbehaving peers.
type ServerOptions struct {
	// ReadIdleTimeout closes a connection whose next complete request does
	// not arrive within this window. The deadline is absolute per request,
	// so a byte-dribbling client cannot hold a goroutine by trickling one
	// byte at a time. Zero means no timeout.
	ReadIdleTimeout time.Duration
	// Logger, if set, emits one span per handled request (method,
	// request_id, took; Debug on success, Warn on handler error), carrying
	// the client's request ID so the two sides' logs line up.
	Logger *slog.Logger
	// Service labels this server's wire.serve spans (e.g. "contractdb").
	// Empty leaves the span on the process-wide collector default.
	Service string
	// DisableBinary declines codec negotiation, pinning every connection to
	// JSON. Offering clients fall back transparently; the compat tests use
	// this to stand in for servers that predate the binary codec.
	DisableBinary bool
}

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	listener       net.Listener
	handler        Handler
	ctxHandler     CtxHandler     // set instead of handler by NewServerCtx
	payloadHandler PayloadHandler // set instead of both by NewServerPayload
	opts           ServerOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving on l with h. It returns immediately; use Close to
// stop.
func NewServer(l net.Listener, h Handler) *Server {
	return NewServerOpts(l, h, ServerOptions{})
}

// NewServerOpts starts serving on l with h and explicit hardening options.
func NewServerOpts(l net.Listener, h Handler, opts ServerOptions) *Server {
	s := &Server{listener: l, handler: h, opts: opts, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// NewServerCtx is NewServerOpts for trace-aware handlers: h receives the
// span context of the request's wire.serve span, letting the handler grow
// the same trace across its internal phases.
func NewServerCtx(l net.Listener, h CtxHandler, opts ServerOptions) *Server {
	s := &Server{listener: l, ctxHandler: h, opts: opts, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// NewServerPayload is NewServerOpts for codec-aware handlers: required for
// services whose methods accept schema-binary payloads (legacy handlers on
// this server would reject them), and the only flavor whose hot path can be
// allocation-free end to end.
func NewServerPayload(l net.Listener, h PayloadHandler, opts ServerOptions) *Server {
	s := &Server{listener: l, payloadHandler: h, opts: opts, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// dispatch invokes whichever JSON-era handler flavor the server was built
// with.
func (s *Server) dispatch(tc trace.Context, method string, payload json.RawMessage) (interface{}, error) {
	if s.ctxHandler != nil {
		return s.ctxHandler(tc, method, payload)
	}
	return s.handler(method, payload)
}

// dispatchPayload routes one request to the server's handler. Payload-aware
// servers see the payload with its codec intact; the legacy flavors only
// understand JSON, so a schema-binary payload aimed at one is answered with
// a clean error rather than fed through as garbled JSON.
func (s *Server) dispatchPayload(tc trace.Context, method string, p Payload) (interface{}, error) {
	if s.payloadHandler != nil {
		return s.payloadHandler(tc, method, p)
	}
	if p.IsBinary() {
		return nil, fmt.Errorf("wire: method %q has no binary payload codec on this server", method)
	}
	var raw json.RawMessage
	if !p.Empty() {
		raw = json.RawMessage(p.Bytes())
	}
	return s.dispatch(tc, method, raw)
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	mServerConns.Inc()
	defer func() {
		mServerConns.Dec()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := &serverConn{s: s, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	sc.serveJSON()
}

// serverConn is one connection's serving state: which codec it negotiated
// plus the reusable scratch the binary loop needs to handle a request
// without allocating.
type serverConn struct {
	s    *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// Binary-mode scratch: frames are read into rbuf, responses built in
	// wbuf, and methods interns method-name strings so steady-state
	// dispatch allocates for neither the frame nor the name.
	rbuf, wbuf []byte
	methods    map[string]string
}

// maxInternedMethods caps the per-connection method-name cache; a peer
// inventing method names cannot grow it without bound.
const maxInternedMethods = 64

// serveJSON is the connection's initial (and default) loop: length-prefixed
// JSON frames, exactly the protocol every peer has spoken since the first
// release. A "_negotiate" request may upgrade the connection to the binary
// loop; everything else dispatches as before.
func (sc *serverConn) serveJSON() {
	s := sc.s
	conn, br, bw := sc.conn, sc.br, sc.bw
	respond := func(resp *Response) bool {
		n, err := writeMessageN(bw, resp)
		if err != nil {
			return false
		}
		if bw.Flush() != nil {
			return false
		}
		mServerBytesOut.Add(int64(n))
		return true
	}
	for {
		if s.opts.ReadIdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadIdleTimeout))
		}
		body, err := readFrame(br)
		if errors.Is(err, ErrMessageTooLarge) {
			// Tell the peer what went wrong before hanging up; the frame
			// header promised more bytes than we will read, so the stream
			// cannot be resynced and the connection must die.
			mServerErrors.Inc()
			respond(&Response{Error: ErrMessageTooLarge.Error()})
			return
		}
		if err != nil {
			return
		}
		mServerBytesIn.Add(int64(4 + len(body)))
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			// Framing is intact (the whole body was consumed), so answer
			// the error and keep serving.
			mServerErrors.Inc()
			if !respond(&Response{Error: fmt.Sprintf("wire: bad request: %v", err)}) {
				return
			}
			continue
		}
		if req.Method == NegotiateMethod {
			upgraded, ok := sc.negotiate(&req, respond)
			if !ok {
				return
			}
			if upgraded {
				sc.serveBinary()
				return
			}
			continue
		}
		mServerRequests.With(req.Method).Inc()
		resp := Response{ID: req.ID} // echo the request ID for correlation
		// A traced request grows a wire.serve span under the client's
		// wire.call span; the handler's own spans parent under ours via the
		// CtxHandler context. Untraced requests cost one failed Parse.
		var sp trace.Span
		if tc, ok := trace.Parse(req.Trace); ok {
			sp = trace.Default().StartChild(tc, "wire.serve."+req.Method)
			if s.opts.Service != "" {
				sp.SetService(s.opts.Service)
			}
			sp.Annotate(req.ID)
		}
		mServerInflight.Inc()
		start := time.Now()
		result, err := s.dispatchPayload(sp.Context(), req.Method, JSONPayload(req.Payload))
		took := time.Since(start)
		mServerInflight.Dec()
		if err != nil {
			mServerErrors.Inc()
			resp.Error = err.Error()
			var ov *Overloaded
			if errors.As(err, &ov) {
				resp.Retryable = true
				resp.RetryAfterMS = ov.RetryAfter.Milliseconds()
				sp.Flag(trace.FlagShed)
			}
			sp.SetError(err)
		} else if result != nil {
			body, merr := json.Marshal(result)
			if merr != nil {
				mServerErrors.Inc()
				resp.Error = merr.Error()
				err = merr
			} else {
				resp.Payload = body
			}
		}
		if l := s.opts.Logger; l != nil {
			attrs := []any{
				slog.String("method", req.Method),
				slog.String("request_id", req.ID),
				slog.Duration("took", took),
			}
			if err != nil {
				l.Warn("wire.serve", append(attrs, slog.Any("err", err))...)
			} else {
				l.Debug("wire.serve", attrs...)
			}
		}
		sp.Finish()
		if !respond(&resp) {
			return
		}
	}
}

// negotiate answers one "_negotiate" request. It returns (upgraded,
// connAlive): an accepted offer switches the connection to the binary loop;
// a declined one (disabled, unknown codec, version mismatch) is answered
// with an error response — exactly what an old server would say to an
// unknown method — and the connection stays on JSON.
func (sc *serverConn) negotiate(req *Request, respond func(*Response) bool) (bool, bool) {
	mServerRequests.With(NegotiateMethod).Inc()
	resp := Response{ID: req.ID}
	var hello schemav1.Hello
	accepted := false
	if err := json.Unmarshal(req.Payload, &hello); err != nil {
		resp.Error = fmt.Sprintf("wire: bad negotiation payload: %v", err)
	} else if sc.s.opts.DisableBinary {
		resp.Error = "wire: binary codec disabled on this server"
	} else if hello.Codec != schemav1.CodecBinary || hello.Version != schemav1.Version {
		resp.Error = fmt.Sprintf("wire: unsupported codec %q v%d", hello.Codec, hello.Version)
	} else {
		reply, err := json.Marshal(schemav1.HelloReply{Codec: schemav1.CodecBinary, Version: schemav1.Version})
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Payload = reply
			accepted = true
		}
	}
	if accepted {
		mServerNegotiated.With("binary").Inc()
	} else {
		mServerNegotiated.With("json").Inc()
	}
	return accepted, respond(&resp)
}

// serveBinary is the post-negotiation loop: binary envelopes read into the
// connection's reusable frame buffer. Both codecs share the outer framing,
// so even a frame in the wrong codec is consumed whole — the loop answers
// it with an error response and keeps serving instead of desyncing.
func (sc *serverConn) serveBinary() {
	s := sc.s
	sc.methods = make(map[string]string)
	for {
		if s.opts.ReadIdleTimeout > 0 {
			sc.conn.SetReadDeadline(time.Now().Add(s.opts.ReadIdleTimeout))
		}
		body, rbuf, err := readFrameInto(sc.br, sc.rbuf)
		sc.rbuf = rbuf
		if errors.Is(err, ErrMessageTooLarge) {
			// Same as the JSON loop: the header promised more bytes than we
			// will read, so answer and hang up.
			mServerErrors.Inc()
			sc.writeBinaryError(nil, ErrMessageTooLarge.Error())
			return
		}
		if err != nil {
			return
		}
		mServerBytesIn.Add(int64(4 + len(body)))
		if !sc.serveBinaryFrame(body) {
			return
		}
	}
}

// serveBinaryFrame handles one length-delimited frame on a binary-negotiated
// connection, returning false when the connection must close.
func (sc *serverConn) serveBinaryFrame(body []byte) bool {
	s := sc.s
	req, derr := decodeBinRequest(body)
	if derr != nil {
		mServerErrors.Inc()
		if len(body) > 0 && body[0] == '{' {
			// A JSON frame after binary negotiation: a confused client or a
			// middlebox splicing streams. Framing is intact (the body was
			// length-delimited), so reject it without desyncing — and echo
			// the request ID when the body parses, so the sender can
			// correlate the rejection.
			var jreq Request
			if json.Unmarshal(body, &jreq) == nil && jreq.ID != "" {
				return sc.writeBinaryError([]byte(jreq.ID), "wire: received JSON frame on binary-negotiated connection")
			}
			return sc.writeBinaryError(nil, "wire: received JSON frame on binary-negotiated connection")
		}
		return sc.writeBinaryError(nil, fmt.Sprintf("wire: bad request: %v", derr))
	}
	// Intern the method name: steady-state traffic repeats a handful of
	// methods, so after warm-up neither dispatch nor the metrics allocate
	// for the name.
	method, ok := sc.methods[string(req.method)]
	if !ok {
		method = string(req.method)
		if len(sc.methods) < maxInternedMethods {
			sc.methods[method] = method
		}
	}
	mServerRequests.With(method).Inc()
	var sp trace.Span
	if len(req.trace) > 0 {
		if tc, ok := trace.Parse(string(req.trace)); ok {
			sp = trace.Default().StartChild(tc, "wire.serve."+method)
			if s.opts.Service != "" {
				sp.SetService(s.opts.Service)
			}
			sp.Annotate(string(req.id))
		}
	}
	p := Payload{data: req.payload, binary: req.flags&reqFlagBinaryPayload != 0}
	mServerInflight.Inc()
	start := time.Now()
	result, err := s.dispatchPayload(sp.Context(), method, p)
	took := time.Since(start)
	mServerInflight.Dec()
	var respFlags byte
	errMsg := ""
	var retryMS int64
	if err != nil {
		mServerErrors.Inc()
		errMsg = err.Error()
		var ov *Overloaded
		if errors.As(err, &ov) {
			respFlags |= respFlagRetryable
			retryMS = ov.RetryAfter.Milliseconds()
			sp.Flag(trace.FlagShed)
		}
		sp.SetError(err)
	}
	if l := s.opts.Logger; l != nil {
		attrs := []any{
			slog.String("method", method),
			slog.String("request_id", string(req.id)),
			slog.Duration("took", took),
		}
		if err != nil {
			l.Warn("wire.serve", append(attrs, slog.Any("err", err))...)
		} else {
			l.Debug("wire.serve", attrs...)
		}
	}
	sp.Finish()
	// Build the response frame in the reusable write buffer: 4-byte length
	// placeholder, envelope header, then the payload in whichever codec the
	// result and the client's accept flag agree on.
	w := append(sc.wbuf[:0], 0, 0, 0, 0)
	if err != nil || result == nil {
		w = appendBinResponseHeader(w, respFlags, req.id, errMsg, retryMS)
	} else if am, ok := result.(schemav1.AppendMarshaler); ok && req.flags&reqFlagAcceptBinary != 0 {
		respFlags |= respFlagBinaryPayload
		w = appendBinResponseHeader(w, respFlags, req.id, "", 0)
		w = am.AppendBinary(w)
	} else if jb, merr := json.Marshal(result); merr != nil {
		mServerErrors.Inc()
		w = appendBinResponseHeader(w, respFlags, req.id, merr.Error(), 0)
	} else {
		w = appendBinResponseHeader(w, respFlags, req.id, "", 0)
		w = append(w, jb...)
	}
	sc.wbuf = w[:0]
	if len(w)-4 > MaxMessageSize {
		return false
	}
	binary.BigEndian.PutUint32(w[:4], uint32(len(w)-4))
	if _, werr := sc.conn.Write(w); werr != nil {
		return false
	}
	mServerBytesOut.Add(int64(len(w)))
	return true
}

// writeBinaryError sends a payload-less binary error response (id may be
// nil when the request's ID could not be recovered).
func (sc *serverConn) writeBinaryError(id []byte, msg string) bool {
	w := append(sc.wbuf[:0], 0, 0, 0, 0)
	w = appendBinResponseHeader(w, 0, id, msg, 0)
	sc.wbuf = w[:0]
	binary.BigEndian.PutUint32(w[:4], uint32(len(w)-4))
	if _, err := sc.conn.Write(w); err != nil {
		return false
	}
	mServerBytesOut.Add(int64(len(w)))
	return true
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// ClientOptions tune the client's failure behavior. The zero value picks
// production defaults (see each field); negative durations disable the
// corresponding mechanism.
type ClientOptions struct {
	// DialTimeout bounds each (re-)dial attempt. Default 5s; negative
	// means no limit.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline covering write and read of one
	// round trip (applied via SetDeadline on the connection). Default 10s;
	// negative means no deadline.
	CallTimeout time.Duration
	// DisableReconnect stops the client from re-dialing a broken
	// connection; a broken client then fails every Call until Close. The
	// default (reconnect enabled) needs an address, so clients built with
	// NewClient around a raw conn never reconnect.
	DisableReconnect bool
	// MinBackoff and MaxBackoff bound the exponential re-dial backoff.
	// After a failed dial the client refuses further dial attempts until a
	// jittered delay in [backoff/2, backoff] has passed, doubling up to
	// MaxBackoff; calls during the gate fail fast with a TransientError
	// instead of hammering the dead peer. Defaults 50ms and 5s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Rand supplies backoff jitter. Default: seeded from the target
	// address, so a fleet of agents spreads its re-dials.
	Rand *rand.Rand
	// Now supplies the clock for backoff bookkeeping; defaults to
	// time.Now. Tests inject a fake.
	Now func() time.Time
	// Logger, if set, emits one span per Call (method, request_id, took;
	// Debug on success, Warn on failure). The request ID matches the span
	// the server logs for the same call.
	Logger *slog.Logger
	// Service labels this client's wire.call spans (e.g. "grantd"). Empty
	// leaves the span on the process-wide collector default.
	Service string
	// Codec is the wire encoding offered at dial time. CodecJSON (the zero
	// value) keeps the historical behavior. CodecBinary negotiates the
	// binary codec on every (re-)dial and falls back to JSON when the
	// server declines or predates negotiation — old servers keep working.
	Codec Codec
}

func (o ClientOptions) withDefaults(addr string) ClientOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.MinBackoff == 0 {
		o.MinBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Rand == nil {
		h := fnv.New64a()
		h.Write([]byte(addr))
		o.Rand = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Client is a serialized RPC client over one connection. It is safe for
// concurrent use; calls are issued one at a time. A call that fails at the
// transport layer marks the connection broken — the next call re-dials
// (subject to backoff) rather than reusing a stream whose framing may be
// desynced.
type Client struct {
	callMu sync.Mutex // serializes Calls

	mu         sync.Mutex // guards connection state below
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	connBinary bool // current connection negotiated the binary codec
	addr       string
	opts       ClientOptions
	backoff    time.Duration
	nextDialAt time.Time
	closed     bool

	// Scratch buffers for the binary call path, guarded by callMu (one call
	// at a time): the request frame is built in wbuf, the response read into
	// rbuf, the request ID rendered into idbuf. Reuse across calls is what
	// makes the binary publish path allocation-free.
	wbuf, rbuf, idbuf []byte
	// everConnected distinguishes first connects from reconnects in the
	// dial metrics: a successful dial after it is set counts as a repair
	// of a broken connection.
	everConnected bool

	// Request-ID and trace state: idBase identifies this client instance,
	// reqSeq numbers its calls, and traceState is the optional caller trace
	// set via SetTrace/SetSpan. It uses the same lock-free atomics as the
	// request counter — an immutable snapshot swapped wholesale — so
	// concurrent Calls never see a torn prefix/context pair and never
	// contend with the connection mutex for it.
	idBase     string
	reqSeq     atomic.Uint64
	traceState atomic.Pointer[clientTrace]
}

// clientTrace is one immutable trace snapshot: the request-ID prefix plus,
// when set via SetSpan, the span context propagated in the request frame.
type clientTrace struct {
	prefix string
	ctx    trace.Context
}

// clientInstances distinguishes clients within one process; combined with
// a per-process salt it keeps request IDs unique across an agent fleet.
var clientInstances atomic.Uint64

var processSalt = func() uint32 {
	h := fnv.New32a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	h.Write(b[:])
	return h.Sum32()
}()

// newIDBase builds the per-client request-ID prefix.
func newIDBase(addr string) string {
	h := fnv.New32a()
	h.Write([]byte(addr))
	return fmt.Sprintf("%08x", h.Sum32()^processSalt^uint32(clientInstances.Add(1)<<24))
}

// SetTrace sets a trace ID prefixed onto every subsequent request ID (use
// "" to clear), so a multi-call operation — an enforcement cycle's fan-out
// to the rate store and contract database — shares one grep-able token
// across client and server logs. It is now a shim over the span-context
// API: a bare prefix with no propagated context. Use SetSpan to carry a
// real span tree across the wire.
func (c *Client) SetTrace(prefix string) {
	if prefix == "" {
		c.traceState.Store(nil)
		return
	}
	c.traceState.Store(&clientTrace{prefix: prefix})
}

// SetSpan ties every subsequent Call to ctx until cleared (zero/invalid ctx
// clears): request IDs gain the 32-hex trace ID prefix, each Call starts a
// wire.call child span under ctx, and the request frame carries the child's
// context so the server's wire.serve span joins the same tree.
func (c *Client) SetSpan(ctx trace.Context) {
	if !ctx.Valid() {
		c.traceState.Store(nil)
		return
	}
	c.traceState.Store(&clientTrace{prefix: ctx.TraceID(), ctx: ctx})
}

// requestID renders the ID for call seq from a traceState snapshot:
// "<trace>.<base>-<seq>" with a trace set, "<base>-<seq>" without. The
// binary hot path renders the same bytes via appendRequestID instead, so
// this string is only materialized for spans, logs, and errors.
func (c *Client) requestID(st *clientTrace, seq uint64) string {
	if st != nil && st.prefix != "" {
		return fmt.Sprintf("%s.%s-%d", st.prefix, c.idBase, seq)
	}
	return fmt.Sprintf("%s-%d", c.idBase, seq)
}

// Dial connects a client to addr (TCP) with default options: 5s dial
// timeout, 10s per-call deadline, automatic reconnect with capped
// exponential backoff.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOptions{})
}

// DialOpts connects a client to addr with explicit options, failing if the
// first dial does.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	c := Connect(addr, opts)
	c.mu.Lock()
	err := c.dialLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Connect builds a client for addr without dialing: the connection is
// established lazily on the first Call (and re-established after failures).
// It never fails, which is what long-running agents want at startup — the
// servers may simply not be up yet.
func Connect(addr string, opts ClientOptions) *Client {
	return &Client{addr: addr, opts: opts.withDefaults(addr), idBase: newIDBase(addr)}
}

// NewClient wraps an existing connection. Without an address the client
// cannot reconnect: once broken it stays broken.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		// No CallTimeout default: the conn may be a pipe in tests, and the
		// historical NewClient contract had no deadlines.
		opts:   ClientOptions{DialTimeout: -1, CallTimeout: -1, DisableReconnect: true, Now: time.Now},
		idBase: newIDBase(conn.RemoteAddr().String()),
	}
}

// dialLocked establishes the connection (and negotiates the codec when the
// client prefers binary); c.mu must be held.
func (c *Client) dialLocked() error {
	d := net.Dialer{}
	if c.opts.DialTimeout > 0 {
		d.Timeout = c.opts.DialTimeout
	}
	mClientDials.Inc()
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		mClientDialFails.Inc()
		c.bumpBackoffLocked()
		return &TransientError{Err: err}
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	binaryMode := false
	if c.opts.Codec == CodecBinary {
		binaryMode, err = c.negotiate(conn, br, bw)
		if err != nil {
			// The server never answered the offer: treat it like a failed
			// dial so the backoff gate engages rather than half-using a
			// connection in an unknown codec state.
			conn.Close()
			mClientDialFails.Inc()
			c.bumpBackoffLocked()
			return &TransientError{Err: fmt.Errorf("codec negotiation: %w", err)}
		}
	}
	if c.everConnected {
		mClientReconnects.Inc()
	}
	c.everConnected = true
	c.conn = conn
	c.br = br
	c.bw = bw
	c.connBinary = binaryMode
	c.backoff = 0
	c.nextDialAt = time.Time{}
	return nil
}

// negotiate offers the binary codec on a fresh connection with one JSON
// round trip. An error response from the server — an old server answering
// an unknown method, or a new one declining — is a clean JSON fallback;
// only transport failures are returned as errors.
func (c *Client) negotiate(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) (bool, error) {
	if c.opts.CallTimeout > 0 {
		conn.SetDeadline(c.opts.Now().Add(c.opts.CallTimeout))
		defer conn.SetDeadline(time.Time{})
	}
	hello, err := json.Marshal(schemav1.Hello{Codec: schemav1.CodecBinary, Version: schemav1.Version})
	if err != nil {
		return false, err
	}
	id := fmt.Sprintf("%s-hello", c.idBase)
	if err := WriteMessage(bw, &Request{Method: NegotiateMethod, ID: id, Payload: hello}); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	var resp Response
	if err := ReadMessage(br, &resp); err != nil {
		return false, err
	}
	if resp.ID != "" && resp.ID != id {
		return false, fmt.Errorf("negotiation response ID %q does not match %q", resp.ID, id)
	}
	if resp.Error != "" {
		// Declined (or unknown method on an old server): stay on JSON.
		mClientNegotiated.With("json").Inc()
		return false, nil
	}
	var reply schemav1.HelloReply
	if err := json.Unmarshal(resp.Payload, &reply); err != nil {
		return false, fmt.Errorf("negotiation reply: %w", err)
	}
	if reply.Codec != schemav1.CodecBinary || reply.Version != schemav1.Version {
		mClientNegotiated.With("json").Inc()
		return false, nil
	}
	mClientNegotiated.With("binary").Inc()
	return true, nil
}

// bumpBackoffLocked doubles the re-dial backoff (capped) and sets the next
// allowed dial time with jitter in [backoff/2, backoff].
func (c *Client) bumpBackoffLocked() {
	if c.backoff <= 0 {
		c.backoff = c.opts.MinBackoff
	} else {
		c.backoff *= 2
		if c.backoff > c.opts.MaxBackoff {
			c.backoff = c.opts.MaxBackoff
		}
	}
	wait := c.backoff
	if half := int64(c.backoff / 2); half > 0 {
		wait = c.backoff/2 + time.Duration(c.opts.Rand.Int63n(half+1))
	}
	c.nextDialAt = c.opts.Now().Add(wait)
}

// ensureConn returns a live connection (and whether it negotiated the
// binary codec), re-dialing if allowed.
func (c *Client) ensureConn() (net.Conn, *bufio.Reader, *bufio.Writer, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, nil, false, ErrClientClosed
	}
	if c.conn != nil {
		return c.conn, c.br, c.bw, c.connBinary, nil
	}
	if c.addr == "" || c.opts.DisableReconnect {
		return nil, nil, nil, false, ErrBrokenConn
	}
	if now := c.opts.Now(); now.Before(c.nextDialAt) {
		mClientBackoff.Inc()
		return nil, nil, nil, false, &TransientError{
			Err: fmt.Errorf("reconnect to %s backed off for %s", c.addr, c.nextDialAt.Sub(now).Round(time.Millisecond)),
		}
	}
	if err := c.dialLocked(); err != nil {
		return nil, nil, nil, false, err
	}
	return c.conn, c.br, c.bw, c.connBinary, nil
}

// NegotiatedCodec reports the codec of the current connection: CodecBinary
// after a successful binary negotiation, CodecJSON otherwise (including
// when disconnected).
func (c *Client) NegotiatedCodec() Codec {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil && c.connBinary {
		return CodecBinary
	}
	return CodecJSON
}

// fail marks conn broken so no later call can reuse a desynced stream.
func (c *Client) fail(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn, c.br, c.bw = nil, nil, nil
		c.connBinary = false
		mClientBroken.Inc()
	}
	c.mu.Unlock()
}

// Call issues one request and decodes the response payload into reply
// (which may be nil to discard it). Transport failures — including the
// per-call deadline firing — come back wrapped in TransientError; a
// RemoteError means the server processed the request and rejected it.
// Either way the error carries this call's request ID, matching the span
// the server logged.
func (c *Client) Call(method string, args interface{}, reply interface{}) (err error) {
	st := c.traceState.Load()
	seq := c.reqSeq.Add(1)
	// The ID string is materialized only off the hot path — spans, logs,
	// error stamping. The binary transport renders the same bytes with
	// appendRequestID and never builds the string on success.
	id := ""
	if (st != nil && st.ctx.Valid()) || c.opts.Logger != nil {
		id = c.requestID(st, seq)
	}
	// With a span context attached, each Call is a wire.call child span
	// whose context rides the request frame; errors and overload sheds flag
	// the span, forcing tail sampling to keep the whole trace.
	var sp trace.Span
	var frameTrace string
	if st != nil && st.ctx.Valid() {
		sp = trace.Default().StartChild(st.ctx, "wire.call."+method)
		if c.opts.Service != "" {
			sp.SetService(c.opts.Service)
		}
		sp.Annotate(id)
		frameTrace = sp.Context().String()
	}
	mClientCalls.With(method).Inc()
	mClientInflight.Inc()
	var spanStart time.Time
	if c.opts.Logger != nil {
		spanStart = time.Now()
	}
	defer func() {
		mClientInflight.Dec()
		if err != nil {
			mClientErrors.With(classify(err)).Inc()
			if id == "" {
				id = c.requestID(st, seq)
			}
			// Stamp the ID onto the error for log correlation. Both error
			// types are freshly allocated per failure, so this mutation
			// cannot race another caller.
			var te *TransientError
			var re *RemoteError
			var oe *OverloadedError
			if errors.As(err, &te) {
				te.RequestID = id
			} else if errors.As(err, &re) {
				re.RequestID = id
			} else if errors.As(err, &oe) {
				oe.RequestID = id
				sp.Flag(trace.FlagShed)
			}
			sp.SetError(err)
		}
		sp.Finish()
		if l := c.opts.Logger; l != nil {
			attrs := []any{
				slog.String("method", method),
				slog.String("request_id", id),
				slog.Duration("took", time.Since(spanStart)),
			}
			if err != nil {
				l.Warn("wire.call", append(attrs, slog.Any("err", err))...)
			} else {
				l.Debug("wire.call", attrs...)
			}
		}
	}()
	c.callMu.Lock()
	defer c.callMu.Unlock()
	conn, br, bw, isBinary, err := c.ensureConn()
	if err != nil {
		return err
	}
	// Latency is measured only for calls that reached the transport;
	// backoff fast-fails above would otherwise flood the histogram with
	// near-zero samples. Traced calls stamp their trace ID as the bucket's
	// exemplar, linking a latency outlier straight to its span tree.
	start := time.Now()
	defer func() {
		if tid := sp.TraceID(); tid != "" {
			mClientCallSec.With(method).ObserveSinceExemplar(start, tid)
		} else {
			mClientCallSec.With(method).ObserveSince(start)
		}
	}()
	if c.opts.CallTimeout > 0 {
		conn.SetDeadline(c.opts.Now().Add(c.opts.CallTimeout))
	}
	if isBinary {
		return c.callBinary(conn, br, st, seq, method, frameTrace, args, reply)
	}
	if id == "" {
		id = c.requestID(st, seq)
	}
	var payload json.RawMessage
	if args != nil {
		body, merr := json.Marshal(args)
		if merr != nil {
			return fmt.Errorf("wire: marshal args: %w", merr)
		}
		payload = body
	}
	n, err := writeMessageN(bw, &Request{Method: method, ID: id, Payload: payload, Trace: frameTrace})
	if err != nil {
		c.fail(conn)
		return &TransientError{Err: err}
	}
	if err := bw.Flush(); err != nil {
		c.fail(conn)
		return &TransientError{Err: err}
	}
	mClientBytesOut.Add(int64(n))
	body, err := readFrame(br)
	if err != nil {
		c.fail(conn)
		return &TransientError{Err: err}
	}
	mClientBytesIn.Add(int64(4 + len(body)))
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		c.fail(conn)
		return &TransientError{Err: fmt.Errorf("wire: unmarshal: %w", err)}
	}
	if c.opts.CallTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	if resp.ID != "" && resp.ID != id {
		// The stream delivered someone else's response: framing has
		// desynced (or the server is broken). Drop the connection rather
		// than mis-attribute replies.
		c.fail(conn)
		return &TransientError{Err: fmt.Errorf("wire: response ID %q does not match request %q", resp.ID, id)}
	}
	if resp.Error != "" {
		if resp.Retryable {
			return &OverloadedError{
				Method: method, Message: resp.Error,
				RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
			}
		}
		return &RemoteError{Method: method, Message: resp.Error}
	}
	if reply != nil && resp.Payload != nil {
		return json.Unmarshal(resp.Payload, reply)
	}
	return nil
}

// callBinary issues one call on a binary-negotiated connection. The frame
// is built in the client's reusable scratch buffer — envelope header then
// payload, schema-binary when args implements schemav1.AppendMarshaler,
// JSON bytes otherwise — and the response is read into a second reusable
// buffer, so a publish round trip allocates nothing after warm-up.
// callMu is held; the per-call deadline was set by Call.
func (c *Client) callBinary(conn net.Conn, br *bufio.Reader, st *clientTrace, seq uint64, method, frameTrace string, args, reply interface{}) error {
	prefix := ""
	if st != nil {
		prefix = st.prefix
	}
	idb := appendRequestID(c.idbuf[:0], prefix, c.idBase, seq)
	c.idbuf = idb[:0]
	var flags byte
	bm, binArgs := args.(schemav1.AppendMarshaler)
	if args != nil && binArgs {
		flags |= reqFlagBinaryPayload
	}
	if _, ok := reply.(schemav1.WireUnmarshaler); ok {
		flags |= reqFlagAcceptBinary
	}
	w := append(c.wbuf[:0], 0, 0, 0, 0) // length prefix, fixed up below
	w = appendBinRequestHeader(w, flags, method, idb, frameTrace)
	if args != nil {
		if binArgs {
			w = bm.AppendBinary(w)
		} else {
			jb, merr := json.Marshal(args)
			if merr != nil {
				c.wbuf = w[:0]
				return fmt.Errorf("wire: marshal args: %w", merr)
			}
			w = append(w, jb...)
		}
	}
	c.wbuf = w[:0]
	if len(w)-4 > MaxMessageSize {
		return ErrMessageTooLarge
	}
	binary.BigEndian.PutUint32(w[:4], uint32(len(w)-4))
	if _, err := conn.Write(w); err != nil {
		c.fail(conn)
		return &TransientError{Err: err}
	}
	mClientBytesOut.Add(int64(len(w)))
	body, rbuf, err := readFrameInto(br, c.rbuf)
	c.rbuf = rbuf
	if err != nil {
		c.fail(conn)
		return &TransientError{Err: err}
	}
	mClientBytesIn.Add(int64(4 + len(body)))
	resp, err := decodeBinResponse(body)
	if err != nil {
		// The body was length-delimited so framing is intact, but a server
		// speaking the wrong codec mid-connection is not to be trusted.
		c.fail(conn)
		return &TransientError{Err: err}
	}
	if c.opts.CallTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	if len(resp.id) != 0 && !bytesEqual(resp.id, idb) {
		c.fail(conn)
		return &TransientError{Err: fmt.Errorf("wire: response ID %q does not match request %q", resp.id, idb)}
	}
	if len(resp.errMsg) != 0 {
		if resp.flags&respFlagRetryable != 0 {
			return &OverloadedError{
				Method: method, Message: string(resp.errMsg),
				RetryAfter: time.Duration(resp.retryAfterMS) * time.Millisecond,
			}
		}
		return &RemoteError{Method: method, Message: string(resp.errMsg)}
	}
	if reply != nil && len(resp.payload) != 0 {
		if resp.flags&respFlagBinaryPayload != 0 {
			u, ok := reply.(schemav1.WireUnmarshaler)
			if !ok {
				// Servers only binary-encode when the request offered
				// reqFlagAcceptBinary, so this is a server bug.
				c.fail(conn)
				return &TransientError{Err: fmt.Errorf("wire: unsolicited binary payload for %T", reply)}
			}
			return u.DecodeBinary(resp.payload)
		}
		return jsonUnmarshalPayload(resp.payload, reply)
	}
	return nil
}

// bytesEqual avoids pulling bytes.Equal into the hot path's import set.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Close closes the underlying connection. It is safe to call concurrently
// with an in-flight Call, which then fails with a transport error.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn, c.br, c.bw = nil, nil, nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// RemoteError is a server-side failure surfaced to the caller: the server
// is reachable and answered, so retrying the identical request is unlikely
// to help (permanent by IsTransient's classification).
type RemoteError struct {
	Method  string
	Message string
	// RequestID is the failed call's request ID, matching the server's
	// span for the same request.
	RequestID string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("wire: remote error from %s [%s]: %s", e.Method, e.RequestID, e.Message)
	}
	return fmt.Sprintf("wire: remote error from %s: %s", e.Method, e.Message)
}
