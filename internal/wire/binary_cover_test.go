package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"entitlement/internal/obs/trace"
	schemav1 "entitlement/schema/v1"
)

// Every proper prefix of a valid envelope must decode to an error — the
// torn-frame guarantee at the envelope layer.
func TestDecodeTruncatedEnvelopes(t *testing.T) {
	req := appendBinRequestHeader(nil, 0, "m", []byte("id"), "tr")
	for i := 0; i < len(req); i++ {
		if _, err := decodeBinRequest(req[:i]); err == nil {
			t.Errorf("request prefix %d/%d decoded", i, len(req))
		}
	}
	resp := appendBinResponseHeader(nil, 0, []byte("id"), "err", 5)
	for i := 0; i < len(resp); i++ {
		if _, err := decodeBinResponse(resp[:i]); err == nil {
			t.Errorf("response prefix %d/%d decoded", i, len(resp))
		}
	}
}

func TestReadFrameIntoGrowAndShortBody(t *testing.T) {
	// A body larger than the initial scratch grows the buffer once and is
	// read whole.
	big := bytes.Repeat([]byte{0xAB}, 600)
	frame := make([]byte, 4+len(big))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(big)))
	copy(frame[4:], big)
	body, kept, err := readFrameInto(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil || !bytes.Equal(body, big) {
		t.Fatalf("big frame: %v (len %d)", err, len(body))
	}
	// The kept buffer is reused for a second, smaller frame.
	frame2 := []byte{0, 0, 0, 2, 1, 2}
	body, _, err = readFrameInto(bufio.NewReader(bytes.NewReader(frame2)), kept)
	if err != nil || !bytes.Equal(body, []byte{1, 2}) {
		t.Fatalf("reused frame: %v %x", err, body)
	}
	// A header promising more bytes than the stream holds is a read error.
	if _, _, err := readFrameInto(bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2})), nil); err == nil {
		t.Error("short body accepted")
	}
}

// failAfterWriter fails the nth Write call.
type failAfterWriter struct{ n int }

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.n--
	if w.n < 0 {
		return 0, errors.New("sink failed")
	}
	return len(p), nil
}

func TestWriteMessageErrors(t *testing.T) {
	if err := WriteMessage(io.Discard, func() {}); err == nil || !strings.Contains(err.Error(), "marshal") {
		t.Errorf("unmarshalable value: %v", err)
	}
	if err := WriteMessage(io.Discard, strings.Repeat("x", MaxMessageSize)); !errors.Is(err, ErrMessageTooLarge) {
		t.Errorf("oversized value: %v", err)
	}
	if err := WriteMessage(&failAfterWriter{n: 0}, "ok"); err == nil {
		t.Error("header write failure ignored")
	}
	if err := WriteMessage(&failAfterWriter{n: 1}, "ok"); err == nil {
		t.Error("body write failure ignored")
	}
}

func TestBytesEqual(t *testing.T) {
	if bytesEqual([]byte("ab"), []byte("abc")) {
		t.Error("length mismatch equal")
	}
	if bytesEqual([]byte("ab"), []byte("ac")) {
		t.Error("content mismatch equal")
	}
	if !bytesEqual([]byte("ab"), []byte("ab")) {
		t.Error("equal slices unequal")
	}
}

// The server declines negotiation for a garbled payload or an unknown
// codec/version, with an error response on the same JSON connection.
func TestServerNegotiateDeclines(t *testing.T) {
	_, addr := startPayloadServer(t, ServerOptions{})
	for _, tc := range []struct {
		name    string
		payload string
		wantErr string
	}{
		{"garbled", `{"version":"not-an-int"}`, "bad negotiation payload"},
		{"wrong-version", `{"codec":"binary","version":99}`, "unsupported codec"},
		{"wrong-codec", `{"codec":"protobuf","version":1}`, "unsupported codec"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if err := WriteMessage(conn, &Request{Method: NegotiateMethod, ID: "n1", Payload: json.RawMessage(tc.payload)}); err != nil {
				t.Fatal(err)
			}
			var resp Response
			if err := ReadMessage(conn, &resp); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(resp.Error, tc.wantErr) {
				t.Errorf("error = %q, want %q", resp.Error, tc.wantErr)
			}
			// Still JSON-serving after the decline. (Fresh Response: omitted
			// fields would otherwise keep their previous values across
			// Unmarshal.)
			payload, _ := json.Marshal("still-here")
			if err := WriteMessage(conn, &Request{Method: "echo", ID: "n2", Payload: payload}); err != nil {
				t.Fatal(err)
			}
			var resp2 Response
			if err := ReadMessage(conn, &resp2); err != nil || resp2.Error != "" {
				t.Errorf("post-decline echo: %+v, %v", resp2, err)
			}
		})
	}
}

// Both serve loops honor ReadIdleTimeout, log through the server Logger,
// and stamp the Service name onto spans; the client side logs too.
func TestServeLoopsWithLoggerServiceAndIdleTimeout(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		t.Run(codec.String(), func(t *testing.T) {
			var serverLog, clientLog syncBuffer
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := NewServerPayload(l, func(tc trace.Context, method string, p Payload) (interface{}, error) {
				switch method {
				case "ok":
					return "fine", nil
				case "badresult":
					return func() {}, nil // json.Marshal will fail
				default:
					return nil, fmt.Errorf("boom")
				}
			}, ServerOptions{
				ReadIdleTimeout: 2 * time.Second,
				Logger:          debugLogger(&serverLog),
				Service:         "covertest",
			})
			defer srv.Close()
			c, err := DialOpts(l.Addr().String(), ClientOptions{Codec: codec, Logger: debugLogger(&clientLog)})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			root := trace.Default().StartRoot("cover-op")
			c.SetSpan(root.Context())
			defer root.Finish()
			var s string
			if err := c.Call("ok", nil, &s); err != nil || s != "fine" {
				t.Fatalf("ok = %q, %v", s, err)
			}
			var re *RemoteError
			if err := c.Call("fail", nil, nil); !errors.As(err, &re) {
				t.Fatalf("fail = %v", err)
			}
			// A result the codec cannot marshal becomes a remote error, not a
			// dropped connection.
			if err := c.Call("badresult", nil, nil); !errors.As(err, &re) {
				t.Fatalf("badresult = %v", err)
			}
			if err := c.Call("ok", nil, &s); err != nil {
				t.Fatalf("connection lost after marshal failure: %v", err)
			}
			for _, log := range []*syncBuffer{&serverLog, &clientLog} {
				if !strings.Contains(log.String(), "boom") {
					t.Error("error call not logged")
				}
			}
		})
	}
}

// A binary frame that starts with '{' but is not parseable JSON still gets
// the JSON-frame rejection, without an echoed ID.
func TestBinaryServerRejectsUnparseableJSONFrame(t *testing.T) {
	_, addr := startPayloadServer(t, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	negotiateRaw(t, conn)
	garbage := []byte(`{"method": truncated`)
	frame := make([]byte, 4+len(garbage))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(garbage)))
	copy(frame[4:], garbage)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	resp := readBinaryResponse(t, br)
	if !strings.Contains(string(resp.errMsg), "JSON frame") || len(resp.id) != 0 {
		t.Errorf("unparseable JSON frame: id=%q err=%q", resp.id, resp.errMsg)
	}
}

// scriptedBinaryServer accepts one connection, performs the server side of
// negotiation honestly, then hands each subsequent binary request to
// respond, which returns the raw response frame body to send.
func scriptedBinaryServer(t *testing.T, respond func(req binRequest) []byte) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var nreq Request
		if err := ReadMessage(br, &nreq); err != nil || nreq.Method != NegotiateMethod {
			return
		}
		reply, _ := json.Marshal(schemav1.HelloReply{Codec: schemav1.CodecBinary, Version: schemav1.Version})
		if err := WriteMessage(conn, &Response{ID: nreq.ID, Payload: reply}); err != nil {
			return
		}
		for {
			body, err := readFrame(br)
			if err != nil {
				return
			}
			req, err := decodeBinRequest(body)
			if err != nil {
				return
			}
			out := respond(req)
			frame := make([]byte, 4+len(out))
			binary.BigEndian.PutUint32(frame[:4], uint32(len(out)))
			copy(frame[4:], out)
			if _, err := conn.Write(frame); err != nil {
				return
			}
		}
	}()
	return l.Addr().String()
}

// A misbehaving binary server — garbage frames, wrong IDs, unsolicited
// binary payloads — produces transient errors and a connection reset, never
// a desync or a panic.
func TestCallBinaryServerMisbehaves(t *testing.T) {
	cases := []struct {
		name    string
		respond func(req binRequest) []byte
		reply   interface{}
		wantErr string
	}{
		{
			name:    "garbage-response",
			respond: func(req binRequest) []byte { return []byte{0x07, 0x00} },
			wantErr: "malformed binary frame",
		},
		{
			name: "wrong-id-length",
			respond: func(req binRequest) []byte {
				return appendBinResponseHeader(nil, 0, []byte("totally-different-id"), "", 0)
			},
			wantErr: "does not match",
		},
		{
			name: "wrong-id-content",
			respond: func(req binRequest) []byte {
				id := bytes.Repeat([]byte{'z'}, len(req.id))
				return appendBinResponseHeader(nil, 0, id, "", 0)
			},
			wantErr: "does not match",
		},
		{
			name: "unsolicited-binary-payload",
			respond: func(req binRequest) []byte {
				out := appendBinResponseHeader(nil, respFlagBinaryPayload, req.id, "", 0)
				return append(out, 0x01)
			},
			reply:   new(string), // not a WireUnmarshaler
			wantErr: "unsolicited binary payload",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := scriptedBinaryServer(t, tc.respond)
			c, err := DialOpts(addr, ClientOptions{Codec: CodecBinary})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			err = c.Call("m", nil, tc.reply)
			if !IsTransient(err) || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want transient containing %q", err, tc.wantErr)
			}
		})
	}
}

// Negotiation against servers that hang up, answer with the wrong ID, or
// send an unreadable reply fails the dial (transiently); a reply naming a
// different codec is a clean JSON fallback.
func TestClientNegotiateServerMisbehaves(t *testing.T) {
	script := func(t *testing.T, respond func(conn net.Conn, req Request)) string {
		t.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			var req Request
			if err := ReadMessage(bufio.NewReader(conn), &req); err != nil {
				return
			}
			respond(conn, req)
			time.Sleep(time.Second) // keep the conn open past the client's read
		}()
		return l.Addr().String()
	}

	t.Run("hangs-up", func(t *testing.T) {
		addr := script(t, func(conn net.Conn, req Request) { conn.Close() })
		if _, err := DialOpts(addr, ClientOptions{Codec: CodecBinary}); err == nil || !strings.Contains(err.Error(), "codec negotiation") {
			t.Errorf("dial = %v", err)
		}
	})
	t.Run("wrong-id", func(t *testing.T) {
		addr := script(t, func(conn net.Conn, req Request) {
			WriteMessage(conn, &Response{ID: "not-the-hello-id"})
		})
		if _, err := DialOpts(addr, ClientOptions{Codec: CodecBinary}); err == nil || !strings.Contains(err.Error(), "does not match") {
			t.Errorf("dial = %v", err)
		}
	})
	t.Run("garbled-reply", func(t *testing.T) {
		addr := script(t, func(conn net.Conn, req Request) {
			// Valid JSON, but not a HelloReply shape.
			WriteMessage(conn, &Response{ID: req.ID, Payload: json.RawMessage(`"not-a-reply"`)})
		})
		if _, err := DialOpts(addr, ClientOptions{Codec: CodecBinary}); err == nil || !strings.Contains(err.Error(), "negotiation reply") {
			t.Errorf("dial = %v", err)
		}
	})
	t.Run("other-codec-reply", func(t *testing.T) {
		addr := script(t, func(conn net.Conn, req Request) {
			reply, _ := json.Marshal(schemav1.HelloReply{Codec: schemav1.CodecJSON, Version: schemav1.Version})
			WriteMessage(conn, &Response{ID: req.ID, Payload: reply})
		})
		c, err := DialOpts(addr, ClientOptions{Codec: CodecBinary})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if got := c.NegotiatedCodec(); got != CodecJSON {
			t.Errorf("negotiated = %v, want json fallback", got)
		}
	})
}

// Argument marshal failures and oversized requests error before touching
// the connection, on both codec paths.
func TestCallArgumentErrors(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		t.Run(codec.String(), func(t *testing.T) {
			_, addr := startPayloadServer(t, ServerOptions{})
			c, err := DialOpts(addr, ClientOptions{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Call("echo", func() {}, nil); err == nil || !strings.Contains(err.Error(), "marshal args") {
				t.Errorf("unmarshalable args: %v", err)
			}
			err = c.Call("echo", strings.Repeat("x", MaxMessageSize), nil)
			if !errors.Is(err, ErrMessageTooLarge) {
				t.Errorf("oversized args: %v", err)
			}
			// The connection survives both local failures.
			var s string
			if err := c.Call("echo", "alive", &s); err != nil || s != "alive" {
				t.Errorf("post-failure echo: %q, %v", s, err)
			}
		})
	}
}

// A handler result too large for the frame limit drops the binary
// connection (the response cannot be framed); the client recovers on the
// next call via re-dial.
func TestBinaryResponseTooLargeDropsConnection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerPayload(l, func(tc trace.Context, method string, p Payload) (interface{}, error) {
		if method == "huge" {
			return strings.Repeat("x", MaxMessageSize), nil
		}
		return "ok", nil
	}, ServerOptions{})
	defer srv.Close()
	c, err := DialOpts(l.Addr().String(), ClientOptions{Codec: CodecBinary, MinBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("huge", nil, nil); !IsTransient(err) {
		t.Errorf("huge result: %v, want transient", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var s string
		if err := c.Call("small", nil, &s); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
