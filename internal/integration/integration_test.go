// Package integration exercises the whole system end-to-end across process
// boundaries: the granting pipeline produces contracts, they are served from
// a real TCP contract database, enforcement agents coordinate through a real
// TCP rate store, and the accountability demarcation holds on the outcome.
package integration

import (
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/core"
	"entitlement/internal/enforce"
	"entitlement/internal/kvstore"
	"entitlement/internal/netsim"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
	"entitlement/internal/trace"
)

var periodStart = time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)

// grantContracts runs the granting pipeline on a small synthetic setup and
// returns the populated store.
func grantContracts(t *testing.T) (*contractdb.Store, *core.Report) {
	t.Helper()
	topoOpts := topology.DefaultBackboneOptions()
	topoOpts.Regions = 4
	topoOpts.Chords = 2
	topoOpts.MinCapGbps = 20000
	topoOpts.MaxCapGbps = 30000
	topo, err := topology.Backbone(topoOpts)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.GenerateDemands(trace.DefaultOntology(0), trace.MatrixOptions{
		Regions: topo.RegionsSorted(), TotalRate: 10e12,
		Days: 100, Step: time.Hour, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := contractdb.NewStore()
	opts := core.DefaultOptions(periodStart)
	opts.MinPipeRate = 1e9
	opts.Approval = approval.Options{
		RepresentativeTMs: 2,
		Risk:              risk.Options{Scenarios: 15, Seed: 7},
		Seed:              9,
	}
	rep, err := core.New(topo, db).EstablishContracts(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, rep
}

func TestGrantThenEnforceOverTCP(t *testing.T) {
	db, rep := grantContracts(t)
	if len(rep.Contracts) == 0 {
		t.Fatal("no contracts granted")
	}

	// Serve the contract database and rate store over real sockets.
	dbL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dbSrv := contractdb.NewServer(dbL, db)
	defer dbSrv.Close()
	kvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kvSrv := kvstore.NewServer(kvL, kvstore.New())
	defer kvSrv.Close()

	// Pick a granted egress entitlement to enforce.
	var ent *contract.Entitlement
	var slo contract.SLO
	for i := range rep.Contracts {
		c := &rep.Contracts[i]
		for j := range c.Entitlements {
			e := &c.Entitlements[j]
			if e.Direction == contract.Egress && e.Rate > 1e9 {
				ent, slo = e, c.SLO
				break
			}
		}
		if ent != nil {
			break
		}
	}
	if ent == nil {
		t.Fatal("no enforceable egress entitlement")
	}
	if err := slo.Validate(); err != nil {
		t.Fatalf("granted SLO invalid: %v", err)
	}

	// A fleet of agents for that flow set, dialing over TCP, with demand 2x
	// the entitlement.
	const hosts = 10
	perHost := 2 * ent.Rate / hosts
	type member struct {
		agent *enforce.Agent
		id    string
	}
	var fleet []member
	for i := 0; i < hosts; i++ {
		id := fmt.Sprintf("host-%02d", i)
		dbc, err := contractdb.Dial(dbSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer dbc.Close()
		kvc, err := kvstore.Dial(kvSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer kvc.Close()
		a, err := enforce.NewAgent(enforce.AgentConfig{
			Host: id, NPG: ent.NPG, Class: ent.Class, Region: ent.Region,
			DB: dbc, Rates: kvc, Meter: enforce.NewStateful(),
			Prog: bpf.NewProgram(bpf.NewMap()), Policy: enforce.HostBased,
			RateTTL: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, member{agent: a, id: id})
	}

	// Closed loop: a remarked host's conforming rate is zero next cycle.
	now := periodStart.Add(24 * time.Hour)
	conforming := make(map[string]bool, hosts)
	for _, m := range fleet {
		conforming[m.id] = true
	}
	var last enforce.CycleReport
	var tailConform []float64
	const cycles = 20
	for cycle := 0; cycle < cycles; cycle++ {
		for _, m := range fleet {
			local := perHost
			localConf := perHost
			if !conforming[m.id] {
				localConf = 0
			}
			rep, err := m.agent.Cycle(now, local, localConf)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Enforced {
				t.Fatalf("granted entitlement not enforced for %s", ent.Key())
			}
			conforming[m.id] = bpf.HostGroup(m.id) >= rep.NonConformGroups
			last = rep
		}
		if cycle >= cycles-8 {
			tailConform = append(tailConform, last.ConformRate)
		}
	}
	// The enforced entitled rate over TCP matches the granted contract.
	if math.Abs(last.EntitledRate-ent.Rate) > 1e-3 {
		t.Errorf("enforced entitled rate %v != granted %v", last.EntitledRate, ent.Rate)
	}
	// The fleet's conforming aggregate hovers around the entitlement. Host
	// quantization (10 hosts = 20%-of-entitlement steps) leaves slack, so
	// judge the average of the trailing cycles.
	avgConform := 0.0
	for _, v := range tailConform {
		avgConform += v
	}
	avgConform /= float64(len(tailConform))
	if avgConform > ent.Rate*1.4 || avgConform < ent.Rate*0.4 {
		t.Errorf("conforming aggregate avg %v vs entitled %v", avgConform, ent.Rate)
	}

	// Accountability: the fleet exceeded its entitlement, so responsibility
	// for any drops lies with the service team.
	if got := contract.Accountability(ent.Rate, float64(hosts)*perHost, false); got != contract.ServiceTeam {
		t.Errorf("accountability = %v, want service-team", got)
	}
}

func TestGrantedContractDrivesDrillOutcome(t *testing.T) {
	// The drill's entitlement is honored end-to-end: run the compressed
	// drill and verify the §3.2 demarcation on its measured outcome.
	opts := netsim.DefaultDrillOptions()
	opts.Hosts = 16
	opts.StageTicks = 30
	rep, err := netsim.RunDrill(opts)
	if err != nil {
		t.Fatal(err)
	}
	total, conform, entitled := rep.ServiceRates()
	// During the 100% stage: conforming traffic within entitlement was
	// delivered → no breach for the conforming component.
	var stage *netsim.DrillStage
	for i := range rep.Stages {
		if rep.Stages[i].Name == "acl-100" {
			stage = &rep.Stages[i]
		}
	}
	if stage == nil {
		t.Fatal("no acl-100 stage")
	}
	i := stage.End - 1
	if conform[i] > entitled[i]*1.25 {
		t.Errorf("conforming %v exceeded entitlement %v", conform[i], entitled[i])
	}
	confLoss, _ := rep.LossSeries()
	if contract.Accountability(entitled[i], conform[i], confLoss[i] < 0.01) == contract.NetworkTeam {
		t.Error("network team blamed while conforming traffic was delivered")
	}
	// The service's total exceeded its entitlement mid-drill → the excess
	// is on the service team.
	mid := rep.Stages[2].Start
	if total[mid] > entitled[mid] {
		if got := contract.Accountability(entitled[mid], total[mid], false); got != contract.ServiceTeam {
			t.Errorf("accountability = %v, want service-team", got)
		}
	}
}

func TestIngressMeteringEndToEndOverTCP(t *testing.T) {
	// §8 ingress metering across real sockets: coordinator at the
	// destination, offers from source regions.
	db := contractdb.NewStore()
	err := db.Put(contract.Contract{
		NPG: "Sink", SLO: 0.999, Approved: true,
		Entitlements: []contract.Entitlement{{
			NPG: "Sink", Class: contract.ClassB, Region: "D",
			Direction: contract.Ingress, Rate: 100e9,
			Start: periodStart, End: periodStart.Add(90 * 24 * time.Hour),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	kvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kvSrv := kvstore.NewServer(kvL, kvstore.New())
	defer kvSrv.Close()

	coordKV, err := kvstore.Dial(kvSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer coordKV.Close()
	coord, err := enforce.NewIngressCoordinator(db, coordKV, "Sink", contract.ClassB, "D",
		[]topology.Region{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}

	srcKV, err := kvstore.Dial(kvSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer srcKV.Close()
	// Source regions publish offers over their own connections.
	if err := enforce.PublishIngressOffer(srcKV, "Sink", contract.ClassB, "D", "A", 150e9, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := enforce.PublishIngressOffer(srcKV, "Sink", contract.ClassB, "D", "B", 50e9, time.Minute); err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Cycle(periodStart.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enforced {
		t.Fatal("ingress entitlement not enforced")
	}
	// Sources read their meters remotely: 75G and 25G.
	a, ok, err := enforce.FetchIngressMeter(srcKV, "Sink", contract.ClassB, "D", "A")
	if err != nil || !ok || math.Abs(a-75e9) > 1e-3 {
		t.Errorf("meter A = %v %v %v, want 75e9", a, ok, err)
	}
	b, ok, err := enforce.FetchIngressMeter(srcKV, "Sink", contract.ClassB, "D", "B")
	if err != nil || !ok || math.Abs(b-25e9) > 1e-3 {
		t.Errorf("meter B = %v %v %v, want 25e9", b, ok, err)
	}
}
