package integration

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/granting"
	"entitlement/internal/hose"
	"entitlement/internal/kvstore"
	"entitlement/internal/topology"
)

// buildGrantd compiles the real daemon binary once per test run.
func buildGrantd(t *testing.T) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build grantd subprocess")
	}
	bin := filepath.Join(t.TempDir(), "grantd")
	cmd := exec.Command(goBin, "build", "-o", bin, "entitlement/cmd/grantd")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build grantd: %v\n%s", err, out)
	}
	return bin
}

// startGrantd launches the daemon and parses its listen address (and, on a
// journaled restart, the recovery line) from stdout.
func startGrantd(t *testing.T, bin string, args ...string) (cmd *exec.Cmd, addr string, recovered string) {
	t.Helper()
	cmd = exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	lines := make(chan string, 8)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(time.Minute)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("grantd exited before listening\nstderr:\n%s", stderr.String())
			}
			if strings.HasPrefix(line, "grantd recovered ") {
				recovered = line
				continue
			}
			if _, err := fmt.Sscanf(line, "grantd listening on %s ", &addr); err == nil {
				// Keep draining so the subprocess never blocks on stdout.
				go func() {
					for range lines {
					}
				}()
				return cmd, addr, recovered
			}
		case <-deadline:
			t.Fatalf("grantd did not report a listen address\nstderr:\n%s", stderr.String())
		}
	}
}

// TestGrantdCrashRecoverySockets is the ISSUE 7 end-to-end durability run:
// a real grantd process with a write-ahead journal and an external contract
// database is SIGKILLed mid-storm, restarted on the same journal directory,
// and must (a) serve every pre-kill decision byte-identically, (b) decide
// every in-flight submission — -fsync always makes accepted submissions
// durable — and (c) leave enforcement agents converged on the granted rate.
func TestGrantdCrashRecoverySockets(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test is not a -short test")
	}
	bin := buildGrantd(t)

	// The contract database and rate store outlive grantd, like production.
	store := contractdb.NewStore()
	dbL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dbSrv := contractdb.NewServer(dbL, store)
	defer dbSrv.Close()
	kvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kvSrv := kvstore.NewServer(kvL, kvstore.New())
	defer kvSrv.Close()

	walDir := filepath.Join(t.TempDir(), "wal")
	grantdArgs := func() []string {
		return []string{
			"-addr", "127.0.0.1:0", "-figure6",
			"-contractdb", dbSrv.Addr(),
			"-wal-dir", walDir, "-fsync", "always",
			// One risk pass per request with a heavy scenario count, so
			// decisions stream out slowly and the kill lands mid-stream.
			"-max-batch", "1", "-scenarios", "4000", "-tms", "3",
		}
	}
	proc, addr, _ := startGrantd(t, bin, grantdArgs()...)
	client, err := granting.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	// A storm of single-hose submissions across distinct flow sets. The
	// first is the one the enforcement agents watch.
	regions := []string{"A", "B", "C", "D", "E"}
	var ids []string
	for i := 0; i < 10; i++ {
		id, err := client.Submit(granting.Request{
			NPG: contract.NPG(fmt.Sprintf("Web%d", i)), StartUnix: periodStart.Unix(),
			Hoses: []hose.Request{{
				Class: contract.C2Low, Region: topology.Region(regions[i%len(regions)]),
				Direction: contract.Egress, Rate: float64(10+i) * 1e9,
			}},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}

	// Wait for at least one decision, then pull the trigger.
	preKill := make(map[string][]byte)
	for deadline := time.Now().Add(time.Minute); len(preKill) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no decision landed within a minute")
		}
		for _, id := range ids {
			if state, d, err := client.Status(id); err == nil && state == "decided" {
				preKill[id], _ = json.Marshal(d)
			}
		}
		if len(preKill) == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	client.Close()
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()
	if len(preKill) == len(ids) {
		t.Logf("note: all %d requests decided before the kill; recovery still verified", len(ids))
	}

	// Restart on the same journal directory.
	_, addr2, recovered := startGrantd(t, bin, grantdArgs()...)
	if recovered == "" {
		t.Error("restarted grantd printed no recovery line")
	}
	client2, err := granting.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()

	// (a) Pre-kill decisions are byte-identical; (b) with -fsync always no
	// submission may be lost — every id decides after recovery.
	for _, id := range ids {
		want, decidedPreKill := preKill[id]
		if decidedPreKill {
			state, d, err := client2.Status(id)
			if err != nil || state != "decided" {
				t.Fatalf("decided id %s after restart: state %q err %v (%s)", id, state, err, recovered)
			}
			got, _ := json.Marshal(d)
			if !bytes.Equal(got, want) {
				t.Errorf("id %s not byte-identical across the crash:\nwant %s\ngot  %s", id, want, got)
			}
			continue
		}
		d, err := client2.Decide(id, 2*time.Minute)
		if err != nil {
			t.Fatalf("in-flight id %s lost to the crash: %v (%s)", id, err, recovered)
		}
		if d.Status != granting.StatusApproved {
			t.Errorf("re-decided id %s: %s (%s)", id, d.Status, d.Err)
		}
	}

	// (c) Agents dialing the surviving control plane converge on the grant.
	c0, ok := store.Get("Web0")
	if !ok {
		t.Fatal("Web0 contract missing from the database after recovery")
	}
	granted := c0.Entitlements[0].Rate
	dbc, err := contractdb.Dial(dbSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dbc.Close()
	kvc, err := kvstore.Dial(kvSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer kvc.Close()
	agent, err := enforce.NewAgent(enforce.AgentConfig{
		Host: "crash-host-0", NPG: "Web0", Class: contract.C2Low, Region: "A",
		DB: dbc, Rates: kvc, Meter: enforce.NewStateful(),
		Prog: bpf.NewProgram(bpf.NewMap()), Policy: enforce.HostBased,
		RateTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := periodStart.Add(24 * time.Hour)
	enforced := false
	var got float64
	for cycle := 0; cycle < 2 && !enforced; cycle++ {
		now = now.Add(10 * time.Second)
		rep, err := agent.Cycle(now, 5e9, 5e9)
		if err != nil {
			t.Fatal(err)
		}
		enforced, got = rep.Enforced, rep.EntitledRate
	}
	if !enforced {
		t.Fatal("agent did not reconverge on the recovered grant within 2 cycles")
	}
	if got != granted {
		t.Errorf("agent enforces %v, recovered grant says %v", got, granted)
	}
}
