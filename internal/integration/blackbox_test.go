package integration

import (
	"os"
	"strings"
	"testing"
	"time"

	"entitlement/internal/netsim"
	"entitlement/internal/obs"
	otrace "entitlement/internal/obs/trace"
	"entitlement/internal/slo"
	"entitlement/internal/topology"
)

// TestBlackboxIncidentReplay is the acceptance drill for the incident black
// box: a netsim drill runs with an injected incident that blackholes half of
// Coldstorage's traffic AND knocks out three agents' control-plane
// dependencies, while a control-plane topology mirrors the blackholed link.
// The burn-rate alerts must arm a capture, the capture must close with an
// attribution envelope naming the injected root cause — the disabled link,
// the breached contract with its service-attributed overage, and the
// fail-open agents with their trace IDs — and `sloctl replay`'s engine path
// must re-derive the live run's availability series, alert sequence, and
// closing conformance verdicts byte-identically from the capture alone.
// Black-box lifecycle metrics are pinned with exact deltas.
func TestBlackboxIncidentReplay(t *testing.T) {
	const (
		stageTicks = 60
		// Inside the entitlement-reduced stage, clear of the ACL stages.
		incidentLo = 65
		incidentHi = 85
		failAgents = 3
		objective  = 0.999
	)
	simStart := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	simTimeAt := func(tick int) time.Time {
		return simStart.Add(time.Duration(tick+1) * time.Second)
	}

	// Control-plane topology: one backbone link the incident disables and
	// restores, so the mutation journal can implicate it.
	topo := topology.New()
	srlg := topo.EnsureSRLG(7, 0.001)
	linkID, err := topo.AddLink("TEST", "REMOTE", 4e12, 0.0001, srlg)
	if err != nil {
		t.Fatal(err)
	}

	// Windows compressed so every alert clears inside the 360-tick run: the
	// slow pair's bad intervals age out of the 240s budget window by tick
	// ~330, letting the incident close and the envelope publish.
	eng := slo.NewEngine(slo.NewRecorder(slo.DefaultRingCapacity), slo.Options{
		Windows: slo.Windows{
			Fast:     30 * time.Second,
			FastLong: 60 * time.Second,
			Slow:     120 * time.Second,
			SlowLong: 240 * time.Second,
		},
	})
	dir := t.TempDir()
	bb, err := slo.NewBlackbox(slo.BlackboxOptions{Dir: dir, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachCapture(bb)

	ms, err := obs.Serve("127.0.0.1:0", nil,
		obs.Route{Pattern: "/slo/incidents", Handler: bb.IncidentsHandler()})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := scrapeHTTP(t, ms.Addr())

	opts := netsim.DefaultDrillOptions()
	opts.Hosts = 10
	opts.FlowsPerHost = 2
	opts.StageTicks = stageTicks
	opts.Conformance = eng
	opts.Spans = bb
	opts.Tracer = otrace.NewCollector(otrace.Options{})
	opts.Incident = &netsim.DrillIncident{
		StartTick: incidentLo, EndTick: incidentHi, DropFraction: 0.5,
		FailAgents: failAgents, Topology: topo, LinkID: linkID,
	}

	var armedTicks int
	opts.OnTick = func(tick int) {
		if bb.Armed() {
			armedTicks++
		}
	}
	if _, err := netsim.RunDrill(opts); err != nil {
		t.Fatal(err)
	}

	// --- Lifecycle: armed during the incident, closed by run end. -------
	if armedTicks == 0 {
		t.Fatal("black box never armed during the incident")
	}
	if bb.Armed() {
		t.Fatal("black box still armed at run end: the incident never closed")
	}
	envs := bb.Envelopes()
	if len(envs) != 1 {
		t.Fatalf("got %d incident envelopes, want exactly 1", len(envs))
	}
	env := envs[0]

	// --- Root cause: the blackholed link, via the mutation journal. -----
	if env.Network.DeltaTruncated {
		t.Error("network attribution fell back to truncated-journal mode")
	}
	var hitLink bool
	for _, lc := range env.Network.Changed {
		if lc.ID == linkID {
			hitLink = true
			if lc.Name != "TEST->REMOTE" {
				t.Errorf("implicated link name %q, want TEST->REMOTE", lc.Name)
			}
			if lc.SRLG != srlg {
				t.Errorf("implicated link SRLG %d, want %d", lc.SRLG, srlg)
			}
			if lc.Disabled {
				t.Error("link still reads disabled at close despite the rollback")
			}
		}
	}
	if !hitLink {
		t.Fatalf("envelope did not implicate the blackholed link: %+v", env.Network)
	}

	// --- Demarcation: breached contract, service-attributed overage. ----
	var cold, warm *slo.EnvelopeContract
	for i := range env.Contracts {
		switch env.Contracts[i].Contract {
		case "Coldstorage":
			cold = &env.Contracts[i]
		case "Warmstorage":
			warm = &env.Contracts[i]
		}
	}
	if cold == nil || warm == nil {
		t.Fatalf("envelope missing contracts: %+v", env.Contracts)
	}
	if !cold.Breached || cold.Availability >= objective {
		t.Errorf("Coldstorage not reported breached: breached=%v avail=%v", cold.Breached, cold.Availability)
	}
	if cold.ServiceOverageRate <= 0 {
		t.Error("Coldstorage's out-of-entitlement demand was not service-attributed")
	}
	if cold.NetworkThrottledRate <= 0 {
		t.Error("no network-attributed throttled rate on the breached contract")
	}
	var netSeg *slo.SegmentVerdict
	for i := range cold.Segments {
		if cold.Segments[i].Segment == "TEST/net" {
			netSeg = &cold.Segments[i]
		}
	}
	if netSeg == nil || netSeg.Verdict != "network" {
		t.Errorf("ground-truth segment verdict = %+v, want network-attributed TEST/net", netSeg)
	}
	if warm.Breached {
		t.Error("bystander Warmstorage reported breached")
	}
	for _, sv := range warm.Segments {
		if sv.Verdict == "network" {
			t.Errorf("Warmstorage segment %s/%s wrongly network-attributed", sv.Segment, sv.Class)
		}
	}

	// --- Agent attribution: the injected dependency outage. -------------
	failedOpen := 0
	for _, ai := range env.Agents {
		if ai.FailOpenCycles > 0 {
			failedOpen++
			// Cycle trace IDs are 32-hex roots minted from the per-process
			// random trace identity (the old "<host>-c<seq>" form collided
			// across processes sharing a host name).
			if _, _, ok := otrace.ParseTraceID(ai.FailOpenTraceID); !ok {
				t.Errorf("agent %s fail-open trace ID %q is not a 32-hex trace ID", ai.Host, ai.FailOpenTraceID)
			}
			if ai.FirstFailOpen.Before(simTimeAt(incidentLo)) || ai.FirstFailOpen.After(simTimeAt(incidentHi)) {
				t.Errorf("agent %s first failed open at %v, outside the incident window", ai.Host, ai.FirstFailOpen)
			}
		}
	}
	if failedOpen != failAgents {
		t.Errorf("envelope names %d fail-open agents, want %d", failedOpen, failAgents)
	}

	// --- Golden replay: byte-identical re-derivation from disk. ---------
	caps, err := slo.ListCaptures(dir)
	if err != nil || len(caps) != 1 {
		t.Fatalf("captures in %s: %v, %v (want exactly 1)", dir, caps, err)
	}
	c, err := slo.ReadCapture(caps[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.Truncated {
		t.Fatal("capture decoded with a truncated tail")
	}
	res, err := c.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatalf("replay diverged from the live run: %s", res.Divergence)
	}
	if res.Evals == 0 || res.Samples == 0 || res.Spans == 0 {
		t.Errorf("replay saw evals=%d samples=%d spans=%d, want all positive", res.Evals, res.Samples, res.Spans)
	}
	if res.Report == nil {
		t.Fatal("replay produced no closing report")
	}
	// The close-time report is clean by construction — the incident can only
	// close once its badness ages out of the rolling windows — but it must
	// still carry the contract with its objective on record.
	repCold := findContract(t, res.Report, "Coldstorage")
	if !repCold.HasSLO || repCold.SLO != objective {
		t.Errorf("replayed closing report lost the objective: %+v", repCold)
	}
	// The replayed alert sequence must include the arming fire and end
	// cleared (fire=true first, final transition inactive).
	if len(res.Alerts) < 2 || !res.Alerts[0].Active || res.Alerts[len(res.Alerts)-1].Active {
		t.Errorf("replayed alert sequence %+v, want fire-first clear-last", res.Alerts)
	}

	// --- Causal paths: incident cycles carry their full span trees. -----
	// Tail sampling always retains degraded/fail-open traces, so the
	// capture must hold at least one fail-open cycle whose tree shows the
	// enforce.cycle root — the evidence `sloctl replay` renders.
	var treed int
	for _, sp := range c.Spans() {
		if !sp.FailedOpen || len(sp.Tree) == 0 {
			continue
		}
		treed++
		rootOK := false
		for _, sr := range sp.Tree {
			if sr.Name == "enforce.cycle" && sr.Parent == "" {
				rootOK = true
				if sr.Service != sp.Host {
					t.Errorf("cycle root service %q, want host %q", sr.Service, sp.Host)
				}
			}
		}
		if !rootOK {
			t.Errorf("fail-open cycle tree for %s has no enforce.cycle root", sp.Host)
		}
	}
	if treed == 0 {
		t.Error("no fail-open cycle span in the capture carries a trace tree")
	}

	// The envelope is also persisted next to the capture.
	envPath := strings.TrimSuffix(caps[0], ".cap") + ".json"
	if _, err := os.Stat(envPath); err != nil {
		t.Errorf("envelope file missing: %v", err)
	}

	// --- Exact metric deltas for the capture lifecycle. -----------------
	final := scrapeHTTP(t, ms.Addr())
	delta := func(name string) float64 { return final.Value(name) - base.Value(name) }
	if got := delta("entitlement_slo_blackbox_captures_total"); got != 1 {
		t.Errorf("blackbox captures delta = %v, want exactly 1", got)
	}
	if got := delta("entitlement_slo_incidents_total"); got != 1 {
		t.Errorf("incidents delta = %v, want exactly 1", got)
	}
	if got := final.Value("entitlement_slo_blackbox_armed"); got != 0 {
		t.Errorf("blackbox armed gauge = %v at run end, want 0", got)
	}
	// Every byte the counter accounted went into this one capture file.
	fi, err := os.Stat(caps[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := delta("entitlement_slo_blackbox_bytes_written_total"); got != float64(fi.Size()) {
		t.Errorf("blackbox bytes delta = %v, want the capture file's size %d", got, fi.Size())
	}
	if env.Capture.Bytes <= 0 || env.Capture.Bytes > fi.Size() {
		t.Errorf("envelope byte accounting %d out of range (file is %d)", env.Capture.Bytes, fi.Size())
	}
	if got := delta("entitlement_slo_blackbox_errors_total"); got != 0 {
		t.Errorf("blackbox errors delta = %v, want 0", got)
	}
}
