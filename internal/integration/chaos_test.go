package integration

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/faults"
	"entitlement/internal/kvstore"
	"entitlement/internal/obs"
	"entitlement/internal/wire"
)

// scrapeHTTP fetches and parses the Prometheus exposition from a live obs
// server — the same path a real scraper takes, so these assertions hold for
// what an operator's dashboard would actually show.
func scrapeHTTP(t *testing.T, addr string) obs.Scrape {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	// Drop the keep-alive connection so the scrape leaves no goroutine
	// behind for the leak check at teardown.
	defer http.DefaultClient.CloseIdleConnections()
	s, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape parse: %v", err)
	}
	return s
}

// chaosClientOptions are aggressive failure settings so the test exercises
// deadlines and reconnect within seconds instead of minutes.
func chaosClientOptions() wire.ClientOptions {
	return wire.ClientOptions{
		DialTimeout: 500 * time.Millisecond,
		CallTimeout: 150 * time.Millisecond,
		MinBackoff:  10 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	}
}

// TestChaosEnforcementSurvivesOutage runs a fleet of agents against real
// TCP contractdb and kvstore servers reached through fault-injecting
// proxies, then black-holes both stores for longer than the staleness
// budget. The fleet must (1) never wedge — every cycle completes within
// its deadline budget, (2) stay fail-static while its cached data is
// within budget, (3) fail open (no marking) within one cycle of budget
// expiry, and (4) reconverge within five cycles of the outage lifting.
// It also checks nothing leaks goroutines.
func TestChaosEnforcementSurvivesOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test uses real sockets and sleeps")
	}
	baseGoroutines := runtime.NumGoroutine()

	// Metrics endpoint: the outage story below is asserted from scraped
	// exposition alone, not from CycleReports.
	ms, err := obs.Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	const (
		entitled = 100e9
		hosts    = 3
		budget   = 1200 * time.Millisecond
		// One degraded cycle can burn up to 5 RPC deadlines (2 publishes,
		// 2 aggregations, 1 contract query) before failing over to cache.
		maxCycle = 5*150*time.Millisecond + 500*time.Millisecond
	)

	// Real servers: one approved contract active around wall-clock now.
	db := contractdb.NewStore()
	if err := db.Put(contract.Contract{
		NPG: "Chaos", SLO: 0.999, Approved: true,
		Entitlements: []contract.Entitlement{{
			NPG: "Chaos", Class: contract.ClassB, Region: "R",
			Direction: contract.Egress, Rate: entitled,
			Start: time.Now().Add(-time.Hour), End: time.Now().Add(time.Hour),
		}},
	}); err != nil {
		t.Fatal(err)
	}
	dbL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dbSrv := contractdb.NewServer(dbL, db)
	defer dbSrv.Close()
	kvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kvSrv := kvstore.NewServerOpts(kvL, kvstore.New(), kvstore.ServerOptions{
		CompactEvery: 100 * time.Millisecond,
		Wire:         wire.ServerOptions{ReadIdleTimeout: 10 * time.Second},
	})
	defer kvSrv.Close()

	// Chaos proxies in front of both stores.
	dbProxy, err := faults.NewProxy(dbSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dbProxy.Close()
	kvProxy, err := faults.NewProxy(kvSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer kvProxy.Close()

	// The fleet dials through the proxies.
	type member struct {
		agent *enforce.Agent
		prog  *bpf.Program
		id    string
	}
	var fleet []member
	for i := 0; i < hosts; i++ {
		id := fmt.Sprintf("chaos-%02d", i)
		dbc, err := contractdb.DialOpts(dbProxy.Addr(), chaosClientOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer dbc.Close()
		kvc, err := kvstore.DialOpts(kvProxy.Addr(), chaosClientOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer kvc.Close()
		prog := bpf.NewProgram(bpf.NewMap())
		a, err := enforce.NewAgent(enforce.AgentConfig{
			Host: id, NPG: "Chaos", Class: contract.ClassB, Region: "R",
			DB: dbc, Rates: kvc, Meter: enforce.NewStateful(), Prog: prog,
			Policy: enforce.HostBased,
			// TTL long enough that published rates survive the outage.
			RateTTL:         30 * time.Second,
			StalenessBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, member{agent: a, prog: prog, id: id})
	}

	// Demand 2x the entitlement, split across hosts, with the closed-loop
	// feedback the other integration tests use: a remarked host's
	// conforming rate drops to zero next cycle.
	perHost := 2 * entitled / hosts
	conforming := map[string]bool{}
	for _, m := range fleet {
		conforming[m.id] = true
	}
	// runCycle drives every agent concurrently (as the real fleet does —
	// one outage must not serialize into N×deadline cadence) and asserts
	// on the main goroutine.
	type cycleResult struct {
		rep  enforce.CycleReport
		err  error
		took time.Duration
	}
	runCycle := func() map[string]enforce.CycleReport {
		results := make([]cycleResult, hosts)
		var wg sync.WaitGroup
		for i, m := range fleet {
			localConf := perHost
			if !conforming[m.id] {
				localConf = 0
			}
			wg.Add(1)
			go func(i int, a *enforce.Agent, localConf float64) {
				defer wg.Done()
				start := time.Now()
				rep, err := a.Cycle(time.Now(), perHost, localConf)
				results[i] = cycleResult{rep: rep, err: err, took: time.Since(start)}
			}(i, m.agent, localConf)
		}
		wg.Wait()
		out := make(map[string]enforce.CycleReport, hosts)
		for i, m := range fleet {
			r := results[i]
			if r.err != nil {
				t.Fatalf("%s: hard cycle error: %v", m.id, r.err)
			}
			if r.took > maxCycle {
				t.Fatalf("%s: cycle wedged for %v (> %v)", m.id, r.took, maxCycle)
			}
			if r.rep.Enforced {
				conforming[m.id] = bpf.HostGroup(m.id) >= r.rep.NonConformGroups
			} else {
				conforming[m.id] = true
			}
			out[m.id] = r.rep
		}
		return out
	}

	base := scrapeHTTP(t, ms.Addr())

	// --- Phase 1: healthy baseline. -----------------------------------
	var marked bool
	for cycle := 0; cycle < 10; cycle++ {
		for id, rep := range runCycle() {
			if !rep.Enforced || rep.Degraded {
				t.Fatalf("healthy phase: %s report %+v", id, rep)
			}
			if rep.NonConformGroups > 0 {
				marked = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !marked {
		t.Fatal("fleet at 2x entitlement never marked traffic while healthy")
	}
	healthy := scrapeHTTP(t, ms.Addr())
	if got := healthy.Value("entitlement_enforce_degraded_agents") - base.Value("entitlement_enforce_degraded_agents"); got != 0 {
		t.Errorf("metrics: degraded_agents moved by %v during the healthy phase", got)
	}
	lastSuccessKey := func(host string) string {
		return fmt.Sprintf("entitlement_enforce_last_success_timestamp_seconds{host=%q}", host)
	}
	for _, m := range fleet {
		if v := healthy.Value(lastSuccessKey(m.id)); v <= 0 {
			t.Errorf("metrics: last_success{%s} = %v after healthy cycles, want a recent timestamp", m.id, v)
		}
	}

	// --- Phase 2: both stores black-holed past the budget. ------------
	outageStart := time.Now()
	dbProxy.SetMode(faults.Blackhole)
	kvProxy.SetMode(faults.Blackhole)
	dbProxy.CutConnections()
	kvProxy.CutConnections()

	sawFailStatic := map[string]bool{}
	failedOpenAt := map[string]time.Time{}
	for len(failedOpenAt) < hosts {
		if time.Since(outageStart) > budget+3*maxCycle {
			t.Fatalf("only %d/%d agents failed open %v after outage start",
				len(failedOpenAt), hosts, time.Since(outageStart))
		}
		for id, rep := range runCycle() {
			if !rep.Degraded {
				t.Fatalf("outage phase: %s cycle not degraded: %+v", id, rep)
			}
			if rep.Enforced && !rep.FailedOpen {
				sawFailStatic[id] = true
			}
			if rep.FailedOpen {
				if _, done := failedOpenAt[id]; !done {
					failedOpenAt[id] = time.Now()
				}
			}
		}
	}
	for _, m := range fleet {
		if !sawFailStatic[m.id] {
			t.Errorf("%s never ran fail-static within the budget", m.id)
		}
		// Fail open must land within one cycle of budget expiry: a cycle
		// may start just before expiry, so its successor — the first to
		// observe the stale clock — completes at worst two bounded cycle
		// durations later.
		deadline := outageStart.Add(budget + 2*maxCycle)
		if at := failedOpenAt[m.id]; at.After(deadline) {
			t.Errorf("%s failed open %v after budget expiry", m.id, at.Sub(outageStart)-budget)
		}
		// Fail open means no marking action in the kernel map.
		if m.prog.Actions.Len() != 0 {
			t.Errorf("%s kept %d marking actions after fail-open", m.id, m.prog.Actions.Len())
		}
	}

	// Mid-outage scrape: the dashboard must show the whole fleet degraded
	// and failed open, and the fail-open transition counter must have
	// fired exactly once per agent even though every agent has run several
	// fail-open cycles by now.
	outage := scrapeHTTP(t, ms.Addr())
	if got := outage.Value("entitlement_enforce_degraded_agents") - base.Value("entitlement_enforce_degraded_agents"); got != hosts {
		t.Errorf("metrics: degraded_agents delta during outage = %v, want %d", got, hosts)
	}
	if got := outage.Value("entitlement_enforce_failopen_agents") - base.Value("entitlement_enforce_failopen_agents"); got != hosts {
		t.Errorf("metrics: failopen_agents delta during outage = %v, want %d", got, hosts)
	}
	if got := outage.Value("entitlement_enforce_failopen_transitions_total") - base.Value("entitlement_enforce_failopen_transitions_total"); got != hosts {
		t.Errorf("metrics: failopen_transitions delta = %v, want exactly %d (once per agent per outage)", got, hosts)
	}
	if got := outage.Value("entitlement_enforce_degraded_cycles_total") - base.Value("entitlement_enforce_degraded_cycles_total"); got < hosts {
		t.Errorf("metrics: degraded_cycles delta = %v, want >= %d", got, hosts)
	}
	// Every outage cycle is degraded, so the last-success timestamp must be
	// frozen at its healthy-phase value: staleness is computable from
	// scrapes alone, without CycleReports.
	for _, m := range fleet {
		if h, o := healthy.Value(lastSuccessKey(m.id)), outage.Value(lastSuccessKey(m.id)); o != h {
			t.Errorf("metrics: last_success{%s} advanced during the outage: %v -> %v", m.id, h, o)
		}
	}

	// --- Phase 3: outage lifts; reconverge within 5 cycles. -----------
	dbProxy.SetMode(faults.Pass)
	kvProxy.SetMode(faults.Pass)
	dbProxy.CutConnections()
	kvProxy.CutConnections()

	recovered := map[string]bool{}
	for cycle := 0; cycle < 5; cycle++ {
		for id, rep := range runCycle() {
			if rep.Enforced && !rep.Degraded {
				recovered[id] = true
			}
		}
		if len(recovered) == hosts {
			break
		}
		time.Sleep(30 * time.Millisecond)
	}
	if len(recovered) != hosts {
		t.Fatalf("only %d/%d agents recovered within 5 cycles", len(recovered), hosts)
	}
	// With demand back at 2x entitlement the fleet must re-mark traffic.
	remarked := false
	for cycle := 0; cycle < 10 && !remarked; cycle++ {
		for _, rep := range runCycle() {
			if rep.Enforced && rep.NonConformGroups > 0 {
				remarked = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !remarked {
		t.Error("fleet never re-enforced marking after the outage lifted")
	}

	// Post-recovery scrape: the gauges fall back to baseline, and the
	// reconnect counter accounts for the injected connection cuts. The
	// phase-3 cut alone forces every one of the fleet's 2×hosts clients
	// (contractdb + kvstore per host) through at least one successful
	// re-dial; black-hole-phase re-dials (TCP connects that then time out)
	// add more, so this is a floor. The exact cut-for-cut accounting is
	// pinned by wire's own fault-injection metrics test.
	final := scrapeHTTP(t, ms.Addr())
	if got := final.Value("entitlement_enforce_degraded_agents") - base.Value("entitlement_enforce_degraded_agents"); got != 0 {
		t.Errorf("metrics: degraded_agents delta after recovery = %v, want 0", got)
	}
	if got := final.Value("entitlement_enforce_failopen_agents") - base.Value("entitlement_enforce_failopen_agents"); got != 0 {
		t.Errorf("metrics: failopen_agents delta after recovery = %v, want 0", got)
	}
	if got := final.Value("entitlement_wire_client_reconnects_total") - base.Value("entitlement_wire_client_reconnects_total"); got < 2*hosts {
		t.Errorf("metrics: reconnects delta = %v, want >= %d (every client re-dialed after the recovery cut)", got, 2*hosts)
	}
	for _, m := range fleet {
		if got := final.Value(fmt.Sprintf("entitlement_enforce_stale_seconds{host=%q}", m.id)); got != 0 {
			t.Errorf("metrics: stale_seconds{%s} after recovery = %v, want 0", m.id, got)
		}
		// Recovery phase: the last-success timestamp must strictly advance
		// past its outage-frozen value once healthy cycles resume.
		if o, f := outage.Value(lastSuccessKey(m.id)), final.Value(lastSuccessKey(m.id)); f <= o {
			t.Errorf("metrics: last_success{%s} did not advance after recovery: %v -> %v", m.id, o, f)
		}
	}

	// --- Teardown: nothing may leak. ----------------------------------
	for _, m := range fleet {
		_ = m
	}
	dbProxy.Close()
	kvProxy.Close()
	dbSrv.Close()
	kvSrv.Close()
	ms.Close()
	waitForGoroutines(t, baseGoroutines)
}

// waitForGoroutines polls until the goroutine count returns near base.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestAgentRunNotWedgedByDeadServer is the regression test for the
// original failure mode: wire.Client.Call blocking forever on a peer that
// accepts connections but never answers, wedging Agent.Run. With per-call
// deadlines the loop must keep cycling (degraded) and stop promptly on
// context cancellation.
func TestAgentRunNotWedgedByDeadServer(t *testing.T) {
	// A listener that accepts and then ignores its connections.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		var held []net.Conn
		defer func() {
			for _, c := range held {
				c.Close()
			}
		}()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			held = append(held, conn)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	kvc, err := kvstore.DialOpts(l.Addr().String(), wire.ClientOptions{
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 100 * time.Millisecond,
		MinBackoff:  5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kvc.Close()

	a, err := enforce.NewAgent(enforce.AgentConfig{
		Host: "h1", NPG: "X", Class: contract.ClassB, Region: "R",
		DB: contractdb.NewStore(), Rates: kvc,
		Meter: enforce.NewStateful(), Prog: bpf.NewProgram(bpf.NewMap()),
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	cycles := 0
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- a.Run(ctx, func() (float64, float64) { return 1e9, 1e9 }, enforce.RunOptions{
			Period:  50 * time.Millisecond,
			OnCycle: func(enforce.CycleReport) { cycles++ },
		})
	}()
	// The ctx may expire mid-cycle; the in-flight cycle still burns its
	// bounded call deadlines, and -race on a loaded single-core machine adds
	// heavy scheduler slack on top. The property under test is that Run is
	// bounded at all — the pre-deadline client blocked here forever.
	select {
	case <-done:
		t.Logf("Run returned after %v (ctx was 1.5s)", time.Since(start))
	case <-time.After(10 * time.Second):
		t.Fatal("Agent.Run wedged on a never-responding server")
	}
	if cycles < 3 {
		t.Errorf("only %d cycles completed against a dead server", cycles)
	}
}
