package integration

import (
	"net"
	"testing"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/granting"
	"entitlement/internal/hose"
	"entitlement/internal/kvstore"
	otrace "entitlement/internal/obs/trace"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
	"entitlement/internal/wire"
)

// TestDistributedTraceSpine is the golden cross-service trace: one grant
// submitted over real TCP to grantd, journaled, decided, and pushed into a
// contractdb server — then enforced by an agent — must come back from the
// span collector as ONE trace tree crossing three services (submitter,
// grantd, contractdb) with correct parent/child edges and monotone
// timings. The enforcement cycle is its own root trace (it runs on the
// agent's clock, not the submitter's) and is asserted the same way:
// enforce.cycle with its four phase children in order.
func TestDistributedTraceSpine(t *testing.T) {
	topo := topology.FigureSix()

	// Contract database over a real socket, labeled for span attribution.
	store := contractdb.NewStore()
	dbL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dbSrv := contractdb.NewServerOpts(dbL, store, wire.ServerOptions{Service: "contractdb"})
	defer dbSrv.Close()

	// grantd pushes grants through a dialed contractdb client and journals
	// every decision — the full submit → queue → decide → journal → push
	// lifecycle is exercised.
	sink, err := contractdb.DialOpts(dbSrv.Addr(), wire.ClientOptions{Service: "grantd"})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	svc, err := granting.OpenService(topo, sink, granting.Options{
		Approval: approval.Options{
			RepresentativeTMs: 3,
			DefaultSLO:        0.999,
			Risk:              risk.Options{Scenarios: 60, Seed: 11},
			Seed:              7,
		},
		WAL: granting.WALOptions{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	gL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gSrv := granting.NewServer(gL, svc) // NewServer defaults the service label to "grantd"
	defer gSrv.Close()

	// The submitter roots the trace and forces the sampled bit so tail
	// sampling keeps this healthy trace deterministically (the W3C
	// sampled flag, propagated through every frame).
	col := otrace.Default()
	root := col.StartRoot("test.submit")
	root.SetService("submitter")
	forced := root.Context()
	forced.Sampled = true

	client, err := granting.DialOpts(gSrv.Addr(), wire.ClientOptions{Service: "submitter"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetSpan(forced)

	ids, traceID, err := client.SubmitGroupTrace([]granting.Request{{
		NPG: "Web", Negotiate: true, StartUnix: periodStart.Unix(),
		Hoses: []hose.Request{{
			Class: contract.C2Low, Region: "A",
			Direction: contract.Egress, Rate: 50e9,
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("submitted 1 request, got ids %v", ids)
	}
	if traceID != root.TraceID() {
		t.Fatalf("server echoed trace %q, submitter rooted %q", traceID, root.TraceID())
	}
	dec, err := client.Decide(ids[0], time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != granting.StatusApproved && dec.Status != granting.StatusNegotiated {
		t.Fatalf("grant failed: %s (%s)", dec.Status, dec.Err)
	}
	if dec.Contract == nil {
		t.Fatal("grant carries no contract")
	}
	root.Finish()

	tree, ok := col.Tree(traceID)
	if !ok {
		t.Fatalf("trace %s not retained despite the forced sampled bit", traceID)
	}
	if tree.TraceID != traceID {
		t.Fatalf("tree trace ID %q, want %q", tree.TraceID, traceID)
	}

	// ≥3 services crossed the wire inside the one trace.
	svcSet := map[string]bool{}
	for _, s := range tree.Services {
		svcSet[s] = true
	}
	for _, want := range []string{"submitter", "grantd", "contractdb"} {
		if !svcSet[want] {
			t.Errorf("trace services %v missing %q", tree.Services, want)
		}
	}

	// One span per lifecycle stage, each exactly once.
	spans := map[string]otrace.SpanRecord{}
	for _, sr := range tree.Spans {
		if _, dup := spans[sr.Name]; dup && sr.Name != "wire.call.decide" && sr.Name != "wire.serve.decide" {
			t.Errorf("span %q appears more than once", sr.Name)
		}
		spans[sr.Name] = sr
	}
	rootRec, ok := spans["test.submit"]
	if !ok {
		t.Fatalf("trace lost its root; spans: %v", names(tree.Spans))
	}

	// Parent/child edges down the whole spine. The grantd lifecycle spans
	// are siblings under the serve span; the contract push hops back over
	// the wire into contractdb.
	edges := [][2]string{
		{"test.submit", "wire.call.submit"},
		{"wire.call.submit", "wire.serve.submit"},
		{"wire.serve.submit", "grantd.submit"},
		{"wire.serve.submit", "grantd.queue"},
		{"wire.serve.submit", "grantd.decide"},
		{"wire.serve.submit", "grantd.journal"},
		{"wire.serve.submit", "grantd.push"},
		{"grantd.push", "wire.call.put_contract"},
		{"wire.call.put_contract", "wire.serve.put_contract"},
	}
	for _, e := range edges {
		parent, ok := spans[e[0]]
		if !ok {
			t.Errorf("missing span %q; have %v", e[0], names(tree.Spans))
			continue
		}
		child, ok := spans[e[1]]
		if !ok {
			t.Errorf("missing span %q; have %v", e[1], names(tree.Spans))
			continue
		}
		if child.Parent != parent.SpanID {
			t.Errorf("%s.parent = %q, want %s's span %q", e[1], child.Parent, e[0], parent.SpanID)
		}
		if child.TraceID != traceID {
			t.Errorf("%s carries trace %q, want %q", e[1], child.TraceID, traceID)
		}
		// Monotone timings: a child cannot start before its parent.
		if child.StartNs < parent.StartNs {
			t.Errorf("%s started %dns before its parent %s", e[1], parent.StartNs-child.StartNs, e[0])
		}
		if child.DurNs < 0 {
			t.Errorf("%s has negative duration %d", e[1], child.DurNs)
		}
	}
	// Lifecycle ordering inside grantd: queue after submit starts, decide
	// after the queue pop, push after the decision, journal after the push.
	order := []string{"grantd.submit", "grantd.queue", "grantd.decide", "grantd.push", "grantd.journal"}
	for i := 1; i < len(order); i++ {
		prev, prevOK := spans[order[i-1]]
		cur, curOK := spans[order[i]]
		if prevOK && curOK && cur.StartNs < prev.StartNs {
			t.Errorf("%s started before %s", order[i], order[i-1])
		}
	}
	if rootRec.DurNs <= 0 {
		t.Errorf("root span duration %d, want > 0", rootRec.DurNs)
	}

	// Service attribution on both sides of each wire hop.
	if got := spans["wire.call.submit"].Service; got != "submitter" {
		t.Errorf("wire.call.submit service %q, want submitter", got)
	}
	if got := spans["wire.serve.submit"].Service; got != "grantd" {
		t.Errorf("wire.serve.submit service %q, want grantd", got)
	}
	if got := spans["wire.serve.put_contract"].Service; got != "contractdb" {
		t.Errorf("wire.serve.put_contract service %q, want contractdb", got)
	}

	// --- Enforcement: the agent's cycle is its own root trace with the
	// four phase children, collected into a private collector that retains
	// everything (SampleRate 1) so the assertion is deterministic.
	acol := otrace.NewCollector(otrace.Options{SampleRate: 1})
	kvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kvSrv := kvstore.NewServerOpts(kvL, kvstore.New(), kvstore.ServerOptions{
		Wire: wire.ServerOptions{Service: "kvstore"},
	})
	defer kvSrv.Close()
	dbc, err := contractdb.DialOpts(dbSrv.Addr(), wire.ClientOptions{Service: "trace-host-0"})
	if err != nil {
		t.Fatal(err)
	}
	defer dbc.Close()
	kvc, err := kvstore.DialOpts(kvSrv.Addr(), wire.ClientOptions{Service: "trace-host-0"})
	if err != nil {
		t.Fatal(err)
	}
	defer kvc.Close()
	agent, err := enforce.NewAgent(enforce.AgentConfig{
		Host: "trace-host-0", NPG: "Web", Class: contract.C2Low, Region: "A",
		DB: dbc, Rates: kvc, Meter: enforce.NewStateful(),
		Prog: bpf.NewProgram(bpf.NewMap()), Policy: enforce.HostBased,
		RateTTL: time.Minute, Tracer: acol,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := agent.Cycle(periodStart.Add(24*time.Hour), 10e9, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := otrace.ParseTraceID(rep.TraceID); !ok {
		t.Fatalf("cycle trace ID %q is not 32-hex", rep.TraceID)
	}
	ctree, ok := acol.Tree(rep.TraceID)
	if !ok {
		t.Fatalf("cycle trace %s not retained at SampleRate 1", rep.TraceID)
	}
	cspans := map[string]otrace.SpanRecord{}
	for _, sr := range ctree.Spans {
		cspans[sr.Name] = sr
	}
	croot, ok := cspans["enforce.cycle"]
	if !ok {
		t.Fatalf("cycle trace lost its root; spans: %v", names(ctree.Spans))
	}
	for _, phase := range []string{"kv.publish", "kv.aggregate", "db.fetch", "meter.apply"} {
		sr, ok := cspans[phase]
		if !ok {
			t.Errorf("cycle trace missing phase %q; have %v", phase, names(ctree.Spans))
			continue
		}
		if sr.Parent != croot.SpanID {
			t.Errorf("%s.parent = %q, want the cycle root %q", phase, sr.Parent, croot.SpanID)
		}
		if sr.StartNs < croot.StartNs {
			t.Errorf("%s started before the cycle root", phase)
		}
	}
	if croot.Service != "trace-host-0" {
		t.Errorf("cycle root service %q, want trace-host-0", croot.Service)
	}
}

// TestTailSamplingRetention pins the tail-sampling contract at fleet
// volume: every incident trace (error, shed, fail-open, degraded) is
// retained, while healthy traces survive only at the probabilistic rate —
// at most 10% of them.
func TestTailSamplingRetention(t *testing.T) {
	const (
		healthy   = 400
		incidents = 50
	)
	// A pinned slow threshold keeps the dynamic p99 estimator from
	// promoting healthy traces to "slow" and muddying the exact counts.
	col := otrace.NewCollector(otrace.Options{
		MaxTraces:     healthy + incidents,
		SlowThreshold: time.Hour,
	})
	for i := 0; i < healthy; i++ {
		root := col.StartRoot("healthy")
		child := col.StartChild(root.Context(), "phase")
		child.Finish()
		root.Finish()
	}
	incidentFlags := []otrace.Flags{otrace.FlagError, otrace.FlagShed, otrace.FlagFailOpen, otrace.FlagDegraded}
	for i := 0; i < incidents; i++ {
		root := col.StartRoot("incident")
		child := col.StartChild(root.Context(), "phase")
		child.Flag(incidentFlags[i%len(incidentFlags)])
		child.Finish()
		root.Finish()
	}
	col.Flush()

	kept := col.Traces(otrace.Query{Outcome: "incident"})
	if len(kept) != incidents {
		t.Errorf("retained %d incident traces, want all %d", len(kept), incidents)
	}
	healthyKept := 0
	for _, tr := range col.Traces(otrace.Query{}) {
		if tr.Reason == "probabilistic" {
			healthyKept++
		}
	}
	if healthyKept > healthy/10 {
		t.Errorf("retained %d of %d healthy traces, want <= 10%%", healthyKept, healthy)
	}
	// The sampler is probabilistic, not off: with 400 traces at the
	// default 5%, zero retained means the sampler broke (P < 2e-9).
	if healthyKept == 0 {
		t.Error("probabilistic sampling retained nothing out of 400 healthy traces")
	}
}

func names(spans []otrace.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
