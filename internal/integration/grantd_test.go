package integration

import (
	"net"
	"testing"
	"time"

	"entitlement/internal/approval"
	"entitlement/internal/bpf"
	"entitlement/internal/contract"
	"entitlement/internal/contractdb"
	"entitlement/internal/enforce"
	"entitlement/internal/granting"
	"entitlement/internal/hose"
	"entitlement/internal/kvstore"
	"entitlement/internal/risk"
	"entitlement/internal/topology"
)

// TestGrantdOnlinePipeline is the end-to-end online admission loop over real
// sockets: grantd, contractdb, and the rate store each behind TCP, grantd
// pushing granted contracts into the database through a dialed client, and
// two enforcement agents — also on dialed clients — that pick a fresh grant
// up within two cycles, with no restarts anywhere. A hopeless oversubscribed
// ask bounces with a §8 counter-proposal, and an opted-in negotiation lands
// at the admittable volume.
func TestGrantdOnlinePipeline(t *testing.T) {
	topo := topology.FigureSix()

	// Contract database and rate store over real sockets.
	store := contractdb.NewStore()
	dbL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dbSrv := contractdb.NewServer(dbL, store)
	defer dbSrv.Close()
	kvL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kvSrv := kvstore.NewServer(kvL, kvstore.New())
	defer kvSrv.Close()

	// grantd pushes grants through a contractdb client — the full
	// grant→store path crosses the wire.
	sink, err := contractdb.Dial(dbSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	svc := granting.NewService(topo, sink, granting.Options{
		Approval: approval.Options{
			RepresentativeTMs: 3,
			DefaultSLO:        0.999,
			Risk:              risk.Options{Scenarios: 60, Seed: 11},
			Seed:              7,
		},
	})
	defer svc.Close()
	gL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gSrv := granting.NewServer(gL, svc)
	defer gSrv.Close()
	client, err := granting.Dial(gSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Two agents for the Web/c2_low/A/egress flow set, dialing both
	// dependencies over TCP, running before any contract exists.
	newAgent := func(host string) *enforce.Agent {
		t.Helper()
		dbc, err := contractdb.Dial(dbSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dbc.Close() })
		kvc, err := kvstore.Dial(kvSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { kvc.Close() })
		a, err := enforce.NewAgent(enforce.AgentConfig{
			Host: host, NPG: "Web", Class: contract.C2Low, Region: "A",
			DB: dbc, Rates: kvc, Meter: enforce.NewStateful(),
			Prog: bpf.NewProgram(bpf.NewMap()), Policy: enforce.HostBased,
			RateTTL: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	agents := []*enforce.Agent{newAgent("it-host-0"), newAgent("it-host-1")}

	now := periodStart.Add(24 * time.Hour)
	for _, a := range agents {
		rep, err := a.Cycle(now, 10e9, 10e9)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Enforced {
			t.Fatal("agents enforcing before any grant exists")
		}
	}

	// Submit the contract request through grantd.
	dec, err := client.SubmitWait(granting.Request{
		NPG: "Web", Negotiate: true, StartUnix: periodStart.Unix(),
		Hoses: []hose.Request{{
			Class: contract.C2Low, Region: "A",
			Direction: contract.Egress, Rate: 50e9,
		}},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != granting.StatusApproved && dec.Status != granting.StatusNegotiated {
		t.Fatalf("grant failed: %s (%s)", dec.Status, dec.Err)
	}
	if dec.Contract == nil {
		t.Fatal("grant carries no contract")
	}
	granted := dec.Contract.Entitlements[0].Rate

	// The running agents pick the grant up within two cycles.
	for _, a := range agents {
		enforced := false
		var got float64
		for cycle := 0; cycle < 2 && !enforced; cycle++ {
			now = now.Add(10 * time.Second)
			rep, err := a.Cycle(now, 10e9, 10e9)
			if err != nil {
				t.Fatal(err)
			}
			enforced, got = rep.Enforced, rep.EntitledRate
		}
		if !enforced {
			t.Fatal("agent did not pick the grant up within 2 cycles")
		}
		if got != granted {
			t.Errorf("agent enforces %v, granted %v", got, granted)
		}
	}

	// An oversubscribed ask bounces with a counter-proposal and stores
	// nothing.
	dec, err = client.SubmitWait(granting.Request{
		NPG: "Greedy", StartUnix: periodStart.Unix(),
		Hoses: []hose.Request{{
			Class: contract.C3Low, Region: "B",
			Direction: contract.Egress, Rate: 100e12,
		}},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != granting.StatusRejected {
		t.Fatalf("oversubscribed ask granted: %s", dec.Status)
	}
	if len(dec.Proposals) == 0 {
		t.Fatal("rejection carries no counter-proposal")
	}
	p := dec.Proposals[0]
	if p.Shortfall <= 0 || p.AdmittableRate >= 100e12 {
		t.Errorf("implausible proposal: admittable %v, short %v", p.AdmittableRate, p.Shortfall)
	}
	if _, ok := store.Get("Greedy"); ok {
		t.Error("rejected ask stored a contract")
	}

	// Opting into negotiation turns the same shortfall into a grant at the
	// admittable volume, which agents would pick up just the same.
	dec, err = client.SubmitWait(granting.Request{
		NPG: "Greedy", Negotiate: true, StartUnix: periodStart.Unix(),
		Hoses: []hose.Request{{
			Class: contract.C3Low, Region: "B",
			Direction: contract.Egress, Rate: 100e12,
		}},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != granting.StatusNegotiated {
		t.Fatalf("negotiation opt-in did not negotiate: %s", dec.Status)
	}
	c, ok := store.Get("Greedy")
	if !ok {
		t.Fatal("negotiated contract not stored")
	}
	if got := c.Entitlements[0].Rate; got >= 100e12 || got <= 0 {
		t.Errorf("negotiated rate %v not the admittable volume", got)
	}
}
