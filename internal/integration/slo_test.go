package integration

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"entitlement/internal/netsim"
	"entitlement/internal/obs"
	"entitlement/internal/slo"
)

// findContract pulls one contract's verdict out of a report.
func findContract(t *testing.T, rep *slo.Report, name string) *slo.ContractVerdict {
	t.Helper()
	for i := range rep.Contracts {
		if rep.Contracts[i].Contract == name {
			return &rep.Contracts[i]
		}
	}
	t.Fatalf("contract %q missing from report (have %d contracts)", name, len(rep.Contracts))
	return nil
}

// TestSLOConformanceIncident is the acceptance drill for the conformance
// plane: a netsim drill runs with an injected network incident that
// blackholes half of Coldstorage's traffic — conforming included — for 20
// simulated seconds. The conformance report (fetched as JSON from the live
// /slo endpoint) must show Coldstorage below its 99.9% SLO with the breach
// attributed to the network and localized to the ground-truth "TEST/net"
// segment, the fast burn-rate alert must fire exactly once and clear exactly
// once (hysteresis: no flapping), the error budget must decrease
// monotonically while the incident is in progress, and the bystander
// Warmstorage contract must stay conformant. The same story must be visible
// to an external scraper on /metrics.
func TestSLOConformanceIncident(t *testing.T) {
	const (
		stageTicks = 30
		totalTicks = 6 * stageTicks
		// The incident sits inside the "entitlement-reduced" stage, clear of
		// the drill's own NonConformOnly ACL stages (which, by design, do
		// NOT breach the SLO: they only drop out-of-entitlement traffic).
		incidentLo = 35
		incidentHi = 55
		objective  = 0.999
	)
	// The drill simulator starts at netsim's fixed epoch and advances one
	// second per tick; OnTick(tick) fires after the (tick+1)-th step.
	simStart := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	simTimeAt := func(tick int) time.Time {
		return simStart.Add(time.Duration(tick+1) * time.Second)
	}

	// Windows compressed to simulation scale: the fast pair spans
	// 30s/60s so the alert both fires during the 20s incident and clears
	// well before the run ends; the slow pair covers the whole run, making
	// the "3d" budget window the drill's full history.
	eng := slo.NewEngine(slo.NewRecorder(slo.DefaultRingCapacity), slo.Options{
		Windows: slo.Windows{
			Fast:     30 * time.Second,
			FastLong: 60 * time.Second,
			Slow:     300 * time.Second,
			SlowLong: 600 * time.Second,
		},
	})

	ms, err := obs.Serve("127.0.0.1:0", nil, obs.Route{
		Pattern: "/slo",
		Handler: eng.Handler(func() time.Time { return simTimeAt(totalTicks - 1) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := scrapeHTTP(t, ms.Addr())

	opts := netsim.DefaultDrillOptions()
	opts.Hosts = 10
	opts.FlowsPerHost = 2
	opts.StageTicks = stageTicks
	opts.Conformance = eng
	opts.Incident = &netsim.DrillIncident{StartTick: incidentLo, EndTick: incidentHi, DropFraction: 0.5}

	var (
		fires, clears int
		prevActive    bool
		budgets       []float64 // Coldstorage budget, one sample per incident tick
	)
	opts.OnTick = func(tick int) {
		rep := eng.Report(simTimeAt(tick))
		cold := findContract(t, rep, "Coldstorage")
		if cold.FastBurnActive != prevActive {
			if cold.FastBurnActive {
				fires++
			} else {
				clears++
			}
			prevActive = cold.FastBurnActive
		}
		if tick >= incidentLo && tick < incidentHi {
			budgets = append(budgets, cold.BudgetRemaining)
		}
	}

	if _, err := netsim.RunDrill(opts); err != nil {
		t.Fatal(err)
	}

	// --- The report, fetched the way an operator would: GET /slo. -------
	resp, err := http.Get("http://" + ms.Addr() + "/slo?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var rep slo.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decode /slo JSON: %v", err)
	}
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()

	cold := findContract(t, &rep, "Coldstorage")
	warm := findContract(t, &rep, "Warmstorage")

	if cold.Conformant {
		t.Error("Coldstorage reported conformant despite the incident")
	}
	if got := cold.Windows[3].Availability; got >= objective {
		t.Errorf("Coldstorage budget-window availability %v, want < %v", got, objective)
	}
	if warm.Windows[3].Availability < objective || !warm.Conformant {
		t.Errorf("bystander Warmstorage not conformant: avail=%v conformant=%v",
			warm.Windows[3].Availability, warm.Conformant)
	}
	if !strings.HasPrefix(cold.WorstSegment, "TEST/net") {
		t.Errorf("worst segment %q, want the ground-truth network segment TEST/net", cold.WorstSegment)
	}
	// The breach is the network's: in-entitlement traffic was denied. The
	// incident spans 20 ticks; allow ramp slack at its edges.
	if cold.Attribution.NetworkBadIntervals < incidentHi-incidentLo-3 {
		t.Errorf("network-attributed bad intervals = %d, want ~%d",
			cold.Attribution.NetworkBadIntervals, incidentHi-incidentLo)
	}
	if cold.Attribution.ThrottledRate <= 0 {
		t.Error("no throttled in-entitlement rate attributed to the network")
	}

	// --- Alert discipline: one fire, one clear, no flapping. ------------
	if fires != 1 {
		t.Errorf("fast burn alert fired %d times, want exactly 1", fires)
	}
	if clears != 1 {
		t.Errorf("fast burn alert cleared %d times, want exactly 1", clears)
	}

	// --- Error budget burns monotonically while the incident runs. ------
	if len(budgets) != incidentHi-incidentLo {
		t.Fatalf("captured %d budget samples, want %d", len(budgets), incidentHi-incidentLo)
	}
	for i := 1; i < len(budgets); i++ {
		if budgets[i] > budgets[i-1]+1e-9 {
			t.Errorf("error budget rose mid-incident at tick %d: %v -> %v",
				incidentLo+i, budgets[i-1], budgets[i])
		}
	}
	if budgets[len(budgets)-1] >= budgets[0] {
		t.Errorf("error budget did not decrease across the incident: %v -> %v",
			budgets[0], budgets[len(budgets)-1])
	}

	// --- The same story from a live /metrics scrape. --------------------
	final := scrapeHTTP(t, ms.Addr())
	if got := final.Value(`entitlement_slo_availability_3d{contract="Coldstorage"}`); got >= objective {
		t.Errorf("scrape: Coldstorage 3d availability %v, want < %v", got, objective)
	}
	if got := final.Value(`entitlement_slo_availability_3d{contract="Warmstorage"}`); got < objective {
		t.Errorf("scrape: Warmstorage 3d availability %v, want >= %v", got, objective)
	}
	if got := final.Value(`entitlement_slo_error_budget_remaining{contract="Coldstorage"}`); got >= 0 {
		t.Errorf("scrape: Coldstorage error budget %v, want overspent (< 0)", got)
	}
	trans := final.Value(`entitlement_slo_fast_burn_transitions_total{contract="Coldstorage"}`) -
		base.Value(`entitlement_slo_fast_burn_transitions_total{contract="Coldstorage"}`)
	if trans != float64(fires+clears) {
		t.Errorf("scrape: fast burn transitions = %v, want %d (the observed fire+clear count)", trans, fires+clears)
	}
	if got := final.Value(`entitlement_slo_fast_burn_active{contract="Coldstorage"}`); got != 0 {
		t.Errorf("scrape: fast burn still active (%v) at run end", got)
	}

	// The human-facing text rendering must carry the verdicts too.
	resp, err = http.Get("http://" + ms.Addr() + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if _, err := io.Copy(&text, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	if !strings.Contains(text.String(), "BREACH") {
		t.Errorf("/slo text report lacks a BREACH verdict:\n%s", text.String())
	}
}
