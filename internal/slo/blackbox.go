package slo

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"entitlement/internal/topology"
)

// The incident black box persists the conformance plane's evidence while an
// SLO incident is in flight. It is armed automatically by the first
// burn-rate alert fire, spills the flight-recorder rings and trace-stamped
// cycle spans to disk while any alert stays active, and closes — emitting a
// structured attribution envelope — once hysteresis has cleared every alert.
//
// Capture file format (incident-%016d.cap), one record per frame, reusing
// the granting journal's WAL conventions:
//
//	4 bytes  payload length n (0 < n <= maxCapRecord), big-endian
//	4 bytes  CRC-32C (Castagnoli) of the payload, big-endian
//	n bytes  JSON-encoded captureRecord
//
// A capture opens with a "meta" record (engine configuration, objectives,
// pre-arm alert seeds, trigger transitions, topology epoch), then carries
// interleaved "samp" (flight-recorder batches), "span" (agent cycle spans)
// and "eval" (per-evaluation engine output) records, and closes with a
// "rep" (final conformance report) and an "env" (attribution envelope)
// record. Decoding stops at the first torn or corrupt frame and keeps the
// valid prefix — the same crash-consistency contract the granting WAL makes.

// maxCapRecord bounds one record's payload; a length prefix beyond it marks
// a corrupt (or torn) tail.
const maxCapRecord = 16 << 20

// capHeaderSize is the fixed per-record framing overhead.
const capHeaderSize = 8

var capCRC = crc32.MakeTable(crc32.Castagnoli)

// captureVersion stamps the capture format; replay refuses versions it does
// not understand rather than silently misreading evidence.
const captureVersion = 1

// CaptureMeta is the opening record of a capture: everything a replay needs
// to rebuild an equivalent engine — configuration, objectives, and the alert
// state machines as they stood BEFORE the arming evaluation ran, so
// re-running that evaluation reproduces the arming transitions.
type CaptureMeta struct {
	Version    int       `json:"version"`
	Generation uint64    `json:"generation"`
	ArmedAt    time.Time `json:"armed_at"`

	Windows       Windows `json:"windows"`
	FastBurn      float64 `json:"fast_burn"`
	SlowBurn      float64 `json:"slow_burn"`
	ClearRatio    float64 `json:"clear_ratio"`
	ClearAfter    int     `json:"clear_after"`
	LossTolerance float64 `json:"loss_tolerance"`
	RingCapacity  int     `json:"ring_capacity"`

	Objectives map[string]float64      `json:"objectives,omitempty"`
	Alerts     map[string]ContractSeed `json:"alerts,omitempty"`
	Trigger    []Transition            `json:"trigger,omitempty"`

	// TopologyEpoch is the topology mutation counter as of roughly one
	// fast-long window BEFORE arming: the root-cause mutation (a link
	// disable, a capacity cut) necessarily precedes the alert fire by the
	// burn-rate detection delay, so the envelope's DeltaSince must look back
	// past it.
	TopologyEpoch uint64 `json:"topology_epoch"`
}

// SampBatch is one series' newly-captured samples, in record order. Pre
// marks the arm-time flush of the ring's retained history (pre-incident
// context); Dropped counts samples the ring overwrote before the capture
// could read them — honest accounting, never silently absorbed.
type SampBatch struct {
	Key     Key      `json:"key"`
	Samples []Sample `json:"samples,omitempty"`
	Dropped uint64   `json:"dropped,omitempty"`
	Pre     bool     `json:"pre,omitempty"`
}

// captureRecord is the envelope every capture payload decodes into; exactly
// one of the pointers is set, matching T.
type captureRecord struct {
	T    string       `json:"t"`
	Meta *CaptureMeta `json:"meta,omitempty"`
	Samp *SampBatch   `json:"samp,omitempty"`
	Span *CycleSpan   `json:"span,omitempty"`
	Eval *EvalRecord  `json:"eval,omitempty"`
	Rep  *Report      `json:"rep,omitempty"`
	Env  *Envelope    `json:"env,omitempty"`
}

// shapeOK checks the type/payload pairing a decoded record must satisfy;
// anything else poisons the stream from that point on.
func (r *captureRecord) shapeOK() bool {
	switch r.T {
	case "meta":
		return r.Meta != nil && r.Meta.Version == captureVersion
	case "samp":
		return r.Samp != nil && (len(r.Samp.Samples) > 0 || r.Samp.Dropped > 0)
	case "span":
		return r.Span != nil
	case "eval":
		return r.Eval != nil
	case "rep":
		return r.Rep != nil
	case "env":
		return r.Env != nil
	}
	return false
}

// encodeCaptureRecord frames one record; the returned buffer includes the
// header.
func encodeCaptureRecord(rec *captureRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("slo: capture encode: %w", err)
	}
	if len(body) > maxCapRecord {
		return nil, fmt.Errorf("slo: capture record %d bytes exceeds %d", len(body), maxCapRecord)
	}
	buf := make([]byte, capHeaderSize+len(body))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(body, capCRC))
	copy(buf[capHeaderSize:], body)
	return buf, nil
}

// decodeCaptureStream reads records until EOF or the first invalid record.
// It never fails on arbitrary bytes: a torn or corrupt tail ends the decode
// with truncated=true and valid holding the byte offset of the last good
// record boundary (the valid-prefix property FuzzBlackboxDecode pins).
func decodeCaptureStream(r io.Reader) (recs []captureRecord, valid int64, truncated bool) {
	var hdr [capHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return recs, valid, !errors.Is(err, io.EOF)
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n == 0 || n > maxCapRecord {
			return recs, valid, true
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return recs, valid, true
		}
		if crc32.Checksum(body, capCRC) != binary.BigEndian.Uint32(hdr[4:8]) {
			return recs, valid, true
		}
		var rec captureRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return recs, valid, true
		}
		if !rec.shapeOK() {
			return recs, valid, true
		}
		recs = append(recs, rec)
		valid += capHeaderSize + int64(n)
	}
}

// capName and envName locate one generation's capture and envelope files.
func capName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("incident-%016d.cap", gen))
}

func envName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("incident-%016d.json", gen))
}

// BlackboxOptions configure a Blackbox. Dir is required; everything else
// has workable defaults.
type BlackboxOptions struct {
	// Dir is the capture directory. Created if absent.
	Dir string
	// MaxBytes bounds the directory's total capture footprint; the oldest
	// incidents are pruned at arm time to keep a fresh incident's budget
	// free. Default 32MiB.
	MaxBytes int64
	// MaxIncidentBytes bounds one capture file. Once exhausted, further
	// records are dropped (counted, surfaced in the envelope) rather than
	// growing without bound. Default MaxBytes/4.
	MaxIncidentBytes int64
	// SpanRing is how many pre-incident cycle spans are retained while
	// disarmed, to give the capture lead-up context. Default 256.
	SpanRing int
	// Envelopes is how many closed-incident envelopes are kept in memory
	// for the /slo/incidents handler. Default 16.
	Envelopes int
	// Topology, when set, lets the envelope attribute the incident to the
	// links the mutation journal says changed in the lookback window.
	Topology *topology.Topology
	// Logger receives arm/close/degrade events. Nil disables logging.
	Logger *slog.Logger
}

func (o BlackboxOptions) withDefaults() BlackboxOptions {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 32 << 20
	}
	if o.MaxIncidentBytes <= 0 {
		o.MaxIncidentBytes = o.MaxBytes / 4
	}
	if o.SpanRing <= 0 {
		o.SpanRing = 256
	}
	if o.Envelopes <= 0 {
		o.Envelopes = 16
	}
	return o
}

// maxArmedSpans bounds the spans buffered between evaluations while armed;
// beyond it spans are dropped (counted), protecting memory if Evaluate
// stalls while agents keep reporting.
const maxArmedSpans = 32768

// epochMark is one (time, topology epoch) observation, logged while
// disarmed so arming can look back to the pre-incident epoch.
type epochMark struct {
	at    time.Time
	epoch uint64
}

// Blackbox is the incident flight-data recorder. Attach one to an Engine
// via AttachCapture; it observes every evaluation and manages the
// arm → capture → close lifecycle by itself. RecordSpan is safe from any
// goroutine and cheap enough for per-cycle use (see BenchmarkBlackboxAppend).
type Blackbox struct {
	opts BlackboxOptions

	mu sync.Mutex
	// disarmed state: pre-incident context rings.
	spanRing []CycleSpan
	spanPos  uint64
	epochLog []epochMark
	// armed state.
	armed     bool
	failed    bool // a write error degraded this capture; lifecycle continues
	gen       uint64
	f         *os.File
	meta      *CaptureMeta
	bytes     int64
	records   int
	cursors   map[*Series]uint64
	spans     []CycleSpan
	agg       map[string]*AgentIncident
	segs      map[Key]*windowAgg
	sampDrops uint64
	spanDrops uint64
	recDrops  uint64
	truncated bool
	// directory state.
	nextGen    uint64
	gens       []uint64
	genBytes   map[uint64]int64
	totalBytes int64
	envs       []*Envelope
}

// NewBlackbox opens (creating if needed) a capture directory and scans it
// for prior incidents: their envelopes are reloaded for /slo/incidents and
// their sizes count against the disk budget.
func NewBlackbox(opts BlackboxOptions) (*Blackbox, error) {
	if opts.Dir == "" {
		return nil, errors.New("slo: blackbox requires a directory")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("slo: blackbox dir: %w", err)
	}
	bb := &Blackbox{
		opts:     opts,
		spanRing: make([]CycleSpan, opts.SpanRing),
		genBytes: make(map[uint64]int64),
		nextGen:  1,
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("slo: blackbox scan: %w", err)
	}
	seen := make(map[uint64]bool)
	for _, e := range entries {
		name := e.Name()
		var gen uint64
		var ok bool
		switch {
		case strings.HasPrefix(name, "incident-") && strings.HasSuffix(name, ".cap"):
			gen, ok = parseGen(name, ".cap")
		case strings.HasPrefix(name, "incident-") && strings.HasSuffix(name, ".json"):
			gen, ok = parseGen(name, ".json")
		}
		if !ok {
			continue
		}
		if info, err := e.Info(); err == nil {
			bb.genBytes[gen] += info.Size()
			bb.totalBytes += info.Size()
		}
		if !seen[gen] {
			seen[gen] = true
			bb.gens = append(bb.gens, gen)
		}
		if gen >= bb.nextGen {
			bb.nextGen = gen + 1
		}
	}
	sort.Slice(bb.gens, func(i, j int) bool { return bb.gens[i] < bb.gens[j] })
	// Reload the most recent envelopes, oldest first.
	start := 0
	if len(bb.gens) > opts.Envelopes {
		start = len(bb.gens) - opts.Envelopes
	}
	for _, gen := range bb.gens[start:] {
		data, err := os.ReadFile(envName(opts.Dir, gen))
		if err != nil {
			continue // capture closed without an envelope (crash mid-incident)
		}
		var env Envelope
		if json.Unmarshal(data, &env) == nil {
			bb.envs = append(bb.envs, &env)
		}
	}
	return bb, nil
}

func parseGen(name, suffix string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "incident-"), suffix)
	var gen uint64
	if _, err := fmt.Sscanf(s, "%d", &gen); err != nil || fmt.Sprintf("%016d", gen) != s {
		return 0, false
	}
	return gen, true
}

// RecordSpan feeds one enforcement-cycle span into the box. While disarmed
// it lands in a fixed ring (pre-incident context); while armed it is
// buffered for the next evaluation's flush. The fast path is one mutex
// round-trip and one struct copy — cheap enough to call every agent cycle.
func (bb *Blackbox) RecordSpan(sp CycleSpan) {
	bb.mu.Lock()
	if bb.armed {
		if len(bb.spans) < maxArmedSpans {
			bb.spans = append(bb.spans, sp)
		} else {
			bb.spanDrops++
			mBBDrops.Inc()
		}
	} else {
		bb.spanRing[bb.spanPos%uint64(len(bb.spanRing))] = sp
		bb.spanPos++
	}
	bb.mu.Unlock()
}

// Armed reports whether an incident capture is in flight.
func (bb *Blackbox) Armed() bool {
	bb.mu.Lock()
	defer bb.mu.Unlock()
	return bb.armed
}

// Envelopes returns the closed-incident envelopes on record, oldest first.
func (bb *Blackbox) Envelopes() []*Envelope {
	bb.mu.Lock()
	defer bb.mu.Unlock()
	out := make([]*Envelope, len(bb.envs))
	copy(out, bb.envs)
	return out
}

// IncidentsHandler serves the closed-incident envelopes (oldest first) plus
// the live armed flag as JSON — the /slo/incidents endpoint.
func (bb *Blackbox) IncidentsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bb.mu.Lock()
		resp := struct {
			Armed     bool        `json:"armed"`
			Incidents []*Envelope `json:"incidents"`
		}{bb.armed, append([]*Envelope(nil), bb.envs...)}
		bb.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// observe is the engine's per-evaluation callback, invoked under the engine
// lock with the PRE-judge alert seeds and the transitions the evaluation
// produced. It drives the whole lifecycle: arm on fire, flush while armed,
// close on all-clear.
func (bb *Blackbox) observe(e *Engine, now time.Time, pre map[string]ContractSeed, trans []Transition) {
	bb.mu.Lock()
	defer bb.mu.Unlock()
	if !bb.armed {
		bb.markEpochLocked(e, now)
		fired := false
		for _, t := range trans {
			if t.Active {
				fired = true
				break
			}
		}
		if !fired {
			return
		}
		bb.armLocked(e, now, pre, trans)
		return
	}
	bb.flushLocked(e, false)
	ev := e.evalRecordLocked(now, trans)
	bb.writeLocked(&captureRecord{T: "eval", Eval: &ev})
	bb.syncLocked()
	if !anyAlertActiveLocked(e) {
		bb.closeIncidentLocked(e, now)
	}
}

// markEpochLocked logs (now, topology epoch) while disarmed and prunes the
// log so its head stays the newest mark at least one fast-long window old —
// the lookback anchor armLocked uses.
func (bb *Blackbox) markEpochLocked(e *Engine, now time.Time) {
	if bb.opts.Topology == nil {
		return
	}
	bb.epochLog = append(bb.epochLog, epochMark{at: now, epoch: bb.opts.Topology.Epoch()})
	cutoff := now.Add(-e.opts.Windows.FastLong)
	for len(bb.epochLog) >= 2 && !bb.epochLog[1].at.After(cutoff) {
		bb.epochLog = bb.epochLog[1:]
	}
}

func anyAlertActiveLocked(e *Engine) bool {
	for _, name := range e.order {
		cs := e.contracts[name]
		if cs.fast.active || cs.slow.active {
			return true
		}
	}
	return false
}

// armLocked opens a new capture generation and writes the arm-time state:
// meta, the pre-incident span ring, the full retained flight-recorder
// history, and the arming evaluation's output.
func (bb *Blackbox) armLocked(e *Engine, now time.Time, pre map[string]ContractSeed, trans []Transition) {
	bb.armed = true
	bb.failed = false
	bb.gen = bb.nextGen
	bb.nextGen++
	bb.bytes = 0
	bb.records = 0
	bb.sampDrops = 0
	bb.spanDrops = 0
	bb.recDrops = 0
	bb.truncated = false
	bb.cursors = make(map[*Series]uint64)
	bb.agg = make(map[string]*AgentIncident)
	bb.segs = make(map[Key]*windowAgg)
	bb.spans = bb.spans[:0]
	bb.pruneLocked()

	f, err := os.OpenFile(capName(bb.opts.Dir, bb.gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		bb.failed = true
		mBBErrors.Inc()
		if bb.opts.Logger != nil {
			bb.opts.Logger.Error("slo.blackbox arm failed", slog.Any("err", err))
		}
	}
	bb.f = f

	seedEpoch := uint64(0)
	if len(bb.epochLog) > 0 {
		seedEpoch = bb.epochLog[0].epoch
	}
	bb.meta = &CaptureMeta{
		Version:       captureVersion,
		Generation:    bb.gen,
		ArmedAt:       now,
		Windows:       e.opts.Windows,
		FastBurn:      e.opts.FastBurn,
		SlowBurn:      e.opts.SlowBurn,
		ClearRatio:    e.opts.ClearRatio,
		ClearAfter:    e.opts.ClearAfter,
		LossTolerance: e.opts.LossTolerance,
		RingCapacity:  e.rec.Capacity(),
		Objectives:    e.objectivesLocked(),
		Alerts:        pre,
		Trigger:       trans,
		TopologyEpoch: seedEpoch,
	}
	bb.writeLocked(&captureRecord{T: "meta", Meta: bb.meta})

	// Pre-incident spans from the disarmed ring, oldest first.
	n, capn := bb.spanPos, uint64(len(bb.spanRing))
	start := uint64(0)
	if n > capn {
		start = n - capn
	}
	for i := start; i < n; i++ {
		sp := bb.spanRing[i%capn]
		bb.writeLocked(&captureRecord{T: "span", Span: &sp})
		bb.aggregateSpanLocked(sp)
	}

	bb.flushLocked(e, true)
	ev := e.evalRecordLocked(now, trans)
	bb.writeLocked(&captureRecord{T: "eval", Eval: &ev})
	bb.syncLocked()

	mBBCaptures.Inc()
	mBBArmed.Set(1)
	if bb.opts.Logger != nil {
		bb.opts.Logger.Warn("slo.blackbox armed",
			slog.Uint64("generation", bb.gen), slog.Time("at", now),
			slog.Int("trigger_transitions", len(trans)))
	}
}

// flushLocked drains every series up to the ENGINE's evaluation cursor (not
// the live writer position): the capture must hold exactly the samples this
// evaluation folded, so replay folds them at the same evaluation. Series are
// visited in sorted key order for deterministic record layout.
func (bb *Blackbox) flushLocked(e *Engine, pre bool) {
	var list []*Series
	e.rec.Each(func(s *Series) { list = append(list, s) })
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i].Key(), list[j].Key()
		if a.Contract != b.Contract {
			return a.Contract < b.Contract
		}
		if a.Segment != b.Segment {
			return a.Segment < b.Segment
		}
		return a.Class < b.Class
	})
	for _, s := range list {
		bound := e.cursors[s]
		from := bb.cursors[s]
		if from >= bound {
			continue
		}
		batch := SampBatch{Key: s.Key(), Pre: pre}
		// Every captured sample also folds into the capture-window aggregate
		// the envelope's verdicts are computed from: by close time the
		// incident has necessarily aged out of the engine's rolling windows
		// (that is what lets the alerts clear), so close-time window stats
		// cannot describe the incident — only this accumulation can.
		seg := bb.segs[s.Key()]
		if seg == nil {
			seg = &windowAgg{}
			bb.segs[s.Key()] = seg
		}
		next, dropped := s.drainRange(from, bound, func(sm Sample) {
			batch.Samples = append(batch.Samples, sm)
			seg.add(classify(sm, e.opts.LossTolerance))
		})
		bb.cursors[s] = next
		if dropped > 0 {
			batch.Dropped = dropped
			bb.sampDrops += dropped
			mBBDrops.Add(int64(dropped))
			if pre {
				// The ring was lapped before arming: the engine folded
				// samples the capture can never recover, so replay cannot be
				// byte-identical. Flagged, never hidden.
				bb.truncated = true
			}
		}
		if len(batch.Samples) > 0 || dropped > 0 {
			bb.writeLocked(&captureRecord{T: "samp", Samp: &batch})
		}
	}
	for i := range bb.spans {
		bb.writeLocked(&captureRecord{T: "span", Span: &bb.spans[i]})
		bb.aggregateSpanLocked(bb.spans[i])
	}
	bb.spans = bb.spans[:0]
}

// aggregateSpanLocked folds one span into the per-host incident summary the
// envelope reports.
func (bb *Blackbox) aggregateSpanLocked(sp CycleSpan) {
	ai := bb.agg[sp.Host]
	if ai == nil {
		ai = &AgentIncident{Host: sp.Host, Contract: sp.Contract}
		bb.agg[sp.Host] = ai
	}
	ai.Cycles++
	if sp.Degraded && !sp.FailedOpen {
		ai.DegradedCycles++
		if ai.FirstDegraded.IsZero() {
			ai.FirstDegraded = sp.At
		}
	}
	if sp.FailedOpen {
		ai.FailOpenCycles++
		if ai.FirstFailOpen.IsZero() {
			ai.FirstFailOpen = sp.At
			ai.FailOpenTraceID = sp.TraceID
		}
		ai.MaxStaleFor = max(ai.MaxStaleFor, sp.StaleFor)
	}
}

// writeLocked frames and appends one record, enforcing the per-incident
// byte budget on the bulky record types. Failures degrade the capture (the
// lifecycle continues, metrics and logs tell the operator) — the black box
// must never take down the SLO plane it is documenting.
func (bb *Blackbox) writeLocked(rec *captureRecord) {
	if bb.failed || bb.f == nil {
		bb.recDrops++
		return
	}
	if bb.bytes >= bb.opts.MaxIncidentBytes && (rec.T == "samp" || rec.T == "span" || rec.T == "eval") {
		bb.recDrops++
		mBBDrops.Inc()
		return
	}
	buf, err := encodeCaptureRecord(rec)
	if err == nil {
		_, err = bb.f.Write(buf)
	}
	if err != nil {
		bb.failed = true
		mBBErrors.Inc()
		if bb.opts.Logger != nil {
			bb.opts.Logger.Error("slo.blackbox write failed",
				slog.Uint64("generation", bb.gen), slog.Any("err", err))
		}
		return
	}
	bb.bytes += int64(len(buf))
	bb.records++
	bb.totalBytes += int64(len(buf))
	bb.genBytes[bb.gen] += int64(len(buf))
	mBBRecords.With(rec.T).Inc()
	mBBBytes.Add(int64(len(buf)))
}

func (bb *Blackbox) syncLocked() {
	if bb.failed || bb.f == nil {
		return
	}
	if err := bb.f.Sync(); err != nil {
		bb.failed = true
		mBBErrors.Inc()
	}
}

// closeIncidentLocked writes the closing report and attribution envelope,
// seals the capture file, and publishes the envelope.
func (bb *Blackbox) closeIncidentLocked(e *Engine, now time.Time) {
	rep := e.reportLocked(now)
	bb.writeLocked(&captureRecord{T: "rep", Rep: rep})
	env := bb.buildEnvelopeLocked(e, now, rep)
	bb.writeLocked(&captureRecord{T: "env", Env: env})
	bb.syncLocked()
	if bb.f != nil {
		bb.f.Close()
		bb.f = nil
	}
	bb.gens = append(bb.gens, bb.gen)

	if data, err := json.MarshalIndent(env, "", "  "); err == nil {
		if err := os.WriteFile(envName(bb.opts.Dir, bb.gen), data, 0o644); err != nil {
			mBBErrors.Inc()
		} else {
			bb.totalBytes += int64(len(data))
			bb.genBytes[bb.gen] += int64(len(data))
		}
	}
	bb.envs = append(bb.envs, env)
	if len(bb.envs) > bb.opts.Envelopes {
		bb.envs = bb.envs[len(bb.envs)-bb.opts.Envelopes:]
	}

	// Back to disarmed: stale pre-incident context must not leak into the
	// next capture.
	bb.armed = false
	bb.meta = nil
	bb.cursors = nil
	bb.agg = nil
	bb.segs = nil
	bb.spanPos = 0
	bb.epochLog = bb.epochLog[:0]
	mBBArmed.Set(0)
	mIncidents.Inc()
	if bb.opts.Logger != nil {
		bb.opts.Logger.Info("slo.blackbox incident closed",
			slog.Uint64("generation", env.Generation), slog.Time("at", now),
			slog.Int64("bytes", env.Capture.Bytes),
			slog.Int("records", env.Capture.Records))
	}
}

// pruneLocked deletes the oldest retained incidents until the directory
// budget has room for one fresh full-size capture.
func (bb *Blackbox) pruneLocked() {
	for len(bb.gens) > 0 && bb.totalBytes+bb.opts.MaxIncidentBytes > bb.opts.MaxBytes {
		gen := bb.gens[0]
		bb.gens = bb.gens[1:]
		os.Remove(capName(bb.opts.Dir, gen))
		os.Remove(envName(bb.opts.Dir, gen))
		bb.totalBytes -= bb.genBytes[gen]
		delete(bb.genBytes, gen)
		if bb.opts.Logger != nil {
			bb.opts.Logger.Info("slo.blackbox pruned capture", slog.Uint64("generation", gen))
		}
	}
}
