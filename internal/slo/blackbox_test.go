package slo

import (
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"entitlement/internal/faults"
	"entitlement/internal/topology"
)

// incidentRig drives one synthetic incident through an engine with a capture
// attached: good traffic, a throttled burst that fires the burn-rate alerts,
// then good traffic until hysteresis clears them and the box closes.
type incidentRig struct {
	eng  *Engine
	rec  *Recorder
	bb   *Blackbox
	topo *topology.Topology
	link int
	key  Key
	now  time.Time
}

func newIncidentRig(t *testing.T, dir string, opts BlackboxOptions) *incidentRig {
	t.Helper()
	topo := topology.New()
	link, err := topo.AddLink("A", "B", 1e12, 0, topo.EnsureSRLG(3, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	opts.Dir = dir
	if opts.Topology == nil {
		opts.Topology = topo
	}
	rec := NewRecorder(DefaultRingCapacity)
	eng := NewEngine(rec, Options{Windows: Windows{
		Fast: 10 * time.Second, FastLong: 20 * time.Second,
		Slow: 30 * time.Second, SlowLong: 60 * time.Second,
	}})
	eng.SetObjective("C", 0.999)
	bb, err := NewBlackbox(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachCapture(bb)
	return &incidentRig{
		eng: eng, rec: rec, bb: bb, topo: topo, link: link,
		key: Key{Contract: "C", Segment: "A/net", Class: "c4_low"},
		now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// tick records one second of traffic (throttled when bad), a cycle span, and
// evaluates. Returns the rig's clock after the tick.
func (r *incidentRig) tick(bad bool) time.Time {
	r.now = r.now.Add(time.Second)
	sm := Sample{At: r.now, Granted: 1e9, Used: 1e9}
	sp := CycleSpan{At: r.now, Host: "h1", Contract: "C", TraceID: "h1-c1"}
	if bad {
		sm.Used = 5e8
		sm.Throttled = 5e8
		sm.Overage = 2e8
		sp.Degraded = true
		sp.FailedOpen = true
		sp.TraceID = "h1-c9"
		sp.StaleFor = 4 * time.Second
	}
	r.rec.Series(r.key).Record(sm)
	r.bb.RecordSpan(sp)
	r.eng.Evaluate(r.now)
	return r.now
}

// runIncident plays goodBefore good ticks, badTicks throttled ticks (with the
// topology link blackholed for their duration), then good ticks until the box
// disarms (or maxTicks elapse).
func (r *incidentRig) runIncident(t *testing.T, goodBefore, badTicks, maxTicks int) {
	t.Helper()
	for i := 0; i < goodBefore; i++ {
		r.tick(false)
		if r.bb.Armed() {
			t.Fatalf("armed after %d good ticks with no incident", i+1)
		}
	}
	r.topo.SetLinkDisabled(r.link, true)
	for i := 0; i < badTicks; i++ {
		r.tick(true)
	}
	r.topo.SetLinkDisabled(r.link, false)
	if !r.bb.Armed() {
		t.Fatal("burn-rate fire did not arm the black box")
	}
	for i := goodBefore + badTicks; i < maxTicks && r.bb.Armed(); i++ {
		r.tick(false)
	}
	if r.bb.Armed() {
		t.Fatalf("incident did not close within %d ticks", maxTicks)
	}
}

// TestBlackboxLifecycle drives arm → capture → close end to end at package
// scope and checks the capture, envelope, index, and replay line up.
func TestBlackboxLifecycle(t *testing.T) {
	dir := t.TempDir()
	rig := newIncidentRig(t, dir, BlackboxOptions{})
	rig.runIncident(t, 10, 5, 200)

	envs := rig.bb.Envelopes()
	if len(envs) != 1 {
		t.Fatalf("got %d envelopes, want 1", len(envs))
	}
	env := envs[0]
	if len(env.Contracts) != 1 || env.Contracts[0].Contract != "C" {
		t.Fatalf("envelope contracts = %+v", env.Contracts)
	}
	c := env.Contracts[0]
	if !c.Breached || c.Availability >= 0.999 {
		t.Errorf("capture-window verdict not breached: %+v", c)
	}
	if len(c.Segments) != 1 || c.Segments[0].Verdict != "network" {
		t.Errorf("segment verdict = %+v, want network", c.Segments)
	}
	if c.Segments[0].BadIntervals != 5 || c.Segments[0].OverIntervals != 5 {
		t.Errorf("interval counts = %+v, want 5 bad / 5 over", c.Segments[0])
	}
	if c.ServiceOverageRate <= 0 || c.NetworkThrottledRate <= 0 {
		t.Errorf("demarcation rates missing: %+v", c)
	}
	if env.Network.DeltaTruncated || len(env.Network.Changed) == 0 {
		t.Fatalf("network attribution = %+v, want the blackholed link", env.Network)
	}
	if lc := env.Network.Changed[0]; lc.ID != rig.link || lc.Name != "A->B" || lc.Disabled {
		t.Errorf("implicated link = %+v", lc)
	}
	if len(env.Agents) != 1 || env.Agents[0].FailOpenCycles != 5 || env.Agents[0].FailOpenTraceID != "h1-c9" {
		t.Errorf("agent aggregate = %+v", env.Agents)
	}
	if env.Capture.Records == 0 || env.Capture.Bytes == 0 || env.Capture.TruncatedHistory {
		t.Errorf("capture stats = %+v", env.Capture)
	}

	caps, err := ListCaptures(dir)
	if err != nil || len(caps) != 1 {
		t.Fatalf("ListCaptures = %v, %v", caps, err)
	}
	cap0, err := ReadCapture(caps[0])
	if err != nil {
		t.Fatal(err)
	}
	idx := cap0.Index()
	if idx.Truncated || !idx.HasReport || !idx.HasEnvelope || idx.Evals == 0 || idx.Spans == 0 {
		t.Fatalf("index = %+v", idx)
	}
	// The arm-time flush carries the full retained pre-incident ring, so the
	// capture holds MORE samples than the incident window alone.
	if idx.Samples < 15 {
		t.Errorf("capture holds %d samples, want the pre-incident history too", idx.Samples)
	}
	res, err := cap0.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatalf("package-scope replay diverged: %s", res.Divergence)
	}

	// A second incident gets its own generation and envelope.
	rig.runIncident(t, 70, 5, 300)
	if got := len(rig.bb.Envelopes()); got != 2 {
		t.Fatalf("after second incident: %d envelopes, want 2", got)
	}
	caps, _ = ListCaptures(dir)
	if len(caps) != 2 {
		t.Fatalf("after second incident: %d captures, want 2", len(caps))
	}

	// A fresh Blackbox over the same directory rescans it: envelopes reload,
	// the generation counter resumes past what is on disk.
	bb2, err := NewBlackbox(BlackboxOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bb2.Envelopes()); got != 2 {
		t.Fatalf("rescan reloaded %d envelopes, want 2", got)
	}
	if bb2.nextGen != 3 {
		t.Fatalf("rescan resumed at generation %d, want 3", bb2.nextGen)
	}
}

// TestBlackboxDiskBudget pins the retention contract: the directory never
// holds more than MaxBytes of capture data plus one in-flight incident, old
// generations are pruned oldest-first, and a capture that hits its own byte
// budget drops records HONESTLY — counted in the envelope, never silent.
func TestBlackboxDiskBudget(t *testing.T) {
	dir := t.TempDir()
	rig := newIncidentRig(t, dir, BlackboxOptions{MaxBytes: 24 << 10, MaxIncidentBytes: 6 << 10})
	rig.runIncident(t, 10, 5, 200)
	for i := 0; i < 4; i++ {
		rig.runIncident(t, 70, 5, 500)
	}
	envs := rig.bb.Envelopes()
	if len(envs) != 5 {
		t.Fatalf("ran 5 incidents, got %d envelopes", len(envs))
	}
	for i, env := range envs {
		if env.Capture.DroppedRecords == 0 {
			t.Errorf("incident %d wrote %d bytes without hitting the %d budget?", i, env.Capture.Bytes, 6<<10)
		}
		if env.Capture.Bytes >= 7<<10 {
			t.Errorf("incident %d capture %d bytes exceeds budget", i, env.Capture.Bytes)
		}
	}
	caps, err := ListCaptures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) >= 5 {
		t.Fatalf("%d captures retained, want oldest pruned", len(caps))
	}
	var total int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	if total > 24<<10 {
		t.Fatalf("directory holds %d bytes, budget is %d", total, 24<<10)
	}
	// The newest capture survived pruning.
	if !strings.HasSuffix(caps[len(caps)-1], "incident-0000000000000005.cap") {
		t.Errorf("newest capture missing; retained: %v", caps)
	}
}

// TestBlackboxCrashTail damages a finished capture the way a crash mid-write
// would (torn tail, flipped bit, appended garbage) and checks ReadCapture
// keeps a usable valid prefix: decode never errors on tail damage, the prefix
// re-decodes cleanly, and a replay over it either succeeds or reports honest
// divergence — it must never panic or invent records.
func TestBlackboxCrashTail(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		dir := t.TempDir()
		rig := newIncidentRig(t, dir, BlackboxOptions{})
		rig.runIncident(t, 10, 5, 200)
		caps, _ := ListCaptures(dir)
		if len(caps) != 1 {
			t.Fatal("expected one capture")
		}
		pristine, err := os.ReadFile(caps[0])
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		desc, err := faults.CrashTail(caps[0], rng, 512)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ReadCapture(caps[0])
		if err != nil {
			// Only total destruction of the opening meta record may fail.
			t.Fatalf("seed %d (%s): ReadCapture: %v", seed, desc, err)
		}
		if c.ValidBytes > int64(len(pristine)) {
			t.Fatalf("seed %d (%s): valid prefix %d exceeds pristine size %d", seed, desc, c.ValidBytes, len(pristine))
		}
		res, err := c.Replay()
		if err != nil {
			t.Fatalf("seed %d (%s): replay: %v", seed, desc, err)
		}
		if c.Truncated && res.Identical {
			t.Fatalf("seed %d (%s): truncated capture claimed byte-identity", seed, desc)
		}
	}
}

// TestBlackboxWriteFailure closes the capture file under the box's feet: the
// SLO plane must keep running, the lifecycle must still close, and the
// envelope must confess the capture was degraded.
func TestBlackboxWriteFailure(t *testing.T) {
	dir := t.TempDir()
	rig := newIncidentRig(t, dir, BlackboxOptions{})
	for i := 0; i < 10; i++ {
		rig.tick(false)
	}
	for i := 0; i < 5; i++ {
		rig.tick(true)
	}
	if !rig.bb.Armed() {
		t.Fatal("did not arm")
	}
	rig.bb.mu.Lock()
	rig.bb.f.Close() // every subsequent write now errors
	rig.bb.mu.Unlock()
	for i := 0; i < 200 && rig.bb.Armed(); i++ {
		rig.tick(false)
	}
	if rig.bb.Armed() {
		t.Fatal("write failure wedged the lifecycle open")
	}
	envs := rig.bb.Envelopes()
	if len(envs) != 1 || !envs[0].Capture.WriteFailed {
		t.Fatalf("envelope does not confess the write failure: %+v", envs)
	}
}
