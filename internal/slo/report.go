package slo

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// WindowVerdict is one rolling window's view of a contract.
type WindowVerdict struct {
	Window       string  `json:"window"` // "5m", "1h", "6h", "3d"
	Availability float64 `json:"availability"`
	BurnRate     float64 `json:"burn_rate"`
}

// Attribution splits a contract's observed throttling along the paper's
// accountability demarcation (§3.3): in-entitlement traffic that was denied
// is on the network team; traffic offered beyond the entitlement is the
// service team's own exposure. Counts and rates cover the budget (slow-long)
// window.
type Attribution struct {
	// NetworkBadIntervals counts intervals where in-entitlement traffic was
	// throttled beyond tolerance — SLO breaches, network-attributed.
	NetworkBadIntervals int64 `json:"network_bad_intervals"`
	// ServiceOverIntervals counts intervals where the service offered more
	// than its entitlement — any damage to that excess is service-attributed.
	ServiceOverIntervals int64 `json:"service_over_intervals"`
	// ThrottledRate is the mean in-entitlement bits/s denied.
	ThrottledRate float64 `json:"throttled_rate"`
	// OverageRate is the mean bits/s offered beyond the entitlement.
	OverageRate float64 `json:"overage_rate"`
}

// ContractVerdict is one contract's conformance summary.
type ContractVerdict struct {
	Contract string  `json:"contract"`
	SLO      float64 `json:"slo"` // 0 when no objective is on record
	HasSLO   bool    `json:"has_slo"`
	// Conformant is the headline verdict: budget-window availability meets
	// the SLO. Always true without an objective.
	Conformant bool            `json:"conformant"`
	Windows    []WindowVerdict `json:"windows"`
	// BudgetRemaining is the fraction of the slow-long window's error
	// budget left (1 = untouched, negative = overspent).
	BudgetRemaining float64 `json:"budget_remaining"`
	// WorstSegment is the (segment, class) series with the lowest
	// budget-window availability.
	WorstSegment             string      `json:"worst_segment"`
	WorstSegmentAvailability float64     `json:"worst_segment_availability"`
	Attribution              Attribution `json:"attribution"`
	FastBurnActive           bool        `json:"fast_burn_active"`
	SlowBurnActive           bool        `json:"slow_burn_active"`
	// Intervals is the number of demand-bearing intervals in the budget
	// window, the availability denominator.
	Intervals int64 `json:"intervals"`
	// MeanGrantedRate and MeanUsedRate summarize the budget window.
	MeanGrantedRate float64 `json:"mean_granted_rate"`
	MeanUsedRate    float64 `json:"mean_used_rate"`
}

// Report is the full conformance report.
type Report struct {
	At        time.Time         `json:"at"`
	Contracts []ContractVerdict `json:"contracts"`
}

// Report evaluates pending samples and renders the conformance state of
// every contract seen so far, sorted by contract name.
func (e *Engine) Report(now time.Time) *Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evaluateLocked(now)
	return e.reportLocked(now)
}

// reportLocked renders the report without evaluating — the black box calls
// it under the engine lock at incident close, after the closing evaluation
// already ran, so the capture's report record matches what a live scrape at
// the same instant would have shown.
func (e *Engine) reportLocked(now time.Time) *Report {
	rep := &Report{At: now}
	for _, name := range e.order {
		cs := e.contracts[name]
		avail, agg, worst, worstAvail := cs.contractWindows(now)
		slo, hasSLO := e.objectives[name]
		v := ContractVerdict{
			Contract:                 name,
			SLO:                      slo,
			HasSLO:                   hasSLO,
			Conformant:               !hasSLO || avail[3] >= slo,
			BudgetRemaining:          1,
			WorstSegmentAvailability: worstAvail,
			FastBurnActive:           cs.fast.active,
			SlowBurnActive:           cs.slow.active,
			Intervals:                agg.Total,
			Attribution: Attribution{
				NetworkBadIntervals:  agg.BadNetwork,
				ServiceOverIntervals: agg.Over,
			},
		}
		if worst != nil {
			v.WorstSegment = worst.key.Segment
			if worst.key.Class != "" {
				v.WorstSegment += " " + worst.key.Class
			}
		}
		// The sums span every series; normalize rates by sample count so
		// they read as mean bits/s, not per-series stacks.
		if samples := agg.Total; samples > 0 {
			v.Attribution.ThrottledRate = agg.Throttled / float64(samples)
			v.Attribution.OverageRate = agg.Overage / float64(samples)
			v.MeanGrantedRate = agg.Granted / float64(samples)
			v.MeanUsedRate = agg.Used / float64(samples)
		}
		for i, name := range windowNames {
			wv := WindowVerdict{Window: name, Availability: avail[i]}
			if hasSLO {
				wv.BurnRate = burnRate(avail[i], slo)
			}
			v.Windows = append(v.Windows, wv)
		}
		if hasSLO {
			v.BudgetRemaining = 1 - burnRate(avail[3], slo)
		}
		rep.Contracts = append(rep.Contracts, v)
	}
	sort.Slice(rep.Contracts, func(i, j int) bool { return rep.Contracts[i].Contract < rep.Contracts[j].Contract })
	return rep
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Text renders the report as an operator-facing table plus per-contract
// detail lines.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLO conformance report @ %s\n\n", r.At.UTC().Format(time.RFC3339))
	if len(r.Contracts) == 0 {
		b.WriteString("no contracts observed\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-16s %8s %9s %9s %9s %9s %10s %8s\n",
		"contract", "slo", "avail5m", "avail1h", "avail6h", "avail3d", "budget", "verdict")
	for _, c := range r.Contracts {
		verdict := "OK"
		if !c.Conformant {
			verdict = "BREACH"
		}
		if c.FastBurnActive {
			verdict += "+PAGE"
		} else if c.SlowBurnActive {
			verdict += "+TICKET"
		}
		sloStr, budgetStr := "-", "-"
		if c.HasSLO {
			sloStr = fmt.Sprintf("%.4f", c.SLO)
			budgetStr = fmt.Sprintf("%.1f%%", 100*c.BudgetRemaining)
		}
		avail := func(i int) string {
			if i < len(c.Windows) {
				return fmt.Sprintf("%.4f", c.Windows[i].Availability)
			}
			return "-"
		}
		fmt.Fprintf(&b, "%-16s %8s %9s %9s %9s %9s %10s %8s\n",
			c.Contract, sloStr, avail(0), avail(1), avail(2), avail(3), budgetStr, verdict)
	}
	b.WriteString("\n")
	for _, c := range r.Contracts {
		fmt.Fprintf(&b, "%s: %d intervals, worst segment %q (avail %.4f), granted %.1f Gbps, used %.1f Gbps\n",
			c.Contract, c.Intervals, c.WorstSegment, c.WorstSegmentAvailability,
			c.MeanGrantedRate/1e9, c.MeanUsedRate/1e9)
		fmt.Fprintf(&b, "  attribution: network-throttled %d intervals (%.2f Gbps denied in-entitlement), service-over %d intervals (%.2f Gbps offered beyond entitlement)\n",
			c.Attribution.NetworkBadIntervals, c.Attribution.ThrottledRate/1e9,
			c.Attribution.ServiceOverIntervals, c.Attribution.OverageRate/1e9)
	}
	return b.String()
}
