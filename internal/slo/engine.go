package slo

import (
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Windows are the four rolling horizons the engine evaluates, paired into
// a fast alert (Fast AND FastLong over threshold) and a slow alert (Slow
// AND SlowLong over threshold), per the SRE multi-window multi-burn-rate
// recipe: the short window makes the alert reset quickly once the incident
// ends, the long window keeps one noisy minute from paging.
type Windows struct {
	Fast     time.Duration // default 5m
	FastLong time.Duration // default 1h
	Slow     time.Duration // default 6h
	SlowLong time.Duration // default 3d; also the error-budget horizon
}

// DefaultWindows returns the production horizons.
func DefaultWindows() Windows {
	return Windows{
		Fast:     5 * time.Minute,
		FastLong: time.Hour,
		Slow:     6 * time.Hour,
		SlowLong: 72 * time.Hour,
	}
}

// names for metrics, logs and reports, index-aligned with windowList.
var windowNames = [4]string{"5m", "1h", "6h", "3d"}

func (w Windows) list() [4]time.Duration {
	return [4]time.Duration{w.Fast, w.FastLong, w.Slow, w.SlowLong}
}

// Options configure an Engine. The zero value picks production defaults.
type Options struct {
	// Windows are the burn-rate horizons; zero fields default per
	// DefaultWindows. Tests shrink them to drive days of budget math with
	// seconds of samples.
	Windows Windows
	// FastBurn is the firing threshold for the fast alert pair. Default
	// 14.4: at that burn rate a 99.9% contract spends 2% of its 30-day
	// budget in one hour — page-worthy.
	FastBurn float64
	// SlowBurn is the firing threshold for the slow alert pair. Default
	// 1.0: burning at exactly budget rate for 6h+ is a ticket.
	SlowBurn float64
	// ClearRatio scales the firing threshold into the clear threshold:
	// an active alert clears only once both windows burn below
	// threshold×ClearRatio. Default 0.5. The gap is the hysteresis band —
	// burn hovering at the threshold cannot flap the alert.
	ClearRatio float64
	// ClearAfter is how many consecutive below-clear evaluations an active
	// alert must see before clearing. Default 3.
	ClearAfter int
	// LossTolerance bounds the throttled share of in-entitlement demand a
	// sample may carry and still count as available. Default 0.01 (1%),
	// matching the drill's loss threshold for measured availability.
	LossTolerance float64
	// Logger receives alert transition events (Warn on fire, Info on
	// clear). Nil disables logging.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	d := DefaultWindows()
	if o.Windows.Fast <= 0 {
		o.Windows.Fast = d.Fast
	}
	if o.Windows.FastLong <= 0 {
		o.Windows.FastLong = d.FastLong
	}
	if o.Windows.Slow <= 0 {
		o.Windows.Slow = d.Slow
	}
	if o.Windows.SlowLong <= 0 {
		o.Windows.SlowLong = d.SlowLong
	}
	if o.FastBurn <= 0 {
		o.FastBurn = 14.4
	}
	if o.SlowBurn <= 0 {
		o.SlowBurn = 1.0
	}
	if o.ClearRatio <= 0 || o.ClearRatio >= 1 {
		o.ClearRatio = 0.5
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 3
	}
	if o.LossTolerance <= 0 {
		o.LossTolerance = 0.01
	}
	return o
}

// keyState is one series' rolling aggregates, one per window.
type keyState struct {
	key     Key
	windows [4]*rolling
}

// alertState is the hysteresis state machine for one alert pair.
type alertState struct {
	active      bool
	clearStreak int
}

// contractState groups a contract's series and alert state.
type contractState struct {
	keys []*keyState
	fast alertState
	slow alertState
}

// Transition is one alert state change, returned by Evaluate for callers
// that drive notifications.
type Transition struct {
	Contract string    `json:"contract"`
	Alert    string    `json:"alert"` // "fast_burn" or "slow_burn"
	Active   bool      `json:"active"`
	At       time.Time `json:"at"`
}

// Engine folds recorder samples into rolling windows and judges each
// contract against its SLO objective. Record-side calls are lock-free (they
// go straight to the Recorder); Evaluate and Report serialize on a mutex.
type Engine struct {
	opts Options
	rec  *Recorder

	mu         sync.Mutex
	objectives map[string]float64
	keys       map[Key]*keyState
	contracts  map[string]*contractState
	cursors    map[*Series]uint64
	order      []string // sorted contract names with state
	// capture, when attached, observes every evaluation: it arms on the
	// first burn-rate fire, persists the flight-recorder state while armed,
	// and emits the attribution envelope once every alert has cleared.
	capture *Blackbox
}

// AttachCapture wires an incident black box into the engine: every Evaluate
// gives it a chance to arm (on a burn-rate fire), flush recorder samples to
// disk, and close the capture (on hysteresis clear). Attach before the
// first Evaluate; pass nil to detach.
func (e *Engine) AttachCapture(bb *Blackbox) {
	e.mu.Lock()
	e.capture = bb
	e.mu.Unlock()
}

// NewEngine builds an engine over rec (a fresh DefaultRingCapacity
// recorder when nil).
func NewEngine(rec *Recorder, opts Options) *Engine {
	if rec == nil {
		rec = NewRecorder(0)
	}
	return &Engine{
		opts:       opts.withDefaults(),
		rec:        rec,
		objectives: make(map[string]float64),
		keys:       make(map[Key]*keyState),
		contracts:  make(map[string]*contractState),
		cursors:    make(map[*Series]uint64),
	}
}

// Recorder exposes the engine's flight recorder for sample emitters.
func (e *Engine) Recorder() *Recorder { return e.rec }

// Record appends one sample — a convenience for cold paths; hot emitters
// should cache Recorder().Series(key) and record on the handle.
func (e *Engine) Record(k Key, sm Sample) { e.rec.Record(k, sm) }

// SetObjective registers (or updates) a contract's availability SLO in
// (0, 1]. Contracts without an objective are still recorded and reported,
// but carry no burn rates or alerts.
func (e *Engine) SetObjective(contractName string, slo float64) {
	if slo <= 0 || slo > 1 {
		return
	}
	e.mu.Lock()
	if _, ok := e.objectives[contractName]; !ok {
		mContracts.Inc()
	}
	e.objectives[contractName] = slo
	e.mu.Unlock()
}

// Objective returns a contract's SLO, if set.
func (e *Engine) Objective(contractName string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.objectives[contractName]
	return s, ok
}

// Evaluate drains new samples from the recorder, folds them into every
// window, refreshes the entitlement_slo_* gauges, and advances the alert
// state machines. It returns the alert transitions that occurred, in
// contract order. Call it once per enforcement cycle (or scrape period);
// it is cheap — O(new samples + contracts × windows).
func (e *Engine) Evaluate(now time.Time) []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evaluateLocked(now)
}

func (e *Engine) evaluateLocked(now time.Time) []Transition {
	mEvaluations.Inc()
	e.drainLocked()
	var pre map[string]ContractSeed
	if e.capture != nil {
		// Snapshot the alert state machines BEFORE judging: a capture armed
		// by this evaluation stores the pre-arm states, so a replay that
		// seeds them and re-runs this very evaluation reproduces the arming
		// transitions instead of double-stepping the hysteresis streaks.
		pre = e.alertSeedsLocked()
	}
	var trans []Transition
	for _, name := range e.order {
		trans = append(trans, e.judgeLocked(name, now)...)
	}
	if e.capture != nil {
		e.capture.observe(e, now, pre, trans)
	}
	return trans
}

// drainLocked consumes samples recorded since the previous evaluation.
func (e *Engine) drainLocked() {
	e.rec.Each(func(s *Series) {
		ks := e.keyStateLocked(s.Key())
		next, dropped := s.DrainFrom(e.cursors[s], func(sm Sample) {
			e.foldLocked(ks, sm)
		})
		if dropped > 0 {
			mSamplesDropped.Add(int64(dropped))
		}
		e.cursors[s] = next
	})
}

// contractStateLocked returns (creating if needed) one contract's state.
func (e *Engine) contractStateLocked(name string) *contractState {
	cs, ok := e.contracts[name]
	if !ok {
		cs = &contractState{}
		e.contracts[name] = cs
		e.order = append(e.order, name)
		sort.Strings(e.order)
	}
	return cs
}

func (e *Engine) keyStateLocked(k Key) *keyState {
	if ks, ok := e.keys[k]; ok {
		return ks
	}
	ks := &keyState{key: k}
	for i, d := range e.opts.Windows.list() {
		ks.windows[i] = newRolling(d)
	}
	e.keys[k] = ks
	cs := e.contractStateLocked(k.Contract)
	// Keep a contract's series sorted by (segment, class): the report's
	// float accumulations and worst-segment tie-breaks then fold in a
	// deterministic order regardless of which goroutine's sample created a
	// series first — a replay of recorded samples must reproduce the live
	// run's report bytes exactly.
	at := len(cs.keys)
	for i, other := range cs.keys {
		if k.Segment < other.key.Segment ||
			(k.Segment == other.key.Segment && k.Class < other.key.Class) {
			at = i
			break
		}
	}
	cs.keys = append(cs.keys, nil)
	copy(cs.keys[at+1:], cs.keys[at:])
	cs.keys[at] = ks
	return ks
}

// classify turns one sample into a single-interval aggregate. Shared by the
// live fold and the black box's incident-window accounting, so both sides
// apply the same §3.3 demarcation: throttling of in-entitlement demand beyond
// the tolerance is network-attributed badness, overage is the service's own
// exposure, and an idle cycle (no in-entitlement demand) can neither meet nor
// breach the SLO — the drill's measured-availability rule.
func classify(sm Sample, lossTolerance float64) windowAgg {
	var a windowAgg
	a.Granted = sm.Granted
	a.Used = sm.Used
	a.Throttled = sm.Throttled
	a.Overage = sm.Overage
	if sm.Overage > 0 {
		a.Over = 1
	}
	if inEnt := sm.Used + sm.Throttled; inEnt > 0 {
		a.Total = 1
		if sm.Throttled <= lossTolerance*inEnt {
			a.Good = 1
		} else {
			a.BadNetwork = 1
		}
	}
	return a
}

// foldLocked classifies one sample and adds it to every window.
func (e *Engine) foldLocked(ks *keyState, sm Sample) {
	a := classify(sm, e.opts.LossTolerance)
	for _, w := range ks.windows {
		w.add(sm.At, a)
	}
}

// contractWindows computes, per window, the contract's availability — the
// MINIMUM across its series, because the paper's uptime definition requires
// ALL of the contract's in-entitlement traffic to be admitted — plus the
// summed aggregate for rate attribution and the worst series over the
// budget window.
func (cs *contractState) contractWindows(now time.Time) (avail [4]float64, budgetAgg windowAgg, worst *keyState, worstAvail float64) {
	for i := range avail {
		avail[i] = 1
	}
	worstAvail = 1
	for _, ks := range cs.keys {
		for i, w := range ks.windows {
			st := w.stats(now)
			if a := st.availability(); a < avail[i] {
				avail[i] = a
			}
			if i == 3 { // budget horizon
				budgetAgg.add(st)
				if a := st.availability(); worst == nil || a < worstAvail {
					worst, worstAvail = ks, a
				}
			}
		}
	}
	return avail, budgetAgg, worst, worstAvail
}

// burnRate converts an availability shortfall into budget-burn multiples.
func burnRate(avail, slo float64) float64 {
	if slo >= 1 {
		if avail < 1 {
			return inf
		}
		return 0
	}
	return (1 - avail) / (1 - slo)
}

const inf = 1e308 // effectively infinite burn for a 100% SLO

// judgeLocked refreshes one contract's gauges and alert state.
func (e *Engine) judgeLocked(name string, now time.Time) []Transition {
	cs := e.contracts[name]
	avail, _, _, _ := cs.contractWindows(now)
	mAvail5m.With(name).Set(avail[0])
	mAvail1h.With(name).Set(avail[1])
	mAvail6h.With(name).Set(avail[2])
	mAvail3d.With(name).Set(avail[3])

	slo, ok := e.objectives[name]
	if !ok {
		return nil
	}
	var burn [4]float64
	for i := range burn {
		burn[i] = burnRate(avail[i], slo)
	}
	mBurn5m.With(name).Set(burn[0])
	mBurn1h.With(name).Set(burn[1])
	mBurn6h.With(name).Set(burn[2])
	mBurn3d.With(name).Set(burn[3])
	mBudgetRemaining.With(name).Set(1 - burn[3])

	var trans []Transition
	if t := e.stepAlertLocked(name, "fast_burn", &cs.fast, burn[0], burn[1], e.opts.FastBurn, now); t != nil {
		trans = append(trans, *t)
	}
	if t := e.stepAlertLocked(name, "slow_burn", &cs.slow, burn[2], burn[3], e.opts.SlowBurn, now); t != nil {
		trans = append(trans, *t)
	}
	mFastActive.With(name).Set(boolGauge(cs.fast.active))
	mSlowActive.With(name).Set(boolGauge(cs.slow.active))
	return trans
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// stepAlertLocked advances one alert pair's hysteresis state machine:
// fire when BOTH windows burn at or above the threshold; clear only after
// ClearAfter consecutive evaluations with BOTH windows below
// threshold×ClearRatio. Returns the transition, if one happened.
func (e *Engine) stepAlertLocked(contractName, alert string, st *alertState, short, long, threshold float64, now time.Time) *Transition {
	firing := short >= threshold && long >= threshold
	clear := short < threshold*e.opts.ClearRatio && long < threshold*e.opts.ClearRatio
	switch {
	case !st.active && firing:
		st.active = true
		st.clearStreak = 0
		e.countTransition(contractName, alert)
		if e.opts.Logger != nil {
			e.opts.Logger.Warn("slo.alert fired",
				slog.String("contract", contractName), slog.String("alert", alert),
				slog.Float64("burn_short", short), slog.Float64("burn_long", long),
				slog.Float64("threshold", threshold), slog.Time("at", now))
		}
		return &Transition{Contract: contractName, Alert: alert, Active: true, At: now}
	case st.active && clear:
		st.clearStreak++
		if st.clearStreak >= e.opts.ClearAfter {
			st.active = false
			st.clearStreak = 0
			e.countTransition(contractName, alert)
			if e.opts.Logger != nil {
				e.opts.Logger.Info("slo.alert cleared",
					slog.String("contract", contractName), slog.String("alert", alert),
					slog.Float64("burn_short", short), slog.Float64("burn_long", long),
					slog.Time("at", now))
			}
			return &Transition{Contract: contractName, Alert: alert, Active: false, At: now}
		}
	case st.active:
		// Burn wobbled back above the clear band: restart the streak.
		st.clearStreak = 0
	}
	return nil
}

func (e *Engine) countTransition(contractName, alert string) {
	if alert == "fast_burn" {
		mFastTrans.With(contractName).Inc()
	} else {
		mSlowTrans.With(contractName).Inc()
	}
}

// AlertSeed is one alert pair's hysteresis position, serialized into the
// capture metadata so a replay can resume the state machine exactly where
// the live engine stood before the arming evaluation.
type AlertSeed struct {
	Active      bool `json:"active,omitempty"`
	ClearStreak int  `json:"clear_streak,omitempty"`
}

// ContractSeed carries both alert pairs' seeds for one contract.
type ContractSeed struct {
	Fast AlertSeed `json:"fast"`
	Slow AlertSeed `json:"slow"`
}

// alertSeedsLocked snapshots every contract's alert state machines.
func (e *Engine) alertSeedsLocked() map[string]ContractSeed {
	out := make(map[string]ContractSeed, len(e.order))
	for _, name := range e.order {
		cs := e.contracts[name]
		out[name] = ContractSeed{
			Fast: AlertSeed{Active: cs.fast.active, ClearStreak: cs.fast.clearStreak},
			Slow: AlertSeed{Active: cs.slow.active, ClearStreak: cs.slow.clearStreak},
		}
	}
	return out
}

// seedAlerts primes the alert state machines from capture metadata before a
// replay's first evaluation; contracts are created as needed.
func (e *Engine) seedAlerts(seeds map[string]ContractSeed) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, s := range seeds {
		cs := e.contractStateLocked(name)
		cs.fast = alertState{active: s.Fast.Active, clearStreak: s.Fast.ClearStreak}
		cs.slow = alertState{active: s.Slow.Active, clearStreak: s.Slow.ClearStreak}
	}
}

// ContractEval is one contract's availability and burn rates at one
// evaluation, index-aligned with windowNames.
type ContractEval struct {
	Contract     string     `json:"contract"`
	Availability [4]float64 `json:"availability"`
	Burn         [4]float64 `json:"burn"`
	HasSLO       bool       `json:"has_slo,omitempty"`
	FastActive   bool       `json:"fast_active,omitempty"`
	SlowActive   bool       `json:"slow_active,omitempty"`
}

// EvalRecord is one armed evaluation's full engine output — the live run
// appends one per Evaluate to the capture, and `sloctl replay` must
// recompute each byte-identically (compared via encoding/json, which
// renders float64 shortest-roundtrip). This is the determinism contract the
// golden test pins.
type EvalRecord struct {
	At          time.Time      `json:"at"`
	Contracts   []ContractEval `json:"contracts"`
	Transitions []Transition   `json:"transitions,omitempty"`
}

// evalRecordLocked renders the post-judge engine state for time now.
func (e *Engine) evalRecordLocked(now time.Time, trans []Transition) EvalRecord {
	ev := EvalRecord{At: now, Transitions: trans}
	for _, name := range e.order {
		cs := e.contracts[name]
		avail, _, _, _ := cs.contractWindows(now)
		ce := ContractEval{
			Contract:     name,
			Availability: avail,
			FastActive:   cs.fast.active,
			SlowActive:   cs.slow.active,
		}
		if slo, ok := e.objectives[name]; ok {
			ce.HasSLO = true
			for i := range avail {
				ce.Burn[i] = burnRate(avail[i], slo)
			}
		}
		ev.Contracts = append(ev.Contracts, ce)
	}
	return ev
}

// objectivesLocked copies the objective table for capture metadata.
func (e *Engine) objectivesLocked() map[string]float64 {
	out := make(map[string]float64, len(e.objectives))
	for k, v := range e.objectives {
		out[k] = v
	}
	return out
}
