package slo

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// shortWindows compresses the SRE horizons so seconds of synthetic samples
// exercise the full window machinery.
func shortWindows() Windows {
	return Windows{Fast: 10 * time.Second, FastLong: 10 * time.Second,
		Slow: 60 * time.Second, SlowLong: 60 * time.Second}
}

func good(at time.Time) Sample {
	return Sample{At: at, Granted: 100, Used: 90}
}

func bad(at time.Time) Sample {
	return Sample{At: at, Granted: 100, Used: 40, Throttled: 50}
}

// TestEngineBurnAndAvailability checks the core math: availability over a
// window, burn rate against the SLO, and budget remaining.
func TestEngineBurnAndAvailability(t *testing.T) {
	e := NewEngine(nil, Options{Windows: shortWindows(), FastBurn: 2})
	e.SetObjective("Burnmath", 0.8) // budget = 0.2
	k := Key{Contract: "Burnmath", Segment: "r1", Class: "c4_low"}
	base := ts(1000)
	// 6 good + 4 bad samples inside every window.
	for i := 0; i < 6; i++ {
		e.Record(k, good(base.Add(time.Duration(i)*time.Second)))
	}
	for i := 6; i < 10; i++ {
		e.Record(k, bad(base.Add(time.Duration(i)*time.Second)))
	}
	now := base.Add(9 * time.Second)
	e.Evaluate(now)
	rep := e.Report(now)
	if len(rep.Contracts) != 1 {
		t.Fatalf("report has %d contracts, want 1", len(rep.Contracts))
	}
	c := rep.Contracts[0]
	if !c.HasSLO || c.SLO != 0.8 {
		t.Fatalf("SLO = %v (has=%v), want 0.8", c.SLO, c.HasSLO)
	}
	wantAvail := 0.6
	for _, w := range c.Windows {
		if !close6(w.Availability, wantAvail) {
			t.Fatalf("window %s availability = %v, want %v", w.Window, w.Availability, wantAvail)
		}
		if wantBurn := (1 - wantAvail) / 0.2; !close6(w.BurnRate, wantBurn) {
			t.Fatalf("window %s burn = %v, want %v", w.Window, w.BurnRate, wantBurn)
		}
	}
	if wantBudget := 1 - 0.4/0.2; !close6(c.BudgetRemaining, wantBudget) {
		t.Fatalf("budget remaining = %v, want %v", c.BudgetRemaining, wantBudget)
	}
	if c.Conformant {
		t.Fatal("contract at 60%% availability against a 80%% SLO must be non-conformant")
	}
	if c.Attribution.NetworkBadIntervals != 4 {
		t.Fatalf("network bad intervals = %d, want 4", c.Attribution.NetworkBadIntervals)
	}
}

func close6(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }

// TestEngineWindowAging checks that a breach rolls out of a short window
// while a longer window still remembers it.
func TestEngineWindowAging(t *testing.T) {
	e := NewEngine(nil, Options{Windows: shortWindows()})
	e.SetObjective("Aging", 0.9)
	k := Key{Contract: "Aging", Segment: "r1", Class: "c4_low"}
	base := ts(5000)
	e.Record(k, bad(base))
	for i := 1; i <= 30; i++ {
		e.Record(k, good(base.Add(time.Duration(i)*time.Second)))
	}
	now := base.Add(30 * time.Second)
	e.Evaluate(now)
	rep := e.Report(now)
	c := rep.Contracts[0]
	if a := c.Windows[0].Availability; a != 1 {
		t.Fatalf("10s window availability = %v, want 1 (the bad sample aged out)", a)
	}
	if a := c.Windows[3].Availability; a >= 1 {
		t.Fatalf("60s window availability = %v, want < 1 (the bad sample is still inside)", a)
	}
}

// TestEngineAlertHysteresis drives burn across the firing threshold, lets
// it hover inside the hysteresis band (above clear, below fire), then
// drops it: the alert must fire exactly once, survive the hover without
// flapping, and clear exactly once after ClearAfter clean evaluations.
func TestEngineAlertHysteresis(t *testing.T) {
	e := NewEngine(nil, Options{
		// SlowBurn is parked out of reach so only the fast pair drives
		// transitions in this test.
		Windows: shortWindows(), FastBurn: 2, SlowBurn: 1e6, ClearRatio: 0.5, ClearAfter: 2,
	})
	e.SetObjective("Hyst", 0.8) // budget 0.2: burn = badFrac / 0.2
	k := Key{Contract: "Hyst", Segment: "r1", Class: "c4_low"}
	base := ts(10000)
	i := 0
	record := func(s Sample) { e.Record(k, s); i++ }
	at := func() time.Time { return base.Add(time.Duration(i) * time.Second) }
	var transitions []Transition

	// Warm-up: all good, 10 samples — burn 0.
	for n := 0; n < 10; n++ {
		record(good(at()))
		transitions = append(transitions, e.Evaluate(at())...)
	}
	if len(transitions) != 0 {
		t.Fatalf("alert fired during clean warm-up: %+v", transitions)
	}
	// Incident: 5 bad samples → 10s window is 5/10 bad → burn 2.5 ≥ 2.
	for n := 0; n < 5; n++ {
		record(bad(at()))
		transitions = append(transitions, e.Evaluate(at())...)
	}
	if len(transitions) != 1 || !transitions[0].Active || transitions[0].Alert != "fast_burn" {
		t.Fatalf("want exactly one fast_burn fire, got %+v", transitions)
	}
	// Hover: alternate good/bad keeps the 10s window ~40-50%% bad → burn
	// ~2.0-2.5 or, as bad samples rotate out, above the clear band (1.0).
	// No transition may occur.
	for n := 0; n < 6; n++ {
		if n%2 == 0 {
			record(good(at()))
		} else {
			record(bad(at()))
		}
		transitions = append(transitions, e.Evaluate(at())...)
	}
	if len(transitions) != 1 {
		t.Fatalf("alert flapped during hover: %+v", transitions)
	}
	// Recovery: all good until the window is clean. Burn falls below the
	// clear threshold (1.0); after 2 consecutive clean evaluations the
	// alert clears — exactly once.
	for n := 0; n < 15; n++ {
		record(good(at()))
		transitions = append(transitions, e.Evaluate(at())...)
	}
	if len(transitions) != 2 {
		t.Fatalf("want exactly fire+clear, got %+v", transitions)
	}
	last := transitions[1]
	if last.Active || last.Alert != "fast_burn" {
		t.Fatalf("second transition should be the clear, got %+v", last)
	}
	if v := mFastTrans.With("Hyst").Value(); v != 2 {
		t.Fatalf("entitlement_slo_fast_burn_transitions_total{Hyst} = %d, want 2", v)
	}
}

// TestEngineWorstSegmentMin checks the paper's uptime rule: a contract's
// availability is the minimum across its segments (all traffic must be
// admitted), and the worst segment is named in the report.
func TestEngineWorstSegmentMin(t *testing.T) {
	e := NewEngine(nil, Options{Windows: shortWindows()})
	e.SetObjective("Worst", 0.99)
	base := ts(20000)
	healthy := Key{Contract: "Worst", Segment: "region-a", Class: "c4_low"}
	broken := Key{Contract: "Worst", Segment: "region-b", Class: "c4_low"}
	for i := 0; i < 10; i++ {
		at := base.Add(time.Duration(i) * time.Second)
		e.Record(healthy, good(at))
		if i < 5 {
			e.Record(broken, bad(at))
		} else {
			e.Record(broken, good(at))
		}
	}
	now := base.Add(9 * time.Second)
	rep := e.Report(now)
	c := rep.Contracts[0]
	if !close6(c.Windows[3].Availability, 0.5) {
		t.Fatalf("contract availability = %v, want min across segments = 0.5", c.Windows[3].Availability)
	}
	if !strings.Contains(c.WorstSegment, "region-b") {
		t.Fatalf("worst segment = %q, want region-b", c.WorstSegment)
	}
	if !close6(c.WorstSegmentAvailability, 0.5) {
		t.Fatalf("worst segment availability = %v, want 0.5", c.WorstSegmentAvailability)
	}
}

// TestEngineDropAccounting laps the ring before the engine evaluates and
// checks the exact dropped count.
func TestEngineDropAccounting(t *testing.T) {
	rec := NewRecorder(8)
	e := NewEngine(rec, Options{Windows: shortWindows()})
	k := Key{Contract: "Dropped", Segment: "r", Class: "c"}
	base := ts(30000)
	before := mSamplesDropped.Value()
	for i := 0; i < 30; i++ {
		rec.Record(k, good(base.Add(time.Duration(i)*time.Second)))
	}
	e.Evaluate(base.Add(30 * time.Second))
	if d := mSamplesDropped.Value() - before; d != 22 {
		t.Fatalf("dropped = %d, want 30-8 = 22", d)
	}
	rep := e.Report(base.Add(30 * time.Second))
	if n := rep.Contracts[0].Intervals; n != 8 {
		t.Fatalf("intervals = %d, want the 8 retained samples", n)
	}
}

// TestEngineNoObjective: contracts without an SLO are reported but carry no
// burn rates or alerts.
func TestEngineNoObjective(t *testing.T) {
	e := NewEngine(nil, Options{Windows: shortWindows()})
	k := Key{Contract: "Nobody", Segment: "r", Class: "c"}
	base := ts(40000)
	for i := 0; i < 10; i++ {
		e.Record(k, bad(base.Add(time.Duration(i)*time.Second)))
	}
	trans := e.Evaluate(base.Add(9 * time.Second))
	if len(trans) != 0 {
		t.Fatalf("contract without objective fired alerts: %+v", trans)
	}
	rep := e.Report(base.Add(9 * time.Second))
	c := rep.Contracts[0]
	if c.HasSLO || !c.Conformant {
		t.Fatalf("no-SLO contract should be vacuously conformant, got %+v", c)
	}
}

// TestReportJSONRoundtrip pins the JSON rendering: a report unmarshals back
// into the same verdicts.
func TestReportJSONRoundtrip(t *testing.T) {
	e := NewEngine(nil, Options{Windows: shortWindows()})
	e.SetObjective("Round", 0.999)
	k := Key{Contract: "Round", Segment: "seg", Class: "c4_low"}
	base := ts(50000)
	for i := 0; i < 10; i++ {
		e.Record(k, good(base.Add(time.Duration(i)*time.Second)))
	}
	rep := e.Report(base.Add(9 * time.Second))
	body, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Contracts) != 1 || back.Contracts[0].Contract != "Round" ||
		!back.Contracts[0].Conformant || back.Contracts[0].SLO != 0.999 {
		t.Fatalf("roundtrip lost data: %+v", back.Contracts)
	}
	if txt := rep.Text(); !strings.Contains(txt, "Round") || !strings.Contains(txt, "OK") {
		t.Fatalf("text report missing contract line:\n%s", txt)
	}
}
