package slo

import "time"

// windowBuckets is the number of rotating aggregate buckets per rolling
// window. Memory per (series, window) is constant — windowBuckets ×
// ~64B — so total engine memory is O(windows × series), independent of
// sample volume or run length. The time resolution of a window is
// dur/windowBuckets (e.g. 5s for the 5m window), which is far finer than
// the burn-rate thresholds need.
const windowBuckets = 60

// bucket aggregates the samples of one window-resolution time slice.
type bucket struct {
	epoch int64 // slice index = unixNanos / width; stale slices are reused
	agg   windowAgg
}

// windowAgg is the additive aggregate a window exposes.
type windowAgg struct {
	Good       int64 // samples with tolerable in-entitlement loss
	BadNetwork int64 // bad samples: in-entitlement traffic denied (network-attributed)
	Over       int64 // samples where the service offered beyond its entitlement
	Total      int64

	Granted   float64 // sums of the sample rates, for window averages
	Used      float64
	Throttled float64
	Overage   float64
}

func (a *windowAgg) add(b windowAgg) {
	a.Good += b.Good
	a.BadNetwork += b.BadNetwork
	a.Over += b.Over
	a.Total += b.Total
	a.Granted += b.Granted
	a.Used += b.Used
	a.Throttled += b.Throttled
	a.Overage += b.Overage
}

// availability is the good fraction of counted samples; an empty window is
// vacuously available (no demand, no breach).
func (a windowAgg) availability() float64 {
	if a.Total == 0 {
		return 1
	}
	return float64(a.Good) / float64(a.Total)
}

// rolling is a rolling-window aggregate: a ring of windowBuckets slices of
// width dur/windowBuckets each, reused in place as time advances. Not
// goroutine-safe; the engine serializes access under its mutex.
type rolling struct {
	width   time.Duration
	buckets [windowBuckets]bucket
}

func newRolling(dur time.Duration) *rolling {
	w := dur / windowBuckets
	if w <= 0 {
		w = time.Nanosecond
	}
	return &rolling{width: w}
}

func (r *rolling) epochOf(at time.Time) int64 {
	return at.UnixNano() / int64(r.width)
}

// add folds one pre-aggregated sample into the slice covering at.
func (r *rolling) add(at time.Time, a windowAgg) {
	e := r.epochOf(at)
	b := &r.buckets[uint64(e)%windowBuckets]
	if b.epoch != e {
		// The slice this slot last served has rotated out of the window.
		b.epoch = e
		b.agg = windowAgg{}
	}
	b.agg.add(a)
}

// stats sums the slices still inside the window ending at now.
func (r *rolling) stats(now time.Time) windowAgg {
	newest := r.epochOf(now)
	oldest := newest - windowBuckets + 1
	var out windowAgg
	for i := range r.buckets {
		if e := r.buckets[i].epoch; e >= oldest && e <= newest {
			out.add(r.buckets[i].agg)
		}
	}
	return out
}
