package slo

import (
	"fmt"
	"testing"
	"time"
)

// Guard: the flight-recorder record path sits inside every enforcement
// cycle, so it must stay <100ns/op (same guard style as BenchmarkObs*).
// Measured on the CI container: ~54ns/op, 1 alloc (the published sample
// copy). If a change pushes this past 100ns, it is a regression — the
// enforcement loop budget assumes recording is free.

func BenchmarkSLORecord(b *testing.B) {
	rec := NewRecorder(1024)
	s := rec.Series(Key{Contract: "Coldstorage", Segment: "TEST/cold-000", Class: "c4_low"})
	sm := Sample{At: time.Unix(1700000000, 0), Granted: 1e12, Used: 9e11, Throttled: 0, Overage: 1e11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(sm)
	}
}

// BenchmarkSLORecordViaRecorder includes the sync.Map key lookup cold
// callers pay; hot callers cache the Series handle (see BenchmarkSLORecord).
func BenchmarkSLORecordViaRecorder(b *testing.B) {
	rec := NewRecorder(1024)
	k := Key{Contract: "Coldstorage", Segment: "TEST/cold-000", Class: "c4_low"}
	rec.Series(k)
	sm := Sample{At: time.Unix(1700000000, 0), Granted: 1e12, Used: 9e11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(k, sm)
	}
}

// BenchmarkSLOEvaluate covers the evaluation side at a realistic fan-in:
// 41 series (40 agents + ground truth) × one fresh sample per pass.
func BenchmarkSLOEvaluate(b *testing.B) {
	rec := NewRecorder(1024)
	e := NewEngine(rec, Options{})
	e.SetObjective("Coldstorage", 0.999)
	series := make([]*Series, 41)
	for i := range series {
		series[i] = rec.Series(Key{Contract: "Coldstorage", Segment: fmt.Sprintf("TEST/cold-%03d", i), Class: "c4_low"})
	}
	base := time.Unix(1700000000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := base.Add(time.Duration(i) * time.Second)
		for _, s := range series {
			s.Record(Sample{At: at, Granted: 1e12, Used: 9e11})
		}
		e.Evaluate(at)
	}
}
